// Service-mode ServiceDriver: runtime attach/detach (core hotplug),
// SLO-guarded admission control with FIFO queueing, per-tenant
// accounting, rate-0 fault-decorator transparency, and deterministic
// churn soaks.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "analysis/run_harness.hpp"
#include "analysis/solo_cache.hpp"
#include "hw/pmu_reader.hpp"
#include "obs/jsonl_sink.hpp"
#include "service/service_driver.hpp"
#include "service/soak.hpp"
#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::service {
namespace {

ServiceConfig fast_cfg() {
  ServiceConfig c;
  c.params.machine = sim::MachineConfig::scaled(32);
  c.params.warmup_cycles = 50'000;
  c.params.run_cycles = 150'000;
  c.params.epochs.execution_epoch = 20'000;
  c.params.epochs.sampling_interval = 2'000;
  return c;
}

std::unique_ptr<core::Policy> cmm_policy(const ServiceConfig& c) {
  return analysis::make_policy("cmm_a", c.params.detector());
}

// ------------------------------------------------- sim-level hotplug

TEST(CoreHotplug, DetachInstallsIdleLoopAndAttachStartsCold) {
  sim::MulticoreSystem sys(fast_cfg().params.machine);
  for (CoreId c = 0; c < sys.num_cores(); ++c) {
    sys.set_op_source(c, workloads::make_op_source("lbm", sys.config(), c, 42));
  }
  sys.run(50'000);
  EXPECT_EQ(sys.num_idle_cores(), 0u);

  const std::size_t dropped = sys.detach_core(0);
  EXPECT_TRUE(sys.core_idle(0));
  EXPECT_EQ(sys.num_idle_cores(), 1u);
  EXPECT_GT(dropped, 0u);  // lbm is a streaming workload: it had LLC lines
  EXPECT_EQ(sys.llc().occupancy_by_owner(sys.num_cores())[0], 0u);  // footprint gone

  sys.attach_core(0, workloads::make_op_source("povray", sys.config(), 0, 43));
  EXPECT_FALSE(sys.core_idle(0));
  EXPECT_EQ(sys.num_idle_cores(), 0u);
}

TEST(CoreHotplug, IdleCoresExecuteAtConfiguredCpi) {
  auto cfg = fast_cfg().params.machine;
  cfg.idle_cpi = 2.0;
  sim::MulticoreSystem sys(cfg);
  for (CoreId c = 0; c < sys.num_cores(); ++c) sys.detach_core(c);

  const hw::SimPmuReader pmu(sys);
  const auto before = pmu.read_all();
  sys.run(100'000);
  const auto after = pmu.read_all();
  for (CoreId c = 0; c < sys.num_cores(); ++c) {
    const auto delta = after[c].delta_since(before[c]);
    // No memory traffic, IPC pinned near 1/idle_cpi regardless of the
    // cache/bandwidth configuration.
    EXPECT_NEAR(delta.ipc(), 1.0 / cfg.idle_cpi, 0.05) << "core " << c;
    EXPECT_EQ(delta.l3_load_miss, 0u) << "core " << c;
    EXPECT_EQ(delta.dram_demand_bytes, 0u) << "core " << c;
  }
}

// ---------------------------------------------- ServiceDriver basics

TEST(ServiceDriver, StartsEmptyAndTicksWhileIdle) {
  const auto cfg = fast_cfg();
  ServiceDriver svc(cfg, cmm_policy(cfg));
  EXPECT_EQ(svc.active_tenants(), 0u);
  EXPECT_EQ(svc.system().num_idle_cores(), svc.num_cores());
  EXPECT_TRUE(svc.all_tenants_within_slo());

  svc.tick();
  EXPECT_EQ(svc.ticks(), 1u);
  EXPECT_GT(svc.system().now(), 0u);
}

TEST(ServiceDriver, AttachAdmitsRunsAndAccounts) {
  const auto cfg = fast_cfg();
  ServiceDriver svc(cfg, cmm_policy(cfg));

  const auto r = svc.attach({"libquantum", /*slo=*/0.1, /*seed=*/42});
  ASSERT_EQ(r.decision, AdmissionDecision::Admitted);
  EXPECT_EQ(r.core, 0u);
  EXPECT_FALSE(svc.system().core_idle(0));
  EXPECT_EQ(svc.attaches(), 1u);
  EXPECT_TRUE(svc.health().has(core::HealthEventKind::TenantAttach));

  svc.tick();
  svc.tick();
  const auto& t = svc.tenants()[0];
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->ticks_served, 2u);
  EXPECT_GT(t->last_ipc, 0.0);
  EXPECT_GT(t->solo_ipc, 0.0);
  EXPECT_GT(t->solo_gbs, 0.0);
  EXPECT_TRUE(svc.all_tenants_within_slo());
}

TEST(ServiceDriver, DetachReturnsCoreToIdle) {
  const auto cfg = fast_cfg();
  ServiceDriver svc(cfg, cmm_policy(cfg));
  svc.attach({"libquantum", 0.0, 42});
  svc.tick();

  EXPECT_TRUE(svc.detach(0));
  EXPECT_TRUE(svc.system().core_idle(0));
  EXPECT_EQ(svc.active_tenants(), 0u);
  EXPECT_EQ(svc.detaches(), 1u);
  EXPECT_TRUE(svc.health().has(core::HealthEventKind::TenantDetach));

  EXPECT_FALSE(svc.detach(0));  // already idle
  EXPECT_FALSE(svc.detach(svc.num_cores() - 1));
}

TEST(ServiceDriver, FifoQueueDrainsIntoFreedCapacity) {
  const auto cfg = fast_cfg();
  ServiceDriver svc(cfg, cmm_policy(cfg));
  for (unsigned i = 0; i < svc.num_cores(); ++i) {
    ASSERT_EQ(svc.attach({"libquantum", 0.0, 42 + i}).decision, AdmissionDecision::Admitted);
  }
  EXPECT_EQ(svc.active_tenants(), svc.num_cores());

  const auto queued = svc.attach({"povray", 0.0, 99});
  EXPECT_EQ(queued.decision, AdmissionDecision::Queued);
  EXPECT_EQ(svc.queue_depth(), 1u);
  EXPECT_EQ(svc.queued_total(), 1u);
  EXPECT_TRUE(svc.health().has(core::HealthEventKind::TenantQueued));

  // A departure frees core 3; the queue head lands exactly there.
  ASSERT_TRUE(svc.detach(3));
  EXPECT_EQ(svc.queue_depth(), 0u);
  EXPECT_EQ(svc.active_tenants(), svc.num_cores());
  ASSERT_TRUE(svc.tenants()[3].has_value());
  EXPECT_EQ(svc.tenants()[3]->spec.benchmark, "povray");
}

TEST(ServiceDriver, RejectsWhenQueueFull) {
  auto cfg = fast_cfg();
  cfg.max_queue = 0;
  ServiceDriver svc(cfg, cmm_policy(cfg));
  for (unsigned i = 0; i < svc.num_cores(); ++i) {
    ASSERT_EQ(svc.attach({"libquantum", 0.0, 42 + i}).decision, AdmissionDecision::Admitted);
  }
  const auto r = svc.attach({"povray", 0.0, 99});
  EXPECT_EQ(r.decision, AdmissionDecision::Rejected);
  EXPECT_EQ(svc.rejections(), 1u);
  EXPECT_TRUE(svc.health().has(core::HealthEventKind::TenantRejected));
}

TEST(ServiceDriver, AdmissionGuardsProjectedPressure) {
  auto cfg = fast_cfg();
  cfg.admission_headroom = 0.0;  // no tenant can ever fit
  ServiceDriver svc(cfg, cmm_policy(cfg));
  const auto r = svc.attach({"lbm", 0.0, 42});
  // Free cores exist, but the pressure budget blocks admission: the
  // request waits rather than endangering (future) tenants' SLOs.
  EXPECT_EQ(r.decision, AdmissionDecision::Queued);
  EXPECT_EQ(svc.active_tenants(), 0u);
  EXPECT_EQ(svc.queue_depth(), 1u);
}

TEST(ServiceDriver, AdmissionBudgetScalesWithDomainCount) {
  // Regression: peak_gbs() ignored num_llc_domains, so multi-domain
  // fleets were admission-controlled against a single domain's DRAM
  // peak and tenants that fit comfortably were queued.
  auto cfg = fast_cfg();
  cfg.params.machine = sim::MachineConfig::fleet(2, 4, 32);

  const auto solo = analysis::run_solo_cached("lbm", cfg.params, /*prefetch_on=*/true);
  const double solo_gbs = solo->cores.front().total_gbs();
  ASSERT_GT(solo_gbs, 0.0);

  // Budget = 0.75x the tenant's demand *per domain*: one domain's peak
  // can't absorb it, the two-domain aggregate can.
  const double single_domain_gbs =
      cfg.params.machine.dram_peak_bytes_per_cycle * cfg.params.machine.freq_ghz;
  cfg.admission_headroom = 0.75 * solo_gbs / single_domain_gbs;

  ServiceDriver svc(cfg, cmm_policy(cfg));
  EXPECT_DOUBLE_EQ(svc.peak_gbs(), 2.0 * single_domain_gbs);
  const auto r = svc.attach({"lbm", 0.0, 42});
  EXPECT_EQ(r.decision, AdmissionDecision::Admitted);
  EXPECT_EQ(svc.queue_depth(), 0u);
}

TEST(ServiceDriver, ImpossibleSloIsBreachedAndRecorded) {
  const auto cfg = fast_cfg();
  ServiceDriver svc(cfg, cmm_policy(cfg));
  // Floor of 2x solo IPC can never be met while sharing the machine.
  svc.attach({"libquantum", /*slo=*/2.0, 42});
  svc.tick();
  EXPECT_GE(svc.slo_breaches(), 1u);
  EXPECT_FALSE(svc.all_tenants_within_slo());
  EXPECT_TRUE(svc.health().has(core::HealthEventKind::SloBreach));
  ASSERT_TRUE(svc.tenants()[0].has_value());
  EXPECT_EQ(svc.tenants()[0]->breaches, svc.slo_breaches());
}

TEST(ServiceDriver, HealthCapacityBoundsTheServiceLog) {
  auto cfg = fast_cfg();
  cfg.health_capacity = 4;
  ServiceDriver svc(cfg, cmm_policy(cfg));
  for (unsigned i = 0; i < svc.num_cores(); ++i) svc.attach({"libquantum", 0.0, 42 + i});
  for (CoreId c = 0; c < svc.num_cores(); ++c) svc.detach(c);
  EXPECT_LE(svc.health().events().size(), 4u);
  EXPECT_GT(svc.health().dropped(), 0u);
  // Totals survive the trim.
  EXPECT_EQ(svc.health().count(core::HealthEventKind::TenantAttach), svc.num_cores());
  EXPECT_EQ(svc.health().count(core::HealthEventKind::TenantDetach), svc.num_cores());
}

// ------------------------------------- rate-0 decorator transparency

TEST(ServiceDriver, ForcedRate0DecoratorsAreTransparent) {
  const auto cfg = fast_cfg();
  auto forced_cfg = cfg;
  forced_cfg.force_fault_decorators = true;

  ServiceDriver plain(cfg, cmm_policy(cfg));
  ServiceDriver forced(forced_cfg, cmm_policy(forced_cfg));
  EXPECT_EQ(plain.injector(), nullptr);
  ASSERT_NE(forced.injector(), nullptr);

  const auto drive = [](ServiceDriver& svc) {
    svc.attach({"libquantum", 0.5, 42});
    svc.attach({"lbm", 0.5, 43});
    svc.tick();
    svc.tick();
    svc.detach(0);
    svc.tick();
  };
  drive(plain);
  drive(forced);

  // A plan that can never fire must not perturb anything observable.
  EXPECT_EQ(forced.injector()->injected_faults(), 0u);
  EXPECT_EQ(plain.system().now(), forced.system().now());
  EXPECT_EQ(plain.driver().execution_counters(), forced.driver().execution_counters());
  EXPECT_EQ(plain.health(), forced.health());
  ASSERT_TRUE(plain.tenants()[1].has_value() && forced.tenants()[1].has_value());
  EXPECT_EQ(plain.tenants()[1]->last_ipc, forced.tenants()[1]->last_ipc);
  EXPECT_EQ(plain.slo_breaches(), forced.slo_breaches());
}

// ------------------------------------------------ deterministic soak

SoakConfig small_soak() {
  SoakConfig s;
  s.params = fast_cfg().params;
  s.ticks = 25;
  s.churn_seed = 11;
  s.arrival_p = 0.6;
  s.departure_p = 0.3;
  s.slo = 0.0;
  return s;
}

TEST(ServiceSoak, ChurnIsBitIdenticalAcrossRepeats) {
  const auto cfg = small_soak();
  std::ostringstream t1;
  std::ostringstream t2;
  SoakSummary s1;
  SoakSummary s2;
  {
    obs::JsonlTraceSink sink(t1);
    s1 = run_service(cfg, &sink);
  }
  {
    obs::JsonlTraceSink sink(t2);
    s2 = run_service(cfg, &sink);
  }
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.json(), s2.json());
  EXPECT_EQ(t1.str(), t2.str());
  // The soak actually churned and the trace carries the service events.
  EXPECT_GE(s1.attaches + s1.detaches, 5u);
  EXPECT_NE(t1.str().find("\"type\":\"tenant_attach\""), std::string::npos);
  EXPECT_NE(t1.str().find("\"type\":\"tenant_detach\""), std::string::npos);
}

TEST(ServiceSoak, SummaryCountersAreConsistent) {
  const auto s = run_service(small_soak());
  EXPECT_EQ(s.ticks, 25u);
  EXPECT_GT(s.epochs, 0u);
  EXPECT_EQ(s.attaches, s.detaches + s.survivors);
  EXPECT_EQ(s.injected_faults, 0u);  // fault-free soak
  EXPECT_EQ(s.full_cycles, 0u);
  EXPECT_TRUE(s.all_within_slo);  // vacuous: slo = 0
}

}  // namespace
}  // namespace cmm::service
