#include <gtest/gtest.h>

#include <set>

#include "workloads/benchmark_specs.hpp"

namespace cmm::workloads {
namespace {

TEST(BenchmarkSuite, NonEmptyAndUniqueNames) {
  const auto& suite = benchmark_suite();
  EXPECT_GE(suite.size(), 20u);
  std::set<std::string> names;
  for (const auto& s : suite) {
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_FALSE(s.patterns.empty()) << s.name;
    EXPECT_GT(s.inst_per_mem, 0.0);
    EXPECT_GT(s.base_cpi, 0.0);
    EXPECT_GE(s.mlp, 1.0);
  }
}

TEST(BenchmarkSuite, ClassListsPartitionTheSuite) {
  const auto friendly = prefetch_friendly_names();
  const auto unfriendly = prefetch_unfriendly_names();
  const auto non_agg = non_aggressive_names();
  EXPECT_EQ(friendly.size() + unfriendly.size() + non_agg.size(), benchmark_suite().size());

  // The paper's classes: friendly implies aggressive; unfriendly ditto.
  for (const auto& n : friendly) {
    EXPECT_TRUE(spec_by_name(n).expect_prefetch_aggressive);
    EXPECT_TRUE(spec_by_name(n).expect_prefetch_friendly);
  }
  for (const auto& n : unfriendly) {
    EXPECT_TRUE(spec_by_name(n).expect_prefetch_aggressive);
    EXPECT_FALSE(spec_by_name(n).expect_prefetch_friendly);
  }
}

TEST(BenchmarkSuite, ClassSizesSupportMixConstruction) {
  EXPECT_GE(prefetch_friendly_names().size(), 4u);
  EXPECT_GE(prefetch_unfriendly_names().size(), 4u);
  EXPECT_GE(llc_sensitive_names().size(), 2u);
  EXPECT_GE(non_aggressive_names().size(), 4u);
  // Rand Access — the paper's hand-written micro-benchmark — exists.
  EXPECT_NO_THROW(spec_by_name("rand_access"));
}

TEST(BenchmarkSuite, LookupUnknownThrows) {
  EXPECT_THROW(spec_by_name("no_such_benchmark"), std::out_of_range);
}

TEST(SpecOpSource, InstructionRatePreserved) {
  const auto machine = sim::MachineConfig::scaled(16);
  SpecOpSource src(spec_by_name("mcf"), machine, 0, 42);  // inst_per_mem 4.0
  std::uint64_t insts = 0;
  constexpr int kOps = 10000;
  for (int i = 0; i < kOps; ++i) {
    const sim::Op op = src.next();
    EXPECT_TRUE(op.has_mem);
    insts += op.instructions;
  }
  EXPECT_NEAR(static_cast<double>(insts) / kOps, spec_by_name("mcf").inst_per_mem, 0.01);
}

TEST(SpecOpSource, StoreFractionRespected) {
  const auto machine = sim::MachineConfig::scaled(16);
  const auto& spec = spec_by_name("lbm");  // store_fraction 0.35
  SpecOpSource src(spec, machine, 0, 42);
  int stores = 0;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) {
    if (src.next().mem.is_store) ++stores;
  }
  EXPECT_NEAR(static_cast<double>(stores) / kOps, spec.store_fraction, 0.02);
}

TEST(SpecOpSource, CorePrivateRegions) {
  const auto machine = sim::MachineConfig::scaled(16);
  SpecOpSource a(spec_by_name("libquantum"), machine, 0, 42);
  SpecOpSource b(spec_by_name("libquantum"), machine, 1, 42);
  // Different cores must never alias addresses.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(a.next().mem.addr >> 40, b.next().mem.addr >> 40);
  }
}

TEST(SpecOpSource, DeterministicPerSeed) {
  const auto machine = sim::MachineConfig::scaled(16);
  SpecOpSource a(spec_by_name("wrf"), machine, 0, 7);
  SpecOpSource b(spec_by_name("wrf"), machine, 0, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next().mem.addr, b.next().mem.addr);
  }
}

TEST(SpecOpSource, WorkingSetScalesWithMachine) {
  // The same spec on a machine with a smaller LLC must touch a
  // proportionally smaller region (ws anchored to cache sizes).
  const auto big = sim::MachineConfig::scaled(8);
  const auto small = sim::MachineConfig::scaled(32);
  auto span = [](const sim::MachineConfig& m) {
    SpecOpSource src(spec_by_name("omnetpp"), m, 0, 3);
    Addr lo = ~Addr{0};
    Addr hi = 0;
    for (int i = 0; i < 50000; ++i) {
      const Addr a = src.next().mem.addr;
      lo = std::min(lo, a);
      hi = std::max(hi, a);
    }
    return hi - lo;
  };
  EXPECT_GT(span(big), span(small) * 2);
}

TEST(MakeOpSource, ByNameEquivalent) {
  const auto machine = sim::MachineConfig::scaled(16);
  auto by_name = make_op_source("astar", machine, 0, 5);
  auto by_spec = make_op_source(spec_by_name("astar"), machine, 0, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(by_name->next().mem.addr, by_spec->next().mem.addr);
  }
}

}  // namespace
}  // namespace cmm::workloads
