// The bidirectional recovery ladder: probation re-probes of faulted
// axes, hysteresis against flapping, repair-window healing in the
// fault injector, and the HealthLog ring bound that keeps hour-scale
// soaks from growing without limit.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/run_harness.hpp"
#include "core/epoch_driver.hpp"
#include "core/policy_cmm.hpp"
#include "common/retry.hpp"
#include "hw/fault_injection.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::core {
namespace {

sim::MachineConfig cfg() { return sim::MachineConfig::scaled(16); }

EpochConfig probing_epochs() {
  EpochConfig e;
  e.execution_epoch = 200'000;
  e.sampling_interval = 10'000;
  e.probe_period_epochs = 1;
  e.probe_successes_required = 2;
  return e;
}

std::unique_ptr<sim::MulticoreSystem> make_system() {
  auto sys = std::make_unique<sim::MulticoreSystem>(cfg());
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);
  workloads::attach_mix(*sys, mixes.front(), 42);
  return sys;
}

std::unique_ptr<Policy> cmm_a() {
  CmmPolicy::Options o;
  o.detector.freq_ghz = cfg().freq_ghz;
  o.variant = CmmVariant::A;
  return std::make_unique<CmmPolicy>(o);
}

struct FaultedRun {
  std::unique_ptr<sim::MulticoreSystem> sys;
  std::unique_ptr<Policy> policy;
  hw::SimMsrDevice sim_msr;
  hw::SimPmuReader sim_pmu;
  hw::SimCatController sim_cat;
  hw::FaultInjector injector;
  hw::FaultInjectingMsrDevice msr;
  hw::FaultInjectingPmuReader pmu;
  hw::FaultInjectingCatController cat;
  EpochDriver driver;

  FaultedRun(const hw::FaultPlan& plan, const EpochConfig& epochs)
      : sys(make_system()),
        policy(cmm_a()),
        sim_msr(*sys),
        sim_pmu(*sys),
        sim_cat(*sys),
        injector(plan),
        msr(sim_msr, injector),
        pmu(sim_pmu, injector),
        cat(sim_cat, injector),
        driver(*sys, *policy, msr, pmu, cat, epochs) {}
};

/// The sequence of down/up rungs for one axis, in log order.
std::vector<HealthEventKind> ladder_seq(const HealthLog& log, HealthEventKind down,
                                        HealthEventKind up) {
  std::vector<HealthEventKind> seq;
  for (const auto& e : log.events()) {
    if (e.kind == down || e.kind == up) seq.push_back(e.kind);
  }
  return seq;
}

/// Hysteresis contract: rungs strictly alternate starting with a
/// degrade — a cleared fault recovers the axis exactly once, and a
/// second recovery requires a fresh degrade in between.
void expect_alternating(const std::vector<HealthEventKind>& seq, HealthEventKind down,
                        HealthEventKind up) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], i % 2 == 0 ? down : up) << "position " << i;
  }
}

std::size_t successful_probes(const HealthLog& log) {
  std::size_t n = 0;
  for (const auto& e : log.events()) {
    if (e.kind == HealthEventKind::RecoveryProbe && e.detail != 0) ++n;
  }
  return n;
}

// ------------------------------------------------ FaultInjector repair

TEST(FaultRepairWindow, PersistentFaultHealsAfterWindow) {
  hw::FaultPlan plan;
  plan.msr_write_fail_p = 1.0;
  plan.transient_fraction = 0.0;
  plan.repair_after_calls = 3;

  hw::FaultInjector inj(plan);
  EXPECT_THROW(inj.maybe_fault(hw::FaultOp::MsrWrite, 0), HwFault);  // inject
  // Reads carry no fault rate but advance the repair clock.
  for (int i = 0; i < 3; ++i) EXPECT_NO_THROW(inj.maybe_fault(hw::FaultOp::MsrRead, 0));
  EXPECT_EQ(inj.repaired_faults(), 0u);
  // The window has elapsed: the sticky fault heals. (With rate 1.0 the
  // probability path immediately re-injects, which is itself the
  // re-degrade case the ladder must survive.)
  EXPECT_THROW(inj.maybe_fault(hw::FaultOp::MsrWrite, 0), HwFault);
  EXPECT_EQ(inj.repaired_faults(), 1u);
}

TEST(FaultRepairWindow, HealedKnobWorksWhenRateAllows) {
  hw::FaultPlan plan;
  plan.cat_apply_fail_p = 1.0;
  plan.transient_fraction = 0.0;
  plan.repair_after_calls = 2;

  hw::FaultInjector inj(plan);
  EXPECT_THROW(inj.maybe_fault(hw::FaultOp::CatApply, kInvalidCore), HwFault);
  // A different op with rate 0 stays healthy while the clock advances.
  inj.maybe_fault(hw::FaultOp::MsrRead, 0);
  inj.maybe_fault(hw::FaultOp::MsrRead, 0);
  // CatReset has rate 0 in this plan and was never stuck: still fine.
  EXPECT_NO_THROW(inj.maybe_fault(hw::FaultOp::CatReset, kInvalidCore));
}

TEST(FaultRepairWindow, ZeroWindowNeverHeals) {
  hw::FaultPlan plan;
  plan.msr_write_fail_p = 1.0;
  plan.transient_fraction = 0.0;  // repair_after_calls stays 0

  hw::FaultInjector inj(plan);
  EXPECT_THROW(inj.maybe_fault(hw::FaultOp::MsrWrite, 0), HwFault);
  for (int i = 0; i < 50; ++i) inj.maybe_fault(hw::FaultOp::MsrRead, 0);
  EXPECT_THROW(inj.maybe_fault(hw::FaultOp::MsrWrite, 0), HwFault);
  EXPECT_EQ(inj.repaired_faults(), 0u);
}

TEST(FaultRepairWindow, OfflineCoresNeverHeal) {
  hw::FaultPlan plan;
  plan.offline_cores = {2};
  plan.repair_after_calls = 1;

  hw::FaultInjector inj(plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_THROW(inj.maybe_fault(hw::FaultOp::MsrWrite, 2), HwFault);
  }
  EXPECT_EQ(inj.repaired_faults(), 0u);
}

// -------------------------------------------------- recovery ladder

TEST(RecoveryLadder, CatHealsAndRecoversWithHysteresis) {
  hw::FaultPlan plan;
  plan.seed = 5;
  plan.cat_apply_fail_p = 0.5;
  plan.transient_fraction = 0.0;
  plan.repair_after_calls = 40;

  FaultedRun run(plan, probing_epochs());
  run.driver.run(3'000'000);

  const auto& health = run.driver.health();
  ASSERT_TRUE(health.has(HealthEventKind::PtOnlyFallback));
  ASSERT_TRUE(health.has(HealthEventKind::PtOnlyRecovered)) << health.summary_json();
  EXPECT_TRUE(health.has(HealthEventKind::RecoveryProbe));

  // Exactly one recovery per degrade: strict alternation of rungs.
  expect_alternating(
      ladder_seq(health, HealthEventKind::PtOnlyFallback, HealthEventKind::PtOnlyRecovered),
      HealthEventKind::PtOnlyFallback, HealthEventKind::PtOnlyRecovered);

  // Hysteresis: each recovery consumed a streak of >= 2 successful
  // probes, so successes are at least twice the recovery count.
  EXPECT_GE(successful_probes(health),
            2 * health.count(HealthEventKind::PtOnlyRecovered));
}

TEST(RecoveryLadder, PrefetchAxisHealsPerCoreThenLeavesCpOnly) {
  hw::FaultPlan plan;
  plan.seed = 9;
  plan.msr_write_fail_p = 0.35;
  plan.transient_fraction = 0.0;
  plan.repair_after_calls = 60;

  FaultedRun run(plan, probing_epochs());
  run.driver.run(3'000'000);

  const auto& health = run.driver.health();
  ASSERT_TRUE(health.has(HealthEventKind::CorePrefetchOffline));
  ASSERT_TRUE(health.has(HealthEventKind::CorePrefetchRestored)) << health.summary_json();

  // The machine-wide rung recovers only when every core is back, and
  // at most once per fallback.
  expect_alternating(
      ladder_seq(health, HealthEventKind::CpOnlyFallback, HealthEventKind::CpOnlyRecovered),
      HealthEventKind::CpOnlyFallback, HealthEventKind::CpOnlyRecovered);
  if (health.has(HealthEventKind::CpOnlyRecovered)) {
    EXPECT_GE(health.count(HealthEventKind::CpOnlyFallback),
              health.count(HealthEventKind::CpOnlyRecovered));
  }
}

TEST(RecoveryLadder, ProbesDisabledByDefaultKeepsBatchBehaviour) {
  hw::FaultPlan plan;
  plan.cat_apply_fail_p = 1.0;
  plan.transient_fraction = 0.0;
  plan.repair_after_calls = 10;  // would heal, but nothing probes

  EpochConfig e;
  e.execution_epoch = 200'000;
  e.sampling_interval = 10'000;  // probe_period_epochs stays 0

  FaultedRun run(plan, e);
  run.driver.run(1'000'000);

  const auto& health = run.driver.health();
  EXPECT_TRUE(health.has(HealthEventKind::PtOnlyFallback));
  EXPECT_FALSE(health.has(HealthEventKind::RecoveryProbe));
  EXPECT_FALSE(health.has(HealthEventKind::PtOnlyRecovered));
  EXPECT_FALSE(run.driver.cat_available());
}

TEST(RecoveryLadder, ZeroRatePlanWithProbesEnabledIsBitIdentical) {
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);
  analysis::RunParams params;
  params.machine = cfg();
  params.run_cycles = 600'000;
  params.epochs = probing_epochs();

  auto p1 = cmm_a();
  auto p2 = cmm_a();
  const auto plain = analysis::run_mix(mixes.front(), *p1, params);
  const auto faulted = analysis::run_mix_with_faults(mixes.front(), *p2, params, hw::FaultPlan{});
  EXPECT_TRUE(faulted.completed);
  EXPECT_TRUE(faulted.health.empty());  // nothing degraded, nothing probed
  EXPECT_EQ(faulted.result, plain);
}

TEST(RecoveryLadder, SameSeedReproducesRecoveryTraffic) {
  hw::FaultPlan plan;
  plan.seed = 5;
  plan.cat_apply_fail_p = 0.5;
  plan.transient_fraction = 0.0;
  plan.repair_after_calls = 40;

  FaultedRun a(plan, probing_epochs());
  FaultedRun b(plan, probing_epochs());
  a.driver.run(1'500'000);
  b.driver.run(1'500'000);
  EXPECT_EQ(a.driver.health(), b.driver.health());
  EXPECT_FALSE(a.driver.health().empty());
}

// ------------------------------------------------ MBA (BP) recovery

/// Emits a fixed nonzero throttle ladder each epoch so the MBA HAL is
/// exercised every epoch (the CMM search would only throttle when its
/// samples justify it, which makes fault timing workload-dependent).
class ThrottlingStubPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "throttle_stub"; }
  ResourceConfig initial_config(unsigned cores, unsigned ways) override {
    cores_ = cores;
    ways_ = ways;
    return ResourceConfig::baseline(cores, ways);
  }
  void begin_profiling(const std::vector<sim::PmuCounters>&) override {}
  std::optional<ResourceConfig> next_sample() override { return std::nullopt; }
  void report_sample(const SampleStats&) override {}
  ResourceConfig final_config() override {
    ResourceConfig c = ResourceConfig::baseline(cores_, ways_);
    c.throttle_levels.assign(cores_, 0);
    c.throttle_levels[0] = 1;
    return c;
  }

 private:
  unsigned cores_ = 0;
  unsigned ways_ = 0;
};

struct MbaFaultedRun {
  std::unique_ptr<sim::MulticoreSystem> sys;
  std::unique_ptr<Policy> policy;
  hw::SimMsrDevice sim_msr;
  hw::SimPmuReader sim_pmu;
  hw::SimCatController sim_cat;
  hw::SimMbaController sim_mba;
  hw::FaultInjector injector;
  hw::FaultInjectingMsrDevice msr;
  hw::FaultInjectingPmuReader pmu;
  hw::FaultInjectingCatController cat;
  hw::FaultInjectingMbaController mba;
  EpochDriver driver;

  MbaFaultedRun(const hw::FaultPlan& plan, const EpochConfig& epochs)
      : sys(make_system()),
        policy(std::make_unique<ThrottlingStubPolicy>()),
        sim_msr(*sys),
        sim_pmu(*sys),
        sim_cat(*sys),
        sim_mba(*sys),
        injector(plan),
        msr(sim_msr, injector),
        pmu(sim_pmu, injector),
        cat(sim_cat, injector),
        mba(sim_mba, injector),
        driver(*sys, *policy, msr, pmu, cat, mba, epochs) {}
};

TEST(RecoveryLadder, MbaHealsAndRecoversWithHysteresis) {
  hw::FaultPlan plan;
  plan.seed = 5;
  plan.mba_apply_fail_p = 0.5;
  plan.transient_fraction = 0.0;
  plan.repair_after_calls = 40;

  MbaFaultedRun run(plan, probing_epochs());
  run.driver.run(3'000'000);

  const auto& health = run.driver.health();
  ASSERT_TRUE(health.has(HealthEventKind::MbaOffline));
  ASSERT_TRUE(health.has(HealthEventKind::MbaRestored)) << health.summary_json();

  // Same rung contract as the other axes: strict down/up alternation.
  expect_alternating(
      ladder_seq(health, HealthEventKind::MbaOffline, HealthEventKind::MbaRestored),
      HealthEventKind::MbaOffline, HealthEventKind::MbaRestored);

  // Probes of the MBA axis are tagged so traces can tell the axes apart.
  bool saw_mba_probe = false;
  for (const auto& e : health.events()) {
    if (e.kind == HealthEventKind::RecoveryProbe && e.note == "mba") saw_mba_probe = true;
  }
  EXPECT_TRUE(saw_mba_probe);

  // Availability at the end matches the rung parity.
  EXPECT_EQ(run.driver.mba_available(),
            health.count(HealthEventKind::MbaOffline) ==
                health.count(HealthEventKind::MbaRestored));
}

TEST(RecoveryLadder, MbaProbesDisabledByDefaultStaysDegraded) {
  hw::FaultPlan plan;
  plan.mba_apply_fail_p = 1.0;
  plan.transient_fraction = 0.0;
  plan.repair_after_calls = 10;  // would heal, but nothing probes

  EpochConfig e;
  e.execution_epoch = 200'000;
  e.sampling_interval = 10'000;  // probe_period_epochs stays 0

  MbaFaultedRun run(plan, e);
  run.driver.run(1'000'000);

  EXPECT_TRUE(run.driver.health().has(HealthEventKind::MbaOffline));
  EXPECT_FALSE(run.driver.health().has(HealthEventKind::MbaRestored));
  EXPECT_FALSE(run.driver.mba_available());
}

// ---------------------------------------------------- HealthLog ring

TEST(HealthLogRing, CapacityTrimsOldestButTotalsStayExact) {
  HealthLog log;
  log.set_capacity(3);
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.record(HealthEventKind::HwRetry, /*time=*/i, /*core=*/0, /*detail=*/i);
  }
  EXPECT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.dropped(), 7u);
  EXPECT_EQ(log.count(HealthEventKind::HwRetry), 10u);  // includes trimmed
  EXPECT_TRUE(log.has(HealthEventKind::HwRetry));
  // The newest events survive, oldest-first order preserved.
  EXPECT_EQ(log.events().front().detail, 7u);
  EXPECT_EQ(log.events().back().detail, 9u);
  EXPECT_NE(log.summary_json().find("\"hw_retry\":10"), std::string::npos);
}

TEST(HealthLogRing, ShrinkingCapacityDropsImmediately) {
  HealthLog log;
  for (std::uint64_t i = 0; i < 5; ++i) log.record(HealthEventKind::SloBreach, i);
  EXPECT_EQ(log.events().size(), 5u);
  log.set_capacity(2);
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.dropped(), 3u);
  EXPECT_EQ(log.events().front().time, 3u);
  EXPECT_EQ(log.count(HealthEventKind::SloBreach), 5u);
}

TEST(HealthLogRing, ZeroCapacityIsUnbounded) {
  HealthLog log;
  for (std::uint64_t i = 0; i < 100; ++i) log.record(HealthEventKind::HwRetry, i);
  EXPECT_EQ(log.events().size(), 100u);
  EXPECT_EQ(log.dropped(), 0u);
}

}  // namespace
}  // namespace cmm::core
