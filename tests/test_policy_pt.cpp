#include <gtest/gtest.h>

#include "core/policy_pt.hpp"
#include "policy_test_util.hpp"

namespace cmm::core {
namespace {

using test::aggressive_counters;
using test::quiet_counters;
using test::run_profiling;

constexpr unsigned kCores = 8;
constexpr unsigned kWays = 20;

PtPolicy make_pt(unsigned max_exhaustive = 3, unsigned max_groups = 3) {
  PtPolicy::Options o;
  o.detector = test::test_detector();
  o.max_exhaustive = max_exhaustive;
  o.max_groups = max_groups;
  return PtPolicy(o);
}

/// Machine script: cores 0,1 aggressive; aggressive cores run at
/// `on`/`off` IPC depending on their own prefetch bit; quiet cores at
/// 1.0 unless the aggressive prefetchers are on (interference), in
/// which case `quiet_under_interference`.
struct Script {
  double on = 2.0;
  double off = 1.0;
  double quiet_free = 1.0;
  double quiet_under_interference = 0.5;
  unsigned n_agg = 2;

  double ipc(CoreId c, const ResourceConfig& cfg) const {
    if (c < n_agg) return cfg.prefetch_on[c] ? on : off;
    bool any_agg_on = false;
    for (unsigned a = 0; a < n_agg; ++a) any_agg_on |= cfg.prefetch_on[a];
    return any_agg_on ? quiet_under_interference : quiet_free;
  }

  sim::PmuCounters counters(CoreId c, const ResourceConfig& cfg) const {
    if (c < n_agg) return cfg.prefetch_on[c] ? aggressive_counters(on) : quiet_counters(off);
    return quiet_counters(1.0);
  }
};

TEST(PtPolicy, InitialConfigIsBaseline) {
  PtPolicy pt = make_pt();
  const ResourceConfig cfg = pt.initial_config(kCores, kWays);
  EXPECT_EQ(cfg, ResourceConfig::baseline(kCores, kWays));
}

TEST(PtPolicy, FirstSampleAlwaysAllOn) {
  // Paper: "The first sampling interval is always {on, on}" — earlier
  // epochs may have left prefetchers off.
  PtPolicy pt = make_pt();
  pt.initial_config(kCores, kWays);
  pt.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto first = pt.next_sample();
  ASSERT_TRUE(first.has_value());
  for (const bool on : first->prefetch_on) EXPECT_TRUE(on);
}

TEST(PtPolicy, DetectsAggSetFromFirstSample) {
  PtPolicy pt = make_pt();
  pt.initial_config(kCores, kWays);
  pt.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  Script script;
  run_profiling(
      pt, kCores, [&](CoreId c, const ResourceConfig& cfg) { return script.ipc(c, cfg); },
      [&](CoreId c, const ResourceConfig& cfg) { return script.counters(c, cfg); });
  EXPECT_EQ(pt.agg_set(), (std::vector<CoreId>{0, 1}));
}

TEST(PtPolicy, ExhaustiveSearchSamplesAllCombos) {
  PtPolicy pt = make_pt();
  pt.initial_config(kCores, kWays);
  pt.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  Script script;
  const auto outcome = run_profiling(
      pt, kCores, [&](CoreId c, const ResourceConfig& cfg) { return script.ipc(c, cfg); },
      [&](CoreId c, const ResourceConfig& cfg) { return script.counters(c, cfg); });
  // |Agg| = 2 -> 2^2 = 4 combos, combo "all on" measured by interval 0.
  EXPECT_EQ(outcome.samples.size(), 4u);
  // Interval 1 is the all-off probe (friendliness detection).
  EXPECT_FALSE(outcome.samples[1].config.prefetch_on[0]);
  EXPECT_FALSE(outcome.samples[1].config.prefetch_on[1]);
}

TEST(PtPolicy, PicksBestHmIpcCombo) {
  // Quiet cores collapse (0.5 vs 2.0) whenever any aggressive prefetcher
  // is on: hm_ipc is maximised by the all-off combo.
  PtPolicy pt = make_pt();
  pt.initial_config(kCores, kWays);
  pt.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  Script script;
  script.quiet_free = 2.0;
  const auto outcome = run_profiling(
      pt, kCores, [&](CoreId c, const ResourceConfig& cfg) { return script.ipc(c, cfg); },
      [&](CoreId c, const ResourceConfig& cfg) { return script.counters(c, cfg); });
  EXPECT_FALSE(outcome.final.prefetch_on[0]);
  EXPECT_FALSE(outcome.final.prefetch_on[1]);
  // Non-Agg cores are never throttled.
  for (CoreId c = 2; c < kCores; ++c) EXPECT_TRUE(outcome.final.prefetch_on[c]);
}

TEST(PtPolicy, KeepsPrefetchOnWhenInterferenceMild) {
  // Interference negligible: all-on maximises hm_ipc.
  PtPolicy pt = make_pt();
  pt.initial_config(kCores, kWays);
  pt.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  Script script;
  script.quiet_under_interference = 0.98;
  const auto outcome = run_profiling(
      pt, kCores, [&](CoreId c, const ResourceConfig& cfg) { return script.ipc(c, cfg); },
      [&](CoreId c, const ResourceConfig& cfg) { return script.counters(c, cfg); });
  EXPECT_TRUE(outcome.final.prefetch_on[0]);
  EXPECT_TRUE(outcome.final.prefetch_on[1]);
}

TEST(PtPolicy, EmptyAggSetEndsProfilingImmediately) {
  PtPolicy pt = make_pt();
  pt.initial_config(kCores, kWays);
  pt.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto outcome = run_profiling(
      pt, kCores, [](CoreId, const ResourceConfig&) { return 1.0; },
      [](CoreId, const ResourceConfig&) { return quiet_counters(1.0); });
  EXPECT_EQ(outcome.samples.size(), 1u);  // just the all-on probe
  EXPECT_EQ(outcome.final, ResourceConfig::baseline(kCores, kWays));
}

TEST(PtPolicy, GroupLevelThrottlingForLargeAggSets) {
  // 6 aggressive cores with max_exhaustive 3 -> k-means groups (<= 3)
  // -> at most 2^3 = 8 sampled combos instead of 2^6 = 64.
  PtPolicy pt = make_pt(3, 3);
  pt.initial_config(kCores, kWays);
  pt.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  Script script;
  script.n_agg = 6;
  const auto outcome = run_profiling(
      pt, kCores, [&](CoreId c, const ResourceConfig& cfg) { return script.ipc(c, cfg); },
      [&](CoreId c, const ResourceConfig& cfg) { return script.counters(c, cfg); });
  EXPECT_EQ(pt.agg_set().size(), 6u);
  EXPECT_LE(outcome.samples.size(), 8u);
  EXPECT_EQ(pt.groups().size(), 6u);
  for (const unsigned g : pt.groups()) EXPECT_LT(g, 3u);
}

TEST(PtPolicy, GroupMembersThrottledTogether) {
  PtPolicy pt = make_pt(1, 1);  // force a single group
  pt.initial_config(kCores, kWays);
  pt.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  Script script;
  script.quiet_free = 3.0;  // all-off wins
  const auto outcome = run_profiling(
      pt, kCores, [&](CoreId c, const ResourceConfig& cfg) { return script.ipc(c, cfg); },
      [&](CoreId c, const ResourceConfig& cfg) { return script.counters(c, cfg); });
  EXPECT_EQ(outcome.final.prefetch_on[0], outcome.final.prefetch_on[1]);
}

TEST(PtPolicy, NeverTouchesWayMasks) {
  PtPolicy pt = make_pt();
  pt.initial_config(kCores, kWays);
  pt.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  Script script;
  const auto outcome = run_profiling(
      pt, kCores, [&](CoreId c, const ResourceConfig& cfg) { return script.ipc(c, cfg); },
      [&](CoreId c, const ResourceConfig& cfg) { return script.counters(c, cfg); });
  for (const auto& s : outcome.samples) {
    for (const WayMask m : s.config.way_masks) EXPECT_EQ(m, full_mask(kWays));
  }
  for (const WayMask m : outcome.final.way_masks) EXPECT_EQ(m, full_mask(kWays));
}

}  // namespace
}  // namespace cmm::core
