// Dynamic-behaviour locks for the detection/epoch interplay that the
// paper's design depends on:
//  - the first sampling interval always re-enables every prefetcher, so
//    an Agg core that was throttled in the previous epoch is detected
//    again (paper Sec. III-B1: "some cores' prefetchers could have been
//    turned off in the last execution epoch");
//  - the detected Agg set is stable across profiling rounds for a
//    phase-stable workload;
//  - a phase change moves a core in and out of the Agg set.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/epoch_driver.hpp"
#include "core/policy_cmm.hpp"
#include "core/policy_pt.hpp"
#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"
#include "workloads/phased.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::core {
namespace {

sim::MachineConfig machine() { return sim::MachineConfig::scaled(16); }

EpochConfig epochs() {
  EpochConfig e;
  e.execution_epoch = 800'000;
  e.sampling_interval = 40'000;
  return e;
}

DetectorConfig detector() {
  DetectorConfig d;
  d.freq_ghz = machine().freq_ghz;
  return d;
}

TEST(DetectionDynamics, ThrottledCoresAreRedetectedNextEpoch) {
  // A PrefUnfri mix: PT will throttle the rand-access cores. If the
  // all-on probe did not exist, the throttled cores would show zero
  // prefetch activity next round and silently escape detection.
  auto cfg = machine();
  sim::MulticoreSystem sys(cfg);
  const auto mix = workloads::make_mixes(workloads::MixCategory::PrefUnfri, 1, cfg.num_cores, 7)
                       .front();
  workloads::attach_mix(sys, mix, 42);

  PtPolicy::Options opts;
  opts.detector = detector();
  PtPolicy policy(opts);
  EpochDriver driver(sys, policy, epochs());

  std::vector<std::vector<CoreId>> agg_per_round;
  for (int round = 0; round < 3; ++round) {
    driver.run(epochs().execution_epoch + 10 * epochs().sampling_interval);
    agg_per_round.push_back(policy.agg_set());
  }
  ASSERT_FALSE(agg_per_round[0].empty());
  // Stable across rounds even though the final config throttles.
  EXPECT_EQ(agg_per_round[1], agg_per_round[0]);
  EXPECT_EQ(agg_per_round[2], agg_per_round[0]);
}

TEST(DetectionDynamics, CmmFriendlyUnfriendlySplitIsStable) {
  auto cfg = machine();
  sim::MulticoreSystem sys(cfg);
  const auto mix =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg.num_cores, 7).front();
  workloads::attach_mix(sys, mix, 42);

  CmmPolicy::Options opts;
  opts.detector = detector();
  CmmPolicy policy(opts);
  EpochDriver driver(sys, policy, epochs());

  driver.run(2 * (epochs().execution_epoch + 10 * epochs().sampling_interval));
  const auto friendly_first = policy.friendly_cores();
  const auto unfriendly_first = policy.unfriendly_cores();
  ASSERT_FALSE(friendly_first.empty());
  ASSERT_FALSE(unfriendly_first.empty());

  driver.run(epochs().execution_epoch + 10 * epochs().sampling_interval);
  EXPECT_EQ(policy.friendly_cores(), friendly_first);
  EXPECT_EQ(policy.unfriendly_cores(), unfriendly_first);
}

TEST(DetectionDynamics, PhaseChangeMovesCoreInAndOutOfAggSet) {
  // Core 0 alternates quiet <-> aggressive stream; CMM must include it
  // in the Agg set during stream phases only (paper footnote 3).
  auto cfg = machine();
  sim::MulticoreSystem sys(cfg);
  const Cycle phase_insts = 1'500'000;
  sys.set_op_source(0, std::make_shared<workloads::PhasedOpSource>(
                           std::vector<workloads::PhasedOpSource::Phase>{
                               {"gobmk", phase_insts}, {"libquantum", phase_insts}},
                           cfg, 0, 42));
  const std::vector<std::string> background{"mcf",   "soplex", "povray", "namd",
                                            "gobmk", "astar",  "calculix"};
  for (CoreId c = 1; c < cfg.num_cores; ++c) {
    sys.set_op_source(c, workloads::make_op_source(background[c - 1], cfg, c, 42 + c));
  }

  CmmPolicy::Options opts;
  opts.detector = detector();
  CmmPolicy policy(opts);
  EpochDriver driver(sys, policy, epochs());

  bool seen_in_agg = false;
  bool seen_out_of_agg = false;
  for (int round = 0; round < 10; ++round) {
    driver.run(epochs().execution_epoch + 10 * epochs().sampling_interval);
    const auto& agg = policy.agg_set();
    const bool core0_in = std::find(agg.begin(), agg.end(), 0u) != agg.end();
    (core0_in ? seen_in_agg : seen_out_of_agg) = true;
  }
  EXPECT_TRUE(seen_in_agg) << "core 0's stream phase never detected";
  EXPECT_TRUE(seen_out_of_agg) << "core 0's quiet phase never released";
}

TEST(DetectionDynamics, CmmConfinesAggressorOccupancy) {
  // End-to-end physical effect: after CMM-a converges, the aggressive
  // cores' combined LLC footprint is bounded by their partition (plus
  // stale lines the victims have not yet reclaimed).
  auto cfg = machine();
  sim::MulticoreSystem sys(cfg);
  const auto mix =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg.num_cores, 7).front();
  workloads::attach_mix(sys, mix, 42);

  CmmPolicy::Options opts;
  opts.detector = detector();
  CmmPolicy policy(opts);
  EpochDriver driver(sys, policy, epochs());
  driver.run(8'000'000);

  const auto& agg = policy.agg_set();
  ASSERT_FALSE(agg.empty());
  WayMask agg_union = 0;
  for (const CoreId c : agg) agg_union |= sys.cat().core_mask(c);
  const std::uint64_t partition_lines =
      static_cast<std::uint64_t>(popcount(agg_union)) * sys.llc().num_sets();

  const auto occ = sys.llc().occupancy_by_owner(cfg.num_cores);
  std::uint64_t agg_lines = 0;
  for (const CoreId c : agg) agg_lines += occ[c];
  EXPECT_LE(agg_lines, partition_lines + partition_lines / 2)
      << "aggressors hold far more LLC than their partition allows";
}

}  // namespace
}  // namespace cmm::core
