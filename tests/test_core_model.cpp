#include <gtest/gtest.h>

#include <memory>

#include "sim/multicore_system.hpp"

namespace cmm::sim {
namespace {

/// Deterministic source: every op is `inst_per_op` instructions plus a
/// memory reference produced by a fixed stride walk.
class StrideSource final : public OpSource {
 public:
  StrideSource(Addr base, std::uint64_t stride, CoreTraits traits, std::uint32_t inst_per_op = 4)
      : base_(base), stride_(stride), traits_(traits), inst_(inst_per_op) {}

  Op next() override {
    Op op;
    op.instructions = inst_;
    op.has_mem = true;
    op.mem = MemRef{base_ + pos_, 1, false};
    pos_ += stride_;
    return op;
  }
  CoreTraits traits() const override { return traits_; }
  void reset() override { pos_ = 0; }

 private:
  Addr base_;
  std::uint64_t stride_;
  CoreTraits traits_;
  std::uint32_t inst_;
  std::uint64_t pos_ = 0;
};

/// Repeats accesses to a single line: after the first miss, pure L1 hits.
class SingleLineSource final : public OpSource {
 public:
  Op next() override {
    Op op;
    op.instructions = 2;
    op.has_mem = true;
    op.mem = MemRef{0x1000, 1, false};
    return op;
  }
  CoreTraits traits() const override { return {0.5, 4.0}; }
  void reset() override {}
};

MachineConfig small_cfg() {
  MachineConfig cfg = MachineConfig::scaled(16);
  cfg.num_cores = 1;
  return cfg;
}

TEST(CoreModel, AdvancesToTarget) {
  MulticoreSystem sys(small_cfg());
  sys.set_op_source(0, std::make_shared<SingleLineSource>());
  sys.run(10'000);
  EXPECT_GE(sys.core(0).now(), 10'000u);
  EXPECT_GT(sys.pmu().core(0).instructions, 0u);
}

TEST(CoreModel, L1HitIpcMatchesBaseCpi) {
  MulticoreSystem sys(small_cfg());
  sys.set_op_source(0, std::make_shared<SingleLineSource>());
  sys.run(100'000);
  // One cold miss, then everything hits L1: IPC -> 1 / base_cpi = 2.
  EXPECT_NEAR(sys.pmu().core(0).ipc(), 2.0, 0.05);
  EXPECT_LE(sys.pmu().core(0).l2_dm_req, 2u);
}

TEST(CoreModel, StreamWithoutPrefetchPaysDram) {
  auto cfg = small_cfg();
  MulticoreSystem sys(cfg);
  sys.core(0).prefetch_msr().set_all(false);
  sys.set_op_source(0, std::make_shared<StrideSource>(0x100000, 64, CoreTraits{0.5, 4.0}));
  sys.run(200'000);
  const auto& ctr = sys.pmu().core(0);
  // Every line is a fresh DRAM miss.
  EXPECT_GT(ctr.l3_load_miss, 500u);
  EXPECT_EQ(ctr.dram_prefetch_bytes, 0u);
  EXPECT_GT(ctr.stalls_l2_pending, 0u);
}

TEST(CoreModel, PrefetchingLiftsStreamIpc) {
  auto cfg = small_cfg();
  double ipc_off = 0.0;
  double ipc_on = 0.0;
  for (const bool pf : {false, true}) {
    MulticoreSystem sys(cfg);
    sys.core(0).prefetch_msr().set_all(pf);
    sys.set_op_source(0, std::make_shared<StrideSource>(0x100000, 64, CoreTraits{0.5, 4.0}));
    sys.run(500'000);
    (pf ? ipc_on : ipc_off) = sys.pmu().core(0).ipc();
  }
  EXPECT_GT(ipc_on, ipc_off * 1.5) << "streamer should hide most DRAM latency";
}

TEST(CoreModel, PmuEventPlumbing) {
  auto cfg = small_cfg();
  MulticoreSystem sys(cfg);
  sys.set_op_source(0, std::make_shared<StrideSource>(0x100000, 64, CoreTraits{0.5, 4.0}));
  sys.run(300'000);
  const auto& ctr = sys.pmu().core(0);
  EXPECT_GT(ctr.l2_pref_req, 0u);
  EXPECT_GT(ctr.l2_pref_miss, 0u);
  EXPECT_LE(ctr.l2_pref_miss, ctr.l2_pref_req);
  EXPECT_LE(ctr.l2_dm_miss, ctr.l2_dm_req);
  EXPECT_GT(ctr.dram_prefetch_bytes, 0u);
  EXPECT_EQ(ctr.cycles, sys.core(0).now());
}

TEST(CoreModel, MsrGatesPrefetchTraffic) {
  auto cfg = small_cfg();
  MulticoreSystem sys(cfg);
  sys.core(0).prefetch_msr().set_all(false);
  sys.set_op_source(0, std::make_shared<StrideSource>(0x100000, 64, CoreTraits{0.5, 4.0}));
  sys.run(200'000);
  EXPECT_EQ(sys.pmu().core(0).l2_pref_req, 0u);
  EXPECT_EQ(sys.pmu().core(0).dram_prefetch_bytes, 0u);
}

TEST(CoreModel, StoresCountedAsDemandNotLoadMiss) {
  class StoreSource final : public OpSource {
   public:
    Op next() override {
      Op op;
      op.instructions = 2;
      op.has_mem = true;
      op.mem = MemRef{pos_, 1, true};  // all stores
      pos_ += 64;
      return op;
    }
    CoreTraits traits() const override { return {0.5, 4.0}; }
    void reset() override {}

   private:
    Addr pos_ = 0x200000;
  };
  auto cfg = small_cfg();
  MulticoreSystem sys(cfg);
  sys.core(0).prefetch_msr().set_all(false);
  sys.set_op_source(0, std::make_shared<StoreSource>());
  sys.run(100'000);
  const auto& ctr = sys.pmu().core(0);
  EXPECT_GT(ctr.l2_dm_miss, 0u);
  EXPECT_EQ(ctr.l3_load_miss, 0u);  // loads only
  EXPECT_GT(ctr.dram_demand_bytes, 0u);
}

TEST(CoreModel, ResetMicroarchFlushesCaches) {
  auto cfg = small_cfg();
  MulticoreSystem sys(cfg);
  sys.set_op_source(0, std::make_shared<SingleLineSource>());
  sys.run(10'000);
  EXPECT_TRUE(sys.core(0).l1().contains(0x1000 >> 6));
  sys.reset_microarch();
  EXPECT_FALSE(sys.core(0).l1().contains(0x1000 >> 6));
  EXPECT_FALSE(sys.llc().contains(0x1000 >> 6));
}

TEST(CoreModel, DeterministicAcrossRuns) {
  auto cfg = small_cfg();
  std::uint64_t insts[2];
  for (int i = 0; i < 2; ++i) {
    MulticoreSystem sys(cfg);
    sys.set_op_source(0, std::make_shared<StrideSource>(0x100000, 128, CoreTraits{0.4, 3.0}));
    sys.run(250'000);
    insts[i] = sys.pmu().core(0).instructions;
  }
  EXPECT_EQ(insts[0], insts[1]);
}

}  // namespace
}  // namespace cmm::sim
