#include <gtest/gtest.h>

#include <set>

#include "workloads/address_stream.hpp"

namespace cmm::workloads {
namespace {

TEST(StreamPattern, SequentialAndWrapping) {
  StreamPattern s(0x1000, 256, 1, 8);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(s.next().addr, 0x1000u + 8u * i);
  }
  EXPECT_EQ(s.next().addr, 0x1000u);  // wrapped
}

TEST(StreamPattern, ResetRestarts) {
  StreamPattern s(0, 1024, 1);
  s.next();
  s.next();
  s.reset();
  EXPECT_EQ(s.next().addr, 0u);
}

TEST(StridedPattern, StrideAndWrap) {
  StridedPattern s(0, 1024, 256, 2);
  EXPECT_EQ(s.next().addr, 0u);
  EXPECT_EQ(s.next().addr, 256u);
  EXPECT_EQ(s.next().addr, 512u);
  EXPECT_EQ(s.next().addr, 768u);
  EXPECT_EQ(s.next().addr, 0u);
}

TEST(RandomPattern, StaysInRegionAndCovers) {
  Rng rng(3);
  RandomPattern p(0x4000, 64 * 64, 1, rng);  // 64 lines
  std::set<Addr> lines;
  for (int i = 0; i < 4000; ++i) {
    const Addr a = p.next().addr;
    ASSERT_GE(a, 0x4000u);
    ASSERT_LT(a, 0x4000u + 64u * 64u);
    EXPECT_EQ(a % 64, 0u);
    lines.insert(a / 64);
  }
  EXPECT_EQ(lines.size(), 64u);  // full coverage
}

TEST(RandomPattern, SparseStrideTouchesOnlyEveryOtherLine) {
  Rng rng(5);
  RandomPattern p(0, 64 * 128, 1, rng, /*stride_lines=*/2);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ((p.next().addr / 64) % 2, 0u);  // even lines only
  }
}

TEST(RandomPattern, ResetReplays) {
  Rng rng(7);
  RandomPattern p(0, 64 * 256, 1, rng);
  std::vector<Addr> first;
  for (int i = 0; i < 50; ++i) first.push_back(p.next().addr);
  p.reset();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p.next().addr, first[i]);
}

TEST(BurstRandomPattern, BurstsAreSequentialRuns) {
  Rng rng(11);
  BurstRandomPattern p(0, 1 << 20, 1, rng, 3, 3);  // fixed burst length 3
  for (int burst = 0; burst < 100; ++burst) {
    const Addr a0 = p.next().addr / 64;
    const Addr a1 = p.next().addr / 64;
    const Addr a2 = p.next().addr / 64;
    EXPECT_EQ(a1, a0 + 1);
    EXPECT_EQ(a2, a0 + 2);
  }
}

TEST(BurstRandomPattern, JumpsBetweenBursts) {
  Rng rng(13);
  BurstRandomPattern p(0, 1 << 24, 1, rng, 2, 2);
  int adjacent_jumps = 0;
  Addr prev_end = 0;
  for (int burst = 0; burst < 200; ++burst) {
    const Addr start = p.next().addr / 64;
    p.next();
    if (burst > 0 && start == prev_end + 1) ++adjacent_jumps;
    prev_end = start + 1;
  }
  EXPECT_LT(adjacent_jumps, 5);  // jumps land at random pages
}

TEST(ChasePattern, VisitsWholeWorkingSetOnce) {
  Rng rng(17);
  constexpr std::uint64_t kLines = 64;
  ChasePattern p(0, kLines * 64, 1, rng);
  std::set<Addr> seen;
  for (std::uint64_t i = 0; i < kLines; ++i) {
    const Addr a = p.next().addr / 64;
    EXPECT_TRUE(seen.insert(a).second) << "revisited before full cycle";
  }
  // The cycle then repeats from the same start.
  EXPECT_EQ(p.next().addr, 0u);
}

TEST(ChasePattern, LinesPerNodeWalksNodeSequentially) {
  Rng rng(19);
  ChasePattern p(0, 64 * 64, 1, rng, /*lines_per_node=*/2);
  for (int node = 0; node < 16; ++node) {
    const Addr a = p.next().addr / 64;
    const Addr b = p.next().addr / 64;
    EXPECT_EQ(b, a + 1);
    EXPECT_EQ(a % 2, 0u);
  }
}

TEST(ChasePattern, NodeStrideLeavesHoles) {
  Rng rng(23);
  ChasePattern p(0, 64 * 64, 1, rng, 1, /*node_stride_lines=*/2);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ((p.next().addr / 64) % 2, 0u);  // odd lines never touched
  }
}

TEST(MixturePattern, RespectsWeights) {
  Rng rng(29);
  std::vector<std::pair<double, std::unique_ptr<AddressStream>>> parts;
  parts.emplace_back(0.9, std::make_unique<StreamPattern>(0, 1 << 20, 1, 64));
  parts.emplace_back(0.1, std::make_unique<StreamPattern>(1ULL << 40, 1 << 20, 9, 64));
  MixturePattern mix(std::move(parts), rng);
  int high = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (mix.next().addr >= (1ULL << 40)) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / kN, 0.1, 0.02);
}

TEST(MixturePattern, DistinctIps) {
  Rng rng(31);
  std::vector<std::pair<double, std::unique_ptr<AddressStream>>> parts;
  parts.emplace_back(0.5, std::make_unique<StreamPattern>(0, 1 << 16, 1, 64));
  parts.emplace_back(0.5, std::make_unique<StreamPattern>(1 << 20, 1 << 16, 2, 64));
  MixturePattern mix(std::move(parts), rng);
  std::set<IpId> ips;
  for (int i = 0; i < 100; ++i) ips.insert(mix.next().ip);
  EXPECT_EQ(ips.size(), 2u);
}

}  // namespace
}  // namespace cmm::workloads
