#include <gtest/gtest.h>

#include "core/policy_cp.hpp"
#include "policy_test_util.hpp"

namespace cmm::core {
namespace {

using test::aggressive_counters;
using test::quiet_counters;
using test::run_profiling;

constexpr unsigned kCores = 8;
constexpr unsigned kWays = 20;

CpPolicy make_cp(CpVariant variant) {
  CpPolicy::Options o;
  o.detector = test::test_detector();
  o.variant = variant;
  return CpPolicy(o);
}

/// Cores 0,1 aggressive+friendly (2x from prefetching); cores 2,3
/// aggressive+unfriendly (1.05x); rest quiet.
double scripted_ipc(CoreId c, const ResourceConfig& cfg) {
  if (c < 2) return cfg.prefetch_on[c] ? 2.0 : 1.0;
  if (c < 4) return cfg.prefetch_on[c] ? 1.05 : 1.0;
  return 1.0;
}

sim::PmuCounters scripted_counters(CoreId c, const ResourceConfig& cfg) {
  if (c < 4 && cfg.prefetch_on[c]) return aggressive_counters(1.0);
  return quiet_counters(1.0);
}

TEST(CpPolicy, Names) {
  EXPECT_EQ(make_cp(CpVariant::PrefCp).name(), "pref_cp");
  EXPECT_EQ(make_cp(CpVariant::PrefCp2).name(), "pref_cp2");
}

TEST(CpPolicy, UsesExactlyTwoProbes) {
  // Paper: "CP just needs the first two sampling intervals".
  CpPolicy cp = make_cp(CpVariant::PrefCp);
  cp.initial_config(kCores, kWays);
  cp.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto outcome = run_profiling(cp, kCores, scripted_ipc, scripted_counters);
  EXPECT_EQ(outcome.samples.size(), 2u);
}

TEST(CpPolicy, PrefCpPutsWholeAggSetInSmallPartition) {
  CpPolicy cp = make_cp(CpVariant::PrefCp);
  cp.initial_config(kCores, kWays);
  cp.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto outcome = run_profiling(cp, kCores, scripted_ipc, scripted_counters);
  EXPECT_EQ(cp.agg_set(), (std::vector<CoreId>{0, 1, 2, 3}));
  // 1.5 x 4 = 6 ways at the low end for all Agg cores.
  const WayMask small = contiguous_mask(0, 6);
  for (CoreId c = 0; c < 4; ++c) EXPECT_EQ(outcome.final.way_masks[c], small);
  for (CoreId c = 4; c < kCores; ++c) EXPECT_EQ(outcome.final.way_masks[c], full_mask(kWays));
}

TEST(CpPolicy, PrefetchersStayOnUnderCp) {
  CpPolicy cp = make_cp(CpVariant::PrefCp);
  cp.initial_config(kCores, kWays);
  cp.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto outcome = run_profiling(cp, kCores, scripted_ipc, scripted_counters);
  for (const bool on : outcome.final.prefetch_on) EXPECT_TRUE(on);
}

TEST(CpPolicy, PrefCp2SplitsFriendlyAndUnfriendly) {
  CpPolicy cp = make_cp(CpVariant::PrefCp2);
  cp.initial_config(kCores, kWays);
  cp.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto outcome = run_profiling(cp, kCores, scripted_ipc, scripted_counters);
  // Friendly {0,1} -> 3 ways at the bottom; unfriendly {2,3} -> next 3.
  const WayMask friendly_mask = contiguous_mask(0, 3);
  const WayMask unfriendly_mask = contiguous_mask(3, 3);
  EXPECT_EQ(outcome.final.way_masks[0], friendly_mask);
  EXPECT_EQ(outcome.final.way_masks[1], friendly_mask);
  EXPECT_EQ(outcome.final.way_masks[2], unfriendly_mask);
  EXPECT_EQ(outcome.final.way_masks[3], unfriendly_mask);
  // Disjoint partitions.
  EXPECT_EQ(friendly_mask & unfriendly_mask, 0u);
  for (CoreId c = 4; c < kCores; ++c) EXPECT_EQ(outcome.final.way_masks[c], full_mask(kWays));
}

TEST(CpPolicy, EmptyAggSetLeavesCacheUnpartitioned) {
  CpPolicy cp = make_cp(CpVariant::PrefCp);
  cp.initial_config(kCores, kWays);
  cp.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto outcome = run_profiling(
      cp, kCores, [](CoreId, const ResourceConfig&) { return 1.0; },
      [](CoreId, const ResourceConfig&) { return quiet_counters(1.0); });
  EXPECT_EQ(outcome.samples.size(), 1u);  // second probe skipped
  EXPECT_EQ(outcome.final, ResourceConfig::baseline(kCores, kWays));
}

TEST(CpPolicy, ProbesKeepCurrentMasks) {
  // Second round probes must not reset the partition the first round
  // established (otherwise aggressive cores flush the protected LLC
  // state during every profiling epoch).
  CpPolicy cp = make_cp(CpVariant::PrefCp);
  cp.initial_config(kCores, kWays);
  cp.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto round1 = run_profiling(cp, kCores, scripted_ipc, scripted_counters);
  ASSERT_NE(round1.final.way_masks[0], full_mask(kWays));

  cp.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto probe = cp.next_sample();
  ASSERT_TRUE(probe.has_value());
  EXPECT_EQ(probe->way_masks, round1.final.way_masks);
  for (const bool on : probe->prefetch_on) EXPECT_TRUE(on);  // probe 1: all on
}

// The mask helpers are shared with CMM; pin their geometry rules.
TEST(MaskHelpers, SmallPartitionSizing) {
  const auto masks = masks_small_partition({0, 1, 2}, 8, 20);
  EXPECT_EQ(masks[0], contiguous_mask(0, 5));  // round(1.5*3) = 5
  EXPECT_EQ(masks[3], full_mask(20));
}

TEST(MaskHelpers, SmallPartitionClampedToCache) {
  // 16 Agg cores would want 24 ways; clamp to ways-1.
  std::vector<CoreId> agg(16);
  for (CoreId c = 0; c < 16; ++c) agg[c] = c;
  const auto masks = masks_small_partition(agg, 16, 20);
  EXPECT_EQ(popcount(masks[0]), 19u);
}

TEST(MaskHelpers, TwoPartitionsShrinkToFit) {
  // 8 + 8 cores want 12 + 12 ways in a 20-way cache: shrink until they
  // fit with head room.
  std::vector<CoreId> first{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<CoreId> second{8, 9, 10, 11, 12, 13, 14, 15};
  const auto masks = masks_two_partitions(first, second, 16, 20);
  const unsigned w1 = popcount(masks[0]);
  const unsigned w2 = popcount(masks[8]);
  EXPECT_LT(w1 + w2, 20u);
  EXPECT_GE(w1, 1u);
  EXPECT_GE(w2, 1u);
  EXPECT_EQ(masks[0] & masks[8], 0u);  // disjoint
}

TEST(MaskHelpers, EmptySubsetsHandled) {
  const auto masks = masks_two_partitions({}, {2}, 4, 20);
  EXPECT_EQ(masks[0], full_mask(20));
  EXPECT_EQ(popcount(masks[2]), 2u);  // round(1.5*1) = 2
}

}  // namespace
}  // namespace cmm::core
namespace cmm::core {
namespace {

TEST(MaskHelpers, PartitionScaleOption) {
  // The 1.5x rule is a policy option; other scales resize the partition.
  EXPECT_EQ(popcount(masks_small_partition({0, 1, 2, 3}, 8, 20, 0.5)[0]), 2u);
  EXPECT_EQ(popcount(masks_small_partition({0, 1, 2, 3}, 8, 20, 1.0)[0]), 4u);
  EXPECT_EQ(popcount(masks_small_partition({0, 1, 2, 3}, 8, 20, 1.5)[0]), 6u);
  EXPECT_EQ(popcount(masks_small_partition({0, 1, 2, 3}, 8, 20, 2.5)[0]), 10u);
  // Always clamped below the full cache.
  EXPECT_EQ(popcount(masks_small_partition({0, 1, 2, 3}, 8, 20, 10.0)[0]), 19u);
}

TEST(SampleObjectiveHelper, RanksDifferently) {
  // Core A fast / core B starved vs both medium: the harmonic objective
  // prefers the fair configuration, the sum objective the fast one.
  std::vector<sim::PmuCounters> unfair(2);
  unfair[0].cycles = unfair[1].cycles = 1000;
  unfair[0].instructions = 3000;  // ipc 3.0
  unfair[1].instructions = 100;   // ipc 0.1
  std::vector<sim::PmuCounters> fair(2);
  fair[0].cycles = fair[1].cycles = 1000;
  fair[0].instructions = fair[1].instructions = 1200;  // ipc 1.2 each

  EXPECT_GT(sample_objective_value(SampleObjective::HmIpc, fair),
            sample_objective_value(SampleObjective::HmIpc, unfair));
  EXPECT_GT(sample_objective_value(SampleObjective::SumIpc, unfair),
            sample_objective_value(SampleObjective::SumIpc, fair));
}

}  // namespace
}  // namespace cmm::core
