#include <gtest/gtest.h>

#include "sim/cat.hpp"

namespace cmm::sim {
namespace {

TEST(Cat, ResetStateIsUnpartitioned) {
  CatModel cat(8, 20);
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_EQ(cat.core_mask(c), full_mask(20));
    EXPECT_EQ(cat.core_cos(c), 0u);
  }
}

TEST(Cat, ProgramAndAssign) {
  CatModel cat(8, 20);
  cat.set_cbm(1, contiguous_mask(0, 6));
  cat.assign_core(3, 1);
  EXPECT_EQ(cat.core_mask(3), contiguous_mask(0, 6));
  EXPECT_EQ(cat.core_mask(2), full_mask(20));  // others untouched
}

TEST(Cat, RejectsInvalidCbm) {
  CatModel cat(4, 20);
  EXPECT_THROW(cat.set_cbm(0, 0), std::invalid_argument);           // empty
  EXPECT_THROW(cat.set_cbm(0, 0b101), std::invalid_argument);       // hole
  EXPECT_THROW(cat.set_cbm(0, 1u << 20), std::invalid_argument);    // out of range
}

TEST(Cat, RejectsOutOfRangeIndices) {
  CatModel cat(4, 20, 4);
  EXPECT_THROW(cat.set_cbm(4, 1), std::invalid_argument);
  EXPECT_THROW(cat.assign_core(4, 0), std::invalid_argument);
  EXPECT_THROW(cat.assign_core(0, 4), std::invalid_argument);
  EXPECT_THROW((void)cat.core_cos(4), std::invalid_argument);
}

TEST(Cat, OverlappingPartitionsAllowed) {
  // CAT CBMs may overlap — the paper's design depends on it (neutral
  // cores keep the full mask while Agg cores get a subset).
  CatModel cat(4, 20);
  cat.set_cbm(0, full_mask(20));
  cat.set_cbm(1, contiguous_mask(0, 6));
  cat.assign_core(0, 1);
  cat.assign_core(1, 0);
  EXPECT_EQ(cat.core_mask(0) & cat.core_mask(1), contiguous_mask(0, 6));
}

TEST(Cat, ResetRestoresDefaults) {
  CatModel cat(4, 20);
  cat.set_cbm(2, contiguous_mask(3, 5));
  cat.assign_core(1, 2);
  cat.reset();
  EXPECT_EQ(cat.core_mask(1), full_mask(20));
  EXPECT_EQ(cat.cbm(2), full_mask(20));
}

TEST(Cat, ConstructorValidation) {
  EXPECT_THROW(CatModel(4, 0), std::invalid_argument);
  EXPECT_THROW(CatModel(4, 33), std::invalid_argument);
  EXPECT_THROW(CatModel(4, 20, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cmm::sim
