#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hw/fault_injection.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::hw {
namespace {

sim::MachineConfig cfg() {
  auto c = sim::MachineConfig::scaled(16);
  c.num_cores = 4;
  return c;
}

std::unique_ptr<sim::MulticoreSystem> make_loaded_system() {
  auto sys = std::make_unique<sim::MulticoreSystem>(cfg());
  for (CoreId c = 0; c < sys->num_cores(); ++c)
    sys->set_op_source(c, workloads::make_op_source("gobmk", sys->config(), c, c));
  return sys;
}

TEST(FaultPlan, DefaultPlanInjectsNothing) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());

  FaultInjector injector(plan);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NO_THROW(injector.maybe_fault(FaultOp::MsrWrite, 0));
    EXPECT_NO_THROW(injector.maybe_fault(FaultOp::CatApply, kInvalidCore));
  }
  EXPECT_EQ(injector.injected_faults(), 0u);

  std::vector<sim::PmuCounters> snapshot(4);
  snapshot[1].cycles = 123;
  auto copy = snapshot;
  injector.corrupt_snapshot(copy);
  EXPECT_EQ(copy[1].cycles, 123u);
  EXPECT_EQ(injector.corrupted_snapshots(), 0u);
}

TEST(FaultInjector, SameSeedYieldsIdenticalFaultStream) {
  const auto plan = FaultPlan::transient_everywhere(0.3, 99);
  FaultInjector a(plan);
  FaultInjector b(plan);

  auto stream = [](FaultInjector& inj) {
    std::vector<std::string> events;
    for (int i = 0; i < 200; ++i) {
      try {
        inj.maybe_fault(FaultOp::MsrWrite, static_cast<CoreId>(i % 4));
        events.emplace_back("ok");
      } catch (const HwFault& f) {
        events.emplace_back(f.what());
      }
    }
    return events;
  };
  EXPECT_EQ(stream(a), stream(b));
  EXPECT_GT(a.injected_faults(), 0u);
  EXPECT_EQ(a.injected_faults(), b.injected_faults());
}

TEST(FaultInjector, OfflineCoreAlwaysFailsPersistently) {
  FaultPlan plan;
  plan.offline_cores = {2};
  FaultInjector injector(plan);

  for (int i = 0; i < 5; ++i) {
    try {
      injector.maybe_fault(FaultOp::MsrWrite, 2);
      FAIL() << "offline core must fault";
    } catch (const HwFault& f) {
      EXPECT_FALSE(f.transient());
    }
  }
  // Other cores and machine-wide ops are unaffected.
  EXPECT_NO_THROW(injector.maybe_fault(FaultOp::MsrWrite, 1));
  EXPECT_NO_THROW(injector.maybe_fault(FaultOp::CatApply, kInvalidCore));
}

TEST(FaultInjector, PersistentFaultsAreStickyPerOpAndCore) {
  FaultPlan plan;
  plan.msr_write_fail_p = 1.0;
  plan.transient_fraction = 0.0;  // every injected fault is persistent
  FaultInjector injector(plan);

  EXPECT_THROW(injector.maybe_fault(FaultOp::MsrWrite, 1), HwFault);
  // Sticky: the same (op, core) fails forever, without further draws.
  for (int i = 0; i < 5; ++i) {
    try {
      injector.maybe_fault(FaultOp::MsrWrite, 1);
      FAIL() << "sticky persistent fault must keep failing";
    } catch (const HwFault& f) {
      EXPECT_FALSE(f.transient());
    }
  }
  // A different op on the same core has its own fate (reads never fail
  // under this plan).
  EXPECT_NO_THROW(injector.maybe_fault(FaultOp::MsrRead, 1));
}

TEST(FaultInjector, MbaDecoratorFaultsBeforeForwarding) {
  sim::MulticoreSystem sys(cfg());
  SimMbaController inner(sys);

  FaultPlan plan;
  plan.mba_apply_fail_p = 1.0;
  plan.transient_fraction = 0.0;
  FaultInjector injector(plan);
  FaultInjectingMbaController mba(inner, injector);

  EXPECT_THROW(mba.apply({1, 1, 1, 1}), HwFault);
  // Fail-before-mutate: the sim register bank never saw the levels.
  EXPECT_TRUE(sys.memory().unthrottled());
  // Reads pass through; reset has its own (zero-rate) op here.
  EXPECT_EQ(mba.current(), (std::vector<std::uint8_t>(4, 0)));
  EXPECT_EQ(mba.num_levels(), inner.num_levels());
  EXPECT_EQ(mba.num_cores(), 4u);
  inner.apply({2, 0, 0, 0});
  EXPECT_NO_THROW(mba.reset());
  EXPECT_TRUE(sys.memory().unthrottled());
}

TEST(FaultInjector, MbaResetFaultLeavesRegistersIntact) {
  sim::MulticoreSystem sys(cfg());
  SimMbaController inner(sys);

  FaultPlan plan;
  plan.mba_reset_fail_p = 1.0;
  plan.transient_fraction = 0.0;
  FaultInjector injector(plan);
  FaultInjectingMbaController mba(inner, injector);

  EXPECT_NO_THROW(mba.apply({0, 3, 0, 0}));
  EXPECT_THROW(mba.reset(), HwFault);
  EXPECT_EQ(sys.memory().throttle_level(1), 3u);  // stuck, as a real dead knob would be
}

TEST(FaultInjector, WrapCorruptionIsDetectedByPmuDelta) {
  auto sys_ptr = make_loaded_system();
  auto& sys = *sys_ptr;
  SimPmuReader inner(sys);

  FaultPlan plan;
  plan.pmu_wrap_p = 1.0;    // corrupt every snapshot
  plan.pmu_wrap_bits = 16;  // wrap at 65536 so a short run crosses it
  FaultInjector injector(plan);
  FaultInjectingPmuReader pmu(inner, injector);

  sys.run(150'000);                      // counters well past 2^16
  const auto before = inner.read_all();  // clean reference
  sys.run(100'000);
  const auto after = pmu.read_all();     // one core's counters wrapped below `before`
  EXPECT_GT(injector.corrupted_snapshots(), 0u);

  std::vector<bool> wrapped;
  pmu_delta(after, before, &wrapped);
  EXPECT_TRUE(std::any_of(wrapped.begin(), wrapped.end(), [](bool w) { return w; }));
}

TEST(FaultInjector, GarbageCorruptionReplacesOneCoreSnapshot) {
  auto sys_ptr = make_loaded_system();
  auto& sys = *sys_ptr;
  SimPmuReader inner(sys);

  FaultPlan plan;
  plan.pmu_garbage_p = 1.0;
  FaultInjector injector(plan);
  FaultInjectingPmuReader pmu(inner, injector);

  sys.run(10'000);
  const auto truth = inner.read_all();
  const auto corrupted = pmu.read_all();
  ASSERT_EQ(truth.size(), corrupted.size());

  unsigned differing = 0;
  for (std::size_t c = 0; c < truth.size(); ++c) {
    if (corrupted[c].cycles != truth[c].cycles) ++differing;
  }
  EXPECT_EQ(differing, 1u);  // exactly one core's snapshot is garbage
}

}  // namespace
}  // namespace cmm::hw
