#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace cmm {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextDoubleRoughlyUniform) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  // The child must not replay the parent's sequence.
  Rng parent2(42);
  parent2.next();  // advance past the split draw
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == parent2.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value of splitmix64 for state 0 (widely published).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace cmm
