// The graceful-degradation ladder, asserted end to end through the
// EpochDriver with the fault-injecting HAL: which HealthLog rungs fire
// and what state the (sim) hardware is left in.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/run_harness.hpp"
#include "common/bitmask.hpp"
#include "core/epoch_driver.hpp"
#include "core/policy_cmm.hpp"
#include "hw/fault_injection.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::core {
namespace {

sim::MachineConfig cfg() { return sim::MachineConfig::scaled(16); }

EpochConfig epochs() {
  EpochConfig e;
  e.execution_epoch = 200'000;
  e.sampling_interval = 10'000;
  return e;
}

std::unique_ptr<sim::MulticoreSystem> make_system() {
  auto sys = std::make_unique<sim::MulticoreSystem>(cfg());
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);
  workloads::attach_mix(*sys, mixes.front(), 42);
  return sys;
}

std::unique_ptr<Policy> cmm_a(double freq_ghz) {
  CmmPolicy::Options o;
  o.detector.freq_ghz = freq_ghz;
  o.variant = CmmVariant::A;
  return std::make_unique<CmmPolicy>(o);
}

/// Driver plus the fault-injecting HAL stack it runs on.
struct FaultedRun {
  std::unique_ptr<sim::MulticoreSystem> sys;
  std::unique_ptr<Policy> policy;
  hw::SimMsrDevice sim_msr;
  hw::SimPmuReader sim_pmu;
  hw::SimCatController sim_cat;
  hw::FaultInjector injector;
  hw::FaultInjectingMsrDevice msr;
  hw::FaultInjectingPmuReader pmu;
  hw::FaultInjectingCatController cat;
  EpochDriver driver;

  FaultedRun(const hw::FaultPlan& plan, std::unique_ptr<Policy> pol)
      : sys(make_system()),
        policy(std::move(pol)),
        sim_msr(*sys),
        sim_pmu(*sys),
        sim_cat(*sys),
        injector(plan),
        msr(sim_msr, injector),
        pmu(sim_pmu, injector),
        cat(sim_cat, injector),
        driver(*sys, *policy, msr, pmu, cat, epochs()) {}
};

/// Throws on every begin_profiling; the watchdog scenario.
class ThrowingPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "throwing"; }
  ResourceConfig initial_config(unsigned cores, unsigned ways) override {
    // Deliberately non-baseline so the watchdog has something to undo.
    ResourceConfig c = ResourceConfig::baseline(cores, ways);
    c.prefetch_on[0] = false;
    for (auto& m : c.way_masks) m = contiguous_mask(0, ways / 2);
    return c;
  }
  void begin_profiling(const std::vector<sim::PmuCounters>&) override {
    throw std::runtime_error("injected policy fault");
  }
  std::optional<ResourceConfig> next_sample() override { return std::nullopt; }
  void report_sample(const SampleStats&) override {}
  ResourceConfig final_config() override { return {}; }
};

TEST(DegradationLadder, PersistentCatFaultFallsBackToPtOnly) {
  hw::FaultPlan plan;
  plan.cat_apply_fail_p = 1.0;
  plan.transient_fraction = 0.0;  // persistent on first touch

  FaultedRun run(plan, cmm_a(cfg().freq_ghz));
  run.driver.run(600'000);

  EXPECT_TRUE(run.driver.health().has(HealthEventKind::PtOnlyFallback));
  EXPECT_FALSE(run.driver.cat_available());
  EXPECT_TRUE(run.driver.prefetch_available());
  EXPECT_FALSE(run.driver.health().has(HealthEventKind::ManagementLost));

  // The fallback resets CAT (reset itself is healthy under this plan),
  // so no core is left stuck with a partial mask.
  const WayMask full = full_mask(run.sys->cat().llc_ways());
  for (CoreId c = 0; c < run.sys->num_cores(); ++c)
    EXPECT_EQ(run.sys->cat().core_mask(c), full);
}

TEST(DegradationLadder, AllCoresOfflineFallsBackToCpOnly) {
  hw::FaultPlan plan;
  for (CoreId c = 0; c < cfg().num_cores; ++c) plan.offline_cores.push_back(c);

  FaultedRun run(plan, cmm_a(cfg().freq_ghz));
  run.driver.run(600'000);

  EXPECT_EQ(run.driver.health().count(HealthEventKind::CorePrefetchOffline),
            static_cast<std::size_t>(cfg().num_cores));
  EXPECT_TRUE(run.driver.health().has(HealthEventKind::CpOnlyFallback));
  EXPECT_FALSE(run.driver.prefetch_available());
  EXPECT_TRUE(run.driver.cat_available());  // CAT ops are machine-wide, not per-core
}

TEST(DegradationLadder, SingleOfflineCoreDoesNotLoseTheMechanism) {
  hw::FaultPlan plan;
  plan.offline_cores = {3};

  FaultedRun run(plan, cmm_a(cfg().freq_ghz));
  run.driver.run(600'000);

  const auto& health = run.driver.health();
  EXPECT_EQ(health.count(HealthEventKind::CorePrefetchOffline), 1u);
  EXPECT_EQ(health.events().front().core, 3u);
  EXPECT_FALSE(health.has(HealthEventKind::CpOnlyFallback));
  EXPECT_TRUE(run.driver.prefetch_available());
}

TEST(DegradationLadder, PolicyThrowTriggersWatchdogBaselineRestore) {
  FaultedRun run(hw::FaultPlan{}, std::make_unique<ThrowingPolicy>());
  run.driver.run(600'000);

  const auto& health = run.driver.health();
  ASSERT_TRUE(health.has(HealthEventKind::WatchdogRestore));
  for (const auto& e : health.events()) {
    if (e.kind == HealthEventKind::WatchdogRestore)
      EXPECT_EQ(e.detail, 1u);  // restore reached full baseline
  }

  // Hardware state below the fault layer: everything back to reset.
  const WayMask full = full_mask(run.sys->cat().llc_ways());
  for (CoreId c = 0; c < run.sys->num_cores(); ++c) {
    EXPECT_EQ(run.sys->cat().core_mask(c), full);
    EXPECT_TRUE(run.sys->core(c).prefetch_msr().all_enabled());
  }
}

TEST(DegradationLadder, WrappedSamplesAreQuarantined) {
  hw::FaultPlan plan;
  plan.pmu_wrap_p = 1.0;    // every snapshot (and re-read) corrupts
  plan.pmu_wrap_bits = 16;  // wrap point 65536, crossed almost immediately

  FaultedRun run(plan, cmm_a(cfg().freq_ghz));
  run.driver.run(600'000);

  const auto& health = run.driver.health();
  EXPECT_TRUE(health.has(HealthEventKind::PmuSnapshotReread));
  EXPECT_TRUE(health.has(HealthEventKind::PmuWrapSaturated));
  EXPECT_TRUE(health.has(HealthEventKind::SampleQuarantined));
  // Measurement faults never escalate the resource ladder.
  EXPECT_TRUE(run.driver.prefetch_available());
  EXPECT_TRUE(run.driver.cat_available());
}

TEST(DegradationLadder, TransientStormCompletesAndStaysManaged) {
  const auto plan = hw::FaultPlan::transient_everywhere(0.10, 7);
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);

  analysis::RunParams params;
  params.machine = cfg();
  params.run_cycles = 600'000;
  params.epochs = epochs();

  auto policy = cmm_a(cfg().freq_ghz);
  const auto out = analysis::run_mix_with_faults(mixes.front(), *policy, params, plan);
  EXPECT_TRUE(out.completed) << out.error;
  EXPECT_GT(out.hm_ipc, 0.0);
}

TEST(DegradationLadder, ZeroRatePlanIsBitIdenticalToPlainRun) {
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);
  analysis::RunParams params;
  params.machine = cfg();
  params.run_cycles = 600'000;
  params.epochs = epochs();

  auto p1 = cmm_a(cfg().freq_ghz);
  auto p2 = cmm_a(cfg().freq_ghz);
  const auto plain = analysis::run_mix(mixes.front(), *p1, params);
  const auto faulted = analysis::run_mix_with_faults(mixes.front(), *p2, params, hw::FaultPlan{});
  EXPECT_TRUE(faulted.completed);
  EXPECT_TRUE(faulted.health.empty());
  EXPECT_EQ(faulted.result, plain);
}

TEST(DegradationLadder, SameSeedReproducesHealthLogAndResults) {
  hw::FaultPlan plan = hw::FaultPlan::transient_everywhere(0.10, 11);
  plan.transient_fraction = 0.7;  // mix of transient and persistent
  plan.pmu_wrap_p = 0.05;
  plan.pmu_garbage_p = 0.05;

  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);
  analysis::RunParams params;
  params.machine = cfg();
  params.run_cycles = 600'000;
  params.epochs = epochs();

  auto p1 = cmm_a(cfg().freq_ghz);
  auto p2 = cmm_a(cfg().freq_ghz);
  const auto a = analysis::run_mix_with_faults(mixes.front(), *p1, params, plan);
  const auto b = analysis::run_mix_with_faults(mixes.front(), *p2, params, plan);
  EXPECT_EQ(a.health, b.health);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.hm_ipc, b.hm_ipc);
}

}  // namespace
}  // namespace cmm::core
