// The graceful-degradation ladder, asserted end to end through the
// EpochDriver with the fault-injecting HAL: which HealthLog rungs fire
// and what state the (sim) hardware is left in.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/run_harness.hpp"
#include "common/bitmask.hpp"
#include "core/epoch_driver.hpp"
#include "core/policy_cmm.hpp"
#include "hw/fault_injection.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::core {
namespace {

sim::MachineConfig cfg() { return sim::MachineConfig::scaled(16); }

EpochConfig epochs() {
  EpochConfig e;
  e.execution_epoch = 200'000;
  e.sampling_interval = 10'000;
  return e;
}

std::unique_ptr<sim::MulticoreSystem> make_system() {
  auto sys = std::make_unique<sim::MulticoreSystem>(cfg());
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);
  workloads::attach_mix(*sys, mixes.front(), 42);
  return sys;
}

std::unique_ptr<Policy> cmm_a(double freq_ghz) {
  CmmPolicy::Options o;
  o.detector.freq_ghz = freq_ghz;
  o.variant = CmmVariant::A;
  return std::make_unique<CmmPolicy>(o);
}

/// Driver plus the fault-injecting HAL stack it runs on.
struct FaultedRun {
  std::unique_ptr<sim::MulticoreSystem> sys;
  std::unique_ptr<Policy> policy;
  hw::SimMsrDevice sim_msr;
  hw::SimPmuReader sim_pmu;
  hw::SimCatController sim_cat;
  hw::FaultInjector injector;
  hw::FaultInjectingMsrDevice msr;
  hw::FaultInjectingPmuReader pmu;
  hw::FaultInjectingCatController cat;
  EpochDriver driver;

  FaultedRun(const hw::FaultPlan& plan, std::unique_ptr<Policy> pol)
      : sys(make_system()),
        policy(std::move(pol)),
        sim_msr(*sys),
        sim_pmu(*sys),
        sim_cat(*sys),
        injector(plan),
        msr(sim_msr, injector),
        pmu(sim_pmu, injector),
        cat(sim_cat, injector),
        driver(*sys, *policy, msr, pmu, cat, epochs()) {}
};

/// Throws on every begin_profiling; the watchdog scenario.
class ThrowingPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "throwing"; }
  ResourceConfig initial_config(unsigned cores, unsigned ways) override {
    // Deliberately non-baseline so the watchdog has something to undo.
    ResourceConfig c = ResourceConfig::baseline(cores, ways);
    c.prefetch_on[0] = false;
    for (auto& m : c.way_masks) m = contiguous_mask(0, ways / 2);
    return c;
  }
  void begin_profiling(const std::vector<sim::PmuCounters>&) override {
    throw std::runtime_error("injected policy fault");
  }
  std::optional<ResourceConfig> next_sample() override { return std::nullopt; }
  void report_sample(const SampleStats&) override {}
  ResourceConfig final_config() override { return {}; }
};

TEST(DegradationLadder, PersistentCatFaultFallsBackToPtOnly) {
  hw::FaultPlan plan;
  plan.cat_apply_fail_p = 1.0;
  plan.transient_fraction = 0.0;  // persistent on first touch

  FaultedRun run(plan, cmm_a(cfg().freq_ghz));
  run.driver.run(600'000);

  EXPECT_TRUE(run.driver.health().has(HealthEventKind::PtOnlyFallback));
  EXPECT_FALSE(run.driver.cat_available());
  EXPECT_TRUE(run.driver.prefetch_available());
  EXPECT_FALSE(run.driver.health().has(HealthEventKind::ManagementLost));

  // The fallback resets CAT (reset itself is healthy under this plan),
  // so no core is left stuck with a partial mask.
  const WayMask full = full_mask(run.sys->cat().llc_ways());
  for (CoreId c = 0; c < run.sys->num_cores(); ++c)
    EXPECT_EQ(run.sys->cat().core_mask(c), full);
}

TEST(DegradationLadder, AllCoresOfflineFallsBackToCpOnly) {
  hw::FaultPlan plan;
  for (CoreId c = 0; c < cfg().num_cores; ++c) plan.offline_cores.push_back(c);

  FaultedRun run(plan, cmm_a(cfg().freq_ghz));
  run.driver.run(600'000);

  EXPECT_EQ(run.driver.health().count(HealthEventKind::CorePrefetchOffline),
            static_cast<std::size_t>(cfg().num_cores));
  EXPECT_TRUE(run.driver.health().has(HealthEventKind::CpOnlyFallback));
  EXPECT_FALSE(run.driver.prefetch_available());
  EXPECT_TRUE(run.driver.cat_available());  // CAT ops are machine-wide, not per-core
}

TEST(DegradationLadder, SingleOfflineCoreDoesNotLoseTheMechanism) {
  hw::FaultPlan plan;
  plan.offline_cores = {3};

  FaultedRun run(plan, cmm_a(cfg().freq_ghz));
  run.driver.run(600'000);

  const auto& health = run.driver.health();
  EXPECT_EQ(health.count(HealthEventKind::CorePrefetchOffline), 1u);
  EXPECT_EQ(health.events().front().core, 3u);
  EXPECT_FALSE(health.has(HealthEventKind::CpOnlyFallback));
  EXPECT_TRUE(run.driver.prefetch_available());
}

TEST(DegradationLadder, PolicyThrowTriggersWatchdogBaselineRestore) {
  FaultedRun run(hw::FaultPlan{}, std::make_unique<ThrowingPolicy>());
  run.driver.run(600'000);

  const auto& health = run.driver.health();
  ASSERT_TRUE(health.has(HealthEventKind::WatchdogRestore));
  for (const auto& e : health.events()) {
    if (e.kind == HealthEventKind::WatchdogRestore) {
      EXPECT_EQ(e.detail, 1u);  // restore reached full baseline
    }
  }

  // Hardware state below the fault layer: everything back to reset.
  const WayMask full = full_mask(run.sys->cat().llc_ways());
  for (CoreId c = 0; c < run.sys->num_cores(); ++c) {
    EXPECT_EQ(run.sys->cat().core_mask(c), full);
    EXPECT_TRUE(run.sys->core(c).prefetch_msr().all_enabled());
  }
}

TEST(DegradationLadder, WrappedSamplesAreQuarantined) {
  hw::FaultPlan plan;
  plan.pmu_wrap_p = 1.0;    // every snapshot (and re-read) corrupts
  plan.pmu_wrap_bits = 16;  // wrap point 65536, crossed almost immediately

  FaultedRun run(plan, cmm_a(cfg().freq_ghz));
  run.driver.run(600'000);

  const auto& health = run.driver.health();
  EXPECT_TRUE(health.has(HealthEventKind::PmuSnapshotReread));
  EXPECT_TRUE(health.has(HealthEventKind::PmuWrapSaturated));
  EXPECT_TRUE(health.has(HealthEventKind::SampleQuarantined));
  // Measurement faults never escalate the resource ladder.
  EXPECT_TRUE(run.driver.prefetch_available());
  EXPECT_TRUE(run.driver.cat_available());
}

TEST(DegradationLadder, TransientStormCompletesAndStaysManaged) {
  const auto plan = hw::FaultPlan::transient_everywhere(0.10, 7);
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);

  analysis::RunParams params;
  params.machine = cfg();
  params.run_cycles = 600'000;
  params.epochs = epochs();

  auto policy = cmm_a(cfg().freq_ghz);
  const auto out = analysis::run_mix_with_faults(mixes.front(), *policy, params, plan);
  EXPECT_TRUE(out.completed) << out.error;
  EXPECT_GT(out.hm_ipc, 0.0);
}

TEST(DegradationLadder, ZeroRatePlanIsBitIdenticalToPlainRun) {
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);
  analysis::RunParams params;
  params.machine = cfg();
  params.run_cycles = 600'000;
  params.epochs = epochs();

  auto p1 = cmm_a(cfg().freq_ghz);
  auto p2 = cmm_a(cfg().freq_ghz);
  const auto plain = analysis::run_mix(mixes.front(), *p1, params);
  const auto faulted = analysis::run_mix_with_faults(mixes.front(), *p2, params, hw::FaultPlan{});
  EXPECT_TRUE(faulted.completed);
  EXPECT_TRUE(faulted.health.empty());
  EXPECT_EQ(faulted.result, plain);
}

// -------------------------------------------------------- MBA (BP) axis

/// Emits a fixed nonzero throttle ladder from the first epoch on;
/// exercises the MBA HAL without depending on the CMM search accepting
/// a level.
class ThrottlingStubPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "throttle_stub"; }
  ResourceConfig initial_config(unsigned cores, unsigned ways) override {
    cores_ = cores;
    ways_ = ways;
    return ResourceConfig::baseline(cores, ways);
  }
  void begin_profiling(const std::vector<sim::PmuCounters>&) override {}
  std::optional<ResourceConfig> next_sample() override { return std::nullopt; }
  void report_sample(const SampleStats&) override {}
  ResourceConfig final_config() override {
    ResourceConfig c = ResourceConfig::baseline(cores_, ways_);
    c.throttle_levels.assign(cores_, 0);
    c.throttle_levels[0] = 1;
    if (cores_ > 1) c.throttle_levels[1] = 2;
    return c;
  }

 private:
  unsigned cores_ = 0;
  unsigned ways_ = 0;
};

/// FaultedRun with the BP axis plugged in (three-axis driver ctor).
struct MbaFaultedRun {
  std::unique_ptr<sim::MulticoreSystem> sys;
  std::unique_ptr<Policy> policy;
  hw::SimMsrDevice sim_msr;
  hw::SimPmuReader sim_pmu;
  hw::SimCatController sim_cat;
  hw::SimMbaController sim_mba;
  hw::FaultInjector injector;
  hw::FaultInjectingMsrDevice msr;
  hw::FaultInjectingPmuReader pmu;
  hw::FaultInjectingCatController cat;
  hw::FaultInjectingMbaController mba;
  EpochDriver driver;

  MbaFaultedRun(const hw::FaultPlan& plan, std::unique_ptr<Policy> pol,
                const EpochConfig& e = epochs())
      : sys(make_system()),
        policy(std::move(pol)),
        sim_msr(*sys),
        sim_pmu(*sys),
        sim_cat(*sys),
        sim_mba(*sys),
        injector(plan),
        msr(sim_msr, injector),
        pmu(sim_pmu, injector),
        cat(sim_cat, injector),
        mba(sim_mba, injector),
        driver(*sys, *policy, msr, pmu, cat, mba, e) {}
};

TEST(DegradationLadder, PersistentMbaFaultDegradesToPtCp) {
  hw::FaultPlan plan;
  plan.mba_apply_fail_p = 1.0;
  plan.transient_fraction = 0.0;

  MbaFaultedRun run(plan, std::make_unique<ThrottlingStubPolicy>());
  run.driver.run(600'000);

  const auto& health = run.driver.health();
  EXPECT_TRUE(health.has(HealthEventKind::MbaOffline));
  EXPECT_FALSE(run.driver.mba_available());
  // Losing the bandwidth knob never takes down the other two axes.
  EXPECT_TRUE(run.driver.prefetch_available());
  EXPECT_TRUE(run.driver.cat_available());
  EXPECT_FALSE(health.has(HealthEventKind::ManagementLost));

  // The fallback's best-effort reset (healthy under this plan) plus the
  // fail-before-mutate decorator leave the sim unregulated.
  for (CoreId c = 0; c < run.sys->num_cores(); ++c) {
    EXPECT_EQ(run.sys->memory(run.sys->domain_of(c)).throttle_level(c), 0u);
  }
}

TEST(DegradationLadder, MbaFaultWithFailedResetStillLeavesSimUnthrottled) {
  hw::FaultPlan plan;
  plan.mba_apply_fail_p = 1.0;
  plan.mba_reset_fail_p = 1.0;
  plan.transient_fraction = 0.0;

  MbaFaultedRun run(plan, std::make_unique<ThrottlingStubPolicy>());
  run.driver.run(600'000);

  EXPECT_TRUE(run.driver.health().has(HealthEventKind::MbaOffline));
  // The decorator faults before forwarding, so no level ever reached
  // the sim; even with reset also failing nothing is stuck throttled.
  for (unsigned d = 0; d < cfg().num_llc_domains; ++d) {
    EXPECT_TRUE(run.sys->memory(d).unthrottled());
  }
}

TEST(DegradationLadder, LegacyPolicyNeverTouchesMba) {
  // A policy that never emits throttle levels must produce zero MBA HAL
  // calls — even a 100%-lethal MBA plan cannot fire, so the run is
  // indistinguishable from one without the BP axis.
  hw::FaultPlan plan;
  plan.mba_apply_fail_p = 1.0;
  plan.mba_reset_fail_p = 1.0;
  plan.transient_fraction = 0.0;

  MbaFaultedRun run(plan, cmm_a(cfg().freq_ghz));
  run.driver.run(600'000);

  EXPECT_FALSE(run.driver.health().has(HealthEventKind::MbaOffline));
  EXPECT_TRUE(run.driver.mba_available());
  EXPECT_TRUE(run.driver.health().empty());
}

TEST(DegradationLadder, SameSeedReproducesHealthLogAndResults) {
  hw::FaultPlan plan = hw::FaultPlan::transient_everywhere(0.10, 11);
  plan.transient_fraction = 0.7;  // mix of transient and persistent
  plan.pmu_wrap_p = 0.05;
  plan.pmu_garbage_p = 0.05;

  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg().num_cores, 3);
  analysis::RunParams params;
  params.machine = cfg();
  params.run_cycles = 600'000;
  params.epochs = epochs();

  auto p1 = cmm_a(cfg().freq_ghz);
  auto p2 = cmm_a(cfg().freq_ghz);
  const auto a = analysis::run_mix_with_faults(mixes.front(), *p1, params, plan);
  const auto b = analysis::run_mix_with_faults(mixes.front(), *p2, params, plan);
  EXPECT_EQ(a.health, b.health);
  EXPECT_EQ(a.result, b.result);
  EXPECT_EQ(a.hm_ipc, b.hm_ipc);
}

}  // namespace
}  // namespace cmm::core
