#include <gtest/gtest.h>

#include <climits>
#include <vector>

#include "common/retry.hpp"

namespace cmm {
namespace {

TEST(RetryPolicy, TransientFailuresAreRetriedUntilSuccess) {
  RetryPolicy policy;
  unsigned calls = 0;
  const int result = with_retry(policy, [&] {
    if (++calls < 3) throw HwFault(FaultClass::Transient, "busy");
    return 7;
  });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(calls, 3u);
}

TEST(RetryPolicy, PersistentFaultIsNotRetried) {
  RetryPolicy policy;
  unsigned calls = 0;
  EXPECT_THROW(with_retry(policy,
                          [&]() -> int {
                            ++calls;
                            throw HwFault(FaultClass::Persistent, "gp fault");
                          }),
               HwFault);
  EXPECT_EQ(calls, 1u);
}

TEST(RetryPolicy, TransientExhaustionPropagatesTheFault) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  unsigned calls = 0;
  try {
    with_retry(policy, [&]() -> int {
      ++calls;
      throw HwFault(FaultClass::Transient, "still busy");
    });
    FAIL() << "expected HwFault";
  } catch (const HwFault& f) {
    EXPECT_TRUE(f.transient());  // classification survives exhaustion
  }
  EXPECT_EQ(calls, 4u);
}

TEST(RetryPolicy, OnRetryHookSeesEveryAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  std::vector<unsigned> attempts;
  std::vector<unsigned> backoffs;
  policy.on_retry = [&](const RetryEvent& ev) {
    attempts.push_back(ev.attempt);
    backoffs.push_back(ev.backoff_units);
    EXPECT_EQ(ev.fault, FaultClass::Transient);
  };
  unsigned calls = 0;
  const int result = with_retry(policy, [&] {
    if (++calls < 3) throw HwFault(FaultClass::Transient, "busy");
    return 1;
  });
  EXPECT_EQ(result, 1);
  EXPECT_EQ(attempts, (std::vector<unsigned>{1, 2}));
  EXPECT_EQ(backoffs, (std::vector<unsigned>{1, 2}));  // base 1, x2
}

TEST(RetryPolicy, BackoffScheduleIsExponential) {
  RetryPolicy policy;
  policy.backoff_base = 3;
  policy.backoff_multiplier = 2;
  EXPECT_EQ(policy.backoff_units(1), 3u);
  EXPECT_EQ(policy.backoff_units(2), 6u);
  EXPECT_EQ(policy.backoff_units(3), 12u);
}

TEST(RetryPolicy, BackoffOverflowSaturates) {
  RetryPolicy policy;
  policy.backoff_base = UINT_MAX / 2;
  policy.backoff_multiplier = 3;
  EXPECT_EQ(policy.backoff_units(5), UINT_MAX);
}

TEST(HwFault, CarriesClassification) {
  const HwFault t(FaultClass::Transient, "ebusy");
  const HwFault p(FaultClass::Persistent, "gp");
  EXPECT_TRUE(t.transient());
  EXPECT_FALSE(p.transient());
  EXPECT_EQ(t.fault_class(), FaultClass::Transient);
  EXPECT_EQ(p.fault_class(), FaultClass::Persistent);
  EXPECT_STREQ(t.what(), "ebusy");
}

}  // namespace
}  // namespace cmm
