#include <gtest/gtest.h>

#include <memory>

#include "sim/multicore_system.hpp"
#include "workloads/phased.hpp"
#include "workloads/trace.hpp"

namespace cmm::workloads {
namespace {

const sim::MachineConfig kMachine = sim::MachineConfig::scaled(16);

// ------------------------------------------------------------- phased

TEST(Phased, SwitchesAfterInstructionBudget) {
  PhasedOpSource src({{"povray", 1000}, {"libquantum", 1000}}, kMachine, 0, 42);
  EXPECT_EQ(src.current_benchmark(), "povray");
  std::uint64_t executed = 0;
  while (executed < 1000) executed += src.next().instructions;
  src.next();  // first op of the new phase
  EXPECT_EQ(src.current_benchmark(), "libquantum");
}

TEST(Phased, CyclesThroughPhases) {
  PhasedOpSource src({{"povray", 500}, {"gobmk", 500}}, kMachine, 0, 42);
  std::uint64_t executed = 0;
  while (executed < 2300) executed += src.next().instructions;
  // 0-500 povray, 500-1000 gobmk, 1000-1500 povray, ...
  EXPECT_EQ(src.current_phase(), (executed % 1000) < 500 ? 0u : 1u);
}

TEST(Phased, TraitsFollowPhase) {
  PhasedOpSource src({{"povray", 100}, {"mcf", 100}}, kMachine, 0, 42);
  const double cpi_first = src.traits().base_cpi;
  std::uint64_t executed = 0;
  while (executed < 100) executed += src.next().instructions;
  src.next();
  EXPECT_NE(src.traits().base_cpi, cpi_first);
}

TEST(Phased, RejectsBadPhases) {
  EXPECT_THROW(PhasedOpSource({}, kMachine, 0, 1), std::invalid_argument);
  EXPECT_THROW(PhasedOpSource({{"povray", 0}}, kMachine, 0, 1), std::invalid_argument);
  EXPECT_THROW(PhasedOpSource({{"nonsense", 10}}, kMachine, 0, 1), std::out_of_range);
}

TEST(Phased, ResetRestartsPhaseZero) {
  PhasedOpSource src({{"povray", 200}, {"gobmk", 200}}, kMachine, 0, 42);
  std::uint64_t executed = 0;
  while (executed < 250) executed += src.next().instructions;
  src.reset();
  EXPECT_EQ(src.current_phase(), 0u);
  EXPECT_EQ(src.current_benchmark(), "povray");
}

TEST(Phased, RunsOnACore) {
  sim::MulticoreSystem sys([] {
    auto c = kMachine;
    c.num_cores = 1;
    return c;
  }());
  sys.set_op_source(0, std::make_shared<PhasedOpSource>(
                           std::vector<PhasedOpSource::Phase>{{"povray", 50'000},
                                                              {"libquantum", 50'000}},
                           sys.config(), 0, 42));
  sys.run(400'000);
  EXPECT_GT(sys.pmu().core(0).instructions, 100'000u);
  EXPECT_GT(sys.pmu().core(0).l2_pref_req, 0u);  // the stream phase prefetched
}

// -------------------------------------------------------------- trace

TEST(Trace, ParsesAddressesFlagsAndIps) {
  const auto refs = parse_text_trace(
      "# comment\n"
      "0x1000 R 3\n"
      "4096 W\n"
      "\n"
      "0x2040\n");
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0].addr, 0x1000u);
  EXPECT_FALSE(refs[0].is_store);
  EXPECT_EQ(refs[0].ip, 3u);
  EXPECT_EQ(refs[1].addr, 4096u);
  EXPECT_TRUE(refs[1].is_store);
  EXPECT_EQ(refs[2].addr, 0x2040u);
}

TEST(Trace, RejectsMalformedLines) {
  EXPECT_THROW(parse_text_trace("zzz R\n"), std::invalid_argument);
  EXPECT_THROW(parse_text_trace("0x10 X\n"), std::invalid_argument);
}

TEST(Trace, ErrorsCarryLineNumbers) {
  try {
    parse_text_trace("0x10 R\n0x20 R\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Trace, ReplaysCyclically) {
  TraceOpSource src(parse_text_trace("0x40 R\n0x80 R\n0xC0 R\n"), {0.5, 4.0}, 2.0);
  EXPECT_EQ(src.size(), 3u);
  std::vector<Addr> seen;
  for (int i = 0; i < 6; ++i) seen.push_back(src.next().mem.addr);
  EXPECT_EQ(seen[0], seen[3]);
  EXPECT_EQ(seen[1], seen[4]);
  EXPECT_EQ(src.wraps(), 2u);  // 6 refs over a 3-entry trace = 2 passes
}

TEST(Trace, EmptyTraceRejected) {
  EXPECT_THROW(TraceOpSource({}, {0.5, 4.0}), std::invalid_argument);
}

TEST(Trace, DrivesASimulatedCore) {
  // A sequential trace must trigger the streamer like a synthetic one.
  std::string text;
  for (int i = 0; i < 4096; ++i) text += std::to_string(0x100000 + i * 64) + " R 1\n";
  auto cfg = kMachine;
  cfg.num_cores = 1;
  sim::MulticoreSystem sys(cfg);
  sys.set_op_source(0, std::make_shared<TraceOpSource>(parse_text_trace(text),
                                                       sim::CoreTraits{0.5, 5.0}, 3.0));
  sys.run(300'000);
  EXPECT_GT(sys.pmu().core(0).l2_pref_req, 100u);
  EXPECT_GT(sys.pmu().core(0).ipc(), 0.1);
}

}  // namespace
}  // namespace cmm::workloads
