#include <gtest/gtest.h>

#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::sim {
namespace {

MachineConfig cfg(unsigned cores) {
  MachineConfig c = MachineConfig::scaled(16);
  c.num_cores = cores;
  return c;
}

TEST(MulticoreSystem, RejectsInvalidConfig) {
  MachineConfig bad = cfg(2);
  bad.l1_latency = 100;  // violates l1 < l2
  EXPECT_THROW(MulticoreSystem{bad}, std::invalid_argument);
  MachineConfig zero = cfg(2);
  zero.num_cores = 0;
  EXPECT_THROW(MulticoreSystem{zero}, std::invalid_argument);
}

TEST(MulticoreSystem, CoresAdvanceInLockstepQuanta) {
  MulticoreSystem sys(cfg(4));
  for (CoreId c = 0; c < 4; ++c) {
    sys.set_op_source(c, workloads::make_op_source("povray", sys.config(), c, c));
  }
  sys.run(50'000);
  EXPECT_EQ(sys.now(), 50'000u);
  for (CoreId c = 0; c < 4; ++c) {
    EXPECT_GE(sys.core(c).now(), 50'000u);
    EXPECT_LT(sys.core(c).now(), 50'000u + 10'000u);  // bounded overshoot
  }
}

TEST(MulticoreSystem, RunAccumulates) {
  MulticoreSystem sys(cfg(2));
  for (CoreId c = 0; c < 2; ++c)
    sys.set_op_source(c, workloads::make_op_source("gobmk", sys.config(), c, c));
  sys.run(10'000);
  sys.run(20'000);
  EXPECT_EQ(sys.now(), 30'000u);
}

TEST(MulticoreSystem, SharedLlcContention) {
  // Two instances of an LLC-sized workload oversubscribe the shared
  // LLC: each runs slower together than alone.
  const std::string bench = "omnetpp";
  auto measure_warm = [&](unsigned cores) {
    MulticoreSystem sys(cfg(cores));
    for (CoreId c = 0; c < cores; ++c)
      sys.set_op_source(c, workloads::make_op_source(bench, sys.config(), c, c + 1));
    sys.run(3'000'000);  // warm the LLC
    const auto before = sys.pmu().snapshot();
    sys.run(2'000'000);
    return sys.pmu().core(0).delta_since(before[0]).ipc();
  };
  const double ipc_alone = measure_warm(1);
  const double ipc_together = measure_warm(2);
  EXPECT_LT(ipc_together, ipc_alone * 0.9);
}

TEST(MulticoreSystem, BandwidthContentionSlowsStreams) {
  // Eight concurrent streams saturate DRAM; each is slower than solo.
  double ipc_alone = 0.0;
  {
    MulticoreSystem sys(cfg(1));
    sys.set_op_source(0, workloads::make_op_source("libquantum", sys.config(), 0, 1));
    sys.run(1'500'000);
    ipc_alone = sys.pmu().core(0).ipc();
  }
  MulticoreSystem sys(cfg(8));
  for (CoreId c = 0; c < 8; ++c)
    sys.set_op_source(c, workloads::make_op_source("libquantum", sys.config(), c, c + 1));
  sys.run(1'500'000);
  EXPECT_LT(sys.pmu().core(0).ipc(), ipc_alone * 0.9);
  EXPECT_GT(sys.memory().last_window_utilization(), 0.5);
}

TEST(MulticoreSystem, CatIsolatesLlcOccupancy) {
  MulticoreSystem sys(cfg(2));
  sys.set_op_source(0, workloads::make_op_source("libquantum", sys.config(), 0, 1));
  sys.set_op_source(1, workloads::make_op_source("soplex", sys.config(), 1, 2));
  sys.cat().set_cbm(1, contiguous_mask(0, 2));
  sys.cat().assign_core(0, 1);  // stream confined to 2 ways
  sys.run(4'000'000);
  const auto occ = sys.llc().occupancy_by_owner(2);
  const std::uint64_t two_ways = 2ULL * sys.llc().num_sets();
  EXPECT_LE(occ[0], two_ways + two_ways / 4) << "stream escaped its partition";
}

TEST(MulticoreSystem, QuantumBoundsSkew) {
  MachineConfig c = cfg(2);
  c.quantum = 500;
  MulticoreSystem sys(c);
  for (CoreId i = 0; i < 2; ++i)
    sys.set_op_source(i, workloads::make_op_source("calculix", sys.config(), i, i));
  sys.run(5'000);
  const auto a = sys.core(0).now();
  const auto b = sys.core(1).now();
  EXPECT_LT(a > b ? a - b : b - a, 1'000u);
}

}  // namespace
}  // namespace cmm::sim
