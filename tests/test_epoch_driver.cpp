#include <gtest/gtest.h>

#include <memory>

#include "core/epoch_driver.hpp"
#include "core/policy_baseline.hpp"
#include "core/policy_pt.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::core {
namespace {

sim::MachineConfig cfg() { return sim::MachineConfig::scaled(16); }

EpochConfig epochs() {
  EpochConfig e;
  e.execution_epoch = 200'000;
  e.sampling_interval = 10'000;
  return e;
}

/// Counts protocol callbacks and requests a fixed number of samples.
class ProbePolicy final : public Policy {
 public:
  explicit ProbePolicy(unsigned samples_per_round) : samples_per_round_(samples_per_round) {}

  std::string_view name() const noexcept override { return "probe"; }

  ResourceConfig initial_config(unsigned cores, unsigned ways) override {
    cores_ = cores;
    ways_ = ways;
    ++initial_calls;
    return ResourceConfig::baseline(cores, ways);
  }
  void begin_profiling(const std::vector<sim::PmuCounters>& epoch) override {
    ++profiling_rounds;
    last_epoch_delta = epoch;
    issued_this_round_ = 0;
  }
  std::optional<ResourceConfig> next_sample() override {
    if (issued_this_round_ >= samples_per_round_) return std::nullopt;
    ++issued_this_round_;
    ResourceConfig cfg = ResourceConfig::baseline(cores_, ways_);
    cfg.prefetch_on[0] = (issued_this_round_ % 2 == 0);  // distinguishable configs
    return cfg;
  }
  void report_sample(const SampleStats& stats) override { reported.push_back(stats); }
  ResourceConfig final_config() override {
    ++final_calls;
    return ResourceConfig::baseline(cores_, ways_);
  }

  unsigned initial_calls = 0;
  unsigned profiling_rounds = 0;
  unsigned final_calls = 0;
  std::vector<SampleStats> reported;
  std::vector<sim::PmuCounters> last_epoch_delta;

 private:
  unsigned samples_per_round_;
  unsigned cores_ = 0;
  unsigned ways_ = 0;
  unsigned issued_this_round_ = 0;
};

std::unique_ptr<sim::MulticoreSystem> make_system() {
  auto sys = std::make_unique<sim::MulticoreSystem>(cfg());
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefNoAgg, 1, cfg().num_cores, 3);
  workloads::attach_mix(*sys, mixes.front(), 42);
  return sys;
}

TEST(EpochDriver, Fig4Schedule) {
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  ProbePolicy policy(2);
  EpochDriver driver(sys, policy, epochs());
  driver.run(1'000'000);

  EXPECT_EQ(policy.initial_calls, 1u);
  EXPECT_GE(policy.profiling_rounds, 3u);
  EXPECT_EQ(policy.final_calls, policy.profiling_rounds);
  EXPECT_EQ(policy.reported.size(), policy.profiling_rounds * 2u);

  // Log alternates: execution epoch then its samples.
  const auto& log = driver.log();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.front().kind, EpochLogEntry::Kind::Execution);
  for (std::size_t i = 0; i + 1 < log.size(); ++i) {
    if (log[i].kind == EpochLogEntry::Kind::Sample &&
        log[i + 1].kind == EpochLogEntry::Kind::Sample) {
      EXPECT_EQ(log[i + 1].start, log[i].start + log[i].length);
    }
  }
}

TEST(EpochDriver, EpochDeltasCoverEpochCycles) {
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  ProbePolicy policy(1);
  EpochDriver driver(sys, policy, epochs());
  driver.run(500'000);
  ASSERT_FALSE(policy.last_epoch_delta.empty());
  for (const auto& d : policy.last_epoch_delta) {
    EXPECT_NEAR(static_cast<double>(d.cycles), 200'000.0, 12'000.0);
  }
}

TEST(EpochDriver, AppliesSampleConfigsToHardware) {
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  ProbePolicy policy(2);
  EpochDriver driver(sys, policy, epochs());
  driver.run(250'000);  // one epoch + one profiling round
  ASSERT_GE(policy.reported.size(), 2u);
  // Sample 1 had core0 prefetch off; the PMU must show no prefetch
  // requests for it... core0 runs a quiet benchmark, so instead check
  // the recorded config round-trips.
  EXPECT_FALSE(policy.reported[0].config.prefetch_on[0]);
  EXPECT_TRUE(policy.reported[1].config.prefetch_on[0]);
}

TEST(EpochDriver, ExecutionEntriesRecordAppliedConfig) {
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  ProbePolicy policy(2);
  EpochDriver driver(sys, policy, epochs());
  driver.run(1'000'000);

  // ProbePolicy's initial and final configs are both the baseline, so
  // every execution epoch must log exactly that — never the empty
  // ResourceConfig{} placeholder.
  const auto baseline = ResourceConfig::baseline(sys.num_cores(), sys.cat().llc_ways());
  unsigned executions = 0;
  for (const auto& e : driver.log()) {
    if (e.kind != EpochLogEntry::Kind::Execution) continue;
    ++executions;
    ASSERT_EQ(e.config.prefetch_on.size(), sys.num_cores());
    ASSERT_EQ(e.config.way_masks.size(), sys.num_cores());
    EXPECT_EQ(e.config, baseline);
  }
  EXPECT_GE(executions, 2u);
}

TEST(EpochDriver, SampleCapRespected) {
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  ProbePolicy policy(1000);  // pathological policy
  EpochConfig e = epochs();
  e.max_samples_per_epoch = 5;
  EpochDriver driver(sys, policy, e);
  driver.run(300'000);
  EXPECT_LE(policy.reported.size(), 5u * policy.profiling_rounds);

  // Truncation is not silent: the HealthLog records the cap with the
  // number of samples that did run.
  ASSERT_TRUE(driver.health().has(HealthEventKind::SampleCapTruncated));
  for (const auto& ev : driver.health().events()) {
    if (ev.kind == HealthEventKind::SampleCapTruncated) EXPECT_EQ(ev.detail, 5u);
  }
}

TEST(EpochDriver, ExecutionCountersExcludeSampling) {
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  ProbePolicy policy(4);
  EpochDriver driver(sys, policy, epochs());
  driver.run(1'000'000);
  // Execution counters cover only execution epochs: strictly less than
  // total simulated time.
  for (const auto& acc : driver.execution_counters()) {
    EXPECT_LT(acc.cycles, 1'000'000u);
    EXPECT_GT(acc.cycles, 500'000u);
  }
}

TEST(EpochDriver, BaselinePolicyRunsFlat) {
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  BaselinePolicy policy;
  EpochDriver driver(sys, policy, epochs());
  driver.run(500'000);
  // No samples in the log, only execution epochs.
  for (const auto& e : driver.log()) {
    EXPECT_EQ(e.kind, EpochLogEntry::Kind::Execution);
  }
  EXPECT_EQ(sys.cat().core_mask(0), full_mask(20));
  EXPECT_TRUE(sys.core(0).prefetch_msr().all_enabled());
}

TEST(EpochDriver, PartialEndOfRunSampleIsDiscarded) {
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  ProbePolicy policy(4);
  EpochDriver driver(sys, policy, epochs());
  // 200K execution epoch + a 5K tail: the only sampling interval is
  // truncated to half the configured 10K. Its partial PMU delta is not
  // comparable to full intervals and must never reach the policy's
  // hm_ipc ranking (regression: it used to be reported like a full
  // sample). The discard is also not a fault: the HealthLog stays
  // empty on a fault-free run.
  driver.run(205'000);
  EXPECT_EQ(policy.profiling_rounds, 1u);
  EXPECT_TRUE(policy.reported.empty());
  EXPECT_TRUE(driver.health().empty());
}

TEST(EpochDriver, FullTailSampleStillReported) {
  // Control for the discard: a tail that fits one whole sampling
  // interval is reported exactly as before.
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  ProbePolicy policy(4);
  EpochDriver driver(sys, policy, epochs());
  driver.run(210'000);  // 200K epoch + exactly one full 10K interval
  EXPECT_EQ(policy.reported.size(), 1u);
  EXPECT_TRUE(driver.health().empty());
}

TEST(EpochDriver, ResumableAcrossRunCalls) {
  auto sys_ptr = make_system();
  auto& sys = *sys_ptr;
  ProbePolicy policy(1);
  EpochDriver driver(sys, policy, epochs());
  driver.run(250'000);
  const auto rounds_first = policy.profiling_rounds;
  driver.run(250'000);
  EXPECT_GT(policy.profiling_rounds, rounds_first);
  EXPECT_EQ(policy.initial_calls, 1u);  // initial config applied once
}

}  // namespace
}  // namespace cmm::core
