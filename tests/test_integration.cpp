// End-to-end behavioural tests: the paper's qualitative claims must
// hold on the simulated machine. These are the slowest tests in the
// suite (seconds each); they pin the phenomena every figure depends on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "analysis/run_harness.hpp"
#include "analysis/speedup_metrics.hpp"
#include "core/metrics.hpp"
#include "core/detector.hpp"
#include "hw/pmu_reader.hpp"
#include "sim/multicore_system.hpp"

namespace cmm {
namespace {

analysis::RunParams params() {
  analysis::RunParams p;  // scaled(16) machine
  p.run_cycles = 5'000'000;
  p.warmup_cycles = 2'500'000;
  p.epochs.execution_epoch = 1'200'000;
  p.epochs.sampling_interval = 40'000;
  return p;
}

// ---- Fig. 2 phenomena -------------------------------------------------

TEST(Integration, PrefetchingLiftsStreamsSubstantially) {
  const auto p = params();
  for (const std::string name : {"libquantum", "leslie3d", "GemsFDTD"}) {
    const double off = analysis::run_solo(name, p, false).cores.front().ipc;
    const double on = analysis::run_solo(name, p, true).cores.front().ipc;
    EXPECT_GT(on / off, 1.5) << name << " must gain 50%+ from prefetching";
  }
}

TEST(Integration, RandAccessGainsLittleFromPrefetching) {
  const auto p = params();
  const double off = analysis::run_solo("rand_access", p, false).cores.front().ipc;
  const double on = analysis::run_solo("rand_access", p, true).cores.front().ipc;
  EXPECT_LT(on / off, 1.3) << "Rand Access is prefetch unfriendly";
}

// ---- Fig. 1 phenomena -------------------------------------------------

TEST(Integration, PrefetchingInflatesAggressorBandwidth) {
  const auto p = params();
  const auto off = analysis::run_solo("rand_access", p, false);
  const auto on = analysis::run_solo("rand_access", p, true);
  EXPECT_GT(on.cores.front().total_gbs(), off.cores.front().total_gbs() * 1.5)
      << "useless prefetches must inflate bandwidth";
}

// ---- Fig. 3 phenomena -------------------------------------------------

TEST(Integration, StreamsFlatAcrossWaysSensitiveAppsAreNot) {
  const auto p = params();
  const double stream_2w = analysis::run_solo("libquantum", p, true, 2).cores.front().ipc;
  const double stream_20w = analysis::run_solo("libquantum", p, true, 0).cores.front().ipc;
  EXPECT_GT(stream_2w, 0.9 * stream_20w) << "streams need <= 2 ways for 90% of peak";

  const double sens_2w = analysis::run_solo("soplex", p, true, 2).cores.front().ipc;
  const double sens_20w = analysis::run_solo("soplex", p, true, 0).cores.front().ipc;
  EXPECT_LT(sens_2w, 0.8 * sens_20w) << "LLC-sensitive apps need many ways";
}

// ---- Detection end-to-end ----------------------------------------------

TEST(Integration, FrontEndFindsTheAggressorsInAMix) {
  const auto p = params();
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, p.machine.num_cores, 7);
  const auto& mix = mixes.front();
  sim::MulticoreSystem sys(p.machine);
  workloads::attach_mix(sys, mix, p.seed);
  sys.run(2'000'000);
  const auto before = sys.pmu().snapshot();
  sys.run(100'000);
  const auto metrics =
      core::compute_all_metrics(hw::pmu_delta(sys.pmu().snapshot(), before), p.machine.freq_ghz);
  const auto agg = core::detect_aggressive(metrics, p.detector());

  const auto friendly = workloads::prefetch_friendly_names();
  const auto unfriendly = workloads::prefetch_unfriendly_names();
  auto is_aggressive_benchmark = [&](const std::string& b) {
    return std::find(friendly.begin(), friendly.end(), b) != friendly.end() ||
           std::find(unfriendly.begin(), unfriendly.end(), b) != unfriendly.end();
  };

  // Every detected core runs an aggressive benchmark; most aggressive
  // benchmarks are detected.
  unsigned truly_aggressive = 0;
  for (CoreId c = 0; c < p.machine.num_cores; ++c) {
    if (is_aggressive_benchmark(mix.benchmarks[c])) ++truly_aggressive;
  }
  for (const CoreId c : agg) {
    EXPECT_TRUE(is_aggressive_benchmark(mix.benchmarks[c]))
        << mix.benchmarks[c] << " misdetected as aggressive";
  }
  EXPECT_GE(agg.size() + 1, truly_aggressive) << "missed most aggressors";
}

// ---- Mechanism-level claims (Figs 7-13) --------------------------------

struct MixOutcome {
  double hs_ratio;
  double worst_case;
  double bw_ratio;
};

MixOutcome evaluate(const std::string& policy, const workloads::WorkloadMix& mix,
                    const analysis::RunParams& p,
                    const std::map<std::string, double>& alone) {
  auto base_pol = analysis::make_policy("baseline", p.detector());
  const auto base = analysis::run_mix(mix, *base_pol, p);
  auto pol = analysis::make_policy(policy, p.detector());
  const auto run = analysis::run_mix(mix, *pol, p);

  std::vector<double> alone_v;
  for (const auto& b : mix.benchmarks) alone_v.push_back(alone.at(b));
  const double hs_base = analysis::harmonic_speedup(base.ipcs(), alone_v);
  const double hs = analysis::harmonic_speedup(run.ipcs(), alone_v);
  return {hs / hs_base, analysis::worst_case_speedup(run.ipcs(), base.ipcs()),
          run.total_gbs() / base.total_gbs()};
}

class MechanismClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    p_ = new analysis::RunParams(params());
    mix_ = new workloads::WorkloadMix(
        workloads::make_mixes(workloads::MixCategory::PrefUnfri, 1, p_->machine.num_cores, 7)
            .front());
    alone_ = new std::map<std::string, double>(
        analysis::compute_alone_ipcs(mix_->benchmarks, *p_));
  }
  static void TearDownTestSuite() {
    delete p_;
    delete mix_;
    delete alone_;
  }

  static analysis::RunParams* p_;
  static workloads::WorkloadMix* mix_;
  static std::map<std::string, double>* alone_;
};

analysis::RunParams* MechanismClaims::p_ = nullptr;
workloads::WorkloadMix* MechanismClaims::mix_ = nullptr;
std::map<std::string, double>* MechanismClaims::alone_ = nullptr;

TEST_F(MechanismClaims, PtImprovesUnfriendlyWorkloads) {
  const auto r = evaluate("pt", *mix_, *p_, *alone_);
  EXPECT_GT(r.hs_ratio, 1.05);
  EXPECT_LT(r.bw_ratio, 0.95) << "PT must reduce memory traffic";
}

TEST_F(MechanismClaims, PrefCpBeatsDunnOnUnfriendly) {
  const auto cp = evaluate("pref_cp", *mix_, *p_, *alone_);
  const auto dunn = evaluate("dunn", *mix_, *p_, *alone_);
  EXPECT_GT(cp.hs_ratio, dunn.hs_ratio + 0.02)
      << "prefetch-aware partitioning must beat stall-only clustering";
}

TEST_F(MechanismClaims, CmmBeatsPureCp) {
  const auto cmm = evaluate("cmm_a", *mix_, *p_, *alone_);
  const auto cp = evaluate("pref_cp", *mix_, *p_, *alone_);
  EXPECT_GT(cmm.hs_ratio, cp.hs_ratio) << "coordination must add on top of CP";
}

TEST_F(MechanismClaims, CmmKeepsWorstCaseHigh) {
  for (const std::string v : {"cmm_a", "cmm_b", "cmm_c"}) {
    const auto r = evaluate(v, *mix_, *p_, *alone_);
    EXPECT_GT(r.worst_case, 0.8) << v << " must not sacrifice any application";
  }
}

TEST(Integration, PtHurtsSomeoneOnFriendlyWorkloads) {
  // The paper's Fig. 8 story: PT's gains come from disabling friendly
  // prefetchers, so some application pays.
  const auto p = params();
  const auto mix =
      workloads::make_mixes(workloads::MixCategory::PrefFri, 1, p.machine.num_cores, 7).front();
  auto base_pol = analysis::make_policy("baseline", p.detector());
  const auto base = analysis::run_mix(mix, *base_pol, p);
  auto pt_pol = analysis::make_policy("pt", p.detector());
  const auto pt = analysis::run_mix(mix, *pt_pol, p);
  EXPECT_LT(analysis::worst_case_speedup(pt.ipcs(), base.ipcs()), 0.9);
}

TEST(Integration, QuietWorkloadsUnaffectedByAnyMechanism) {
  const auto p = params();
  const auto mix =
      workloads::make_mixes(workloads::MixCategory::PrefNoAgg, 1, p.machine.num_cores, 7)
          .front();
  auto base_pol = analysis::make_policy("baseline", p.detector());
  const auto base = analysis::run_mix(mix, *base_pol, p);
  for (const std::string policy : {"pt", "cmm_a"}) {
    auto pol = analysis::make_policy(policy, p.detector());
    const auto run = analysis::run_mix(mix, *pol, p);
    const double ws = analysis::weighted_speedup(run.ipcs(), base.ipcs());
    EXPECT_NEAR(ws, 1.0, 0.05) << policy << " must be ~neutral on Pref No Agg";
  }
}

}  // namespace
}  // namespace cmm
