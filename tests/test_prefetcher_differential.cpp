// Differential harness: replay identical workloads through every
// registered prefetcher engine (one engine per run, prefetch on vs.
// off) and pin the resulting accuracy / coverage / timeliness stats as
// golden JSON. Any change to an engine's emission behaviour — or to
// the shared clamping helpers — shows up as a reviewable golden diff
// instead of silently shifting figure results.
//
// Regenerate after an intentional change with:
//   CMM_UPDATE_GOLDEN=1 ./test_prefetcher_differential
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/multicore_system.hpp"
#include "sim/prefetcher_registry.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::sim {
namespace {

constexpr Cycle kRunCycles = 600'000;
constexpr std::uint64_t kSeed = 1;

// One streaming, one irregular, one random workload: between them they
// exercise stride learning, signature paths, and pollution behaviour.
const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {"libquantum", "omnetpp", "hash_probe"};
  return names;
}

struct RunStats {
  std::uint64_t issued = 0;
  std::uint64_t pref_accesses = 0;
  std::uint64_t pref_used = 0;
  std::uint64_t pref_evicted_unused = 0;
  std::uint64_t demand_misses = 0;  // at the engine's cache level
  std::uint64_t stalls_l2_pending = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
};

RunStats run_one(PrefetcherKind kind, const std::string& bench, bool prefetch_on) {
  auto cfg = MachineConfig::scaled(16);
  cfg.num_cores = 1;
  cfg.core_prefetchers = {{kind}};

  MulticoreSystem sys(cfg);
  if (!prefetch_on) sys.core(0).prefetch_msr().set_all(false);
  sys.set_op_source(0, workloads::make_op_source(bench, cfg, 0, kSeed));
  sys.run(kRunCycles);

  const auto& level_cache =
      level_of(kind) == PrefetchLevel::L1 ? sys.core(0).l1() : sys.core(0).l2();
  const auto& stats = level_cache.stats();
  const auto& ctr = sys.pmu().core(0);

  RunStats r;
  r.issued = sys.core(0).prefetchers()[0]->issued();
  r.pref_accesses = stats.prefetch_accesses;
  r.pref_used = stats.prefetched_lines_used;
  r.pref_evicted_unused = stats.prefetched_lines_evicted_unused;
  r.demand_misses = stats.demand_misses();
  r.stalls_l2_pending = ctr.stalls_l2_pending;
  r.instructions = ctr.instructions;
  r.cycles = ctr.cycles;
  return r;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/// Canonical JSON for the whole sweep: engines in registry order,
/// workloads in fixed order, stable key order and double formatting.
std::string differential_json() {
  std::ostringstream os;
  os << "{\n  \"prefetcher_differential\": {\n";
  os << "    \"run_cycles\": " << kRunCycles << ", \"seed\": " << kSeed << ",\n";
  os << "    \"engines\": {\n";
  const auto& registry = prefetcher_registry();
  for (std::size_t k = 0; k < registry.size(); ++k) {
    const auto kind = registry[k].kind;
    os << "      \"" << registry[k].name << "\": {\n";
    for (std::size_t w = 0; w < workload_names().size(); ++w) {
      const auto& bench = workload_names()[w];
      const RunStats on = run_one(kind, bench, true);
      const RunStats off = run_one(kind, bench, false);
      // accuracy: fraction of prefetched lines that served a demand hit
      // before eviction. coverage: demand misses removed relative to
      // the prefetch-off run. timeliness: fraction of the off-run's
      // sub-L2 stall cycles eliminated (late prefetches keep stalls).
      const double accuracy = ratio(on.pref_used, on.pref_used + on.pref_evicted_unused);
      const double coverage =
          off.demand_misses == 0
              ? 0.0
              : 1.0 - ratio(on.demand_misses, off.demand_misses);
      const double timeliness =
          off.stalls_l2_pending == 0
              ? 0.0
              : 1.0 - ratio(on.stalls_l2_pending, off.stalls_l2_pending);
      os << "        \"" << bench << "\": {\"issued\": " << on.issued
         << ", \"pref_accesses\": " << on.pref_accesses << ", \"pref_used\": " << on.pref_used
         << ", \"pref_evicted_unused\": " << on.pref_evicted_unused
         << ", \"demand_misses_on\": " << on.demand_misses
         << ", \"demand_misses_off\": " << off.demand_misses
         << ", \"stalls_on\": " << on.stalls_l2_pending
         << ", \"stalls_off\": " << off.stalls_l2_pending << ", \"ipc_on\": "
         << fmt(ratio(on.instructions, on.cycles)) << ", \"ipc_off\": "
         << fmt(ratio(off.instructions, off.cycles)) << ", \"accuracy\": " << fmt(accuracy)
         << ", \"coverage\": " << fmt(coverage) << ", \"timeliness\": " << fmt(timeliness)
         << '}' << (w + 1 < workload_names().size() ? "," : "") << '\n';
    }
    os << "      }" << (k + 1 < registry.size() ? "," : "") << '\n';
  }
  os << "    }\n  }\n}\n";
  return std::move(os).str();
}

TEST(PrefetcherDifferential, GoldenStats) {
  const std::string golden_path =
      std::string(CMM_TEST_GOLDEN_DIR) + "/prefetcher_differential.json";
  const std::string actual = differential_json();

  if (std::getenv("CMM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << actual;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with CMM_UPDATE_GOLDEN=1)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "differential stats drifted from the golden pin; if the change is intentional, "
         "regenerate with CMM_UPDATE_GOLDEN=1 and review the diff";
}

// The off-run must be engine-independent: with the MSR disabling
// everything, a core configured with any single engine behaves
// identically to any other (prefetching contributes nothing).
TEST(PrefetcherDifferential, DisabledRunsAreEngineIndependent) {
  const RunStats base = run_one(PrefetcherKind::L2Streamer, "omnetpp", false);
  for (const auto& info : prefetcher_registry()) {
    const RunStats r = run_one(info.kind, "omnetpp", false);
    EXPECT_EQ(r.instructions, base.instructions) << info.name;
    EXPECT_EQ(r.cycles, base.cycles) << info.name;
    EXPECT_EQ(r.issued, 0u) << info.name;
  }
}

}  // namespace
}  // namespace cmm::sim
