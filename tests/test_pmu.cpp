#include <gtest/gtest.h>

#include "sim/pmu.hpp"

namespace cmm::sim {
namespace {

TEST(Pmu, DeltaSince) {
  PmuCounters a;
  a.cycles = 1000;
  a.instructions = 500;
  a.l2_pref_req = 10;
  PmuCounters b = a;
  b.cycles = 2500;
  b.instructions = 1700;
  b.l2_pref_req = 25;
  b.l3_load_miss = 7;

  const PmuCounters d = b.delta_since(a);
  EXPECT_EQ(d.cycles, 1500u);
  EXPECT_EQ(d.instructions, 1200u);
  EXPECT_EQ(d.l2_pref_req, 15u);
  EXPECT_EQ(d.l3_load_miss, 7u);
}

TEST(Pmu, DeltaSaturatesInsteadOfWrapping) {
  PmuCounters a;
  a.cycles = 100;
  PmuCounters b;
  b.cycles = 50;
  EXPECT_EQ(b.delta_since(a).cycles, 0u);
}

TEST(Pmu, IpcComputation) {
  PmuCounters c;
  EXPECT_DOUBLE_EQ(c.ipc(), 0.0);  // no cycles: defined as 0
  c.cycles = 1000;
  c.instructions = 1500;
  EXPECT_DOUBLE_EQ(c.ipc(), 1.5);
}

TEST(Pmu, PerCoreIsolationAndSnapshot) {
  Pmu pmu(4);
  pmu.core(2).instructions = 42;
  EXPECT_EQ(pmu.core(1).instructions, 0u);
  const auto snap = pmu.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[2].instructions, 42u);
  pmu.core(2).instructions = 100;
  EXPECT_EQ(snap[2].instructions, 42u);  // snapshot is a copy
}

TEST(Pmu, Reset) {
  Pmu pmu(2);
  pmu.core(0).l2_dm_miss = 9;
  pmu.reset();
  EXPECT_EQ(pmu.core(0).l2_dm_miss, 0u);
}

TEST(Pmu, OutOfRangeThrows) {
  Pmu pmu(2);
  EXPECT_THROW(pmu.core(2), std::out_of_range);
}

}  // namespace
}  // namespace cmm::sim
