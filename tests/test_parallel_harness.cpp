// The parallel experiment layer's core contract: batch results are
// bit-identical to the serial path at every thread count, because each
// job owns its own MulticoreSystem, policy, and RNG stream.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/run_harness.hpp"
#include "common/parallel.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::analysis {
namespace {

RunParams fast_params() {
  RunParams p;
  p.machine = sim::MachineConfig::scaled(32);
  p.warmup_cycles = 100'000;
  p.run_cycles = 300'000;
  p.epochs.execution_epoch = 100'000;
  p.epochs.sampling_interval = 10'000;
  return p;
}

TEST(ResolveThreads, RequestWinsOverEnvironment) {
  ::setenv("CMM_THREADS", "3", 1);
  EXPECT_EQ(resolve_threads(2), 2u);
  EXPECT_EQ(resolve_threads(0), 3u);
  ::unsetenv("CMM_THREADS");
  EXPECT_GE(resolve_threads(0), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 10; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> counts(kN);
  parallel_for(kN, 4, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelFor, SingleThreadRunsInlineInOrder) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, RethrowsFirstJobException) {
  EXPECT_THROW(parallel_for(64, 4,
                            [&](std::size_t i) {
                              if (i == 7) throw std::invalid_argument("job 7");
                            }),
               std::invalid_argument);
}

TEST(Determinism, RunSoloRepeatable) {
  const auto params = fast_params();
  const auto a = run_solo("libquantum", params, /*prefetch_on=*/true);
  const auto b = run_solo("libquantum", params, /*prefetch_on=*/true);
  EXPECT_EQ(a, b);
}

TEST(Determinism, RunMixRepeatable) {
  const auto params = fast_params();
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, params.machine.num_cores, 7);
  const auto pol_a = make_policy("cmm_a", params.detector());
  const auto pol_b = make_policy("cmm_a", params.detector());
  const auto a = run_mix(mixes.front(), *pol_a, params);
  const auto b = run_mix(mixes.front(), *pol_b, params);
  EXPECT_EQ(a, b);
}

TEST(Determinism, BatchBitIdenticalAcrossThreadCounts) {
  const auto params = fast_params();
  const auto mixes = workloads::paper_workloads(params.machine.num_cores, params.seed, 1);
  const std::vector<std::string> policies{"baseline", "pt", "cmm_a"};

  const auto serial = for_each_mix(mixes, policies, params, {.threads = 1});
  const auto four = for_each_mix(mixes, policies, params, {.threads = 4});
  const auto hw = for_each_mix(mixes, policies, params,
                               {.threads = std::thread::hardware_concurrency()});

  ASSERT_EQ(serial.size(), mixes.size() * policies.size());
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, hw);

  // And the serial batch path matches hand-rolled run_mix calls.
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const auto policy = make_policy(policies[p], params.detector());
      EXPECT_EQ(serial[m * policies.size() + p], run_mix(mixes[m], *policy, params));
    }
  }
}

TEST(Determinism, SoloBatchMatchesDirectCalls) {
  const auto params = fast_params();
  const std::vector<SoloQuery> queries{
      {"libquantum", true, 0}, {"libquantum", false, 0}, {"soplex", true, 2}};
  const auto parallel = run_solo_batch(queries, params, {.threads = 4});
  ASSERT_EQ(parallel.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(parallel[i],
              run_solo(queries[i].benchmark, params, queries[i].prefetch_on, queries[i].ways));
  }
}

TEST(BatchStats, AccountsJobsAndJson) {
  BatchStats stats = run_batch(6, [](std::size_t) {}, {.threads = 2});
  EXPECT_EQ(stats.jobs, 6u);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_GE(stats.wall_seconds, 0.0);
  const std::string json = stats.json();
  EXPECT_NE(json.find("\"jobs\":6"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(json.find("\"speedup\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\""), std::string::npos);
}

TEST(ComputeAloneIpcs, ParallelMatchesSerial) {
  const auto params = fast_params();
  const std::vector<std::string> names{"povray", "gobmk", "povray", "libquantum"};
  const auto serial = compute_alone_ipcs(names, params, {.threads = 1});
  const auto parallel = compute_alone_ipcs(names, params, {.threads = 4});
  EXPECT_EQ(serial.size(), 3u);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace cmm::analysis
