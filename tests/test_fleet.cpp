// Fleet runner correctness suite. The claims under test, in order of
// load-bearing-ness:
//
//  - Shard == monolith: a multi-domain MulticoreSystem produces
//    bit-identical per-core PMU counters to independent single-domain
//    systems running the same tenants (domains share nothing).
//  - Shard == run_mix: each no-churn fleet shard is bit-identical to a
//    standalone run_mix() on the domain's machine.
//  - Thread-count invariance: the full fleet result (merged RunResult
//    and merged metrics JSON) is bit-identical at any CMM_THREADS.
//  - Churn determinism: the churn schedule is a pure function of
//    (churn_seed, domain) — repeat runs are identical.
//  - Placement: deterministic, full domains, bandwidth-greedy when
//    asked.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/fleet.hpp"
#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::analysis {
namespace {

RunParams fleet_params(unsigned domains, unsigned cores_per_domain = 4) {
  RunParams p;
  p.machine = sim::MachineConfig::fleet(domains, cores_per_domain, /*scale_divisor=*/32);
  p.warmup_cycles = 50'000;
  p.run_cycles = 300'000;
  p.epochs.execution_epoch = 100'000;
  p.epochs.sampling_interval = 10'000;
  p.seed = 42;
  return p;
}

std::vector<std::string> tenant_pool(std::size_t n) {
  const std::vector<std::string> pool{"lbm", "mcf", "milc", "povray", "soplex", "bwaves"};
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(pool[i % pool.size()]);
  return out;
}

TEST(FleetTopology, FleetConfigShape) {
  const auto m = sim::MachineConfig::fleet(8, 8);
  EXPECT_TRUE(m.valid());
  EXPECT_EQ(m.num_cores, 64u);
  EXPECT_EQ(m.num_llc_domains, 8u);
  EXPECT_EQ(m.cores_per_domain(), 8u);
  EXPECT_EQ(m.domain_of(0), 0u);
  EXPECT_EQ(m.domain_of(63), 7u);
  EXPECT_EQ(m.domain_base(3), 24u);

  // Uneven splits and oversized domains are invalid.
  auto bad = m;
  bad.num_cores = 63;
  EXPECT_FALSE(bad.valid());
  bad = m;
  bad.num_llc_domains = 0;
  EXPECT_FALSE(bad.valid());

  // 256-core ceiling: 4 x 64 is the largest square corner.
  EXPECT_TRUE(sim::MachineConfig::fleet(4, 64).valid());
  EXPECT_FALSE(sim::MachineConfig::fleet(8, 64).valid());
}

TEST(FleetTopology, DomainConfigIsIdentityAtOneDomain) {
  const auto m = sim::MachineConfig::scaled(16);
  const auto d0 = m.domain_config(0);
  EXPECT_EQ(d0.num_cores, m.num_cores);
  EXPECT_EQ(d0.num_llc_domains, 1u);
  EXPECT_EQ(d0.llc.size_bytes, m.llc.size_bytes);
  EXPECT_TRUE(d0.valid());
}

TEST(FleetTopology, DomainConfigSlicesPrefetcherSets) {
  auto m = sim::MachineConfig::fleet(2, 4, 32);
  m.core_prefetchers.assign(8, {});
  m.core_prefetchers[5] = {sim::PrefetcherKind::DcuNextLine};
  const auto d1 = m.domain_config(1);
  ASSERT_EQ(d1.core_prefetchers.size(), 2u);  // trailing empties dropped
  EXPECT_EQ(d1.core_prefetchers[1],
            std::vector<sim::PrefetcherKind>{sim::PrefetcherKind::DcuNextLine});
  const auto d0 = m.domain_config(0);
  EXPECT_TRUE(d0.core_prefetchers.empty());
}

// A multi-domain system must be observationally equivalent to its
// shards: same tenants on a 2x4 monolith and on two standalone 4-core
// single-domain systems, op sources constructed identically (domain
// machine, local core id), same cycles — per-core counters must match
// bit for bit, domain by domain.
TEST(FleetEquivalence, MonolithMatchesShardSystems) {
  const auto params = fleet_params(2);
  const auto tenants = tenant_pool(8);
  const auto& m = params.machine;
  const std::uint32_t cpd = m.cores_per_domain();

  sim::MulticoreSystem monolith(m);
  for (CoreId c = 0; c < m.num_cores; ++c) {
    const std::uint32_t d = m.domain_of(c);
    const CoreId local = c - m.domain_base(d);
    monolith.set_op_source(c, workloads::make_op_source(tenants[c], m.domain_config(d), local,
                                                        params.seed + 0x1000ULL * local));
  }
  monolith.run(params.run_cycles);

  for (std::uint32_t d = 0; d < m.num_llc_domains; ++d) {
    sim::MulticoreSystem shard(m.domain_config(d));
    for (CoreId local = 0; local < cpd; ++local) {
      shard.set_op_source(local,
                          workloads::make_op_source(tenants[m.domain_base(d) + local],
                                                    m.domain_config(d), local,
                                                    params.seed + 0x1000ULL * local));
    }
    shard.run(params.run_cycles);
    for (CoreId local = 0; local < cpd; ++local) {
      EXPECT_EQ(shard.pmu().core(local), monolith.pmu().core(m.domain_base(d) + local))
          << "domain " << d << " core " << local;
    }
  }
}

// Each no-churn fleet shard must be bit-identical to run_mix() on the
// domain machine — the fleet layer adds sharding, not semantics.
TEST(FleetEquivalence, NoChurnShardMatchesRunMix) {
  FleetConfig cfg;
  cfg.params = fleet_params(2);
  cfg.policy = "cmm_c";
  const auto mixes = plan_placement(tenant_pool(8), PlacementMode::RoundRobin, cfg.params);
  const FleetResult fleet = run_fleet(cfg, mixes);

  ASSERT_EQ(fleet.domains.size(), 2u);
  for (std::uint32_t d = 0; d < 2; ++d) {
    RunParams shard_params = cfg.params;
    shard_params.machine = cfg.params.machine.domain_config(d);
    const auto policy = make_policy(cfg.policy, shard_params.detector());
    const RunResult want = run_mix(mixes[d], *policy, shard_params);
    EXPECT_EQ(fleet.domains[d].result, want) << "domain " << d;
  }

  // merged = domain-order concatenation.
  ASSERT_EQ(fleet.merged.cores.size(), 8u);
  EXPECT_EQ(fleet.merged.cores[5], fleet.domains[1].result.cores[1]);
  EXPECT_EQ(fleet.total_churn_swaps(), 0u);
}

TEST(FleetDeterminism, ThreadCountInvariance) {
  FleetConfig cfg;
  cfg.params = fleet_params(4);
  cfg.churn_slice = 60'000;
  cfg.churn_per_mille = 600;
  cfg.churn_catalog = {"povray", "mcf", "libquantum"};
  const auto mixes = plan_placement(tenant_pool(16), PlacementMode::RoundRobin, cfg.params);

  BatchOptions serial;
  serial.threads = 1;
  BatchOptions wide;
  wide.threads = 4;
  const FleetResult a = run_fleet(cfg, mixes, serial);
  const FleetResult b = run_fleet(cfg, mixes, wide);

  EXPECT_EQ(a.merged, b.merged);
  EXPECT_EQ(a.metrics.json(), b.metrics.json());
  EXPECT_EQ(a.total_churn_swaps(), b.total_churn_swaps());
  for (std::size_t d = 0; d < a.domains.size(); ++d) {
    EXPECT_EQ(a.domains[d].result, b.domains[d].result) << "domain " << d;
    EXPECT_EQ(a.domains[d].churn_swaps, b.domains[d].churn_swaps) << "domain " << d;
  }
}

TEST(FleetDeterminism, ChurnRunsRepeatAndActuallyChurn) {
  FleetConfig cfg;
  cfg.params = fleet_params(2);
  cfg.churn_slice = 50'000;
  cfg.churn_per_mille = 900;  // aggressive: swaps all over the run
  cfg.churn_catalog = {"povray", "mcf"};
  const auto mixes = plan_placement(tenant_pool(8), PlacementMode::RoundRobin, cfg.params);

  const FleetResult a = run_fleet(cfg, mixes);
  const FleetResult b = run_fleet(cfg, mixes);
  EXPECT_EQ(a.merged, b.merged);
  EXPECT_EQ(a.metrics.json(), b.metrics.json());
  EXPECT_GT(a.total_churn_swaps(), 0u);
  EXPECT_EQ(a.total_churn_swaps(), b.total_churn_swaps());

  // Churned shards diverge from the steady-state run (the swaps are
  // real, not bookkeeping).
  FleetConfig steady = cfg;
  steady.churn_slice = 0;
  const FleetResult c = run_fleet(steady, mixes);
  EXPECT_NE(a.merged.cores, c.merged.cores);
}

TEST(FleetPlacement, RoundRobinDealsInOrder) {
  const auto params = fleet_params(2);
  const auto mixes =
      plan_placement({"a", "b", "c", "d", "e", "f", "g", "h"}, PlacementMode::RoundRobin, params);
  ASSERT_EQ(mixes.size(), 2u);
  EXPECT_EQ(mixes[0].benchmarks, (std::vector<std::string>{"a", "c", "e", "g"}));
  EXPECT_EQ(mixes[1].benchmarks, (std::vector<std::string>{"b", "d", "f", "h"}));
  EXPECT_EQ(mixes[0].name, "fleet_d0");
}

TEST(FleetPlacement, BandwidthBalancedIsDeterministicAndFull) {
  const auto params = fleet_params(2);
  const auto tenants = tenant_pool(8);
  const auto a = plan_placement(tenants, PlacementMode::BandwidthBalanced, params);
  const auto b = plan_placement(tenants, PlacementMode::BandwidthBalanced, params);
  ASSERT_EQ(a.size(), 2u);
  for (std::uint32_t d = 0; d < 2; ++d) {
    EXPECT_EQ(a[d].benchmarks.size(), params.machine.cores_per_domain());
    EXPECT_EQ(a[d].benchmarks, b[d].benchmarks);
  }
  // Same multiset of tenants overall.
  std::vector<std::string> flat;
  for (const auto& m : a) flat.insert(flat.end(), m.benchmarks.begin(), m.benchmarks.end());
  std::sort(flat.begin(), flat.end());
  std::vector<std::string> want = tenants;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(flat, want);
}

TEST(FleetValidation, RejectsMalformedInput) {
  FleetConfig cfg;
  cfg.params = fleet_params(2);
  EXPECT_THROW(run_fleet(cfg, std::vector<workloads::WorkloadMix>{}), std::invalid_argument);
  auto mixes = plan_placement(tenant_pool(8), PlacementMode::RoundRobin, cfg.params);
  mixes[1].benchmarks.pop_back();
  EXPECT_THROW(run_fleet(cfg, mixes), std::invalid_argument);
  EXPECT_THROW(
      plan_placement(tenant_pool(3), PlacementMode::RoundRobin, cfg.params),
      std::invalid_argument);
}

}  // namespace
}  // namespace cmm::analysis
