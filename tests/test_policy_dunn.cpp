#include <gtest/gtest.h>

#include <set>

#include "core/policy_dunn.hpp"
#include "policy_test_util.hpp"

namespace cmm::core {
namespace {

constexpr unsigned kCores = 8;
constexpr unsigned kWays = 20;

TEST(DunnPolicy, NeedsNoSamples) {
  DunnPolicy dunn;
  dunn.initial_config(kCores, kWays);
  dunn.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  EXPECT_FALSE(dunn.next_sample().has_value());
}

TEST(DunnPolicy, HigherStallsGetMoreWays) {
  DunnPolicy dunn;
  dunn.initial_config(kCores, kWays);
  std::vector<sim::PmuCounters> epoch(kCores);
  for (CoreId c = 0; c < kCores; ++c) {
    epoch[c].cycles = 1'000'000;
    epoch[c].instructions = 500'000;
    epoch[c].stalls_l2_pending = (c < 4) ? 10'000 : 900'000;  // two clear groups
  }
  dunn.begin_profiling(epoch);
  const ResourceConfig cfg = dunn.final_config();
  const unsigned low = popcount(cfg.way_masks[0]);
  const unsigned high = popcount(cfg.way_masks[4]);
  EXPECT_LT(low, high);
  EXPECT_EQ(high, kWays);  // hottest cluster gets the whole cache
  // Nested: the low mask is a subset of the high mask.
  EXPECT_EQ(cfg.way_masks[0] & cfg.way_masks[4], cfg.way_masks[0]);
}

TEST(DunnPolicy, PrefetchersNeverTouched) {
  DunnPolicy dunn;
  dunn.initial_config(kCores, kWays);
  std::vector<sim::PmuCounters> epoch(kCores);
  for (CoreId c = 0; c < kCores; ++c) epoch[c].stalls_l2_pending = 1000 * (c + 1);
  dunn.begin_profiling(epoch);
  for (const bool on : dunn.final_config().prefetch_on) EXPECT_TRUE(on);
}

TEST(DunnNestedMasks, MonotoneInStalls) {
  // Three clusters with ascending stalls -> ascending way counts.
  const std::vector<unsigned> assignment{0, 0, 1, 1, 2, 2};
  const std::vector<double> stalls{1e3, 1.2e3, 5e4, 5.5e4, 9e5, 8.8e5};
  const auto masks = dunn_nested_masks(assignment, stalls, 3, 6, 20);
  const unsigned w0 = popcount(masks[0]);
  const unsigned w1 = popcount(masks[2]);
  const unsigned w2 = popcount(masks[4]);
  EXPECT_LE(w0, w1);
  EXPECT_LE(w1, w2);
  EXPECT_EQ(w2, 20u);
  EXPECT_GE(w0, 1u);
  for (const WayMask m : masks) EXPECT_TRUE(is_valid_cat_mask(m, 20));
}

TEST(DunnNestedMasks, DegenerateInputsYieldFullMasks) {
  EXPECT_EQ(dunn_nested_masks({0, 0}, {1, 1}, 1, 2, 20),
            std::vector<WayMask>(2, full_mask(20)));
  // Zero stalls everywhere: nothing to differentiate.
  EXPECT_EQ(dunn_nested_masks({0, 1}, {0, 0}, 2, 2, 20),
            std::vector<WayMask>(2, full_mask(20)));
}

TEST(DunnAllocate, PicksKByDunnIndex) {
  // Two tight groups: any k > 2 would split a tight group and lower the
  // Dunn index, so the nested allocation has exactly two distinct masks.
  const std::vector<double> stalls{1e3, 1.1e3, 1.05e3, 9e5, 9.1e5, 9.05e5};
  const auto masks = dunn_allocate(stalls, 6, 20, 2, 4);
  std::set<WayMask> distinct(masks.begin(), masks.end());
  EXPECT_EQ(distinct.size(), 2u);
}

}  // namespace
}  // namespace cmm::core
