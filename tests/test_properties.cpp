// Property-style sweeps (TEST_P): structural invariants that must hold
// across cache geometries, masks, seeds, and policy/workload crossings.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/run_harness.hpp"
#include "common/rng.hpp"
#include "sim/cache.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm {
namespace {

// ---------------------------------------------------------------------
// Cache invariants under random traffic, swept over geometries.

struct CacheGeomCase {
  std::uint64_t size;
  std::uint32_t ways;
};

class CacheInvariants : public ::testing::TestWithParam<std::tuple<CacheGeomCase, unsigned>> {};

TEST_P(CacheInvariants, RandomTrafficPreservesStructure) {
  const auto [geom_case, seed] = GetParam();
  sim::SetAssocCache cache(sim::CacheGeometry{geom_case.size, geom_case.ways, 64});
  Rng rng(seed);
  const unsigned ways = geom_case.ways;

  // Random masked fills and accesses.
  std::map<Addr, bool> resident;  // shadow model of membership
  for (int i = 0; i < 20'000; ++i) {
    const Addr line = rng.next_below(4096);
    const auto type = rng.next_bool(0.3) ? AccessType::Prefetch : AccessType::DemandLoad;
    if (rng.next_bool(0.5)) {
      const unsigned lo = static_cast<unsigned>(rng.next_below(ways));
      const unsigned count = 1 + static_cast<unsigned>(rng.next_below(ways - lo));
      const WayMask mask = contiguous_mask(lo, count);
      const auto fill = cache.fill(line, type, i, i, mask);
      if (fill.evicted_valid) resident[fill.evicted_line] = false;
      resident[line] = true;
    } else {
      const auto r = cache.access(line, type, i);
      // A hit implies the shadow model believes it resident.
      if (r.hit) {
        EXPECT_TRUE(resident[line]) << "phantom line " << line;
      }
    }
  }

  // No duplicate tags within any set; occupancy bounded.
  for (std::uint32_t set = 0; set < cache.num_sets(); ++set) {
    EXPECT_LE(cache.set_occupancy(set), ways);
  }
  // Membership agrees with the shadow model (cache may hold fewer).
  for (const auto& [line, live] : resident) {
    if (cache.contains(line)) {
      EXPECT_TRUE(live);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheInvariants,
    ::testing::Combine(::testing::Values(CacheGeomCase{16 * 1024, 4}, CacheGeomCase{32 * 1024, 8},
                                         CacheGeomCase{64 * 1024, 16},
                                         CacheGeomCase{1280 * 1024, 20}),
                       ::testing::Values(1u, 2u, 3u)));

// ---------------------------------------------------------------------
// Stats invariants for every suite benchmark under a short solo run.

class BenchmarkStatsInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkStatsInvariants, PmuDomains) {
  analysis::RunParams p;
  p.machine = sim::MachineConfig::scaled(32);
  p.warmup_cycles = 100'000;
  p.run_cycles = 400'000;
  const auto r = analysis::run_solo(GetParam(), p, true);
  const auto& c = r.cores.front().counters;

  EXPECT_GT(c.instructions, 0u);
  EXPECT_GT(c.cycles, 0u);
  EXPECT_LE(c.l2_dm_miss, c.l2_dm_req);
  EXPECT_LE(c.l2_pref_miss, c.l2_pref_req);
  EXPECT_LE(c.stalls_l2_pending, c.cycles);
  // DRAM bytes are line-granular.
  EXPECT_EQ(c.dram_demand_bytes % 64, 0u);
  EXPECT_EQ(c.dram_prefetch_bytes % 64, 0u);
  // IPC within sane physical bounds for our CPI range.
  EXPECT_GT(r.cores.front().ipc, 0.001);
  EXPECT_LT(r.cores.front().ipc, 4.0);
}

TEST_P(BenchmarkStatsInvariants, DisablingPrefetchKillsPrefetchTraffic) {
  analysis::RunParams p;
  p.machine = sim::MachineConfig::scaled(32);
  p.warmup_cycles = 50'000;
  p.run_cycles = 200'000;
  const auto r = analysis::run_solo(GetParam(), p, false);
  EXPECT_EQ(r.cores.front().counters.l2_pref_req, 0u);
  EXPECT_EQ(r.cores.front().counters.dram_prefetch_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(WholeSuite, BenchmarkStatsInvariants, [] {
  std::vector<std::string> names;
  for (const auto& s : workloads::benchmark_suite()) names.push_back(s.name);
  return ::testing::ValuesIn(names);
}());

// ---------------------------------------------------------------------
// Determinism across repeated runs, swept over seeds and mechanisms.

class DeterminismSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {};

TEST_P(DeterminismSweep, IdenticalRunsProduceIdenticalCounters) {
  const auto& [policy_name, seed] = GetParam();
  analysis::RunParams p;
  p.machine = sim::MachineConfig::scaled(32);
  p.run_cycles = 500'000;
  p.epochs.execution_epoch = 120'000;
  p.epochs.sampling_interval = 8'000;
  p.seed = seed;
  const auto mixes =
      workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, p.machine.num_cores, seed);

  std::vector<std::uint64_t> insts[2];
  for (int rep = 0; rep < 2; ++rep) {
    auto policy = analysis::make_policy(policy_name, p.detector());
    const auto r = analysis::run_mix(mixes.front(), *policy, p);
    for (const auto& c : r.cores) insts[rep].push_back(c.counters.instructions);
  }
  EXPECT_EQ(insts[0], insts[1]);
}

INSTANTIATE_TEST_SUITE_P(PoliciesAndSeeds, DeterminismSweep,
                         ::testing::Combine(::testing::Values("baseline", "pt", "cmm_a"),
                                            ::testing::Values(1u, 99u)));

// ---------------------------------------------------------------------
// Partition-sizing rule domain sweep.

class PartitionRule : public ::testing::TestWithParam<unsigned> {};

TEST_P(PartitionRule, AlwaysLeavesHeadroom) {
  const unsigned total_ways = GetParam();
  for (unsigned n = 0; n <= 32; ++n) {
    const unsigned w = core::partition_ways_for(n, total_ways);
    EXPECT_GE(w, 1u);
    if (total_ways > 1) {
      EXPECT_LT(w, total_ways);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WayCounts, PartitionRule, ::testing::Values(1u, 2u, 8u, 11u, 20u));

// ---------------------------------------------------------------------
// Throttle-combination enumeration properties.

class ThrottleCombos : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThrottleCombos, CompleteAndDuplicateFree) {
  const unsigned n = GetParam();
  const auto combos = core::throttle_combinations(n);
  EXPECT_EQ(combos.size(), 1ULL << n);
  std::set<std::vector<bool>> unique(combos.begin(), combos.end());
  EXPECT_EQ(unique.size(), combos.size());
  // Probe ordering contract: all-on first, all-off second.
  EXPECT_EQ(combos[0], std::vector<bool>(n, true));
  if (n > 0) {
    EXPECT_EQ(combos[1], std::vector<bool>(n, false));
  }
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, ThrottleCombos, ::testing::Values(1u, 2u, 3u, 4u, 6u));

}  // namespace
}  // namespace cmm
