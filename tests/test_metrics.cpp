#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"

namespace cmm::core {
namespace {

sim::PmuCounters sample_counters() {
  sim::PmuCounters c;
  c.cycles = 2'100'000;  // exactly 1 ms at 2.1 GHz
  c.instructions = 1'000'000;
  c.l2_pref_req = 8'000;
  c.l2_pref_miss = 6'000;
  c.l2_dm_req = 4'000;
  c.l2_dm_miss = 2'000;
  c.l3_load_miss = 1'000;
  c.stalls_l2_pending = 300'000;
  c.dram_demand_bytes = 1'000 * 64;
  c.dram_prefetch_bytes = 5'000 * 64;
  return c;
}

TEST(Metrics, TableIDefinitions) {
  const CoreMetrics m = compute_metrics(sample_counters(), 2.1);
  // M-1: L2->LLC traffic = pref miss + dm miss.
  EXPECT_DOUBLE_EQ(m.l2_llc_traffic, 8'000.0);
  // M-2: prefetch fraction of that traffic.
  EXPECT_DOUBLE_EQ(m.l2_pref_miss_frac, 0.75);
  // M-3: pref misses per second (1 ms interval).
  EXPECT_DOUBLE_EQ(m.l2_ptr, 6'000.0 / 1e-3);
  // M-4: PGA = pref req / dm req.
  EXPECT_DOUBLE_EQ(m.pga, 2.0);
  // M-5: PMR = pref miss / pref req.
  EXPECT_DOUBLE_EQ(m.l2_pmr, 0.75);
  // M-6: PPM = pref req / dm miss.
  EXPECT_DOUBLE_EQ(m.l2_ppm, 4.0);
  // M-7: (total DRAM bytes - l3 load miss * 64) per second.
  EXPECT_DOUBLE_EQ(m.llc_pt, (6'000.0 - 1'000.0) * 64.0 / 1e-3);
  EXPECT_NEAR(m.ipc, 1.0 / 2.1, 1e-9);
  EXPECT_DOUBLE_EQ(m.stalls_l2_pending, 300'000.0);
}

TEST(Metrics, ZeroDenominatorsSafe) {
  const CoreMetrics m = compute_metrics(sim::PmuCounters{}, 2.1);
  EXPECT_DOUBLE_EQ(m.pga, 0.0);
  EXPECT_DOUBLE_EQ(m.l2_pmr, 0.0);
  EXPECT_DOUBLE_EQ(m.l2_ppm, 0.0);
  EXPECT_DOUBLE_EQ(m.l2_ptr, 0.0);
  EXPECT_DOUBLE_EQ(m.llc_pt, 0.0);
}

TEST(Metrics, PgaSaturatesWhenDemandAbsent) {
  sim::PmuCounters c = sample_counters();
  c.l2_dm_req = 0;
  const CoreMetrics m = compute_metrics(c, 2.1);
  EXPECT_DOUBLE_EQ(m.pga, 16.0);  // capped "all prefetch" value
  c.l2_pref_req = 0;
  c.l2_pref_miss = 0;
  EXPECT_DOUBLE_EQ(compute_metrics(c, 2.1).pga, 0.0);
}

TEST(Metrics, PgaCapAppliesToRatioToo) {
  sim::PmuCounters c = sample_counters();
  c.l2_pref_req = 1'000'000;
  c.l2_dm_req = 1;
  EXPECT_DOUBLE_EQ(compute_metrics(c, 2.1).pga, 16.0);
}

TEST(Metrics, LlcPtClampedAtZero) {
  sim::PmuCounters c = sample_counters();
  c.dram_prefetch_bytes = 0;
  c.dram_demand_bytes = 100;     // < l3_load_miss * 64
  EXPECT_DOUBLE_EQ(compute_metrics(c, 2.1).llc_pt, 0.0);
}

TEST(Metrics, ComputeAll) {
  const std::vector<sim::PmuCounters> deltas(3, sample_counters());
  const auto all = compute_all_metrics(deltas, 2.1);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_DOUBLE_EQ(all[2].pga, 2.0);
}

TEST(Metrics, HmIpc) {
  std::vector<sim::PmuCounters> deltas(2);
  deltas[0].cycles = 1000;
  deltas[0].instructions = 1000;  // ipc 1
  deltas[1].cycles = 1000;
  deltas[1].instructions = 3000;  // ipc 3
  EXPECT_DOUBLE_EQ(hm_ipc(deltas), 1.5);  // harmonic mean of 1 and 3
}

TEST(Metrics, HmIpcZeroOnStalledCore) {
  std::vector<sim::PmuCounters> deltas(2);
  deltas[0].cycles = 1000;
  deltas[0].instructions = 1000;
  deltas[1].cycles = 1000;  // ipc 0
  EXPECT_DOUBLE_EQ(hm_ipc(deltas), 0.0);
  EXPECT_DOUBLE_EQ(hm_ipc({}), 0.0);
}

TEST(Metrics, AllZeroDeltaYieldsFiniteZeroMetrics) {
  // The zero-denominator contract: a quarantined interval (all-zero
  // delta) produces 0.0 everywhere, never NaN/Inf from 0/0.
  const CoreMetrics m = compute_metrics(sim::PmuCounters{}, 2.1);
  for (const double v : {m.l2_llc_traffic, m.l2_pref_miss_frac, m.l2_ptr, m.pga, m.l2_pmr,
                         m.l2_ppm, m.llc_pt, m.ipc, m.stalls_l2_pending}) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Metrics, ZeroDenominatorsWithNonZeroNumeratorsStayFinite) {
  sim::PmuCounters c;
  c.l2_pref_req = 100;  // PGA: pref req with zero dm req -> capped, PMR: 0 miss
  c.dram_prefetch_bytes = 64 * 100;  // bytes but zero cycles -> llc_pt 0
  const CoreMetrics m = compute_metrics(c, 2.1);
  EXPECT_TRUE(std::isfinite(m.pga));
  EXPECT_DOUBLE_EQ(m.l2_ppm, 0.0);  // 100 / 0 dm miss -> 0 by contract
  EXPECT_DOUBLE_EQ(m.llc_pt, 0.0);
  EXPECT_DOUBLE_EQ(m.ipc, 0.0);
}

TEST(Metrics, HmIpcZeroOnQuarantinedInterval) {
  // One healthy core plus one quarantined (all-zero) core: the HM is
  // 0.0 by definition — a blinded interval can never win the search.
  std::vector<sim::PmuCounters> deltas(2);
  deltas[0].cycles = 1000;
  deltas[0].instructions = 2000;
  const double hm = hm_ipc(deltas);
  EXPECT_TRUE(std::isfinite(hm));
  EXPECT_DOUBLE_EQ(hm, 0.0);
}

}  // namespace
}  // namespace cmm::core
