// Differential/property test for the SoA SetAssocCache rewrite: drive
// the production cache and the retained AoS reference implementation
// (reference_cache.hpp) with the same randomized op stream — access,
// fill (under rotating CAT masks and owners), invalidate, flush — and
// assert identical LookupResult/FillResult streams, identical stats at
// every step, and identical occupancy views at checkpoints. Any
// divergence in replacement decisions, prefetch bookkeeping, or the
// incremental owner-occupancy counters shows up immediately with the
// op index that caused it.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "reference_cache.hpp"
#include "sim/cache.hpp"

namespace cmm::sim {
namespace {

bool same(const LookupResult& a, const LookupResult& b) {
  return a.hit == b.hit && a.ready_at == b.ready_at &&
         a.first_use_of_prefetch == b.first_use_of_prefetch;
}

bool same(const FillResult& a, const FillResult& b) {
  return a.evicted_valid == b.evicted_valid && a.evicted_line == b.evicted_line &&
         a.evicted_was_prefetched_unused == b.evicted_was_prefetched_unused &&
         a.evicted_dirty == b.evicted_dirty && a.evicted_owner == b.evicted_owner;
}

bool same(const CacheStats& a, const CacheStats& b) {
  return a.demand_accesses == b.demand_accesses && a.demand_hits == b.demand_hits &&
         a.prefetch_accesses == b.prefetch_accesses && a.prefetch_hits == b.prefetch_hits &&
         a.prefetched_lines_used == b.prefetched_lines_used &&
         a.prefetched_lines_evicted_unused == b.prefetched_lines_evicted_unused &&
         a.evictions == b.evictions;
}

struct DiffConfig {
  CacheGeometry geom;
  std::uint64_t ops = 1'000'000;
  std::uint64_t seed = 0xC0FFEE;
  unsigned num_cores = 8;
  // Address pool: small multiple of capacity so hits, conflict misses,
  // and mask-restricted evictions all occur frequently.
  std::uint64_t addr_pool_factor = 3;
};

void run_differential(const DiffConfig& cfg) {
  SetAssocCache soa(cfg.geom);
  testref::ReferenceCache ref(cfg.geom);
  Rng rng(cfg.seed);

  const std::uint32_t ways = cfg.geom.ways;
  const std::uint64_t pool = cfg.geom.num_lines() * cfg.addr_pool_factor + 1;

  // Rotating CAT mask table: full mask, narrow/wide contiguous masks at
  // several offsets (real CAT), plus a sprinkle of arbitrary masks and
  // masks reaching beyond the associativity.
  std::vector<WayMask> masks{~WayMask{0}, full_mask(ways)};
  for (unsigned lo = 0; lo < ways; lo += 2) {
    masks.push_back(contiguous_mask(lo, 2));
    masks.push_back(contiguous_mask(lo, ways / 2 + 1));
  }
  masks.push_back(contiguous_mask(ways - 1, 4));  // straddles the top way
  masks.push_back(0x5);                           // non-contiguous (model allows)

  Cycle now = 0;
  for (std::uint64_t i = 0; i < cfg.ops; ++i) {
    now += rng.next_below(3);
    const Addr line = rng.next_below(pool);
    const auto roll = rng.next_below(100);

    if (roll < 45) {  // demand/prefetch access
      const AccessType type = roll < 25  ? AccessType::DemandLoad
                              : roll < 35 ? AccessType::DemandStore
                                          : AccessType::Prefetch;
      const LookupResult a = soa.access(line, type, now);
      const LookupResult b = ref.access(line, type, now);
      ASSERT_TRUE(same(a, b)) << "access diverged at op " << i;
    } else if (roll < 90) {  // fill under a rotating mask
      const AccessType type = roll < 65  ? AccessType::DemandLoad
                              : roll < 70 ? AccessType::DemandStore
                                          : AccessType::Prefetch;
      const WayMask mask = masks[rng.next_below(masks.size())];
      const auto owner = static_cast<CoreId>(rng.next_below(cfg.num_cores + 1));
      const CoreId o = owner == cfg.num_cores ? kInvalidCore : owner;
      const Cycle ready = now + rng.next_below(200);
      const FillResult a = soa.fill(line, type, now, ready, mask, o);
      const FillResult b = ref.fill(line, type, now, ready, mask, o);
      ASSERT_TRUE(same(a, b)) << "fill diverged at op " << i;
    } else if (roll < 97) {  // invalidate
      ASSERT_EQ(soa.invalidate(line), ref.invalidate(line)) << "invalidate diverged at op " << i;
    } else if (roll < 98) {  // rare flush
      soa.flush();
      ref.flush();
    } else {  // occupancy checkpoint
      const std::uint32_t set = static_cast<std::uint32_t>(rng.next_below(soa.num_sets()));
      const WayMask mask = masks[rng.next_below(masks.size())];
      ASSERT_EQ(soa.set_occupancy_in_mask(set, mask), ref.set_occupancy_in_mask(set, mask))
          << "set occupancy diverged at op " << i;
      ASSERT_EQ(soa.occupancy_by_owner(cfg.num_cores), ref.occupancy_by_owner(cfg.num_cores))
          << "owner occupancy diverged at op " << i;
    }

    ASSERT_TRUE(same(soa.stats(), ref.stats())) << "stats diverged at op " << i;
  }

  // Final full-state comparison.
  EXPECT_EQ(soa.occupancy_by_owner(cfg.num_cores), ref.occupancy_by_owner(cfg.num_cores));
  for (std::uint32_t set = 0; set < soa.num_sets(); ++set) {
    ASSERT_EQ(soa.set_occupancy_in_mask(set, ~WayMask{0}),
              ref.set_occupancy_in_mask(set, ~WayMask{0}))
        << "final occupancy diverged in set " << set;
  }
  for (Addr line = 0; line < pool; ++line) {
    ASSERT_EQ(soa.contains(line), ref.contains(line)) << "final residency diverged at " << line;
  }
}

// The headline run: 1M randomized ops on an LLC-like geometry (20 ways,
// the CAT-masked path the paper's partitioning exercises).
TEST(CacheSoaDifferential, MillionOpsLlcGeometry) {
  DiffConfig cfg;
  cfg.geom = CacheGeometry{64 * 20 * 64, 20, 64};  // 64 sets x 20 ways
  cfg.ops = 1'000'000;
  run_differential(cfg);
}

// L1-like geometry: 8 ways, power-of-two associativity.
TEST(CacheSoaDifferential, L1Geometry) {
  DiffConfig cfg;
  cfg.geom = CacheGeometry{32 * 8 * 64, 8, 64};  // 32 sets x 8 ways
  cfg.ops = 200'000;
  cfg.seed = 0xBADF00D;
  run_differential(cfg);
}

// Degenerate geometries: single set, and single way (every fill under a
// mask that allows it evicts).
TEST(CacheSoaDifferential, SingleSet) {
  DiffConfig cfg;
  cfg.geom = CacheGeometry{1 * 16 * 64, 16, 64};  // 1 set x 16 ways
  cfg.ops = 100'000;
  cfg.seed = 7;
  cfg.addr_pool_factor = 5;
  run_differential(cfg);
}

TEST(CacheSoaDifferential, SingleWay) {
  DiffConfig cfg;
  cfg.geom = CacheGeometry{16 * 1 * 64, 1, 64};  // 16 sets x 1 way
  cfg.ops = 100'000;
  cfg.seed = 99;
  run_differential(cfg);
}

// 32 ways saturates the WayMask width: shifts by way 31 and full-mask
// handling must not overflow.
TEST(CacheSoaDifferential, MaxWays) {
  DiffConfig cfg;
  cfg.geom = CacheGeometry{8 * 32 * 64, 32, 64};  // 8 sets x 32 ways
  cfg.ops = 100'000;
  cfg.seed = 31;
  run_differential(cfg);
}

}  // namespace
}  // namespace cmm::sim
