// Conformance suite: the plug-in contract every registered prefetcher
// engine must satisfy (see the contract comment in sim/prefetcher.hpp).
// The suite iterates sim::prefetcher_registry(), so registering a new
// engine automatically puts it under every check here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/multicore_system.hpp"
#include "sim/pf_common.hpp"
#include "sim/prefetcher_registry.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::sim {
namespace {

constexpr unsigned kLpp = 64;

/// A fixed-seed observation stream exercising the behaviours engines
/// key on: sequential runs, strides, random pages, and page-edge
/// hammering (offsets 0/1/62/63). Misses dominate, as at a real L2.
std::vector<PrefetchObservation> conformance_stream(std::uint64_t seed) {
  std::vector<PrefetchObservation> stream;
  Rng rng(seed);

  // Sequential forward runs across several pages.
  for (Addr page = 16; page < 20; ++page) {
    for (std::uint32_t off = 0; off < kLpp; off += 1) {
      stream.push_back({page * kLpp + off, 1, true});
    }
  }
  // Strided run (stride 3 lines) under one IP.
  for (unsigned i = 0; i < 200; ++i) {
    stream.push_back({Addr{2048} + 3 * i, 2, (i % 4) != 0});
  }
  // Backward run.
  for (std::uint32_t off = kLpp; off-- > 0;) {
    stream.push_back({40 * kLpp + off, 3, true});
  }
  // Random lines within a small page set (trains nothing coherent but
  // must not perturb determinism or bounds).
  for (unsigned i = 0; i < 300; ++i) {
    stream.push_back({64 * kLpp + rng.next_below(8 * kLpp),
                      static_cast<IpId>(4 + rng.next_below(4)), rng.next_bool(0.8)});
  }
  // Page-edge hammering: first/last offsets of consecutive pages.
  for (Addr page = 100; page < 108; ++page) {
    for (const std::uint32_t off : {0u, 1u, kLpp - 2, kLpp - 1}) {
      stream.push_back({page * kLpp + off, 9, true});
    }
  }
  return stream;
}

/// Replay `stream` through `p`, emulating fill completions for engines
/// that want them, and checking per-call bounds and page locality as
/// we go. Returns the concatenated candidate sequence.
std::vector<Addr> replay(Prefetcher& p, const std::vector<PrefetchObservation>& stream) {
  std::vector<Addr> all;
  std::vector<Addr> cands;
  for (const auto& obs : stream) {
    cands.clear();
    p.observe(obs, cands);
    EXPECT_LE(cands.size(), p.max_candidates())
        << to_string(p.kind()) << " exceeded max_candidates()";
    if (p.page_local()) {
      for (const Addr cand : cands) {
        EXPECT_TRUE(same_page(obs.line_addr, cand, kLpp))
            << to_string(p.kind()) << " emitted " << cand << " outside the page of "
            << obs.line_addr;
      }
    }
    if (p.wants_cache_fill()) {
      // Emulate the core: candidates complete as prefetch fills; the
      // demand line itself fills on a miss.
      for (const Addr cand : cands) p.cache_fill(cand, true);
      if (obs.miss) p.cache_fill(obs.line_addr, false);
    }
    all.insert(all.end(), cands.begin(), cands.end());
  }
  return all;
}

class PrefetcherConformance : public ::testing::TestWithParam<PrefetcherKind> {};

TEST(PrefetcherRegistry, WellFormed) {
  const auto& registry = prefetcher_registry();
  ASSERT_EQ(registry.size(), kNumPrefetcherKinds);
  for (unsigned i = 0; i < registry.size(); ++i) {
    const auto& info = registry[i];
    EXPECT_EQ(static_cast<unsigned>(info.kind), i) << "registry must be ordered by kind value";
    EXPECT_EQ(info.name, to_string(info.kind));
    EXPECT_EQ(info.level, level_of(info.kind));
    EXPECT_EQ(prefetcher_from_string(info.name), info.kind);
    auto p = info.make();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), info.kind);
    EXPECT_GE(p->max_candidates(), 1u);
  }
  EXPECT_EQ(prefetcher_from_string("no_such_engine"), std::nullopt);
  // The default set is the Intel-modelled quartet.
  EXPECT_EQ(default_prefetcher_set().size(), 4u);
  for (const auto kind : default_prefetcher_set()) {
    EXPECT_LT(static_cast<unsigned>(kind), 4u);
  }
}

TEST_P(PrefetcherConformance, DeterministicUnderFixedSeed) {
  const auto stream = conformance_stream(/*seed=*/42);
  auto a = make_prefetcher(GetParam());
  auto b = make_prefetcher(GetParam());
  EXPECT_EQ(replay(*a, stream), replay(*b, stream));
  EXPECT_EQ(a->issued(), b->issued());
}

TEST_P(PrefetcherConformance, ResetRestoresConstructionState) {
  const auto warm = conformance_stream(/*seed=*/7);
  const auto probe = conformance_stream(/*seed=*/42);
  auto reset_one = make_prefetcher(GetParam());
  replay(*reset_one, warm);  // dirty every table
  reset_one->reset();
  auto fresh = make_prefetcher(GetParam());
  EXPECT_EQ(replay(*reset_one, probe), replay(*fresh, probe))
      << "reset() must be equivalent to construction";
}

TEST_P(PrefetcherConformance, BoundsAndClampingOnEdgeStream) {
  // replay() itself asserts per-call bounds and page locality; this
  // case exists to drive them over the edge-heavy stream with a second
  // seed so the random section differs.
  auto p = make_prefetcher(GetParam());
  const auto emitted = replay(*p, conformance_stream(/*seed=*/1234));
  EXPECT_EQ(p->issued(), emitted.size())
      << "issued() odometer must count exactly the emitted candidates";
}

TEST_P(PrefetcherConformance, NoEmissionWhenMsrDisabled) {
  auto cfg = MachineConfig::scaled(16);
  cfg.num_cores = 1;
  cfg.core_prefetchers = {{GetParam()}};
  ASSERT_TRUE(cfg.valid());

  MulticoreSystem sys(cfg);
  ASSERT_EQ(sys.core(0).prefetchers().size(), 1u);
  const Prefetcher& engine = *sys.core(0).prefetchers()[0];
  sys.core(0).prefetch_msr().set_enabled(GetParam(), false);
  sys.set_op_source(0, workloads::make_op_source("libquantum", cfg, 0, /*seed=*/1));
  sys.run(500'000);
  EXPECT_EQ(engine.issued(), 0u) << "disabled engine saw traffic or emitted candidates";
}

TEST_P(PrefetcherConformance, EmitsOnStreamingWorkloadWhenEnabled) {
  auto cfg = MachineConfig::scaled(16);
  cfg.num_cores = 1;
  cfg.core_prefetchers = {{GetParam()}};

  MulticoreSystem sys(cfg);
  const Prefetcher& engine = *sys.core(0).prefetchers()[0];
  sys.set_op_source(0, workloads::make_op_source("libquantum", cfg, 0, /*seed=*/1));
  sys.run(500'000);
  EXPECT_GT(engine.issued(), 0u)
      << "a sequential stream should trigger every registered engine";
}

std::vector<PrefetcherKind> all_kinds() {
  std::vector<PrefetcherKind> kinds;
  for (const auto& info : prefetcher_registry()) kinds.push_back(info.kind);
  return kinds;
}

INSTANTIATE_TEST_SUITE_P(AllEngines, PrefetcherConformance, ::testing::ValuesIn(all_kinds()),
                         [](const ::testing::TestParamInfo<PrefetcherKind>& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace cmm::sim
