#include <gtest/gtest.h>

#include "sim/prefetch_msr.hpp"

namespace cmm::sim {
namespace {

TEST(PrefetchMsr, ResetStateAllEnabled) {
  PrefetchMsr msr;
  EXPECT_EQ(msr.read(), 0u);
  EXPECT_TRUE(msr.all_enabled());
  for (unsigned k = 0; k < kNumPrefetcherKinds; ++k) {
    EXPECT_TRUE(msr.enabled(static_cast<PrefetcherKind>(k)));
  }
}

TEST(PrefetchMsr, SetBitDisables) {
  // SDM semantics: a SET bit disables the prefetcher.
  PrefetchMsr msr;
  msr.write(0b0001);
  EXPECT_FALSE(msr.enabled(PrefetcherKind::L2Streamer));
  EXPECT_TRUE(msr.enabled(PrefetcherKind::L2Adjacent));
  msr.write(0b0100);
  EXPECT_TRUE(msr.enabled(PrefetcherKind::L2Streamer));
  EXPECT_FALSE(msr.enabled(PrefetcherKind::DcuNextLine));
}

TEST(PrefetchMsr, BitLayoutMatchesHardware) {
  PrefetchMsr msr;
  msr.set_enabled(PrefetcherKind::L2Streamer, false);
  EXPECT_EQ(msr.read(), 0b0001u);
  msr.set_enabled(PrefetcherKind::L2Adjacent, false);
  EXPECT_EQ(msr.read(), 0b0011u);
  msr.set_enabled(PrefetcherKind::DcuNextLine, false);
  EXPECT_EQ(msr.read(), 0b0111u);
  msr.set_enabled(PrefetcherKind::DcuIpStride, false);
  EXPECT_EQ(msr.read(), 0b1111u);
  msr.set_enabled(PrefetcherKind::L2Adjacent, true);
  EXPECT_EQ(msr.read(), 0b1101u);
}

TEST(PrefetchMsr, SetAll) {
  PrefetchMsr msr;
  msr.set_all(false);
  EXPECT_TRUE(msr.all_disabled());
  EXPECT_EQ(msr.read(), 0xFu);
  msr.set_all(true);
  EXPECT_TRUE(msr.all_enabled());
}

TEST(PrefetchMsr, WriteMasksReservedBits) {
  PrefetchMsr msr;
  msr.write(0xFFFF'FFFF'FFFF'FFF5ULL);
  EXPECT_EQ(msr.read(), 0x5u);  // only the low 4 bits are defined
}

}  // namespace
}  // namespace cmm::sim
