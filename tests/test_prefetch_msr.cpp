#include <gtest/gtest.h>

#include "sim/prefetch_msr.hpp"

namespace cmm::sim {
namespace {

TEST(PrefetchMsr, ResetStateAllEnabled) {
  PrefetchMsr msr;
  EXPECT_EQ(msr.read(), 0u);
  EXPECT_TRUE(msr.all_enabled());
  for (unsigned k = 0; k < kNumPrefetcherKinds; ++k) {
    EXPECT_TRUE(msr.enabled(static_cast<PrefetcherKind>(k)));
  }
}

TEST(PrefetchMsr, SetBitDisables) {
  // SDM semantics: a SET bit disables the prefetcher.
  PrefetchMsr msr;
  msr.write(0b0001);
  EXPECT_FALSE(msr.enabled(PrefetcherKind::L2Streamer));
  EXPECT_TRUE(msr.enabled(PrefetcherKind::L2Adjacent));
  msr.write(0b0100);
  EXPECT_TRUE(msr.enabled(PrefetcherKind::L2Streamer));
  EXPECT_FALSE(msr.enabled(PrefetcherKind::DcuNextLine));
}

TEST(PrefetchMsr, BitLayoutMatchesHardware) {
  PrefetchMsr msr;
  msr.set_enabled(PrefetcherKind::L2Streamer, false);
  EXPECT_EQ(msr.read(), 0b0001u);
  msr.set_enabled(PrefetcherKind::L2Adjacent, false);
  EXPECT_EQ(msr.read(), 0b0011u);
  msr.set_enabled(PrefetcherKind::DcuNextLine, false);
  EXPECT_EQ(msr.read(), 0b0111u);
  msr.set_enabled(PrefetcherKind::DcuIpStride, false);
  EXPECT_EQ(msr.read(), 0b1111u);
  msr.set_enabled(PrefetcherKind::L2Adjacent, true);
  EXPECT_EQ(msr.read(), 0b1101u);
}

TEST(PrefetchMsr, SetAll) {
  PrefetchMsr msr;
  msr.set_all(false);
  EXPECT_TRUE(msr.all_disabled());
  EXPECT_EQ(msr.read(), kPrefetchDisableAllMask);
  EXPECT_EQ(msr.read(), 0x7Fu);  // one disable bit per registered kind
  msr.set_all(true);
  EXPECT_TRUE(msr.all_enabled());
}

TEST(PrefetchMsr, WriteMasksReservedBits) {
  PrefetchMsr msr;
  msr.write(0xFFFF'FFFF'FFFF'FF85ULL);
  EXPECT_EQ(msr.read(), 0x5u);  // bits >= kNumPrefetcherKinds are reserved
}

// Property: encode(decode(v)) == v and write/read round-trips for
// every per-kind enable-bit combination (exhaustive over 2^kinds).
TEST(PrefetchMsr, EncodeDecodeRoundTripAllCombinations) {
  for (std::uint64_t v = 0; v < (1ULL << kNumPrefetcherKinds); ++v) {
    const auto enabled = PrefetchMsr::decode(v);
    EXPECT_EQ(PrefetchMsr::encode(enabled), v);

    PrefetchMsr msr;
    msr.write(v);
    EXPECT_EQ(msr.read(), v);
    for (unsigned k = 0; k < kNumPrefetcherKinds; ++k) {
      EXPECT_EQ(msr.enabled(static_cast<PrefetcherKind>(k)), enabled[k])
          << "value " << v << " kind " << k;
    }
    EXPECT_EQ(msr.all_enabled(), v == 0);
    EXPECT_EQ(msr.all_disabled(), v == kPrefetchDisableAllMask);
  }
}

// Property: bits above the defined range saturate away on write and
// never leak through decode, for any defined-bit payload underneath.
TEST(PrefetchMsr, UnknownKindBitsSaturate) {
  for (const std::uint64_t junk :
       {std::uint64_t{1} << kNumPrefetcherKinds, std::uint64_t{0x100},
        std::uint64_t{0x8000'0000'0000'0000}, ~kPrefetchDisableAllMask}) {
    for (const std::uint64_t defined :
         {std::uint64_t{0}, std::uint64_t{0x2A}, kPrefetchDisableAllMask}) {
      PrefetchMsr msr;
      msr.write(junk | defined);
      EXPECT_EQ(msr.read(), defined);
      EXPECT_EQ(PrefetchMsr::encode(PrefetchMsr::decode(junk | defined)), defined);
    }
  }
}

}  // namespace
}  // namespace cmm::sim
