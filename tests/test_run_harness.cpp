#include <gtest/gtest.h>

#include "analysis/run_harness.hpp"

namespace cmm::analysis {
namespace {

RunParams fast_params() {
  RunParams p;
  p.machine = sim::MachineConfig::scaled(32);
  p.warmup_cycles = 200'000;
  p.run_cycles = 600'000;
  p.epochs.execution_epoch = 150'000;
  p.epochs.sampling_interval = 10'000;
  return p;
}

TEST(RunHarness, SoloRunProducesStats) {
  const auto r = run_solo("libquantum", fast_params(), true);
  ASSERT_EQ(r.cores.size(), 1u);
  EXPECT_EQ(r.cores.front().benchmark, "libquantum");
  EXPECT_GT(r.cores.front().ipc, 0.0);
  EXPECT_GT(r.cores.front().total_gbs(), 0.0);
}

TEST(RunHarness, SoloPrefetchToggleMatters) {
  const auto on = run_solo("libquantum", fast_params(), true);
  const auto off = run_solo("libquantum", fast_params(), false);
  EXPECT_GT(on.cores.front().ipc, off.cores.front().ipc);
  EXPECT_EQ(off.cores.front().prefetch_gbs, 0.0);
  EXPECT_GT(on.cores.front().prefetch_gbs, 0.0);
}

TEST(RunHarness, SoloWayLimitMatters) {
  // soplex is LLC sensitive: 1 way must be slower than the full cache.
  RunParams p = fast_params();
  p.warmup_cycles = 1'500'000;
  p.run_cycles = 1'500'000;
  const auto narrow = run_solo("soplex", p, true, 1);
  const auto wide = run_solo("soplex", p, true, 0);
  EXPECT_LT(narrow.cores.front().ipc, wide.cores.front().ipc * 0.9);
}

TEST(RunHarness, MixRunCoversAllCores) {
  const auto params = fast_params();
  const auto mixes = workloads::make_mixes(workloads::MixCategory::PrefNoAgg, 1,
                                           params.machine.num_cores, params.seed);
  auto policy = make_policy("baseline", params.detector());
  const auto r = run_mix(mixes.front(), *policy, params);
  ASSERT_EQ(r.cores.size(), params.machine.num_cores);
  for (const auto& c : r.cores) EXPECT_GT(c.ipc, 0.0);
  EXPECT_EQ(r.ipcs().size(), params.machine.num_cores);
}

TEST(RunHarness, MechanismNamesResolve) {
  const auto names = mechanism_names();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& n : names) {
    EXPECT_NO_THROW(make_policy(n, core::DetectorConfig{})) << n;
    EXPECT_EQ(make_policy(n, core::DetectorConfig{})->name(), n);
  }
  EXPECT_NO_THROW(make_policy("baseline", core::DetectorConfig{}));
  EXPECT_THROW(make_policy("nonsense", core::DetectorConfig{}), std::invalid_argument);
}

TEST(RunHarness, AloneIpcTableDeduplicates) {
  const auto params = fast_params();
  const auto table = compute_alone_ipcs({"povray", "povray", "gobmk"}, params);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_GT(table.at("povray"), 0.0);
}

TEST(RunHarness, ClassifierAgreesWithSpecOnExtremes) {
  RunParams p = fast_params();
  p.machine = sim::MachineConfig::scaled(16);
  p.warmup_cycles = 2'000'000;
  p.run_cycles = 2'500'000;
  const auto stream = classify_benchmark("libquantum", p);
  EXPECT_TRUE(stream.prefetch_aggressive);
  EXPECT_TRUE(stream.prefetch_friendly);
  EXPECT_FALSE(stream.llc_sensitive);

  const auto rand = classify_benchmark("rand_access", p);
  EXPECT_TRUE(rand.prefetch_aggressive);
  EXPECT_FALSE(rand.prefetch_friendly);

  const auto quiet = classify_benchmark("povray", p);
  EXPECT_FALSE(quiet.prefetch_aggressive);
  EXPECT_FALSE(quiet.llc_sensitive);
}

TEST(RunHarness, DetectorInheritsMachineFrequency) {
  RunParams p;
  p.machine.freq_ghz = 3.0;
  EXPECT_DOUBLE_EQ(p.detector().freq_ghz, 3.0);
}

}  // namespace
}  // namespace cmm::analysis
