#include <gtest/gtest.h>

#include "core/fdp.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::core {
namespace {

sim::MachineConfig cfg(unsigned cores) {
  auto c = sim::MachineConfig::scaled(16);
  c.num_cores = cores;
  return c;
}

TEST(Fdp, LadderShape) {
  const auto& ladder = FdpController::ladder();
  ASSERT_GE(ladder.size(), 3u);
  for (std::size_t i = 1; i < ladder.size(); ++i) EXPECT_GT(ladder[i], ladder[i - 1]);
}

TEST(Fdp, StartsMidLadder) {
  sim::MulticoreSystem sys(cfg(2));
  for (CoreId c = 0; c < 2; ++c)
    sys.set_op_source(c, workloads::make_op_source("povray", sys.config(), c, c));
  FdpController fdp(sys);
  EXPECT_EQ(fdp.degree(0), 4u);
  ASSERT_NE(sys.core(0).find_streamer(), nullptr);
  EXPECT_EQ(sys.core(0).find_streamer()->degree(), 4u);
}

TEST(Fdp, RampsUpAccurateStreams) {
  sim::MulticoreSystem sys(cfg(1));
  sys.set_op_source(0, workloads::make_op_source("libquantum", sys.config(), 0, 1));
  FdpController fdp(sys);
  fdp.run(2'000'000);
  // A perfect stream prefetches accurately: degree climbs to the top.
  EXPECT_EQ(fdp.degree(0), FdpController::ladder().back());
  EXPECT_GT(fdp.last_accuracy(0), 0.75);
}

TEST(Fdp, ThrottlesInaccuratePrefetching) {
  sim::MulticoreSystem sys(cfg(1));
  sys.set_op_source(0, workloads::make_op_source("rand_access", sys.config(), 0, 1));
  FdpController fdp(sys);
  fdp.run(2'000'000);
  // Burst-random prefetching is mostly useless: the controller settles
  // at the bottom of the ladder (throttling raises accuracy, so the
  // equilibrium sits at degree 1-2 rather than pinned at 1).
  EXPECT_LE(fdp.degree(0), 2u);
  EXPECT_LT(fdp.last_accuracy(0), 0.75);
}

TEST(Fdp, PerCoreIndependence) {
  sim::MulticoreSystem sys(cfg(2));
  sys.set_op_source(0, workloads::make_op_source("libquantum", sys.config(), 0, 1));
  sys.set_op_source(1, workloads::make_op_source("rand_access", sys.config(), 1, 2));
  FdpController fdp(sys);
  fdp.run(2'000'000);
  EXPECT_GT(fdp.degree(0), fdp.degree(1));
}

TEST(Fdp, QuietCoreHoldsPosition) {
  // A compute-only core produces no prefetch evidence at all: the
  // ladder position must not move.
  class ComputeOnly final : public sim::OpSource {
   public:
    sim::Op next() override { return sim::Op{8, false, {}}; }
    sim::CoreTraits traits() const override { return {0.5, 4.0}; }
    void reset() override {}
  };
  sim::MulticoreSystem sys(cfg(1));
  sys.set_op_source(0, std::make_shared<ComputeOnly>());
  FdpController fdp(sys);
  fdp.run(1'000'000);
  EXPECT_EQ(fdp.degree(0), 4u);
}

TEST(Fdp, ImprovesRandAccessAloneIpc) {
  // Accuracy-directed throttling removes useless prefetch waste, so a
  // solo Rand Access core should not be slower under FDP.
  double plain = 0.0;
  double with_fdp = 0.0;
  {
    sim::MulticoreSystem sys(cfg(1));
    sys.set_op_source(0, workloads::make_op_source("rand_access", sys.config(), 0, 1));
    sys.run(2'500'000);
    plain = sys.pmu().core(0).ipc();
  }
  {
    sim::MulticoreSystem sys(cfg(1));
    sys.set_op_source(0, workloads::make_op_source("rand_access", sys.config(), 0, 1));
    FdpController fdp(sys);
    fdp.run(2'500'000);
    with_fdp = sys.pmu().core(0).ipc();
  }
  EXPECT_GE(with_fdp, plain * 0.98);
}

}  // namespace
}  // namespace cmm::core
