#include <gtest/gtest.h>

#include "core/kmeans.hpp"

namespace cmm::core {
namespace {

TEST(KMeans, SeparatesObviousClusters) {
  const std::vector<double> values{1, 2, 1.5, 100, 101, 99, 1000, 1002};
  const KMeansResult r = kmeans_1d(values, 3);
  ASSERT_EQ(r.k, 3u);
  // Centroids relabelled ascending.
  EXPECT_LT(r.centroids[0], r.centroids[1]);
  EXPECT_LT(r.centroids[1], r.centroids[2]);
  // Same-magnitude values share a cluster.
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[0], r.assignment[2]);
  EXPECT_EQ(r.assignment[3], r.assignment[4]);
  EXPECT_EQ(r.assignment[3], r.assignment[5]);
  EXPECT_EQ(r.assignment[6], r.assignment[7]);
  EXPECT_NE(r.assignment[0], r.assignment[3]);
  EXPECT_NE(r.assignment[3], r.assignment[6]);
}

TEST(KMeans, KClampedToInputSize) {
  const std::vector<double> values{5.0, 6.0};
  const KMeansResult r = kmeans_1d(values, 8);
  EXPECT_LE(r.k, 2u);
}

TEST(KMeans, SingleCluster) {
  const std::vector<double> values{3, 4, 5};
  const KMeansResult r = kmeans_1d(values, 1);
  EXPECT_EQ(r.k, 1u);
  EXPECT_NEAR(r.centroids[0], 4.0, 1e-9);
  for (const unsigned a : r.assignment) EXPECT_EQ(a, 0u);
}

TEST(KMeans, EmptyInput) {
  const KMeansResult r = kmeans_1d({}, 3);
  EXPECT_EQ(r.k, 0u);
  EXPECT_TRUE(r.assignment.empty());
}

TEST(KMeans, IdenticalValues) {
  const std::vector<double> values(6, 42.0);
  const KMeansResult r = kmeans_1d(values, 3);
  // All in one effective cluster; assignment must still be valid.
  for (const unsigned a : r.assignment) EXPECT_LT(a, r.k);
}

TEST(KMeans, TiedValuesCollapseEmptyClusters) {
  // Heavily tied values seed duplicate quantile centroids; a cluster
  // that converges empty must be collapsed, not reported as a phantom
  // group (regression: k=3 over {5,5,5,5,5,9} kept an empty cluster
  // with a stale duplicate centroid, inflating the group count the
  // PT split is built from).
  const std::vector<double> values{5, 5, 5, 5, 5, 9};
  const KMeansResult r = kmeans_1d(values, 3);
  ASSERT_EQ(r.centroids.size(), r.k);
  // Every reported cluster is occupied...
  std::vector<unsigned> counts(r.k, 0);
  for (const unsigned a : r.assignment) {
    ASSERT_LT(a, r.k);
    ++counts[a];
  }
  for (const unsigned n : counts) EXPECT_GT(n, 0u);
  // ...centroids are strictly ascending (no duplicates survive)...
  for (unsigned c = 1; c < r.k; ++c) EXPECT_LT(r.centroids[c - 1], r.centroids[c]);
  // ...and the natural two-group structure is recovered.
  EXPECT_EQ(r.k, 2u);
  EXPECT_EQ(r.assignment[0], r.assignment[4]);
  EXPECT_NE(r.assignment[0], r.assignment[5]);
}

TEST(KMeans, AllTiedValuesCollapseToOneCluster) {
  const std::vector<double> values(6, 42.0);
  const KMeansResult r = kmeans_1d(values, 3);
  EXPECT_EQ(r.k, 1u);
  ASSERT_EQ(r.centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(r.centroids[0], 42.0);
}

TEST(KMeans, Deterministic) {
  const std::vector<double> values{9, 1, 7, 3, 8, 2};
  const auto a = kmeans_1d(values, 2);
  const auto b = kmeans_1d(values, 2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(DunnIndex, HigherForBetterSeparation) {
  const std::vector<double> tight{1, 1.1, 100, 100.1};
  const std::vector<double> loose{1, 40, 60, 100};
  const double d_tight = dunn_index(tight, kmeans_1d(tight, 2));
  const double d_loose = dunn_index(loose, kmeans_1d(loose, 2));
  EXPECT_GT(d_tight, d_loose);
}

TEST(DunnIndex, DegenerateCases) {
  const std::vector<double> values{1, 2, 3};
  EXPECT_DOUBLE_EQ(dunn_index(values, kmeans_1d(values, 1)), 0.0);  // k < 2
  KMeansResult mismatched;
  mismatched.k = 2;
  mismatched.assignment = {0};
  EXPECT_DOUBLE_EQ(dunn_index(values, mismatched), 0.0);
}

TEST(BestKMeansByDunn, PicksTheNaturalK) {
  // Three well-separated groups: k=3 should win over k=2 and k=4.
  const std::vector<double> values{1, 2, 50, 51, 200, 201};
  const KMeansResult r = best_kmeans_by_dunn(values, 2, 4);
  EXPECT_EQ(r.k, 3u);
}

class KMeansInvariants : public ::testing::TestWithParam<unsigned> {};

TEST_P(KMeansInvariants, AssignmentsNearestCentroid) {
  const unsigned k = GetParam();
  const std::vector<double> values{0.5, 1.2, 3.3, 9.7, 10.1, 20.0, 21.5, 22.0};
  const KMeansResult r = kmeans_1d(values, k);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const double own = std::abs(values[i] - r.centroids[r.assignment[i]]);
    for (unsigned c = 0; c < r.k; ++c) {
      EXPECT_LE(own, std::abs(values[i] - r.centroids[c]) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, KMeansInvariants, ::testing::Values(1u, 2u, 3u, 4u, 8u));

}  // namespace
}  // namespace cmm::core
