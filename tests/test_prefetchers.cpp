#include <gtest/gtest.h>

#include <algorithm>

#include "sim/prefetcher.hpp"

namespace cmm::sim {
namespace {

std::vector<Addr> observe(Prefetcher& pf, Addr line, IpId ip, bool miss) {
  std::vector<Addr> out;
  pf.observe({line, ip, miss}, out);
  return out;
}

// ---------------------------------------------------------- next-line

TEST(NextLine, TriggersOnAscendingPair) {
  NextLinePrefetcher pf;
  EXPECT_TRUE(observe(pf, 100, 1, true).empty());  // first touch: no history
  const auto out = observe(pf, 101, 1, false);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 102u);
}

TEST(NextLine, IgnoresNonAdjacent) {
  NextLinePrefetcher pf;
  observe(pf, 100, 1, true);
  EXPECT_TRUE(observe(pf, 105, 1, true).empty());
  EXPECT_TRUE(observe(pf, 103, 1, true).empty());  // descending
}

TEST(NextLine, ResetClearsHistory) {
  NextLinePrefetcher pf;
  observe(pf, 100, 1, true);
  pf.reset();
  EXPECT_TRUE(observe(pf, 101, 1, true).empty());
}

// ---------------------------------------------------------- ip-stride

TEST(IpStride, DetectsStrideAfterConfidence) {
  IpStridePrefetcher pf;
  EXPECT_TRUE(observe(pf, 100, 7, true).empty());  // allocate entry
  EXPECT_TRUE(observe(pf, 104, 7, true).empty());  // stride 4, confidence 1
  const auto out = observe(pf, 108, 7, true);      // confidence 2 -> fire
  ASSERT_EQ(out.size(), 2u);  // degree 2
  EXPECT_EQ(out[0], 112u);
  EXPECT_EQ(out[1], 116u);
}

TEST(IpStride, NegativeStride) {
  IpStridePrefetcher pf;
  observe(pf, 100, 3, true);
  observe(pf, 96, 3, true);
  const auto out = observe(pf, 92, 3, true);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 88u);
  EXPECT_EQ(out[1], 84u);
}

TEST(IpStride, StrideChangeResetsConfidence) {
  IpStridePrefetcher pf;
  observe(pf, 100, 1, true);
  observe(pf, 104, 1, true);
  observe(pf, 108, 1, true);                       // confident
  EXPECT_TRUE(observe(pf, 200, 1, true).empty());  // stride broke (conf 1)
  EXPECT_FALSE(observe(pf, 292, 1, true).empty()); // new stride confirmed
}

TEST(IpStride, PerIpIsolation) {
  IpStridePrefetcher pf;
  // Interleaved IPs with different strides both train.
  observe(pf, 100, 1, true);
  observe(pf, 500, 2, true);
  observe(pf, 104, 1, true);
  observe(pf, 508, 2, true);
  const auto a = observe(pf, 108, 1, true);
  const auto b = observe(pf, 516, 2, true);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(a[0], 112u);
  EXPECT_EQ(b[0], 524u);
}

TEST(IpStride, SameLineNoSignal) {
  IpStridePrefetcher pf;
  observe(pf, 100, 1, true);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(observe(pf, 100, 1, false).empty());
}

// ----------------------------------------------------------- streamer

TEST(Streamer, FiresAfterConfidenceThreshold) {
  StreamerPrefetcher pf;  // threshold 3, degree 10
  EXPECT_TRUE(observe(pf, 1000, 1, true).empty());  // first touch
  EXPECT_TRUE(observe(pf, 1001, 1, true).empty());  // conf 1
  EXPECT_TRUE(observe(pf, 1002, 1, true).empty());  // conf 2
  const auto out = observe(pf, 1003, 1, true);      // conf 3 -> fire
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), 1004u);
}

TEST(Streamer, AdvancesWithoutRerequest) {
  StreamerPrefetcher::Config cfg;
  cfg.degree = 4;
  StreamerPrefetcher pf(cfg);
  for (Addr line = 1000; line < 1004; ++line) observe(pf, line, 1, true);
  const auto first = observe(pf, 1004, 1, true);
  const auto second = observe(pf, 1005, 1, true);
  // No overlap between successive emissions: covered offsets advance.
  for (const Addr a : second) {
    EXPECT_EQ(std::count(first.begin(), first.end(), a), 0) << "re-requested line " << a;
  }
}

TEST(Streamer, StopsAtPageBoundary) {
  StreamerPrefetcher pf;
  // Train near the end of a 64-line page.
  const Addr page_base = 64 * 13;
  for (Addr off = 58; off <= 61; ++off) observe(pf, page_base + off, 1, true);
  const auto out = observe(pf, page_base + 62, 1, true);
  for (const Addr a : out) {
    EXPECT_LT(a, page_base + 64u) << "crossed the 4 KB page";
  }
}

TEST(Streamer, BackwardDirection) {
  StreamerPrefetcher pf;
  observe(pf, 64 * 5 + 50, 1, true);  // first touch
  observe(pf, 64 * 5 + 49, 1, true);  // conf 1, dir -1
  observe(pf, 64 * 5 + 48, 1, true);  // conf 2
  const auto out = observe(pf, 64 * 5 + 47, 1, true);  // conf 3 -> fire
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), 64u * 5 + 46);
  EXPECT_EQ(out.back(), 64u * 5 + 47 - 10);  // degree 10, descending
}

TEST(Streamer, RandomPerPageTouchesDoNotFire) {
  StreamerPrefetcher pf;
  // One touch per page never builds direction confidence.
  std::vector<Addr> out;
  for (Addr page = 0; page < 32; ++page) pf.observe({page * 64 + (page % 7), 1, true}, out);
  EXPECT_TRUE(out.empty());
}

TEST(Streamer, TrackerEvictionLru) {
  StreamerPrefetcher::Config cfg;
  cfg.trackers = 2;
  StreamerPrefetcher pf(cfg);
  // Train page A to confidence, then touch two other pages to evict it.
  for (Addr off = 0; off < 4; ++off) observe(pf, off, 1, true);  // page 0 confident
  observe(pf, 64 * 1, 1, true);
  observe(pf, 64 * 2, 1, true);  // page 0's tracker evicted
  // Returning to page 0 starts from scratch: no immediate fire.
  EXPECT_TRUE(observe(pf, 10, 1, true).empty());
}

// ----------------------------------------------------------- adjacent

TEST(Adjacent, FetchesBuddyOnMiss) {
  AdjacentLinePrefetcher pf;
  auto out = observe(pf, 100, 1, true);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 101u);  // 100 is even: buddy above
  out = observe(pf, 101, 1, true);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 100u);  // 101 is odd: buddy below
}

TEST(Adjacent, SilentOnHit) {
  AdjacentLinePrefetcher pf;
  EXPECT_TRUE(observe(pf, 100, 1, false).empty());
}

// ------------------------------------------------------------- common

TEST(Prefetchers, KindNamesAndCounters) {
  NextLinePrefetcher nl;
  IpStridePrefetcher ip;
  StreamerPrefetcher st;
  AdjacentLinePrefetcher adj;
  EXPECT_EQ(to_string(nl.kind()), "dcu_next_line");
  EXPECT_EQ(to_string(ip.kind()), "dcu_ip_stride");
  EXPECT_EQ(to_string(st.kind()), "l2_streamer");
  EXPECT_EQ(to_string(adj.kind()), "l2_adjacent");

  observe(adj, 2, 0, true);
  EXPECT_EQ(adj.issued(), 1u);
}

}  // namespace
}  // namespace cmm::sim
