#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workloads/workload_mix.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::workloads {
namespace {

bool in_class(const std::string& name, const std::vector<std::string>& pool) {
  return std::find(pool.begin(), pool.end(), name) != pool.end();
}

unsigned count_in_class(const WorkloadMix& mix, const std::vector<std::string>& pool) {
  unsigned n = 0;
  for (const auto& b : mix.benchmarks) n += in_class(b, pool) ? 1 : 0;
  return n;
}

class MixComposition : public ::testing::TestWithParam<MixCategory> {};

TEST_P(MixComposition, EightBenchmarksPerMix) {
  const auto mixes = make_mixes(GetParam(), 10, 8, 42);
  ASSERT_EQ(mixes.size(), 10u);
  for (const auto& mix : mixes) {
    EXPECT_EQ(mix.benchmarks.size(), 8u);
    EXPECT_EQ(mix.category, GetParam());
    for (const auto& b : mix.benchmarks) EXPECT_NO_THROW(spec_by_name(b));
  }
}

TEST_P(MixComposition, CategoryClassCountsMatchPaper) {
  const auto friendly = prefetch_friendly_names();
  const auto unfriendly = prefetch_unfriendly_names();
  const auto sensitive = llc_sensitive_names();
  for (const auto& mix : make_mixes(GetParam(), 10, 8, 7)) {
    const unsigned f = count_in_class(mix, friendly);
    const unsigned u = count_in_class(mix, unfriendly);
    const unsigned s = count_in_class(mix, sensitive);
    switch (GetParam()) {
      case MixCategory::PrefFri:
        EXPECT_EQ(f, 4u);
        EXPECT_EQ(u, 0u);
        EXPECT_GE(s, 2u);
        break;
      case MixCategory::PrefAgg:
        EXPECT_EQ(f, 2u);
        EXPECT_EQ(u, 2u);
        EXPECT_GE(s, 2u);
        break;
      case MixCategory::PrefUnfri:
        EXPECT_EQ(f, 0u);
        EXPECT_EQ(u, 4u);
        EXPECT_GE(s, 2u);
        break;
      case MixCategory::PrefNoAgg:
        EXPECT_EQ(f, 0u);
        EXPECT_EQ(u, 0u);
        EXPECT_GE(s, 2u);  // at least two LLC-sensitive in every mix
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCategories, MixComposition,
                         ::testing::Values(MixCategory::PrefFri, MixCategory::PrefAgg,
                                           MixCategory::PrefUnfri, MixCategory::PrefNoAgg));

TEST(WorkloadMix, PaperOrderAndCount) {
  const auto all = paper_workloads(8, 42, 10);
  ASSERT_EQ(all.size(), 40u);
  for (unsigned i = 0; i < 10; ++i) EXPECT_EQ(all[i].category, MixCategory::PrefFri);
  for (unsigned i = 10; i < 20; ++i) EXPECT_EQ(all[i].category, MixCategory::PrefAgg);
  for (unsigned i = 20; i < 30; ++i) EXPECT_EQ(all[i].category, MixCategory::PrefUnfri);
  for (unsigned i = 30; i < 40; ++i) EXPECT_EQ(all[i].category, MixCategory::PrefNoAgg);
}

TEST(WorkloadMix, DeterministicPerSeedDistinctAcrossSeeds) {
  const auto a = make_mixes(MixCategory::PrefAgg, 5, 8, 1);
  const auto b = make_mixes(MixCategory::PrefAgg, 5, 8, 1);
  const auto c = make_mixes(MixCategory::PrefAgg, 5, 8, 2);
  for (unsigned i = 0; i < 5; ++i) EXPECT_EQ(a[i].benchmarks, b[i].benchmarks);
  bool any_diff = false;
  for (unsigned i = 0; i < 5; ++i) any_diff |= (a[i].benchmarks != c[i].benchmarks);
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadMix, UniqueNames) {
  const auto all = paper_workloads(8, 42, 10);
  std::set<std::string> names;
  for (const auto& m : all) EXPECT_TRUE(names.insert(m.name).second);
}

TEST(WorkloadMix, AttachRejectsWrongSize) {
  sim::MulticoreSystem sys(sim::MachineConfig::scaled(16));
  WorkloadMix mix;
  mix.benchmarks = {"povray"};  // 1 != 8
  EXPECT_THROW(attach_mix(sys, mix, 42), std::invalid_argument);
}

TEST(WorkloadMix, AttachRunsAllCores) {
  sim::MulticoreSystem sys(sim::MachineConfig::scaled(16));
  const auto mixes = make_mixes(MixCategory::PrefNoAgg, 1, 8, 3);
  attach_mix(sys, mixes.front(), 42);
  sys.run(10'000);
  for (CoreId c = 0; c < 8; ++c) EXPECT_GT(sys.pmu().core(c).instructions, 0u);
}

TEST(WorkloadMix, ScalesToOtherCoreCounts) {
  for (const unsigned cores : {2u, 4u, 16u}) {
    const auto mixes = make_mixes(MixCategory::PrefAgg, 2, cores, 9);
    for (const auto& m : mixes) EXPECT_EQ(m.benchmarks.size(), cores);
  }
}

}  // namespace
}  // namespace cmm::workloads
