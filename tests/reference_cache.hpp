// Retained reference implementation of SetAssocCache: the original
// array-of-structs version, kept verbatim as the behavioural oracle for
// the SoA rewrite. The differential test (test_cache_soa.cpp) drives
// both implementations with identical randomized op streams and asserts
// identical LookupResult/FillResult/stats at every step. Deliberately
// slow and simple — do not "optimize" this file; its value is that it
// is obviously the old semantics.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/cache.hpp"

namespace cmm::sim::testref {

class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheGeometry& geom)
      : geom_(geom),
        num_sets_(static_cast<std::uint32_t>(geom.num_sets())),
        ways_(geom.ways),
        lines_(static_cast<std::size_t>(num_sets_) * ways_) {}

  LookupResult access(Addr line_addr, AccessType type, Cycle now) {
    const bool demand = is_demand(type);
    if (demand) {
      ++stats_.demand_accesses;
    } else {
      ++stats_.prefetch_accesses;
    }

    Line* line = find(line_addr);
    if (line == nullptr) return LookupResult{};

    LookupResult r;
    r.hit = true;
    r.ready_at = line->ready_at;
    if (demand) {
      ++stats_.demand_hits;
      if (line->prefetched && !line->pf_used) {
        line->pf_used = true;
        ++stats_.prefetched_lines_used;
        r.first_use_of_prefetch = true;
      }
      line->ready_at = now;
      if (type == AccessType::DemandStore) line->dirty = true;
    } else {
      ++stats_.prefetch_hits;
      if (line->prefetched && !line->pf_used) {
        line->pf_used = true;
        ++stats_.prefetched_lines_used;
        r.first_use_of_prefetch = true;
      }
      return r;  // prefetch hits do not promote replacement state
    }

    touch(*line);
    return r;
  }

  bool contains(Addr line_addr) const { return find(line_addr) != nullptr; }

  FillResult fill(Addr line_addr, AccessType type, Cycle /*now*/, Cycle ready_at,
                  WayMask alloc_mask, CoreId owner = kInvalidCore) {
    FillResult result;
    if (alloc_mask == 0) return result;

    if (Line* existing = find(line_addr); existing != nullptr) {
      if (existing->ready_at > ready_at) existing->ready_at = ready_at;
      if (type == AccessType::DemandStore) existing->dirty = true;
      return result;
    }

    const std::uint32_t set = set_index(line_addr);
    Line* base = &lines_[static_cast<std::size_t>(set) * ways_];

    std::uint32_t victim = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (((alloc_mask >> w) & 1U) == 0) continue;
      if (!base[w].valid) {
        victim = w;
        break;
      }
    }
    if (victim == ways_) {
      std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
      for (std::uint32_t w = 0; w < ways_; ++w) {
        if (((alloc_mask >> w) & 1U) == 0) continue;
        if (base[w].last_used < oldest) {
          oldest = base[w].last_used;
          victim = w;
        }
      }
      if (victim == ways_) return result;  // mask beyond associativity
      Line& v = base[victim];
      result.evicted_valid = true;
      result.evicted_line = v.tag;
      result.evicted_owner = v.owner;
      result.evicted_dirty = v.dirty;
      ++stats_.evictions;
      if (v.prefetched && !v.pf_used) {
        result.evicted_was_prefetched_unused = true;
        ++stats_.prefetched_lines_evicted_unused;
      }
    }

    Line& line = lines_[static_cast<std::size_t>(set) * ways_ + victim];
    line.valid = true;
    line.tag = line_addr;
    line.ready_at = ready_at;
    line.owner = owner;
    line.prefetched = (type == AccessType::Prefetch);
    line.pf_used = false;
    line.dirty = (type == AccessType::DemandStore);
    touch(line);
    return result;
  }

  bool invalidate(Addr line_addr) {
    Line* line = find(line_addr);
    if (line == nullptr) return false;
    if (line->prefetched && !line->pf_used) ++stats_.prefetched_lines_evicted_unused;
    line->valid = false;
    return true;
  }

  void flush() {
    for (auto& line : lines_) line.valid = false;
  }

  std::vector<std::uint64_t> occupancy_by_owner(unsigned num_cores) const {
    std::vector<std::uint64_t> counts(num_cores, 0);
    for (const auto& line : lines_) {
      if (line.valid && line.owner < num_cores) ++counts[line.owner];
    }
    return counts;
  }

  unsigned set_occupancy_in_mask(std::uint32_t set, WayMask mask) const {
    unsigned n = 0;
    const Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (((mask >> w) & 1U) != 0 && base[w].valid) ++n;
    }
    return n;
  }

  const CacheStats& stats() const noexcept { return stats_; }
  std::uint32_t num_sets() const noexcept { return num_sets_; }

  std::uint32_t set_index(Addr line_addr) const noexcept {
    return static_cast<std::uint32_t>(line_addr & (num_sets_ - 1));
  }

 private:
  struct Line {
    Addr tag = 0;
    Cycle ready_at = 0;
    std::uint64_t last_used = 0;
    CoreId owner = kInvalidCore;
    bool valid = false;
    bool prefetched = false;
    bool pf_used = false;
    bool dirty = false;
  };

  Line* find(Addr line_addr) {
    const std::uint32_t set = set_index(line_addr);
    Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].tag == line_addr) return &base[w];
    }
    return nullptr;
  }
  const Line* find(Addr line_addr) const {
    return const_cast<ReferenceCache*>(this)->find(line_addr);
  }
  void touch(Line& line) noexcept { line.last_used = ++tick_; }

  CacheGeometry geom_;
  std::uint32_t num_sets_;
  std::uint32_t ways_;
  std::vector<Line> lines_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace cmm::sim::testref
