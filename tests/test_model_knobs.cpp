// Tests for the model-fidelity/ablation knobs: writeback traffic,
// inclusive-LLC back-invalidation, instant prefetch fills, and the
// bandwidth-queueing switch.
#include <gtest/gtest.h>

#include <memory>

#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::sim {
namespace {

MachineConfig base_cfg(unsigned cores = 1) {
  MachineConfig c = MachineConfig::scaled(16);
  c.num_cores = cores;
  return c;
}

/// Stream of stores over a large region (forces dirty evictions).
class StoreStream final : public OpSource {
 public:
  Op next() override {
    Op op;
    op.instructions = 2;
    op.has_mem = true;
    op.mem = MemRef{pos_, 1, true};
    pos_ += 64;
    return op;
  }
  CoreTraits traits() const override { return {0.5, 4.0}; }
  void reset() override { pos_ = 0x100000; }

 private:
  Addr pos_ = 0x100000;
};

TEST(ModelKnobs, WritebacksOffByDefault) {
  MulticoreSystem sys(base_cfg());
  sys.set_op_source(0, std::make_shared<StoreStream>());
  sys.run(500'000);
  EXPECT_EQ(sys.memory().total_traffic().writeback_bytes, 0u);
  EXPECT_EQ(sys.pmu().core(0).dram_writeback_bytes, 0u);
}

TEST(ModelKnobs, DirtyEvictionsProduceWritebacks) {
  MachineConfig cfg = base_cfg();
  cfg.model_writebacks = true;
  MulticoreSystem sys(cfg);
  sys.set_op_source(0, std::make_shared<StoreStream>());
  sys.run(500'000);
  // A store stream larger than the LLC must write back roughly one
  // line per line fetched.
  const auto& traffic = sys.memory().total_traffic();
  EXPECT_GT(traffic.writeback_bytes, 0u);
  EXPECT_GT(traffic.writeback_bytes * 2, traffic.demand_bytes / 2);
  EXPECT_EQ(sys.pmu().core(0).dram_writeback_bytes, traffic.writeback_bytes);
}

TEST(ModelKnobs, CleanWorkloadsProduceNoWritebacks) {
  MachineConfig cfg = base_cfg();
  cfg.model_writebacks = true;
  MulticoreSystem sys(cfg);
  // libquantum has store_fraction 0.05 -> few writebacks; use a pure
  // load source instead for the zero case.
  class LoadStream final : public OpSource {
   public:
    Op next() override {
      Op op;
      op.instructions = 2;
      op.has_mem = true;
      op.mem = MemRef{pos_, 1, false};
      pos_ += 64;
      return op;
    }
    CoreTraits traits() const override { return {0.5, 4.0}; }
    void reset() override {}

   private:
    Addr pos_ = 0x100000;
  };
  sys.set_op_source(0, std::make_shared<LoadStream>());
  sys.run(300'000);
  EXPECT_EQ(sys.memory().total_traffic().writeback_bytes, 0u);
}

/// Touches one line once, then runs pure compute forever.
class TouchOnceSource final : public OpSource {
 public:
  explicit TouchOnceSource(Addr addr) : addr_(addr) {}
  Op next() override {
    Op op;
    op.instructions = 4;
    if (!touched_) {
      op.has_mem = true;
      op.mem = MemRef{addr_, 1, false};
      touched_ = true;
    }
    return op;
  }
  CoreTraits traits() const override { return {0.5, 4.0}; }
  void reset() override { touched_ = false; }

 private:
  Addr addr_;
  bool touched_ = false;
};

TEST(ModelKnobs, InclusiveLlcBackInvalidates) {
  for (const bool inclusive : {false, true}) {
    MachineConfig cfg = base_cfg(2);
    cfg.inclusive_llc = inclusive;
    MulticoreSystem sys(cfg);
    const Addr probe_addr = 0x12345640;
    sys.set_op_source(0, std::make_shared<TouchOnceSource>(probe_addr));
    sys.set_op_source(1, workloads::make_op_source("libquantum", cfg, 1, 2));
    sys.run(20'000);
    const Addr probe_line = probe_addr >> 6;
    ASSERT_TRUE(sys.core(0).l1().contains(probe_line));
    ASSERT_TRUE(sys.llc().contains(probe_line));
    // Let the stream flush the whole LLC several times over.
    sys.run(4'000'000);
    EXPECT_FALSE(sys.llc().contains(probe_line));
    if (inclusive) {
      // Back-invalidation removed the private copies too.
      EXPECT_FALSE(sys.core(0).l1().contains(probe_line));
      EXPECT_FALSE(sys.core(0).l2().contains(probe_line));
    } else {
      // Non-inclusive simplification: private copies survive.
      EXPECT_TRUE(sys.core(0).l1().contains(probe_line));
    }
  }
}

TEST(ModelKnobs, InstantPrefetchFillsSpeedUpStreams) {
  double normal = 0.0;
  double instant = 0.0;
  for (const bool knob : {false, true}) {
    MachineConfig cfg = base_cfg();
    cfg.instant_prefetch_fills = knob;
    MulticoreSystem sys(cfg);
    sys.set_op_source(0, workloads::make_op_source("libquantum", cfg, 0, 1));
    sys.run(1'000'000);
    (knob ? instant : normal) = sys.pmu().core(0).ipc();
  }
  // Perfect timeliness can only help (no residual waits).
  EXPECT_GE(instant, normal);
}

TEST(ModelKnobs, QueueingOffRemovesBandwidthContention) {
  // Eight streams saturate DRAM: with queueing the per-core IPC drops
  // vs solo; without queueing it barely moves.
  auto stream_ipc = [](bool queueing, unsigned cores) {
    MachineConfig cfg = base_cfg(cores);
    cfg.bandwidth_queueing = queueing;
    MulticoreSystem sys(cfg);
    for (CoreId c = 0; c < cores; ++c)
      sys.set_op_source(c, workloads::make_op_source("libquantum", cfg, c, c + 1));
    sys.run(1'000'000);
    return sys.pmu().core(0).ipc();
  };
  const double solo = stream_ipc(true, 1);
  const double contended = stream_ipc(true, 8);
  const double uncontended = stream_ipc(false, 8);
  EXPECT_LT(contended, solo * 0.9);
  EXPECT_GT(uncontended, contended * 1.1);
}

}  // namespace
}  // namespace cmm::sim
