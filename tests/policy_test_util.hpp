// Shared helpers for the policy state-machine tests: hand-crafted PMU
// deltas that the detector classifies predictably, and a driver that
// walks a policy through one profiling round against scripted per-core
// IPCs.
#pragma once

#include <functional>
#include <vector>

#include "core/policy.hpp"

namespace cmm::core::test {

/// Counters of a clearly prefetch-aggressive core (PGA ~10, PMR ~0.95,
/// PTR ~95 M/s at 2.1 GHz over a 1 ms interval).
inline sim::PmuCounters aggressive_counters(double ipc) {
  sim::PmuCounters c;
  c.cycles = 2'100'000;
  c.instructions = static_cast<std::uint64_t>(ipc * static_cast<double>(c.cycles));
  c.l2_pref_req = 100'000;
  c.l2_pref_miss = 95'000;
  c.l2_dm_req = 10'000;
  c.l2_dm_miss = 8'000;
  c.l3_load_miss = 5'000;
  c.stalls_l2_pending = 500'000;
  c.dram_demand_bytes = 5'000 * 64;
  c.dram_prefetch_bytes = 90'000 * 64;
  return c;
}

/// Counters of a quiet, non-aggressive core.
inline sim::PmuCounters quiet_counters(double ipc) {
  sim::PmuCounters c;
  c.cycles = 2'100'000;
  c.instructions = static_cast<std::uint64_t>(ipc * static_cast<double>(c.cycles));
  c.l2_pref_req = 50;
  c.l2_pref_miss = 10;
  c.l2_dm_req = 2'000;
  c.l2_dm_miss = 500;
  c.l3_load_miss = 100;
  c.stalls_l2_pending = 50'000;
  c.dram_demand_bytes = 100 * 64;
  return c;
}

/// Walks one full profiling round. `ipc_for` maps (core, config) to the
/// IPC the "machine" reports for that sampling interval. Returns the
/// policy's final configuration and the number of samples taken.
struct ProfilingOutcome {
  ResourceConfig final;
  std::vector<SampleStats> samples;
};

inline ProfilingOutcome run_profiling(
    Policy& policy, unsigned cores,
    const std::function<double(CoreId, const ResourceConfig&)>& ipc_for,
    const std::function<sim::PmuCounters(CoreId, const ResourceConfig&)>& counters_for,
    unsigned max_samples = 64) {
  ProfilingOutcome outcome;
  unsigned taken = 0;
  while (taken < max_samples) {
    const auto request = policy.next_sample();
    if (!request.has_value()) break;
    SampleStats stats;
    stats.config = *request;
    stats.per_core.reserve(cores);
    for (CoreId c = 0; c < cores; ++c) {
      sim::PmuCounters ctr = counters_for(c, *request);
      ctr.instructions = static_cast<std::uint64_t>(ipc_for(c, *request) *
                                                    static_cast<double>(ctr.cycles));
      stats.per_core.push_back(ctr);
    }
    policy.report_sample(stats);
    outcome.samples.push_back(std::move(stats));
    ++taken;
  }
  outcome.final = policy.final_config();
  return outcome;
}

/// Standard scripted machine: cores 0..n_agg-1 aggressive, the rest
/// quiet. Aggressive core IPC depends on its own prefetch bit:
/// `ipc_pf_on` / `ipc_pf_off` (per-core overridable via lambdas above).
inline DetectorConfig test_detector() {
  DetectorConfig d;
  d.freq_ghz = 2.1;
  return d;
}

}  // namespace cmm::core::test
