// Detector-stress suite (ctest label: detector-stress).
//
// Runs the adversarial scenario sweep — the four fig05 workload
// categories under every prefetcher-engine profile, homogeneous and
// heterogeneous — and pins the detector's misclassification matrix as
// a golden artifact. The regenerated matrix is also written next to
// the test binary (detector_stress_matrix.json) so CI can upload and
// diff it against the checked-in baseline.
//
// Regenerate after an intentional change with:
//   CMM_UPDATE_GOLDEN=1 ./test_detector_stress
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/detector.hpp"
#include "core/detector_eval.hpp"
#include "sim/machine_config.hpp"

namespace cmm::core {
namespace {

sim::MachineConfig stress_machine() { return sim::MachineConfig::scaled(16); }

DetectorConfig stress_detector() {
  DetectorConfig det;
  det.freq_ghz = stress_machine().freq_ghz;
  return det;
}

TEST(DetectorStress, MisclassificationMatrixMatchesGolden) {
  const auto outcomes = run_stress_suite(stress_machine(), stress_detector(), /*seed=*/42,
                                         /*warmup_cycles=*/1'000'000,
                                         /*measure_cycles=*/200'000);
  // 4 categories x (4 homogeneous profiles + hetero).
  ASSERT_EQ(outcomes.size(), 20u);
  const std::string matrix = misclassification_json(outcomes);

  // Always emit the artifact for CI upload/diff, pass or fail.
  {
    std::ofstream artifact("detector_stress_matrix.json", std::ios::trunc);
    ASSERT_TRUE(artifact.good());
    artifact << matrix;
  }

  const std::string golden_path =
      std::string(CMM_TEST_GOLDEN_DIR) + "/detector_stress_matrix.json";
  if (std::getenv("CMM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << matrix;
    GTEST_SKIP() << "golden regenerated at " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path
                         << " (regenerate with CMM_UPDATE_GOLDEN=1)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(matrix, expected.str())
      << "misclassification matrix drifted; if intentional, regenerate with "
         "CMM_UPDATE_GOLDEN=1 and review the diff";
}

// Sanity floor independent of the golden pin: under the Intel profile
// the detector must be doing real work — some true positives across
// the sweep and no labelled-aggressive core missed in the PrefAgg /
// PrefUnfri categories' intel scenarios. (The zoo profiles are
// *allowed* to misclassify; that is what the matrix tracks.)
TEST(DetectorStress, IntelProfileDetectsAggressiveCores) {
  const auto outcomes = run_stress_suite(stress_machine(), stress_detector(), /*seed=*/42,
                                         /*warmup_cycles=*/1'000'000,
                                         /*measure_cycles=*/200'000);
  unsigned intel_tp = 0;
  for (const auto& o : outcomes) {
    if (o.profile != "intel") continue;
    intel_tp += o.tp;
    if (o.category == "pref_agg" || o.category == "pref_unfri") {
      EXPECT_EQ(o.fn, 0u) << o.scenario
                          << ": intel profile missed a labelled-aggressive core";
      EXPECT_EQ(o.fp, 0u) << o.scenario << ": intel profile flagged a non-aggressive core";
    }
  }
  EXPECT_GT(intel_tp, 0u);
}

// ---- Verdict stability under core permutation (property test) ----
//
// detect_aggressive() compares each core against the all-core mean, so
// a core's verdict must depend only on the multiset of metrics, never
// on the order cores are presented in.

CoreMetrics synth_metrics(Rng& rng) {
  CoreMetrics m;
  // Ranges straddle every detector threshold so all three pipeline
  // stages flip across samples.
  m.pga = rng.next_double() * 4.0;               // threshold region ~0.4*mean, floor 1.0
  m.l2_pmr = rng.next_double();                  // threshold 0.7
  m.l2_ptr = rng.next_double() * 60e6;           // threshold 20e6
  m.l2_llc_traffic = rng.next_double() * 1e4;
  m.l2_pref_miss_frac = rng.next_double();
  m.l2_ppm = rng.next_double() * 8.0;
  m.llc_pt = rng.next_double() * 10e9;
  m.ipc = rng.next_double() * 2.0;
  m.stalls_l2_pending = rng.next_double() * 1e5;
  return m;
}

TEST(DetectorStress, VerdictsInvariantUnderCorePermutation) {
  const DetectorConfig det = stress_detector();
  Rng rng(/*seed=*/99);
  for (unsigned trial = 0; trial < 200; ++trial) {
    const unsigned n = 2 + static_cast<unsigned>(rng.next_below(7));
    std::vector<CoreMetrics> metrics;
    for (unsigned i = 0; i < n; ++i) metrics.push_back(synth_metrics(rng));

    const auto base = detect_aggressive(metrics, det);
    std::vector<bool> base_flag(n, false);
    for (const CoreId c : base) base_flag[c] = true;

    // Fisher-Yates with the deterministic Rng; perm[j] = original index
    // now sitting at position j.
    std::vector<unsigned> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (unsigned i = n - 1; i > 0; --i) {
      const auto j = static_cast<unsigned>(rng.next_below(i + 1));
      std::swap(perm[i], perm[j]);
    }
    std::vector<CoreMetrics> shuffled;
    for (unsigned j = 0; j < n; ++j) shuffled.push_back(metrics[perm[j]]);

    const auto permuted = detect_aggressive(shuffled, det);
    std::vector<bool> perm_flag(n, false);
    for (const CoreId c : permuted) perm_flag[c] = true;

    for (unsigned j = 0; j < n; ++j) {
      EXPECT_EQ(perm_flag[j], base_flag[perm[j]])
          << "trial " << trial << ": verdict for original core " << perm[j]
          << " changed when presented at position " << j;
    }
  }
}

}  // namespace
}  // namespace cmm::core
