// SoloRunCache: value-correct hits, collision-free keys across every
// run_solo input, and exactly-once computation under concurrent lookups.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/solo_cache.hpp"
#include "common/parallel.hpp"

namespace cmm::analysis {
namespace {

RunParams fast_params() {
  RunParams p;
  p.machine = sim::MachineConfig::scaled(32);
  p.warmup_cycles = 100'000;
  p.run_cycles = 300'000;
  return p;
}

TEST(SoloRunCache, HitReturnsSameStatsValue) {
  SoloRunCache cache;
  const auto params = fast_params();
  const auto first = cache.get_or_run("libquantum", params, true);
  const auto second = cache.get_or_run("libquantum", params, true);
  EXPECT_EQ(first.get(), second.get());  // a hit aliases the same entry
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(*first, run_solo("libquantum", params, true));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.computed(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SoloRunCache, DistinctTuplesNeverCollide) {
  SoloRunCache cache;
  const auto params = fast_params();
  RunParams other_seed = params;
  other_seed.seed = 43;

  cache.get_or_run("libquantum", params, true, 0);
  cache.get_or_run("soplex", params, true, 0);      // different benchmark
  cache.get_or_run("libquantum", params, false, 0);  // different prefetch gate
  cache.get_or_run("libquantum", params, true, 2);   // different way limit
  cache.get_or_run("libquantum", other_seed, true, 0);  // different seed
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.computed(), 5u);
  EXPECT_EQ(cache.hits(), 0u);

  // The gated runs really are different results, not aliased entries.
  EXPECT_NE(*cache.get_or_run("libquantum", params, true, 0),
            *cache.get_or_run("libquantum", params, false, 0));
}

TEST(SoloRunCache, KeyCoversMachineConfigAndCycles) {
  const auto params = fast_params();
  RunParams llc = params;
  llc.machine.llc.size_bytes *= 2;
  RunParams freq = params;
  freq.machine.freq_ghz = 3.0;
  RunParams cycles = params;
  cycles.run_cycles += 1;
  RunParams knob = params;
  knob.machine.bandwidth_queueing = false;

  const auto base = SoloRunCache::key_of("lbm", params, true, 0);
  EXPECT_NE(base, SoloRunCache::key_of("lbm", llc, true, 0));
  EXPECT_NE(base, SoloRunCache::key_of("lbm", freq, true, 0));
  EXPECT_NE(base, SoloRunCache::key_of("lbm", cycles, true, 0));
  EXPECT_NE(base, SoloRunCache::key_of("lbm", knob, true, 0));
  EXPECT_EQ(base, SoloRunCache::key_of("lbm", fast_params(), true, 0));
}

// Domain topology is part of the machine: a solo on the 8-core/1-LLC
// box and a solo on a fleet machine slice must never share an entry,
// and a fleet machine with a different domain count is a different key
// even at the same total core count.
TEST(SoloRunCache, KeyCoversDomainTopology) {
  const auto params = fast_params();
  RunParams fleet2 = params;
  fleet2.machine = sim::MachineConfig::fleet(2, params.machine.num_cores / 2, 32);
  RunParams fleet4 = params;
  fleet4.machine = sim::MachineConfig::fleet(4, params.machine.num_cores / 4, 32);

  ASSERT_EQ(fleet2.machine.num_cores, params.machine.num_cores);
  const auto base = SoloRunCache::key_of("lbm", params, true, 0);
  EXPECT_NE(base, SoloRunCache::key_of("lbm", fleet2, true, 0));
  EXPECT_NE(SoloRunCache::key_of("lbm", fleet2, true, 0),
            SoloRunCache::key_of("lbm", fleet4, true, 0));
}

TEST(SoloRunCache, ConcurrentSameKeyComputesExactlyOnce) {
  SoloRunCache cache;
  const auto params = fast_params();
  constexpr std::size_t kLookups = 8;
  std::vector<RunResult> seen(kLookups);
  parallel_for(kLookups, kLookups, [&](std::size_t i) {
    seen[i] = *cache.get_or_run("libquantum", params, true);
  });
  EXPECT_EQ(cache.computed(), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits() + cache.misses(), kLookups);
  for (const auto& r : seen) EXPECT_EQ(r, seen.front());
}

TEST(SoloRunCache, ConcurrentDistinctKeysAllComputed) {
  SoloRunCache cache;
  const auto params = fast_params();
  const std::vector<std::string> names{"libquantum", "lbm", "povray", "gobmk"};
  parallel_for(names.size(), 4,
               [&](std::size_t i) { cache.get_or_run(names[i], params, true); });
  EXPECT_EQ(cache.size(), names.size());
  EXPECT_EQ(cache.computed(), names.size());
}

TEST(SoloRunCache, GlobalCachedMatchesUncached) {
  const auto params = fast_params();
  const auto cached = run_solo_cached("soplex", params, true, 3);
  EXPECT_EQ(*cached, run_solo("soplex", params, true, 3));
  // Second lookup is a hit on the same entry.
  EXPECT_EQ(run_solo_cached("soplex", params, true, 3).get(), cached.get());
}

TEST(SoloRunCache, LruCapacityEvictsColdestAndCounts) {
  SoloRunCache cache;
  const auto params = fast_params();
  cache.set_capacity(2);
  const auto a = cache.get_or_run("libquantum", params, true);  // {lq}
  cache.get_or_run("lbm", params, true);                        // {lq, lbm}
  cache.get_or_run("libquantum", params, true);                 // touch lq -> lbm is LRU
  cache.get_or_run("povray", params, true);                     // evicts lbm
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);

  // The evicted key recomputes (a miss), the retained ones hit.
  const std::size_t computed_before = cache.computed();
  cache.get_or_run("libquantum", params, true);
  EXPECT_EQ(cache.computed(), computed_before);
  cache.get_or_run("lbm", params, true);
  EXPECT_EQ(cache.computed(), computed_before + 1);

  // The caller-held pointer from before the eviction chain is intact
  // and still bit-identical to a fresh run.
  EXPECT_EQ(*a, run_solo("libquantum", params, true));
}

TEST(SoloRunCache, ShrinkingCapacityEvictsImmediately) {
  SoloRunCache cache;
  const auto params = fast_params();
  cache.get_or_run("libquantum", params, true);
  cache.get_or_run("lbm", params, true);
  cache.get_or_run("povray", params, true);
  EXPECT_EQ(cache.size(), 3u);
  cache.set_capacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 2u);
  // The most recently used entry survived.
  const std::size_t computed_before = cache.computed();
  cache.get_or_run("povray", params, true);
  EXPECT_EQ(cache.computed(), computed_before);
}

TEST(SoloRunCache, ClearResetsEverything) {
  SoloRunCache cache;
  const auto params = fast_params();
  cache.get_or_run("povray", params, true);
  cache.get_or_run("povray", params, true);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.computed(), 0u);
}

}  // namespace
}  // namespace cmm::analysis
