#include <gtest/gtest.h>

#include <vector>

#include "sim/memory_controller.hpp"

namespace cmm::sim {
namespace {

MachineConfig cfg() {
  MachineConfig c;
  c.bandwidth_window = 1000;
  c.dram_peak_bytes_per_cycle = 32.0;
  c.dram_base_latency = 180;
  return c;
}

TEST(MemoryController, BaseLatencyWhenIdle) {
  MemoryController mem(cfg(), 2);
  EXPECT_EQ(mem.request(0, AccessType::DemandLoad, 0), 180u);
  EXPECT_EQ(mem.current_queue_delay(), 0u);
}

TEST(MemoryController, TrafficAccounting) {
  MemoryController mem(cfg(), 2);
  mem.request(0, AccessType::DemandLoad, 0);
  mem.request(0, AccessType::Prefetch, 1);
  mem.request(1, AccessType::DemandStore, 2);
  EXPECT_EQ(mem.core_traffic(0).demand_bytes, 64u);
  EXPECT_EQ(mem.core_traffic(0).prefetch_bytes, 64u);
  EXPECT_EQ(mem.core_traffic(1).demand_bytes, 64u);
  EXPECT_EQ(mem.total_traffic().total_bytes(), 192u);
  EXPECT_EQ(mem.total_traffic().demand_requests, 2u);
  EXPECT_EQ(mem.total_traffic().prefetch_requests, 1u);
}

TEST(MemoryController, QueueDelayGrowsWithLoad) {
  // Light load: no queueing in the following window.
  MemoryController light(cfg(), 1);
  for (Cycle t = 0; t < 1000; t += 100) light.request(0, AccessType::DemandLoad, t);
  light.request(0, AccessType::DemandLoad, 1000);  // rolls the window
  const Cycle light_delay = light.current_queue_delay();

  // Heavy load: ~full utilisation.
  MemoryController heavy(cfg(), 1);
  for (Cycle t = 0; t < 1000; t += 2) heavy.request(0, AccessType::DemandLoad, t);
  heavy.request(0, AccessType::DemandLoad, 1000);
  const Cycle heavy_delay = heavy.current_queue_delay();

  EXPECT_GT(heavy_delay, light_delay);
  EXPECT_GT(heavy.last_window_utilization(), light.last_window_utilization());
}

TEST(MemoryController, QueueDelayCapped) {
  MemoryController mem(cfg(), 1);
  // Grossly over-offered load.
  for (Cycle t = 0; t < 1000; ++t) {
    mem.request(0, AccessType::DemandLoad, t);
    mem.request(0, AccessType::Prefetch, t);
  }
  mem.request(0, AccessType::DemandLoad, 1001);
  EXPECT_LE(mem.current_queue_delay(), 6u * 180u);
}

TEST(MemoryController, IdleWindowsDecayDelay) {
  MemoryController mem(cfg(), 1);
  for (Cycle t = 0; t < 1000; t += 2) mem.request(0, AccessType::DemandLoad, t);
  mem.request(0, AccessType::DemandLoad, 1000);
  ASSERT_GT(mem.current_queue_delay(), 0u);
  // A long idle gap spreads ~zero traffic over many windows.
  mem.request(0, AccessType::DemandLoad, 100'000);
  EXPECT_EQ(mem.current_queue_delay(), 0u);
}

TEST(MemoryController, NonMonotonicTimeTolerated) {
  // Cores are advanced in quanta, so request times may step backwards
  // across cores; the controller must not crash or corrupt stats.
  MemoryController mem(cfg(), 2);
  mem.request(0, AccessType::DemandLoad, 5000);
  mem.request(1, AccessType::DemandLoad, 4200);
  mem.request(0, AccessType::DemandLoad, 5100);
  EXPECT_EQ(mem.total_traffic().demand_requests, 3u);
}

TEST(MemoryController, ResetStats) {
  MemoryController mem(cfg(), 2);
  mem.request(0, AccessType::DemandLoad, 0);
  mem.reset_stats();
  EXPECT_EQ(mem.total_traffic().total_bytes(), 0u);
  EXPECT_EQ(mem.core_traffic(0).demand_bytes, 0u);
}

// Regression: the multi-window rollover used to average the stale
// traffic over the whole idle span, leaving a nonzero queue delay even
// though the most recent complete window — the one the queue model keys
// on — was empty.
TEST(MemoryController, MultiWindowRolloverZeroesStaleDelay) {
  MemoryController mem(cfg(), 1);
  // Saturate window [0, 1000): 500 requests x 64 B = capacity.
  for (Cycle t = 0; t < 1000; t += 2) mem.request(0, AccessType::DemandLoad, t);
  // Next arrival two complete windows later; [1000, 2000) was empty.
  mem.request(0, AccessType::DemandLoad, 2500);
  EXPECT_EQ(mem.current_queue_delay(), 0u);
  EXPECT_DOUBLE_EQ(mem.last_window_utilization(), 0.0);
}

TEST(MemoryController, SingleWindowRolloverKeepsUtilization) {
  MemoryController mem(cfg(), 1);
  for (Cycle t = 0; t < 1000; t += 2) mem.request(0, AccessType::DemandLoad, t);
  // Exactly one complete window behind: its full utilisation applies.
  mem.request(0, AccessType::DemandLoad, 1500);
  EXPECT_DOUBLE_EQ(mem.last_window_utilization(), 1.0);
  EXPECT_EQ(mem.current_queue_delay(), 6u * 180u);  // saturation cap
}

TEST(MemoryController, ResetStatsDoesNotPerturbTiming) {
  MemoryController plain(cfg(), 2);
  MemoryController reset_mid(cfg(), 2);
  const auto drive = [](MemoryController& m, bool reset) {
    std::vector<Cycle> latencies;
    for (Cycle t = 0; t < 5000; t += 3) {
      const CoreId core = static_cast<CoreId>(t % 2);
      const AccessType type = (t % 5 == 0) ? AccessType::Prefetch : AccessType::DemandLoad;
      latencies.push_back(m.request(core, type, t));
      if (reset && t == 2499) m.reset_stats();
    }
    return latencies;
  };
  // Same request stream; one run resets counters mid-flight. Every
  // subsequent latency must be bit-identical (header contract).
  EXPECT_EQ(drive(plain, false), drive(reset_mid, true));
}

TEST(MemoryController, QueueingDisabledMeansNoDelay) {
  MachineConfig c = cfg();
  c.bandwidth_queueing = false;
  MemoryController mem(c, 1);
  for (Cycle t = 0; t < 1000; ++t) mem.request(0, AccessType::DemandLoad, t);
  mem.request(0, AccessType::DemandLoad, 1200);  // rolls the saturated window
  EXPECT_EQ(mem.current_queue_delay(), 0u);
  EXPECT_EQ(mem.request(0, AccessType::DemandLoad, 1300), 180u);
}

TEST(MemoryController, PerCoreWindowBandwidthAttribution) {
  MemoryController mem(cfg(), 2);
  for (Cycle t = 0; t < 1000; t += 10) mem.request(0, AccessType::DemandLoad, t);
  for (Cycle t = 5; t < 1000; t += 100) mem.request(1, AccessType::Prefetch, t);
  mem.request(0, AccessType::DemandLoad, 1100);  // close window [0, 1000)
  EXPECT_DOUBLE_EQ(mem.core_last_window_bpc(0), 100.0 * 64.0 / 1000.0);
  EXPECT_DOUBLE_EQ(mem.core_last_window_bpc(1), 10.0 * 64.0 / 1000.0);
  // An idle stretch zeroes the per-core signal along with the delay.
  mem.request(0, AccessType::DemandLoad, 10'000);
  EXPECT_DOUBLE_EQ(mem.core_last_window_bpc(0), 0.0);
}

TEST(MemoryController, WritebacksConsumeWindowBandwidth) {
  MemoryController mem(cfg(), 1);
  for (Cycle t = 0; t < 1000; ++t) mem.writeback(0, t);  // 64 kB >> capacity
  mem.request(0, AccessType::DemandLoad, 1100);
  EXPECT_GT(mem.current_queue_delay(), 0u);
  EXPECT_EQ(mem.total_traffic().writeback_requests, 1000u);
  EXPECT_EQ(mem.core_traffic(0).writeback_bytes, 64'000u);
}

TEST(MemoryController, ThrottleLadderScalesLatency) {
  MemoryController mem(cfg(), 2);
  EXPECT_TRUE(mem.unthrottled());
  mem.set_throttle_level(0, 1);
  EXPECT_FALSE(mem.unthrottled());
  EXPECT_EQ(mem.throttle_level(0), 1);
  EXPECT_EQ(mem.request(0, AccessType::DemandLoad, 0), 270u);  // 1.5x base
  EXPECT_EQ(mem.request(1, AccessType::DemandLoad, 1), 180u);  // neighbour unaffected
  mem.set_throttle_level(0, 3);
  EXPECT_EQ(mem.request(0, AccessType::DemandLoad, 2), 720u);  // 4x base
  mem.set_throttle_level(0, 99);  // clamped to the ladder top
  EXPECT_EQ(mem.throttle_level(0), MemoryController::kNumThrottleLevels - 1);
  mem.set_throttle_level(0, 0);
  EXPECT_TRUE(mem.unthrottled());
  EXPECT_EQ(mem.request(0, AccessType::DemandLoad, 3), 180u);
}

TEST(MemoryController, ThrottleFactorsMonotonic) {
  EXPECT_DOUBLE_EQ(MemoryController::throttle_factor(0), 1.0);
  for (unsigned l = 1; l < MemoryController::kNumThrottleLevels; ++l) {
    EXPECT_GT(MemoryController::throttle_factor(static_cast<std::uint8_t>(l)),
              MemoryController::throttle_factor(static_cast<std::uint8_t>(l - 1)));
  }
  EXPECT_DOUBLE_EQ(
      MemoryController::throttle_factor(200),
      MemoryController::throttle_factor(MemoryController::kNumThrottleLevels - 1));
}

}  // namespace
}  // namespace cmm::sim
