#include <gtest/gtest.h>

#include "sim/memory_controller.hpp"

namespace cmm::sim {
namespace {

MachineConfig cfg() {
  MachineConfig c;
  c.bandwidth_window = 1000;
  c.dram_peak_bytes_per_cycle = 32.0;
  c.dram_base_latency = 180;
  return c;
}

TEST(MemoryController, BaseLatencyWhenIdle) {
  MemoryController mem(cfg(), 2);
  EXPECT_EQ(mem.request(0, AccessType::DemandLoad, 0), 180u);
  EXPECT_EQ(mem.current_queue_delay(), 0u);
}

TEST(MemoryController, TrafficAccounting) {
  MemoryController mem(cfg(), 2);
  mem.request(0, AccessType::DemandLoad, 0);
  mem.request(0, AccessType::Prefetch, 1);
  mem.request(1, AccessType::DemandStore, 2);
  EXPECT_EQ(mem.core_traffic(0).demand_bytes, 64u);
  EXPECT_EQ(mem.core_traffic(0).prefetch_bytes, 64u);
  EXPECT_EQ(mem.core_traffic(1).demand_bytes, 64u);
  EXPECT_EQ(mem.total_traffic().total_bytes(), 192u);
  EXPECT_EQ(mem.total_traffic().demand_requests, 2u);
  EXPECT_EQ(mem.total_traffic().prefetch_requests, 1u);
}

TEST(MemoryController, QueueDelayGrowsWithLoad) {
  // Light load: no queueing in the following window.
  MemoryController light(cfg(), 1);
  for (Cycle t = 0; t < 1000; t += 100) light.request(0, AccessType::DemandLoad, t);
  light.request(0, AccessType::DemandLoad, 1000);  // rolls the window
  const Cycle light_delay = light.current_queue_delay();

  // Heavy load: ~full utilisation.
  MemoryController heavy(cfg(), 1);
  for (Cycle t = 0; t < 1000; t += 2) heavy.request(0, AccessType::DemandLoad, t);
  heavy.request(0, AccessType::DemandLoad, 1000);
  const Cycle heavy_delay = heavy.current_queue_delay();

  EXPECT_GT(heavy_delay, light_delay);
  EXPECT_GT(heavy.last_window_utilization(), light.last_window_utilization());
}

TEST(MemoryController, QueueDelayCapped) {
  MemoryController mem(cfg(), 1);
  // Grossly over-offered load.
  for (Cycle t = 0; t < 1000; ++t) {
    mem.request(0, AccessType::DemandLoad, t);
    mem.request(0, AccessType::Prefetch, t);
  }
  mem.request(0, AccessType::DemandLoad, 1001);
  EXPECT_LE(mem.current_queue_delay(), 6u * 180u);
}

TEST(MemoryController, IdleWindowsDecayDelay) {
  MemoryController mem(cfg(), 1);
  for (Cycle t = 0; t < 1000; t += 2) mem.request(0, AccessType::DemandLoad, t);
  mem.request(0, AccessType::DemandLoad, 1000);
  ASSERT_GT(mem.current_queue_delay(), 0u);
  // A long idle gap spreads ~zero traffic over many windows.
  mem.request(0, AccessType::DemandLoad, 100'000);
  EXPECT_EQ(mem.current_queue_delay(), 0u);
}

TEST(MemoryController, NonMonotonicTimeTolerated) {
  // Cores are advanced in quanta, so request times may step backwards
  // across cores; the controller must not crash or corrupt stats.
  MemoryController mem(cfg(), 2);
  mem.request(0, AccessType::DemandLoad, 5000);
  mem.request(1, AccessType::DemandLoad, 4200);
  mem.request(0, AccessType::DemandLoad, 5100);
  EXPECT_EQ(mem.total_traffic().demand_requests, 3u);
}

TEST(MemoryController, ResetStats) {
  MemoryController mem(cfg(), 2);
  mem.request(0, AccessType::DemandLoad, 0);
  mem.reset_stats();
  EXPECT_EQ(mem.total_traffic().total_bytes(), 0u);
  EXPECT_EQ(mem.core_traffic(0).demand_bytes, 0u);
}

}  // namespace
}  // namespace cmm::sim
