// Page-edge behaviour of the shared prefetcher address helpers.
// Every engine clamps through these, so off-by-ones here would skew
// all page-local prefetchers at once.
#include <gtest/gtest.h>

#include "sim/pf_common.hpp"

namespace cmm::sim {
namespace {

constexpr unsigned kLpp = 64;  // 4 KB page / 64 B line

TEST(PfCommon, PageDecomposition) {
  EXPECT_EQ(page_of(0, kLpp), 0u);
  EXPECT_EQ(page_of(63, kLpp), 0u);
  EXPECT_EQ(page_of(64, kLpp), 1u);
  EXPECT_EQ(page_offset(63, kLpp), 63u);
  EXPECT_EQ(page_offset(64, kLpp), 0u);
  const Addr line = 7 * 64 + 13;
  EXPECT_EQ(line_in_page(page_of(line, kLpp), page_offset(line, kLpp), kLpp), line);
}

TEST(PfCommon, BuddyLinePairsWithinPage) {
  EXPECT_EQ(buddy_line(0), 1u);
  EXPECT_EQ(buddy_line(1), 0u);
  EXPECT_EQ(buddy_line(62), 63u);
  EXPECT_EQ(buddy_line(63), 62u);
  // The buddy pair never straddles a page: line 63's buddy is 62, not 64.
  EXPECT_EQ(page_of(buddy_line(63), kLpp), page_of(Addr{63}, kLpp));
}

TEST(PfCommon, PageLocalOffsetForwardEdge) {
  // Last line of the page: +1 falls off, +0 stays.
  EXPECT_EQ(page_local_offset(63, 1, kLpp), -1);
  EXPECT_EQ(page_local_offset(63, 0, kLpp), 63);
  // One before the edge: +1 is the last in-page target.
  EXPECT_EQ(page_local_offset(62, 1, kLpp), 63);
  EXPECT_EQ(page_local_offset(62, 2, kLpp), -1);
  // Full-page reach from offset 0.
  EXPECT_EQ(page_local_offset(0, 63, kLpp), 63);
  EXPECT_EQ(page_local_offset(0, 64, kLpp), -1);
}

TEST(PfCommon, PageLocalOffsetBackwardEdge) {
  EXPECT_EQ(page_local_offset(0, -1, kLpp), -1);
  EXPECT_EQ(page_local_offset(1, -1, kLpp), 0);
  EXPECT_EQ(page_local_offset(63, -63, kLpp), 0);
  EXPECT_EQ(page_local_offset(63, -64, kLpp), -1);
}

TEST(PfCommon, SignedLineTargetClampsAtZero) {
  EXPECT_EQ(signed_line_target(0, -1), -1);
  EXPECT_EQ(signed_line_target(5, -5), 0);
  EXPECT_EQ(signed_line_target(5, -6), -1);
  EXPECT_EQ(signed_line_target(5, 3), 8);
}

TEST(PfCommon, SamePage) {
  EXPECT_TRUE(same_page(0, 63, kLpp));
  EXPECT_FALSE(same_page(63, 64, kLpp));
  EXPECT_TRUE(same_page(64, 127, kLpp));
}

TEST(PfCommon, NonDefaultPageSize) {
  // Helpers are parameterised by lines-per-page; a 16-line page clamps
  // at 15.
  EXPECT_EQ(page_local_offset(15, 1, 16), -1);
  EXPECT_EQ(page_local_offset(14, 1, 16), 15);
  EXPECT_EQ(page_of(16, 16), 1u);
}

}  // namespace
}  // namespace cmm::sim
