#include <gtest/gtest.h>

#include "common/bitmask.hpp"

namespace cmm {
namespace {

TEST(Bitmask, ContiguousMaskBasics) {
  EXPECT_EQ(contiguous_mask(0, 1), 0x1u);
  EXPECT_EQ(contiguous_mask(0, 4), 0xFu);
  EXPECT_EQ(contiguous_mask(2, 3), 0x1Cu);
  EXPECT_EQ(contiguous_mask(0, 20), 0xFFFFFu);
  EXPECT_EQ(contiguous_mask(5, 0), 0u);
}

TEST(Bitmask, FullMask) {
  EXPECT_EQ(full_mask(8), 0xFFu);
  EXPECT_EQ(full_mask(20), 0xFFFFFu);
  EXPECT_EQ(full_mask(1), 0x1u);
}

TEST(Bitmask, Popcount) {
  EXPECT_EQ(popcount(0u), 0u);
  EXPECT_EQ(popcount(0xFFFFFu), 20u);
  EXPECT_EQ(popcount(contiguous_mask(3, 5)), 5u);
}

TEST(Bitmask, ValidCatMasks) {
  EXPECT_TRUE(is_valid_cat_mask(0x1, 20));
  EXPECT_TRUE(is_valid_cat_mask(0x3F, 20));
  EXPECT_TRUE(is_valid_cat_mask(contiguous_mask(6, 14), 20));
  EXPECT_TRUE(is_valid_cat_mask(full_mask(20), 20));
}

TEST(Bitmask, InvalidCatMasks) {
  EXPECT_FALSE(is_valid_cat_mask(0, 20));          // empty
  EXPECT_FALSE(is_valid_cat_mask(0b101, 20));      // hole
  EXPECT_FALSE(is_valid_cat_mask(0b1001100, 20));  // holes
  EXPECT_FALSE(is_valid_cat_mask(1u << 20, 20));   // beyond way count
  EXPECT_FALSE(is_valid_cat_mask(full_mask(21), 20));
}

// Every (lo, count) pair within the way budget yields a valid CAT mask.
class ContiguousMaskParam : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(ContiguousMaskParam, AlwaysValidWithinBudget) {
  const auto [lo, count] = GetParam();
  if (count == 0 || lo + count > 20) GTEST_SKIP();
  const WayMask m = contiguous_mask(lo, count);
  EXPECT_TRUE(is_valid_cat_mask(m, 20));
  EXPECT_EQ(popcount(m), count);
}

INSTANTIATE_TEST_SUITE_P(AllPlacements, ContiguousMaskParam,
                         ::testing::Combine(::testing::Values(0u, 1u, 5u, 10u, 19u),
                                            ::testing::Values(1u, 2u, 6u, 14u, 20u)));

}  // namespace
}  // namespace cmm
