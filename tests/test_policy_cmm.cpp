#include <gtest/gtest.h>

#include <set>

#include "core/policy_cmm.hpp"
#include "policy_test_util.hpp"

namespace cmm::core {
namespace {

using test::aggressive_counters;
using test::quiet_counters;
using test::run_profiling;

constexpr unsigned kCores = 8;
constexpr unsigned kWays = 20;

CmmPolicy make_cmm(CmmVariant variant, unsigned max_exhaustive = 3) {
  CmmPolicy::Options o;
  o.detector = test::test_detector();
  o.variant = variant;
  o.max_exhaustive = max_exhaustive;
  return CmmPolicy(o);
}

/// Cores 0,1: aggressive + friendly (2x). Cores 2,3: aggressive +
/// unfriendly (1.05x), and the quiet cores suffer while unfriendly
/// prefetchers are on.
double scripted_ipc(CoreId c, const ResourceConfig& cfg) {
  if (c < 2) return cfg.prefetch_on[c] ? 2.0 : 1.0;
  if (c < 4) return cfg.prefetch_on[c] ? 1.05 : 1.0;
  const bool noisy = cfg.prefetch_on[2] || cfg.prefetch_on[3];
  return noisy ? 0.5 : 1.0;
}

sim::PmuCounters scripted_counters(CoreId c, const ResourceConfig& cfg) {
  if (c < 4 && cfg.prefetch_on[c]) return aggressive_counters(1.0);
  return quiet_counters(1.0);
}

struct Outcome {
  CmmPolicy policy;
  test::ProfilingOutcome profile;
};

test::ProfilingOutcome drive(CmmPolicy& cmm) {
  cmm.initial_config(kCores, kWays);
  cmm.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  return run_profiling(cmm, kCores, scripted_ipc, scripted_counters);
}

TEST(CmmPolicy, Names) {
  EXPECT_EQ(make_cmm(CmmVariant::A).name(), "cmm_a");
  EXPECT_EQ(make_cmm(CmmVariant::B).name(), "cmm_b");
  EXPECT_EQ(make_cmm(CmmVariant::C).name(), "cmm_c");
  CmmPolicy::Options o;
  o.detector = test::test_detector();
  o.bp_enabled = true;
  EXPECT_EQ(CmmPolicy(o).name(), "cmm_bp");
}

TEST(CmmPolicy, ClassifiesFriendlyAndUnfriendly) {
  CmmPolicy cmm = make_cmm(CmmVariant::A);
  drive(cmm);
  EXPECT_EQ(cmm.agg_set(), (std::vector<CoreId>{0, 1, 2, 3}));
  EXPECT_EQ(cmm.friendly_cores(), (std::vector<CoreId>{0, 1}));
  EXPECT_EQ(cmm.unfriendly_cores(), (std::vector<CoreId>{2, 3}));
}

TEST(CmmPolicy, VariantAPartitionsWholeAggSet) {
  CmmPolicy cmm = make_cmm(CmmVariant::A);
  const auto outcome = drive(cmm);
  const WayMask small = contiguous_mask(0, 6);  // 1.5 x 4
  for (CoreId c = 0; c < 4; ++c) EXPECT_EQ(outcome.final.way_masks[c], small);
  for (CoreId c = 4; c < kCores; ++c) EXPECT_EQ(outcome.final.way_masks[c], full_mask(kWays));
}

TEST(CmmPolicy, VariantBPartitionsOnlyFriendly) {
  CmmPolicy cmm = make_cmm(CmmVariant::B);
  const auto outcome = drive(cmm);
  const WayMask small = contiguous_mask(0, 3);  // 1.5 x 2
  EXPECT_EQ(outcome.final.way_masks[0], small);
  EXPECT_EQ(outcome.final.way_masks[1], small);
  // Unfriendly cores keep the whole cache in variant (b).
  EXPECT_EQ(outcome.final.way_masks[2], full_mask(kWays));
  EXPECT_EQ(outcome.final.way_masks[3], full_mask(kWays));
}

TEST(CmmPolicy, VariantCSeparatesFriendlyFromUnfriendly) {
  CmmPolicy cmm = make_cmm(CmmVariant::C);
  const auto outcome = drive(cmm);
  const WayMask friendly = outcome.final.way_masks[0];
  const WayMask unfriendly = outcome.final.way_masks[2];
  EXPECT_EQ(popcount(friendly), 3u);
  EXPECT_EQ(popcount(unfriendly), 3u);
  EXPECT_EQ(friendly & unfriendly, 0u);
}

TEST(CmmPolicy, FriendlyPrefetchersAlwaysOn) {
  // The coordinated mechanism never throttles prefetch-friendly cores —
  // that is the whole point of giving them a partition instead.
  for (const CmmVariant v : {CmmVariant::A, CmmVariant::B, CmmVariant::C}) {
    CmmPolicy cmm = make_cmm(v);
    const auto outcome = drive(cmm);
    EXPECT_TRUE(outcome.final.prefetch_on[0]);
    EXPECT_TRUE(outcome.final.prefetch_on[1]);
  }
}

TEST(CmmPolicy, UnfriendlyCoresThrottledWhenItHelps) {
  // The scripted machine rewards turning the unfriendly prefetchers
  // off (quiet cores double); the throttle search must find that.
  CmmPolicy cmm = make_cmm(CmmVariant::A);
  const auto outcome = drive(cmm);
  EXPECT_FALSE(outcome.final.prefetch_on[2]);
  EXPECT_FALSE(outcome.final.prefetch_on[3]);
}

TEST(CmmPolicy, ThrottleSamplesCarryPartitionMasks) {
  // Coordination: the throttle search runs with the partition applied.
  CmmPolicy cmm = make_cmm(CmmVariant::A);
  const auto outcome = drive(cmm);
  ASSERT_GE(outcome.samples.size(), 3u);
  for (std::size_t s = 2; s < outcome.samples.size(); ++s) {
    EXPECT_EQ(outcome.samples[s].config.way_masks, cmm.partition_masks());
  }
}

TEST(CmmPolicy, SampleBudget) {
  // probe on + probe off + <= 2^2 throttle combos for 2 unfriendly.
  CmmPolicy cmm = make_cmm(CmmVariant::A);
  const auto outcome = drive(cmm);
  EXPECT_LE(outcome.samples.size(), 2u + 4u);
}

TEST(CmmPolicy, EmptyAggFallsBackToDunn) {
  CmmPolicy cmm = make_cmm(CmmVariant::A);
  cmm.initial_config(kCores, kWays);
  // Epoch stats with two stall groups feed the Dunn fallback.
  std::vector<sim::PmuCounters> epoch(kCores);
  for (CoreId c = 0; c < kCores; ++c) {
    epoch[c].cycles = 1'000'000;
    epoch[c].instructions = 100'000;
    epoch[c].stalls_l2_pending = (c < 4) ? 1'000 : 800'000;
  }
  cmm.begin_profiling(epoch);
  const auto outcome = run_profiling(
      cmm, kCores, [](CoreId, const ResourceConfig&) { return 1.0; },
      [](CoreId, const ResourceConfig&) { return quiet_counters(1.0); });
  EXPECT_EQ(outcome.samples.size(), 1u);  // detection probe only
  // Dunn-style nested masks: low-stall cores restricted.
  EXPECT_LT(popcount(outcome.final.way_masks[0]), kWays);
  EXPECT_EQ(popcount(outcome.final.way_masks[4]), kWays);
  for (const bool on : outcome.final.prefetch_on) EXPECT_TRUE(on);
}

TEST(CmmPolicy, NoUnfriendlyMeansCpOnly) {
  // All-friendly Agg set: partition applied, nothing throttled, no
  // throttle-search samples.
  CmmPolicy cmm = make_cmm(CmmVariant::A);
  cmm.initial_config(kCores, kWays);
  cmm.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto outcome = run_profiling(
      cmm, kCores,
      [](CoreId c, const ResourceConfig& cfg) {
        return (c < 2) ? (cfg.prefetch_on[c] ? 2.0 : 1.0) : 1.0;
      },
      [](CoreId c, const ResourceConfig& cfg) {
        return (c < 2 && cfg.prefetch_on[c]) ? aggressive_counters(2.0) : quiet_counters(1.0);
      });
  EXPECT_EQ(outcome.samples.size(), 2u);
  EXPECT_TRUE(cmm.unfriendly_cores().empty());
  for (const bool on : outcome.final.prefetch_on) EXPECT_TRUE(on);
  EXPECT_EQ(popcount(outcome.final.way_masks[0]), 3u);  // friendly partition
}

TEST(CmmPolicy, GroupLevelThrottlingForManyUnfriendly) {
  CmmPolicy cmm = make_cmm(CmmVariant::A, /*max_exhaustive=*/3);
  cmm.initial_config(kCores, kWays);
  cmm.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  // Six unfriendly aggressive cores (1.05x from prefetching each).
  const auto outcome = run_profiling(
      cmm, kCores,
      [](CoreId c, const ResourceConfig& cfg) {
        if (c < 6) return cfg.prefetch_on[c] ? 1.05 : 1.0;
        const bool noisy = cfg.prefetch_on[0];
        return noisy ? 0.5 : 1.0;
      },
      [](CoreId c, const ResourceConfig& cfg) {
        return (c < 6 && cfg.prefetch_on[c]) ? aggressive_counters(1.0) : quiet_counters(1.0);
      });
  EXPECT_EQ(cmm.unfriendly_cores().size(), 6u);
  // 2 probes + at most 2^3 group combos.
  EXPECT_LE(outcome.samples.size(), 2u + 8u);
}

// ------------------------------------------------------ BP (MBA) axis

CmmPolicy make_cmm_bp(unsigned bp_max_level = 3, unsigned bp_max_cores = 2) {
  CmmPolicy::Options o;
  o.detector = test::test_detector();
  o.variant = CmmVariant::A;
  o.bp_enabled = true;
  o.bp_max_level = bp_max_level;
  o.bp_max_cores = bp_max_cores;
  return CmmPolicy(o);
}

unsigned lvl(const ResourceConfig& cfg, CoreId c) {
  return c < cfg.throttle_levels.size() ? cfg.throttle_levels[c] : 0u;
}

/// Core 2 is a bandwidth hog: marginally prefetch-unfriendly, dominant
/// DRAM traffic. Regulating it at level 1 lifts everyone else by 1.5x
/// at a small cost to itself; level 2+ overshoots and tanks the hog.
/// Regulating core 0 (the runner-up candidate) only hurts core 0.
double bp_ipc(CoreId c, const ResourceConfig& cfg) {
  double v = (c == 2) ? (cfg.prefetch_on[2] ? 1.05 : 1.0) : 1.0;
  const unsigned hog = lvl(cfg, 2);
  if (hog == 1) v *= (c == 2) ? 0.95 : 1.5;
  if (hog >= 2) v *= (c == 2) ? 0.3 : 1.5;
  if (lvl(cfg, 0) != 0 && c == 0) v *= 0.2;
  return v;
}

sim::PmuCounters bp_counters(CoreId c, const ResourceConfig& cfg) {
  if (c == 2 && cfg.prefetch_on[2]) {
    sim::PmuCounters ctr = aggressive_counters(1.0);
    ctr.dram_prefetch_bytes = 200'000 * 64;  // ~6 B/cycle: clearly the top consumer
    return ctr;
  }
  return quiet_counters(1.0);
}

test::ProfilingOutcome drive_bp(CmmPolicy& cmm) {
  cmm.initial_config(kCores, kWays);
  cmm.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  return run_profiling(cmm, kCores, bp_ipc, bp_counters);
}

TEST(CmmPolicy, BpSearchKeepsOnlyImprovingLevel) {
  CmmPolicy cmm = make_cmm_bp();
  const auto outcome = drive_bp(cmm);

  std::vector<std::uint8_t> expected(kCores, 0);
  expected[2] = 1;
  EXPECT_EQ(outcome.final.throttle_levels, expected);
  EXPECT_EQ(cmm.bp_levels(), expected);

  // probe on/off + 2 throttle combos + BP base + 3 levels x 2 candidates.
  EXPECT_EQ(outcome.samples.size(), 11u);
  // The BP pass re-measures the unregulated PT+CP config first...
  EXPECT_TRUE(outcome.samples[4].config.throttle_levels.empty());
  // ...then trials exactly one candidate level at a time on top of the
  // accepted ladder (coordinate descent, not a cartesian sweep).
  EXPECT_EQ(lvl(outcome.samples[5].config, 2), 1u);
  for (std::size_t s = 8; s < 11; ++s) {
    EXPECT_EQ(lvl(outcome.samples[s].config, 2), 1u);  // hog's accepted level rides along
    EXPECT_EQ(lvl(outcome.samples[s].config, 0), static_cast<unsigned>(s - 7));
  }
}

TEST(CmmPolicy, BpRejectedWhenNothingImproves) {
  // Same machine but regulation helps nobody: every trial is rejected
  // and the final config carries no throttle field at all (empty, not
  // all-zero), preserving pre-BP bit-identity.
  CmmPolicy cmm = make_cmm_bp();
  cmm.initial_config(kCores, kWays);
  cmm.begin_profiling(std::vector<sim::PmuCounters>(kCores));
  const auto outcome = run_profiling(
      cmm, kCores,
      [](CoreId c, const ResourceConfig& cfg) {
        double v = (c == 2) ? (cfg.prefetch_on[2] ? 1.05 : 1.0) : 1.0;
        for (CoreId i = 0; i < cfg.throttle_levels.size(); ++i) {
          if (cfg.throttle_levels[i] != 0) v *= 0.8;  // any regulation hurts
        }
        return v;
      },
      bp_counters);
  EXPECT_TRUE(outcome.final.throttle_levels.empty());
  EXPECT_EQ(cmm.bp_levels(), std::vector<std::uint8_t>(kCores, 0));
}

TEST(CmmPolicy, BpNeuteredMatchesPlainCmm) {
  // bp_max_level = 0 can never start a BP pass: sample stream and final
  // config must be bit-identical to plain cmm_a on the same machine.
  CmmPolicy plain = make_cmm(CmmVariant::A);
  const auto base = drive_bp(plain);

  CmmPolicy off = make_cmm_bp(/*bp_max_level=*/0);
  const auto neutered = drive_bp(off);

  EXPECT_EQ(neutered.final, base.final);
  EXPECT_EQ(neutered.samples.size(), base.samples.size());
  EXPECT_TRUE(neutered.final.throttle_levels.empty());
}

TEST(CmmPolicy, BpSkippedWhenMbaDegraded) {
  CmmPolicy cmm = make_cmm_bp();
  cmm.notify_degraded(/*prefetch=*/true, /*cat=*/true, /*mba=*/false);
  const auto outcome = drive_bp(cmm);
  EXPECT_TRUE(outcome.final.throttle_levels.empty());
  EXPECT_EQ(outcome.samples.size(), 4u);  // probes + 2 combos, no BP pass
}

}  // namespace
}  // namespace cmm::core
