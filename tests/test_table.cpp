#include <gtest/gtest.h>

#include <sstream>

#include "analysis/table.hpp"

namespace cmm::analysis {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1.000"});
  t.add_row({"longer_name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only_one"}), std::invalid_argument);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 3), "1.235");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
  EXPECT_EQ(Table::fmt(-0.5, 2), "-0.50");
}

}  // namespace
}  // namespace cmm::analysis
