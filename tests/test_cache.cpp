#include <gtest/gtest.h>

#include "sim/cache.hpp"

namespace cmm::sim {
namespace {

CacheGeometry tiny_geom() { return CacheGeometry{4 * 64 * 4, 4, 64}; }  // 4 sets x 4 ways

// Line address residing in `set` with discriminator `k`.
Addr line_in_set(const SetAssocCache& cache, std::uint32_t set, std::uint64_t k) {
  return static_cast<Addr>(set) + k * cache.num_sets();
}

TEST(Cache, MissThenHit) {
  SetAssocCache cache(tiny_geom());
  const Addr line = 5;
  EXPECT_FALSE(cache.access(line, AccessType::DemandLoad, 0).hit);
  cache.fill(line, AccessType::DemandLoad, 0, 0, ~WayMask{0});
  EXPECT_TRUE(cache.access(line, AccessType::DemandLoad, 1).hit);
  EXPECT_EQ(cache.stats().demand_accesses, 2u);
  EXPECT_EQ(cache.stats().demand_hits, 1u);
}

TEST(Cache, ContainsDoesNotPerturb) {
  SetAssocCache cache(tiny_geom());
  cache.fill(9, AccessType::DemandLoad, 0, 0, ~WayMask{0});
  const auto stats_before = cache.stats().demand_accesses;
  EXPECT_TRUE(cache.contains(9));
  EXPECT_FALSE(cache.contains(10));
  EXPECT_EQ(cache.stats().demand_accesses, stats_before);
}

TEST(Cache, LruEvictionOrder) {
  SetAssocCache cache(tiny_geom());
  // Fill one set completely, touching in order 0,1,2,3.
  for (std::uint64_t k = 0; k < 4; ++k) {
    cache.fill(line_in_set(cache, 0, k), AccessType::DemandLoad, k, k, ~WayMask{0});
  }
  // Re-touch line 0 so line 1 becomes LRU.
  cache.access(line_in_set(cache, 0, 0), AccessType::DemandLoad, 10);
  const FillResult r =
      cache.fill(line_in_set(cache, 0, 4), AccessType::DemandLoad, 11, 11, ~WayMask{0});
  ASSERT_TRUE(r.evicted_valid);
  EXPECT_EQ(r.evicted_line, line_in_set(cache, 0, 1));
}

TEST(Cache, SetOccupancyNeverExceedsWays) {
  SetAssocCache cache(tiny_geom());
  for (std::uint64_t k = 0; k < 40; ++k) {
    cache.fill(line_in_set(cache, 2, k), AccessType::DemandLoad, k, k, ~WayMask{0});
    EXPECT_LE(cache.set_occupancy(2), 4u);
  }
  EXPECT_EQ(cache.set_occupancy(2), 4u);
}

TEST(Cache, MaskRestrictsAllocation) {
  SetAssocCache cache(tiny_geom());
  const WayMask mask = contiguous_mask(0, 2);
  for (std::uint64_t k = 0; k < 10; ++k) {
    cache.fill(line_in_set(cache, 1, k), AccessType::DemandLoad, k, k, mask);
  }
  EXPECT_EQ(cache.set_occupancy_in_mask(1, mask), 2u);
  EXPECT_EQ(cache.set_occupancy_in_mask(1, ~mask), 0u);
}

TEST(Cache, HitsAllowedOutsideMask) {
  SetAssocCache cache(tiny_geom());
  // Fill with the full mask, then access under a narrow mask: hits are
  // mask-independent (CAT semantics).
  const Addr line = line_in_set(cache, 3, 7);
  cache.fill(line, AccessType::DemandLoad, 0, 0, ~WayMask{0});
  EXPECT_TRUE(cache.access(line, AccessType::DemandLoad, 1).hit);
}

TEST(Cache, MaskedFillEvictsOnlyInsideMask) {
  SetAssocCache cache(tiny_geom());
  // Fill all 4 ways of set 0 under the full mask (ways chosen in order).
  for (std::uint64_t k = 0; k < 4; ++k) {
    cache.fill(line_in_set(cache, 0, k), AccessType::DemandLoad, k, k, ~WayMask{0});
  }
  // A fill restricted to ways {2,3} must not evict the lines in 0/1.
  cache.fill(line_in_set(cache, 0, 9), AccessType::DemandLoad, 9, 9, contiguous_mask(2, 2));
  EXPECT_TRUE(cache.contains(line_in_set(cache, 0, 0)));
  EXPECT_TRUE(cache.contains(line_in_set(cache, 0, 1)));
}

TEST(Cache, ZeroMaskDropsFill) {
  SetAssocCache cache(tiny_geom());
  const FillResult r = cache.fill(3, AccessType::DemandLoad, 0, 0, 0);
  EXPECT_FALSE(r.evicted_valid);
  EXPECT_FALSE(cache.contains(3));
}

TEST(Cache, PrefetchedLineAccountsUseful) {
  SetAssocCache cache(tiny_geom());
  cache.fill(4, AccessType::Prefetch, 0, 10, ~WayMask{0});
  const LookupResult r = cache.access(4, AccessType::DemandLoad, 20);
  EXPECT_TRUE(r.hit);
  EXPECT_TRUE(r.first_use_of_prefetch);
  EXPECT_EQ(cache.stats().prefetched_lines_used, 1u);
  // Second touch is not a first use.
  EXPECT_FALSE(cache.access(4, AccessType::DemandLoad, 21).first_use_of_prefetch);
  EXPECT_EQ(cache.stats().prefetched_lines_used, 1u);
}

TEST(Cache, PrefetchedLineEvictedUnusedAccounts) {
  SetAssocCache cache(tiny_geom());
  for (std::uint64_t k = 0; k < 4; ++k) {
    cache.fill(line_in_set(cache, 0, k), AccessType::Prefetch, k, k, ~WayMask{0});
  }
  // Evict all four without ever touching them.
  for (std::uint64_t k = 4; k < 8; ++k) {
    cache.fill(line_in_set(cache, 0, k), AccessType::DemandLoad, 10 + k, 10 + k, ~WayMask{0});
  }
  EXPECT_EQ(cache.stats().prefetched_lines_evicted_unused, 4u);
  EXPECT_DOUBLE_EQ(cache.stats().prefetch_accuracy(), 0.0);
}

TEST(Cache, PrefetchAccuracyMixed) {
  SetAssocCache cache(tiny_geom());
  cache.fill(line_in_set(cache, 0, 0), AccessType::Prefetch, 0, 0, ~WayMask{0});
  cache.fill(line_in_set(cache, 1, 0), AccessType::Prefetch, 0, 0, ~WayMask{0});
  cache.access(line_in_set(cache, 0, 0), AccessType::DemandLoad, 1);  // used
  cache.invalidate(line_in_set(cache, 1, 0));                         // unused
  EXPECT_DOUBLE_EQ(cache.stats().prefetch_accuracy(), 0.5);
}

TEST(Cache, InFlightResidualReportedOnceToDemand) {
  SetAssocCache cache(tiny_geom());
  cache.fill(6, AccessType::Prefetch, 0, /*ready_at=*/100, ~WayMask{0});
  const LookupResult first = cache.access(6, AccessType::DemandLoad, 10);
  EXPECT_TRUE(first.hit);
  EXPECT_EQ(first.ready_at, 100u);  // still in flight
  // The first demand waiter absorbed the wait; later demand sees the
  // line resident.
  const LookupResult second = cache.access(6, AccessType::DemandLoad, 11);
  EXPECT_LE(second.ready_at, 11u);
}

TEST(Cache, PrefetchHitDoesNotPromoteLru) {
  SetAssocCache cache(tiny_geom());
  for (std::uint64_t k = 0; k < 4; ++k) {
    cache.fill(line_in_set(cache, 0, k), AccessType::DemandLoad, k, k, ~WayMask{0});
  }
  // Prefetch-probe the oldest line; it must remain the LRU victim.
  cache.access(line_in_set(cache, 0, 0), AccessType::Prefetch, 50);
  const FillResult r =
      cache.fill(line_in_set(cache, 0, 9), AccessType::DemandLoad, 60, 60, ~WayMask{0});
  ASSERT_TRUE(r.evicted_valid);
  EXPECT_EQ(r.evicted_line, line_in_set(cache, 0, 0));
}

TEST(Cache, RefillOfResidentLineKeepsEarliestReady) {
  SetAssocCache cache(tiny_geom());
  cache.fill(8, AccessType::Prefetch, 0, 500, ~WayMask{0});
  cache.fill(8, AccessType::Prefetch, 1, 300, ~WayMask{0});  // faster copy wins
  EXPECT_EQ(cache.access(8, AccessType::DemandLoad, 2).ready_at, 300u);
}

TEST(Cache, FlushInvalidatesEverythingKeepsStats) {
  SetAssocCache cache(tiny_geom());
  cache.fill(1, AccessType::DemandLoad, 0, 0, ~WayMask{0});
  cache.access(1, AccessType::DemandLoad, 1);
  const auto hits = cache.stats().demand_hits;
  cache.flush();
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.stats().demand_hits, hits);
}

TEST(Cache, OwnerTracking) {
  SetAssocCache cache(tiny_geom());
  cache.fill(1, AccessType::DemandLoad, 0, 0, ~WayMask{0}, /*owner=*/2);
  cache.fill(2, AccessType::DemandLoad, 0, 0, ~WayMask{0}, /*owner=*/2);
  cache.fill(3, AccessType::DemandLoad, 0, 0, ~WayMask{0}, /*owner=*/5);
  const auto occ = cache.occupancy_by_owner(8);
  EXPECT_EQ(occ[2], 2u);
  EXPECT_EQ(occ[5], 1u);
  EXPECT_EQ(occ[0], 0u);
}

// Pins the stats contract documented on CacheStats: `evictions` counts
// only capacity evictions made by fill(); invalidate() never bumps it,
// but *does* count a never-used prefetched line toward
// `prefetched_lines_evicted_unused` (prefetch accuracy is a property of
// the prefetch, not of how the line left the cache). flush() bumps
// neither.
TEST(Cache, InvalidateCountsUnusedPrefetchButNotEviction) {
  SetAssocCache cache(tiny_geom());

  // Invalidate an unused prefetched line: accuracy penalty, no eviction.
  cache.fill(1, AccessType::Prefetch, 0, 0, ~WayMask{0});
  EXPECT_TRUE(cache.invalidate(1));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().prefetched_lines_evicted_unused, 1u);

  // Invalidate a *used* prefetched line: no accuracy penalty either.
  cache.fill(2, AccessType::Prefetch, 0, 0, ~WayMask{0});
  cache.access(2, AccessType::DemandLoad, 1);
  EXPECT_TRUE(cache.invalidate(2));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().prefetched_lines_evicted_unused, 1u);

  // Invalidate a demand-filled line: neither counter moves.
  cache.fill(3, AccessType::DemandLoad, 0, 0, ~WayMask{0});
  EXPECT_TRUE(cache.invalidate(3));
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().prefetched_lines_evicted_unused, 1u);

  // Missing line: no stats effect, returns false.
  EXPECT_FALSE(cache.invalidate(77));
  EXPECT_EQ(cache.stats().evictions, 0u);

  // flush() wipes lines without touching either counter.
  cache.fill(4, AccessType::Prefetch, 0, 0, ~WayMask{0});
  cache.flush();
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().prefetched_lines_evicted_unused, 1u);

  // Only a capacity eviction from fill() bumps `evictions`.
  for (std::uint64_t k = 0; k < 5; ++k) {
    cache.fill(line_in_set(cache, 0, k), AccessType::DemandLoad, k, k, ~WayMask{0});
  }
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, StatsChannelsSeparate) {
  SetAssocCache cache(tiny_geom());
  cache.access(1, AccessType::DemandLoad, 0);
  cache.access(2, AccessType::Prefetch, 0);
  cache.access(3, AccessType::DemandStore, 0);
  EXPECT_EQ(cache.stats().demand_accesses, 2u);
  EXPECT_EQ(cache.stats().prefetch_accesses, 1u);
  EXPECT_EQ(cache.stats().demand_misses(), 2u);
  EXPECT_EQ(cache.stats().prefetch_misses(), 1u);
}

}  // namespace
}  // namespace cmm::sim
