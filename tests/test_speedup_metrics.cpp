#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/speedup_metrics.hpp"

namespace cmm::analysis {
namespace {

TEST(SpeedupMetrics, HarmonicSpeedupDefinition) {
  // HS = N / sum(alone_i / together_i).
  const std::vector<double> together{1.0, 1.0};
  const std::vector<double> alone{2.0, 4.0};
  EXPECT_DOUBLE_EQ(harmonic_speedup(together, alone), 2.0 / (2.0 + 4.0));
}

TEST(SpeedupMetrics, HarmonicSpeedupIsOneWhenUnimpeded) {
  const std::vector<double> ipc{0.7, 1.3, 2.2};
  EXPECT_DOUBLE_EQ(harmonic_speedup(ipc, ipc), 1.0);
}

TEST(SpeedupMetrics, AnttIsReciprocalOfHs) {
  const std::vector<double> together{0.5, 1.5};
  const std::vector<double> alone{1.0, 2.0};
  const double hs = harmonic_speedup(together, alone);
  EXPECT_DOUBLE_EQ(antt(together, alone), 1.0 / hs);
}

TEST(SpeedupMetrics, HsPenalizesUnfairness) {
  // Same total throughput, one core starved: HS must be lower.
  const std::vector<double> alone{1.0, 1.0};
  const std::vector<double> fair{0.5, 0.5};
  const std::vector<double> unfair{0.9, 0.1};
  EXPECT_GT(harmonic_speedup(fair, alone), harmonic_speedup(unfair, alone));
}

TEST(SpeedupMetrics, WeightedSpeedupDefinition) {
  const std::vector<double> x{2.0, 1.0};
  const std::vector<double> base{1.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_speedup(x, base), 1.5);
  EXPECT_DOUBLE_EQ(weighted_speedup(base, base), 1.0);
}

TEST(SpeedupMetrics, WorstCaseSpeedup) {
  const std::vector<double> x{2.0, 0.4, 1.2};
  const std::vector<double> base{1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(worst_case_speedup(x, base), 0.4);
}

TEST(SpeedupMetrics, DegenerateInputsReturnZero) {
  const std::vector<double> good{1.0};
  const std::vector<double> zero{0.0};
  EXPECT_DOUBLE_EQ(harmonic_speedup({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_speedup(good, zero), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_speedup(zero, good), 0.0);
  EXPECT_DOUBLE_EQ(weighted_speedup(good, zero), 0.0);
  EXPECT_DOUBLE_EQ(worst_case_speedup(good, zero), 0.0);
  const std::vector<double> longer{1.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_speedup(good, longer), 0.0);
}

TEST(SpeedupMetrics, HarmonicMean) {
  const std::vector<double> v{1.0, 3.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(v), 1.5);
  EXPECT_DOUBLE_EQ(harmonic_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{1.0, 0.0}), 0.0);
}

TEST(SpeedupMetrics, HarmonicMeanZeroIpcPinsResultAtZero) {
  // Contract: a dead/quarantined core samples at IPC 0 and pins the
  // harmonic mean at exactly 0 — never NaN or Inf.
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{0.0}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{2.0, 0.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(SpeedupMetrics, HarmonicMeanNegativeValueThrows) {
  // A negative IPC cannot be measured; it is a caller bug and must not
  // be silently folded into the zero case (regression: it used to be).
  EXPECT_THROW(harmonic_mean(std::vector<double>{-1.0}), std::invalid_argument);
  EXPECT_THROW(harmonic_mean(std::vector<double>{1.0, -0.5, 2.0}), std::invalid_argument);
}

TEST(SpeedupMetrics, HarmonicMeanLeqArithmetic) {
  const std::vector<double> v{0.3, 0.9, 2.7, 8.1};
  EXPECT_LE(harmonic_mean(v), mean(v));
}

TEST(SpeedupMetrics, Mean) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

}  // namespace
}  // namespace cmm::analysis
