#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/run_harness.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::obs {
namespace {

// ------------------------------------------------------- Trace handle

/// Counts one event type; everything else falls through to the no-op
/// defaults, which is itself part of the TraceSink contract under test.
class CountingSink final : public TraceSink {
 public:
  void emit(const EpochStart&) override { ++epoch_starts; }
  unsigned epoch_starts = 0;
};

TEST(ObsTrace, DefaultHandleIsOff) {
  const Trace trace;
  EXPECT_FALSE(trace.on());
  EXPECT_EQ(trace.now(), 0u);
  EXPECT_EQ(trace.epoch(), 0u);
  trace.emit(EpochStart{});  // must be a harmless no-op
}

TEST(ObsTrace, NullSinkIsStrippedAtWiringTime) {
  NullSink null;
  const Trace trace(&null);
  EXPECT_FALSE(trace.on());
  trace.emit(EpochStart{});
}

TEST(ObsTrace, EnabledSinkReceivesEventsWithContextStamps) {
  CountingSink sink;
  TraceContext ctx{123, 7};
  const Trace trace(&sink, &ctx);
  ASSERT_TRUE(trace.on());
  EXPECT_EQ(trace.now(), 123u);
  EXPECT_EQ(trace.epoch(), 7u);
  trace.emit(EpochStart{trace.now(), trace.epoch(), 1000, "probe", {}});
  trace.emit(FaultRetry{});  // default no-op override
  EXPECT_EQ(sink.epoch_starts, 1u);

  ctx.now = 456;  // producer advances the shared stamp, handle follows
  EXPECT_EQ(trace.now(), 456u);
}

// -------------------------------------------------- MetricsRegistry

TEST(ObsMetricsRegistry, CountersAccumulateAndDefaultToZero) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("driver.epochs"), 0u);
  reg.count("driver.epochs");
  reg.count("driver.epochs", 4);
  EXPECT_EQ(reg.counter("driver.epochs"), 5u);
  EXPECT_FALSE(reg.empty());
}

TEST(ObsMetricsRegistry, HistogramBucketsIncludingOverflow) {
  MetricsRegistry reg;
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  reg.observe("h", 0.5, bounds);
  reg.observe("h", 2.0, bounds);  // on a bound: counts into that bucket
  reg.observe("h", 9.0, bounds);  // past every bound: overflow bucket
  EXPECT_EQ(reg.json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{"
            "\"h\":{\"bounds\":[1,2,4],\"counts\":[1,1,0,1],\"sum\":11.5,\"count\":3}}}");
}

TEST(ObsMetricsRegistry, FirstHistogramRegistrationWins) {
  MetricsRegistry reg;
  reg.observe("h", 0.5, {1.0, 2.0});
  reg.observe("h", 0.5, {42.0});  // later bounds ignored (Prometheus rule)
  EXPECT_NE(reg.json().find("\"bounds\":[1,2]"), std::string::npos);
}

TEST(ObsMetricsRegistry, MergeAddsCountersAndBucketsGaugesOverwrite) {
  MetricsRegistry a;
  a.count("driver.epochs", 3);
  a.gauge("last_hm_ipc", 0.5);
  a.observe("h", 1.5, {1.0, 2.0});

  MetricsRegistry b;
  b.count("driver.epochs", 2);
  b.count("driver.samples", 7);
  b.gauge("last_hm_ipc", 0.75);
  b.observe("h", 9.0, {1.0, 2.0});

  a.merge(b);
  EXPECT_EQ(a.counter("driver.epochs"), 5u);
  EXPECT_EQ(a.counter("driver.samples"), 7u);
  const std::string json = a.json();
  EXPECT_NE(json.find("\"last_hm_ipc\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[0,1,1]"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":10.5,\"count\":2"), std::string::npos);
}

TEST(ObsMetricsRegistry, JsonIsSortedAndInsertionOrderIndependent) {
  MetricsRegistry a;
  a.count("zeta");
  a.count("alpha");
  MetricsRegistry b;
  b.count("alpha");
  b.count("zeta");
  EXPECT_EQ(a.json(), b.json());
  EXPECT_LT(a.json().find("alpha"), a.json().find("zeta"));

  const MetricsRegistry empty;
  EXPECT_EQ(empty.json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

// ----------------------------------------------------- JsonlTraceSink

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

TEST(ObsJsonlSink, SerializesOneJsonObjectPerLine) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  const std::vector<bool> prefetch{true, false};
  const std::vector<WayMask> masks{15, 3};
  const ConfigView config{&prefetch, &masks};

  sink.emit(EpochStart{10, 0, 1000, "cmm_a", config});
  sink.emit(DetectorVerdict{20, 0, 1, 2.5, 0.75, 3e7, true});
  sink.emit(SampleResult{30, 0, 2, 0.5, config});
  sink.emit(ConfigApplied{40, 1, "final", config});
  sink.emit(DegradationStep{50, 1, "pt_only_fallback", kInvalidCore, 7, "cat \"dead\"\n"});
  sink.emit(FaultRetry{60, 1, 2, 4, "msr write"});
  EXPECT_EQ(sink.events(), 6u);
  sink.flush();

  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_EQ(lines[0],
            "{\"type\":\"epoch_start\",\"t\":10,\"epoch\":0,\"len\":1000,"
            "\"policy\":\"cmm_a\",\"prefetch\":\"10\",\"masks\":[15,3]}");
  EXPECT_EQ(lines[1],
            "{\"type\":\"detector_verdict\",\"t\":20,\"epoch\":0,\"core\":1,"
            "\"pga\":2.5,\"pmr\":0.75,\"ptr\":30000000,\"agg\":true}");
  EXPECT_EQ(lines[2],
            "{\"type\":\"sample_result\",\"t\":30,\"epoch\":0,\"sample\":2,"
            "\"hm_ipc\":0.5,\"prefetch\":\"10\",\"masks\":[15,3]}");
  EXPECT_EQ(lines[3],
            "{\"type\":\"config_applied\",\"t\":40,\"epoch\":1,\"source\":\"final\","
            "\"prefetch\":\"10\",\"masks\":[15,3]}");
  // kInvalidCore serializes as -1; quote and newline are escaped.
  EXPECT_EQ(lines[4],
            "{\"type\":\"degradation_step\",\"t\":50,\"epoch\":1,"
            "\"step\":\"pt_only_fallback\",\"core\":-1,\"detail\":7,"
            "\"note\":\"cat \\\"dead\\\"\\n\"}");
  EXPECT_EQ(lines[5],
            "{\"type\":\"fault_retry\",\"t\":60,\"epoch\":1,\"attempt\":2,"
            "\"backoff\":4,\"what\":\"msr write\"}");
}

TEST(ObsJsonlSink, SerializesServiceModeEvents) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  sink.emit(TenantAttach{10, 2, 1, "lbm", 0.5, 1.25});
  sink.emit(TenantDetach{20, 3, 1, "lbm", 7, 0.75});
  sink.emit(SloBreach{30, 4, 1, "lbm", 0.5, 0.625});
  sink.emit(RecoveryProbe{40, 5, "cat", kInvalidCore, true});
  sink.emit(RecoveryProbe{50, 6, "prefetch", 2, false});
  sink.flush();

  const auto lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0],
            "{\"type\":\"tenant_attach\",\"t\":10,\"epoch\":2,\"core\":1,"
            "\"tenant\":\"lbm\",\"slo\":0.5,\"solo_ipc\":1.25}");
  EXPECT_EQ(lines[1],
            "{\"type\":\"tenant_detach\",\"t\":20,\"epoch\":3,\"core\":1,"
            "\"tenant\":\"lbm\",\"epochs_served\":7,\"mean_ipc\":0.75}");
  EXPECT_EQ(lines[2],
            "{\"type\":\"slo_breach\",\"t\":30,\"epoch\":4,\"core\":1,"
            "\"tenant\":\"lbm\",\"ipc\":0.5,\"floor\":0.625}");
  EXPECT_EQ(lines[3],
            "{\"type\":\"recovery_probe\",\"t\":40,\"epoch\":5,\"axis\":\"cat\","
            "\"core\":-1,\"ok\":true}");
  EXPECT_EQ(lines[4],
            "{\"type\":\"recovery_probe\",\"t\":50,\"epoch\":6,\"axis\":\"prefetch\","
            "\"core\":2,\"ok\":false}");
}

TEST(ObsJsonlSink, FlushEveryEventsBoundsTheBuffer) {
  std::ostringstream out;
  JsonlTraceSink sink(out, /*flush_bytes=*/64 * 1024, /*flush_every_events=*/2);
  sink.emit(FaultRetry{1, 0, 1, 2, "x"});
  EXPECT_TRUE(out.str().empty());  // below both thresholds: buffered
  sink.emit(FaultRetry{2, 0, 1, 2, "x"});
  // The interval flush writes *and* flushes the stream, so a live tail
  // (trace_report.py --follow) sees the bytes without waiting for 64 KiB.
  EXPECT_EQ(split_lines(out.str()).size(), 2u);
  sink.emit(FaultRetry{3, 0, 1, 2, "x"});
  EXPECT_EQ(split_lines(out.str()).size(), 2u);  // next interval not yet hit
}

TEST(ObsJsonlSink, DestructorFlushGuaranteeWithIntervalConfigured) {
  // The flush-on-destruction guarantee holds regardless of where the
  // event count sits relative to the flush interval.
  std::ostringstream out;
  {
    JsonlTraceSink sink(out, 64 * 1024, /*flush_every_events=*/8);
    for (int i = 0; i < 3; ++i) sink.emit(FaultRetry{1, 0, 1, 2, "x"});
  }
  EXPECT_EQ(split_lines(out.str()).size(), 3u);
}

TEST(ObsJsonlSink, BuffersUntilThresholdOrFlush) {
  std::ostringstream out;
  JsonlTraceSink sink(out);  // default 64 KiB threshold
  sink.emit(FaultRetry{1, 0, 1, 2, "x"});
  // Small event stays in the buffer: the sim never blocks on stream
  // I/O mid-epoch.
  EXPECT_TRUE(out.str().empty());
  sink.flush();
  EXPECT_FALSE(out.str().empty());
}

TEST(ObsJsonlSink, DestructorFlushes) {
  std::ostringstream out;
  {
    JsonlTraceSink sink(out);
    sink.emit(FaultRetry{1, 0, 1, 2, "x"});
  }
  EXPECT_EQ(split_lines(out.str()).size(), 1u);
}

TEST(ObsJsonlSink, PathConstructorThrowsWhenUnopenable) {
  EXPECT_THROW(JsonlTraceSink("/nonexistent-dir/trace.jsonl"), std::runtime_error);
}

TEST(ObsJsonlSink, SharedSinkCountsEveryEventAcrossThreads) {
  // One sink shared by a thread pool — not the normal wiring (each
  // driver owns its sink) but the mutex must keep it safe; the TSan
  // preset runs this suite.
  std::ostringstream out;
  JsonlTraceSink sink(out, 128);  // tiny threshold: exercise mid-run writes
  analysis::run_batch(
      64,
      [&](std::size_t i) {
        sink.emit(DegradationStep{static_cast<Cycle>(i), i, "stress", kInvalidCore, i, {}});
      },
      analysis::BatchOptions{4});
  sink.flush();
  EXPECT_EQ(sink.events(), 64u);
  const std::string text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 64);
}

// ------------------------------------------------- determinism suite

analysis::RunParams fast_params() {
  analysis::RunParams p;
  p.machine = sim::MachineConfig::scaled(16);
  p.warmup_cycles = 100'000;
  p.run_cycles = 400'000;
  p.epochs.execution_epoch = 100'000;
  p.epochs.sampling_interval = 10'000;
  return p;
}

std::vector<workloads::WorkloadMix> test_mixes(unsigned count) {
  return workloads::make_mixes(workloads::MixCategory::PrefNoAgg, count,
                               fast_params().machine.num_cores, 3);
}

/// Run one traced mix/policy job and return the raw JSONL bytes.
std::string traced_run(const workloads::WorkloadMix& mix, const std::string& policy_name) {
  std::ostringstream out;
  JsonlTraceSink sink(out);
  analysis::RunParams p = fast_params();
  p.epochs.sink = &sink;
  const auto policy = analysis::make_policy(policy_name, p.detector());
  analysis::run_mix(mix, *policy, p);
  sink.flush();
  return out.str();
}

TEST(ObsDeterminism, TraceBytesIdenticalAcrossRuns) {
  const auto mixes = test_mixes(1);
  const std::string a = traced_run(mixes.front(), "cmm_a");
  const std::string b = traced_run(mixes.front(), "cmm_a");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The run actually exercised the control loop, not just the header.
  EXPECT_NE(a.find("\"type\":\"epoch_start\""), std::string::npos);
  EXPECT_NE(a.find("\"type\":\"detector_verdict\""), std::string::npos);
  EXPECT_NE(a.find("\"type\":\"config_applied\""), std::string::npos);
}

TEST(ObsDeterminism, TraceBytesIdenticalAtAnyThreadCount) {
  const auto mixes = test_mixes(2);
  const std::vector<std::string> policies{"cmm_a", "pt"};
  const auto batch = [&](unsigned threads) {
    std::vector<std::string> traces(mixes.size() * policies.size());
    analysis::run_batch(
        traces.size(),
        [&](std::size_t i) {
          traces[i] = traced_run(mixes[i / policies.size()], policies[i % policies.size()]);
        },
        analysis::BatchOptions{threads});
    return traces;
  };
  const auto serial = batch(1);
  const auto threaded = batch(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty()) << "job " << i;
    EXPECT_EQ(serial[i], threaded[i]) << "job " << i;
  }
}

TEST(ObsDeterminism, SinkChoiceNeverPerturbsResults) {
  const auto mixes = test_mixes(1);
  const auto run_with = [&](TraceSink* sink) {
    analysis::RunParams p = fast_params();
    p.epochs.sink = sink;
    const auto policy = analysis::make_policy("cmm_a", p.detector());
    return analysis::run_mix(mixes.front(), *policy, p);
  };

  const analysis::RunResult plain = run_with(nullptr);
  NullSink null;
  const analysis::RunResult with_null = run_with(&null);
  std::ostringstream out;
  JsonlTraceSink jsonl(out);
  const analysis::RunResult with_jsonl = run_with(&jsonl);

  // NullSink (the compiled-in default) and a live JSONL sink both
  // observe without perturbing: RunResult is bit-identical.
  EXPECT_EQ(plain, with_null);
  EXPECT_EQ(plain, with_jsonl);
  EXPECT_GT(jsonl.events(), 0u);
}

TEST(ObsDeterminism, BatchRegistryIdenticalAtAnyThreadCount) {
  const auto mixes = test_mixes(2);
  const std::vector<std::string> policies{"cmm_a", "pt"};
  const auto registry_at = [&](unsigned threads) {
    MetricsRegistry reg;
    analysis::for_each_mix(mixes, policies, fast_params(), analysis::BatchOptions{threads},
                           nullptr, &reg);
    return reg;
  };
  const MetricsRegistry serial = registry_at(1);
  const MetricsRegistry threaded = registry_at(4);
  EXPECT_EQ(serial.json(), threaded.json());
  EXPECT_GT(serial.counter("driver.epochs"), 0u);
  EXPECT_GT(serial.counter("driver.samples"), 0u);
  // Exactly one winner per mix.
  std::uint64_t wins = 0;
  for (const auto& name : policies) wins += serial.counter("win." + name);
  EXPECT_EQ(wins, mixes.size());
}

}  // namespace
}  // namespace cmm::obs
