// SIMD kernel differential suite. Two layers:
//
//  1. Kernel level: find_tag / argmin_tick on randomized inputs, every
//     backend this host supports vs the scalar reference — including
//     sentinel-heavy tag arrays, duplicate tags (lowest-way-wins),
//     duplicate ticks, sparse/dense/straddling masks, and every
//     associativity the repo's geometries use (1..32, covering the
//     vector-block tails).
//  2. Cache level: the test_cache_soa randomized op stream (accesses,
//     CAT-masked fills, invalidates, flushes) replayed through a fresh
//     SetAssocCache once per backend; result streams, stats, and final
//     residency must be bit-identical to the scalar replay.
//
// Plus the forced-fallback contract: CI runners with AVX2 must still be
// able to pin the scalar path (force_backend / CMM_SIMD_FORCE), so the
// portable loop never rots.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/bitmask.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "sim/cache.hpp"

namespace cmm::simd {
namespace {

/// Restore the startup backend whatever a test does.
struct BackendGuard {
  ~BackendGuard() { reset_backend(); }
};

std::vector<Backend> supported_backends() {
  std::vector<Backend> out;
  for (const Backend b : {Backend::Scalar, Backend::Sse2, Backend::Avx2, Backend::Neon}) {
    if (backend_supported(b)) out.push_back(b);
  }
  return out;
}

TEST(SimdDispatch, ScalarAlwaysSupportedAndForceable) {
  BackendGuard guard;
  EXPECT_TRUE(backend_supported(Backend::Scalar));
  EXPECT_TRUE(force_backend(Backend::Scalar));
  EXPECT_EQ(active_backend(), Backend::Scalar);
  EXPECT_STREQ(backend_name(active_backend()), "scalar");
}

TEST(SimdDispatch, UnsupportedBackendRefusedAndStateKept) {
  BackendGuard guard;
  ASSERT_TRUE(force_backend(Backend::Scalar));
#if !CMM_SIMD_NEON
  EXPECT_FALSE(force_backend(Backend::Neon));
#else
  EXPECT_FALSE(force_backend(Backend::Avx2));
#endif
  EXPECT_EQ(active_backend(), Backend::Scalar);  // failed force changes nothing
}

TEST(SimdDispatch, EnvForceScalarHonoredByReset) {
  BackendGuard guard;
  ASSERT_EQ(setenv("CMM_SIMD_FORCE", "scalar", 1), 0);
  reset_backend();
  EXPECT_EQ(active_backend(), Backend::Scalar);
  ASSERT_EQ(setenv("CMM_SIMD_FORCE", "auto", 1), 0);
  reset_backend();
  EXPECT_TRUE(backend_supported(active_backend()));
  ASSERT_EQ(unsetenv("CMM_SIMD_FORCE"), 0);
}

// ---------------------------------------------------------------- kernels

TEST(SimdKernels, FindTagMatchesScalarEverywhere) {
  BackendGuard guard;
  constexpr Addr kSentinel = ~Addr{0};
  Rng rng(0x51DD);
  for (const std::uint32_t ways : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 20u, 31u, 32u}) {
    for (int round = 0; round < 400; ++round) {
      std::vector<Addr> tags(ways);
      const std::uint64_t pool = 1 + rng.next_below(ways * 2);
      for (auto& t : tags) {
        // Dense collisions + sentinel-heavy arrays (empty ways are the
        // common case in a warming cache).
        t = rng.next_below(10) < 3 ? kSentinel : rng.next_below(pool);
      }
      const Addr needle = rng.next_below(10) < 8 ? Addr{rng.next_below(pool)} : kSentinel - 1;
      const int want = detail::find_tag_scalar(tags.data(), ways, needle);
      for (const Backend b : supported_backends()) {
        ASSERT_TRUE(force_backend(b));
        ASSERT_EQ(find_tag(tags.data(), ways, needle), want)
            << backend_name(b) << " ways=" << ways << " round=" << round;
      }
    }
  }
}

TEST(SimdKernels, ArgminTickMatchesScalarEverywhere) {
  BackendGuard guard;
  Rng rng(0xA55);
  for (const std::uint32_t ways : {1u, 2u, 4u, 8u, 16u, 20u, 31u, 32u}) {
    for (int round = 0; round < 400; ++round) {
      std::vector<std::uint64_t> ticks(ways);
      // Narrow range forces duplicate minima (tie-break coverage);
      // occasional huge values cross the signed-compare bias boundary.
      const std::uint64_t range = round % 3 == 0 ? 4 : 1'000'000;
      for (auto& t : ticks) {
        t = rng.next_below(range);
        if (rng.next_below(20) == 0) t |= 0x8000000000000000ULL;
      }
      WayMask mask = static_cast<WayMask>(rng.next()) & full_mask(ways);
      if (mask == 0) mask = WayMask{1} << rng.next_below(ways);
      const std::uint32_t want = detail::argmin_tick_scalar(ticks.data(), mask);
      for (const Backend b : supported_backends()) {
        ASSERT_TRUE(force_backend(b));
        ASSERT_EQ(argmin_tick(ticks.data(), mask, ways), want)
            << backend_name(b) << " ways=" << ways << " mask=" << mask << " round=" << round;
      }
#if CMM_SIMD_X86
      // The dense-mask dispatch gate skips AVX2 for sparse masks; hit
      // the AVX2 kernel directly so sparse masks cover it too.
      if (backend_supported(Backend::Avx2)) {
        ASSERT_EQ(detail::argmin_tick_avx2(ticks.data(), mask, ways), want)
            << "avx2-direct ways=" << ways << " mask=" << mask;
      }
#endif
    }
  }
}

}  // namespace
}  // namespace cmm::simd

namespace cmm::sim {
namespace {

using simd::Backend;

/// Everything observable from one randomized op stream: per-op results
/// are folded into a running digest (so a divergence fails fast at the
/// op index), final stats and residency are kept whole.
struct StreamTrace {
  std::vector<std::uint64_t> digest;  // one entry per op
  CacheStats stats;
  std::vector<std::uint64_t> occupancy;
  std::vector<bool> residency;

  bool operator==(const StreamTrace&) const = default;
};

std::uint64_t fold(const LookupResult& r) {
  return (r.hit ? 1u : 0u) | (r.first_use_of_prefetch ? 2u : 0u) | (r.ready_at << 2);
}

std::uint64_t fold(const FillResult& r) {
  return (r.evicted_valid ? 1u : 0u) | (r.evicted_was_prefetched_unused ? 2u : 0u) |
         (r.evicted_dirty ? 4u : 0u) | (static_cast<std::uint64_t>(r.evicted_owner) << 3) |
         (r.evicted_line << 20);
}

StreamTrace run_stream(const CacheGeometry& geom, std::uint64_t ops, std::uint64_t seed) {
  SetAssocCache cache(geom);
  Rng rng(seed);
  constexpr unsigned kCores = 8;
  const std::uint32_t ways = geom.ways;
  const std::uint64_t pool = geom.num_lines() * 3 + 1;

  std::vector<WayMask> masks{~WayMask{0}, full_mask(ways)};
  for (unsigned lo = 0; lo < ways; lo += 2) {
    masks.push_back(contiguous_mask(lo, 2));
    masks.push_back(contiguous_mask(lo, ways / 2 + 1));
  }
  masks.push_back(contiguous_mask(ways - 1, 4));
  masks.push_back(0x5);

  StreamTrace trace;
  trace.digest.reserve(ops);
  Cycle now = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    now += rng.next_below(3);
    const Addr line = rng.next_below(pool);
    const auto roll = rng.next_below(100);
    if (roll < 45) {
      const AccessType type = roll < 25   ? AccessType::DemandLoad
                              : roll < 35 ? AccessType::DemandStore
                                          : AccessType::Prefetch;
      trace.digest.push_back(fold(cache.access(line, type, now)));
    } else if (roll < 90) {
      const AccessType type = roll < 65   ? AccessType::DemandLoad
                              : roll < 70 ? AccessType::DemandStore
                                          : AccessType::Prefetch;
      const WayMask mask = masks[rng.next_below(masks.size())];
      const auto owner = static_cast<CoreId>(rng.next_below(kCores + 1));
      const CoreId o = owner == kCores ? kInvalidCore : owner;
      trace.digest.push_back(fold(cache.fill(line, type, now, now + rng.next_below(200), mask, o)));
    } else if (roll < 97) {
      trace.digest.push_back(cache.invalidate(line) ? 1 : 0);
    } else if (roll < 98) {
      cache.flush();
      trace.digest.push_back(0);
    } else {
      const auto set = static_cast<std::uint32_t>(rng.next_below(cache.num_sets()));
      const WayMask mask = masks[rng.next_below(masks.size())];
      trace.digest.push_back(cache.set_occupancy_in_mask(set, mask));
    }
  }

  trace.stats = cache.stats();
  trace.occupancy = cache.occupancy_by_owner(kCores);
  trace.residency.reserve(pool);
  for (Addr line = 0; line < pool; ++line) trace.residency.push_back(cache.contains(line));
  return trace;
}

bool same_stats(const CacheStats& a, const CacheStats& b) {
  return a.demand_accesses == b.demand_accesses && a.demand_hits == b.demand_hits &&
         a.prefetch_accesses == b.prefetch_accesses && a.prefetch_hits == b.prefetch_hits &&
         a.prefetched_lines_used == b.prefetched_lines_used &&
         a.prefetched_lines_evicted_unused == b.prefetched_lines_evicted_unused &&
         a.evictions == b.evictions;
}

void expect_backend_equivalence(const CacheGeometry& geom, std::uint64_t ops,
                                std::uint64_t seed) {
  simd::BackendGuard guard;
  ASSERT_TRUE(simd::force_backend(Backend::Scalar));
  const StreamTrace want = run_stream(geom, ops, seed);
  for (const Backend b : simd::supported_backends()) {
    if (b == Backend::Scalar) continue;
    ASSERT_TRUE(simd::force_backend(b));
    const StreamTrace got = run_stream(geom, ops, seed);
    ASSERT_EQ(got.digest.size(), want.digest.size());
    for (std::size_t i = 0; i < want.digest.size(); ++i) {
      ASSERT_EQ(got.digest[i], want.digest[i])
          << simd::backend_name(b) << " diverged from scalar at op " << i;
    }
    EXPECT_TRUE(same_stats(got.stats, want.stats)) << simd::backend_name(b);
    EXPECT_EQ(got.occupancy, want.occupancy) << simd::backend_name(b);
    EXPECT_EQ(got.residency, want.residency) << simd::backend_name(b);
  }
}

// The headline run: 1M randomized ops on the LLC geometry (20 ways —
// vector blocks + scalar tail, the CAT-masked victim path).
TEST(SimdCacheDifferential, MillionOpsLlcGeometry) {
  expect_backend_equivalence(CacheGeometry{64 * 20 * 64, 20, 64}, 1'000'000, 0xC0FFEE);
}

TEST(SimdCacheDifferential, L1Geometry) {
  expect_backend_equivalence(CacheGeometry{32 * 8 * 64, 8, 64}, 200'000, 0xBADF00D);
}

TEST(SimdCacheDifferential, SingleSet) {
  expect_backend_equivalence(CacheGeometry{1 * 16 * 64, 16, 64}, 100'000, 7);
}

TEST(SimdCacheDifferential, SingleWay) {
  expect_backend_equivalence(CacheGeometry{16 * 1 * 64, 1, 64}, 100'000, 99);
}

TEST(SimdCacheDifferential, MaxWays) {
  expect_backend_equivalence(CacheGeometry{8 * 32 * 64, 32, 64}, 100'000, 31);
}

}  // namespace
}  // namespace cmm::sim
