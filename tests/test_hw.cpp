#include <gtest/gtest.h>

#include "hw/cat_controller.hpp"
#include "hw/mba_controller.hpp"
#include "hw/msr_device.hpp"
#include "hw/pmu_reader.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::hw {
namespace {

sim::MachineConfig cfg() {
  auto c = sim::MachineConfig::scaled(16);
  c.num_cores = 4;
  return c;
}

TEST(MsrDevice, ReadWrite0x1A4) {
  sim::MulticoreSystem sys(cfg());
  SimMsrDevice msr(sys);
  EXPECT_EQ(msr.read(1, sim::kMsrMiscFeatureControl), 0u);
  msr.write(1, sim::kMsrMiscFeatureControl, 0xF);
  EXPECT_EQ(msr.read(1, sim::kMsrMiscFeatureControl), 0xFu);
  EXPECT_EQ(msr.read(0, sim::kMsrMiscFeatureControl), 0u);  // per-core
}

TEST(MsrDevice, UnmodelledMsrFaults) {
  sim::MulticoreSystem sys(cfg());
  SimMsrDevice msr(sys);
  EXPECT_THROW(msr.read(0, 0x10), std::invalid_argument);
  EXPECT_THROW(msr.write(0, 0x10, 1), std::invalid_argument);
}

TEST(PrefetchControl, PerCoreAndPerPrefetcher) {
  sim::MulticoreSystem sys(cfg());
  SimMsrDevice msr(sys);
  PrefetchControl ctl(msr);

  ctl.set_core_prefetchers(2, false);
  EXPECT_FALSE(ctl.core_prefetchers_on(2));
  EXPECT_TRUE(ctl.core_prefetchers_on(0));

  ctl.set_prefetcher(0, sim::PrefetcherKind::L2Streamer, false);
  EXPECT_FALSE(ctl.prefetcher_on(0, sim::PrefetcherKind::L2Streamer));
  EXPECT_TRUE(ctl.prefetcher_on(0, sim::PrefetcherKind::L2Adjacent));

  ctl.enable_all();
  for (CoreId c = 0; c < 4; ++c) EXPECT_TRUE(ctl.core_prefetchers_on(c));
}

TEST(CatController, ApplyAndReadBack) {
  sim::MulticoreSystem sys(cfg());
  SimCatController cat(sys);
  const std::vector<WayMask> masks{contiguous_mask(0, 3), full_mask(20), contiguous_mask(0, 3),
                                   full_mask(20)};
  cat.apply(masks);
  EXPECT_EQ(cat.current(), masks);
  EXPECT_EQ(sys.cat().core_mask(0), contiguous_mask(0, 3));
}

TEST(CatController, SizeMismatchThrows) {
  sim::MulticoreSystem sys(cfg());
  SimCatController cat(sys);
  EXPECT_THROW(cat.apply({full_mask(20)}), std::invalid_argument);
}

TEST(CatController, InvalidMaskRejected) {
  sim::MulticoreSystem sys(cfg());
  SimCatController cat(sys);
  EXPECT_THROW(cat.apply({0b101u, full_mask(20), full_mask(20), full_mask(20)}),
               std::invalid_argument);
}

TEST(CatController, ResetRestoresFullMasks) {
  sim::MulticoreSystem sys(cfg());
  SimCatController cat(sys);
  cat.apply({contiguous_mask(0, 2), contiguous_mask(0, 2), full_mask(20), full_mask(20)});
  cat.reset();
  for (const WayMask m : cat.current()) EXPECT_EQ(m, full_mask(20));
}

TEST(MbaController, ApplyAndReadBack) {
  sim::MulticoreSystem sys(cfg());
  SimMbaController mba(sys);
  EXPECT_EQ(mba.num_cores(), 4u);
  EXPECT_EQ(mba.num_levels(), sim::MemoryController::kNumThrottleLevels);

  const std::vector<std::uint8_t> levels{0, 1, 3, 0};
  mba.apply(levels);
  EXPECT_EQ(mba.current(), levels);
  // Levels land in the sim memory controller's delay registers.
  EXPECT_EQ(sys.memory().throttle_level(1), 1u);
  EXPECT_EQ(sys.memory().throttle_level(2), 3u);
  EXPECT_FALSE(sys.memory().unthrottled());
}

TEST(MbaController, SizeMismatchThrows) {
  sim::MulticoreSystem sys(cfg());
  SimMbaController mba(sys);
  EXPECT_THROW(mba.apply({1, 1}), std::invalid_argument);
}

TEST(MbaController, ResetClearsAllRegulation) {
  sim::MulticoreSystem sys(cfg());
  SimMbaController mba(sys);
  mba.apply({2, 2, 2, 2});
  mba.reset();
  EXPECT_EQ(mba.current(), (std::vector<std::uint8_t>(4, 0)));
  EXPECT_TRUE(sys.memory().unthrottled());
}

TEST(MbaController, MultiDomainRoutesToOwningController) {
  // 2 domains x 4 cores: core 5's register lives on domain 1's memory
  // controller; domain 0's stays untouched.
  sim::MulticoreSystem sys(sim::MachineConfig::fleet(2, 4));
  SimMbaController mba(sys);
  std::vector<std::uint8_t> levels(8, 0);
  levels[1] = 2;
  levels[5] = 3;
  mba.apply(levels);
  EXPECT_EQ(sys.memory(0).throttle_level(1), 2u);
  EXPECT_EQ(sys.memory(1).throttle_level(5), 3u);
  EXPECT_EQ(sys.memory(1).throttle_level(1), 0u);  // domain 1 never saw core 1's level
  EXPECT_EQ(mba.current(), levels);
  mba.reset();
  EXPECT_TRUE(sys.memory(0).unthrottled());
  EXPECT_TRUE(sys.memory(1).unthrottled());
}

TEST(PmuReader, SnapshotAndDelta) {
  sim::MulticoreSystem sys(cfg());
  for (CoreId c = 0; c < 4; ++c)
    sys.set_op_source(c, workloads::make_op_source("gobmk", sys.config(), c, c));
  SimPmuReader pmu(sys);
  const auto before = pmu.read_all();
  sys.run(20'000);
  const auto after = pmu.read_all();
  const auto delta = pmu_delta(after, before);
  ASSERT_EQ(delta.size(), 4u);
  for (const auto& d : delta) {
    EXPECT_GT(d.instructions, 0u);
    EXPECT_GE(d.cycles, 20'000u);
  }
}

TEST(PmuReader, DeltaSaturatesAndFlagsWrappedCounters) {
  // Regression: a counter that reads lower than the earlier snapshot
  // (wrap mid-interval) must saturate to zero and set the per-core
  // flag, never produce a huge unsigned-underflow delta.
  std::vector<sim::PmuCounters> before(2);
  std::vector<sim::PmuCounters> after(2);
  before[0].cycles = 1'000;
  before[0].instructions = 500;
  after[0].cycles = 10;  // wrapped
  after[0].instructions = 600;
  before[1].cycles = 100;
  after[1].cycles = 250;

  std::vector<bool> wrapped;
  const auto d = pmu_delta(after, before, &wrapped);
  EXPECT_EQ(d[0].cycles, 0u);           // saturated, not 2^64 - 990
  EXPECT_EQ(d[0].instructions, 100u);   // monotone fields stay exact
  EXPECT_EQ(d[1].cycles, 150u);
  ASSERT_EQ(wrapped.size(), 2u);
  EXPECT_TRUE(wrapped[0]);
  EXPECT_FALSE(wrapped[1]);
}

TEST(PmuReader, DeltaSizeMismatchThrows) {
  std::vector<sim::PmuCounters> a(2);
  std::vector<sim::PmuCounters> b(3);
  EXPECT_THROW(pmu_delta(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace cmm::hw
