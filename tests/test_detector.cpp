#include <gtest/gtest.h>

#include <limits>

#include "core/detector.hpp"

namespace cmm::core {
namespace {

CoreMetrics core_with(double pga, double pmr, double ptr) {
  CoreMetrics m;
  m.pga = pga;
  m.l2_pmr = pmr;
  m.l2_ptr = ptr;
  return m;
}

DetectorConfig cfg() {
  DetectorConfig c;
  c.pga_rel_mean = 0.4;
  c.pga_floor = 1.0;
  c.pmr_threshold = 0.7;
  c.ptr_threshold_per_sec = 20e6;
  return c;
}

TEST(Detector, FlagsHighPgaHighPmrHighPtr) {
  const std::vector<CoreMetrics> metrics{
      core_with(8.0, 0.95, 150e6),   // aggressive stream
      core_with(0.2, 0.5, 1e6),      // quiet
      core_with(0.1, 0.2, 0.1e6),    // quiet
      core_with(6.0, 0.9, 120e6),    // aggressive
  };
  const auto agg = detect_aggressive(metrics, cfg());
  EXPECT_EQ(agg, (std::vector<CoreId>{0, 3}));
}

TEST(Detector, PgaBelowMeanFiltered) {
  // Paper step 1: PGA must exceed (a fraction of) the cross-core mean.
  const std::vector<CoreMetrics> metrics{
      core_with(16.0, 0.95, 150e6),
      core_with(16.0, 0.95, 150e6),
      core_with(1.1, 0.95, 150e6),  // above floor but way below mean
      core_with(16.0, 0.95, 150e6),
  };
  const auto agg = detect_aggressive(metrics, cfg());
  EXPECT_EQ(agg, (std::vector<CoreId>{0, 1, 3}));
}

TEST(Detector, PmrFilterExcludesL2LocalPrefetching) {
  // Paper step 2: cores whose prefetches mostly hit L2 (namd-like,
  // streaming within an L2-resident set) are not aggressive.
  const std::vector<CoreMetrics> metrics{
      core_with(8.0, 0.1, 150e6),  // prefetches absorbed by L2
      core_with(8.0, 0.9, 150e6),
  };
  const auto agg = detect_aggressive(metrics, cfg());
  EXPECT_EQ(agg, (std::vector<CoreId>{1}));
}

TEST(Detector, PtrGateExcludesLowPressure) {
  // Paper step 3: prefetch pressure on the LLC must be real.
  const std::vector<CoreMetrics> metrics{
      core_with(8.0, 0.9, 5e6),    // trickle
      core_with(8.0, 0.9, 100e6),
  };
  const auto agg = detect_aggressive(metrics, cfg());
  EXPECT_EQ(agg, (std::vector<CoreId>{1}));
}

TEST(Detector, QuietMachineYieldsEmptySet) {
  const std::vector<CoreMetrics> metrics(8, core_with(0.05, 0.3, 0.5e6));
  EXPECT_TRUE(detect_aggressive(metrics, cfg()).empty());
  EXPECT_TRUE(detect_aggressive({}, cfg()).empty());
}

TEST(Detector, FloorBlocksAdjacentOnlyChasers) {
  // A pointer chaser whose only prefetch is the buddy line has PGA
  // ~0.5: never aggressive, regardless of the mean.
  const std::vector<CoreMetrics> metrics{
      core_with(0.5, 0.95, 40e6),
      core_with(0.6, 0.95, 40e6),
  };
  EXPECT_TRUE(detect_aggressive(metrics, cfg()).empty());
}

// Regression: the steps were written as `!(metric < threshold)`, which
// a NaN metric (0/0 from a zeroed, quarantined, or idle-core sample)
// passed — a core that executed nothing could be flagged aggressive and
// dragged into a partition. NaN must fail every step.
TEST(Detector, NanMetricsAreNotAggressive) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<CoreMetrics> metrics{
      core_with(nan, nan, nan),       // fully zeroed sample
      core_with(nan, 0.95, 150e6),    // NaN PGA
      core_with(8.0, nan, 150e6),     // NaN PMR
      core_with(8.0, 0.95, nan),      // NaN PTR
      core_with(8.0, 0.95, 150e6),    // genuinely aggressive
  };
  // NaN in one core's PGA poisons the cross-core mean, so even the
  // healthy core is (conservatively) not flagged.
  EXPECT_TRUE(detect_aggressive(metrics, cfg()).empty());

  // With ordered metrics everywhere, only the per-core NaNs filter.
  const std::vector<CoreMetrics> ordered{
      core_with(8.0, nan, 150e6),
      core_with(8.0, 0.95, nan),
      core_with(8.0, 0.95, 150e6),
  };
  EXPECT_EQ(detect_aggressive(ordered, cfg()), (std::vector<CoreId>{2}));
}

TEST(ClassifyFriendly, SpeedupThreshold) {
  const std::vector<CoreId> agg{1, 3};
  const std::vector<double> ipc_on{1.0, 2.0, 1.0, 0.55};
  const std::vector<double> ipc_off{1.0, 1.0, 1.0, 0.5};
  DetectorConfig c = cfg();
  c.friendly_speedup = 1.5;
  const auto friendly = classify_friendly(agg, ipc_on, ipc_off, c);
  ASSERT_EQ(friendly.size(), 2u);
  EXPECT_TRUE(friendly[0]);   // core 1: 2.0x
  EXPECT_FALSE(friendly[1]);  // core 3: 1.1x
}

TEST(ClassifyFriendly, ZeroOffIpcHandled) {
  const std::vector<CoreId> agg{0};
  const auto friendly = classify_friendly(agg, {1.0}, {0.0}, cfg());
  EXPECT_TRUE(friendly[0]);  // ran only with prefetching on
}

TEST(ClassifyFriendly, ExactThresholdCountsFriendly) {
  DetectorConfig c = cfg();
  c.friendly_speedup = 1.5;
  const auto friendly = classify_friendly({0}, {1.5}, {1.0}, c);
  EXPECT_TRUE(friendly[0]);
}

}  // namespace
}  // namespace cmm::core
