// Hierarchical CMM: live cross-domain tenant migration. The claims
// under test, bottom-up:
//
//  - Sim layer: export_tenant / attach_core_stream transplants the op
//    stream whole — buffered-but-unconsumed ops, traits, sub-cycle
//    phase — so a migrated tenant neither skips nor replays work, and
//    PMU counters stay monotonic across the move.
//  - BandwidthLedger: slot-table semantics (commit/release/move) and
//    the extra-first ascending-slot summation order.
//  - FleetCoordinator: pure function of telemetry (repeat-identical),
//    strict-improvement acceptance, per-domain bandwidth feasibility,
//    cooldown hysteresis against ping-pong, per-round budget.
//  - Fleet runner: a hierarchical run that accepts no migrations is
//    bit-identical to the flat runner on the same schedule; a
//    pathological placement triggers real migrations; the whole thing
//    is thread-count invariant and repeat-identical.
//  - ServiceDriver: admission drawn on a coordinator-shared ledger
//    sees fleet-wide committed demand.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/bandwidth_ledger.hpp"
#include "analysis/fleet.hpp"
#include "analysis/fleet_coordinator.hpp"
#include "analysis/run_harness.hpp"
#include "service/service_driver.hpp"
#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::analysis {
namespace {

// ------------------------------------------------------ sim layer

sim::MachineConfig small_machine(unsigned cores) {
  sim::MachineConfig c = sim::MachineConfig::scaled(32);
  c.num_cores = cores;
  return c;
}

void expect_stream_equal(const sim::OpStreamState& a, const sim::OpStreamState& b) {
  EXPECT_EQ(a.source.get(), b.source.get());  // same stream object, not a copy
  EXPECT_EQ(a.pos, b.pos);
  EXPECT_EQ(a.len, b.len);
  EXPECT_EQ(a.frac, b.frac);
  EXPECT_EQ(a.traits.base_cpi, b.traits.base_cpi);
  EXPECT_EQ(a.traits.mlp, b.traits.mlp);
  for (std::size_t i = a.pos; i < a.len; ++i) {
    EXPECT_EQ(a.batch[i].instructions, b.batch[i].instructions) << "op " << i;
    EXPECT_EQ(a.batch[i].has_mem, b.batch[i].has_mem) << "op " << i;
    EXPECT_EQ(a.batch[i].mem.addr, b.batch[i].mem.addr) << "op " << i;
  }
}

TEST(SimMigration, SwapTransplantsBufferedOpsExactly) {
  sim::MulticoreSystem sys(small_machine(2));
  sys.set_op_source(0, workloads::make_op_source("lbm", sys.config(), 0, 7));
  sys.set_op_source(1, workloads::make_op_source("povray", sys.config(), 1, 8));
  sys.run(30'000);

  const sim::OpStreamState s0 = sys.export_tenant(0);
  const sim::OpStreamState s1 = sys.export_tenant(1);
  // The test must exercise a non-empty buffer, otherwise it could not
  // distinguish a stream transplant from the set_op_source path (which
  // drops buffered ops). Both sources batch 64 ops at a time, so after
  // an odd cycle count at least one core is mid-batch.
  ASSERT_TRUE(s0.len > s0.pos || s1.len > s1.pos);

  sys.swap_tenants(0, 1);
  // Stream state crossed over bit-for-bit: no skipped, no replayed ops.
  expect_stream_equal(sys.export_tenant(0), s1);
  expect_stream_equal(sys.export_tenant(1), s0);
  EXPECT_FALSE(sys.core_idle(0));
  EXPECT_FALSE(sys.core_idle(1));
}

TEST(SimMigration, PmuSurvivesMigrationMonotonically) {
  sim::MulticoreSystem sys(small_machine(2));
  sys.set_op_source(0, workloads::make_op_source("milc", sys.config(), 0, 7));
  sys.set_op_source(1, workloads::make_op_source("gobmk", sys.config(), 1, 8));
  sys.run(50'000);
  const auto before = sys.pmu().snapshot();
  ASSERT_GT(before[0].instructions, 0u);

  sys.swap_tenants(0, 1);
  // The PMU is per-core, not per-tenant: counters are never reset by a
  // migration (history stays attributed to the core, like hardware).
  EXPECT_EQ(sys.pmu().snapshot(), before);

  sys.run(50'000);
  for (CoreId c = 0; c < 2; ++c) {
    const auto delta = sys.pmu().core(c).delta_since(before[c]);
    EXPECT_GT(delta.cycles, 0u) << "core " << c;
    EXPECT_GT(delta.instructions, 0u) << "core " << c << " stopped retiring after migration";
  }
}

TEST(SimMigration, MigratedCoreRestartsCold) {
  sim::MulticoreSystem sys(small_machine(2));
  sys.set_op_source(0, workloads::make_op_source("lbm", sys.config(), 0, 7));
  sys.set_op_source(1, workloads::make_op_source("povray", sys.config(), 1, 8));
  sys.run(200'000);  // lbm builds an LLC footprint
  ASSERT_GT(sys.llc().occupancy_by_owner(2)[0], 0u);

  sys.swap_tenants(0, 1);
  // Migration = hotplug semantics: the departing tenant's LLC lines
  // are invalidated (its destination domain starts cold; here both
  // directions share the one LLC, so both footprints drop).
  const auto occ = sys.llc().occupancy_by_owner(2);
  EXPECT_EQ(occ[0], 0u);
  EXPECT_EQ(occ[1], 0u);
}

// ------------------------------------------------ bandwidth ledger

TEST(BandwidthLedger, SlotTableAccounting) {
  BandwidthLedger ledger(/*domain_peak_gbs=*/10.0, /*domains=*/2, /*slots=*/4);
  EXPECT_EQ(ledger.total_peak_gbs(), 20.0);
  EXPECT_EQ(ledger.projected(), 0.0);

  ledger.commit(0, 0, 3.0);
  ledger.commit(2, 1, 4.0);
  EXPECT_EQ(ledger.projected(), 7.0);
  EXPECT_EQ(ledger.projected(1.5), 8.5);
  EXPECT_EQ(ledger.domain_load(0), 3.0);
  EXPECT_EQ(ledger.domain_load(1), 4.0);

  // Re-commit overwrites; release frees; move re-homes the demand.
  ledger.commit(0, 0, 5.0);
  EXPECT_EQ(ledger.domain_load(0), 5.0);
  ledger.move(2, 3, 0);
  EXPECT_EQ(ledger.domain_load(1), 0.0);
  EXPECT_EQ(ledger.domain_load(0), 9.0);
  ledger.release(0);
  EXPECT_EQ(ledger.projected(), 4.0);

  EXPECT_TRUE(ledger.admissible(5.0, 0.5));    // 9 <= 10
  EXPECT_FALSE(ledger.admissible(7.0, 0.5));   // 11 > 10
  EXPECT_TRUE(ledger.domain_admissible(0, 5.0, 0.95));
  EXPECT_FALSE(ledger.domain_admissible(0, 6.0, 0.95));
}

// ---------------------------------------------- coordinator (unit)

sim::PmuCounters counters(std::uint64_t cycles, std::uint64_t instr, std::uint64_t bytes) {
  sim::PmuCounters c;
  c.cycles = cycles;
  c.instructions = instr;
  c.dram_demand_bytes = bytes;
  return c;
}

/// Telemetry builder at freq 1 GHz (gbs = bytes/cycles). Counters are
/// cumulative, so callers pass running totals round over round.
std::vector<DomainTelemetry> telemetry(std::uint32_t domains, std::uint32_t cpd,
                                       const std::vector<sim::PmuCounters>& slots) {
  std::vector<DomainTelemetry> fleet(domains);
  for (std::uint32_t d = 0; d < domains; ++d) {
    fleet[d].summary.epoch = 1;
    fleet[d].summary.now = 1000;
    for (std::uint32_t c = 0; c < cpd; ++c) {
      fleet[d].summary.exec_counters.push_back(slots[d * cpd + c]);
      fleet[d].running.push_back("t" + std::to_string(d * cpd + c));
    }
  }
  return fleet;
}

CoordinatorConfig coord_cfg(std::uint32_t domains, std::uint32_t cpd) {
  CoordinatorConfig cfg;
  cfg.domains = domains;
  cfg.cores_per_domain = cpd;
  cfg.domain_peak_gbs = 10.0;
  cfg.freq_ghz = 1.0;
  return cfg;
}

/// Cumulative counters for a 2x2 fleet where domain 0 holds two
/// contended streams (5 GB/s each, IPC crushed to 0.2 by the shared
/// queue) and domain 1 two light tenants (0.3 GB/s, IPC 0.8).
/// Splitting the heavy pair across domains is a clear predicted win.
std::vector<sim::PmuCounters> skewed_slots(std::uint64_t scale = 1) {
  return {counters(1000 * scale, 200 * scale, 5000 * scale),
          counters(1000 * scale, 200 * scale, 5000 * scale),
          counters(1000 * scale, 800 * scale, 300 * scale),
          counters(1000 * scale, 800 * scale, 300 * scale)};
}

TEST(FleetCoordinator, SkewedLoadTriggersAcceptedSwap) {
  FleetCoordinator coord(coord_cfg(2, 2));
  const auto records = coord.plan_round(telemetry(2, 2, skewed_slots()));
  ASSERT_EQ(records.size(), 1u);
  const MigrationRecord& rec = records.front();
  EXPECT_TRUE(rec.accepted);
  EXPECT_EQ(rec.reason, "accepted");
  EXPECT_GE(rec.predicted_gain, 0.005);
  EXPECT_LT(rec.from_core, 2u);  // out of the overloaded domain 0
  EXPECT_GE(rec.to_core, 2u);    // into the idle domain 1
  EXPECT_EQ(coord.accepted(), 1u);
  EXPECT_EQ(coord.rounds(), 1u);
  // The ledger carries the post-swap homes: measured demand moved, so
  // both domains now hold one heavy and one light stream.
  EXPECT_NEAR(coord.ledger().domain_load(0), 5.3, 1e-9);
  EXPECT_NEAR(coord.ledger().domain_load(1), 5.3, 1e-9);
}

TEST(FleetCoordinator, PlanIsPureFunctionOfTelemetry) {
  FleetCoordinator a(coord_cfg(2, 2));
  FleetCoordinator b(coord_cfg(2, 2));
  for (std::uint64_t round = 1; round <= 3; ++round) {
    const auto fleet = telemetry(2, 2, skewed_slots(round));
    const auto ra = a.plan_round(fleet);
    const auto rb = b.plan_round(fleet);
    ASSERT_EQ(ra.size(), rb.size()) << "round " << round;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].from_core, rb[i].from_core);
      EXPECT_EQ(ra[i].to_core, rb[i].to_core);
      EXPECT_EQ(ra[i].tenant_a, rb[i].tenant_a);
      EXPECT_EQ(ra[i].tenant_b, rb[i].tenant_b);
      EXPECT_EQ(ra[i].predicted_gain, rb[i].predicted_gain);
      EXPECT_EQ(ra[i].accepted, rb[i].accepted);
      EXPECT_EQ(ra[i].reason, rb[i].reason);
    }
  }
}

TEST(FleetCoordinator, CooldownPinsMigratedSlots) {
  auto cfg = coord_cfg(2, 2);
  cfg.cooldown_rounds = 10;  // pin for the whole test
  FleetCoordinator coord(cfg);

  const auto r1 = coord.plan_round(telemetry(2, 2, skewed_slots(1)));
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_TRUE(r1.front().accepted);

  // Same skew again: the optimal pair is pinned, so the coordinator
  // must pick the remaining heavy/light pair...
  const auto r2 = coord.plan_round(telemetry(2, 2, skewed_slots(2)));
  ASSERT_EQ(r2.size(), 1u);
  ASSERT_TRUE(r2.front().accepted);
  EXPECT_NE(r2.front().from_core, r1.front().from_core);
  EXPECT_NE(r2.front().to_core, r1.front().to_core);

  // ...and once every candidate is pinned, it reports the stall
  // instead of ping-ponging.
  const auto r3 = coord.plan_round(telemetry(2, 2, skewed_slots(3)));
  ASSERT_EQ(r3.size(), 1u);
  EXPECT_FALSE(r3.front().accepted);
  EXPECT_EQ(r3.front().reason, "cooldown");
  EXPECT_EQ(coord.accepted(), 2u);
  EXPECT_EQ(coord.rejected(), 1u);
}

TEST(FleetCoordinator, CooldownExpires) {
  auto cfg = coord_cfg(2, 2);
  cfg.cooldown_rounds = 1;  // pinned for exactly one round
  FleetCoordinator coord(cfg);
  const auto r1 = coord.plan_round(telemetry(2, 2, skewed_slots(1)));
  ASSERT_TRUE(r1.front().accepted);
  coord.plan_round(telemetry(2, 2, skewed_slots(2)));
  const auto r3 = coord.plan_round(telemetry(2, 2, skewed_slots(3)));
  ASSERT_EQ(r3.size(), 1u);
  // Round 3 is past round 1's cooldown horizon (1 + 1): the original
  // pair is movable again.
  EXPECT_TRUE(r3.front().accepted);
}

TEST(FleetCoordinator, NearBalancedLoadRejectsNoGain) {
  FleetCoordinator coord(coord_cfg(2, 2));
  const std::vector<sim::PmuCounters> slots{
      counters(1000, 800, 3000), counters(1000, 800, 3000),
      counters(1000, 800, 2900), counters(1000, 800, 2900)};
  const auto records = coord.plan_round(telemetry(2, 2, slots));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records.front().accepted);
  EXPECT_EQ(records.front().reason, "no_gain");
  EXPECT_LT(records.front().predicted_gain, 0.005);
}

TEST(FleetCoordinator, InfeasibleDestinationRejectsOnBandwidth) {
  auto cfg = coord_cfg(2, 2);
  cfg.bandwidth_headroom = 0.0;  // nothing fits anywhere
  FleetCoordinator coord(cfg);
  const auto records = coord.plan_round(telemetry(2, 2, skewed_slots()));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records.front().accepted);
  EXPECT_EQ(records.front().reason, "bandwidth");
  EXPECT_EQ(coord.accepted(), 0u);
}

TEST(FleetCoordinator, BudgetBoundsAcceptedSwapsPerRound) {
  auto cfg = coord_cfg(2, 2);
  cfg.migration_budget = 2;
  FleetCoordinator coord(cfg);
  const auto records = coord.plan_round(telemetry(2, 2, skewed_slots()));
  std::size_t accepted = 0;
  for (const auto& r : records) accepted += r.accepted ? 1 : 0;
  EXPECT_LE(accepted, 2u);
  EXPECT_GE(accepted, 1u);
  EXPECT_EQ(coord.accepted(), accepted);
}

TEST(FleetCoordinator, UnmeasurableRoundIsSkipped) {
  FleetCoordinator coord(coord_cfg(2, 2));
  // A slice with no execution-epoch progress on one slot: all-zero
  // deltas carry no signal, so the round must decide nothing.
  std::vector<sim::PmuCounters> slots = skewed_slots();
  slots[3] = sim::PmuCounters{};
  const auto records = coord.plan_round(telemetry(2, 2, slots));
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(coord.rounds(), 1u);
  EXPECT_EQ(coord.accepted(), 0u);
}

// -------------------------------------------- placement tie-break

TEST(FleetPlacement, EqualBandwidthTiesBreakByNameThenIndex) {
  // Four tenants, all with identical solo bandwidth: the order must be
  // a pure function of the names and indices, never of sort internals.
  const std::vector<std::string> benchmarks{"zeta", "alpha", "zeta", "alpha"};
  const std::vector<double> bw{2.0, 2.0, 2.0, 2.0};
  const auto order = placement_order(benchmarks, bw);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 0, 2}));

  // Bandwidth dominates; ties resolve inside each band.
  const std::vector<double> bw2{1.0, 2.0, 1.0, 2.0};
  EXPECT_EQ(placement_order(benchmarks, bw2), (std::vector<std::size_t>{1, 3, 0, 2}));
  const std::vector<double> bw3{3.0, 2.0, 1.0, 2.0};
  EXPECT_EQ(placement_order(benchmarks, bw3), (std::vector<std::size_t>{0, 1, 3, 2}));

  EXPECT_THROW(placement_order(benchmarks, {1.0}), std::invalid_argument);
}

TEST(FleetPlacement, BandwidthBalancedIsStableUnderEqualSolos) {
  // All cores run the same benchmark: every solo bandwidth ties, so
  // the placement must be index order dealt greedily — domain 0 gets
  // even indices, domain 1 odd (least-loaded alternates).
  RunParams params;
  params.machine = sim::MachineConfig::fleet(2, 2, /*scale_divisor=*/32);
  params.warmup_cycles = 20'000;
  params.run_cycles = 100'000;
  const std::vector<std::string> tenants(4, "povray");
  const auto a = plan_placement(tenants, PlacementMode::BandwidthBalanced, params);
  const auto b = plan_placement(tenants, PlacementMode::BandwidthBalanced, params);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].benchmarks, b[0].benchmarks);
  EXPECT_EQ(a[1].benchmarks, b[1].benchmarks);
  EXPECT_EQ(a[0].benchmarks, (std::vector<std::string>{"povray", "povray"}));
  EXPECT_EQ(a[1].benchmarks, (std::vector<std::string>{"povray", "povray"}));
}

// ------------------------------------------------- fleet (E2E)

FleetConfig fleet_cfg(unsigned domains, unsigned cpd = 4) {
  FleetConfig cfg;
  cfg.params.machine = sim::MachineConfig::fleet(domains, cpd, /*scale_divisor=*/32);
  cfg.params.warmup_cycles = 50'000;
  cfg.params.run_cycles = 300'000;
  cfg.params.epochs.execution_epoch = 100'000;
  cfg.params.epochs.sampling_interval = 10'000;
  cfg.params.seed = 42;
  cfg.policy = "cmm_c";
  return cfg;
}

/// Deliberately pathological placement: every bandwidth-heavy stream
/// packed onto domain 0, every compute-bound tenant on domain 1.
std::vector<workloads::WorkloadMix> pathological_mixes() {
  std::vector<workloads::WorkloadMix> mixes(2);
  mixes[0].name = "fleet_d0";
  mixes[0].benchmarks = {"lbm", "libquantum", "milc", "bwaves"};
  mixes[1].name = "fleet_d1";
  mixes[1].benchmarks = {"povray", "calculix", "gobmk", "namd"};
  return mixes;
}

TEST(FleetHierarchy, NoAcceptedMigrationMatchesFlatRunner) {
  // A coordinator that never accepts (impossible gain bar) must leave
  // the shards bit-identical to the flat runner on the same slice
  // schedule — planning alone has no side effects.
  FleetConfig flat = fleet_cfg(2);
  flat.churn_slice = 60'000;
  flat.churn_per_mille = 0;       // slicing without swaps
  flat.churn_catalog = {"mcf"};   // non-empty so both paths slice
  FleetConfig hier = flat;
  hier.coordinator_period = 1;
  hier.migration_min_gain = 1e9;

  const auto mixes = pathological_mixes();
  const FleetResult a = run_fleet(flat, mixes);
  const FleetResult b = run_fleet(hier, mixes);
  EXPECT_EQ(a.merged, b.merged);
  EXPECT_EQ(b.accepted_migrations(), 0u);
  for (std::size_t d = 0; d < a.domains.size(); ++d) {
    EXPECT_EQ(a.domains[d].result, b.domains[d].result) << "domain " << d;
  }
}

TEST(FleetHierarchy, PathologicalPlacementTriggersMigration) {
  FleetConfig cfg = fleet_cfg(2);
  cfg.params.run_cycles = 600'000;
  cfg.coordinator_period = 1;
  const FleetResult hier = run_fleet(cfg, pathological_mixes());
  EXPECT_GE(hier.accepted_migrations(), 1u);
  EXPECT_FALSE(hier.migrations.empty());
  for (const auto& rec : hier.migrations) {
    if (!rec.accepted) continue;
    EXPECT_GE(rec.predicted_gain, cfg.migration_min_gain);
    EXPECT_NE(rec.from_core / 4, rec.to_core / 4) << "migration must cross domains";
  }
  // The migrated tenants really moved: the final residents differ from
  // the initial placement.
  const auto mixes = pathological_mixes();
  bool moved = false;
  for (std::size_t c = 0; c < hier.merged.cores.size(); ++c) {
    if (hier.merged.cores[c].benchmark != mixes[c / 4].benchmarks[c % 4]) moved = true;
  }
  EXPECT_TRUE(moved);

  // Migration pays: the refined placement's fleet objective is no
  // worse than freezing the pathological initial placement.
  FleetConfig frozen = cfg;
  frozen.coordinator_period = 0;
  const FleetResult flat = run_fleet(frozen, mixes);
  EXPECT_GE(hier.hm_ipc, flat.hm_ipc);
}

TEST(FleetHierarchy, MigrationRunsAreDeterministic) {
  FleetConfig cfg = fleet_cfg(2);
  cfg.params.run_cycles = 600'000;
  cfg.coordinator_period = 1;
  cfg.migration_budget = 2;

  BatchOptions serial;
  serial.threads = 1;
  BatchOptions wide;
  wide.threads = 4;
  const FleetResult a = run_fleet(cfg, pathological_mixes(), serial);
  const FleetResult b = run_fleet(cfg, pathological_mixes(), wide);

  EXPECT_EQ(a.merged, b.merged);
  EXPECT_EQ(a.metrics.json(), b.metrics.json());
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    EXPECT_EQ(a.migrations[i].round, b.migrations[i].round);
    EXPECT_EQ(a.migrations[i].from_core, b.migrations[i].from_core);
    EXPECT_EQ(a.migrations[i].to_core, b.migrations[i].to_core);
    EXPECT_EQ(a.migrations[i].tenant_a, b.migrations[i].tenant_a);
    EXPECT_EQ(a.migrations[i].tenant_b, b.migrations[i].tenant_b);
    EXPECT_EQ(a.migrations[i].predicted_gain, b.migrations[i].predicted_gain);
    EXPECT_EQ(a.migrations[i].accepted, b.migrations[i].accepted);
    EXPECT_EQ(a.migrations[i].reason, b.migrations[i].reason);
  }
}

TEST(FleetHierarchy, ChurnAndCoordinatorCompose) {
  // Migrations and tenant churn in the same run: still repeatable, and
  // the churn RNG schedule stays a pure function of (seed, domain).
  FleetConfig cfg = fleet_cfg(2);
  cfg.params.run_cycles = 600'000;
  cfg.churn_slice = 100'000;
  cfg.churn_per_mille = 500;
  cfg.churn_catalog = {"mcf", "soplex"};
  cfg.coordinator_period = 2;
  const FleetResult a = run_fleet(cfg, pathological_mixes());
  const FleetResult b = run_fleet(cfg, pathological_mixes());
  EXPECT_EQ(a.merged, b.merged);
  EXPECT_EQ(a.total_churn_swaps(), b.total_churn_swaps());
  EXPECT_EQ(a.migrations.size(), b.migrations.size());
}

// ------------------------------------- service x coordinator ledger

TEST(ServiceLedger, SharedLedgerTightensAdmission) {
  service::ServiceConfig scfg;
  scfg.params.machine = sim::MachineConfig::scaled(32);
  scfg.params.warmup_cycles = 50'000;
  scfg.params.run_cycles = 150'000;
  scfg.params.epochs.execution_epoch = 20'000;
  scfg.params.epochs.sampling_interval = 2'000;
  scfg.admission_headroom = 0.5;

  // A private-ledger driver admits the first tenant onto the empty
  // machine.
  service::ServiceDriver alone(scfg, make_policy("cmm_a", scfg.params.detector()));
  const auto a = alone.attach({"povray", 0.0, 1});
  ASSERT_EQ(a.decision, service::AdmissionDecision::Admitted);
  EXPECT_GT(alone.ledger().projected(), 0.0);

  // The same driver drawing on a coordinator-shared ledger sees the
  // rest of the fleet's committed demand and queues instead.
  CoordinatorConfig ccfg;
  ccfg.domains = scfg.params.machine.num_llc_domains;
  ccfg.cores_per_domain = scfg.params.machine.num_cores;
  ccfg.domain_peak_gbs =
      scfg.params.machine.dram_peak_bytes_per_cycle * scfg.params.machine.freq_ghz;
  FleetCoordinator coord(ccfg);
  for (std::size_t slot = 1; slot < scfg.params.machine.num_cores; ++slot) {
    coord.ledger().commit(slot, 0, coord.ledger().domain_peak_gbs());  // fleet is saturated
  }
  service::ServiceConfig shared_cfg = scfg;
  shared_cfg.shared_ledger = &coord.ledger();
  service::ServiceDriver shared(shared_cfg, make_policy("cmm_a", scfg.params.detector()));
  const auto b = shared.attach({"povray", 0.0, 1});
  EXPECT_EQ(b.decision, service::AdmissionDecision::Queued);
  EXPECT_EQ(&shared.ledger(), &coord.ledger());
}

}  // namespace
}  // namespace cmm::analysis
