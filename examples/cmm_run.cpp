// cmm_run: command-line driver for the library — run any workload under
// any mechanism and print per-application results, optionally compared
// against the baseline, as a table or CSV.
//
//   cmm_run [options]
//     --policy NAME       baseline|pt|dunn|pref_cp|pref_cp2|cmm_a|cmm_b|cmm_c
//                         (default cmm_a)
//     --mix CAT[:INDEX]   pref_fri|pref_agg|pref_unfri|pref_no_agg, e.g.
//                         --mix pref_agg:3 (default pref_agg:0)
//     --benchmarks a,b,.. explicit per-core benchmark list (overrides --mix)
//     --cycles N          simulated cycles (default 8000000)
//     --scale N           LLC capacity divisor, 1 = full 20 MB (default 16)
//     --seed N            workload seed (default 42)
//     --compare           also run the baseline and report HS/WS/worst-case
//     --csv               machine-readable output
//     --list              list benchmarks and mechanisms, then exit
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "analysis/run_harness.hpp"
#include "analysis/speedup_metrics.hpp"
#include "analysis/table.hpp"

namespace {

using namespace cmm;

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "cmm_run: " << message << " (--help for usage)\n";
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string item;
  while (std::getline(in, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

workloads::MixCategory parse_category(const std::string& name) {
  if (name == "pref_fri") return workloads::MixCategory::PrefFri;
  if (name == "pref_agg") return workloads::MixCategory::PrefAgg;
  if (name == "pref_unfri") return workloads::MixCategory::PrefUnfri;
  if (name == "pref_no_agg") return workloads::MixCategory::PrefNoAgg;
  usage_error("unknown mix category '" + name + "'");
}

void list_everything() {
  std::cout << "mechanisms: baseline";
  for (const auto& m : analysis::mechanism_names()) std::cout << " " << m;
  std::cout << "\nbenchmarks:\n";
  for (const auto& spec : workloads::benchmark_suite()) {
    std::cout << "  " << spec.name;
    if (spec.expect_prefetch_aggressive)
      std::cout << (spec.expect_prefetch_friendly ? "  [aggressive, friendly]"
                                                  : "  [aggressive, unfriendly]");
    if (spec.expect_llc_sensitive) std::cout << "  [LLC sensitive]";
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string policy_name = "cmm_a";
  std::string mix_arg = "pref_agg:0";
  std::string benchmarks_arg;
  Cycle cycles = 8'000'000;
  unsigned scale = 16;
  std::uint64_t seed = 42;
  bool compare = false;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--policy") {
      policy_name = value();
    } else if (arg == "--mix") {
      mix_arg = value();
    } else if (arg == "--benchmarks") {
      benchmarks_arg = value();
    } else if (arg == "--cycles") {
      cycles = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--scale") {
      scale = static_cast<unsigned>(std::strtoul(value().c_str(), nullptr, 10));
    } else if (arg == "--seed") {
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--list") {
      list_everything();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "see the header of examples/cmm_run.cpp for options\n";
      return 0;
    } else {
      usage_error("unknown option '" + arg + "'");
    }
  }

  analysis::RunParams params;
  params.machine = scale <= 1 ? sim::MachineConfig::broadwell_ep() : sim::MachineConfig::scaled(scale);
  params.run_cycles = cycles;
  params.seed = seed;
  params.epochs.execution_epoch = 1'500'000;
  params.epochs.sampling_interval = 40'000;

  workloads::WorkloadMix mix;
  if (!benchmarks_arg.empty()) {
    mix.name = "custom";
    mix.benchmarks = split(benchmarks_arg, ',');
    if (mix.benchmarks.size() != params.machine.num_cores) {
      usage_error("need exactly " + std::to_string(params.machine.num_cores) +
                  " benchmarks, got " + std::to_string(mix.benchmarks.size()));
    }
  } else {
    const auto parts = split(mix_arg, ':');
    const auto category = parse_category(parts.at(0));
    const unsigned index =
        parts.size() > 1 ? static_cast<unsigned>(std::strtoul(parts[1].c_str(), nullptr, 10)) : 0;
    const auto mixes = workloads::make_mixes(category, index + 1, params.machine.num_cores, seed);
    mix = mixes.at(index);
  }

  std::unique_ptr<core::Policy> policy;
  try {
    policy = analysis::make_policy(policy_name, params.detector());
  } catch (const std::invalid_argument& e) {
    usage_error(e.what());
  }

  const auto result = analysis::run_mix(mix, *policy, params);

  analysis::RunResult baseline;
  if (compare && policy_name != "baseline") {
    auto base_pol = analysis::make_policy("baseline", params.detector());
    baseline = analysis::run_mix(mix, *base_pol, params);
  }

  analysis::Table table(compare && !baseline.cores.empty()
                            ? std::vector<std::string>{"core", "benchmark", "ipc", "GB/s",
                                                       "ipc vs baseline"}
                            : std::vector<std::string>{"core", "benchmark", "ipc", "GB/s"});
  for (std::size_t c = 0; c < result.cores.size(); ++c) {
    const auto& core = result.cores[c];
    std::vector<std::string> row{std::to_string(c), core.benchmark,
                                 analysis::Table::fmt(core.ipc),
                                 analysis::Table::fmt(core.total_gbs(), 2)};
    if (compare && !baseline.cores.empty()) {
      const double base_ipc = baseline.cores[c].ipc;
      row.push_back(analysis::Table::fmt(base_ipc > 0 ? core.ipc / base_ipc : 0, 3));
    }
    table.add_row(std::move(row));
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    std::cout << "workload " << mix.name << " under " << policy_name << " ("
              << params.machine.num_cores << " cores, " << cycles << " cycles)\n\n";
    table.print(std::cout);
  }

  if (compare && !baseline.cores.empty()) {
    const double ws = analysis::weighted_speedup(result.ipcs(), baseline.ipcs());
    const double wc = analysis::worst_case_speedup(result.ipcs(), baseline.ipcs());
    const auto alone = analysis::compute_alone_ipcs(mix.benchmarks, params);
    std::vector<double> alone_v;
    for (const auto& b : mix.benchmarks) alone_v.push_back(alone.at(b));
    const double hs = analysis::harmonic_speedup(result.ipcs(), alone_v);
    const double hs_base = analysis::harmonic_speedup(baseline.ipcs(), alone_v);
    if (csv) {
      std::cout << "summary,ws," << ws << "\nsummary,worst_case," << wc << "\nsummary,hs_ratio,"
                << (hs_base > 0 ? hs / hs_base : 0) << "\n";
    } else {
      std::cout << "\nWS vs baseline " << analysis::Table::fmt(ws) << "   worst-case "
                << analysis::Table::fmt(wc) << "   HS/HS_base "
                << analysis::Table::fmt(hs_base > 0 ? hs / hs_base : 0) << "\n";
    }
  }
  return 0;
}
