// quickstart: the 60-second tour of the library.
//
// Builds the simulated 8-core machine, attaches a mixed workload
// (prefetch-friendly streams + a Rand-Access-style aggressor + cache-
// sensitive programs), runs it under the baseline and under the
// coordinated CMM-a mechanism, and reports the paper's metrics.
#include <iostream>

#include "analysis/run_harness.hpp"
#include "analysis/speedup_metrics.hpp"
#include "analysis/table.hpp"

int main() {
  using namespace cmm;

  // 1. Pick run parameters. The default machine is a capacity-scaled
  //    Broadwell-EP (use sim::MachineConfig::broadwell_ep() for the
  //    full 20 MB LLC).
  analysis::RunParams params;
  params.run_cycles = 8'000'000;
  params.epochs.execution_epoch = 1'500'000;
  params.epochs.sampling_interval = 40'000;

  // 2. Build a workload: one benchmark per core, by name.
  workloads::WorkloadMix mix;
  mix.name = "quickstart";
  mix.category = workloads::MixCategory::PrefAgg;
  mix.benchmarks = {"libquantum", "leslie3d", "rand_access", "hash_probe",
                    "mcf",        "soplex",   "povray",      "namd"};

  // 3. Run under the baseline (all prefetchers on, no partitioning)
  //    and under CMM-a (Agg set -> small partition + group throttling).
  auto baseline_policy = analysis::make_policy("baseline", params.detector());
  const auto baseline = analysis::run_mix(mix, *baseline_policy, params);

  auto cmm_policy = analysis::make_policy("cmm_a", params.detector());
  const auto cmm = analysis::run_mix(mix, *cmm_policy, params);

  // 4. Report per-application IPC and the paper's system metrics.
  analysis::Table table({"core", "benchmark", "baseline IPC", "cmm_a IPC", "speedup"});
  for (std::size_t c = 0; c < mix.benchmarks.size(); ++c) {
    const double b = baseline.cores[c].ipc;
    const double v = cmm.cores[c].ipc;
    table.add_row({std::to_string(c), mix.benchmarks[c], analysis::Table::fmt(b),
                   analysis::Table::fmt(v), analysis::Table::fmt(b > 0 ? v / b : 0, 2)});
  }
  table.print(std::cout);

  const auto alone = analysis::compute_alone_ipcs(mix.benchmarks, params);
  std::vector<double> alone_v;
  for (const auto& b : mix.benchmarks) alone_v.push_back(alone.at(b));

  const double hs_base = analysis::harmonic_speedup(baseline.ipcs(), alone_v);
  const double hs_cmm = analysis::harmonic_speedup(cmm.ipcs(), alone_v);
  std::cout << "\nharmonic speedup: baseline " << analysis::Table::fmt(hs_base) << "  cmm_a "
            << analysis::Table::fmt(hs_cmm) << "  (x"
            << analysis::Table::fmt(hs_base > 0 ? hs_cmm / hs_base : 0, 2) << ")\n"
            << "weighted speedup vs baseline: "
            << analysis::Table::fmt(analysis::weighted_speedup(cmm.ipcs(), baseline.ipcs()), 3)
            << "\nmemory bandwidth: baseline " << analysis::Table::fmt(baseline.total_gbs(), 1)
            << " GB/s -> cmm_a " << analysis::Table::fmt(cmm.total_gbs(), 1) << " GB/s\n";
  return 0;
}
