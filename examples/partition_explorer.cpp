// partition_explorer: interactively explore CAT way partitioning for a
// single benchmark — the experiment behind the paper's Fig. 3 and its
// 1.5x partition-sizing rule.
//
// Usage: partition_explorer [benchmark] [scale_divisor]
// Prints the benchmark's IPC across every LLC way allocation, and the
// sizing rule's choice for Agg sets of 1..8 cores.
#include <cstdlib>
#include <iostream>

#include "analysis/run_harness.hpp"
#include "analysis/table.hpp"
#include "core/policy.hpp"

int main(int argc, char** argv) {
  using namespace cmm;

  const std::string benchmark = argc > 1 ? argv[1] : "soplex";
  analysis::RunParams params;
  if (argc > 2) params.machine = sim::MachineConfig::scaled(
      static_cast<unsigned>(std::atoi(argv[2])));

  const unsigned ways = params.machine.llc.ways;
  std::cout << "way sensitivity of '" << benchmark << "' (prefetch on, LLC "
            << params.machine.llc.size_bytes / 1024 << " KB / " << ways << " ways)\n\n";

  analysis::Table table({"ways", "IPC", "relative to max"});
  std::vector<double> ipc(ways + 1, 0.0);
  double best = 0.0;
  for (unsigned w = 1; w <= ways; ++w) {
    ipc[w] = analysis::run_solo(benchmark, params, true, w).cores.front().ipc;
    best = std::max(best, ipc[w]);
  }
  for (unsigned w = 1; w <= ways; ++w) {
    table.add_row({std::to_string(w), analysis::Table::fmt(ipc[w]),
                   analysis::Table::fmt(best > 0 ? ipc[w] / best : 0, 2)});
  }
  table.print(std::cout);

  std::cout << "\npaper partition-sizing rule (1.5 ways per Agg core):\n";
  analysis::Table rule({"|Agg set|", "partition ways"});
  for (unsigned n = 1; n <= 8; ++n) {
    rule.add_row({std::to_string(n), std::to_string(core::partition_ways_for(n, ways))});
  }
  rule.print(std::cout);
  return 0;
}
