// classify_suite: characterise every benchmark in the synthetic suite
// the way the paper characterises SPEC CPU2006 (Sec. IV-B, Figs 1-3)
// and print the measured class against the spec's expectation.
// Benchmarks are classified in parallel (one job each); every solo run
// goes through the process-wide memo cache, so results are identical at
// any thread count.
//
// Usage: classify_suite [scale_divisor] [run_cycles] [--threads N]
//        (thread count also honours CMM_THREADS; default all cores)
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "analysis/run_harness.hpp"
#include "analysis/table.hpp"

int main(int argc, char** argv) {
  using namespace cmm;

  analysis::BatchOptions batch;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      batch.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      positional.push_back(argv[i]);
    }
  }

  unsigned scale = !positional.empty() ? static_cast<unsigned>(std::atoi(positional[0])) : 8;
  analysis::RunParams params;
  params.machine = sim::MachineConfig::scaled(scale);
  if (positional.size() > 1) params.run_cycles = static_cast<Cycle>(std::atoll(positional[1]));

  std::cout << "Machine: LLC " << params.machine.llc.size_bytes / 1024 << " KB / "
            << params.machine.llc.ways << " ways, L2 " << params.machine.l2.size_bytes / 1024
            << " KB, L1 " << params.machine.l1d.size_bytes / 1024 << " KB\n\n";

  const auto& suite = workloads::benchmark_suite();
  std::vector<analysis::BenchmarkClassification> classes(suite.size());
  // Outer batch over benchmarks; each classification runs its own solo
  // batch serially so the pools don't nest.
  const auto stats = analysis::run_batch(
      suite.size(),
      [&](std::size_t i) {
        classes[i] = analysis::classify_benchmark(suite[i].name, params, {},
                                                  analysis::BatchOptions{.threads = 1});
      },
      batch);

  analysis::Table table({"benchmark", "dBW(GB/s)", "bwGain%", "pfSpeedup", "w80", "w90",
                         "agg", "fri", "llc", "expected"});
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& spec = suite[i];
    const auto& c = classes[i];
    std::string expected;
    expected += spec.expect_prefetch_aggressive ? 'A' : '-';
    expected += spec.expect_prefetch_friendly ? 'F' : '-';
    expected += spec.expect_llc_sensitive ? 'S' : '-';
    table.add_row({c.name, analysis::Table::fmt(c.demand_gbs, 2),
                   analysis::Table::fmt(100.0 * c.bw_gain, 1),
                   analysis::Table::fmt(c.prefetch_speedup, 2), std::to_string(c.ways_for_80pct),
                   std::to_string(c.ways_for_90pct), c.prefetch_aggressive ? "A" : "-",
                   c.prefetch_friendly ? "F" : "-", c.llc_sensitive ? "S" : "-", expected});
  }
  table.print(std::cout);
  std::cout << "\n" << stats.json() << "\n";
  return 0;
}
