// classify_suite: characterise every benchmark in the synthetic suite
// the way the paper characterises SPEC CPU2006 (Sec. IV-B, Figs 1-3)
// and print the measured class against the spec's expectation.
//
// Usage: classify_suite [scale_divisor] [run_cycles]
#include <cstdlib>
#include <iostream>

#include "analysis/run_harness.hpp"
#include "analysis/table.hpp"

int main(int argc, char** argv) {
  using namespace cmm;

  unsigned scale = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  analysis::RunParams params;
  params.machine = sim::MachineConfig::scaled(scale);
  if (argc > 2) params.run_cycles = static_cast<Cycle>(std::atoll(argv[2]));

  std::cout << "Machine: LLC " << params.machine.llc.size_bytes / 1024 << " KB / "
            << params.machine.llc.ways << " ways, L2 " << params.machine.l2.size_bytes / 1024
            << " KB, L1 " << params.machine.l1d.size_bytes / 1024 << " KB\n\n";

  analysis::Table table({"benchmark", "dBW(GB/s)", "bwGain%", "pfSpeedup", "w80", "w90",
                         "agg", "fri", "llc", "expected"});

  for (const auto& spec : workloads::benchmark_suite()) {
    const auto c = analysis::classify_benchmark(spec.name, params);
    std::string expected;
    expected += spec.expect_prefetch_aggressive ? 'A' : '-';
    expected += spec.expect_prefetch_friendly ? 'F' : '-';
    expected += spec.expect_llc_sensitive ? 'S' : '-';
    table.add_row({c.name, analysis::Table::fmt(c.demand_gbs, 2),
                   analysis::Table::fmt(100.0 * c.bw_gain, 1),
                   analysis::Table::fmt(c.prefetch_speedup, 2), std::to_string(c.ways_for_80pct),
                   std::to_string(c.ways_for_90pct), c.prefetch_aggressive ? "A" : "-",
                   c.prefetch_friendly ? "F" : "-", c.llc_sensitive ? "S" : "-", expected});
  }
  table.print(std::cout);
  return 0;
}
