// throttle_study: what pure prefetch throttling costs the victims it
// throttles. Runs a prefetch-friendly-heavy workload under PT and under
// CMM-a and contrasts the system gain with the worst individual
// application's loss — the motivation for coordinating throttling with
// partitioning (paper Secs. III-B1 and V-A).
#include <iostream>

#include "analysis/run_harness.hpp"
#include "analysis/speedup_metrics.hpp"
#include "analysis/table.hpp"

int main() {
  using namespace cmm;

  analysis::RunParams params;
  params.run_cycles = 8'000'000;
  params.epochs.execution_epoch = 1'500'000;
  params.epochs.sampling_interval = 40'000;

  const auto mixes = workloads::make_mixes(workloads::MixCategory::PrefFri, 3,
                                           params.machine.num_cores, params.seed);

  analysis::Table table({"workload", "policy", "WS vs baseline", "worst-case app speedup"});
  for (const auto& mix : mixes) {
    auto base_pol = analysis::make_policy("baseline", params.detector());
    const auto baseline = analysis::run_mix(mix, *base_pol, params);
    for (const std::string policy : {"pt", "cmm_a"}) {
      auto pol = analysis::make_policy(policy, params.detector());
      const auto result = analysis::run_mix(mix, *pol, params);
      table.add_row({mix.name, policy,
                     analysis::Table::fmt(
                         analysis::weighted_speedup(result.ipcs(), baseline.ipcs())),
                     analysis::Table::fmt(
                         analysis::worst_case_speedup(result.ipcs(), baseline.ipcs()))});
    }
  }
  table.print(std::cout);
  std::cout << "\nPT trades one application's prefetching away for the others;\n"
               "CMM keeps the friendly cores' prefetchers on inside a small\n"
               "partition, so its worst case stays near 1.0.\n";
  return 0;
}
