// adaptive_demo: CMM re-detects every execution epoch (paper Fig. 4 /
// footnote 3: the Agg set changes with program phases). One core runs
// a phased program that alternates between a quiet pointer-chaser and
// an aggressive stream; the demo prints which configuration CMM chose
// across epochs, showing the partition appearing and disappearing with
// the phase.
#include <iostream>

#include "analysis/run_harness.hpp"
#include "analysis/table.hpp"
#include "core/epoch_driver.hpp"
#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"
#include "workloads/phased.hpp"

int main() {
  using namespace cmm;

  analysis::RunParams params;
  params.epochs.execution_epoch = 1'000'000;
  params.epochs.sampling_interval = 40'000;

  sim::MulticoreSystem system(params.machine);

  // Core 0: phased — quiet chaser, then an aggressive stream, cycling.
  std::vector<workloads::PhasedOpSource::Phase> phases{
      {"gobmk", 2'500'000},
      {"libquantum", 2'500'000},
  };
  system.set_op_source(
      0, std::make_shared<workloads::PhasedOpSource>(phases, params.machine, 0, params.seed));

  // Cores 1-7: a static background (one more stream, victims, compute).
  const std::vector<std::string> background{"leslie3d", "mcf",  "soplex", "povray",
                                            "namd",     "astar", "gobmk"};
  for (CoreId c = 1; c < system.num_cores(); ++c) {
    system.set_op_source(
        c, workloads::make_op_source(background[c - 1], params.machine, c, params.seed + c));
  }

  auto policy = analysis::make_policy("cmm_a", params.detector());
  core::EpochDriver driver(system, *policy, params.epochs);

  analysis::Table table({"epoch end (Mcycles)", "core0 mask", "core0 pf", "partitioned cores"});
  for (int epoch = 0; epoch < 12; ++epoch) {
    driver.run(params.epochs.execution_epoch +
               8 * params.epochs.sampling_interval);  // one epoch + profiling
    unsigned partitioned = 0;
    for (CoreId c = 0; c < system.num_cores(); ++c) {
      if (system.cat().core_mask(c) != full_mask(params.machine.llc.ways)) ++partitioned;
    }
    char mask[16];
    std::snprintf(mask, sizeof mask, "0x%05x", system.cat().core_mask(0));
    table.add_row({analysis::Table::fmt(static_cast<double>(system.now()) / 1e6, 1), mask,
                   system.core(0).prefetch_msr().all_enabled() ? "on" : "off",
                   std::to_string(partitioned)});
  }
  table.print(std::cout);
  std::cout << "\ncore 0 alternates gobmk (quiet) <-> libquantum (aggressive stream);\n"
               "its mask should tighten during stream phases and relax in quiet ones.\n";
  return 0;
}
