// Fig. 1: memory bandwidth consumption per benchmark, prefetching off
// (demand) vs on (demand + prefetch delta). The paper's shape: the
// demand-intensive streamers draw ~4 GB/s demand BW and gain >80 % from
// prefetching.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 1", "memory bandwidth with and without prefetching");

  analysis::RunParams params = env.params;
  analysis::Table table(
      {"benchmark", "demand GB/s (pf off)", "total GB/s (pf on)", "increase %"});
  for (const auto& spec : workloads::benchmark_suite()) {
    const auto off = analysis::run_solo(spec.name, params, false);
    const auto on = analysis::run_solo(spec.name, params, true);
    const double bw_off = off.cores.front().total_gbs();
    const double bw_on = on.cores.front().total_gbs();
    const double gain = bw_off > 0 ? 100.0 * (bw_on - bw_off) / bw_off : 0.0;
    table.add_row({spec.name, analysis::Table::fmt(off.cores.front().demand_gbs, 2),
                   analysis::Table::fmt(bw_on, 2), analysis::Table::fmt(gain, 1)});
  }
  table.print(std::cout);
  return 0;
}
