// Fig. 1: memory bandwidth consumption per benchmark, prefetching off
// (demand) vs on (demand + prefetch delta). The paper's shape: the
// demand-intensive streamers draw ~4 GB/s demand BW and gain >80 % from
// prefetching.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 1", "memory bandwidth with and without prefetching");

  const auto& suite = workloads::benchmark_suite();
  std::vector<analysis::SoloQuery> queries;
  for (const auto& spec : suite) {
    queries.push_back({spec.name, /*prefetch_on=*/false, 0});
    queries.push_back({spec.name, /*prefetch_on=*/true, 0});
  }
  analysis::BatchStats stats;
  const auto results = analysis::run_solo_batch(queries, env.params, {}, &stats);

  analysis::Table table(
      {"benchmark", "demand GB/s (pf off)", "total GB/s (pf on)", "increase %"});
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& off = results[2 * i];
    const auto& on = results[2 * i + 1];
    const double bw_off = off.cores.front().total_gbs();
    const double bw_on = on.cores.front().total_gbs();
    const double gain = bw_off > 0 ? 100.0 * (bw_on - bw_off) / bw_off : 0.0;
    table.add_row({suite[i].name, analysis::Table::fmt(off.cores.front().demand_gbs, 2),
                   analysis::Table::fmt(bw_on, 2), analysis::Table::fmt(gain, 1)});
  }
  table.print(std::cout);
  bench::print_batch_summary(stats);
  return 0;
}
