// Wall-clock demonstration of the parallel experiment layer: a batch of
// independent (mix, policy) simulations run serially and then in
// parallel must produce bit-identical results; on an N-core host the
// parallel pass approaches min(N, jobs)× the serial rate. Prints one
// JSON line for the BENCH_*.json capture and exits nonzero if the
// parallel results diverge from the serial ones.
//
// Env: CMM_THREADS (parallel worker count, default all cores) and the
// usual CMM_BENCH_SCALE / CMM_BENCH_CYCLES / CMM_BENCH_SEED knobs.
#include <cstdlib>
#include <iostream>

#include "analysis/run_harness.hpp"
#include "analysis/solo_cache.hpp"
#include "common/parallel.hpp"
#include "workloads/workload_mix.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
}

}  // namespace

int main() {
  using namespace cmm;

  analysis::RunParams params;
  params.machine = sim::MachineConfig::scaled(
      static_cast<unsigned>(env_u64("CMM_BENCH_SCALE", 32)));
  params.warmup_cycles = 200'000;
  params.run_cycles = env_u64("CMM_BENCH_CYCLES", 1'000'000);
  params.seed = env_u64("CMM_BENCH_SEED", 42);
  params.epochs.execution_epoch = 200'000;
  params.epochs.sampling_interval = 10'000;

  // 4 categories x 1 mix x 3 policies = 12 independent jobs.
  const auto mixes = workloads::paper_workloads(params.machine.num_cores, params.seed, 1);
  const std::vector<std::string> policies{"baseline", "pt", "cmm_a"};

  analysis::BatchStats serial_stats;
  analysis::BatchStats parallel_stats;
  const auto serial =
      analysis::for_each_mix(mixes, policies, params, {.threads = 1}, &serial_stats);
  const auto parallel = analysis::for_each_mix(mixes, policies, params, {}, &parallel_stats);

  const bool identical = serial == parallel;
  const double speedup = parallel_stats.wall_seconds > 0.0
                             ? serial_stats.wall_seconds / parallel_stats.wall_seconds
                             : 0.0;

  std::cout.setf(std::ios::fixed);
  std::cout.precision(3);
  std::cout << "{\"bench\":\"parallel_harness_perf\",\"jobs\":" << serial.size()
            << ",\"threads\":" << parallel_stats.threads
            << ",\"serial_s\":" << serial_stats.wall_seconds
            << ",\"parallel_s\":" << parallel_stats.wall_seconds << ",\"speedup\":" << speedup
            << ",\"identical\":" << (identical ? "true" : "false") << "}\n";

  if (!identical) {
    std::cerr << "FAIL: parallel batch diverged from the serial reference\n";
    return 1;
  }
  return 0;
}
