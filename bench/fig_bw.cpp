// fig_bw: bandwidth-bound mixes exercising the BP axis (MBA-style
// per-core memory-bandwidth regulation). Plain CMM manages only the
// prefetch-throttle and cache-partition knobs; when a mix is saturated
// by streaming hogs the shared DRAM queue, not the LLC, is the
// bottleneck and PT+CP leave performance on the table. CMM-BP adds a
// coordinate-descent pass over per-core throttle levels for the
// heaviest DRAM consumers, keeping a level only when it improves the
// sampled harmonic-mean-IPC objective.
//
// Gates (exit code 1 on any FAIL):
//   - transparency: a CmmPolicy with the BP pass neutered
//     (bp_max_level = 0) is bit-identical to plain cmm_a on every mix;
//   - improvement: mean hm_ipc of cmm_bp over the bandwidth-bound
//     mixes is >= plain cmm_a's (per-mix values are reported);
//   - determinism: the parallel batch (CMM_THREADS workers) and a
//     serial re-run produce bit-identical results and throttle levels.
//
// Knobs (environment):
//   CMM_BENCH_SCALE / CMM_BENCH_CYCLES / CMM_BENCH_SEED  as elsewhere
//   CMM_THREADS   harness worker threads (results invariant)
//   CMM_BW_JSON   path for the machine-readable BENCH_bw.json
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "analysis/speedup_metrics.hpp"
#include "common/parallel.hpp"
#include "core/policy_cmm.hpp"

namespace {

using cmm::analysis::RunResult;
using cmm::workloads::WorkloadMix;

bool gate(bool ok, const std::string& what) {
  std::cout << (ok ? "PASS" : "FAIL") << "  " << what << "\n";
  return ok;
}

/// Hog-heavy 8-core mixes: streaming benchmarks that saturate the DRAM
/// window plus a couple of latency-bound victims that suffer from the
/// queue delay the hogs induce.
std::vector<WorkloadMix> bandwidth_mixes(unsigned num_cores) {
  const std::vector<std::vector<std::string>> pools = {
      {"lbm", "milc", "bwaves", "libquantum", "leslie3d", "GemsFDTD", "mcf", "omnetpp"},
      {"lbm", "lbm", "milc", "bwaves", "rand_access", "scatter_gather", "mcf", "xalancbmk"},
      {"libquantum", "leslie3d", "zeusmp", "wrf", "sphinx3", "milc", "soplex", "astar"},
  };
  std::vector<WorkloadMix> mixes;
  for (std::size_t i = 0; i < pools.size(); ++i) {
    WorkloadMix mix;
    mix.name = "bw_bound_" + std::to_string(i);
    mix.category = cmm::workloads::MixCategory::PrefAgg;
    for (unsigned c = 0; c < num_cores; ++c) mix.benchmarks.push_back(pools[i][c % pools[i].size()]);
    mixes.push_back(std::move(mix));
  }
  return mixes;
}

struct MixOut {
  RunResult cmm;       // plain cmm_a
  RunResult bp;        // cmm_bp
  RunResult bp_off;    // cmm_bp with the BP pass neutered
  std::vector<std::uint8_t> levels;  // BP levels accepted in the last epoch
};

MixOut run_one(const WorkloadMix& mix, const cmm::analysis::RunParams& params) {
  using cmm::core::CmmPolicy;
  MixOut out;

  CmmPolicy::Options base;
  base.detector = params.detector();
  base.variant = cmm::core::CmmVariant::A;

  CmmPolicy plain(base);
  out.cmm = cmm::analysis::run_mix(mix, plain, params);

  CmmPolicy::Options with_bp = base;
  with_bp.bp_enabled = true;
  CmmPolicy bp(with_bp);
  out.bp = cmm::analysis::run_mix(mix, bp, params);
  out.levels = bp.bp_levels();

  CmmPolicy::Options neutered = with_bp;
  neutered.bp_max_level = 0;  // BP pass can never start
  CmmPolicy off(neutered);
  out.bp_off = cmm::analysis::run_mix(mix, off, params);
  return out;
}

double hm(const RunResult& r) {
  const auto ipcs = r.ipcs();
  return cmm::analysis::harmonic_mean(ipcs);
}

}  // namespace

int main() {
  using namespace cmm;

  bench::BenchEnv env = bench::BenchEnv::from_env();
  const auto mixes = bandwidth_mixes(env.params.machine.num_cores);

  std::cout << "== fig_bw: BP axis on bandwidth-bound mixes ==\n"
            << "mixes " << mixes.size() << ", cores " << env.params.machine.num_cores
            << ", cycles " << env.params.run_cycles << ", threads " << resolve_threads(0)
            << "\n\n";

  // Parallel batch (one job per mix), then a serial re-run for the
  // determinism / thread-invariance gate.
  std::vector<MixOut> par(mixes.size());
  analysis::run_batch(mixes.size(), [&](std::size_t i) { par[i] = run_one(mixes[i], env.params); });
  std::vector<MixOut> ser(mixes.size());
  analysis::BatchOptions serial;
  serial.threads = 1;
  analysis::run_batch(
      mixes.size(), [&](std::size_t i) { ser[i] = run_one(mixes[i], env.params); }, serial);

  bool ok = true;
  double sum_cmm = 0.0;
  double sum_bp = 0.0;
  std::ostringstream records;
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    const MixOut& o = par[i];
    const MixOut& s = ser[i];
    ok &= gate(o.cmm == s.cmm && o.bp == s.bp && o.bp_off == s.bp_off && o.levels == s.levels,
               mixes[i].name + " deterministic vs CMM_THREADS=1 re-run");
    ok &= gate(o.bp_off == o.cmm, mixes[i].name + " BP-neutered run bit-identical to cmm_a");

    const double h_cmm = hm(o.cmm);
    const double h_bp = hm(o.bp);
    sum_cmm += h_cmm;
    sum_bp += h_bp;
    unsigned throttled = 0;
    for (const std::uint8_t lvl : o.levels) throttled += lvl != 0 ? 1 : 0;

    std::ostringstream rec;
    rec << "{\"bw\":{\"mix\":\"" << mixes[i].name << "\",\"hm_cmm\":" << std::setprecision(6)
        << h_cmm << ",\"hm_bp\":" << h_bp << ",\"gain_pct\":"
        << (h_cmm > 0.0 ? (h_bp / h_cmm - 1.0) * 100.0 : 0.0)
        << ",\"throttled_cores\":" << throttled << "}}";
    records << rec.str() << "\n";
    std::cout << rec.str() << "\n";
  }
  std::cout << "\n";

  const double mean_cmm = sum_cmm / static_cast<double>(mixes.size());
  const double mean_bp = sum_bp / static_cast<double>(mixes.size());
  {
    std::ostringstream rec;
    rec << "{\"bw_summary\":{\"mean_hm_cmm\":" << std::setprecision(6) << mean_cmm
        << ",\"mean_hm_bp\":" << mean_bp << ",\"gain_pct\":"
        << (mean_cmm > 0.0 ? (mean_bp / mean_cmm - 1.0) * 100.0 : 0.0) << "}}";
    records << rec.str() << "\n";
    std::cout << rec.str() << "\n";
  }
  ok &= gate(mean_bp >= mean_cmm, "mean hm_ipc: cmm_bp >= cmm_a");

  const char* json_path = std::getenv("CMM_BW_JSON");
  if (json_path != nullptr && *json_path != '\0') {
    std::ofstream out(json_path, std::ios::binary);
    out << records.str();
    std::cout << "snapshot: " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
