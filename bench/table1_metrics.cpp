// Table I: the seven PMU-derived metrics (M-1..M-7), computed per core
// for one Pref Agg workload over a profiling sample — the inputs the
// CMM front-end works from.
#include <iostream>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "hw/pmu_reader.hpp"
#include "sim/multicore_system.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Table I", "per-core metric values on a Pref Agg workload");

  const auto mixes = workloads::make_mixes(workloads::MixCategory::PrefAgg, 1,
                                           env.params.machine.num_cores, env.params.seed);
  const auto& mix = mixes.front();

  // Single-job batch: the run owns its own system, and the batch layer
  // contributes the timing/summary accounting the BENCH capture reads.
  std::vector<core::CoreMetrics> metrics;
  const auto stats = analysis::run_batch(1, [&](std::size_t) {
    sim::MulticoreSystem system(env.params.machine);
    workloads::attach_mix(system, mix, env.params.seed);
    system.run(2'000'000);  // warm, all prefetchers on (baseline state)
    const auto before = system.pmu().snapshot();
    system.run(200'000);
    const auto deltas = hw::pmu_delta(system.pmu().snapshot(), before);
    metrics = core::compute_all_metrics(deltas, env.params.machine.freq_ghz);
  });

  analysis::Table table({"core", "benchmark", "M-1 l2->llc", "M-2 pref_frac", "M-3 PTR(M/s)",
                         "M-4 PGA", "M-5 PMR", "M-6 PPM", "M-7 LLC_PT(GB/s)", "ipc"});
  for (CoreId c = 0; c < metrics.size(); ++c) {
    const auto& m = metrics[c];
    table.add_row({std::to_string(c), mix.benchmarks[c], analysis::Table::fmt(m.l2_llc_traffic, 0),
                   analysis::Table::fmt(m.l2_pref_miss_frac), analysis::Table::fmt(m.l2_ptr / 1e6, 1),
                   analysis::Table::fmt(m.pga, 2), analysis::Table::fmt(m.l2_pmr, 2),
                   analysis::Table::fmt(m.l2_ppm, 2), analysis::Table::fmt(m.llc_pt / 1e9, 2),
                   analysis::Table::fmt(m.ipc, 3)});
  }
  table.print(std::cout);
  bench::print_batch_summary(stats);
  return 0;
}
