// Shared machinery for the per-figure bench binaries: environment-
// controlled run parameters, a memoizing mix runner (baseline + each
// mechanism), and the normalized-metric helpers the paper's figures
// report.
//
// Environment knobs (all optional):
//   CMM_BENCH_SCALE   LLC capacity divisor for the simulated machine
//                     (default 16; 1 = the paper's full 20 MB LLC)
//   CMM_BENCH_CYCLES  simulated cycles per workload run (default 8e6)
//   CMM_BENCH_MIXES   workloads per category (default 3; paper uses 10)
//   CMM_BENCH_SEED    workload/mix RNG seed (default 42)
//   CMM_THREADS       worker threads for the parallel batch layer
//                     (default: hardware_concurrency). Results are
//                     bit-identical at any thread count.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/run_harness.hpp"
#include "analysis/speedup_metrics.hpp"
#include "analysis/table.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::bench {

struct BenchEnv {
  analysis::RunParams params;
  unsigned mixes_per_category = 3;

  static BenchEnv from_env();

  /// The evaluation workloads in paper presentation order (Fri, Agg,
  /// Unfri, NoAgg).
  std::vector<workloads::WorkloadMix> workloads() const;
};

/// Memoizing runner: each (mix, policy) pair is simulated once per
/// process; the baseline run and alone-IPC table are shared across
/// figures within one binary. warm() fans the simulations across
/// worker threads; the metric getters then never simulate.
class MixEvaluator {
 public:
  explicit MixEvaluator(BenchEnv env);

  /// Precompute every (mix, policy) run — plus the "baseline" runs and
  /// the alone-IPC solos the normalized metrics need — as one parallel
  /// batch. Idempotent: already-cached pairs are skipped. Returns the
  /// batch accounting (also kept, see batch_stats()).
  const analysis::BatchStats& warm(const std::vector<workloads::WorkloadMix>& mixes,
                                   std::vector<std::string> policies);

  /// Accounting of the most recent warm() batch.
  const analysis::BatchStats& batch_stats() const noexcept { return batch_; }

  const analysis::RunResult& run(const workloads::WorkloadMix& mix, const std::string& policy);

  double alone_ipc(const std::string& benchmark);

  /// HS(policy) / HS(baseline) for one mix.
  double normalized_hs(const workloads::WorkloadMix& mix, const std::string& policy);

  /// Normalized weighted speedup over the baseline run.
  double normalized_ws(const workloads::WorkloadMix& mix, const std::string& policy);

  /// Worst per-application speedup vs baseline.
  double worst_case(const workloads::WorkloadMix& mix, const std::string& policy);

  /// Total DRAM bandwidth relative to baseline.
  double normalized_bw(const workloads::WorkloadMix& mix, const std::string& policy);

  /// Sum of per-core STALLS_L2_PENDING relative to baseline.
  double normalized_stalls(const workloads::WorkloadMix& mix, const std::string& policy);

  const BenchEnv& env() const noexcept { return env_; }

 private:
  double hs(const analysis::RunResult& result);

  BenchEnv env_;
  analysis::BatchStats batch_{};
  std::map<std::string, analysis::RunResult> cache_;
  std::map<std::string, double> alone_;
};

/// Print the standard figure preamble (machine + parameters).
void print_preamble(const BenchEnv& env, const std::string& figure, const std::string& what);

/// Print the one-line JSON batch summary (jobs, threads, cache traffic,
/// wall time, speedup) that the BENCH_*.json capture parses.
void print_batch_summary(const analysis::BatchStats& stats);

/// Mean of a metric over the mixes of one category.
double category_mean(MixEvaluator& eval, const std::vector<workloads::WorkloadMix>& mixes,
                     workloads::MixCategory category, const std::string& policy,
                     double (MixEvaluator::*metric)(const workloads::WorkloadMix&,
                                                    const std::string&));

}  // namespace cmm::bench
