// Fig. 9: normalized HS and WS of the cache-partitioning mechanisms —
// the Dunn baseline (Selfa et al.) vs Pref-CP vs Pref-CP2. Paper shape:
// the prefetch-aware partitioners beat prefetch-blind Dunn clearly.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 9", "normalized HS and WS: Dunn vs Pref-CP vs Pref-CP2");

  bench::MixEvaluator eval(env);
  const auto mixes = env.workloads();
  const std::vector<std::string> policies{"dunn", "pref_cp", "pref_cp2"};
  eval.warm(mixes, policies);

  analysis::Table table({"workload", "dunn HS", "pref_cp HS", "pref_cp2 HS", "dunn WS",
                         "pref_cp WS", "pref_cp2 WS"});
  for (const auto& mix : mixes) {
    std::vector<std::string> row{mix.name};
    for (const auto& p : policies) row.push_back(analysis::Table::fmt(eval.normalized_hs(mix, p)));
    for (const auto& p : policies) row.push_back(analysis::Table::fmt(eval.normalized_ws(mix, p)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\ncategory mean HS/HS_base:\n";
  analysis::Table means({"category", "dunn", "pref_cp", "pref_cp2"});
  for (const auto category :
       {workloads::MixCategory::PrefFri, workloads::MixCategory::PrefAgg,
        workloads::MixCategory::PrefUnfri, workloads::MixCategory::PrefNoAgg}) {
    std::vector<std::string> row{std::string(workloads::to_string(category))};
    for (const auto& p : policies) {
      row.push_back(analysis::Table::fmt(
          bench::category_mean(eval, mixes, category, p, &bench::MixEvaluator::normalized_hs)));
    }
    means.add_row(std::move(row));
  }
  means.print(std::cout);
  bench::print_batch_summary(eval.batch_stats());
  return 0;
}
