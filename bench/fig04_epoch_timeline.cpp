// Fig. 4: the execution-epoch / profiling-epoch / sampling-interval
// schedule. The figure in the paper is a diagram; this bench prints the
// actual timeline the EpochDriver executed for one workload under
// CMM-a, making the structure (and the ~50:1 epoch:sample ratio)
// visible and checkable.
#include <cstdlib>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/epoch_driver.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/multicore_system.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 4", "execution/sampling timeline under cmm_a");

  const auto mixes = workloads::make_mixes(workloads::MixCategory::PrefAgg, 1,
                                           env.params.machine.num_cores, env.params.seed);
  sim::MulticoreSystem system(env.params.machine);
  workloads::attach_mix(system, mixes.front(), env.params.seed);
  auto policy = analysis::make_policy("cmm_a", env.params.detector());

  // CMM_TRACE_FILE=<path> writes the run's full JSONL event trace (see
  // EXPERIMENTS.md "Observability"; scripts/trace_report.py renders it).
  core::EpochConfig epochs = env.params.epochs;
  std::unique_ptr<obs::JsonlTraceSink> sink;
  obs::MetricsRegistry registry;
  if (const char* path = std::getenv("CMM_TRACE_FILE"); path != nullptr && *path != '\0') {
    sink = std::make_unique<obs::JsonlTraceSink>(std::string(path));
    epochs.sink = sink.get();
    epochs.metrics = &registry;
  }

  core::EpochDriver driver(system, *policy, epochs);
  driver.run(env.params.run_cycles);

  analysis::Table table({"t(start)", "kind", "length", "prefetch bits", "mask[core0]"});
  for (const auto& entry : driver.log()) {
    std::string bits;
    for (const bool b : entry.config.prefetch_on) bits += (b ? '1' : '0');
    char mask[16] = "-";
    if (!entry.config.way_masks.empty())
      std::snprintf(mask, sizeof mask, "0x%x", entry.config.way_masks[0]);
    table.add_row({std::to_string(entry.start),
                   entry.kind == core::EpochLogEntry::Kind::Execution ? "execution" : "sample",
                   std::to_string(entry.length), bits.empty() ? "-" : bits, mask});
  }
  table.print(std::cout);
  std::cout << "\nepoch:sample ratio = "
            << static_cast<double>(env.params.epochs.execution_epoch) /
                   static_cast<double>(env.params.epochs.sampling_interval)
            << " (paper: 50:1)\n";
  if (sink != nullptr) {
    sink->flush();
    std::cout << "trace: " << sink->events() << " events -> " << std::getenv("CMM_TRACE_FILE")
              << "\nmetrics: " << registry.json() << "\n";
  }
  return 0;
}
