// Fig. 12: worst-case per-application speedup under CMM-a/b/c. Paper
// shape: every workload keeps >= 0.8, most >= 0.9 — no individual
// application is sacrificed.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 12", "worst-case speedup: CMM-a/b/c");

  bench::MixEvaluator eval(env);
  const auto mixes = env.workloads();
  eval.warm(mixes, {"cmm_a", "cmm_b", "cmm_c"});

  unsigned above80 = 0;
  unsigned above90 = 0;
  analysis::Table table({"workload", "cmm_a", "cmm_b", "cmm_c"});
  for (const auto& mix : mixes) {
    const double a = eval.worst_case(mix, "cmm_a");
    const double b = eval.worst_case(mix, "cmm_b");
    const double c = eval.worst_case(mix, "cmm_c");
    const double lo = std::min({a, b, c});
    if (lo >= 0.8) ++above80;
    if (lo >= 0.9) ++above90;
    table.add_row({mix.name, analysis::Table::fmt(a), analysis::Table::fmt(b),
                   analysis::Table::fmt(c)});
  }
  table.print(std::cout);
  std::cout << "\nworkloads with worst-case >= 0.8 under all variants: " << above80 << "/"
            << mixes.size() << "  (>= 0.9: " << above90 << ")\n";
  bench::print_batch_summary(eval.batch_stats());
  return 0;
}
