// Fig. 8: the lowest normalized per-application IPC within each
// workload under PT. Paper shape: at least one application loses >20 %
// in ~80 % of workloads (the cost of throttling prefetch-friendly
// programs).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 8", "lowest normalized IPC per workload under PT");

  bench::MixEvaluator eval(env);
  const auto mixes = env.workloads();
  eval.warm(mixes, {"pt"});

  unsigned degraded = 0;
  analysis::Table table({"workload", "worst-case speedup"});
  for (const auto& mix : mixes) {
    const double wc = eval.worst_case(mix, "pt");
    if (wc < 0.8) ++degraded;
    table.add_row({mix.name, analysis::Table::fmt(wc)});
  }
  table.print(std::cout);
  std::cout << "\nworkloads with an application degraded >20%: " << degraded << "/"
            << mixes.size() << "\n";
  bench::print_batch_summary(eval.batch_stats());
  return 0;
}
