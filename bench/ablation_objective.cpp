// Ablation: the paper's hm_ipc sampling proxy (the harmonic mean of
// core IPCs, a stand-in for 1/ANTT) vs a raw-throughput objective
// (sum of IPCs). The fairness-blind objective should win weighted
// throughput but lose worst-case speedup — the reason the paper picks
// the harmonic proxy.
#include <iostream>

#include "bench_common.hpp"
#include "core/policy_pt.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Ablation/objective",
                        "PT with hm_ipc vs sum-IPC sampling objective");

  const auto mixes = workloads::make_mixes(workloads::MixCategory::PrefFri, 2,
                                           env.params.machine.num_cores, env.params.seed);

  analysis::Table table(
      {"workload", "objective", "WS vs baseline", "worst-case app speedup"});
  for (const auto& mix : mixes) {
    auto base_pol = analysis::make_policy("baseline", env.params.detector());
    const auto base = analysis::run_mix(mix, *base_pol, env.params);

    for (const auto objective : {core::SampleObjective::HmIpc, core::SampleObjective::SumIpc}) {
      core::PtPolicy::Options opts;
      opts.detector = env.params.detector();
      opts.objective = objective;
      core::PtPolicy policy(opts);
      const auto run = analysis::run_mix(mix, policy, env.params);
      table.add_row({mix.name,
                     objective == core::SampleObjective::HmIpc ? "hm_ipc (paper)" : "sum_ipc",
                     analysis::Table::fmt(analysis::weighted_speedup(run.ipcs(), base.ipcs())),
                     analysis::Table::fmt(
                         analysis::worst_case_speedup(run.ipcs(), base.ipcs()))});
    }
  }
  table.print(std::cout);
  return 0;
}
