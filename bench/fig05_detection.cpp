// Fig. 5: the Agg-core detection pipeline (PGA above mean -> L2 PMR
// filter -> L2 PTR gate). The paper's figure is a flow diagram; this
// bench traces each stage's decision for every core of one workload
// per category.
#include <iostream>

#include "bench_common.hpp"
#include "core/detector.hpp"
#include "core/metrics.hpp"
#include "hw/pmu_reader.hpp"
#include "sim/multicore_system.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 5", "Agg-set detection trace per workload category");

  const core::DetectorConfig det = env.params.detector();
  for (const auto category :
       {workloads::MixCategory::PrefFri, workloads::MixCategory::PrefAgg,
        workloads::MixCategory::PrefUnfri, workloads::MixCategory::PrefNoAgg}) {
    const auto mixes = workloads::make_mixes(category, 1, env.params.machine.num_cores,
                                             env.params.seed);
    const auto& mix = mixes.front();

    sim::MulticoreSystem system(env.params.machine);
    workloads::attach_mix(system, mix, env.params.seed);
    system.run(2'000'000);
    const auto before = system.pmu().snapshot();
    system.run(200'000);
    const auto metrics = core::compute_all_metrics(
        hw::pmu_delta(system.pmu().snapshot(), before), env.params.machine.freq_ghz);

    double mean_pga = 0.0;
    for (const auto& m : metrics) mean_pga += m.pga / static_cast<double>(metrics.size());
    const auto agg = core::detect_aggressive(metrics, det);

    std::cout << "-- " << mix.name << " (mean PGA " << analysis::Table::fmt(mean_pga, 2)
              << ") --\n";
    analysis::Table table({"core", "benchmark", "PGA", "pass1", "PMR", "pass2", "PTR(M/s)",
                           "pass3", "in Agg set"});
    for (CoreId c = 0; c < metrics.size(); ++c) {
      const auto& m = metrics[c];
      const bool p1 = m.pga >= det.pga_floor && m.pga >= det.pga_rel_mean * mean_pga;
      const bool p2 = p1 && m.l2_pmr >= det.pmr_threshold;
      const bool p3 = p2 && m.l2_ptr >= det.ptr_threshold_per_sec;
      const bool in_agg = std::find(agg.begin(), agg.end(), c) != agg.end();
      table.add_row({std::to_string(c), mix.benchmarks[c], analysis::Table::fmt(m.pga, 2),
                     p1 ? "y" : "-", analysis::Table::fmt(m.l2_pmr, 2), p2 ? "y" : "-",
                     analysis::Table::fmt(m.l2_ptr / 1e6, 1), p3 ? "y" : "-",
                     in_agg ? "AGG" : ""});
    }
    table.print(std::cout);
    std::cout << "\n";

    // Machine-readable verdict line, one per category: pinned as golden
    // JSON by scripts/check_golden.py (ctest Golden.fig05_detection) so
    // detector-verdict drift fails loudly instead of shifting figures.
    std::cout << "{\"fig05\":{\"mix\":\"" << mix.name << "\",\"mean_pga\":"
              << analysis::Table::fmt(mean_pga, 4) << ",\"cores\":[";
    for (CoreId c = 0; c < metrics.size(); ++c) {
      const auto& m = metrics[c];
      const bool p1 = m.pga >= det.pga_floor && m.pga >= det.pga_rel_mean * mean_pga;
      const bool p2 = p1 && m.l2_pmr >= det.pmr_threshold;
      const bool p3 = p2 && m.l2_ptr >= det.ptr_threshold_per_sec;
      const bool in_agg = std::find(agg.begin(), agg.end(), c) != agg.end();
      std::cout << (c ? "," : "") << "{\"core\":" << c << ",\"benchmark\":\""
                << mix.benchmarks[c] << "\",\"pga\":" << analysis::Table::fmt(m.pga, 4)
                << ",\"pmr\":" << analysis::Table::fmt(m.l2_pmr, 4) << ",\"ptr_mps\":"
                << analysis::Table::fmt(m.l2_ptr / 1e6, 4) << ",\"pass\":[" << p1 << ',' << p2
                << ',' << p3 << "],\"agg\":" << in_agg << '}';
    }
    std::cout << "]}}\n";
  }
  return 0;
}
