// Fig. 15: per-workload STALLS_L2_PENDING (summed over cores),
// normalized to the baseline — the paper's performance-isolation
// indicator. Paper shape: CMM-a/c lowest for most workloads.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 15", "normalized L2-pending stalls, all 7 mechanisms");

  bench::MixEvaluator eval(env);
  const auto mixes = env.workloads();
  const auto policies = analysis::mechanism_names();
  eval.warm(mixes, policies);

  std::vector<std::string> headers{"workload"};
  for (const auto& p : policies) headers.push_back(p);
  analysis::Table table(headers);
  for (const auto& mix : mixes) {
    std::vector<std::string> row{mix.name};
    for (const auto& p : policies)
      row.push_back(analysis::Table::fmt(eval.normalized_stalls(mix, p)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\ncategory means:\n";
  analysis::Table means(headers);
  for (const auto category :
       {workloads::MixCategory::PrefFri, workloads::MixCategory::PrefAgg,
        workloads::MixCategory::PrefUnfri, workloads::MixCategory::PrefNoAgg}) {
    std::vector<std::string> row{std::string(workloads::to_string(category))};
    for (const auto& p : policies) {
      row.push_back(analysis::Table::fmt(bench::category_mean(
          eval, mixes, category, p, &bench::MixEvaluator::normalized_stalls)));
    }
    means.add_row(std::move(row));
  }
  means.print(std::cout);
  bench::print_batch_summary(eval.batch_stats());
  return 0;
}
