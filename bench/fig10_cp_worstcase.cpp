// Fig. 10: worst-case per-application speedup under the CP mechanisms.
// Paper shape: Pref-CP / Pref-CP2 have a higher worst case than Dunn.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 10", "worst-case speedup: Dunn vs Pref-CP vs Pref-CP2");

  bench::MixEvaluator eval(env);
  const auto mixes = env.workloads();
  eval.warm(mixes, {"dunn", "pref_cp", "pref_cp2"});

  analysis::Table table({"workload", "dunn", "pref_cp", "pref_cp2"});
  for (const auto& mix : mixes) {
    table.add_row({mix.name, analysis::Table::fmt(eval.worst_case(mix, "dunn")),
                   analysis::Table::fmt(eval.worst_case(mix, "pref_cp")),
                   analysis::Table::fmt(eval.worst_case(mix, "pref_cp2"))});
  }
  table.print(std::cout);
  bench::print_batch_summary(eval.batch_stats());
  return 0;
}
