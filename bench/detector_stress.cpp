// Detector-stress sweep: the fig05 workload categories under every
// prefetcher-engine profile from the zoo (homogeneous + a heterogeneous
// rotation), scoring the CMM detector's Agg-set verdicts against the
// benchmark suite's ground-truth labels. Prints the per-scenario table
// and the misclassification matrix as a JSON artifact (tagged
// "detector_stress"), which CI diffs against the checked-in baseline
// tests/golden/detector_stress_matrix.json.
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/detector_eval.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Detector stress",
                        "Agg-set misclassification across prefetcher engine profiles");

  const auto outcomes =
      core::run_stress_suite(env.params.machine, env.params.detector(), env.params.seed,
                             /*warmup_cycles=*/1'000'000, /*measure_cycles=*/200'000);

  analysis::Table table({"scenario", "flagged", "expected", "tp", "fn", "fp", "tn"});
  for (const auto& o : outcomes) {
    std::ostringstream flagged, expected;
    for (const auto c : o.flagged) flagged << c << ' ';
    for (const auto c : o.expected) expected << c << ' ';
    table.add_row({o.scenario, flagged.str(), expected.str(), std::to_string(o.tp),
                   std::to_string(o.fn), std::to_string(o.fp), std::to_string(o.tn)});
  }
  table.print(std::cout);
  std::cout << "\n";

  // Single-line variant of the matrix for golden diffing (the pretty
  // multi-line artifact lives in the detector-stress test suite).
  std::string line = core::misclassification_json(outcomes);
  for (std::size_t i = 0; i < line.size();) {  // strip newlines + indent
    if (line[i] == '\n') {
      line.erase(i, 1);
      while (i < line.size() && line[i] == ' ') line.erase(i, 1);
    } else {
      ++i;
    }
  }
  std::cout << line << "\n";
  return 0;
}
