// Fig. 6: the partition options (a)-(d) of the coordinated back-end.
// The paper's figure is a diagram; this bench runs each CMM variant on
// one Pref Agg workload and prints the way masks and throttling it
// actually chose, plus the Dunn fallback on a Pref No Agg workload
// (option d).
#include <iostream>

#include "bench_common.hpp"
#include "core/epoch_driver.hpp"
#include "sim/multicore_system.hpp"

namespace {

void show(const cmm::bench::BenchEnv& env, const cmm::workloads::WorkloadMix& mix,
          const std::string& policy) {
  using namespace cmm;
  sim::MulticoreSystem system(env.params.machine);
  workloads::attach_mix(system, mix, env.params.seed);
  auto pol = analysis::make_policy(policy, env.params.detector());
  core::EpochDriver driver(system, *pol, env.params.epochs);
  driver.run(env.params.run_cycles);

  std::cout << "-- " << policy << " on " << mix.name << " --\n";
  analysis::Table table({"core", "benchmark", "way mask", "ways", "prefetchers"});
  for (CoreId c = 0; c < system.num_cores(); ++c) {
    const WayMask mask = system.cat().core_mask(c);
    char hex[16];
    std::snprintf(hex, sizeof hex, "0x%05x", mask);
    table.add_row({std::to_string(c), mix.benchmarks[c], hex,
                   std::to_string(popcount(mask)),
                   system.core(c).prefetch_msr().all_enabled() ? "on" : "throttled"});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 6", "partition options chosen by CMM-a/b/c (+Dunn fallback)");

  const auto agg_mix = workloads::make_mixes(workloads::MixCategory::PrefAgg, 1,
                                             env.params.machine.num_cores, env.params.seed)
                           .front();
  for (const std::string policy : {"cmm_a", "cmm_b", "cmm_c"}) show(env, agg_mix, policy);

  const auto quiet_mix = workloads::make_mixes(workloads::MixCategory::PrefNoAgg, 1,
                                               env.params.machine.num_cores, env.params.seed)
                             .front();
  std::cout << "option (d): empty Agg set falls back to the Dunn partitioner\n";
  show(env, quiet_mix, "cmm_a");
  return 0;
}
