// Fig. 11: normalized HS and WS of the coordinated mechanisms CMM-a/b/c.
// Paper shape: a and c beat b on Pref Agg / Pref Unfri (CMM-b leaves
// unfriendly cores the whole LLC, so their demand interference stays).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 11", "normalized HS and WS: CMM-a/b/c");

  bench::MixEvaluator eval(env);
  const auto mixes = env.workloads();
  const std::vector<std::string> policies{"cmm_a", "cmm_b", "cmm_c"};
  eval.warm(mixes, policies);

  analysis::Table table(
      {"workload", "cmm_a HS", "cmm_b HS", "cmm_c HS", "cmm_a WS", "cmm_b WS", "cmm_c WS"});
  for (const auto& mix : mixes) {
    std::vector<std::string> row{mix.name};
    for (const auto& p : policies) row.push_back(analysis::Table::fmt(eval.normalized_hs(mix, p)));
    for (const auto& p : policies) row.push_back(analysis::Table::fmt(eval.normalized_ws(mix, p)));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\ncategory mean HS/HS_base:\n";
  analysis::Table means({"category", "cmm_a", "cmm_b", "cmm_c"});
  for (const auto category :
       {workloads::MixCategory::PrefFri, workloads::MixCategory::PrefAgg,
        workloads::MixCategory::PrefUnfri, workloads::MixCategory::PrefNoAgg}) {
    std::vector<std::string> row{std::string(workloads::to_string(category))};
    for (const auto& p : policies) {
      row.push_back(analysis::Table::fmt(
          bench::category_mean(eval, mixes, category, p, &bench::MixEvaluator::normalized_hs)));
    }
    means.add_row(std::move(row));
  }
  means.print(std::cout);
  bench::print_batch_summary(eval.batch_stats());
  return 0;
}
