// Fig. 13: all seven mechanisms side by side (category mean normalized
// HS). Paper shape: Pref Agg and Pref Unfri categories benefit most;
// CMM-a/c lead overall.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 13", "category mean normalized HS, all 7 mechanisms");

  bench::MixEvaluator eval(env);
  const auto mixes = env.workloads();
  const auto policies = analysis::mechanism_names();
  eval.warm(mixes, policies);

  std::vector<std::string> headers{"category"};
  for (const auto& p : policies) headers.push_back(p);
  analysis::Table table(headers);
  for (const auto category :
       {workloads::MixCategory::PrefFri, workloads::MixCategory::PrefAgg,
        workloads::MixCategory::PrefUnfri, workloads::MixCategory::PrefNoAgg}) {
    std::vector<std::string> row{std::string(workloads::to_string(category))};
    for (const auto& p : policies) {
      row.push_back(analysis::Table::fmt(
          bench::category_mean(eval, mixes, category, p, &bench::MixEvaluator::normalized_hs)));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\ncategory mean normalized WS:\n";
  analysis::Table ws(headers);
  for (const auto category :
       {workloads::MixCategory::PrefFri, workloads::MixCategory::PrefAgg,
        workloads::MixCategory::PrefUnfri, workloads::MixCategory::PrefNoAgg}) {
    std::vector<std::string> row{std::string(workloads::to_string(category))};
    for (const auto& p : policies) {
      row.push_back(analysis::Table::fmt(
          bench::category_mean(eval, mixes, category, p, &bench::MixEvaluator::normalized_ws)));
    }
    ws.add_row(std::move(row));
  }
  ws.print(std::cout);
  bench::print_batch_summary(eval.batch_stats());
  return 0;
}
