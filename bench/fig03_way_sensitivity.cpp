// Fig. 3: per-benchmark IPC as a function of allocated LLC ways
// (prefetching on). Paper shape: prefetch-aggressive/friendly programs
// reach 90 % of peak with <= 2 ways; LLC-sensitive programs need >= 8
// ways for 80 %.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 3", "IPC vs number of LLC ways (prefetch on)");

  const unsigned total_ways = env.params.machine.llc.ways;
  std::vector<std::string> headers{"benchmark"};
  for (unsigned w = 1; w <= total_ways; ++w) headers.push_back("w" + std::to_string(w));
  headers.push_back("w80");
  headers.push_back("w90");
  analysis::Table table(headers);

  const auto& suite = workloads::benchmark_suite();
  std::vector<analysis::SoloQuery> queries;
  for (const auto& spec : suite) {
    for (unsigned w = 1; w <= total_ways; ++w) queries.push_back({spec.name, true, w});
  }
  analysis::BatchStats stats;
  const auto results = analysis::run_solo_batch(queries, env.params, {}, &stats);

  for (std::size_t b = 0; b < suite.size(); ++b) {
    std::vector<double> ipc(total_ways + 1, 0.0);
    double best = 0.0;
    for (unsigned w = 1; w <= total_ways; ++w) {
      ipc[w] = results[b * total_ways + (w - 1)].cores.front().ipc;
      best = std::max(best, ipc[w]);
    }
    unsigned w80 = 0;
    unsigned w90 = 0;
    std::vector<std::string> row{suite[b].name};
    for (unsigned w = 1; w <= total_ways; ++w) {
      row.push_back(analysis::Table::fmt(best > 0 ? ipc[w] / best : 0.0, 2));
      if (w80 == 0 && ipc[w] >= 0.8 * best) w80 = w;
      if (w90 == 0 && ipc[w] >= 0.9 * best) w90 = w;
    }
    row.push_back(std::to_string(w80));
    row.push_back(std::to_string(w90));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(values are IPC normalized to the benchmark's best across ways)\n";
  bench::print_batch_summary(stats);
  return 0;
}
