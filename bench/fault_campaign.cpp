// Fault campaign: sweeps fault rates x fault kinds over the Fig. 11
// evaluation mixes under CMM-a and reports, per run, the harmonic-mean
// IPC against the no-management baseline plus the HealthLog summary.
// The point of the report is the robustness claim: under injected HAL
// faults the controller degrades smoothly toward baseline instead of
// crashing or wedging the hardware.
//
// Hard invariants checked in-process (non-zero exit on violation):
//   * every run completes (no exception escapes the EpochDriver)
//   * a zero-rate plan through the fault layer is bit-identical to a
//     run without the fault layer
//   * the policy-throw scenario ends with hardware at baseline (all
//     prefetchers on, full-mask COS) and a WatchdogRestore logged
//   * repeating a faulted scenario with the same FaultPlan seed yields
//     an identical HealthLog and bit-identical results
//   * at a 10 % transient rate, hm_ipc stays at or above the
//     no-management baseline — up to the policy's own fault-free gap:
//     some mixes run marginally below baseline even without faults, so
//     the gate compares against the weaker of the baseline and the
//     fault-free CMM run, isolating fault-induced loss
#include <functional>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"

namespace {

using namespace cmm;

/// Wraps a policy and throws on every begin_profiling: the scenario
/// that exercises the EpochDriver's watchdog every single epoch.
class ThrowingPolicy final : public core::Policy {
 public:
  explicit ThrowingPolicy(std::unique_ptr<core::Policy> inner) : inner_(std::move(inner)) {}

  std::string_view name() const noexcept override { return "throwing"; }
  core::ResourceConfig initial_config(unsigned num_cores, unsigned llc_ways) override {
    return inner_->initial_config(num_cores, llc_ways);
  }
  void begin_profiling(const std::vector<sim::PmuCounters>& epoch_deltas) override {
    (void)epoch_deltas;
    throw std::runtime_error("injected policy fault");
  }
  std::optional<core::ResourceConfig> next_sample() override { return inner_->next_sample(); }
  void report_sample(const core::SampleStats& stats) override { inner_->report_sample(stats); }
  core::ResourceConfig final_config() override { return inner_->final_config(); }

 private:
  std::unique_ptr<core::Policy> inner_;
};

struct Scenario {
  std::string kind;
  double rate = 0.0;
  hw::FaultPlan plan;
  bool throwing_policy = false;
};

std::vector<Scenario> make_scenarios(std::uint64_t seed, unsigned num_cores) {
  std::vector<Scenario> s;
  const std::vector<double> rates{0.0, 0.02, 0.10};
  for (const double r : rates) {
    s.push_back({"transient", r, hw::FaultPlan::transient_everywhere(r, seed), false});
  }
  for (const double r : rates) {
    hw::FaultPlan p;
    p.seed = seed;
    p.msr_write_fail_p = r;
    p.transient_fraction = 0.0;  // persistent: forces per-core prefetch offline
    s.push_back({"msr_persistent", r, p, false});
  }
  for (const double r : rates) {
    hw::FaultPlan p;
    p.seed = seed;
    p.cat_apply_fail_p = r;
    p.transient_fraction = 0.0;  // persistent: forces the PT-only rung
    s.push_back({"cat_persistent", r, p, false});
  }
  for (const double r : rates) {
    hw::FaultPlan p;
    p.seed = seed;
    p.pmu_wrap_p = r;
    s.push_back({"pmu_wrap", r, p, false});
  }
  for (const double r : rates) {
    hw::FaultPlan p;
    p.seed = seed;
    p.pmu_garbage_p = r;
    s.push_back({"pmu_garbage", r, p, false});
  }
  {
    hw::FaultPlan p;
    p.seed = seed;
    p.offline_cores.push_back(num_cores - 1);  // hotplugged core
    s.push_back({"offline_core", 1.0, p, false});
  }
  {
    hw::FaultPlan p;  // no HAL faults; the policy itself is the fault
    p.seed = seed;
    s.push_back({"policy_throw", 1.0, p, true});
  }
  return s;
}

double result_hm_ipc(const analysis::RunResult& r) {
  std::vector<sim::PmuCounters> deltas;
  deltas.reserve(r.cores.size());
  for (const auto& c : r.cores) deltas.push_back(c.counters);
  return core::hm_ipc(deltas);
}

analysis::FaultRunOutcome run_scenario(const workloads::WorkloadMix& mix, const Scenario& sc,
                                       const analysis::RunParams& params) {
  auto policy = analysis::make_policy("cmm_a", params.detector());
  if (sc.throwing_policy) {
    auto throwing = std::make_unique<ThrowingPolicy>(std::move(policy));
    return analysis::run_mix_with_faults(mix, *throwing, params, sc.plan);
  }
  return analysis::run_mix_with_faults(mix, *policy, params, sc.plan);
}

}  // namespace

int main() {
  auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fault campaign", "hm_ipc degradation under injected HAL faults");

  const auto mixes = env.workloads();
  const auto scenarios = make_scenarios(env.params.seed, env.params.machine.num_cores);

  // Reference runs per mix: the plain (no fault layer) CMM-a run for
  // the bit-identity check, and the no-management baseline hm_ipc the
  // degradation is measured against.
  std::vector<analysis::RunResult> plain(mixes.size());
  std::vector<double> baseline_hm(mixes.size());
  std::vector<analysis::FaultRunOutcome> outcomes(mixes.size() * scenarios.size());

  const std::size_t ref_jobs = mixes.size() * 2;
  const auto stats = analysis::run_batch(ref_jobs + outcomes.size(), [&](std::size_t i) {
    if (i < mixes.size()) {
      auto policy = analysis::make_policy("cmm_a", env.params.detector());
      plain[i] = analysis::run_mix(mixes[i], *policy, env.params);
    } else if (i < ref_jobs) {
      const std::size_t m = i - mixes.size();
      auto policy = analysis::make_policy("baseline", env.params.detector());
      baseline_hm[m] = result_hm_ipc(analysis::run_mix(mixes[m], *policy, env.params));
    } else {
      const std::size_t j = i - ref_jobs;
      const auto& mix = mixes[j / scenarios.size()];
      const auto& sc = scenarios[j % scenarios.size()];
      outcomes[j] = run_scenario(mix, sc, env.params);
    }
  });

  bool ok = true;
  auto fail = [&ok](const std::string& what) {
    std::cout << "INVARIANT VIOLATED: " << what << "\n";
    ok = false;
  };

  for (std::size_t m = 0; m < mixes.size(); ++m) {
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const auto& mix = mixes[m];
      const auto& sc = scenarios[s];
      const auto& out = outcomes[m * scenarios.size() + s];

      std::ostringstream line;
      line.setf(std::ios::fixed);
      line.precision(4);
      line << "{\"mix\":\"" << mix.name << "\",\"kind\":\"" << sc.kind << "\",\"rate\":" << sc.rate
           << ",\"completed\":" << (out.completed ? "true" : "false")
           << ",\"hm_ipc\":" << out.hm_ipc << ",\"baseline_hm\":" << baseline_hm[m]
           << ",\"vs_baseline\":" << (baseline_hm[m] > 0.0 ? out.hm_ipc / baseline_hm[m] : 0.0)
           << ",\"prefetch_available\":" << (out.prefetch_available ? "true" : "false")
           << ",\"cat_available\":" << (out.cat_available ? "true" : "false")
           << ",\"baseline_at_end\":" << (out.hardware_baseline_at_end ? "true" : "false")
           << ",\"health\":" << out.health.summary_json() << "}";
      std::cout << line.str() << "\n";

      if (!out.completed) {
        fail(mix.name + "/" + sc.kind + ": run did not complete: " + out.error);
        continue;
      }
      if (sc.kind == "transient" && sc.rate == 0.0) {
        if (!(out.result == plain[m]))
          fail(mix.name + ": zero-rate fault layer is not bit-identical to the plain run");
        if (!out.health.empty()) fail(mix.name + ": zero-rate run logged health events");
      }
      if (sc.kind == "policy_throw") {
        // The throw happens in begin_profiling, so the watchdog can
        // only fire if the run contains at least one profiling epoch.
        if (env.params.run_cycles > env.params.epochs.execution_epoch) {
          if (!out.health.has(core::HealthEventKind::WatchdogRestore))
            fail(mix.name + "/policy_throw: no WatchdogRestore logged");
          if (!out.hardware_baseline_at_end)
            fail(mix.name + "/policy_throw: hardware not at baseline after watchdog recovery");
        } else if (m == 0) {
          std::cout << "note: run shorter than one execution epoch; watchdog invariant "
                       "not exercised (raise CMM_BENCH_CYCLES)\n";
        }
      }
      if (sc.kind == "transient" && sc.rate == 0.10) {
        const double floor = std::min(baseline_hm[m], result_hm_ipc(plain[m]));
        if (out.hm_ipc + 1e-12 < floor)
          fail(mix.name + ": hm_ipc under 10% transient faults fell below the no-management "
                          "baseline");
      }
    }
  }

  // Determinism: the first mix's heaviest scenario, repeated, must
  // reproduce the HealthLog and results bit for bit.
  {
    const Scenario& heavy = scenarios[2];  // transient @ 0.10
    const auto a = run_scenario(mixes.front(), heavy, env.params);
    const auto& b = outcomes[2];
    if (!(a.health == b.health))
      fail("repeat run with the same FaultPlan seed produced a different HealthLog");
    if (!(a.result == b.result))
      fail("repeat run with the same FaultPlan seed produced different results");
  }

  bench::print_batch_summary(stats);
  std::cout << (ok ? "CAMPAIGN PASS" : "CAMPAIGN FAIL") << "\n";
  return ok ? 0 : 1;
}
