// google-benchmark micro benches for the substrate itself: cache access
// throughput, prefetcher observation cost, k-means, full-system
// simulation rate, and the PT-search ablation (exhaustive vs
// group-level) that motivates the paper's k-means grouping.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/epoch_driver.hpp"
#include "core/kmeans.hpp"
#include "core/policy.hpp"
#include "core/policy_cmm.hpp"
#include "sim/cache.hpp"
#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"
#include "workloads/workload_mix.hpp"

namespace {

using namespace cmm;

// Cyclic walk over a working set of `range(0)` lines in a 32 KB 8-way
// L1 geometry (64 sets). 64 lines = one way per set (single-tag
// probes); 512 = the full L1, so every probe scans a full set; 4096 =
// 8x thrashing, so most probes are full-set scans that miss.
void BM_CacheAccessHit(benchmark::State& state) {
  sim::SetAssocCache cache(sim::CacheGeometry{32 * 1024, 8, 64});
  const auto working_set = static_cast<Addr>(state.range(0));
  for (Addr line = 0; line < working_set; ++line)
    cache.fill(line, AccessType::DemandLoad, 0, 0, ~WayMask{0});
  Addr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(line, AccessType::DemandLoad, 0));
    line = (line + 1) % working_set;
  }
}
BENCHMARK(BM_CacheAccessHit)->Arg(64)->Arg(512)->Arg(4096);

// Pure tag-probe throughput on the paper's 20-way LLC geometry: the
// SIMD hot path with no LRU/fill bookkeeping. `contains` is probe-only,
// so these two are the cleanest view of the vector compare. "Hit"
// probes resident lines (the match lands in a different way each
// probe); "Miss" probes absent lines, so every probe scans all 20 ways
// and falls through — the case the vector compare collapses hardest.
void BM_CacheProbeHit(benchmark::State& state) {
  sim::SetAssocCache cache(sim::CacheGeometry{20 * 1024 * 1024 / 16, 20, 64});
  const auto resident = static_cast<Addr>(cache.num_sets()) * 20;
  for (Addr line = 0; line < resident; ++line)
    cache.fill(line, AccessType::DemandLoad, 0, 0, ~WayMask{0});
  Addr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.contains(line));
    if (++line == resident) line = 0;  // not a power of two: avoid div in the loop
  }
}
BENCHMARK(BM_CacheProbeHit);

void BM_CacheProbeMiss(benchmark::State& state) {
  sim::SetAssocCache cache(sim::CacheGeometry{20 * 1024 * 1024 / 16, 20, 64});
  const auto resident = static_cast<Addr>(cache.num_sets()) * 20;
  for (Addr line = 0; line < resident; ++line)
    cache.fill(line, AccessType::DemandLoad, 0, 0, ~WayMask{0});
  Addr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.contains(resident + line));
    if (++line == resident) line = 0;
  }
}
BENCHMARK(BM_CacheProbeMiss);

void BM_CacheFillEvict(benchmark::State& state) {
  sim::SetAssocCache cache(sim::CacheGeometry{32 * 1024, 8, 64});
  Addr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(line++, AccessType::DemandLoad, 0, 0, ~WayMask{0}));
  }
}
BENCHMARK(BM_CacheFillEvict);

void BM_CacheFillMasked(benchmark::State& state) {
  sim::SetAssocCache cache(sim::CacheGeometry{20 * 1024 * 1024 / 16, 20, 64});
  const WayMask mask = contiguous_mask(0, static_cast<unsigned>(state.range(0)));
  Addr line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fill(line++, AccessType::Prefetch, 0, 0, mask));
  }
}
BENCHMARK(BM_CacheFillMasked)->Arg(2)->Arg(6)->Arg(20);

void BM_StreamerObserve(benchmark::State& state) {
  sim::StreamerPrefetcher streamer;
  std::vector<Addr> out;
  Addr line = 0;
  for (auto _ : state) {
    out.clear();
    streamer.observe({line++, 1, true}, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_StreamerObserve);

void BM_KMeans1D(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> values(static_cast<std::size_t>(state.range(0)));
  for (auto& v : values) v = rng.next_double() * 1e8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::kmeans_1d(values, 3));
  }
}
BENCHMARK(BM_KMeans1D)->Arg(8)->Arg(64);

void BM_SystemSimulation(benchmark::State& state) {
  const auto cfg = sim::MachineConfig::scaled(16);
  sim::MulticoreSystem system(cfg);
  const auto mixes = workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg.num_cores, 7);
  workloads::attach_mix(system, mixes.front(), 42);
  for (auto _ : state) {
    system.run(10'000);
  }
  state.SetItemsProcessed(state.iterations() * 10'000 * cfg.num_cores);
}
BENCHMARK(BM_SystemSimulation)->Unit(benchmark::kMillisecond);

// Full-system throughput with the paper's complete control loop on
// top: a fig11-style Pref Agg mix driven by the CMM policy through the
// epoch driver (sampling, detection, k-means grouping, partition
// search). items_processed counts *retired instructions*, so
// items_per_second is the end-to-end simulated-ops/sec rate that every
// figure bench's wall time is made of.
void BM_FullSystemCmm(benchmark::State& state) {
  const auto cfg = sim::MachineConfig::scaled(16);
  sim::MulticoreSystem system(cfg);
  const auto mixes = workloads::make_mixes(workloads::MixCategory::PrefAgg, 1, cfg.num_cores, 42);
  workloads::attach_mix(system, mixes.front(), 42);

  core::CmmPolicy::Options opts;
  opts.detector.freq_ghz = cfg.freq_ghz;
  core::CmmPolicy policy(opts);
  core::EpochConfig epochs;
  epochs.execution_epoch = 400'000;
  epochs.sampling_interval = 20'000;
  core::EpochDriver driver(system, policy, epochs);

  std::uint64_t instructions = 0;
  for (CoreId c = 0; c < cfg.num_cores; ++c) instructions -= system.pmu().core(c).instructions;
  for (auto _ : state) {
    driver.run(100'000);
  }
  for (CoreId c = 0; c < cfg.num_cores; ++c) instructions += system.pmu().core(c).instructions;
  state.SetItemsProcessed(static_cast<std::int64_t>(instructions));
}
BENCHMARK(BM_FullSystemCmm)->Unit(benchmark::kMillisecond);

// Ablation: size of the throttle search space — exhaustive 2^n vs the
// paper's k-means group-level 2^k. This is the scalability argument of
// Sec. III-B1 made concrete.
void BM_ThrottleSearchSpace(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::throttle_combinations(n));
  }
  state.counters["combos"] = static_cast<double>(1ULL << n);
}
BENCHMARK(BM_ThrottleSearchSpace)->Arg(3)->Arg(8)->Arg(10);

}  // namespace
