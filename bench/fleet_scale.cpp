// Sharded multi-LLC fleet scale-out bench: runs a tenant-churn fleet
// across a ladder of domain counts (one EpochDriver shard per LLC
// domain on the parallel harness) and gates on the properties the
// fleet layer promises:
//
//   - repeat determinism: two identical runs are bit-identical
//     (merged per-core results and merged metrics JSON);
//   - thread invariance: CMM_THREADS=1 and a wide pool produce the
//     same bytes;
//   - the churn schedule actually fires (swaps > 0) and every shard
//     completes its execution epochs.
//
// Knobs (environment):
//   CMM_FLEET_DOMAINS          csv ladder of domain counts (default "2,4,8")
//   CMM_FLEET_CORES_PER_DOMAIN cores per LLC domain          (default 8)
//   CMM_FLEET_SCALE            capacity divisor per domain   (default 32)
//   CMM_FLEET_CYCLES           measured cycles per run       (default 600000)
//   CMM_FLEET_JSON             path for the machine-readable BENCH_fleet.json
//   CMM_THREADS                harness worker threads (results invariant)
//
// The default ladder tops out at 8 domains x 8 cores = 64 fleet cores,
// the CI smoke configuration.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fleet.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
}

std::vector<unsigned> env_csv(const char* name, std::vector<unsigned> fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  std::vector<unsigned> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<unsigned>(std::strtoul(item.c_str(), nullptr, 10)));
  }
  return out.empty() ? fallback : out;
}

bool gate(bool ok, const std::string& what) {
  std::cout << (ok ? "PASS" : "FAIL") << "  " << what << "\n";
  return ok;
}

}  // namespace

int main() {
  using namespace cmm;
  using analysis::FleetConfig;
  using analysis::FleetResult;

  const auto domains_ladder = env_csv("CMM_FLEET_DOMAINS", {2, 4, 8});
  const auto cpd = static_cast<unsigned>(env_u64("CMM_FLEET_CORES_PER_DOMAIN", 8));
  const auto scale = static_cast<unsigned>(env_u64("CMM_FLEET_SCALE", 32));
  const Cycle cycles = env_u64("CMM_FLEET_CYCLES", 600'000);

  // One tenant per fleet core, drawn round-robin from a mixed-pressure
  // pool (streaming, latency-bound, cache-friendly).
  const std::vector<std::string> pool{"lbm", "mcf", "milc", "povray", "soplex", "bwaves"};

  std::cout << "== fleet_scale: sharded multi-LLC fleet scale-out ==\n"
            << "ladder ";
  for (const unsigned d : domains_ladder) std::cout << d << "x" << cpd << " ";
  std::cout << "| scale " << scale << ", cycles " << cycles << ", threads "
            << resolve_threads(0) << "\n\n";

  bool ok = true;
  std::ostringstream records;
  for (std::size_t i = 0; i < domains_ladder.size(); ++i) {
    const unsigned domains = domains_ladder[i];
    FleetConfig cfg;
    cfg.params.machine = sim::MachineConfig::fleet(domains, cpd, scale);
    cfg.params.warmup_cycles = 100'000;
    cfg.params.run_cycles = cycles;
    cfg.params.epochs.execution_epoch = 100'000;
    cfg.params.epochs.sampling_interval = 10'000;
    cfg.params.seed = 42;
    cfg.churn_slice = cycles / 5;
    cfg.churn_per_mille = 700;
    cfg.churn_seed = 99;
    cfg.churn_catalog = {"libquantum", "namd", "gobmk"};

    const unsigned cores = cfg.params.machine.num_cores;
    std::vector<std::string> tenants;
    for (unsigned c = 0; c < cores; ++c) tenants.push_back(pool[c % pool.size()]);
    const auto mixes = analysis::plan_placement(tenants, analysis::PlacementMode::RoundRobin,
                                                cfg.params);

    analysis::BatchOptions serial;
    serial.threads = 1;
    const FleetResult a = run_fleet(cfg, mixes);
    const FleetResult b = run_fleet(cfg, mixes);
    const FleetResult c = run_fleet(cfg, mixes, serial);

    const std::string tag = std::to_string(domains) + "x" + std::to_string(cpd);
    ok &= gate(a.merged == b.merged && a.metrics.json() == b.metrics.json(),
               tag + " repeat run bit-identical");
    ok &= gate(a.merged == c.merged && a.metrics.json() == c.metrics.json(),
               tag + " invariant vs CMM_THREADS=1");
    ok &= gate(a.total_churn_swaps() > 0, tag + " churn schedule fired");
    bool epochs_ok = true;
    for (const auto& shard : a.domains) epochs_ok &= shard.epochs_completed > 0;
    ok &= gate(epochs_ok, tag + " every shard completed execution epochs");

    // Throughput metric for the perf trajectory: simulated core-cycles
    // per wall second across the whole fleet run (higher is better;
    // near-linear in domains when the shards parallelize cleanly).
    const double mcycles_per_s =
        a.batch.wall_seconds > 0.0
            ? static_cast<double>(cores) * static_cast<double>(cycles) / a.batch.wall_seconds / 1e6
            : 0.0;
    std::ostringstream rec;
    rec << "{\"fleet\":{\"domains\":" << domains << ",\"cores_per_domain\":" << cpd
        << ",\"cores\":" << cores << ",\"policy\":\"" << cfg.policy << "\",\"simd\":\""
        << simd::backend_name(simd::active_backend())
        << "\",\"churn_swaps\":" << a.total_churn_swaps() << ",\"hm_ipc\":" << std::setprecision(6)
        << a.hm_ipc << ",\"mcycles_per_s\":" << mcycles_per_s
        << ",\"wall_s\":" << a.batch.wall_seconds << ",\"threads\":" << a.batch.threads << "}}";
    records << rec.str() << "\n";
    std::cout << rec.str() << "\n\n";
  }

  const char* json_path = std::getenv("CMM_FLEET_JSON");
  if (json_path != nullptr && *json_path != '\0') {
    std::ofstream out(json_path, std::ios::binary);
    out << records.str();
    std::cout << "snapshot: " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
