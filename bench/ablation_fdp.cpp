// Comparison with a hardware feedback scheme: FDP (feedback-directed
// prefetching, the paper's reference [20]) adjusts each core's streamer
// degree from observed prefetch accuracy — a knob stock Intel parts do
// not expose, which is why the paper's CMM works with on/off throttling
// and CAT instead. The simulator has both, so we can ask how much of
// CMM's benefit a per-core hardware feedback loop would capture.
#include <iostream>

#include "bench_common.hpp"
#include "core/fdp.hpp"
#include "sim/multicore_system.hpp"

namespace {

using namespace cmm;

std::vector<double> run_fdp(const workloads::WorkloadMix& mix, const analysis::RunParams& p) {
  sim::MulticoreSystem sys(p.machine);
  workloads::attach_mix(sys, mix, p.seed);
  core::FdpController fdp(sys);
  fdp.run(p.run_cycles);
  std::vector<double> ipcs;
  for (CoreId c = 0; c < sys.num_cores(); ++c) ipcs.push_back(sys.pmu().core(c).ipc());
  return ipcs;
}

}  // namespace

int main() {
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Ablation/FDP",
                        "hardware per-core accuracy feedback vs software CMM");

  analysis::Table table({"workload", "policy", "hm_ipc vs baseline", "worst-case"});
  for (const auto category : {workloads::MixCategory::PrefAgg, workloads::MixCategory::PrefUnfri}) {
    const auto mix =
        workloads::make_mixes(category, 1, env.params.machine.num_cores, env.params.seed)
            .front();
    auto base_pol = analysis::make_policy("baseline", env.params.detector());
    const auto base = analysis::run_mix(mix, *base_pol, env.params);
    const double base_hm = analysis::harmonic_mean(base.ipcs());

    const auto fdp_ipcs = run_fdp(mix, env.params);
    table.add_row({mix.name, "fdp (hw)",
                   analysis::Table::fmt(base_hm > 0
                                            ? analysis::harmonic_mean(fdp_ipcs) / base_hm
                                            : 0),
                   analysis::Table::fmt(analysis::worst_case_speedup(fdp_ipcs, base.ipcs()))});

    for (const std::string policy : {"pt", "cmm_a"}) {
      auto pol = analysis::make_policy(policy, env.params.detector());
      const auto run = analysis::run_mix(mix, *pol, env.params);
      table.add_row({mix.name, policy,
                     analysis::Table::fmt(base_hm > 0
                                              ? analysis::harmonic_mean(run.ipcs()) / base_hm
                                              : 0),
                     analysis::Table::fmt(
                         analysis::worst_case_speedup(run.ipcs(), base.ipcs()))});
    }
  }
  table.print(std::cout);
  return 0;
}
