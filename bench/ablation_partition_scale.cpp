// Ablation: the paper's 1.5x partition-sizing rule ("a partition size
// of 1.5 times the size of the Agg set works well", Sec. III-B3),
// swept from 0.5 to 2.5 ways per Agg core under CMM-a.
#include <iostream>

#include "bench_common.hpp"
#include "core/policy_cmm.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Ablation/partition-scale",
                        "CMM-a normalized hm_ipc vs ways-per-Agg-core");

  const auto mixes = workloads::make_mixes(workloads::MixCategory::PrefAgg, 2,
                                           env.params.machine.num_cores, env.params.seed);

  analysis::Table table({"workload", "scale 0.5", "scale 1.0", "scale 1.5 (paper)",
                         "scale 2.0", "scale 2.5"});
  for (const auto& mix : mixes) {
    auto base_pol = analysis::make_policy("baseline", env.params.detector());
    const auto base = analysis::run_mix(mix, *base_pol, env.params);
    const double base_hm = analysis::harmonic_mean(base.ipcs());

    std::vector<std::string> row{mix.name};
    for (const double scale : {0.5, 1.0, 1.5, 2.0, 2.5}) {
      core::CmmPolicy::Options opts;
      opts.detector = env.params.detector();
      opts.partition_scale = scale;
      core::CmmPolicy policy(opts);
      const auto run = analysis::run_mix(mix, policy, env.params);
      const double hm = analysis::harmonic_mean(run.ipcs());
      row.push_back(analysis::Table::fmt(base_hm > 0 ? hm / base_hm : 0, 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
