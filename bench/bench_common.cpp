#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "analysis/solo_cache.hpp"
#include "common/parallel.hpp"

namespace cmm::bench {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
}

}  // namespace

BenchEnv BenchEnv::from_env() {
  BenchEnv env;
  const auto scale = static_cast<unsigned>(env_u64("CMM_BENCH_SCALE", 16));
  env.params.machine =
      scale <= 1 ? sim::MachineConfig::broadwell_ep() : sim::MachineConfig::scaled(scale);
  env.params.run_cycles = env_u64("CMM_BENCH_CYCLES", 8'000'000);
  env.params.warmup_cycles = 3'000'000;
  env.params.seed = env_u64("CMM_BENCH_SEED", 42);
  env.params.epochs.execution_epoch = 1'500'000;
  env.params.epochs.sampling_interval = 40'000;
  env.mixes_per_category = static_cast<unsigned>(env_u64("CMM_BENCH_MIXES", 3));
  return env;
}

std::vector<workloads::WorkloadMix> BenchEnv::workloads() const {
  return workloads::paper_workloads(params.machine.num_cores, params.seed, mixes_per_category);
}

MixEvaluator::MixEvaluator(BenchEnv env) : env_(std::move(env)) {}

const analysis::BatchStats& MixEvaluator::warm(const std::vector<workloads::WorkloadMix>& mixes,
                                               std::vector<std::string> policies) {
  if (std::find(policies.begin(), policies.end(), "baseline") == policies.end()) {
    policies.insert(policies.begin(), "baseline");
  }

  struct MixJob {
    const workloads::WorkloadMix* mix;
    const std::string* policy;
    std::string key;
  };
  std::vector<MixJob> mix_jobs;
  for (const auto& mix : mixes) {
    for (const auto& policy : policies) {
      std::string key = mix.name + "/" + policy;
      if (!cache_.contains(key)) mix_jobs.push_back({&mix, &policy, std::move(key)});
    }
  }
  std::vector<std::string> solos;
  for (const auto& mix : mixes) {
    for (const auto& b : mix.benchmarks) {
      if (!alone_.contains(b) && std::find(solos.begin(), solos.end(), b) == solos.end()) {
        solos.push_back(b);
      }
    }
  }

  // One batch over mix runs + alone solos. Every job owns its own
  // system and policy instance, so results match the serial getters
  // bit-for-bit; the maps are filled serially afterwards.
  std::vector<analysis::RunResult> mix_results(mix_jobs.size());
  std::vector<double> solo_ipcs(solos.size());
  batch_ = analysis::run_batch(mix_jobs.size() + solos.size(), [&](std::size_t i) {
    if (i < mix_jobs.size()) {
      const auto policy = analysis::make_policy(*mix_jobs[i].policy, env_.params.detector());
      mix_results[i] = analysis::run_mix(*mix_jobs[i].mix, *policy, env_.params);
    } else {
      const auto& name = solos[i - mix_jobs.size()];
      solo_ipcs[i - mix_jobs.size()] =
          analysis::run_solo_cached(name, env_.params, /*prefetch_on=*/true)->cores.front().ipc;
    }
  });
  for (std::size_t i = 0; i < mix_jobs.size(); ++i) {
    cache_.emplace(std::move(mix_jobs[i].key), std::move(mix_results[i]));
  }
  for (std::size_t i = 0; i < solos.size(); ++i) alone_[solos[i]] = solo_ipcs[i];
  return batch_;
}

const analysis::RunResult& MixEvaluator::run(const workloads::WorkloadMix& mix,
                                             const std::string& policy) {
  const std::string key = mix.name + "/" + policy;
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  auto pol = analysis::make_policy(policy, env_.params.detector());
  auto result = analysis::run_mix(mix, *pol, env_.params);
  return cache_.emplace(key, std::move(result)).first->second;
}

double MixEvaluator::alone_ipc(const std::string& benchmark) {
  if (const auto it = alone_.find(benchmark); it != alone_.end()) return it->second;
  const double ipc =
      analysis::run_solo_cached(benchmark, env_.params, /*prefetch_on=*/true)->cores.front().ipc;
  alone_[benchmark] = ipc;
  return ipc;
}

double MixEvaluator::hs(const analysis::RunResult& result) {
  std::vector<double> together;
  std::vector<double> alone;
  for (const auto& core : result.cores) {
    together.push_back(core.ipc);
    alone.push_back(alone_ipc(core.benchmark));
  }
  return analysis::harmonic_speedup(together, alone);
}

double MixEvaluator::normalized_hs(const workloads::WorkloadMix& mix, const std::string& policy) {
  const double base = hs(run(mix, "baseline"));
  const double value = hs(run(mix, policy));
  return base > 0.0 ? value / base : 0.0;
}

double MixEvaluator::normalized_ws(const workloads::WorkloadMix& mix, const std::string& policy) {
  return analysis::weighted_speedup(run(mix, policy).ipcs(), run(mix, "baseline").ipcs());
}

double MixEvaluator::worst_case(const workloads::WorkloadMix& mix, const std::string& policy) {
  return analysis::worst_case_speedup(run(mix, policy).ipcs(), run(mix, "baseline").ipcs());
}

double MixEvaluator::normalized_bw(const workloads::WorkloadMix& mix, const std::string& policy) {
  const double base = run(mix, "baseline").total_gbs();
  const double value = run(mix, policy).total_gbs();
  return base > 0.0 ? value / base : 0.0;
}

double MixEvaluator::normalized_stalls(const workloads::WorkloadMix& mix,
                                       const std::string& policy) {
  const double base = static_cast<double>(run(mix, "baseline").total_stalls());
  const double value = static_cast<double>(run(mix, policy).total_stalls());
  return base > 0.0 ? value / base : 0.0;
}

void print_preamble(const BenchEnv& env, const std::string& figure, const std::string& what) {
  const auto& m = env.params.machine;
  std::cout << "== " << figure << ": " << what << " ==\n"
            << "machine: " << m.num_cores << " cores, LLC " << m.llc.size_bytes / 1024 << " KB/"
            << m.llc.ways << "w, L2 " << m.l2.size_bytes / 1024 << " KB, L1 "
            << m.l1d.size_bytes / 1024 << " KB | run " << env.params.run_cycles << " cycles, "
            << env.mixes_per_category << " mixes/category, seed " << env.params.seed << ", "
            << resolve_threads(0) << " threads\n"
            << "(scale with CMM_BENCH_SCALE / CMM_BENCH_CYCLES / CMM_BENCH_MIXES / "
               "CMM_THREADS)\n\n";
}

void print_batch_summary(const analysis::BatchStats& stats) {
  std::cout << "\n" << stats.json() << "\n";
}

double category_mean(MixEvaluator& eval, const std::vector<workloads::WorkloadMix>& mixes,
                     workloads::MixCategory category, const std::string& policy,
                     double (MixEvaluator::*metric)(const workloads::WorkloadMix&,
                                                    const std::string&)) {
  std::vector<double> values;
  for (const auto& mix : mixes) {
    if (mix.category == category) values.push_back((eval.*metric)(mix, policy));
  }
  return analysis::mean(values);
}

}  // namespace cmm::bench
