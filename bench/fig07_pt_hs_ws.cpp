// Fig. 7: normalized HS and WS of Prefetch Throttling (PT) vs the
// baseline across all workloads, with per-category means. Paper shape:
// Pref Unfri gains most, then Pref Agg; Pref No Agg gains nothing.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 7", "normalized HS and WS of PT");

  bench::MixEvaluator eval(env);
  const auto mixes = env.workloads();
  eval.warm(mixes, {"pt"});

  analysis::Table table({"workload", "HS/HS_base", "WS"});
  for (const auto& mix : mixes) {
    table.add_row({mix.name, analysis::Table::fmt(eval.normalized_hs(mix, "pt")),
                   analysis::Table::fmt(eval.normalized_ws(mix, "pt"))});
  }
  table.print(std::cout);

  std::cout << "\ncategory means:\n";
  analysis::Table means({"category", "HS/HS_base", "WS"});
  for (const auto category :
       {workloads::MixCategory::PrefFri, workloads::MixCategory::PrefAgg,
        workloads::MixCategory::PrefUnfri, workloads::MixCategory::PrefNoAgg}) {
    means.add_row({std::string(workloads::to_string(category)),
                   analysis::Table::fmt(bench::category_mean(
                       eval, mixes, category, "pt", &bench::MixEvaluator::normalized_hs)),
                   analysis::Table::fmt(bench::category_mean(
                       eval, mixes, category, "pt", &bench::MixEvaluator::normalized_ws))});
  }
  means.print(std::cout);
  bench::print_batch_summary(eval.batch_stats());
  return 0;
}
