// Fig. 2: per-benchmark IPC speedup from prefetching (solo runs).
// Paper shape: libquantum/bwaves/wrf/GemsFDTD-likes gain 50 %+; the
// Rand Access micro-benchmark *loses* (~25 % in the paper).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 2", "IPC speedup from prefetching (solo)");

  const auto& suite = workloads::benchmark_suite();
  std::vector<analysis::SoloQuery> queries;
  for (const auto& spec : suite) {
    queries.push_back({spec.name, /*prefetch_on=*/false, 0});
    queries.push_back({spec.name, /*prefetch_on=*/true, 0});
  }
  analysis::BatchStats stats;
  const auto results = analysis::run_solo_batch(queries, env.params, {}, &stats);

  analysis::Table table({"benchmark", "ipc pf off", "ipc pf on", "speedup"});
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& off = results[2 * i];
    const auto& on = results[2 * i + 1];
    const double s =
        off.cores.front().ipc > 0 ? on.cores.front().ipc / off.cores.front().ipc : 0.0;
    table.add_row({suite[i].name, analysis::Table::fmt(off.cores.front().ipc),
                   analysis::Table::fmt(on.cores.front().ipc), analysis::Table::fmt(s, 2)});
  }
  table.print(std::cout);
  bench::print_batch_summary(stats);
  return 0;
}
