// Fig. 2: per-benchmark IPC speedup from prefetching (solo runs).
// Paper shape: libquantum/bwaves/wrf/GemsFDTD-likes gain 50 %+; the
// Rand Access micro-benchmark *loses* (~25 % in the paper).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace cmm;
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Fig 2", "IPC speedup from prefetching (solo)");

  analysis::Table table({"benchmark", "ipc pf off", "ipc pf on", "speedup"});
  for (const auto& spec : workloads::benchmark_suite()) {
    const auto off = analysis::run_solo(spec.name, env.params, false);
    const auto on = analysis::run_solo(spec.name, env.params, true);
    const double s =
        off.cores.front().ipc > 0 ? on.cores.front().ipc / off.cores.front().ipc : 0.0;
    table.add_row({spec.name, analysis::Table::fmt(off.cores.front().ipc),
                   analysis::Table::fmt(on.cores.front().ipc), analysis::Table::fmt(s, 2)});
  }
  table.print(std::cout);
  return 0;
}
