// Hierarchical-CMM migration smoke: runs the two-level fleet (per-
// domain EpochDriver shards + FleetCoordinator every K slices) on a
// deliberately pathological initial placement — every bandwidth-heavy
// stream packed onto the low-numbered domains, every compute-bound
// tenant on the high ones — and gates on the properties the control
// plane promises:
//
//   - K=0 compatibility: with the coordinator disabled, run_fleet is
//     byte-identical to the flat runner regardless of the migration
//     knobs (the PR-8 contract);
//   - the coordinator accepts at least one migration on the
//     pathological rung, and every accepted record crosses domains;
//   - migration pays: fleet hm_ipc is no worse than freezing the
//     pathological placement for the whole run;
//   - determinism: repeat runs and CMM_THREADS=1 vs a wide pool agree
//     bit-for-bit on results, metrics, migration records, and the
//     coordinator's JSONL trace bytes.
//
// Knobs (environment):
//   CMM_FLEET_DOMAINS          domain count               (default 8)
//   CMM_FLEET_CORES_PER_DOMAIN cores per LLC domain       (default 4)
//   CMM_FLEET_SCALE            capacity divisor per domain (default 32)
//   CMM_FLEET_CYCLES           measured cycles per run    (default 900000)
//   CMM_FLEET_PERIOD           coordinator period K       (default 1)
//   CMM_FLEET_BUDGET           migrations per round       (default 2)
//   CMM_FLEET_TRACE            path for the coordinator JSONL trace
//   CMM_FLEET_JSON             path for BENCH_fleet_migration.json
//   CMM_THREADS                harness worker threads (results invariant)
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/fleet.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "obs/jsonl_sink.hpp"
#include "workloads/workload_mix.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
}

bool gate(bool ok, const std::string& what) {
  std::cout << (ok ? "PASS" : "FAIL") << "  " << what << "\n";
  return ok;
}

}  // namespace

int main() {
  using namespace cmm;
  using analysis::FleetConfig;
  using analysis::FleetResult;

  const auto domains = static_cast<unsigned>(env_u64("CMM_FLEET_DOMAINS", 8));
  const auto cpd = static_cast<unsigned>(env_u64("CMM_FLEET_CORES_PER_DOMAIN", 4));
  const auto scale = static_cast<unsigned>(env_u64("CMM_FLEET_SCALE", 32));
  const Cycle cycles = env_u64("CMM_FLEET_CYCLES", 900'000);
  const auto period = static_cast<unsigned>(env_u64("CMM_FLEET_PERIOD", 1));
  const auto budget = static_cast<unsigned>(env_u64("CMM_FLEET_BUDGET", 2));

  FleetConfig cfg;
  cfg.params.machine = sim::MachineConfig::fleet(domains, cpd, scale);
  cfg.params.warmup_cycles = 100'000;
  cfg.params.run_cycles = cycles;
  cfg.params.epochs.execution_epoch = 100'000;
  cfg.params.epochs.sampling_interval = 10'000;
  cfg.params.seed = 42;
  cfg.coordinator_period = period;
  cfg.migration_budget = budget;

  // Pathological placement: the heavy half of the pool packed onto the
  // first domains, the light half onto the rest — exactly the skew the
  // BandwidthBalanced planner would avoid and the coordinator must
  // unwind at runtime.
  const std::vector<std::string> heavy{"lbm", "libquantum", "milc", "bwaves"};
  const std::vector<std::string> light{"povray", "calculix", "gobmk", "namd"};
  std::vector<workloads::WorkloadMix> mixes(domains);
  for (unsigned d = 0; d < domains; ++d) {
    mixes[d].name = "fleet_d" + std::to_string(d);
    const auto& pool = d < domains / 2 ? heavy : light;
    for (unsigned c = 0; c < cpd; ++c) mixes[d].benchmarks.push_back(pool[c % pool.size()]);
  }

  std::cout << "== fleet_migrate: hierarchical CMM cross-domain migration ==\n"
            << domains << "x" << cpd << " | scale " << scale << ", cycles " << cycles
            << ", K " << period << ", budget " << budget << ", threads "
            << resolve_threads(0) << "\n\n";

  bool ok = true;

  // --- Gate 1: K=0 is the flat runner, byte for byte, with every
  // migration knob at a non-default value.
  {
    FleetConfig flat = cfg;
    flat.coordinator_period = 0;
    FleetConfig flat_knobs = flat;
    flat_knobs.migration_budget = 7;
    flat_knobs.migration_min_gain = 0.5;
    flat_knobs.migration_cooldown = 9;
    flat_knobs.migration_headroom = 0.1;
    const FleetResult a = run_fleet(flat, mixes);
    const FleetResult b = run_fleet(flat_knobs, mixes);
    ok &= gate(a.merged == b.merged && a.metrics.json() == b.metrics.json() &&
                   b.migrations.empty(),
               "K=0 byte-identical to flat runner (knobs inert)");
  }

  // --- Hierarchical runs: wide pool + serial + repeat, each with its
  // own coordinator trace.
  auto run_traced = [&](const analysis::BatchOptions& opts, std::string& trace_out) {
    std::ostringstream trace;
    {
      obs::JsonlTraceSink sink(trace);
      FleetConfig traced = cfg;
      traced.coordinator_sink = &sink;
      const FleetResult r = run_fleet(traced, mixes, opts);
      sink.flush();
      trace_out = trace.str();
      return r;
    }
  };

  analysis::BatchOptions wide;
  analysis::BatchOptions serial;
  serial.threads = 1;
  std::string trace_a, trace_b, trace_serial;
  const FleetResult hier = run_traced(wide, trace_a);
  const FleetResult hier_repeat = run_traced(wide, trace_b);
  const FleetResult hier_serial = run_traced(serial, trace_serial);

  const FleetConfig frozen = [&] {
    FleetConfig f = cfg;
    f.coordinator_period = 0;
    return f;
  }();
  const FleetResult baseline = run_fleet(frozen, mixes);

  // --- Gate 2: the pathological placement triggers real migrations.
  bool crosses = hier.accepted_migrations() >= 1;
  for (const auto& rec : hier.migrations) {
    if (rec.accepted && rec.from_core / cpd == rec.to_core / cpd) crosses = false;
  }
  ok &= gate(crosses, "coordinator accepted >= 1 cross-domain migration");

  // --- Gate 3: migration pays against the frozen placement.
  ok &= gate(hier.hm_ipc >= baseline.hm_ipc,
             "fleet hm_ipc >= frozen-placement baseline");

  // --- Gate 4: determinism (repeat + thread invariance), including
  // the coordinator's event bytes.
  ok &= gate(hier.merged == hier_repeat.merged && trace_a == trace_b,
             "repeat run bit-identical (results + trace)");
  ok &= gate(hier.merged == hier_serial.merged &&
                 hier.metrics.json() == hier_serial.metrics.json() && trace_a == trace_serial,
             "invariant vs CMM_THREADS=1 (results + metrics + trace)");
  ok &= gate(!trace_a.empty(), "coordinator trace captured migration events");

  const double gain = baseline.hm_ipc > 0.0 ? (hier.hm_ipc / baseline.hm_ipc - 1.0) * 100.0 : 0.0;
  std::ostringstream rec;
  rec << "{\"fleet_migration\":{\"domains\":" << domains << ",\"cores_per_domain\":" << cpd
      << ",\"cores\":" << domains * cpd << ",\"policy\":\"" << cfg.policy << "\",\"simd\":\""
      << simd::backend_name(simd::active_backend()) << "\",\"period\":" << period
      << ",\"budget\":" << budget << ",\"migrations\":" << hier.accepted_migrations()
      << ",\"rejected\":" << hier.migrations.size() - hier.accepted_migrations()
      << ",\"hm_ipc\":" << std::setprecision(6) << hier.hm_ipc
      << ",\"hm_ipc_frozen\":" << baseline.hm_ipc << ",\"gain_pct\":" << gain
      << ",\"wall_s\":" << hier.batch.wall_seconds << ",\"threads\":" << hier.batch.threads
      << "}}";
  std::cout << "\n" << rec.str() << "\n";

  const char* trace_path = std::getenv("CMM_FLEET_TRACE");
  if (trace_path != nullptr && *trace_path != '\0') {
    std::ofstream out(trace_path, std::ios::binary);
    out << trace_a;
    std::cout << "trace: " << trace_path << " (" << trace_a.size() << " bytes)\n";
  }
  const char* json_path = std::getenv("CMM_FLEET_JSON");
  if (json_path != nullptr && *json_path != '\0') {
    std::ofstream out(json_path, std::ios::binary);
    out << rec.str() << "\n";
    std::cout << "snapshot: " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
