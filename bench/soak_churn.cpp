// Deterministic service-mode soak: seeded tenant churn over the
// workload catalog composed with a FaultPlan chaos schedule, run twice
// in-process and gated on bit-identity (summary JSON and trace bytes),
// churn volume, at least one full degrade->recover ladder cycle when
// faults are enabled, and every surviving tenant within its SLO floor.
//
// Knobs (environment):
//   CMM_SOAK_TICKS       service ticks per run           (default 220)
//   CMM_SOAK_SEED        churn + fault seed              (default 7)
//   CMM_SOAK_SCALE       machine capacity divisor        (default 32)
//   CMM_SOAK_FAULT_RATE  MSR-write persistent-fault rate (default 0.02;
//                        0 = fault-free soak, ladder gates skipped)
//   CMM_SOAK_SLO         per-tenant SLO floor vs solo    (default 0.20)
//   CMM_SOAK_TRACE       path for the run-1 JSONL trace  (default none)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/solo_cache.hpp"
#include "obs/jsonl_sink.hpp"
#include "obs/metrics_registry.hpp"
#include "service/soak.hpp"

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::uint64_t>(std::strtoull(value, nullptr, 10));
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtod(value, nullptr);
}

bool gate(bool ok, const std::string& what) {
  std::cout << (ok ? "PASS" : "FAIL") << "  " << what << "\n";
  return ok;
}

}  // namespace

int main() {
  using namespace cmm;

  service::SoakConfig cfg;
  const auto scale = static_cast<unsigned>(env_u64("CMM_SOAK_SCALE", 32));
  cfg.params.machine =
      scale <= 1 ? sim::MachineConfig::broadwell_ep() : sim::MachineConfig::scaled(scale);
  cfg.params.warmup_cycles = 200'000;
  cfg.params.run_cycles = 600'000;
  cfg.params.epochs.execution_epoch = 60'000;
  cfg.params.epochs.sampling_interval = 4'000;
  cfg.ticks = env_u64("CMM_SOAK_TICKS", 220);
  cfg.churn_seed = env_u64("CMM_SOAK_SEED", 7);
  cfg.slo = env_double("CMM_SOAK_SLO", 0.20);
  cfg.health_capacity = 256;  // exercise the ring bound under load

  const double fault_rate = env_double("CMM_SOAK_FAULT_RATE", 0.02);
  if (fault_rate > 0.0) {
    cfg.faults.seed = cfg.churn_seed;
    cfg.faults.msr_write_fail_p = fault_rate;
    cfg.faults.transient_fraction = 0.0;  // every hit is sticky -> ladder
    cfg.faults.repair_after_calls = 300;  // ...until the repair window
  }

  std::cout << "== soak_churn: service-mode churn + chaos soak ==\n"
            << "machine scale " << scale << ", " << cfg.params.machine.num_cores
            << " cores | ticks " << cfg.ticks << ", seed " << cfg.churn_seed
            << ", fault rate " << fault_rate << ", slo " << cfg.slo << "\n\n";

  // Two identical runs; the pair must be bit-identical. The global
  // solo-run memo is shared between them (hits on run 2) but its
  // statistics are process-context-dependent, so they are reported per
  // process and never enter the gated summary.
  std::ostringstream trace1;
  std::ostringstream trace2;
  obs::MetricsRegistry metrics1;
  obs::MetricsRegistry metrics2;
  service::SoakSummary s1;
  service::SoakSummary s2;
  {
    obs::JsonlTraceSink sink(trace1, 64 * 1024, /*flush_every_events=*/64);
    s1 = service::run_service(cfg, &sink, &metrics1);
  }
  {
    obs::JsonlTraceSink sink(trace2, 64 * 1024, /*flush_every_events=*/64);
    s2 = service::run_service(cfg, &sink, &metrics2);
  }
  metrics1.gauge("service.solo_cache_evictions",
                 static_cast<double>(analysis::SoloRunCache::global().evictions()));

  std::cout << "summary: " << s1.json() << "\n\n";

  bool ok = true;
  ok &= gate(s1 == s2, "repeat run summary bit-identical");
  ok &= gate(trace1.str() == trace2.str(), "repeat run trace bytes identical");
  ok &= gate(s1.ticks == cfg.ticks, "ran all requested ticks");
  ok &= gate(s1.epochs >= 200, "completed >= 200 execution epochs");
  ok &= gate(s1.attaches + s1.detaches >= 30, ">= 30 attach/detach churn events");
  ok &= gate(s1.all_within_slo, "all surviving tenants within SLO at end");
  if (fault_rate > 0.0) {
    ok &= gate(s1.injected_faults > 0, "chaos schedule injected faults");
    ok &= gate(s1.full_cycles >= 1, ">= 1 full degrade->recover ladder cycle");
  }

  const char* trace_path = std::getenv("CMM_SOAK_TRACE");
  if (trace_path != nullptr && *trace_path != '\0') {
    std::ofstream out(trace_path, std::ios::binary);
    out << trace1.str();
    std::cout << "\ntrace: " << trace_path << " (" << trace1.str().size() << " bytes)\n";
  }
  std::cout << "\nmetrics: " << metrics1.json() << "\n";
  return ok ? 0 : 1;
}
