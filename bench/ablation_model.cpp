// Ablation: the two model ingredients DESIGN.md calls load-bearing —
// prefetch timeliness (`ready_at` in-flight fills) and the
// utilisation-dependent DRAM queueing delay. Each is switched off in
// turn and the headline experiment (baseline vs CMM-a on a Pref Agg
// mix) re-run: without queueing there is no bandwidth contention to
// manage, and with instant prefetch fills prefetching becomes a free
// lunch — both flatten the effects the paper depends on.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace cmm;

struct Variant {
  std::string name;
  bool instant_fills;
  bool queueing;
  bool inclusive = false;
  bool writebacks = false;
};

}  // namespace

int main() {
  const auto env = bench::BenchEnv::from_env();
  bench::print_preamble(env, "Ablation/model",
                        "timeliness + bandwidth-queueing knobs, baseline vs cmm_a");

  const auto mix = workloads::make_mixes(workloads::MixCategory::PrefAgg, 1,
                                         env.params.machine.num_cores, env.params.seed)
                       .front();

  const std::vector<Variant> variants{
      {"paper model", false, true},
      {"instant prefetch fills", true, true},
      {"no bandwidth queueing", false, false},
      {"+ inclusive LLC", false, true, true, false},
      {"+ DRAM writebacks", false, true, false, true},
  };

  analysis::Table table({"model variant", "baseline hm_ipc", "cmm_a hm_ipc", "cmm_a gain",
                         "baseline BW GB/s"});
  for (const auto& v : variants) {
    analysis::RunParams params = env.params;
    params.machine.instant_prefetch_fills = v.instant_fills;
    params.machine.bandwidth_queueing = v.queueing;
    params.machine.inclusive_llc = v.inclusive;
    params.machine.model_writebacks = v.writebacks;

    auto base_pol = analysis::make_policy("baseline", params.detector());
    const auto base = analysis::run_mix(mix, *base_pol, params);
    auto cmm_pol = analysis::make_policy("cmm_a", params.detector());
    const auto cmm = analysis::run_mix(mix, *cmm_pol, params);

    const auto base_ipcs = base.ipcs();
    const auto cmm_ipcs = cmm.ipcs();
    const double base_hm = analysis::harmonic_mean(base_ipcs);
    const double cmm_hm = analysis::harmonic_mean(cmm_ipcs);
    table.add_row({v.name, analysis::Table::fmt(base_hm), analysis::Table::fmt(cmm_hm),
                   analysis::Table::fmt(base_hm > 0 ? cmm_hm / base_hm : 0, 3),
                   analysis::Table::fmt(base.total_gbs(), 1)});
  }
  table.print(std::cout);
  return 0;
}
