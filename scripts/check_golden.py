#!/usr/bin/env python3
"""Golden-pin checker for bench binaries' machine-readable output.

Runs a binary under a pinned environment, keeps the stdout lines whose
JSON payload starts with the given tag (lines beginning '{"<tag>'),
and diffs them verbatim against a checked-in golden file.

Regenerate a golden after an intentional change with --update (or
CMM_UPDATE_GOLDEN=1 in the environment) and review the diff.

Exit codes: 0 match/updated, 1 mismatch, 2 usage or run failure.
"""
import argparse
import difflib
import os
import subprocess
import sys


def extract(stdout: str, tag: str) -> str:
    prefix = '{"' + tag
    lines = [line for line in stdout.splitlines() if line.startswith(prefix)]
    return "\n".join(lines) + ("\n" if lines else "")


def self_test() -> int:
    out = 'noise\n{"fig05":{"a":1}}\nother\n{"fig05":{"b":2}}\n{"jobs":3}\n'
    got = extract(out, "fig05")
    want = '{"fig05":{"a":1}}\n{"fig05":{"b":2}}\n'
    if got != want:
        print("self-test FAILED", file=sys.stderr)
        return 1
    print("self-test OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", help="bench binary to run")
    parser.add_argument("--golden", help="checked-in golden file to diff against")
    parser.add_argument("--tag", default="fig05", help="JSON tag selecting output lines")
    parser.add_argument("--env", action="append", default=[], metavar="K=V",
                        help="environment overrides for the run (repeatable)")
    parser.add_argument("--update", action="store_true", help="rewrite the golden file")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.binary or not args.golden:
        parser.error("--binary and --golden are required unless --self-test")

    env = dict(os.environ)
    for kv in args.env:
        key, _, value = kv.partition("=")
        env[key] = value

    try:
        proc = subprocess.run([args.binary], env=env, capture_output=True, text=True,
                              timeout=1800)
    except (OSError, subprocess.TimeoutExpired) as exc:
        print(f"failed to run {args.binary}: {exc}", file=sys.stderr)
        return 2
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        print(f"{args.binary} exited {proc.returncode}", file=sys.stderr)
        return 2

    actual = extract(proc.stdout, args.tag)
    if not actual:
        print(f"no '{{\"{args.tag}' lines in {args.binary} output", file=sys.stderr)
        return 2

    if args.update or os.environ.get("CMM_UPDATE_GOLDEN"):
        with open(args.golden, "w") as f:
            f.write(actual)
        print(f"updated {args.golden}")
        return 0

    try:
        with open(args.golden) as f:
            expected = f.read()
    except OSError:
        print(f"missing golden {args.golden} (regenerate with --update)", file=sys.stderr)
        return 1

    if actual == expected:
        print(f"golden match: {args.golden}")
        return 0
    sys.stdout.writelines(difflib.unified_diff(
        expected.splitlines(keepends=True), actual.splitlines(keepends=True),
        fromfile=args.golden, tofile="current run"))
    print("golden mismatch (regenerate with --update if intentional)", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
