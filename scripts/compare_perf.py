#!/usr/bin/env python3
"""Soft perf-regression gate for the kernel micro-benches.

Compares a fresh google-benchmark JSON result (micro_sim_perf
--benchmark_format=json) against the checked-in trajectory point
bench/perf_baseline.json and warns — without failing — when a benchmark
regressed by more than the threshold. Wall-clock benchmark numbers are
machine- and load-dependent, so this is a *soft* gate: it annotates the
CI run (GitHub `::warning::` lines) and exits 0 unless --strict.

Usage:
    compare_perf.py BASELINE.json CURRENT.json [--threshold 0.10] [--strict]

Only benchmarks present in both files are compared (new benchmarks are
reported as such). Comparison metric is cpu_time (per-iteration), the
least scheduler-sensitive of the reported times.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def fmt_time(bench):
    ns = bench["cpu_time"] * _TO_NS.get(bench.get("time_unit", "ns"), 1.0)
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.1f} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative slowdown that triggers a warning (default 0.10)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any benchmark regresses past the threshold")
    args = ap.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    regressions = []
    improvements = []
    width = max((len(n) for n in current), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'ratio':>7}")
    for name, cur in current.items():
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {'--':>10}  {fmt_time(cur):>10}      new")
            continue
        base_ns = base["cpu_time"] * _TO_NS.get(base.get("time_unit", "ns"), 1.0)
        cur_ns = cur["cpu_time"] * _TO_NS.get(cur.get("time_unit", "ns"), 1.0)
        ratio = cur_ns / base_ns if base_ns else float("inf")
        marker = ""
        if ratio > 1.0 + args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1.0 - args.threshold:
            marker = "  (faster)"
            improvements.append((name, ratio))
        print(f"{name:<{width}}  {fmt_time(base):>10}  "
              f"{fmt_time(cur):>10}  {ratio:>6.2f}x{marker}")

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"\nnot in current run: {', '.join(missing)}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} vs bench/perf_baseline.json:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
            # GitHub Actions annotation; harmless noise elsewhere.
            print(f"::warning title=perf regression::{name} is {ratio:.2f}x "
                  f"baseline cpu_time (soft gate, threshold {args.threshold:.0%})")
        print("If the slowdown is intended (new feature, changed model), "
              "regenerate the baseline: see EXPERIMENTS.md, 'Performance methodology'.")
        return 1 if args.strict else 0

    print(f"\nno regressions past {args.threshold:.0%}"
          + (f"; {len(improvements)} benchmark(s) improved" if improvements else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
