#!/usr/bin/env python3
"""Two-tier perf-regression gate for the kernel micro-benches.

Compares a fresh google-benchmark JSON result (micro_sim_perf
--benchmark_format=json) against the checked-in trajectory point
bench/perf_baseline.json. Wall-clock benchmark numbers are machine- and
load-dependent, so small drift only warns; gross regressions block:

  - ratio > 1 + --threshold       (default 10%): CI warning, exit 0
  - ratio > 1 + --fail-threshold  (default 25%): CI error,   exit 1

`--fail-threshold 0` disables the blocking tier (pure warn-only mode);
--strict additionally fails on any warning-tier regression or removed
benchmark.

Usage:
    compare_perf.py BASELINE.json CURRENT.json
        [--threshold 0.10] [--fail-threshold 0.25] [--strict]
    compare_perf.py --self-test

Only benchmarks present in both files are compared by time. Benchmarks
present on one side only are *never* a silent pass: added ones are
listed, removed ones (present in the baseline but not in the current
run — a renamed or accidentally dropped bench) are listed with a CI
warning annotation, and --strict fails on them just like on a
regression. Comparison metric is cpu_time (per-iteration), the least
scheduler-sensitive of the reported times.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load_benchmarks(path):
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def fmt_time(bench):
    ns = bench["cpu_time"] * _TO_NS.get(bench.get("time_unit", "ns"), 1.0)
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f} {unit}"
    return f"{ns:.1f} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative slowdown that triggers a warning (default 0.10)")
    ap.add_argument("--fail-threshold", type=float, default=0.25,
                    help="relative slowdown that blocks (exit 1) regardless of "
                         "--strict (default 0.25; 0 disables the blocking tier)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 when any benchmark regresses past the threshold")
    args = ap.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    regressions = []
    blocking = []
    improvements = []
    added = sorted(set(current) - set(baseline))
    removed = sorted(set(baseline) - set(current))
    width = max((len(n) for n in current), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  {'ratio':>7}")
    for name, cur in current.items():
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {'--':>10}  {fmt_time(cur):>10}      new")
            continue
        base_ns = base["cpu_time"] * _TO_NS.get(base.get("time_unit", "ns"), 1.0)
        cur_ns = cur["cpu_time"] * _TO_NS.get(cur.get("time_unit", "ns"), 1.0)
        ratio = cur_ns / base_ns if base_ns else float("inf")
        marker = ""
        if args.fail_threshold > 0 and ratio > 1.0 + args.fail_threshold:
            marker = "  << REGRESSION (blocking)"
            blocking.append((name, ratio))
        elif ratio > 1.0 + args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1.0 - args.threshold:
            marker = "  (faster)"
            improvements.append((name, ratio))
        print(f"{name:<{width}}  {fmt_time(base):>10}  "
              f"{fmt_time(cur):>10}  {ratio:>6.2f}x{marker}")

    # Coverage drift is reported explicitly, not silently passed over:
    # an added bench needs a baseline entry eventually, a removed one
    # usually means a rename that lost its perf history.
    print(f"\ncoverage: {len(current) - len(added)} compared, "
          f"{len(added)} added, {len(removed)} removed")
    if added:
        print(f"added (no baseline entry yet): {', '.join(added)}")
    if removed:
        print(f"removed (in baseline, missing from current run): {', '.join(removed)}")
        for name in removed:
            print(f"::warning title=benchmark removed::{name} is in "
                  "bench/perf_baseline.json but absent from the current run; "
                  "regenerate the baseline or restore the bench")

    failed = bool(regressions) or bool(removed)
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} vs bench/perf_baseline.json:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
            # GitHub Actions annotation; harmless noise elsewhere.
            print(f"::warning title=perf regression::{name} is {ratio:.2f}x "
                  f"baseline cpu_time (soft gate, threshold {args.threshold:.0%})")
    if blocking:
        print(f"\n{len(blocking)} benchmark(s) regressed more than "
              f"{args.fail_threshold:.0%} vs bench/perf_baseline.json "
              "(blocking gate):")
        for name, ratio in blocking:
            print(f"  {name}: {ratio:.2f}x")
            print(f"::error title=perf regression::{name} is {ratio:.2f}x "
                  f"baseline cpu_time (blocking gate, threshold "
                  f"{args.fail_threshold:.0%})")
    if regressions or blocking:
        print("If the slowdown is intended (new feature, changed model), "
              "regenerate the baseline: see EXPERIMENTS.md, 'Performance methodology'.")
    if blocking:
        return 1
    if failed:
        return 1 if args.strict else 0

    print(f"\nno regressions past {args.threshold:.0%}"
          + (f"; {len(improvements)} benchmark(s) improved" if improvements else ""))
    return 0


def self_test():
    """Exercise the CLI end-to-end on synthetic inputs; exits non-zero
    on the first unexpected outcome. Run by CI and by ctest."""

    def bench(name, cpu_time):
        return {"name": name, "run_type": "iteration",
                "cpu_time": cpu_time, "real_time": cpu_time, "time_unit": "ns"}

    def run(baseline, current, *flags):
        with tempfile.TemporaryDirectory() as d:
            b = os.path.join(d, "baseline.json")
            c = os.path.join(d, "current.json")
            with open(b, "w", encoding="utf-8") as f:
                json.dump({"benchmarks": baseline}, f)
            with open(c, "w", encoding="utf-8") as f:
                json.dump({"benchmarks": current}, f)
            proc = subprocess.run(
                [sys.executable, os.path.abspath(__file__), b, c, *flags],
                capture_output=True, text=True, check=False)
            return proc.returncode, proc.stdout

    checks = []

    def expect(label, cond, output):
        checks.append((label, cond))
        status = "ok" if cond else "FAIL"
        print(f"[{status}] {label}")
        if not cond:
            print(output)

    same = [bench("BM_A", 100.0), bench("BM_B", 200.0)]

    code, out = run(same, same)
    expect("identical runs pass", code == 0 and "0 added, 0 removed" in out, out)

    code, out = run(same, [bench("BM_A", 100.0), bench("BM_B", 500.0)], "--strict")
    expect("regression fails --strict", code == 1 and "REGRESSION" in out, out)

    # Two-tier gate: >25% blocks without --strict, 10-25% only warns,
    # and --fail-threshold 0 restores pure warn-only mode.
    code, out = run(same, [bench("BM_A", 100.0), bench("BM_B", 500.0)])
    expect("gross regression blocks without --strict",
           code == 1 and "blocking" in out, out)

    code, out = run(same, [bench("BM_A", 100.0), bench("BM_B", 230.0)])
    expect("mid-tier regression only warns",
           code == 0 and "REGRESSION" in out and "blocking" not in out, out)

    code, out = run(same, [bench("BM_A", 100.0), bench("BM_B", 500.0)],
                    "--fail-threshold", "0")
    expect("--fail-threshold 0 disables the blocking tier", code == 0, out)

    code, out = run(same, [bench("BM_A", 100.0)])
    expect("removed bench is reported", code == 0 and "1 removed" in out
           and "BM_B" in out and "benchmark removed" in out, out)

    code, out = run(same, [bench("BM_A", 100.0)], "--strict")
    expect("removed bench fails --strict", code == 1, out)

    code, out = run(same, same + [bench("BM_C", 50.0)])
    expect("added bench is reported", code == 0 and "1 added" in out
           and "BM_C" in out, out)

    code, out = run(same, same + [bench("BM_C", 50.0)], "--strict")
    expect("added bench alone does not fail --strict", code == 0, out)

    failures = [label for label, ok in checks if not ok]
    if failures:
        print(f"\nself-test: {len(failures)}/{len(checks)} check(s) failed")
        return 1
    print(f"\nself-test: all {len(checks)} checks passed")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    sys.exit(main())
