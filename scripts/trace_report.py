#!/usr/bin/env python3
"""Render a CMM control-loop JSONL trace (obs::JsonlTraceSink output).

Every line is one JSON object with a "type" discriminator, a monotonic
simulated-time stamp "t" and an execution-epoch index "epoch"; resource
configurations appear as a per-core prefetch bit string plus a list of
decimal way masks. Event types and their fields:

    epoch_start       t epoch len policy prefetch masks
    detector_verdict  t epoch core pga pmr ptr agg
    sample_result     t epoch sample hm_ipc prefetch masks
    config_applied    t epoch source prefetch masks
    degradation_step  t epoch step core detail note
    fault_retry       t epoch attempt backoff what

The report reconstructs the paper's Fig. 4 timeline — one row per
execution epoch: configuration in force, cores flagged Agg by the
Fig. 5 detector, number of sampling intervals, the winning candidate
(best hm_ipc) and the configuration finally applied — followed by a
per-policy decision summary.

Usage:
    trace_report.py TRACE.jsonl              # validate + report
    trace_report.py TRACE.jsonl --validate-only
    trace_report.py --self-test
"""

import argparse
import json
import sys

# type -> {field: allowed types}; every event also carries t/epoch.
SCHEMA = {
    "epoch_start": {"len": int, "policy": str, "prefetch": str, "masks": list},
    "detector_verdict": {"core": int, "pga": (int, float), "pmr": (int, float),
                         "ptr": (int, float), "agg": bool},
    "sample_result": {"sample": int, "hm_ipc": (int, float), "prefetch": str,
                      "masks": list},
    "config_applied": {"source": str, "prefetch": str, "masks": list},
    "degradation_step": {"step": str, "core": int, "detail": int, "note": str},
    "fault_retry": {"attempt": int, "backoff": int, "what": str},
}

APPLY_SOURCES = {"initial", "sample", "final", "watchdog"}


def validate_event(ev, lineno):
    """Return a list of schema violations for one parsed event."""
    errors = []
    etype = ev.get("type")
    if etype not in SCHEMA:
        return [f"line {lineno}: unknown event type {etype!r}"]
    for field, ftype in (("t", int), ("epoch", int)):
        if not isinstance(ev.get(field), ftype) or isinstance(ev.get(field), bool):
            errors.append(f"line {lineno}: {etype}.{field} missing or not an integer")
    for field, ftypes in SCHEMA[etype].items():
        value = ev.get(field)
        if value is None or not isinstance(value, ftypes) or (
                isinstance(value, bool) and ftypes is not bool):
            errors.append(f"line {lineno}: {etype}.{field} missing or wrong type")
    if etype == "config_applied" and ev.get("source") not in APPLY_SOURCES:
        errors.append(f"line {lineno}: config_applied.source {ev.get('source')!r} "
                      f"not in {sorted(APPLY_SOURCES)}")
    if "prefetch" in SCHEMA[etype] and isinstance(ev.get("prefetch"), str):
        if not all(c in "01" for c in ev["prefetch"]):
            errors.append(f"line {lineno}: {etype}.prefetch is not a bit string")
    if "masks" in SCHEMA[etype] and isinstance(ev.get("masks"), list):
        if not all(isinstance(m, int) and not isinstance(m, bool) and m >= 0
                   for m in ev["masks"]):
            errors.append(f"line {lineno}: {etype}.masks has a non-integer entry")
    return errors


def load_trace(path):
    """Parse + validate; returns (events, errors)."""
    events, errors = [], []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"line {lineno}: invalid JSON: {e}")
                continue
            errors.extend(validate_event(ev, lineno))
            events.append(ev)
    last_t = None
    for i, ev in enumerate(events):
        t = ev.get("t")
        if isinstance(t, int) and last_t is not None and t < last_t:
            errors.append(f"event {i}: time went backwards ({t} < {last_t})")
        if isinstance(t, int):
            last_t = t
    return events, errors


def fmt_config(ev):
    masks = ev.get("masks") or []
    mask0 = f"0x{masks[0]:x}" if masks else "-"
    return f"{ev.get('prefetch') or '-'} / {mask0}"


def report(events, out=sys.stdout):
    epochs = {}
    policies = set()
    for ev in events:
        e = epochs.setdefault(ev["epoch"], {
            "start": None, "verdicts": [], "samples": [], "applied": [],
            "degradations": [], "retries": 0})
        etype = ev["type"]
        if etype == "epoch_start":
            e["start"] = ev
            policies.add(ev["policy"])
        elif etype == "detector_verdict":
            e["verdicts"].append(ev)
        elif etype == "sample_result":
            e["samples"].append(ev)
        elif etype == "config_applied":
            e["applied"].append(ev)
        elif etype == "degradation_step":
            e["degradations"].append(ev)
        elif etype == "fault_retry":
            e["retries"] += 1

    header = (f"{'epoch':>5}  {'t(start)':>10}  {'length':>9}  {'agg cores':<12}  "
              f"{'samples':>7}  {'best hm_ipc':>11}  {'winning config':<22}  "
              f"{'final config':<22}")
    print(header, file=out)
    print("-" * len(header), file=out)
    for idx in sorted(k for k in epochs if epochs[k]["start"] is not None):
        e = epochs[idx]
        start = e["start"]
        agg = [str(v["core"]) for v in e["verdicts"] if v["agg"]]
        agg_text = ",".join(agg) if agg else "-"
        best = max(e["samples"], key=lambda s: s["hm_ipc"], default=None)
        final = next((a for a in e["applied"] if a["source"] in ("final", "watchdog")),
                     None)
        best_text = f"{best['hm_ipc']:>11.4f}" if best else f"{'-':>11}"
        win_text = fmt_config(best) if best else "-"
        final_text = fmt_config(final) if final else "-"
        print(f"{idx:>5}  {start['t']:>10}  {start['len']:>9}  {agg_text:<12}  "
              f"{len(e['samples']):>7}  {best_text}  {win_text:<22}  {final_text:<22}",
              file=out)

    total_samples = sum(len(e["samples"]) for e in epochs.values())
    total_verdicts = sum(len(e["verdicts"]) for e in epochs.values())
    total_agg = sum(1 for e in epochs.values() for v in e["verdicts"] if v["agg"])
    total_deg = sum(len(e["degradations"]) for e in epochs.values())
    total_retries = sum(e["retries"] for e in epochs.values())
    print(f"\npolicy decision summary ({', '.join(sorted(policies)) or 'unknown'}):",
          file=out)
    print(f"  execution epochs : {sum(1 for e in epochs.values() if e['start'])}",
          file=out)
    print(f"  sampling intervals: {total_samples}", file=out)
    print(f"  detector verdicts : {total_verdicts} ({total_agg} flagged Agg)", file=out)
    print(f"  degradation steps : {total_deg}", file=out)
    print(f"  fault retries     : {total_retries}", file=out)
    steps = {}
    for e in epochs.values():
        for d in e["degradations"]:
            steps[d["step"]] = steps.get(d["step"], 0) + 1
    for step in sorted(steps):
        print(f"    {step}: {steps[step]}", file=out)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace written by obs::JsonlTraceSink")
    ap.add_argument("--validate-only", action="store_true",
                    help="check the schema and exit; print nothing on success")
    args = ap.parse_args()

    events, errors = load_trace(args.trace)
    if errors:
        for e in errors[:50]:
            print(f"schema error: {e}", file=sys.stderr)
        print(f"{len(errors)} schema error(s) in {args.trace}", file=sys.stderr)
        return 1
    if not events:
        print(f"{args.trace}: empty trace", file=sys.stderr)
        return 1
    if args.validate_only:
        print(f"{args.trace}: {len(events)} events, schema OK")
        return 0
    report(events)
    return 0


def self_test():
    import io
    import os
    import tempfile

    sample = [
        {"type": "epoch_start", "t": 0, "epoch": 0, "len": 2000000,
         "policy": "cmm_a", "prefetch": "1111", "masks": [15, 15, 15, 15]},
        {"type": "config_applied", "t": 0, "epoch": 0, "source": "initial",
         "prefetch": "1111", "masks": [15, 15, 15, 15]},
        {"type": "detector_verdict", "t": 2000000, "epoch": 0, "core": 0,
         "pga": 2.5, "pmr": 0.9, "ptr": 3e7, "agg": True},
        {"type": "detector_verdict", "t": 2000000, "epoch": 0, "core": 1,
         "pga": 0.1, "pmr": 0.2, "ptr": 1e5, "agg": False},
        {"type": "sample_result", "t": 2040000, "epoch": 0, "sample": 0,
         "hm_ipc": 0.91, "prefetch": "1111", "masks": [15, 15, 15, 15]},
        {"type": "sample_result", "t": 2080000, "epoch": 0, "sample": 1,
         "hm_ipc": 1.02, "prefetch": "0111", "masks": [15, 15, 15, 15]},
        {"type": "config_applied", "t": 2080000, "epoch": 0, "source": "final",
         "prefetch": "0111", "masks": [3, 15, 15, 15]},
        {"type": "degradation_step", "t": 2090000, "epoch": 0,
         "step": "sample_partial_discarded", "core": -1, "detail": 5000, "note": ""},
        {"type": "fault_retry", "t": 2090000, "epoch": 0, "attempt": 1,
         "backoff": 2, "what": "msr write"},
    ]
    checks = []

    def expect(label, cond):
        checks.append((label, cond))
        print(f"[{'ok' if cond else 'FAIL'}] {label}")

    with tempfile.TemporaryDirectory() as d:
        good = os.path.join(d, "good.jsonl")
        with open(good, "w", encoding="utf-8") as f:
            for ev in sample:
                f.write(json.dumps(ev) + "\n")
        events, errors = load_trace(good)
        expect("valid trace has no schema errors", not errors and len(events) == 9)

        buf = io.StringIO()
        report(events, out=buf)
        text = buf.getvalue()
        expect("timeline row shows the winning hm_ipc", "1.0200" in text)
        expect("timeline row shows the Agg core", " 0 " in text.splitlines()[2])
        expect("final config column shows applied masks", "0x3" in text)
        expect("summary counts degradation steps",
               "sample_partial_discarded: 1" in text)

        bad = os.path.join(d, "bad.jsonl")
        with open(bad, "w", encoding="utf-8") as f:
            f.write(json.dumps({"type": "epoch_start", "t": 0, "epoch": 0}) + "\n")
            f.write(json.dumps({"type": "bogus", "t": 1, "epoch": 0}) + "\n")
            f.write("not json\n")
        _, errors = load_trace(bad)
        expect("missing fields are flagged",
               any("epoch_start.len" in e for e in errors))
        expect("unknown type is flagged", any("bogus" in e for e in errors))
        expect("invalid JSON is flagged", any("invalid JSON" in e for e in errors))

        mono = os.path.join(d, "mono.jsonl")
        with open(mono, "w", encoding="utf-8") as f:
            f.write(json.dumps(dict(sample[0], t=100)) + "\n")
            f.write(json.dumps(dict(sample[1], t=50)) + "\n")
        _, errors = load_trace(mono)
        expect("non-monotonic time is flagged",
               any("time went backwards" in e for e in errors))

    failures = [label for label, ok in checks if not ok]
    if failures:
        print(f"\nself-test: {len(failures)}/{len(checks)} check(s) failed")
        return 1
    print(f"\nself-test: all {len(checks)} checks passed")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    sys.exit(main())
