#!/usr/bin/env python3
"""Render a CMM control-loop JSONL trace (obs::JsonlTraceSink output).

Every line is one JSON object with a "type" discriminator, a monotonic
simulated-time stamp "t" and an execution-epoch index "epoch"; resource
configurations appear as a per-core prefetch bit string plus a list of
decimal way masks. Event types and their fields:

    epoch_start       t epoch len policy prefetch masks [throttle]
    detector_verdict  t epoch core pga pmr ptr agg
    sample_result     t epoch sample hm_ipc prefetch masks [throttle]
    config_applied    t epoch source prefetch masks [throttle]
    degradation_step  t epoch step core detail note
    fault_retry       t epoch attempt backoff what
    tenant_attach     t epoch core tenant slo solo_ipc
    tenant_detach     t epoch core tenant epochs_served mean_ipc
    slo_breach        t epoch core tenant ipc floor
    recovery_probe    t epoch axis core ok
    tenant_migrated   t epoch core_from core_to domain_from domain_to tenant gain
    migration_rejected t epoch core_from core_to tenant reason gain

The report reconstructs the paper's Fig. 4 timeline — one row per
execution epoch: configuration in force, cores flagged Agg by the
Fig. 5 detector, number of sampling intervals, the winning candidate
(best hm_ipc) and the configuration finally applied — followed by a
per-policy decision summary covering service-mode tenant lifecycle
and recovery-ladder traffic.

For hierarchical-fleet traces (bench/fleet_migrate with CMM_FLEET_TRACE)
the report adds a cross-domain migration timeline — one row per
accepted move — plus per-domain occupancy flow (tenants in/out) and a
rejection tally by cost-model reason.

--follow tails a live soak trace (bench/soak_churn with CMM_SOAK_TRACE)
and prints a rolling SLO/health summary line as events stream in;
migration events roll into the same summary.

Usage:
    trace_report.py TRACE.jsonl              # validate + report
    trace_report.py TRACE.jsonl --validate-only
    trace_report.py TRACE.jsonl --follow [--poll S] [--idle-timeout S]
    trace_report.py --self-test
"""

import argparse
import json
import sys
import time

# type -> {field: allowed types}; every event also carries t/epoch.
SCHEMA = {
    "epoch_start": {"len": int, "policy": str, "prefetch": str, "masks": list,
                    "throttle": list},
    "detector_verdict": {"core": int, "pga": (int, float), "pmr": (int, float),
                         "ptr": (int, float), "agg": bool},
    "sample_result": {"sample": int, "hm_ipc": (int, float), "prefetch": str,
                      "masks": list, "throttle": list},
    "config_applied": {"source": str, "prefetch": str, "masks": list,
                       "throttle": list},
    "degradation_step": {"step": str, "core": int, "detail": int, "note": str},
    "fault_retry": {"attempt": int, "backoff": int, "what": str},
    "tenant_attach": {"core": int, "tenant": str, "slo": (int, float),
                      "solo_ipc": (int, float)},
    "tenant_detach": {"core": int, "tenant": str, "epochs_served": int,
                      "mean_ipc": (int, float)},
    "slo_breach": {"core": int, "tenant": str, "ipc": (int, float),
                   "floor": (int, float)},
    "recovery_probe": {"axis": str, "core": int, "ok": bool},
    "tenant_migrated": {"core_from": int, "core_to": int, "domain_from": int,
                        "domain_to": int, "tenant": str, "gain": (int, float)},
    "migration_rejected": {"core_from": int, "core_to": int, "tenant": str,
                           "reason": str, "gain": (int, float)},
}

APPLY_SOURCES = {"initial", "sample", "final", "watchdog", "reseed"}
REJECT_REASONS = {"no_gain", "bandwidth", "cooldown"}

# Fields the sink emits only when meaningful: per-core MBA throttle
# levels appear only while some core is bandwidth-regulated, so their
# absence is valid on every config-bearing event.
OPTIONAL_FIELDS = {"throttle"}


def validate_event(ev, lineno):
    """Return a list of schema violations for one parsed event."""
    errors = []
    etype = ev.get("type")
    if etype not in SCHEMA:
        return [f"line {lineno}: unknown event type {etype!r}"]
    for field, ftype in (("t", int), ("epoch", int)):
        if not isinstance(ev.get(field), ftype) or isinstance(ev.get(field), bool):
            errors.append(f"line {lineno}: {etype}.{field} missing or not an integer")
    for field, ftypes in SCHEMA[etype].items():
        value = ev.get(field)
        if value is None and field in OPTIONAL_FIELDS:
            continue
        if value is None or not isinstance(value, ftypes) or (
                isinstance(value, bool) and ftypes is not bool):
            errors.append(f"line {lineno}: {etype}.{field} missing or wrong type")
    if etype == "config_applied" and ev.get("source") not in APPLY_SOURCES:
        errors.append(f"line {lineno}: config_applied.source {ev.get('source')!r} "
                      f"not in {sorted(APPLY_SOURCES)}")
    if etype == "migration_rejected" and ev.get("reason") not in REJECT_REASONS:
        errors.append(f"line {lineno}: migration_rejected.reason "
                      f"{ev.get('reason')!r} not in {sorted(REJECT_REASONS)}")
    if "prefetch" in SCHEMA[etype] and isinstance(ev.get("prefetch"), str):
        if not all(c in "01" for c in ev["prefetch"]):
            errors.append(f"line {lineno}: {etype}.prefetch is not a bit string")
    if "masks" in SCHEMA[etype] and isinstance(ev.get("masks"), list):
        if not all(isinstance(m, int) and not isinstance(m, bool) and m >= 0
                   for m in ev["masks"]):
            errors.append(f"line {lineno}: {etype}.masks has a non-integer entry")
    if isinstance(ev.get("throttle"), list):
        if not all(isinstance(l, int) and not isinstance(l, bool) and l >= 0
                   for l in ev["throttle"]):
            errors.append(f"line {lineno}: {etype}.throttle has a non-integer entry")
    return errors


def load_trace(path):
    """Parse + validate; returns (events, errors)."""
    events, errors = [], []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"line {lineno}: invalid JSON: {e}")
                continue
            errors.extend(validate_event(ev, lineno))
            events.append(ev)
    last_t = None
    for i, ev in enumerate(events):
        t = ev.get("t")
        if isinstance(t, int) and last_t is not None and t < last_t:
            errors.append(f"event {i}: time went backwards ({t} < {last_t})")
        if isinstance(t, int):
            last_t = t
    return events, errors


def fmt_config(ev):
    masks = ev.get("masks") or []
    mask0 = f"0x{masks[0]:x}" if masks else "-"
    text = f"{ev.get('prefetch') or '-'} / {mask0}"
    throttle = ev.get("throttle")
    if throttle:
        text += " bp=" + "".join(str(min(l, 9)) for l in throttle)
    return text


def report(events, out=sys.stdout):
    epochs = {}
    policies = set()
    service = {"tenant_attach": 0, "tenant_detach": 0, "slo_breach": 0,
               "recovery_probe": 0, "probe_ok": 0}
    migrations, rejections = [], []
    for ev in events:
        if ev["type"] == "tenant_migrated":
            migrations.append(ev)
            continue
        if ev["type"] == "migration_rejected":
            rejections.append(ev)
            continue
        e = epochs.setdefault(ev["epoch"], {
            "start": None, "verdicts": [], "samples": [], "applied": [],
            "degradations": [], "retries": 0})
        etype = ev["type"]
        if etype == "epoch_start":
            e["start"] = ev
            policies.add(ev["policy"])
        elif etype == "detector_verdict":
            e["verdicts"].append(ev)
        elif etype == "sample_result":
            e["samples"].append(ev)
        elif etype == "config_applied":
            e["applied"].append(ev)
        elif etype == "degradation_step":
            e["degradations"].append(ev)
        elif etype == "fault_retry":
            e["retries"] += 1
        elif etype in service:
            service[etype] += 1
            if etype == "recovery_probe" and ev.get("ok"):
                service["probe_ok"] += 1

    header = (f"{'epoch':>5}  {'t(start)':>10}  {'length':>9}  {'agg cores':<12}  "
              f"{'samples':>7}  {'best hm_ipc':>11}  {'winning config':<22}  "
              f"{'final config':<22}")
    print(header, file=out)
    print("-" * len(header), file=out)
    for idx in sorted(k for k in epochs if epochs[k]["start"] is not None):
        e = epochs[idx]
        start = e["start"]
        agg = [str(v["core"]) for v in e["verdicts"] if v["agg"]]
        agg_text = ",".join(agg) if agg else "-"
        best = max(e["samples"], key=lambda s: s["hm_ipc"], default=None)
        final = next((a for a in e["applied"] if a["source"] in ("final", "watchdog")),
                     None)
        best_text = f"{best['hm_ipc']:>11.4f}" if best else f"{'-':>11}"
        win_text = fmt_config(best) if best else "-"
        final_text = fmt_config(final) if final else "-"
        print(f"{idx:>5}  {start['t']:>10}  {start['len']:>9}  {agg_text:<12}  "
              f"{len(e['samples']):>7}  {best_text}  {win_text:<22}  {final_text:<22}",
              file=out)

    total_samples = sum(len(e["samples"]) for e in epochs.values())
    total_verdicts = sum(len(e["verdicts"]) for e in epochs.values())
    total_agg = sum(1 for e in epochs.values() for v in e["verdicts"] if v["agg"])
    total_deg = sum(len(e["degradations"]) for e in epochs.values())
    total_retries = sum(e["retries"] for e in epochs.values())
    print(f"\npolicy decision summary ({', '.join(sorted(policies)) or 'unknown'}):",
          file=out)
    print(f"  execution epochs : {sum(1 for e in epochs.values() if e['start'])}",
          file=out)
    print(f"  sampling intervals: {total_samples}", file=out)
    print(f"  detector verdicts : {total_verdicts} ({total_agg} flagged Agg)", file=out)
    print(f"  degradation steps : {total_deg}", file=out)
    print(f"  fault retries     : {total_retries}", file=out)
    steps = {}
    for e in epochs.values():
        for d in e["degradations"]:
            steps[d["step"]] = steps.get(d["step"], 0) + 1
    for step in sorted(steps):
        print(f"    {step}: {steps[step]}", file=out)
    if any(service.values()):
        print("  service mode:", file=out)
        print(f"    tenant attaches   : {service['tenant_attach']}", file=out)
        print(f"    tenant detaches   : {service['tenant_detach']}", file=out)
        print(f"    SLO breaches      : {service['slo_breach']}", file=out)
        print(f"    recovery probes   : {service['recovery_probe']} "
              f"({service['probe_ok']} ok)", file=out)

    if migrations or rejections:
        reasons = {}
        for ev in rejections:
            reasons[ev["reason"]] = reasons.get(ev["reason"], 0) + 1
        reason_text = ", ".join(f"{r}={reasons[r]}" for r in sorted(reasons)) or "-"
        print("  fleet coordinator:", file=out)
        print(f"    migrations        : {len(migrations)}", file=out)
        print(f"    rejections        : {len(rejections)} ({reason_text})", file=out)

        # Per-domain occupancy flow: how many tenants each LLC domain
        # gained and lost over the run.
        flow = {}
        for ev in migrations:
            src = flow.setdefault(ev["domain_from"], [0, 0])
            dst = flow.setdefault(ev["domain_to"], [0, 0])
            src[0] += 1
            dst[1] += 1
        for d in sorted(flow):
            out_n, in_n = flow[d]
            print(f"      domain {d}: out={out_n} in={in_n} net={in_n - out_n:+d}",
                  file=out)

        print("\nmigration timeline:", file=out)
        mig_header = (f"{'t':>10}  {'epoch':>5}  {'tenant':<12}  {'move':<16}  "
                      f"{'gain':>8}")
        print(mig_header, file=out)
        print("-" * len(mig_header), file=out)
        for ev in migrations:
            move = (f"d{ev['domain_from']}:c{ev['core_from']} -> "
                    f"d{ev['domain_to']}:c{ev['core_to']}")
            print(f"{ev['t']:>10}  {ev['epoch']:>5}  {ev['tenant']:<12}  {move:<16}  "
                  f"{ev['gain']:>8.4f}", file=out)


class FollowState:
    """Rolling summary over a live (still-being-written) soak trace."""

    def __init__(self):
        self.events = 0
        self.last_t = 0
        self.last_epoch = 0
        self.tenants = {}       # core -> tenant name
        self.attaches = 0
        self.detaches = 0
        self.breaches = 0
        self.probes = 0
        self.probes_ok = 0
        self.degradations = 0
        self.migrations = 0
        self.rejections = 0
        self.errors = 0

    def feed(self, line, lineno):
        line = line.strip()
        if not line:
            return
        try:
            ev = json.loads(line)
        except json.JSONDecodeError:
            self.errors += 1
            return
        if validate_event(ev, lineno):
            self.errors += 1
            return
        self.events += 1
        self.last_t = ev["t"]
        self.last_epoch = ev["epoch"]
        etype = ev["type"]
        if etype == "tenant_attach":
            self.attaches += 1
            self.tenants[ev["core"]] = ev["tenant"]
        elif etype == "tenant_detach":
            self.detaches += 1
            self.tenants.pop(ev["core"], None)
        elif etype == "slo_breach":
            self.breaches += 1
        elif etype == "recovery_probe":
            self.probes += 1
            if ev["ok"]:
                self.probes_ok += 1
        elif etype == "degradation_step":
            self.degradations += 1
        elif etype == "tenant_migrated":
            self.migrations += 1
        elif etype == "migration_rejected":
            self.rejections += 1

    def summary_line(self):
        resident = ",".join(self.tenants[c] for c in sorted(self.tenants)) or "-"
        return (f"t={self.last_t} epoch={self.last_epoch} events={self.events} "
                f"tenants={len(self.tenants)}[{resident}] "
                f"churn={self.attaches}/{self.detaches} breaches={self.breaches} "
                f"probes={self.probes_ok}/{self.probes} "
                f"degradations={self.degradations} "
                f"migrations={self.migrations}/{self.rejections} "
                f"schema_errors={self.errors}")


def follow(path, out=sys.stdout, poll=0.5, idle_timeout=None):
    """Tail a live JSONL trace, printing a rolling summary per batch.

    Exits 0 when `idle_timeout` seconds pass with no new data (None =
    follow forever, until interrupted).
    """
    state = FollowState()
    lineno = 0
    idle = 0.0
    partial = ""
    with open(path, encoding="utf-8") as f:
        while True:
            chunk = f.read()
            if chunk:
                idle = 0.0
                partial += chunk
                lines = partial.split("\n")
                partial = lines.pop()  # possibly mid-line: keep for next read
                for line in lines:
                    lineno += 1
                    state.feed(line, lineno)
                print(state.summary_line(), file=out, flush=True)
            else:
                if idle_timeout is not None and idle >= idle_timeout:
                    break
                time.sleep(poll)
                idle += poll
    print(f"follow done: {state.summary_line()}", file=out, flush=True)
    return 1 if state.errors else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="JSONL trace written by obs::JsonlTraceSink")
    ap.add_argument("--validate-only", action="store_true",
                    help="check the schema and exit; print nothing on success")
    ap.add_argument("--follow", action="store_true",
                    help="tail a live trace; rolling SLO/health summary")
    ap.add_argument("--poll", type=float, default=0.5,
                    help="follow mode: seconds between reads (default 0.5)")
    ap.add_argument("--idle-timeout", type=float, default=None,
                    help="follow mode: exit after this many idle seconds "
                         "(default: follow forever)")
    args = ap.parse_args()

    if args.follow:
        return follow(args.trace, poll=args.poll, idle_timeout=args.idle_timeout)

    events, errors = load_trace(args.trace)
    if errors:
        for e in errors[:50]:
            print(f"schema error: {e}", file=sys.stderr)
        print(f"{len(errors)} schema error(s) in {args.trace}", file=sys.stderr)
        return 1
    if not events:
        print(f"{args.trace}: empty trace", file=sys.stderr)
        return 1
    if args.validate_only:
        print(f"{args.trace}: {len(events)} events, schema OK")
        return 0
    report(events)
    return 0


def self_test():
    import io
    import os
    import tempfile

    sample = [
        {"type": "epoch_start", "t": 0, "epoch": 0, "len": 2000000,
         "policy": "cmm_a", "prefetch": "1111", "masks": [15, 15, 15, 15]},
        {"type": "config_applied", "t": 0, "epoch": 0, "source": "initial",
         "prefetch": "1111", "masks": [15, 15, 15, 15]},
        {"type": "detector_verdict", "t": 2000000, "epoch": 0, "core": 0,
         "pga": 2.5, "pmr": 0.9, "ptr": 3e7, "agg": True},
        {"type": "detector_verdict", "t": 2000000, "epoch": 0, "core": 1,
         "pga": 0.1, "pmr": 0.2, "ptr": 1e5, "agg": False},
        {"type": "sample_result", "t": 2040000, "epoch": 0, "sample": 0,
         "hm_ipc": 0.91, "prefetch": "1111", "masks": [15, 15, 15, 15]},
        {"type": "sample_result", "t": 2080000, "epoch": 0, "sample": 1,
         "hm_ipc": 1.02, "prefetch": "0111", "masks": [15, 15, 15, 15]},
        {"type": "config_applied", "t": 2080000, "epoch": 0, "source": "final",
         "prefetch": "0111", "masks": [3, 15, 15, 15], "throttle": [0, 0, 1, 0]},
        {"type": "degradation_step", "t": 2090000, "epoch": 0,
         "step": "sample_partial_discarded", "core": -1, "detail": 5000, "note": ""},
        {"type": "fault_retry", "t": 2090000, "epoch": 0, "attempt": 1,
         "backoff": 2, "what": "msr write"},
        {"type": "config_applied", "t": 2095000, "epoch": 0, "source": "reseed",
         "prefetch": "1111", "masks": [15, 15, 15, 15]},
        {"type": "tenant_attach", "t": 2100000, "epoch": 1, "core": 2,
         "tenant": "lbm", "slo": 0.5, "solo_ipc": 1.25},
        {"type": "slo_breach", "t": 2200000, "epoch": 1, "core": 2,
         "tenant": "lbm", "ipc": 0.5, "floor": 0.625},
        {"type": "recovery_probe", "t": 2300000, "epoch": 1, "axis": "cat",
         "core": -1, "ok": True},
        {"type": "tenant_detach", "t": 2400000, "epoch": 2, "core": 2,
         "tenant": "lbm", "epochs_served": 7, "mean_ipc": 0.75},
        {"type": "tenant_migrated", "t": 2500000, "epoch": 2, "core_from": 1,
         "core_to": 6, "domain_from": 0, "domain_to": 1, "tenant": "milc",
         "gain": 0.042},
        {"type": "tenant_migrated", "t": 2500000, "epoch": 2, "core_from": 6,
         "core_to": 1, "domain_from": 1, "domain_to": 0, "tenant": "namd",
         "gain": 0.042},
        {"type": "migration_rejected", "t": 2600000, "epoch": 3, "core_from": 0,
         "core_to": 7, "tenant": "lbm", "reason": "cooldown", "gain": 0.0},
    ]
    checks = []

    def expect(label, cond):
        checks.append((label, cond))
        print(f"[{'ok' if cond else 'FAIL'}] {label}")

    with tempfile.TemporaryDirectory() as d:
        good = os.path.join(d, "good.jsonl")
        with open(good, "w", encoding="utf-8") as f:
            for ev in sample:
                f.write(json.dumps(ev) + "\n")
        events, errors = load_trace(good)
        expect("valid trace has no schema errors", not errors and len(events) == 17)
        expect("throttle-free events are valid (field is optional)",
               not any("throttle" in e for e in errors))

        buf = io.StringIO()
        report(events, out=buf)
        text = buf.getvalue()
        expect("timeline row shows the winning hm_ipc", "1.0200" in text)
        expect("timeline row shows the Agg core", " 0 " in text.splitlines()[2])
        expect("final config column shows applied masks", "0x3" in text)
        expect("final config column shows BP throttle levels", "bp=0010" in text)
        expect("summary counts degradation steps",
               "sample_partial_discarded: 1" in text)
        expect("summary counts tenant lifecycle",
               "tenant attaches   : 1" in text and "tenant detaches   : 1" in text)
        expect("summary counts SLO breaches", "SLO breaches      : 1" in text)
        expect("summary counts recovery probes", "recovery probes   : 1 (1 ok)" in text)
        expect("summary counts coordinator traffic",
               "migrations        : 2" in text
               and "rejections        : 1 (cooldown=1)" in text)
        expect("per-domain occupancy flow is reported",
               "domain 0: out=1 in=1 net=+0" in text
               and "domain 1: out=1 in=1 net=+0" in text)
        expect("migration timeline shows the move",
               "d0:c1 -> d1:c6" in text and "0.0420" in text)

        svc_bad = os.path.join(d, "svc_bad.jsonl")
        with open(svc_bad, "w", encoding="utf-8") as f:
            f.write(json.dumps({"type": "recovery_probe", "t": 1, "epoch": 0,
                                "axis": "cat", "core": -1}) + "\n")  # missing ok
            f.write(json.dumps({"type": "config_applied", "t": 2, "epoch": 0,
                                "source": "hotpatch", "prefetch": "1",
                                "masks": [1]}) + "\n")  # unknown source
        _, errors = load_trace(svc_bad)
        expect("recovery_probe missing field is flagged",
               any("recovery_probe.ok" in e for e in errors))
        expect("unknown apply source is flagged",
               any("hotpatch" in e for e in errors))

        mig_bad = os.path.join(d, "mig_bad.jsonl")
        with open(mig_bad, "w", encoding="utf-8") as f:
            f.write(json.dumps({"type": "migration_rejected", "t": 1, "epoch": 0,
                                "core_from": 0, "core_to": 1, "tenant": "lbm",
                                "reason": "vibes", "gain": 0.1}) + "\n")
            f.write(json.dumps({"type": "tenant_migrated", "t": 2, "epoch": 0,
                                "core_from": 0, "core_to": 1, "domain_from": 0,
                                "tenant": "lbm", "gain": 0.1}) + "\n")  # no domain_to
        _, errors = load_trace(mig_bad)
        expect("unknown rejection reason is flagged",
               any("vibes" in e for e in errors))
        expect("tenant_migrated missing field is flagged",
               any("tenant_migrated.domain_to" in e for e in errors))

        bp_bad = os.path.join(d, "bp_bad.jsonl")
        with open(bp_bad, "w", encoding="utf-8") as f:
            f.write(json.dumps({"type": "config_applied", "t": 1, "epoch": 0,
                                "source": "final", "prefetch": "1",
                                "masks": [1], "throttle": ["high"]}) + "\n")
        _, errors = load_trace(bp_bad)
        expect("non-integer throttle level is flagged",
               any("throttle has a non-integer entry" in e for e in errors))

        # Follow mode against a file that grows while we tail it.
        import threading

        live = os.path.join(d, "live.jsonl")
        with open(live, "w", encoding="utf-8") as f:
            f.write(json.dumps(sample[10]) + "\n")  # tenant_attach

        def append_later():
            time.sleep(0.2)
            with open(live, "a", encoding="utf-8") as f:
                f.write(json.dumps(sample[11]) + "\n")  # slo_breach
                f.write(json.dumps(sample[13]) + "\n")  # tenant_detach
                f.write(json.dumps(sample[14]) + "\n")  # tenant_migrated

        writer = threading.Thread(target=append_later)
        writer.start()
        fbuf = io.StringIO()
        rc = follow(live, out=fbuf, poll=0.1, idle_timeout=1.0)
        writer.join()
        ftext = fbuf.getvalue()
        expect("follow exits clean on idle timeout", rc == 0)
        expect("follow saw the resident tenant", "tenants=1[lbm]" in ftext)
        expect("follow rolled up the late-arriving events",
               "follow done:" in ftext and "breaches=1" in ftext
               and "churn=1/1" in ftext and "tenants=0[-]" in ftext.splitlines()[-1])
        expect("follow counts migrations",
               "migrations=1/0" in ftext.splitlines()[-1])

        bad = os.path.join(d, "bad.jsonl")
        with open(bad, "w", encoding="utf-8") as f:
            f.write(json.dumps({"type": "epoch_start", "t": 0, "epoch": 0}) + "\n")
            f.write(json.dumps({"type": "bogus", "t": 1, "epoch": 0}) + "\n")
            f.write("not json\n")
        _, errors = load_trace(bad)
        expect("missing fields are flagged",
               any("epoch_start.len" in e for e in errors))
        expect("unknown type is flagged", any("bogus" in e for e in errors))
        expect("invalid JSON is flagged", any("invalid JSON" in e for e in errors))

        mono = os.path.join(d, "mono.jsonl")
        with open(mono, "w", encoding="utf-8") as f:
            f.write(json.dumps(dict(sample[0], t=100)) + "\n")
            f.write(json.dumps(dict(sample[1], t=50)) + "\n")
        _, errors = load_trace(mono)
        expect("non-monotonic time is flagged",
               any("time went backwards" in e for e in errors))

    failures = [label for label, ok in checks if not ok]
    if failures:
        print(f"\nself-test: {len(failures)}/{len(checks)} check(s) failed")
        return 1
    print(f"\nself-test: all {len(checks)} checks passed")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(self_test())
    sys.exit(main())
