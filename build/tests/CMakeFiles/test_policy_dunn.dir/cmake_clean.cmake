file(REMOVE_RECURSE
  "CMakeFiles/test_policy_dunn.dir/test_policy_dunn.cpp.o"
  "CMakeFiles/test_policy_dunn.dir/test_policy_dunn.cpp.o.d"
  "test_policy_dunn"
  "test_policy_dunn.pdb"
  "test_policy_dunn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_dunn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
