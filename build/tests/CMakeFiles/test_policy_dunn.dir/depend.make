# Empty dependencies file for test_policy_dunn.
# This may be replaced when dependencies are built.
