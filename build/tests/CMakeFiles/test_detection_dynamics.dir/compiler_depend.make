# Empty compiler generated dependencies file for test_detection_dynamics.
# This may be replaced when dependencies are built.
