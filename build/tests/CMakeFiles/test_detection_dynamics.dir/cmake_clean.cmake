file(REMOVE_RECURSE
  "CMakeFiles/test_detection_dynamics.dir/test_detection_dynamics.cpp.o"
  "CMakeFiles/test_detection_dynamics.dir/test_detection_dynamics.cpp.o.d"
  "test_detection_dynamics"
  "test_detection_dynamics.pdb"
  "test_detection_dynamics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detection_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
