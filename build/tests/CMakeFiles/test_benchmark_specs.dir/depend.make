# Empty dependencies file for test_benchmark_specs.
# This may be replaced when dependencies are built.
