file(REMOVE_RECURSE
  "CMakeFiles/test_benchmark_specs.dir/test_benchmark_specs.cpp.o"
  "CMakeFiles/test_benchmark_specs.dir/test_benchmark_specs.cpp.o.d"
  "test_benchmark_specs"
  "test_benchmark_specs.pdb"
  "test_benchmark_specs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchmark_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
