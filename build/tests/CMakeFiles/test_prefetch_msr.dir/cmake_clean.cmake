file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch_msr.dir/test_prefetch_msr.cpp.o"
  "CMakeFiles/test_prefetch_msr.dir/test_prefetch_msr.cpp.o.d"
  "test_prefetch_msr"
  "test_prefetch_msr.pdb"
  "test_prefetch_msr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
