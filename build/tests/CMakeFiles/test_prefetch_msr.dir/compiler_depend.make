# Empty compiler generated dependencies file for test_prefetch_msr.
# This may be replaced when dependencies are built.
