file(REMOVE_RECURSE
  "CMakeFiles/test_prefetchers.dir/test_prefetchers.cpp.o"
  "CMakeFiles/test_prefetchers.dir/test_prefetchers.cpp.o.d"
  "test_prefetchers"
  "test_prefetchers.pdb"
  "test_prefetchers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
