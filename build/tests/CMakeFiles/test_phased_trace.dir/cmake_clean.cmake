file(REMOVE_RECURSE
  "CMakeFiles/test_phased_trace.dir/test_phased_trace.cpp.o"
  "CMakeFiles/test_phased_trace.dir/test_phased_trace.cpp.o.d"
  "test_phased_trace"
  "test_phased_trace.pdb"
  "test_phased_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phased_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
