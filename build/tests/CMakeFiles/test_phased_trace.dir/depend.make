# Empty dependencies file for test_phased_trace.
# This may be replaced when dependencies are built.
