# Empty dependencies file for test_cat.
# This may be replaced when dependencies are built.
