file(REMOVE_RECURSE
  "CMakeFiles/test_cat.dir/test_cat.cpp.o"
  "CMakeFiles/test_cat.dir/test_cat.cpp.o.d"
  "test_cat"
  "test_cat.pdb"
  "test_cat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
