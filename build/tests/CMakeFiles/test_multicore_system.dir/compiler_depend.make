# Empty compiler generated dependencies file for test_multicore_system.
# This may be replaced when dependencies are built.
