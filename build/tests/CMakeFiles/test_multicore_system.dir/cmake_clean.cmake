file(REMOVE_RECURSE
  "CMakeFiles/test_multicore_system.dir/test_multicore_system.cpp.o"
  "CMakeFiles/test_multicore_system.dir/test_multicore_system.cpp.o.d"
  "test_multicore_system"
  "test_multicore_system.pdb"
  "test_multicore_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicore_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
