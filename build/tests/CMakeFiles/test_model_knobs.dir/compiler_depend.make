# Empty compiler generated dependencies file for test_model_knobs.
# This may be replaced when dependencies are built.
