file(REMOVE_RECURSE
  "CMakeFiles/test_model_knobs.dir/test_model_knobs.cpp.o"
  "CMakeFiles/test_model_knobs.dir/test_model_knobs.cpp.o.d"
  "test_model_knobs"
  "test_model_knobs.pdb"
  "test_model_knobs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
