file(REMOVE_RECURSE
  "CMakeFiles/test_epoch_driver.dir/test_epoch_driver.cpp.o"
  "CMakeFiles/test_epoch_driver.dir/test_epoch_driver.cpp.o.d"
  "test_epoch_driver"
  "test_epoch_driver.pdb"
  "test_epoch_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
