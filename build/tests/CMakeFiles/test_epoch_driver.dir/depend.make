# Empty dependencies file for test_epoch_driver.
# This may be replaced when dependencies are built.
