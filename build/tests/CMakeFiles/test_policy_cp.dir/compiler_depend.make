# Empty compiler generated dependencies file for test_policy_cp.
# This may be replaced when dependencies are built.
