file(REMOVE_RECURSE
  "CMakeFiles/test_policy_cp.dir/test_policy_cp.cpp.o"
  "CMakeFiles/test_policy_cp.dir/test_policy_cp.cpp.o.d"
  "test_policy_cp"
  "test_policy_cp.pdb"
  "test_policy_cp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
