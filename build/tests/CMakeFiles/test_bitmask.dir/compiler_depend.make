# Empty compiler generated dependencies file for test_bitmask.
# This may be replaced when dependencies are built.
