# Empty dependencies file for test_workload_mix.
# This may be replaced when dependencies are built.
