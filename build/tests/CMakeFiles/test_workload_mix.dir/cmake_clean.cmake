file(REMOVE_RECURSE
  "CMakeFiles/test_workload_mix.dir/test_workload_mix.cpp.o"
  "CMakeFiles/test_workload_mix.dir/test_workload_mix.cpp.o.d"
  "test_workload_mix"
  "test_workload_mix.pdb"
  "test_workload_mix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
