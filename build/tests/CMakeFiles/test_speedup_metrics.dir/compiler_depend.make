# Empty compiler generated dependencies file for test_speedup_metrics.
# This may be replaced when dependencies are built.
