file(REMOVE_RECURSE
  "CMakeFiles/test_speedup_metrics.dir/test_speedup_metrics.cpp.o"
  "CMakeFiles/test_speedup_metrics.dir/test_speedup_metrics.cpp.o.d"
  "test_speedup_metrics"
  "test_speedup_metrics.pdb"
  "test_speedup_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_speedup_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
