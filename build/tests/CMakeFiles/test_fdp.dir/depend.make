# Empty dependencies file for test_fdp.
# This may be replaced when dependencies are built.
