file(REMOVE_RECURSE
  "CMakeFiles/test_fdp.dir/test_fdp.cpp.o"
  "CMakeFiles/test_fdp.dir/test_fdp.cpp.o.d"
  "test_fdp"
  "test_fdp.pdb"
  "test_fdp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
