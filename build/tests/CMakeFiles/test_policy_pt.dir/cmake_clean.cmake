file(REMOVE_RECURSE
  "CMakeFiles/test_policy_pt.dir/test_policy_pt.cpp.o"
  "CMakeFiles/test_policy_pt.dir/test_policy_pt.cpp.o.d"
  "test_policy_pt"
  "test_policy_pt.pdb"
  "test_policy_pt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
