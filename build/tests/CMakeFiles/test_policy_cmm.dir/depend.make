# Empty dependencies file for test_policy_cmm.
# This may be replaced when dependencies are built.
