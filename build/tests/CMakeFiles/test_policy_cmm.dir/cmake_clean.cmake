file(REMOVE_RECURSE
  "CMakeFiles/test_policy_cmm.dir/test_policy_cmm.cpp.o"
  "CMakeFiles/test_policy_cmm.dir/test_policy_cmm.cpp.o.d"
  "test_policy_cmm"
  "test_policy_cmm.pdb"
  "test_policy_cmm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_cmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
