file(REMOVE_RECURSE
  "CMakeFiles/test_address_streams.dir/test_address_streams.cpp.o"
  "CMakeFiles/test_address_streams.dir/test_address_streams.cpp.o.d"
  "test_address_streams"
  "test_address_streams.pdb"
  "test_address_streams[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_address_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
