file(REMOVE_RECURSE
  "CMakeFiles/test_run_harness.dir/test_run_harness.cpp.o"
  "CMakeFiles/test_run_harness.dir/test_run_harness.cpp.o.d"
  "test_run_harness"
  "test_run_harness.pdb"
  "test_run_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_run_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
