# Empty dependencies file for test_run_harness.
# This may be replaced when dependencies are built.
