file(REMOVE_RECURSE
  "CMakeFiles/test_memory_controller.dir/test_memory_controller.cpp.o"
  "CMakeFiles/test_memory_controller.dir/test_memory_controller.cpp.o.d"
  "test_memory_controller"
  "test_memory_controller.pdb"
  "test_memory_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
