file(REMOVE_RECURSE
  "libcmm_analysis.a"
)
