# Empty dependencies file for cmm_analysis.
# This may be replaced when dependencies are built.
