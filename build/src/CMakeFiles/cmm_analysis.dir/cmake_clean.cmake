file(REMOVE_RECURSE
  "CMakeFiles/cmm_analysis.dir/analysis/run_harness.cpp.o"
  "CMakeFiles/cmm_analysis.dir/analysis/run_harness.cpp.o.d"
  "CMakeFiles/cmm_analysis.dir/analysis/speedup_metrics.cpp.o"
  "CMakeFiles/cmm_analysis.dir/analysis/speedup_metrics.cpp.o.d"
  "CMakeFiles/cmm_analysis.dir/analysis/table.cpp.o"
  "CMakeFiles/cmm_analysis.dir/analysis/table.cpp.o.d"
  "libcmm_analysis.a"
  "libcmm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
