# Empty compiler generated dependencies file for cmm_hw.
# This may be replaced when dependencies are built.
