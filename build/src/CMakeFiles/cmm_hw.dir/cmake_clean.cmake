file(REMOVE_RECURSE
  "CMakeFiles/cmm_hw.dir/hw/cat_controller.cpp.o"
  "CMakeFiles/cmm_hw.dir/hw/cat_controller.cpp.o.d"
  "CMakeFiles/cmm_hw.dir/hw/msr_device.cpp.o"
  "CMakeFiles/cmm_hw.dir/hw/msr_device.cpp.o.d"
  "CMakeFiles/cmm_hw.dir/hw/pmu_reader.cpp.o"
  "CMakeFiles/cmm_hw.dir/hw/pmu_reader.cpp.o.d"
  "libcmm_hw.a"
  "libcmm_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmm_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
