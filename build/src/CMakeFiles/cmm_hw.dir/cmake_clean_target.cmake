file(REMOVE_RECURSE
  "libcmm_hw.a"
)
