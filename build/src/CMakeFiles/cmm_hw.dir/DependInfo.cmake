
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cat_controller.cpp" "src/CMakeFiles/cmm_hw.dir/hw/cat_controller.cpp.o" "gcc" "src/CMakeFiles/cmm_hw.dir/hw/cat_controller.cpp.o.d"
  "/root/repo/src/hw/msr_device.cpp" "src/CMakeFiles/cmm_hw.dir/hw/msr_device.cpp.o" "gcc" "src/CMakeFiles/cmm_hw.dir/hw/msr_device.cpp.o.d"
  "/root/repo/src/hw/pmu_reader.cpp" "src/CMakeFiles/cmm_hw.dir/hw/pmu_reader.cpp.o" "gcc" "src/CMakeFiles/cmm_hw.dir/hw/pmu_reader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
