file(REMOVE_RECURSE
  "libcmm_core.a"
)
