
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detector.cpp" "src/CMakeFiles/cmm_core.dir/core/detector.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/detector.cpp.o.d"
  "/root/repo/src/core/epoch_driver.cpp" "src/CMakeFiles/cmm_core.dir/core/epoch_driver.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/epoch_driver.cpp.o.d"
  "/root/repo/src/core/fdp.cpp" "src/CMakeFiles/cmm_core.dir/core/fdp.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/fdp.cpp.o.d"
  "/root/repo/src/core/kmeans.cpp" "src/CMakeFiles/cmm_core.dir/core/kmeans.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/kmeans.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/cmm_core.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/cmm_core.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/policy_baseline.cpp" "src/CMakeFiles/cmm_core.dir/core/policy_baseline.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/policy_baseline.cpp.o.d"
  "/root/repo/src/core/policy_cmm.cpp" "src/CMakeFiles/cmm_core.dir/core/policy_cmm.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/policy_cmm.cpp.o.d"
  "/root/repo/src/core/policy_cp.cpp" "src/CMakeFiles/cmm_core.dir/core/policy_cp.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/policy_cp.cpp.o.d"
  "/root/repo/src/core/policy_dunn.cpp" "src/CMakeFiles/cmm_core.dir/core/policy_dunn.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/policy_dunn.cpp.o.d"
  "/root/repo/src/core/policy_pt.cpp" "src/CMakeFiles/cmm_core.dir/core/policy_pt.cpp.o" "gcc" "src/CMakeFiles/cmm_core.dir/core/policy_pt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
