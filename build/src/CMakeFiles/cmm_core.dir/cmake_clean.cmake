file(REMOVE_RECURSE
  "CMakeFiles/cmm_core.dir/core/detector.cpp.o"
  "CMakeFiles/cmm_core.dir/core/detector.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/epoch_driver.cpp.o"
  "CMakeFiles/cmm_core.dir/core/epoch_driver.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/fdp.cpp.o"
  "CMakeFiles/cmm_core.dir/core/fdp.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/kmeans.cpp.o"
  "CMakeFiles/cmm_core.dir/core/kmeans.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/metrics.cpp.o"
  "CMakeFiles/cmm_core.dir/core/metrics.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/policy.cpp.o"
  "CMakeFiles/cmm_core.dir/core/policy.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/policy_baseline.cpp.o"
  "CMakeFiles/cmm_core.dir/core/policy_baseline.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/policy_cmm.cpp.o"
  "CMakeFiles/cmm_core.dir/core/policy_cmm.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/policy_cp.cpp.o"
  "CMakeFiles/cmm_core.dir/core/policy_cp.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/policy_dunn.cpp.o"
  "CMakeFiles/cmm_core.dir/core/policy_dunn.cpp.o.d"
  "CMakeFiles/cmm_core.dir/core/policy_pt.cpp.o"
  "CMakeFiles/cmm_core.dir/core/policy_pt.cpp.o.d"
  "libcmm_core.a"
  "libcmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
