# Empty dependencies file for cmm_core.
# This may be replaced when dependencies are built.
