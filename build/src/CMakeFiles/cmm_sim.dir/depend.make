# Empty dependencies file for cmm_sim.
# This may be replaced when dependencies are built.
