file(REMOVE_RECURSE
  "libcmm_sim.a"
)
