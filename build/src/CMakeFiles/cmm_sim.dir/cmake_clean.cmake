file(REMOVE_RECURSE
  "CMakeFiles/cmm_sim.dir/sim/cache.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/cache.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/cat.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/cat.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/core_model.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/core_model.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/machine_config.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/machine_config.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/memory_controller.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/memory_controller.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/multicore_system.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/multicore_system.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/pf_adjacent.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/pf_adjacent.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/pf_ip_stride.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/pf_ip_stride.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/pf_next_line.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/pf_next_line.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/pf_streamer.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/pf_streamer.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/pmu.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/pmu.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/prefetch_msr.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/prefetch_msr.cpp.o.d"
  "CMakeFiles/cmm_sim.dir/sim/prefetcher.cpp.o"
  "CMakeFiles/cmm_sim.dir/sim/prefetcher.cpp.o.d"
  "libcmm_sim.a"
  "libcmm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
