
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/cmm_sim.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/cat.cpp" "src/CMakeFiles/cmm_sim.dir/sim/cat.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/cat.cpp.o.d"
  "/root/repo/src/sim/core_model.cpp" "src/CMakeFiles/cmm_sim.dir/sim/core_model.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/core_model.cpp.o.d"
  "/root/repo/src/sim/machine_config.cpp" "src/CMakeFiles/cmm_sim.dir/sim/machine_config.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/machine_config.cpp.o.d"
  "/root/repo/src/sim/memory_controller.cpp" "src/CMakeFiles/cmm_sim.dir/sim/memory_controller.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/memory_controller.cpp.o.d"
  "/root/repo/src/sim/multicore_system.cpp" "src/CMakeFiles/cmm_sim.dir/sim/multicore_system.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/multicore_system.cpp.o.d"
  "/root/repo/src/sim/pf_adjacent.cpp" "src/CMakeFiles/cmm_sim.dir/sim/pf_adjacent.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/pf_adjacent.cpp.o.d"
  "/root/repo/src/sim/pf_ip_stride.cpp" "src/CMakeFiles/cmm_sim.dir/sim/pf_ip_stride.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/pf_ip_stride.cpp.o.d"
  "/root/repo/src/sim/pf_next_line.cpp" "src/CMakeFiles/cmm_sim.dir/sim/pf_next_line.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/pf_next_line.cpp.o.d"
  "/root/repo/src/sim/pf_streamer.cpp" "src/CMakeFiles/cmm_sim.dir/sim/pf_streamer.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/pf_streamer.cpp.o.d"
  "/root/repo/src/sim/pmu.cpp" "src/CMakeFiles/cmm_sim.dir/sim/pmu.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/pmu.cpp.o.d"
  "/root/repo/src/sim/prefetch_msr.cpp" "src/CMakeFiles/cmm_sim.dir/sim/prefetch_msr.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/prefetch_msr.cpp.o.d"
  "/root/repo/src/sim/prefetcher.cpp" "src/CMakeFiles/cmm_sim.dir/sim/prefetcher.cpp.o" "gcc" "src/CMakeFiles/cmm_sim.dir/sim/prefetcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
