
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/address_stream.cpp" "src/CMakeFiles/cmm_workloads.dir/workloads/address_stream.cpp.o" "gcc" "src/CMakeFiles/cmm_workloads.dir/workloads/address_stream.cpp.o.d"
  "/root/repo/src/workloads/benchmark_specs.cpp" "src/CMakeFiles/cmm_workloads.dir/workloads/benchmark_specs.cpp.o" "gcc" "src/CMakeFiles/cmm_workloads.dir/workloads/benchmark_specs.cpp.o.d"
  "/root/repo/src/workloads/patterns.cpp" "src/CMakeFiles/cmm_workloads.dir/workloads/patterns.cpp.o" "gcc" "src/CMakeFiles/cmm_workloads.dir/workloads/patterns.cpp.o.d"
  "/root/repo/src/workloads/phased.cpp" "src/CMakeFiles/cmm_workloads.dir/workloads/phased.cpp.o" "gcc" "src/CMakeFiles/cmm_workloads.dir/workloads/phased.cpp.o.d"
  "/root/repo/src/workloads/trace.cpp" "src/CMakeFiles/cmm_workloads.dir/workloads/trace.cpp.o" "gcc" "src/CMakeFiles/cmm_workloads.dir/workloads/trace.cpp.o.d"
  "/root/repo/src/workloads/workload_mix.cpp" "src/CMakeFiles/cmm_workloads.dir/workloads/workload_mix.cpp.o" "gcc" "src/CMakeFiles/cmm_workloads.dir/workloads/workload_mix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cmm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
