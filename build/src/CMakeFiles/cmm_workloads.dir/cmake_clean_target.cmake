file(REMOVE_RECURSE
  "libcmm_workloads.a"
)
