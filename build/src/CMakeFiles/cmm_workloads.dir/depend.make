# Empty dependencies file for cmm_workloads.
# This may be replaced when dependencies are built.
