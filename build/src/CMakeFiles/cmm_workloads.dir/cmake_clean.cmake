file(REMOVE_RECURSE
  "CMakeFiles/cmm_workloads.dir/workloads/address_stream.cpp.o"
  "CMakeFiles/cmm_workloads.dir/workloads/address_stream.cpp.o.d"
  "CMakeFiles/cmm_workloads.dir/workloads/benchmark_specs.cpp.o"
  "CMakeFiles/cmm_workloads.dir/workloads/benchmark_specs.cpp.o.d"
  "CMakeFiles/cmm_workloads.dir/workloads/patterns.cpp.o"
  "CMakeFiles/cmm_workloads.dir/workloads/patterns.cpp.o.d"
  "CMakeFiles/cmm_workloads.dir/workloads/phased.cpp.o"
  "CMakeFiles/cmm_workloads.dir/workloads/phased.cpp.o.d"
  "CMakeFiles/cmm_workloads.dir/workloads/trace.cpp.o"
  "CMakeFiles/cmm_workloads.dir/workloads/trace.cpp.o.d"
  "CMakeFiles/cmm_workloads.dir/workloads/workload_mix.cpp.o"
  "CMakeFiles/cmm_workloads.dir/workloads/workload_mix.cpp.o.d"
  "libcmm_workloads.a"
  "libcmm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
