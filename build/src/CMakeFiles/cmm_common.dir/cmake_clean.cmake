file(REMOVE_RECURSE
  "CMakeFiles/cmm_common.dir/common/rng.cpp.o"
  "CMakeFiles/cmm_common.dir/common/rng.cpp.o.d"
  "libcmm_common.a"
  "libcmm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
