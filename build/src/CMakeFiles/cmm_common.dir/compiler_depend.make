# Empty compiler generated dependencies file for cmm_common.
# This may be replaced when dependencies are built.
