file(REMOVE_RECURSE
  "libcmm_common.a"
)
