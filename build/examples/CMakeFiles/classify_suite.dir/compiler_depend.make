# Empty compiler generated dependencies file for classify_suite.
# This may be replaced when dependencies are built.
