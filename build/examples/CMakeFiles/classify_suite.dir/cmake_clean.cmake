file(REMOVE_RECURSE
  "CMakeFiles/classify_suite.dir/classify_suite.cpp.o"
  "CMakeFiles/classify_suite.dir/classify_suite.cpp.o.d"
  "classify_suite"
  "classify_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
