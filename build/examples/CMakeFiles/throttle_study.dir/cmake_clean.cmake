file(REMOVE_RECURSE
  "CMakeFiles/throttle_study.dir/throttle_study.cpp.o"
  "CMakeFiles/throttle_study.dir/throttle_study.cpp.o.d"
  "throttle_study"
  "throttle_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throttle_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
