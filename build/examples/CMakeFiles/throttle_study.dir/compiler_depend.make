# Empty compiler generated dependencies file for throttle_study.
# This may be replaced when dependencies are built.
