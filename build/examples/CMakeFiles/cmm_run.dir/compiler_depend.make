# Empty compiler generated dependencies file for cmm_run.
# This may be replaced when dependencies are built.
