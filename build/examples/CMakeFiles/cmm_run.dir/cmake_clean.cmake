file(REMOVE_RECURSE
  "CMakeFiles/cmm_run.dir/cmm_run.cpp.o"
  "CMakeFiles/cmm_run.dir/cmm_run.cpp.o.d"
  "cmm_run"
  "cmm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
