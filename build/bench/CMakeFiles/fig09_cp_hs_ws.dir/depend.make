# Empty dependencies file for fig09_cp_hs_ws.
# This may be replaced when dependencies are built.
