file(REMOVE_RECURSE
  "CMakeFiles/fig09_cp_hs_ws.dir/fig09_cp_hs_ws.cpp.o"
  "CMakeFiles/fig09_cp_hs_ws.dir/fig09_cp_hs_ws.cpp.o.d"
  "fig09_cp_hs_ws"
  "fig09_cp_hs_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_cp_hs_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
