file(REMOVE_RECURSE
  "CMakeFiles/fig04_epoch_timeline.dir/fig04_epoch_timeline.cpp.o"
  "CMakeFiles/fig04_epoch_timeline.dir/fig04_epoch_timeline.cpp.o.d"
  "fig04_epoch_timeline"
  "fig04_epoch_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_epoch_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
