
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig04_epoch_timeline.cpp" "bench/CMakeFiles/fig04_epoch_timeline.dir/fig04_epoch_timeline.cpp.o" "gcc" "bench/CMakeFiles/fig04_epoch_timeline.dir/fig04_epoch_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/cmm_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cmm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
