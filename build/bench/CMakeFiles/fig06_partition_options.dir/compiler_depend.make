# Empty compiler generated dependencies file for fig06_partition_options.
# This may be replaced when dependencies are built.
