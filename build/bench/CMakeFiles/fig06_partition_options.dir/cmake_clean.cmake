file(REMOVE_RECURSE
  "CMakeFiles/fig06_partition_options.dir/fig06_partition_options.cpp.o"
  "CMakeFiles/fig06_partition_options.dir/fig06_partition_options.cpp.o.d"
  "fig06_partition_options"
  "fig06_partition_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_partition_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
