# Empty compiler generated dependencies file for fig03_way_sensitivity.
# This may be replaced when dependencies are built.
