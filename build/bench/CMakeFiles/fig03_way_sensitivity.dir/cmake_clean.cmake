file(REMOVE_RECURSE
  "CMakeFiles/fig03_way_sensitivity.dir/fig03_way_sensitivity.cpp.o"
  "CMakeFiles/fig03_way_sensitivity.dir/fig03_way_sensitivity.cpp.o.d"
  "fig03_way_sensitivity"
  "fig03_way_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_way_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
