# Empty dependencies file for fig15_l2_stalls.
# This may be replaced when dependencies are built.
