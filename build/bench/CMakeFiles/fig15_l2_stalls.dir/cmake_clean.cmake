file(REMOVE_RECURSE
  "CMakeFiles/fig15_l2_stalls.dir/fig15_l2_stalls.cpp.o"
  "CMakeFiles/fig15_l2_stalls.dir/fig15_l2_stalls.cpp.o.d"
  "fig15_l2_stalls"
  "fig15_l2_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_l2_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
