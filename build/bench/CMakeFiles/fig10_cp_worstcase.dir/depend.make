# Empty dependencies file for fig10_cp_worstcase.
# This may be replaced when dependencies are built.
