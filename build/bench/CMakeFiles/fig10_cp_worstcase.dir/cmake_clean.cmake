file(REMOVE_RECURSE
  "CMakeFiles/fig10_cp_worstcase.dir/fig10_cp_worstcase.cpp.o"
  "CMakeFiles/fig10_cp_worstcase.dir/fig10_cp_worstcase.cpp.o.d"
  "fig10_cp_worstcase"
  "fig10_cp_worstcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cp_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
