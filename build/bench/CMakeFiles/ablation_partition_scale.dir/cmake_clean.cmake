file(REMOVE_RECURSE
  "CMakeFiles/ablation_partition_scale.dir/ablation_partition_scale.cpp.o"
  "CMakeFiles/ablation_partition_scale.dir/ablation_partition_scale.cpp.o.d"
  "ablation_partition_scale"
  "ablation_partition_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partition_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
