# Empty dependencies file for fig08_pt_worstcase.
# This may be replaced when dependencies are built.
