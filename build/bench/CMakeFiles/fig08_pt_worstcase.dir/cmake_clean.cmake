file(REMOVE_RECURSE
  "CMakeFiles/fig08_pt_worstcase.dir/fig08_pt_worstcase.cpp.o"
  "CMakeFiles/fig08_pt_worstcase.dir/fig08_pt_worstcase.cpp.o.d"
  "fig08_pt_worstcase"
  "fig08_pt_worstcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_pt_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
