# Empty compiler generated dependencies file for fig07_pt_hs_ws.
# This may be replaced when dependencies are built.
