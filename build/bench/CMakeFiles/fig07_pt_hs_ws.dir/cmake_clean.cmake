file(REMOVE_RECURSE
  "CMakeFiles/fig07_pt_hs_ws.dir/fig07_pt_hs_ws.cpp.o"
  "CMakeFiles/fig07_pt_hs_ws.dir/fig07_pt_hs_ws.cpp.o.d"
  "fig07_pt_hs_ws"
  "fig07_pt_hs_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_pt_hs_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
