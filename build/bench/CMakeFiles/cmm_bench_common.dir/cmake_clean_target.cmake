file(REMOVE_RECURSE
  "libcmm_bench_common.a"
)
