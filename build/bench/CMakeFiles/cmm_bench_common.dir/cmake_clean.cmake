file(REMOVE_RECURSE
  "CMakeFiles/cmm_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/cmm_bench_common.dir/bench_common.cpp.o.d"
  "libcmm_bench_common.a"
  "libcmm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
