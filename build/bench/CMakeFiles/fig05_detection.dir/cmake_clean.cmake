file(REMOVE_RECURSE
  "CMakeFiles/fig05_detection.dir/fig05_detection.cpp.o"
  "CMakeFiles/fig05_detection.dir/fig05_detection.cpp.o.d"
  "fig05_detection"
  "fig05_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
