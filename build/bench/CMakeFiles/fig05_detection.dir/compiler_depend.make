# Empty compiler generated dependencies file for fig05_detection.
# This may be replaced when dependencies are built.
