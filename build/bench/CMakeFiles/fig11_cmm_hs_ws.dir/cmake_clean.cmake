file(REMOVE_RECURSE
  "CMakeFiles/fig11_cmm_hs_ws.dir/fig11_cmm_hs_ws.cpp.o"
  "CMakeFiles/fig11_cmm_hs_ws.dir/fig11_cmm_hs_ws.cpp.o.d"
  "fig11_cmm_hs_ws"
  "fig11_cmm_hs_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cmm_hs_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
