# Empty compiler generated dependencies file for fig11_cmm_hs_ws.
# This may be replaced when dependencies are built.
