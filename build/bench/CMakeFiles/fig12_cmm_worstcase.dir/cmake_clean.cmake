file(REMOVE_RECURSE
  "CMakeFiles/fig12_cmm_worstcase.dir/fig12_cmm_worstcase.cpp.o"
  "CMakeFiles/fig12_cmm_worstcase.dir/fig12_cmm_worstcase.cpp.o.d"
  "fig12_cmm_worstcase"
  "fig12_cmm_worstcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cmm_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
