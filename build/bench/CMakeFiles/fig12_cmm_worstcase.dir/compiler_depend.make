# Empty compiler generated dependencies file for fig12_cmm_worstcase.
# This may be replaced when dependencies are built.
