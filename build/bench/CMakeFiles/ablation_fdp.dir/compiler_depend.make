# Empty compiler generated dependencies file for ablation_fdp.
# This may be replaced when dependencies are built.
