file(REMOVE_RECURSE
  "CMakeFiles/ablation_fdp.dir/ablation_fdp.cpp.o"
  "CMakeFiles/ablation_fdp.dir/ablation_fdp.cpp.o.d"
  "ablation_fdp"
  "ablation_fdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
