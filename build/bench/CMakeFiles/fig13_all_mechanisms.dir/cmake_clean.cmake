file(REMOVE_RECURSE
  "CMakeFiles/fig13_all_mechanisms.dir/fig13_all_mechanisms.cpp.o"
  "CMakeFiles/fig13_all_mechanisms.dir/fig13_all_mechanisms.cpp.o.d"
  "fig13_all_mechanisms"
  "fig13_all_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_all_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
