# Empty compiler generated dependencies file for fig13_all_mechanisms.
# This may be replaced when dependencies are built.
