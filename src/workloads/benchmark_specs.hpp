// The synthetic benchmark suite: named SPEC-CPU2006-like proxies plus
// the paper's "Rand Access" micro-benchmark. Each spec composes address
// patterns with execution traits and carries its *expected*
// classification (the paper's Sec. IV-B classes), which integration
// tests verify against measured behaviour (Figs 1-3 reproduction).
//
// Working-set sizes are expressed relative to a cache level of the
// machine being simulated, so the suite scales with MachineConfig and
// the paper's capacity ratios are preserved on the fast scaled machine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/core_model.hpp"
#include "sim/machine_config.hpp"
#include "workloads/address_stream.hpp"

namespace cmm::workloads {

enum class WsAnchor : std::uint8_t { L1, L2, Llc };

struct PatternSpec {
  enum class Kind : std::uint8_t { Stream, Strided, Random, BurstRandom, Chase };

  Kind kind = Kind::Stream;
  double weight = 1.0;          // share within the benchmark's mixture
  double ws_multiple = 1.0;     // working set = multiple x anchor size
  WsAnchor anchor = WsAnchor::Llc;
  std::uint64_t element = 8;    // Stream: bytes between accesses
  std::uint64_t stride_bytes = 256;  // Strided
  unsigned burst_min = 3;       // BurstRandom
  unsigned burst_max = 6;
  unsigned lines_per_node = 1;  // Chase: consecutive lines per node
  unsigned node_stride_lines = 0;  // Chase: node spacing (0 = packed)
  unsigned random_stride_lines = 1;  // Random: candidate-line spacing
};

struct BenchmarkSpec {
  std::string name;

  // Execution traits.
  double base_cpi = 0.5;
  double mlp = 4.0;
  double inst_per_mem = 4.0;   // instructions per memory reference
  double store_fraction = 0.1;

  std::vector<PatternSpec> patterns;

  // Expected classification per the paper's criteria (Sec. IV-B):
  //  aggressive: solo demand BW > threshold AND prefetch BW gain > 50 %
  //  friendly:   solo IPC speedup from prefetching > 30 %
  //  llc_sensitive: needs >= 8/20 of the ways for 80 % of peak IPC
  bool expect_prefetch_aggressive = false;
  bool expect_prefetch_friendly = false;
  bool expect_llc_sensitive = false;
};

/// The full suite, fixed order (deterministic mix construction).
const std::vector<BenchmarkSpec>& benchmark_suite();

/// Lookup by name; throws std::out_of_range for unknown names.
const BenchmarkSpec& spec_by_name(const std::string& name);

/// Names of all suite members in a class.
std::vector<std::string> prefetch_friendly_names();
std::vector<std::string> prefetch_unfriendly_names();  // aggressive & !friendly
std::vector<std::string> non_aggressive_names();
std::vector<std::string> llc_sensitive_names();

/// Instantiate the address stream of `spec` for one core of `machine`.
/// The stream lives in a core-private region (no sharing across cores).
std::unique_ptr<AddressStream> make_address_stream(const BenchmarkSpec& spec,
                                                   const sim::MachineConfig& machine,
                                                   CoreId core, std::uint64_t seed);

/// OpSource adapter: emits `inst_per_mem` instructions per memory
/// reference (dithered to preserve the exact rate), drawing addresses
/// from the spec's pattern mixture.
class SpecOpSource final : public sim::OpSource {
 public:
  SpecOpSource(const BenchmarkSpec& spec, const sim::MachineConfig& machine, CoreId core,
               std::uint64_t seed);

  sim::Op next() override;
  /// Buffer refill without per-op virtual dispatch (traits are fixed).
  std::size_t next_batch(std::span<sim::Op> out) override;
  sim::CoreTraits traits() const override { return traits_; }
  void reset() override;

  const std::string& benchmark_name() const noexcept { return name_; }

 private:
  sim::Op produce();

  std::string name_;
  sim::CoreTraits traits_;
  double inst_per_mem_;
  double store_fraction_;
  std::unique_ptr<AddressStream> stream_;
  Rng rng_;
  double carry_ = 0.0;
};

/// Convenience: build a ready-to-attach op source.
std::shared_ptr<sim::OpSource> make_op_source(const BenchmarkSpec& spec,
                                              const sim::MachineConfig& machine, CoreId core,
                                              std::uint64_t seed);
std::shared_ptr<sim::OpSource> make_op_source(const std::string& benchmark,
                                              const sim::MachineConfig& machine, CoreId core,
                                              std::uint64_t seed);

}  // namespace cmm::workloads
