#include "workloads/trace.hpp"

#include <sstream>
#include <stdexcept>

namespace cmm::workloads {

std::vector<sim::MemRef> parse_text_trace(std::istream& in) {
  std::vector<sim::MemRef> refs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream fields(line);
    std::string addr_token;
    fields >> addr_token;

    sim::MemRef ref;
    try {
      ref.addr = std::stoull(addr_token, nullptr, 0);  // auto base: 0x.. or decimal
    } catch (const std::exception&) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": bad address '" + addr_token + "'");
    }

    std::string rw;
    if (fields >> rw) {
      if (rw == "W" || rw == "w") {
        ref.is_store = true;
      } else if (rw != "R" && rw != "r") {
        throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                    ": expected R or W, got '" + rw + "'");
      }
      unsigned long ip = 0;
      if (fields >> ip) ref.ip = static_cast<IpId>(ip);
    }
    refs.push_back(ref);
  }
  return refs;
}

std::vector<sim::MemRef> parse_text_trace(const std::string& text) {
  std::istringstream in(text);
  return parse_text_trace(in);
}

TraceOpSource::TraceOpSource(std::vector<sim::MemRef> refs, sim::CoreTraits traits,
                             double inst_per_mem)
    : refs_(std::move(refs)),
      traits_(traits),
      inst_per_mem_(inst_per_mem < 1.0 ? 1.0 : inst_per_mem) {
  if (refs_.empty()) throw std::invalid_argument("TraceOpSource: empty trace");
}

sim::Op TraceOpSource::produce() {
  sim::Op op;
  carry_ += inst_per_mem_;
  op.instructions = static_cast<std::uint32_t>(carry_);
  carry_ -= op.instructions;
  if (op.instructions == 0) op.instructions = 1;
  op.has_mem = true;
  op.mem = refs_[pos_];
  if (++pos_ >= refs_.size()) {
    pos_ = 0;
    ++wraps_;
  }
  return op;
}

sim::Op TraceOpSource::next() { return produce(); }

std::size_t TraceOpSource::next_batch(std::span<sim::Op> out) {
  for (auto& op : out) op = produce();
  return out.size();
}

void TraceOpSource::reset() {
  pos_ = 0;
  carry_ = 0.0;
  wraps_ = 0;
}

}  // namespace cmm::workloads
