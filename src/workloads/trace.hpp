// Trace replay: drive a simulated core from a recorded memory-access
// trace instead of a synthetic generator — the path for evaluating CMM
// against real application behaviour without porting to hardware.
//
// Text format, one reference per line:
//
//     <address> [R|W] [ip]
//
// where <address> is hex (0x-prefixed or bare) or decimal, R/W defaults
// to R, and ip is an optional decimal instruction-pointer id. Blank
// lines and lines starting with '#' are ignored.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/core_model.hpp"

namespace cmm::workloads {

/// Parse a text trace; throws std::invalid_argument with a line number
/// on malformed input.
std::vector<sim::MemRef> parse_text_trace(std::istream& in);

/// Convenience: parse from a string (tests, inline traces).
std::vector<sim::MemRef> parse_text_trace(const std::string& text);

class TraceOpSource final : public sim::OpSource {
 public:
  /// Replays `refs` cyclically, issuing `inst_per_mem` instructions per
  /// reference (dithered like SpecOpSource) with the given traits.
  TraceOpSource(std::vector<sim::MemRef> refs, sim::CoreTraits traits, double inst_per_mem = 4.0);

  sim::Op next() override;
  /// Buffer refill without per-op virtual dispatch (traits are fixed).
  std::size_t next_batch(std::span<sim::Op> out) override;
  sim::CoreTraits traits() const override { return traits_; }
  void reset() override;

  std::size_t size() const noexcept { return refs_.size(); }
  /// Number of complete passes over the trace so far.
  std::uint64_t wraps() const noexcept { return wraps_; }

 private:
  sim::Op produce();

  std::vector<sim::MemRef> refs_;
  sim::CoreTraits traits_;
  double inst_per_mem_;
  double carry_ = 0.0;
  std::size_t pos_ = 0;
  std::uint64_t wraps_ = 0;
};

}  // namespace cmm::workloads
