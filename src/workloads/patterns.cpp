// Pattern factory: instantiates AddressStream objects from PatternSpec
// descriptions, placing each pattern in a disjoint core-private region.
#include <stdexcept>

#include "workloads/benchmark_specs.hpp"

namespace cmm::workloads {

namespace {

std::uint64_t anchor_bytes(WsAnchor anchor, const sim::MachineConfig& machine) {
  switch (anchor) {
    case WsAnchor::L1: return machine.l1d.size_bytes;
    case WsAnchor::L2: return machine.l2.size_bytes;
    case WsAnchor::Llc: return machine.llc.size_bytes;
  }
  throw std::invalid_argument("unknown WsAnchor");
}

std::uint64_t working_set_bytes(const PatternSpec& p, const sim::MachineConfig& machine) {
  auto ws = static_cast<std::uint64_t>(p.ws_multiple *
                                       static_cast<double>(anchor_bytes(p.anchor, machine)));
  // ws_multiple means *touched* cache capacity. A strided walk touches
  // only one line per stride, so its region must be proportionally
  // larger to exert the intended capacity pressure.
  if (p.kind == PatternSpec::Kind::Strided && p.stride_bytes > 64) {
    ws = ws * (p.stride_bytes / 64);
  }
  if (ws < 64) ws = 64;
  return ws;
}

std::unique_ptr<AddressStream> make_pattern(const PatternSpec& p, Addr base, std::uint64_t ws,
                                            IpId ip, Rng rng) {
  using Kind = PatternSpec::Kind;
  switch (p.kind) {
    case Kind::Stream:
      return std::make_unique<StreamPattern>(base, ws, ip, p.element);
    case Kind::Strided:
      return std::make_unique<StridedPattern>(base, ws, p.stride_bytes, ip);
    case Kind::Random:
      return std::make_unique<RandomPattern>(base, ws, ip, rng, p.random_stride_lines);
    case Kind::BurstRandom:
      return std::make_unique<BurstRandomPattern>(base, ws, ip, rng, p.burst_min, p.burst_max);
    case Kind::Chase:
      return std::make_unique<ChasePattern>(base, ws, ip, rng, p.lines_per_node,
                                            p.node_stride_lines);
  }
  throw std::invalid_argument("unknown PatternSpec::Kind");
}

}  // namespace

std::unique_ptr<AddressStream> make_address_stream(const BenchmarkSpec& spec,
                                                   const sim::MachineConfig& machine,
                                                   CoreId core, std::uint64_t seed) {
  if (spec.patterns.empty())
    throw std::invalid_argument("BenchmarkSpec '" + spec.name + "' has no patterns");

  // Core-private 1 TB address window; patterns occupy disjoint 64 GB
  // sub-regions so nothing aliases.
  const Addr core_base = (static_cast<Addr>(core) + 1) << 40;
  Rng rng(seed ^ (0xC0FFEEULL + core));

  if (spec.patterns.size() == 1) {
    const auto& p = spec.patterns.front();
    return make_pattern(p, core_base, working_set_bytes(p, machine), /*ip=*/1, rng.split());
  }

  std::vector<std::pair<double, std::unique_ptr<AddressStream>>> parts;
  parts.reserve(spec.patterns.size());
  IpId ip = 1;
  Addr region = core_base;
  for (const auto& p : spec.patterns) {
    parts.emplace_back(p.weight,
                       make_pattern(p, region, working_set_bytes(p, machine), ip, rng.split()));
    region += (1ULL << 36);  // 64 GB apart
    ip += 8;                 // distinct IP groups per pattern
  }
  return std::make_unique<MixturePattern>(std::move(parts), rng.split());
}

}  // namespace cmm::workloads
