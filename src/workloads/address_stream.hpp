// Synthetic address-stream generators. The paper evaluates on SPEC
// CPU2006 plus a hand-written "Rand Access" micro-benchmark; what the
// evaluation actually depends on is each program's *memory behaviour
// class* (prefetch aggressive / prefetch friendly / LLC sensitive), not
// program semantics. Each generator reproduces one archetypal pattern;
// BenchmarkSpec (benchmark_specs.hpp) composes them into named
// SPEC-like proxies calibrated against the paper's Figs 1-3.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/core_model.hpp"

namespace cmm::workloads {

/// Produces the byte-address sequence of one logical access pattern.
class AddressStream {
 public:
  virtual ~AddressStream() = default;
  virtual sim::MemRef next() = 0;
  virtual void reset() = 0;
};

/// Pure sequential walk over [base, base+size), wrapping. The classic
/// prefetch-friendly pattern (libquantum/bwaves-like).
class StreamPattern final : public AddressStream {
 public:
  StreamPattern(Addr base, std::uint64_t size, IpId ip, std::uint64_t element = 8);
  sim::MemRef next() override;
  void reset() override;

 private:
  Addr base_;
  std::uint64_t size_;
  std::uint64_t element_;
  IpId ip_;
  std::uint64_t pos_ = 0;
};

/// Constant-stride walk (stride may exceed the line size), wrapping.
/// Trains the IP-stride prefetcher; the streamer sees it as a sparse
/// forward stream.
class StridedPattern final : public AddressStream {
 public:
  StridedPattern(Addr base, std::uint64_t size, std::uint64_t stride_bytes, IpId ip);
  sim::MemRef next() override;
  void reset() override;

 private:
  Addr base_;
  std::uint64_t size_;
  std::uint64_t stride_;
  IpId ip_;
  std::uint64_t pos_ = 0;
};

/// Uniform random line touches over the region. Does not train the
/// streamer; adjacent-line prefetches are generated but useless.
///
/// `stride_lines` > 1 spaces the candidate lines apart (only every
/// stride-th line is ever touched), so adjacent-line prefetches land on
/// permanently untouched filler lines — pure pollution. `size` counts
/// *touched* capacity, independent of the stride.
class RandomPattern final : public AddressStream {
 public:
  RandomPattern(Addr base, std::uint64_t size, IpId ip, Rng rng, unsigned stride_lines = 1);
  sim::MemRef next() override;
  void reset() override;

 private:
  Addr base_;
  std::uint64_t lines_;
  unsigned stride_lines_;
  IpId ip_;
  Rng rng_;
  Rng initial_rng_;
};

/// Random burst pattern: jump to a random page, stream a short run of
/// consecutive lines, jump again. Trains the streamer just long enough
/// to make it prefetch ahead, then abandons the page — the signature of
/// the paper's "Rand Access" micro-benchmark: strongly prefetch
/// aggressive with useless prefetches.
class BurstRandomPattern final : public AddressStream {
 public:
  BurstRandomPattern(Addr base, std::uint64_t size, IpId ip, Rng rng, unsigned burst_min = 3,
                     unsigned burst_max = 6);
  sim::MemRef next() override;
  void reset() override;

 private:
  Addr base_;
  std::uint64_t lines_;
  IpId ip_;
  Rng rng_;
  Rng initial_rng_;
  unsigned burst_min_;
  unsigned burst_max_;
  Addr cur_line_ = 0;
  unsigned remaining_ = 0;
};

/// Dependent pointer chase over a fixed pseudo-random permutation of
/// the region's lines (precomputed, so the walk revisits its working
/// set — giving LLC sensitivity — and has serialised misses, which the
/// caller models with a low MLP trait).
class ChasePattern final : public AddressStream {
 public:
  /// `lines_per_node` > 1 walks that many consecutive lines at each
  /// node before chasing on — giving the pattern the 128 B spatial
  /// locality of real pointer-heavy codes (and making adjacent-line
  /// prefetches *useful*, unlike a pure chase).
  ///
  /// `node_stride_lines` > lines_per_node spaces nodes apart so the
  /// untouched filler lines between them are what adjacent/next-line
  /// prefetchers fetch — pure pollution, the omnetpp-like profile.
  /// `size` counts *touched* bytes (lines_per_node lines per node), so
  /// the cache-capacity pressure of the pattern is stride-independent.
  ChasePattern(Addr base, std::uint64_t size, IpId ip, Rng rng, unsigned lines_per_node = 1,
               unsigned node_stride_lines = 0);
  sim::MemRef next() override;
  void reset() override;

 private:
  Addr base_;
  IpId ip_;
  unsigned lines_per_node_;
  unsigned node_stride_lines_;
  std::vector<std::uint32_t> next_index_;  // permutation cycle over nodes
  std::uint32_t pos_ = 0;
  unsigned line_in_node_ = 0;
};

/// Weighted mixture of sub-patterns; each next() draws one pattern.
class MixturePattern final : public AddressStream {
 public:
  MixturePattern(std::vector<std::pair<double, std::unique_ptr<AddressStream>>> parts, Rng rng);
  sim::MemRef next() override;
  void reset() override;

 private:
  std::vector<std::pair<double, std::unique_ptr<AddressStream>>> parts_;
  double total_weight_;
  Rng rng_;
  Rng initial_rng_;
};

}  // namespace cmm::workloads
