// Adversarial detector-stress scenarios: the fig05-shaped workload
// categories crossed with per-core prefetcher engine profiles drawn
// from the registry zoo. The CMM detector's PGA/PMR/PTR thresholds are
// tuned for the Intel-modelled engines; sweeping the same workloads
// under best-offset / SPP / sandbox engines (and heterogeneous
// per-core mixes of all four profiles) probes where those thresholds
// misclassify. Scenario definitions live here so the bench binary and
// the detector-stress test suite evaluate the identical sweep.
#pragma once

#include <string>
#include <vector>

#include "sim/prefetcher.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::workloads {

/// A named per-core engine profile. An empty `l2_engines` means the
/// default Intel set verbatim; otherwise a core runs the profile's L2
/// engines plus the two L1 DCU engines (the L1 side is core-internal
/// and stays Intel-modelled in every profile).
struct EngineProfile {
  std::string name;
  std::vector<sim::PrefetcherKind> l2_engines;

  /// Full per-core engine set (L2 engines + DCU next-line/IP-stride).
  std::vector<sim::PrefetcherKind> core_set() const;
};

/// The swept profiles: intel (default set), bop, spp, sandbox.
const std::vector<EngineProfile>& engine_profiles();

/// One stress scenario: a workload category run under one machine-wide
/// engine assignment. `core_prefetchers` is ready to drop into
/// MachineConfig::core_prefetchers (empty = all-default machine).
struct StressScenario {
  std::string name;  // "<category>/<profile>"
  MixCategory category{};
  std::string profile;
  std::vector<std::vector<sim::PrefetcherKind>> core_prefetchers;
};

/// The full sweep for an `num_cores`-way machine: every category under
/// every homogeneous profile, plus a "hetero" assignment rotating the
/// profiles across cores (core c runs profile c % 4).
std::vector<StressScenario> make_stress_scenarios(unsigned num_cores);

}  // namespace cmm::workloads
