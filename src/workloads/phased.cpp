#include "workloads/phased.hpp"

#include <stdexcept>

#include "workloads/benchmark_specs.hpp"

namespace cmm::workloads {

PhasedOpSource::PhasedOpSource(std::vector<Phase> phases, const sim::MachineConfig& machine,
                               CoreId core, std::uint64_t seed)
    : phases_(std::move(phases)) {
  if (phases_.empty()) throw std::invalid_argument("PhasedOpSource: need at least one phase");
  sources_.reserve(phases_.size());
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].instructions == 0)
      throw std::invalid_argument("PhasedOpSource: zero-length phase");
    sources_.push_back(
        make_op_source(phases_[i].benchmark, machine, core, seed + 0x9E37ULL * i));
  }
}

const std::string& PhasedOpSource::current_benchmark() const {
  return phases_[phase_].benchmark;
}

void PhasedOpSource::advance_phase() {
  phase_ = (phase_ + 1) % phases_.size();
  executed_in_phase_ = 0;
}

sim::Op PhasedOpSource::next() {
  if (executed_in_phase_ >= phases_[phase_].instructions) advance_phase();
  const sim::Op op = sources_[phase_]->next();
  executed_in_phase_ += op.instructions;
  return op;
}

std::size_t PhasedOpSource::next_batch(std::span<sim::Op> out) {
  if (out.empty()) return 0;
  if (executed_in_phase_ >= phases_[phase_].instructions) advance_phase();
  const std::uint64_t budget = phases_[phase_].instructions;
  sim::OpSource& src = *sources_[phase_];
  std::size_t n = 0;
  // Stop at the phase's instruction budget so traits() stays valid for
  // every op handed out (the next_batch contract).
  while (n < out.size() && executed_in_phase_ < budget) {
    out[n] = src.next();
    executed_in_phase_ += out[n].instructions;
    ++n;
  }
  return n;
}

sim::CoreTraits PhasedOpSource::traits() const { return sources_[phase_]->traits(); }

void PhasedOpSource::reset() {
  for (auto& s : sources_) s->reset();
  phase_ = 0;
  executed_in_phase_ = 0;
}

}  // namespace cmm::workloads
