// Phased workloads: a core whose behaviour changes over time (the
// paper's footnote 3 — "in some program phases, the Agg set may not be
// empty" — and the reason CMM re-detects every execution epoch).
// Each phase runs one suite benchmark for a given instruction budget,
// then the source switches to the next phase, cycling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/core_model.hpp"
#include "sim/machine_config.hpp"

namespace cmm::workloads {

class PhasedOpSource final : public sim::OpSource {
 public:
  struct Phase {
    std::string benchmark;
    std::uint64_t instructions = 1'000'000;  // phase length
  };

  PhasedOpSource(std::vector<Phase> phases, const sim::MachineConfig& machine, CoreId core,
                 std::uint64_t seed);

  sim::Op next() override;
  /// Traits of the *current* phase (the timing model re-reads them).
  sim::CoreTraits traits() const override;
  /// Batches never straddle a phase boundary, so every op of a batch is
  /// costed with the traits of the phase that produced it.
  std::size_t next_batch(std::span<sim::Op> out) override;
  void reset() override;

  std::size_t current_phase() const noexcept { return phase_; }
  const std::string& current_benchmark() const;

 private:
  void advance_phase();

  std::vector<Phase> phases_;
  std::vector<std::shared_ptr<sim::OpSource>> sources_;
  std::size_t phase_ = 0;
  std::uint64_t executed_in_phase_ = 0;
};

}  // namespace cmm::workloads
