// Multiprogrammed workload construction (paper Sec. IV-B). Four
// categories of 8-benchmark mixes, 10 workloads each, benchmarks drawn
// randomly (seeded) from their class:
//
//   Pref Fri:    4 prefetch-friendly + 4 non-aggressive
//   Pref Agg:    2 friendly + 2 unfriendly + 4 non-aggressive
//   Pref Unfri:  4 unfriendly + 4 non-aggressive
//   Pref No Agg: 8 non-aggressive
//
// The non-aggressive picks always include at least two LLC-sensitive
// benchmarks, as in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/machine_config.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::workloads {

enum class MixCategory : std::uint8_t { PrefFri, PrefAgg, PrefUnfri, PrefNoAgg };

std::string_view to_string(MixCategory c) noexcept;

struct WorkloadMix {
  std::string name;           // e.g. "pref_agg_03"
  MixCategory category{};
  std::vector<std::string> benchmarks;  // one per core
};

/// `count` mixes of one category for an `num_cores`-way machine.
std::vector<WorkloadMix> make_mixes(MixCategory category, unsigned count, unsigned num_cores,
                                    std::uint64_t seed);

/// The paper's 40-workload evaluation set in presentation order:
/// 10 Pref Fri, 10 Pref Agg, 10 Pref Unfri, 10 Pref No Agg.
std::vector<WorkloadMix> paper_workloads(unsigned num_cores, std::uint64_t seed,
                                         unsigned per_category = 10);

/// Attach the mix's benchmarks to the system's cores.
void attach_mix(sim::MulticoreSystem& system, const WorkloadMix& mix, std::uint64_t seed);

}  // namespace cmm::workloads
