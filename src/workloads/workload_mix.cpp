#include "workloads/workload_mix.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "workloads/benchmark_specs.hpp"

namespace cmm::workloads {

std::string_view to_string(MixCategory c) noexcept {
  switch (c) {
    case MixCategory::PrefFri: return "pref_fri";
    case MixCategory::PrefAgg: return "pref_agg";
    case MixCategory::PrefUnfri: return "pref_unfri";
    case MixCategory::PrefNoAgg: return "pref_no_agg";
  }
  return "unknown";
}

namespace {

/// Draw `n` names from `pool` with replacement only if the pool is
/// smaller than `n` (the suite's unfriendly class has four members, so
/// 4-of-4 draws become a shuffled copy).
std::vector<std::string> draw(const std::vector<std::string>& pool, unsigned n, Rng& rng) {
  if (pool.empty()) throw std::logic_error("empty benchmark class pool");
  std::vector<std::string> out;
  out.reserve(n);
  if (pool.size() >= n) {
    std::vector<std::string> copy = pool;
    for (unsigned i = 0; i < n; ++i) {
      const auto j = static_cast<std::size_t>(rng.next_below(copy.size()));
      out.push_back(copy[j]);
      copy.erase(copy.begin() + static_cast<std::ptrdiff_t>(j));
    }
  } else {
    for (unsigned i = 0; i < n; ++i)
      out.push_back(pool[static_cast<std::size_t>(rng.next_below(pool.size()))]);
  }
  return out;
}

/// Non-aggressive picks with two LLC-sensitive members (paper
/// Sec. IV-B: "four non Pref Agg benchmarks include at least two
/// LLC-sensitive benchmarks"); the remainder is drawn from the
/// non-sensitive, non-aggressive (compute-bound) class.
std::vector<std::string> draw_non_agg(unsigned n, Rng& rng) {
  const auto sensitive = llc_sensitive_names();
  std::vector<std::string> insensitive;
  for (const auto& name : non_aggressive_names()) {
    const auto& spec = spec_by_name(name);
    if (!spec.expect_llc_sensitive) insensitive.push_back(name);
  }

  std::vector<std::string> out;
  const unsigned want_sensitive = std::min<unsigned>(2, n);
  auto s = draw(sensitive, want_sensitive, rng);
  out.insert(out.end(), s.begin(), s.end());
  if (n > want_sensitive) {
    auto rest = draw(insensitive, n - want_sensitive, rng);
    out.insert(out.end(), rest.begin(), rest.end());
  }
  // Shuffle so the sensitive picks are not always on the low cores.
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[static_cast<std::size_t>(rng.next_below(i))]);
  }
  return out;
}

std::vector<std::string> compose(MixCategory category, unsigned num_cores, Rng& rng) {
  if (num_cores < 2) throw std::invalid_argument("mixes need at least 2 cores");
  // Class counts scale with the core count, preserving the paper's
  // 8-core proportions.
  const unsigned half = num_cores / 2;
  std::vector<std::string> picks;
  switch (category) {
    case MixCategory::PrefFri: {
      picks = draw(prefetch_friendly_names(), half, rng);
      auto rest = draw_non_agg(num_cores - half, rng);
      picks.insert(picks.end(), rest.begin(), rest.end());
      break;
    }
    case MixCategory::PrefAgg: {
      const unsigned quarter = std::max(1U, num_cores / 4);
      picks = draw(prefetch_friendly_names(), quarter, rng);
      auto unfri = draw(prefetch_unfriendly_names(), quarter, rng);
      picks.insert(picks.end(), unfri.begin(), unfri.end());
      auto rest = draw_non_agg(num_cores - 2 * quarter, rng);
      picks.insert(picks.end(), rest.begin(), rest.end());
      break;
    }
    case MixCategory::PrefUnfri: {
      picks = draw(prefetch_unfriendly_names(), half, rng);
      auto rest = draw_non_agg(num_cores - half, rng);
      picks.insert(picks.end(), rest.begin(), rest.end());
      break;
    }
    case MixCategory::PrefNoAgg: {
      picks = draw_non_agg(num_cores, rng);
      break;
    }
  }
  return picks;
}

}  // namespace

std::vector<WorkloadMix> make_mixes(MixCategory category, unsigned count, unsigned num_cores,
                                    std::uint64_t seed) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(category) << 32));
  std::vector<WorkloadMix> mixes;
  mixes.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    WorkloadMix mix;
    mix.category = category;
    mix.name = std::string(to_string(category)) + "_" + (i < 10 ? "0" : "") + std::to_string(i);
    mix.benchmarks = compose(category, num_cores, rng);
    mixes.push_back(std::move(mix));
  }
  return mixes;
}

std::vector<WorkloadMix> paper_workloads(unsigned num_cores, std::uint64_t seed,
                                         unsigned per_category) {
  std::vector<WorkloadMix> all;
  for (const MixCategory c : {MixCategory::PrefFri, MixCategory::PrefAgg, MixCategory::PrefUnfri,
                              MixCategory::PrefNoAgg}) {
    auto part = make_mixes(c, per_category, num_cores, seed);
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return all;
}

void attach_mix(sim::MulticoreSystem& system, const WorkloadMix& mix, std::uint64_t seed) {
  if (mix.benchmarks.size() != system.num_cores())
    throw std::invalid_argument("mix size does not match core count");
  for (CoreId c = 0; c < system.num_cores(); ++c) {
    system.set_op_source(
        c, make_op_source(mix.benchmarks[c], system.config(), c, seed + 0x1000ULL * c));
  }
}

}  // namespace cmm::workloads
