#include "workloads/benchmark_specs.hpp"

#include <stdexcept>

namespace cmm::workloads {

namespace {

using Kind = PatternSpec::Kind;

PatternSpec stream(double ws_llc, std::uint64_t element = 8) {
  PatternSpec p;
  p.kind = Kind::Stream;
  p.ws_multiple = ws_llc;
  p.anchor = WsAnchor::Llc;
  p.element = element;
  return p;
}

PatternSpec strided(double ws_llc, std::uint64_t stride) {
  PatternSpec p;
  p.kind = Kind::Strided;
  p.ws_multiple = ws_llc;
  p.anchor = WsAnchor::Llc;
  p.stride_bytes = stride;
  return p;
}

PatternSpec random_over(double ws, WsAnchor anchor, unsigned stride_lines = 1) {
  PatternSpec p;
  p.kind = Kind::Random;
  p.ws_multiple = ws;
  p.anchor = anchor;
  p.random_stride_lines = stride_lines;
  return p;
}

PatternSpec burst(double ws_llc, unsigned bmin, unsigned bmax) {
  PatternSpec p;
  p.kind = Kind::BurstRandom;
  p.ws_multiple = ws_llc;
  p.anchor = WsAnchor::Llc;
  p.burst_min = bmin;
  p.burst_max = bmax;
  return p;
}

PatternSpec chase(double ws, WsAnchor anchor, unsigned lines_per_node = 1,
                  unsigned node_stride_lines = 0) {
  PatternSpec p;
  p.kind = Kind::Chase;
  p.ws_multiple = ws;
  p.anchor = anchor;
  p.lines_per_node = lines_per_node;
  p.node_stride_lines = node_stride_lines;
  return p;
}

PatternSpec weighted(PatternSpec p, double w) {
  p.weight = w;
  return p;
}

std::vector<BenchmarkSpec> build_suite() {
  std::vector<BenchmarkSpec> s;

  auto add = [&s](BenchmarkSpec spec) { s.push_back(std::move(spec)); };

  // ---- Prefetch friendly (and aggressive): large sequential/strided
  // working sets far beyond the LLC; the streamer hides DRAM latency.
  {
    BenchmarkSpec b;
    b.name = "libquantum";
    b.base_cpi = 0.45;
    b.mlp = 6.0;
    b.inst_per_mem = 4.0;
    b.store_fraction = 0.05;
    b.patterns = {stream(4.0, 8)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "bwaves";
    b.base_cpi = 0.5;
    b.mlp = 6.0;
    b.inst_per_mem = 3.5;
    b.patterns = {weighted(stream(4.0, 8), 0.8), weighted(strided(2.0, 256), 0.2)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "leslie3d";
    b.base_cpi = 0.5;
    b.mlp = 5.0;
    b.inst_per_mem = 3.5;
    b.patterns = {weighted(stream(3.0, 8), 0.5), weighted(stream(3.0, 16), 0.3),
                  weighted(strided(2.0, 128), 0.2)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "GemsFDTD";
    b.base_cpi = 0.55;
    b.mlp = 5.0;
    b.inst_per_mem = 3.5;
    b.patterns = {weighted(stream(4.0, 8), 0.7), weighted(strided(3.0, 128), 0.3)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "wrf";
    b.base_cpi = 0.5;
    b.mlp = 4.5;
    b.inst_per_mem = 2.4;
    b.patterns = {weighted(stream(2.0, 8), 0.88), weighted(random_over(2.0, WsAnchor::L2), 0.12)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "milc";
    b.base_cpi = 0.5;
    b.mlp = 4.5;
    b.inst_per_mem = 4.5;
    b.patterns = {weighted(stream(3.0, 16), 0.6), weighted(strided(3.0, 128), 0.4)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "lbm";
    b.base_cpi = 0.5;
    b.mlp = 6.0;
    b.inst_per_mem = 3.0;
    b.store_fraction = 0.35;
    b.patterns = {stream(4.0, 16)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "sphinx3";
    b.base_cpi = 0.45;
    b.mlp = 4.5;
    b.inst_per_mem = 2.1;
    b.patterns = {weighted(stream(2.0, 8), 0.9), weighted(random_over(3.0, WsAnchor::L2), 0.1)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "zeusmp";
    b.base_cpi = 0.55;
    b.mlp = 4.5;
    b.inst_per_mem = 4.5;
    b.patterns = {weighted(strided(2.5, 128), 0.7), weighted(stream(2.0, 8), 0.3)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = true;
    add(b);
  }

  // ---- Prefetch unfriendly (aggressive, not friendly): the paper's
  // "Rand Access" micro-benchmark and variants. Short sequential bursts
  // at random locations train the streamer, then abandon the page: many
  // prefetches, almost all useless.
  {
    BenchmarkSpec b;
    b.name = "rand_access";
    b.base_cpi = 0.4;
    b.mlp = 5.0;
    b.inst_per_mem = 3.0;
    b.patterns = {burst(8.0, 3, 6)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = false;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "rand_access_b";
    b.base_cpi = 0.45;
    b.mlp = 5.0;
    b.inst_per_mem = 3.5;
    b.patterns = {burst(6.0, 2, 4)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = false;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "scatter_gather";
    b.base_cpi = 0.45;
    b.mlp = 4.5;
    b.inst_per_mem = 3.5;
    b.patterns = {weighted(burst(6.0, 3, 5), 0.7), weighted(random_over(4.0, WsAnchor::Llc), 0.3)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = false;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "hash_probe";
    b.base_cpi = 0.4;
    b.mlp = 4.5;
    b.inst_per_mem = 3.0;
    b.patterns = {burst(8.0, 2, 5)};
    b.expect_prefetch_aggressive = true;
    b.expect_prefetch_friendly = false;
    add(b);
  }

  // ---- Non prefetch aggressive, LLC sensitive: pointer-heavy working
  // sets comparable to the LLC; performance tracks allocated ways.
  {
    BenchmarkSpec b;
    b.name = "omnetpp";
    b.base_cpi = 0.6;
    b.mlp = 1.6;
    b.inst_per_mem = 5.0;
    // Sparse random with reuse: adjacent-line prefetches land on holes
    // (pure pollution) and LRU degrades gracefully with allocated ways.
    b.patterns = {random_over(0.45, WsAnchor::Llc, 2)};
    b.expect_llc_sensitive = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "xalancbmk";
    b.base_cpi = 0.6;
    b.mlp = 1.8;
    b.inst_per_mem = 6.0;
    b.patterns = {random_over(0.35, WsAnchor::Llc)};
    b.expect_llc_sensitive = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "mcf";
    b.base_cpi = 0.65;
    b.mlp = 2.2;
    b.inst_per_mem = 4.0;
    b.patterns = {weighted(random_over(0.35, WsAnchor::Llc), 0.7),
                  weighted(chase(0.15, WsAnchor::Llc, /*lines_per_node=*/2), 0.3)};
    b.expect_llc_sensitive = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "astar";
    b.base_cpi = 0.6;
    b.mlp = 1.5;
    b.inst_per_mem = 7.0;
    b.patterns = {random_over(0.35, WsAnchor::Llc)};
    b.expect_llc_sensitive = true;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "soplex";
    b.base_cpi = 0.55;
    b.mlp = 2.5;
    b.inst_per_mem = 5.0;
    b.patterns = {weighted(random_over(0.35, WsAnchor::Llc), 0.8),
                  weighted(stream(0.05, 8), 0.2)};
    b.expect_llc_sensitive = true;
    add(b);
  }

  // ---- Non prefetch aggressive, compute bound: small working sets.
  {
    BenchmarkSpec b;
    b.name = "povray";
    b.base_cpi = 0.35;
    b.mlp = 3.0;
    b.inst_per_mem = 10.0;
    b.patterns = {random_over(0.5, WsAnchor::L2)};
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "namd";
    b.base_cpi = 0.4;
    b.mlp = 4.0;
    b.inst_per_mem = 8.0;
    // Streams within an L2-resident set: generates prefetch requests
    // with high L2 locality — the case the front-end's L2-PMR filter
    // (M-5) exists to exclude.
    b.patterns = {stream(0.9, 8)};
    b.patterns.front().anchor = WsAnchor::L2;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "gobmk";
    b.base_cpi = 0.45;
    b.mlp = 2.5;
    b.inst_per_mem = 9.0;
    b.patterns = {random_over(2.0, WsAnchor::L1)};
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "h264ref";
    b.base_cpi = 0.4;
    b.mlp = 3.5;
    b.inst_per_mem = 7.0;
    b.patterns = {weighted(strided(0.5, 64), 0.6), weighted(random_over(0.4, WsAnchor::L2), 0.4)};
    b.patterns.front().anchor = WsAnchor::L2;
    add(b);
  }
  {
    BenchmarkSpec b;
    b.name = "calculix";
    b.base_cpi = 0.3;
    b.mlp = 3.0;
    b.inst_per_mem = 15.0;
    b.patterns = {random_over(1.0, WsAnchor::L1)};
    add(b);
  }

  return s;
}

}  // namespace

const std::vector<BenchmarkSpec>& benchmark_suite() {
  static const std::vector<BenchmarkSpec> suite = build_suite();
  return suite;
}

const BenchmarkSpec& spec_by_name(const std::string& name) {
  for (const auto& spec : benchmark_suite()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("unknown benchmark: " + name);
}

std::vector<std::string> prefetch_friendly_names() {
  std::vector<std::string> names;
  for (const auto& s : benchmark_suite()) {
    if (s.expect_prefetch_aggressive && s.expect_prefetch_friendly) names.push_back(s.name);
  }
  return names;
}

std::vector<std::string> prefetch_unfriendly_names() {
  std::vector<std::string> names;
  for (const auto& s : benchmark_suite()) {
    if (s.expect_prefetch_aggressive && !s.expect_prefetch_friendly) names.push_back(s.name);
  }
  return names;
}

std::vector<std::string> non_aggressive_names() {
  std::vector<std::string> names;
  for (const auto& s : benchmark_suite()) {
    if (!s.expect_prefetch_aggressive) names.push_back(s.name);
  }
  return names;
}

std::vector<std::string> llc_sensitive_names() {
  std::vector<std::string> names;
  for (const auto& s : benchmark_suite()) {
    if (s.expect_llc_sensitive) names.push_back(s.name);
  }
  return names;
}

SpecOpSource::SpecOpSource(const BenchmarkSpec& spec, const sim::MachineConfig& machine,
                           CoreId core, std::uint64_t seed)
    : name_(spec.name),
      traits_{spec.base_cpi, spec.mlp},
      inst_per_mem_(spec.inst_per_mem < 1.0 ? 1.0 : spec.inst_per_mem),
      store_fraction_(spec.store_fraction),
      stream_(make_address_stream(spec, machine, core, seed)),
      rng_(seed ^ 0xABCDEF0123456789ULL) {}

sim::Op SpecOpSource::produce() {
  sim::Op op;
  carry_ += inst_per_mem_;
  op.instructions = static_cast<std::uint32_t>(carry_);
  carry_ -= op.instructions;
  if (op.instructions == 0) op.instructions = 1;
  op.has_mem = true;
  op.mem = stream_->next();
  op.mem.is_store = rng_.next_bool(store_fraction_);
  return op;
}

sim::Op SpecOpSource::next() { return produce(); }

std::size_t SpecOpSource::next_batch(std::span<sim::Op> out) {
  for (auto& op : out) op = produce();
  return out.size();
}

void SpecOpSource::reset() {
  stream_->reset();
  carry_ = 0.0;
}

std::shared_ptr<sim::OpSource> make_op_source(const BenchmarkSpec& spec,
                                              const sim::MachineConfig& machine, CoreId core,
                                              std::uint64_t seed) {
  return std::make_shared<SpecOpSource>(spec, machine, core, seed);
}

std::shared_ptr<sim::OpSource> make_op_source(const std::string& benchmark,
                                              const sim::MachineConfig& machine, CoreId core,
                                              std::uint64_t seed) {
  return make_op_source(spec_by_name(benchmark), machine, core, seed);
}

}  // namespace cmm::workloads
