#include "workloads/address_stream.hpp"

#include <algorithm>

// The factory helpers that combine patterns live in patterns.cpp; this
// TU holds the generator implementations.

namespace cmm::workloads {

// ---------------------------------------------------------------- Stream

StreamPattern::StreamPattern(Addr base, std::uint64_t size, IpId ip, std::uint64_t element)
    : base_(base), size_(size), element_(element == 0 ? 8 : element), ip_(ip) {}

sim::MemRef StreamPattern::next() {
  const Addr addr = base_ + pos_;
  pos_ += element_;
  if (pos_ >= size_) pos_ = 0;
  return sim::MemRef{addr, ip_, false};
}

void StreamPattern::reset() { pos_ = 0; }

// --------------------------------------------------------------- Strided

StridedPattern::StridedPattern(Addr base, std::uint64_t size, std::uint64_t stride_bytes, IpId ip)
    : base_(base), size_(size), stride_(stride_bytes == 0 ? 64 : stride_bytes), ip_(ip) {}

sim::MemRef StridedPattern::next() {
  const Addr addr = base_ + pos_;
  pos_ += stride_;
  if (pos_ >= size_) pos_ %= stride_;  // restart with phase preserved
  return sim::MemRef{addr, ip_, false};
}

void StridedPattern::reset() { pos_ = 0; }

// ---------------------------------------------------------------- Random

RandomPattern::RandomPattern(Addr base, std::uint64_t size, IpId ip, Rng rng,
                             unsigned stride_lines)
    : base_(base),
      lines_(size / 64 ? size / 64 : 1),
      stride_lines_(stride_lines == 0 ? 1 : stride_lines),
      ip_(ip),
      rng_(rng),
      initial_rng_(rng) {}

sim::MemRef RandomPattern::next() {
  const Addr line = rng_.next_below(lines_) * stride_lines_;
  return sim::MemRef{base_ + line * 64, ip_, false};
}

void RandomPattern::reset() { rng_ = initial_rng_; }

// ----------------------------------------------------------- BurstRandom

BurstRandomPattern::BurstRandomPattern(Addr base, std::uint64_t size, IpId ip, Rng rng,
                                       unsigned burst_min, unsigned burst_max)
    : base_(base),
      lines_(size / 64 ? size / 64 : 1),
      ip_(ip),
      rng_(rng),
      initial_rng_(rng),
      burst_min_(burst_min == 0 ? 1 : burst_min),
      burst_max_(burst_max < burst_min_ ? burst_min_ : burst_max) {}

sim::MemRef BurstRandomPattern::next() {
  if (remaining_ == 0) {
    cur_line_ = rng_.next_below(lines_);
    remaining_ =
        burst_min_ + static_cast<unsigned>(rng_.next_below(burst_max_ - burst_min_ + 1));
  }
  const Addr addr = base_ + (cur_line_ % lines_) * 64;
  ++cur_line_;
  --remaining_;
  return sim::MemRef{addr, ip_, false};
}

void BurstRandomPattern::reset() {
  rng_ = initial_rng_;
  cur_line_ = 0;
  remaining_ = 0;
}

// ----------------------------------------------------------------- Chase

ChasePattern::ChasePattern(Addr base, std::uint64_t size, IpId ip, Rng rng,
                           unsigned lines_per_node, unsigned node_stride_lines)
    : base_(base),
      ip_(ip),
      lines_per_node_(lines_per_node == 0 ? 1 : lines_per_node),
      node_stride_lines_(std::max(node_stride_lines, lines_per_node_)) {
  // Sattolo-style single cycle through all nodes, so the chase touches
  // the whole working set before repeating.
  const std::uint64_t node_bytes = 64ULL * lines_per_node_;
  auto nodes = static_cast<std::uint32_t>(size / node_bytes ? size / node_bytes : 1);
  // Cap the permutation table so pathological specs cannot allocate
  // gigabytes; 1M nodes = >=64 MB of simulated working set.
  if (nodes > (1U << 20)) nodes = 1U << 20;
  next_index_.resize(nodes);
  std::vector<std::uint32_t> perm(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) perm[i] = i;
  for (std::uint32_t i = nodes - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.next_below(i));
    std::swap(perm[i], perm[j]);
  }
  for (std::uint32_t i = 0; i < nodes; ++i)
    next_index_[perm[i]] = perm[(i + 1) % nodes];
}

sim::MemRef ChasePattern::next() {
  const Addr node_base = base_ + static_cast<Addr>(pos_) * 64 * node_stride_lines_;
  const Addr addr = node_base + static_cast<Addr>(line_in_node_) * 64;
  if (++line_in_node_ >= lines_per_node_) {
    line_in_node_ = 0;
    pos_ = next_index_[pos_];
  }
  return sim::MemRef{addr, ip_, false};
}

void ChasePattern::reset() {
  pos_ = 0;
  line_in_node_ = 0;
}

// --------------------------------------------------------------- Mixture

MixturePattern::MixturePattern(
    std::vector<std::pair<double, std::unique_ptr<AddressStream>>> parts, Rng rng)
    : parts_(std::move(parts)), total_weight_(0.0), rng_(rng), initial_rng_(rng) {
  for (const auto& [w, p] : parts_) total_weight_ += w;
}

sim::MemRef MixturePattern::next() {
  double draw = rng_.next_double() * total_weight_;
  for (auto& [w, p] : parts_) {
    draw -= w;
    if (draw <= 0.0) return p->next();
  }
  return parts_.back().second->next();
}

void MixturePattern::reset() {
  rng_ = initial_rng_;
  for (auto& [w, p] : parts_) p->reset();
}

}  // namespace cmm::workloads
