#include "workloads/stress_scenarios.hpp"

#include "sim/prefetcher_registry.hpp"

namespace cmm::workloads {

std::vector<sim::PrefetcherKind> EngineProfile::core_set() const {
  if (l2_engines.empty()) return {};  // default Intel set
  std::vector<sim::PrefetcherKind> set = l2_engines;
  set.push_back(sim::PrefetcherKind::DcuNextLine);
  set.push_back(sim::PrefetcherKind::DcuIpStride);
  return set;
}

const std::vector<EngineProfile>& engine_profiles() {
  static const std::vector<EngineProfile> profiles = {
      {"intel", {}},
      {"bop", {sim::PrefetcherKind::L2BestOffset}},
      {"spp", {sim::PrefetcherKind::L2Spp}},
      {"sandbox", {sim::PrefetcherKind::L2Sandbox}},
  };
  return profiles;
}

std::vector<StressScenario> make_stress_scenarios(unsigned num_cores) {
  std::vector<StressScenario> scenarios;
  const auto categories = {MixCategory::PrefFri, MixCategory::PrefAgg, MixCategory::PrefUnfri,
                           MixCategory::PrefNoAgg};
  for (const auto category : categories) {
    for (const auto& profile : engine_profiles()) {
      StressScenario s;
      s.category = category;
      s.profile = profile.name;
      s.name = std::string(to_string(category)) + "/" + profile.name;
      const auto set = profile.core_set();
      if (!set.empty()) s.core_prefetchers.assign(num_cores, set);
      scenarios.push_back(std::move(s));
    }
    // Heterogeneous assignment: rotate the profiles across cores so one
    // run mixes all four engine behaviours behind one shared LLC.
    StressScenario hetero;
    hetero.category = category;
    hetero.profile = "hetero";
    hetero.name = std::string(to_string(category)) + "/hetero";
    for (unsigned c = 0; c < num_cores; ++c) {
      auto set = engine_profiles()[c % engine_profiles().size()].core_set();
      if (set.empty()) set = sim::default_prefetcher_set();  // keep outer size == num_cores
      hetero.core_prefetchers.push_back(std::move(set));
    }
    scenarios.push_back(std::move(hetero));
  }
  return scenarios;
}

}  // namespace cmm::workloads
