#include "core/detector.hpp"

namespace cmm::core {

std::vector<CoreId> detect_aggressive(const std::vector<CoreMetrics>& metrics,
                                      const DetectorConfig& cfg) {
  return detect_aggressive(metrics, cfg, obs::Trace{});
}

std::vector<CoreId> detect_aggressive(const std::vector<CoreMetrics>& metrics,
                                      const DetectorConfig& cfg, obs::Trace trace) {
  std::vector<CoreId> agg;
  if (metrics.empty()) return agg;

  double mean_pga = 0.0;
  for (const auto& m : metrics) mean_pga += m.pga;
  mean_pga /= static_cast<double>(metrics.size());

  for (CoreId c = 0; c < metrics.size(); ++c) {
    const CoreMetrics& m = metrics[c];
    // Each step is written as >= so a NaN metric (0/0 from a zeroed or
    // quarantined sample) fails the comparison and the core is NOT
    // flagged aggressive — the negated `!(x < t)` form silently passed
    // NaN through all three steps.
    // Step 1: prefetch generation ability above the cross-core mean.
    const bool step1 = m.pga >= cfg.pga_floor && m.pga >= cfg.pga_rel_mean * mean_pga;
    // Step 2: drop high-L2-locality prefetching (hits absorbed by L2).
    const bool step2 = m.l2_pmr >= cfg.pmr_threshold;
    // Step 3: require real prefetch bandwidth pressure on the LLC.
    const bool step3 = m.l2_ptr >= cfg.ptr_threshold_per_sec;
    const bool is_agg = step1 && step2 && step3;
    if (trace.on()) {
      trace.emit(obs::DetectorVerdict{trace.now(), trace.epoch(), c, m.pga, m.l2_pmr,
                                      m.l2_ptr, is_agg});
    }
    if (is_agg) agg.push_back(c);
  }
  return agg;
}

std::vector<bool> classify_friendly(const std::vector<CoreId>& agg_set,
                                    const std::vector<double>& ipc_on,
                                    const std::vector<double>& ipc_off,
                                    const DetectorConfig& cfg) {
  std::vector<bool> friendly(agg_set.size(), false);
  for (std::size_t i = 0; i < agg_set.size(); ++i) {
    const CoreId c = agg_set[i];
    const double off = ipc_off.at(c);
    const double on = ipc_on.at(c);
    if (off <= 0.0) {
      friendly[i] = on > 0.0;  // ran only with prefetching: treat as friendly
      continue;
    }
    friendly[i] = (on / off) >= cfg.friendly_speedup;
  }
  return friendly;
}

}  // namespace cmm::core
