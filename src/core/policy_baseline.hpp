// Baseline: all prefetchers on, no partitioning, no profiling — the
// paper's reference configuration.
#pragma once

#include "core/policy.hpp"

namespace cmm::core {

class BaselinePolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "baseline"; }

  ResourceConfig initial_config(unsigned cores, unsigned ways) override {
    config_ = ResourceConfig::baseline(cores, ways);
    return config_;
  }

  void begin_profiling(const std::vector<sim::PmuCounters>&) override {}
  std::optional<ResourceConfig> next_sample() override { return std::nullopt; }
  void report_sample(const SampleStats&) override {}
  ResourceConfig final_config() override { return config_; }

 private:
  ResourceConfig config_;
};

}  // namespace cmm::core
