// Feedback-Directed Prefetching baseline (Srinath et al., HPCA 2007 —
// reference [20] of the paper). FDP is a *hardware* proposal: each
// core's prefetcher aggressiveness (streamer degree) is periodically
// adjusted from observed prefetch accuracy. It cannot be built on a
// stock Intel machine (no accuracy counters, no degree knob — exactly
// the gap the paper's Sec. I points out), but the simulator exposes
// both, so the library includes it as a microarchitectural comparison
// point for the software-only CMM mechanisms.
//
// Simplification vs the original: the original also folds in lateness
// and pollution feedback; this model uses accuracy alone, which is the
// dominant term for the degree decision.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::core {

class FdpController {
 public:
  struct Options {
    Cycle interval = 100'000;   // adjustment period
    double high_accuracy = 0.75;  // above: step aggressiveness up
    double low_accuracy = 0.40;   // below: step it down
  };

  explicit FdpController(sim::MulticoreSystem& system);
  FdpController(sim::MulticoreSystem& system, const Options& opts);

  /// Advance the machine by `cycles`, adjusting each core's streamer
  /// degree once per interval.
  void run(Cycle cycles);

  /// Current degree ladder position of a core.
  unsigned degree(CoreId core) const;

  /// Accuracy observed for `core` in the last completed interval.
  double last_accuracy(CoreId core) const { return last_accuracy_.at(core); }

  /// The degree ladder (the original uses 5 aggressiveness levels).
  static const std::vector<unsigned>& ladder();

 private:
  struct L2PrefSnapshot {
    std::uint64_t used = 0;
    std::uint64_t evicted_unused = 0;
  };

  void adjust();

  sim::MulticoreSystem& system_;
  Options opts_;
  std::vector<unsigned> ladder_pos_;
  std::vector<L2PrefSnapshot> snapshots_;
  std::vector<double> last_accuracy_;
  Cycle until_next_ = 0;
};

}  // namespace cmm::core
