// Coordinated multi-resource management (paper Sec. III-B3): cache
// partitioning first, then group-level prefetch throttling of the
// prefetch-*unfriendly* cores inside the partition. Three partition
// options (paper Fig. 6):
//
//   CMM-a: whole Agg set -> one small partition
//   CMM-b: only prefetch-friendly cores -> small partition
//          (unfriendly cores keep the full cache but get throttled)
//   CMM-c: friendly -> partition 1, unfriendly -> partition 2
//
// With `bp_enabled` ("cmm_bp") a third axis joins the search: after the
// PT x CP decision is fixed, a short coordinate-descent pass tries
// MBA-style per-core memory-bandwidth throttle levels on the heaviest
// DRAM consumers (ranked by the ProbeOn interval's bytes/cycle) and
// keeps a level only when it improves the sampled objective over the
// PT+CP base — so BP can never lose to plain CMM on the sampled
// objective, by construction. The staged search costs
// 1 + bp_max_cores * bp_max_level extra sampling intervals, inside the
// driver's max_samples_per_epoch budget.
//
// Prefetch-friendly cores always keep their prefetchers ON — they live
// on prefetching, not on LLC space. Only unfriendly cores are throttle
// candidates, searched group-level by hm_ipc over sampling intervals
// *with the partition masks already applied* (the coordination).
//
// Fig. 6(d): an empty Agg set degenerates to the Dunn partitioner.
#pragma once

#include "core/policy.hpp"

namespace cmm::core {

enum class CmmVariant : std::uint8_t { A, B, C };

std::string_view to_string(CmmVariant v) noexcept;

class CmmPolicy final : public Policy {
 public:
  struct Options {
    DetectorConfig detector{};
    CmmVariant variant = CmmVariant::A;
    unsigned max_exhaustive = 3;
    unsigned max_groups = 3;
    unsigned dunn_k_min = 2;
    unsigned dunn_k_max = 4;
    double partition_scale = 1.5;  // ways per partitioned core
    SampleObjective objective = SampleObjective::HmIpc;

    // ---- BP axis (memory-bandwidth regulation) ----
    bool bp_enabled = false;   // off: bit-identical to plain CMM
    unsigned bp_max_level = 3; // deepest throttle level tried (<= MBA ladder)
    unsigned bp_max_cores = 2; // candidates searched (heaviest DRAM users)
  };

  CmmPolicy() = default;
  explicit CmmPolicy(const Options& opts) : opts_(opts) {}

  std::string_view name() const noexcept override {
    if (opts_.bp_enabled) return "cmm_bp";
    switch (opts_.variant) {
      case CmmVariant::A: return "cmm_a";
      case CmmVariant::B: return "cmm_b";
      case CmmVariant::C: return "cmm_c";
    }
    return "cmm";
  }

  ResourceConfig initial_config(unsigned cores, unsigned ways) override;
  void begin_profiling(const std::vector<sim::PmuCounters>& epoch_delta) override;
  std::optional<ResourceConfig> next_sample() override;
  void report_sample(const SampleStats& stats) override;
  ResourceConfig final_config() override;

  /// Degradation ladder (robustness): with the prefetch MSR gone the
  /// probe/throttle machinery is pointless — fall back to pure cache
  /// partitioning (Dunn, as Fig. 6(d)); with CAT gone keep throttling
  /// but pin every mask to the full cache (PT-only).
  void notify_degraded(bool prefetch_available, bool cat_available) override {
    prefetch_available_ = prefetch_available;
    cat_available_ = cat_available;
  }

  /// MBA gone: skip the BP pass (the driver would drop the levels
  /// anyway; skipping saves the wasted sampling intervals).
  void notify_degraded(bool prefetch_available, bool cat_available,
                       bool mba_available) override {
    mba_available_ = mba_available;
    notify_degraded(prefetch_available, cat_available);
  }

  /// Live migration swapped tenants mid-epoch: probe measurements and
  /// partially searched combos mix two different programs on the moved
  /// cores, so abort the in-flight profiling pass — final_config()
  /// falls back to the best configuration measured so far, and the
  /// next begin_profiling() re-converges from post-migration deltas.
  void notify_membership_change(const std::vector<CoreId>& cores) override {
    (void)cores;
    if (phase_ != Phase::Done) phase_ = Phase::Done;
  }

  const std::vector<CoreId>& agg_set() const noexcept { return agg_set_; }
  const std::vector<CoreId>& friendly_cores() const noexcept { return friendly_cores_; }
  const std::vector<CoreId>& unfriendly_cores() const noexcept { return unfriendly_cores_; }
  /// Partition masks chosen this round (introspection / fig06 bench).
  const std::vector<WayMask>& partition_masks() const noexcept { return partition_masks_; }

  /// BP levels accepted for the next execution epoch (empty or
  /// all-zero when the pass found no winning throttle).
  const std::vector<std::uint8_t>& bp_levels() const noexcept { return bp_levels_; }

 private:
  enum class Phase : std::uint8_t { ProbeOn, ProbeOff, ThrottleSearch, BpSearch, Done };

  std::vector<WayMask> build_partition_masks() const;
  ResourceConfig throttle_config(const std::vector<bool>& combo) const;
  /// Best PT x CP configuration seen this profiling epoch (the one
  /// final_config() would return today).
  ResourceConfig best_ptcp_config() const;
  /// Enter BpSearch on top of `base`, or Done when BP is off / MBA is
  /// dead / no core moved DRAM bytes during the ProbeOn interval.
  void enter_bp_search(ResourceConfig base);

  Options opts_;
  unsigned cores_ = 0;
  unsigned ways_ = 0;
  bool prefetch_available_ = true;
  bool cat_available_ = true;
  bool mba_available_ = true;

  Phase phase_ = Phase::Done;
  std::vector<CoreId> agg_set_;
  std::vector<CoreId> friendly_cores_;
  std::vector<CoreId> unfriendly_cores_;
  std::vector<double> ipc_on_;
  std::vector<double> ipc_off_;
  std::vector<CoreMetrics> probe_metrics_;
  std::vector<double> epoch_stalls_;  // for the Fig. 6(d) Dunn fallback

  std::vector<WayMask> partition_masks_;
  std::vector<unsigned> groups_;  // group per unfriendly core
  unsigned num_groups_ = 0;
  std::vector<std::vector<bool>> combos_;
  std::size_t next_combo_ = 0;
  std::vector<double> combo_hm_;

  // ---- BP coordinate-descent state ----
  std::vector<double> probe_bw_;        // per-core DRAM bytes/cycle (ProbeOn)
  std::vector<CoreId> bp_candidates_;   // heaviest consumers, descending
  std::vector<std::uint8_t> bp_levels_; // accepted levels, per core
  ResourceConfig bp_base_;              // PT+CP config the levels ride on
  std::size_t bp_cand_idx_ = 0;
  std::uint8_t bp_trial_level_ = 0;     // 0 = base (no-BP) reference sample
  double bp_best_obj_ = 0.0;
  bool bp_base_sampled_ = false;

  ResourceConfig current_;
};

}  // namespace cmm::core
