#include "core/policy_cp.hpp"

#include <algorithm>

#include "core/metrics.hpp"

namespace cmm::core {

std::vector<WayMask> masks_small_partition(const std::vector<CoreId>& agg, unsigned cores,
                                           unsigned ways, double scale) {
  std::vector<WayMask> masks(cores, full_mask(ways));
  if (agg.empty()) return masks;
  const unsigned part = partition_ways_for(static_cast<unsigned>(agg.size()), ways, scale);
  const WayMask small = contiguous_mask(0, part);
  for (const CoreId c : agg) masks.at(c) = small;
  return masks;
}

std::vector<WayMask> masks_two_partitions(const std::vector<CoreId>& first,
                                          const std::vector<CoreId>& second, unsigned cores,
                                          unsigned ways, double scale) {
  std::vector<WayMask> masks(cores, full_mask(ways));
  unsigned w1 = first.empty()
                    ? 0
                    : partition_ways_for(static_cast<unsigned>(first.size()), ways, scale);
  unsigned w2 = second.empty()
                    ? 0
                    : partition_ways_for(static_cast<unsigned>(second.size()), ways, scale);
  // Keep both partitions inside the cache with at least one way left
  // over; shrink the larger request first when they do not fit.
  while (w1 + w2 >= ways && (w1 > 1 || w2 > 1)) {
    if (w1 >= w2 && w1 > 1) {
      --w1;
    } else if (w2 > 1) {
      --w2;
    }
  }
  if (w1 > 0) {
    const WayMask m1 = contiguous_mask(0, w1);
    for (const CoreId c : first) masks.at(c) = m1;
  }
  if (w2 > 0) {
    const WayMask m2 = contiguous_mask(w1, w2);
    for (const CoreId c : second) masks.at(c) = m2;
  }
  return masks;
}

ResourceConfig CpPolicy::initial_config(unsigned cores, unsigned ways) {
  cores_ = cores;
  ways_ = ways;
  current_ = ResourceConfig::baseline(cores, ways);
  return current_;
}

void CpPolicy::begin_profiling(const std::vector<sim::PmuCounters>&) {
  probe_index_ = 0;
  agg_set_.clear();
  friendly_.clear();
  ipc_on_.assign(cores_, 0.0);
  ipc_off_.assign(cores_, 0.0);
}

std::optional<ResourceConfig> CpPolicy::next_sample() {
  // Probes toggle only the prefetchers; the current partition stays in
  // place (resetting the masks for the probe would let aggressive cores
  // flush the LLC state the partition has been protecting).
  if (probe_index_ == 0) {
    // Probe 1: prefetchers all on.
    ResourceConfig cfg = current_;
    cfg.prefetch_on.assign(cores_, true);
    return cfg;
  }
  if (probe_index_ == 1 && !agg_set_.empty()) {
    // Probe 2: Agg prefetchers off (usefulness detection).
    ResourceConfig cfg = current_;
    cfg.prefetch_on.assign(cores_, true);
    for (const CoreId c : agg_set_) cfg.prefetch_on[c] = false;
    return cfg;
  }
  return std::nullopt;
}

void CpPolicy::report_sample(const SampleStats& stats) {
  if (probe_index_ == 0) {
    const auto metrics = compute_all_metrics(stats.per_core, opts_.detector.freq_ghz);
    agg_set_ = detect_aggressive(metrics, opts_.detector, trace_);
    for (CoreId c = 0; c < cores_; ++c) ipc_on_[c] = stats.per_core[c].ipc();
    probe_index_ = agg_set_.empty() ? 2 : 1;
    return;
  }
  if (probe_index_ == 1) {
    for (CoreId c = 0; c < cores_; ++c) ipc_off_[c] = stats.per_core[c].ipc();
    friendly_ = classify_friendly(agg_set_, ipc_on_, ipc_off_, opts_.detector);
    probe_index_ = 2;
  }
}

ResourceConfig CpPolicy::final_config() {
  ResourceConfig cfg = ResourceConfig::baseline(cores_, ways_);  // prefetchers stay on
  if (agg_set_.empty()) {
    current_ = cfg;
    return current_;
  }
  if (opts_.variant == CpVariant::PrefCp) {
    cfg.way_masks = masks_small_partition(agg_set_, cores_, ways_, opts_.partition_scale);
  } else {
    std::vector<CoreId> fri;
    std::vector<CoreId> unfri;
    for (std::size_t i = 0; i < agg_set_.size(); ++i) {
      (friendly_.size() > i && friendly_[i] ? fri : unfri).push_back(agg_set_[i]);
    }
    cfg.way_masks = masks_two_partitions(fri, unfri, cores_, ways_, opts_.partition_scale);
  }
  current_ = cfg;
  return current_;
}

}  // namespace cmm::core
