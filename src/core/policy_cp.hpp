// Cache-partitioning back-ends (paper Sec. III-B2). Two plans:
//
//   Pref-CP : put the whole Agg set into one small partition
//             (round(1.5 x |Agg|) ways); neutral cores keep the full
//             cache (overlapping CAT masks). Prefetchers stay on.
//   Pref-CP2: split the Agg set into prefetch-friendly and unfriendly
//             subsets and give each its own small partition.
//
// CP needs only the two probe intervals (all-on, Agg-off) to detect the
// Agg set and prefetch usefulness.
#pragma once

#include "core/policy.hpp"

namespace cmm::core {

enum class CpVariant : std::uint8_t { PrefCp, PrefCp2 };

class CpPolicy final : public Policy {
 public:
  struct Options {
    DetectorConfig detector{};
    CpVariant variant = CpVariant::PrefCp;
    double partition_scale = 1.5;  // ways per Agg core (paper rule)
  };

  CpPolicy() = default;
  explicit CpPolicy(const Options& opts) : opts_(opts) {}

  std::string_view name() const noexcept override {
    return opts_.variant == CpVariant::PrefCp ? "pref_cp" : "pref_cp2";
  }

  ResourceConfig initial_config(unsigned cores, unsigned ways) override;
  void begin_profiling(const std::vector<sim::PmuCounters>& epoch_delta) override;
  std::optional<ResourceConfig> next_sample() override;
  void report_sample(const SampleStats& stats) override;
  ResourceConfig final_config() override;

  const std::vector<CoreId>& agg_set() const noexcept { return agg_set_; }
  const std::vector<bool>& friendly_flags() const noexcept { return friendly_; }

 private:
  Options opts_;
  unsigned cores_ = 0;
  unsigned ways_ = 0;

  unsigned probe_index_ = 0;  // 0: all-on issued next; 1: agg-off; 2: done
  std::vector<CoreId> agg_set_;
  std::vector<bool> friendly_;
  std::vector<double> ipc_on_;
  std::vector<double> ipc_off_;

  ResourceConfig current_;
};

/// Mask construction shared with the CMM policy: `agg` cores get a
/// small low-end partition, everyone else the full mask.
std::vector<WayMask> masks_small_partition(const std::vector<CoreId>& agg, unsigned cores,
                                           unsigned ways, double scale = 1.5);

/// Two disjoint small partitions at the low end: `first` cores in ways
/// [0, w1), `second` cores in [w1, w1+w2); everyone else full mask.
std::vector<WayMask> masks_two_partitions(const std::vector<CoreId>& first,
                                          const std::vector<CoreId>& second, unsigned cores,
                                          unsigned ways, double scale = 1.5);

}  // namespace cmm::core
