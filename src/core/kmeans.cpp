#include "core/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace cmm::core {

KMeansResult kmeans_1d(const std::vector<double>& values, unsigned k, unsigned max_iters) {
  KMeansResult r;
  if (values.empty()) return r;
  k = std::max(1U, std::min<unsigned>(k, static_cast<unsigned>(values.size())));
  r.k = k;
  r.assignment.assign(values.size(), 0);
  r.centroids.assign(k, 0.0);

  // Quantile initialisation over the sorted values: deterministic and
  // robust to skewed distributions.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (unsigned c = 0; c < k; ++c) {
    const std::size_t idx = (sorted.size() - 1) * (2 * c + 1) / (2 * k);
    r.centroids[c] = sorted[idx];
  }

  // Heavily tied values make quantile seeds collide, and duplicate
  // seeds break Lloyd outright: the first duplicate wins every
  // assignment, the rest converge empty with stale centroids, and
  // distinct value levels are never separated. When (and only when)
  // seeds collide, reseed from the distinct values — quantile indices
  // over `uniq` are provably distinct once uniq.size() > k, and with
  // uniq.size() <= k the distinct values themselves are the exact
  // clustering. Seed-unique inputs are untouched.
  if (std::adjacent_find(r.centroids.begin(), r.centroids.end()) != r.centroids.end()) {
    std::vector<double> uniq = sorted;
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
    if (uniq.size() <= k) {
      k = static_cast<unsigned>(uniq.size());
      r.k = k;
      r.centroids = uniq;
    } else {
      for (unsigned c = 0; c < k; ++c) {
        const std::size_t idx = (uniq.size() - 1) * (2 * c + 1) / (2 * k);
        r.centroids[c] = uniq[idx];
      }
    }
  }

  std::vector<double> sums(k);
  std::vector<std::size_t> counts(k);
  for (unsigned iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < values.size(); ++i) {
      unsigned best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (unsigned c = 0; c < k; ++c) {
        const double d = std::abs(values[i] - r.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (r.assignment[i] != best) {
        r.assignment[i] = best;
        changed = true;
      }
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      sums[r.assignment[i]] += values[i];
      ++counts[r.assignment[i]];
    }
    for (unsigned c = 0; c < k; ++c) {
      if (counts[c] > 0) r.centroids[c] = sums[c] / static_cast<double>(counts[c]);
    }
    if (!changed) break;
  }

  // Tied-value pathology: quantile initialisation seeds duplicate
  // centroids when values are heavily tied (e.g. one dominant PTR
  // level), and a cluster that converges empty keeps its stale seed
  // centroid forever. Collapse such clusters so callers never see
  // phantom groups — they would widen the throttle search and skew the
  // group-level PT split. A clustering with no empty clusters passes
  // through bit-identically.
  std::vector<std::size_t> occupancy(k, 0);
  for (const unsigned a : r.assignment) ++occupancy[a];
  if (std::any_of(occupancy.begin(), occupancy.end(),
                  [](std::size_t n) { return n == 0; })) {
    std::vector<unsigned> remap(k, 0);
    std::vector<double> kept_centroids;
    unsigned kept = 0;
    for (unsigned c = 0; c < k; ++c) {
      if (occupancy[c] == 0) continue;
      remap[c] = kept++;
      kept_centroids.push_back(r.centroids[c]);
    }
    for (auto& a : r.assignment) a = remap[a];
    r.centroids = std::move(kept_centroids);
    r.k = kept;
    k = kept;
  }

  // Relabel clusters so centroid order is ascending (stable contract
  // for callers that map "higher cluster" to "more resource").
  std::vector<unsigned> order(k);
  std::iota(order.begin(), order.end(), 0U);
  std::sort(order.begin(), order.end(),
            [&](unsigned a, unsigned b) { return r.centroids[a] < r.centroids[b]; });
  std::vector<unsigned> rank(k);
  for (unsigned pos = 0; pos < k; ++pos) rank[order[pos]] = pos;
  std::vector<double> new_centroids(k);
  for (unsigned c = 0; c < k; ++c) new_centroids[rank[c]] = r.centroids[c];
  r.centroids = std::move(new_centroids);
  for (auto& a : r.assignment) a = rank[a];
  return r;
}

double dunn_index(const std::vector<double>& values, const KMeansResult& clustering) {
  const unsigned k = clustering.k;
  if (k < 2 || values.size() != clustering.assignment.size()) return 0.0;

  std::vector<double> lo(k, std::numeric_limits<double>::infinity());
  std::vector<double> hi(k, -std::numeric_limits<double>::infinity());
  std::vector<bool> seen(k, false);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const unsigned c = clustering.assignment[i];
    lo[c] = std::min(lo[c], values[i]);
    hi[c] = std::max(hi[c], values[i]);
    seen[c] = true;
  }

  double max_diameter = 0.0;
  for (unsigned c = 0; c < k; ++c) {
    if (seen[c]) max_diameter = std::max(max_diameter, hi[c] - lo[c]);
  }

  // 1-D clusters from k-means are interval-separated; min inter-cluster
  // distance is the smallest gap between consecutive (occupied)
  // clusters ordered by centroid.
  double min_gap = std::numeric_limits<double>::infinity();
  int prev = -1;
  for (unsigned c = 0; c < k; ++c) {
    if (!seen[c]) continue;
    if (prev >= 0) {
      const double gap = lo[c] - hi[static_cast<unsigned>(prev)];
      min_gap = std::min(min_gap, std::max(gap, 0.0));
    }
    prev = static_cast<int>(c);
  }
  if (!std::isfinite(min_gap)) return 0.0;
  if (max_diameter == 0.0) return min_gap > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  return min_gap / max_diameter;
}

KMeansResult best_kmeans_by_dunn(const std::vector<double>& values, unsigned k_min,
                                 unsigned k_max) {
  KMeansResult best = kmeans_1d(values, k_min);
  double best_score = dunn_index(values, best);
  for (unsigned k = k_min + 1; k <= k_max; ++k) {
    KMeansResult cand = kmeans_1d(values, k);
    const double score = dunn_index(values, cand);
    if (score > best_score) {
      best_score = score;
      best = std::move(cand);
    }
  }
  return best;
}

}  // namespace cmm::core
