#include "core/metrics.hpp"

#include <algorithm>

namespace cmm::core {

namespace {
/// The zero-denominator contract (see metrics.hpp): x/0 and 0/0 are
/// 0.0, never NaN/Inf. Negative denominators cannot occur (counters
/// are unsigned) but fall into the same guard.
double ratio(double num, double den) noexcept { return den > 0.0 ? num / den : 0.0; }
}  // namespace

CoreMetrics compute_metrics(const sim::PmuCounters& d, double freq_ghz) {
  CoreMetrics m;
  const auto pref_miss = static_cast<double>(d.l2_pref_miss);
  const auto dm_miss = static_cast<double>(d.l2_dm_miss);
  const auto pref_req = static_cast<double>(d.l2_pref_req);
  const auto dm_req = static_cast<double>(d.l2_dm_req);
  const double seconds = ratio(static_cast<double>(d.cycles), freq_ghz * 1e9);

  m.l2_llc_traffic = pref_miss + dm_miss;
  m.l2_pref_miss_frac = ratio(pref_miss, m.l2_llc_traffic);
  m.l2_ptr = seconds > 0.0 ? pref_miss / seconds : 0.0;
  // A core whose L1 prefetchers absorb all demand can reach L2 with
  // prefetch requests only; its generation ability is then "all
  // prefetch", not zero. The ratio saturates at 16 so one such core
  // cannot blow up the cross-core mean the detector compares against.
  constexpr double kPgaCap = 16.0;
  m.pga = dm_req > 0.0 ? std::min(pref_req / dm_req, kPgaCap) : (pref_req > 0.0 ? kPgaCap : 0.0);
  m.l2_pmr = ratio(pref_miss, pref_req);
  m.l2_ppm = ratio(pref_req, dm_miss);

  const double total_bytes =
      static_cast<double>(d.dram_demand_bytes) + static_cast<double>(d.dram_prefetch_bytes);
  const double pref_bytes_approx = total_bytes - static_cast<double>(d.l3_load_miss) * 64.0;
  m.llc_pt = seconds > 0.0 ? (pref_bytes_approx > 0.0 ? pref_bytes_approx / seconds : 0.0) : 0.0;

  m.ipc = d.ipc();
  m.stalls_l2_pending = static_cast<double>(d.stalls_l2_pending);
  return m;
}

std::vector<CoreMetrics> compute_all_metrics(const std::vector<sim::PmuCounters>& deltas,
                                             double freq_ghz) {
  std::vector<CoreMetrics> out;
  out.reserve(deltas.size());
  for (const auto& d : deltas) out.push_back(compute_metrics(d, freq_ghz));
  return out;
}

double hm_ipc(const std::vector<sim::PmuCounters>& deltas) {
  if (deltas.empty()) return 0.0;
  double denom = 0.0;
  for (const auto& d : deltas) {
    const double ipc = d.ipc();
    if (ipc <= 0.0) return 0.0;  // a stalled core makes the HM zero
    denom += 1.0 / ipc;
  }
  return static_cast<double>(deltas.size()) / denom;
}

}  // namespace cmm::core
