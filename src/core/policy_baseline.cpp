#include "core/policy_baseline.hpp"

// Header-only policy; TU anchors the target.
