#include "core/health.hpp"

#include <sstream>

namespace cmm::core {

std::string_view to_string(HealthEventKind kind) noexcept {
  switch (kind) {
    case HealthEventKind::HwRetry: return "hw_retry";
    case HealthEventKind::PmuWrapSaturated: return "pmu_wrap_saturated";
    case HealthEventKind::PmuGarbageDetected: return "pmu_garbage_detected";
    case HealthEventKind::PmuSnapshotReread: return "pmu_snapshot_reread";
    case HealthEventKind::SampleQuarantined: return "sample_quarantined";
    case HealthEventKind::SampleDiscarded: return "sample_discarded";
    case HealthEventKind::PmuReadFailed: return "pmu_read_failed";
    case HealthEventKind::SampleCapTruncated: return "sample_cap_truncated";
    case HealthEventKind::CorePrefetchOffline: return "core_prefetch_offline";
    case HealthEventKind::CpOnlyFallback: return "cp_only_fallback";
    case HealthEventKind::PtOnlyFallback: return "pt_only_fallback";
    case HealthEventKind::ManagementLost: return "management_lost";
    case HealthEventKind::WatchdogRestore: return "watchdog_restore";
    case HealthEventKind::RecoveryProbe: return "recovery_probe";
    case HealthEventKind::CorePrefetchRestored: return "core_prefetch_restored";
    case HealthEventKind::CpOnlyRecovered: return "cp_only_recovered";
    case HealthEventKind::PtOnlyRecovered: return "pt_only_recovered";
    case HealthEventKind::TenantAttach: return "tenant_attach";
    case HealthEventKind::TenantDetach: return "tenant_detach";
    case HealthEventKind::TenantRejected: return "tenant_rejected";
    case HealthEventKind::TenantQueued: return "tenant_queued";
    case HealthEventKind::SloBreach: return "slo_breach";
    case HealthEventKind::MbaOffline: return "mba_offline";
    case HealthEventKind::MbaRestored: return "mba_restored";
  }
  return "unknown";
}

void HealthLog::set_capacity(std::size_t n) {
  capacity_ = n;
  if (capacity_ > 0) {
    while (events_.size() > capacity_) {
      events_.pop_front();
      ++dropped_;
    }
  }
}

std::string HealthLog::summary_json() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (std::size_t i = 0; i < kNumHealthEventKinds; ++i) {
    if (totals_[i] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << to_string(static_cast<HealthEventKind>(i)) << "\":" << totals_[i];
  }
  os << '}';
  return std::move(os).str();
}

}  // namespace cmm::core
