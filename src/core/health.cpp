#include "core/health.hpp"

#include <algorithm>
#include <array>
#include <sstream>

namespace cmm::core {

std::string_view to_string(HealthEventKind kind) noexcept {
  switch (kind) {
    case HealthEventKind::HwRetry: return "hw_retry";
    case HealthEventKind::PmuWrapSaturated: return "pmu_wrap_saturated";
    case HealthEventKind::PmuGarbageDetected: return "pmu_garbage_detected";
    case HealthEventKind::PmuSnapshotReread: return "pmu_snapshot_reread";
    case HealthEventKind::SampleQuarantined: return "sample_quarantined";
    case HealthEventKind::SampleDiscarded: return "sample_discarded";
    case HealthEventKind::PmuReadFailed: return "pmu_read_failed";
    case HealthEventKind::SampleCapTruncated: return "sample_cap_truncated";
    case HealthEventKind::CorePrefetchOffline: return "core_prefetch_offline";
    case HealthEventKind::CpOnlyFallback: return "cp_only_fallback";
    case HealthEventKind::PtOnlyFallback: return "pt_only_fallback";
    case HealthEventKind::ManagementLost: return "management_lost";
    case HealthEventKind::WatchdogRestore: return "watchdog_restore";
  }
  return "unknown";
}

std::size_t HealthLog::count(HealthEventKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const HealthEvent& e) { return e.kind == kind; }));
}

std::string HealthLog::summary_json() const {
  constexpr std::array kinds{
      HealthEventKind::HwRetry,           HealthEventKind::PmuWrapSaturated,
      HealthEventKind::PmuGarbageDetected, HealthEventKind::PmuSnapshotReread,
      HealthEventKind::SampleQuarantined,
      HealthEventKind::SampleDiscarded,   HealthEventKind::PmuReadFailed,
      HealthEventKind::SampleCapTruncated, HealthEventKind::CorePrefetchOffline,
      HealthEventKind::CpOnlyFallback,    HealthEventKind::PtOnlyFallback,
      HealthEventKind::ManagementLost,    HealthEventKind::WatchdogRestore,
  };
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto kind : kinds) {
    const std::size_t n = count(kind);
    if (n == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << to_string(kind) << "\":" << n;
  }
  os << '}';
  return std::move(os).str();
}

}  // namespace cmm::core
