// Detector-stress evaluation: run the adversarial scenario sweep
// (workloads/stress_scenarios.hpp) and score the CMM detector's
// Agg-set verdicts against the benchmark suite's ground-truth labels,
// accumulating a misclassification matrix. The matrix is a tracked
// artifact: the detector-stress test suite pins it as golden JSON and
// CI diffs the regenerated copy against the checked-in baseline, so
// any drift in how the Intel-tuned thresholds read the zoo engines is
// an explicit, reviewed change.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/detector.hpp"
#include "sim/machine_config.hpp"
#include "workloads/stress_scenarios.hpp"

namespace cmm::core {

/// Verdicts vs ground truth for one scenario. "Positive" = prefetch
/// aggressive: tp = labelled-aggressive cores the detector flagged,
/// fn = labelled-aggressive cores it missed, fp = non-aggressive cores
/// it flagged, tn = the rest.
struct StressOutcome {
  std::string scenario;  // "<category>/<profile>"
  std::string category;
  std::string profile;
  std::vector<std::string> benchmarks;  // per core
  std::vector<CoreId> flagged;          // detector Agg set
  std::vector<CoreId> expected;         // spec-labelled aggressive cores
  unsigned tp = 0, fn = 0, fp = 0, tn = 0;
};

/// Simulate one scenario (warmup, then a measured interval, as in the
/// Fig. 5 trace) and score the detector on the measured interval.
StressOutcome evaluate_stress_scenario(const workloads::StressScenario& scenario,
                                       const sim::MachineConfig& machine,
                                       const DetectorConfig& det, std::uint64_t seed,
                                       Cycle warmup_cycles, Cycle measure_cycles);

/// The full sweep of make_stress_scenarios(machine.num_cores).
std::vector<StressOutcome> run_stress_suite(const sim::MachineConfig& machine,
                                            const DetectorConfig& det, std::uint64_t seed,
                                            Cycle warmup_cycles, Cycle measure_cycles);

/// Canonical JSON rendering of the misclassification matrix (stable
/// key order and formatting — the string is golden-diffed verbatim).
std::string misclassification_json(const std::vector<StressOutcome>& outcomes);

}  // namespace cmm::core
