#include "core/policy_cmm.hpp"

#include <algorithm>

#include "core/metrics.hpp"
#include "core/policy_cp.hpp"
#include "core/policy_dunn.hpp"

namespace cmm::core {

std::string_view to_string(CmmVariant v) noexcept {
  switch (v) {
    case CmmVariant::A: return "cmm_a";
    case CmmVariant::B: return "cmm_b";
    case CmmVariant::C: return "cmm_c";
  }
  return "cmm";
}

ResourceConfig CmmPolicy::initial_config(unsigned cores, unsigned ways) {
  cores_ = cores;
  ways_ = ways;
  current_ = ResourceConfig::baseline(cores, ways);
  return current_;
}

void CmmPolicy::begin_profiling(const std::vector<sim::PmuCounters>& epoch_delta) {
  epoch_stalls_.clear();
  epoch_stalls_.reserve(epoch_delta.size());
  for (const auto& d : epoch_delta)
    epoch_stalls_.push_back(static_cast<double>(d.stalls_l2_pending));
  phase_ = Phase::ProbeOn;
  agg_set_.clear();
  friendly_cores_.clear();
  unfriendly_cores_.clear();
  ipc_on_.assign(cores_, 0.0);
  ipc_off_.assign(cores_, 0.0);
  probe_metrics_.clear();
  partition_masks_.assign(cores_, full_mask(ways_));
  groups_.clear();
  combos_.clear();
  combo_hm_.clear();
  next_combo_ = 0;
  num_groups_ = 0;
  probe_bw_.assign(cores_, 0.0);
  bp_candidates_.clear();
  bp_levels_.clear();
  bp_base_ = ResourceConfig{};
  bp_cand_idx_ = 0;
  bp_trial_level_ = 0;
  bp_best_obj_ = 0.0;
  bp_base_sampled_ = false;

  if (!prefetch_available_) {
    // CP-only rung of the degradation ladder: probes and throttle
    // search need a working prefetch MSR, so go straight to the Dunn
    // partitioner over the epoch's stall counts — or to full masks if
    // CAT is gone too (nothing left to manage).
    partition_masks_ = cat_available_ ? dunn_allocate(epoch_stalls_, cores_, ways_,
                                                      opts_.dunn_k_min, opts_.dunn_k_max)
                                      : std::vector<WayMask>(cores_, full_mask(ways_));
    phase_ = Phase::Done;
  }
}

std::vector<WayMask> CmmPolicy::build_partition_masks() const {
  // PT-only rung: CAT is gone, every partition collapses to the full
  // cache while prefetch throttling keeps working.
  if (!cat_available_) return std::vector<WayMask>(cores_, full_mask(ways_));
  switch (opts_.variant) {
    case CmmVariant::A:
      return masks_small_partition(agg_set_, cores_, ways_, opts_.partition_scale);
    case CmmVariant::B:
      return masks_small_partition(friendly_cores_, cores_, ways_, opts_.partition_scale);
    case CmmVariant::C:
      return masks_two_partitions(friendly_cores_, unfriendly_cores_, cores_, ways_,
                                  opts_.partition_scale);
  }
  return std::vector<WayMask>(cores_, full_mask(ways_));
}

ResourceConfig CmmPolicy::throttle_config(const std::vector<bool>& combo) const {
  ResourceConfig cfg;
  cfg.prefetch_on.assign(cores_, true);
  cfg.way_masks = partition_masks_;
  for (std::size_t i = 0; i < unfriendly_cores_.size(); ++i) {
    cfg.prefetch_on[unfriendly_cores_[i]] = combo.at(groups_[i]);
  }
  return cfg;
}

ResourceConfig CmmPolicy::best_ptcp_config() const {
  ResourceConfig cfg;
  cfg.prefetch_on.assign(cores_, true);
  cfg.way_masks = partition_masks_;
  if (!combo_hm_.empty() && !combos_.empty()) {
    const std::size_t measured = std::min(combo_hm_.size(), combos_.size());
    std::size_t best = 0;
    for (std::size_t k = 1; k < measured; ++k) {
      if (combo_hm_[k] > combo_hm_[best]) best = k;
    }
    cfg = throttle_config(combos_[best]);
  }
  return cfg;
}

void CmmPolicy::enter_bp_search(ResourceConfig base) {
  bp_candidates_.clear();
  if (opts_.bp_enabled && mba_available_ && opts_.bp_max_level > 0) {
    std::vector<CoreId> order(cores_);
    for (CoreId c = 0; c < cores_; ++c) order[c] = c;
    std::stable_sort(order.begin(), order.end(),
                     [&](CoreId a, CoreId b) { return probe_bw_[a] > probe_bw_[b]; });
    for (const CoreId c : order) {
      if (bp_candidates_.size() >= opts_.bp_max_cores) break;
      if (probe_bw_[c] > 0.0) bp_candidates_.push_back(c);
    }
  }
  if (bp_candidates_.empty()) {
    phase_ = Phase::Done;
    return;
  }
  bp_base_ = std::move(base);
  bp_levels_.assign(cores_, 0);
  bp_cand_idx_ = 0;
  bp_trial_level_ = 0;  // first BpSearch sample re-measures the base
  bp_best_obj_ = 0.0;
  bp_base_sampled_ = false;
  phase_ = Phase::BpSearch;
}

std::optional<ResourceConfig> CmmPolicy::next_sample() {
  // Probes toggle only prefetchers; the partition currently in force
  // stays applied so the probe does not flush protected LLC state.
  switch (phase_) {
    case Phase::ProbeOn: {
      ResourceConfig cfg = current_;
      cfg.prefetch_on.assign(cores_, true);
      return cfg;
    }
    case Phase::ProbeOff: {
      ResourceConfig cfg = current_;
      cfg.prefetch_on.assign(cores_, true);
      for (const CoreId c : agg_set_) cfg.prefetch_on[c] = false;
      return cfg;
    }
    case Phase::ThrottleSearch:
      if (next_combo_ < combos_.size()) return throttle_config(combos_[next_combo_]);
      return std::nullopt;
    case Phase::BpSearch: {
      if (!bp_base_sampled_) return bp_base_;  // reference: PT+CP, no BP
      if (bp_cand_idx_ >= bp_candidates_.size()) return std::nullopt;
      ResourceConfig cfg = bp_base_;
      cfg.throttle_levels = bp_levels_;
      cfg.throttle_levels.resize(cores_, 0);
      cfg.throttle_levels[bp_candidates_[bp_cand_idx_]] = bp_trial_level_;
      return cfg;
    }
    case Phase::Done:
      return std::nullopt;
  }
  return std::nullopt;
}

void CmmPolicy::report_sample(const SampleStats& stats) {
  switch (phase_) {
    case Phase::ProbeOn: {
      probe_metrics_ = compute_all_metrics(stats.per_core, opts_.detector.freq_ghz);
      agg_set_ = detect_aggressive(probe_metrics_, opts_.detector, trace_);
      for (CoreId c = 0; c < cores_; ++c) ipc_on_[c] = stats.per_core[c].ipc();
      for (CoreId c = 0; c < cores_; ++c) {
        const auto& d = stats.per_core[c];
        if (d.cycles != 0) {
          probe_bw_[c] =
              static_cast<double>(d.dram_demand_bytes + d.dram_prefetch_bytes) /
              static_cast<double>(d.cycles);
        }
      }

      if (agg_set_.empty()) {
        // Fig. 6(d): no aggressive cores — throttling is meaningless;
        // fall back to the Dunn clustering partitioner, fed with the
        // full execution epoch's stall counts (as the original does).
        partition_masks_ = cat_available_
                               ? dunn_allocate(epoch_stalls_, cores_, ways_, opts_.dunn_k_min,
                                               opts_.dunn_k_max)
                               : std::vector<WayMask>(cores_, full_mask(ways_));
        enter_bp_search(best_ptcp_config());  // Done when BP is off
      } else {
        phase_ = Phase::ProbeOff;
      }
      return;
    }
    case Phase::ProbeOff: {
      for (CoreId c = 0; c < cores_; ++c) ipc_off_[c] = stats.per_core[c].ipc();
      const std::vector<bool> friendly =
          classify_friendly(agg_set_, ipc_on_, ipc_off_, opts_.detector);
      for (std::size_t i = 0; i < agg_set_.size(); ++i) {
        (friendly[i] ? friendly_cores_ : unfriendly_cores_).push_back(agg_set_[i]);
      }
      partition_masks_ = build_partition_masks();

      if (unfriendly_cores_.empty()) {
        enter_bp_search(best_ptcp_config());  // nothing to PT-throttle: CP (+BP)
        return;
      }
      if (unfriendly_cores_.size() <= opts_.max_exhaustive) {
        groups_.resize(unfriendly_cores_.size());
        for (unsigned i = 0; i < groups_.size(); ++i) groups_[i] = i;
        num_groups_ = static_cast<unsigned>(unfriendly_cores_.size());
      } else {
        groups_ = group_by_ptr(unfriendly_cores_, probe_metrics_, opts_.max_groups);
        num_groups_ = *std::max_element(groups_.begin(), groups_.end()) + 1;
      }
      combos_ = throttle_combinations(num_groups_);
      next_combo_ = 0;
      phase_ = Phase::ThrottleSearch;
      return;
    }
    case Phase::ThrottleSearch: {
      combo_hm_.push_back(sample_objective_value(opts_.objective, stats.per_core));
      ++next_combo_;
      if (next_combo_ >= combos_.size()) enter_bp_search(best_ptcp_config());
      return;
    }
    case Phase::BpSearch: {
      const double obj = sample_objective_value(opts_.objective, stats.per_core);
      if (!bp_base_sampled_) {
        // The no-BP reference this pass must beat: any level is kept
        // only on a strict improvement, so the chosen config never
        // ranks below plain CMM's on the sampled objective.
        bp_base_sampled_ = true;
        bp_best_obj_ = obj;
        bp_trial_level_ = 1;
        return;
      }
      if (obj > bp_best_obj_) {
        bp_best_obj_ = obj;
        bp_levels_[bp_candidates_[bp_cand_idx_]] = bp_trial_level_;
      }
      if (bp_trial_level_ < opts_.bp_max_level) {
        ++bp_trial_level_;
      } else {
        ++bp_cand_idx_;
        bp_trial_level_ = 1;
        if (bp_cand_idx_ >= bp_candidates_.size()) phase_ = Phase::Done;
      }
      return;
    }
    case Phase::Done:
      return;
  }
}

ResourceConfig CmmPolicy::final_config() {
  phase_ = Phase::Done;
  ResourceConfig cfg = best_ptcp_config();
  const bool any_bp = std::any_of(bp_levels_.begin(), bp_levels_.end(),
                                  [](std::uint8_t l) { return l != 0; });
  if (any_bp) cfg.throttle_levels = bp_levels_;
  current_ = cfg;
  return current_;
}

}  // namespace cmm::core
