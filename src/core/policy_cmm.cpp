#include "core/policy_cmm.hpp"

#include <algorithm>

#include "core/metrics.hpp"
#include "core/policy_cp.hpp"
#include "core/policy_dunn.hpp"

namespace cmm::core {

std::string_view to_string(CmmVariant v) noexcept {
  switch (v) {
    case CmmVariant::A: return "cmm_a";
    case CmmVariant::B: return "cmm_b";
    case CmmVariant::C: return "cmm_c";
  }
  return "cmm";
}

ResourceConfig CmmPolicy::initial_config(unsigned cores, unsigned ways) {
  cores_ = cores;
  ways_ = ways;
  current_ = ResourceConfig::baseline(cores, ways);
  return current_;
}

void CmmPolicy::begin_profiling(const std::vector<sim::PmuCounters>& epoch_delta) {
  epoch_stalls_.clear();
  epoch_stalls_.reserve(epoch_delta.size());
  for (const auto& d : epoch_delta)
    epoch_stalls_.push_back(static_cast<double>(d.stalls_l2_pending));
  phase_ = Phase::ProbeOn;
  agg_set_.clear();
  friendly_cores_.clear();
  unfriendly_cores_.clear();
  ipc_on_.assign(cores_, 0.0);
  ipc_off_.assign(cores_, 0.0);
  probe_metrics_.clear();
  partition_masks_.assign(cores_, full_mask(ways_));
  groups_.clear();
  combos_.clear();
  combo_hm_.clear();
  next_combo_ = 0;
  num_groups_ = 0;

  if (!prefetch_available_) {
    // CP-only rung of the degradation ladder: probes and throttle
    // search need a working prefetch MSR, so go straight to the Dunn
    // partitioner over the epoch's stall counts — or to full masks if
    // CAT is gone too (nothing left to manage).
    partition_masks_ = cat_available_ ? dunn_allocate(epoch_stalls_, cores_, ways_,
                                                      opts_.dunn_k_min, opts_.dunn_k_max)
                                      : std::vector<WayMask>(cores_, full_mask(ways_));
    phase_ = Phase::Done;
  }
}

std::vector<WayMask> CmmPolicy::build_partition_masks() const {
  // PT-only rung: CAT is gone, every partition collapses to the full
  // cache while prefetch throttling keeps working.
  if (!cat_available_) return std::vector<WayMask>(cores_, full_mask(ways_));
  switch (opts_.variant) {
    case CmmVariant::A:
      return masks_small_partition(agg_set_, cores_, ways_, opts_.partition_scale);
    case CmmVariant::B:
      return masks_small_partition(friendly_cores_, cores_, ways_, opts_.partition_scale);
    case CmmVariant::C:
      return masks_two_partitions(friendly_cores_, unfriendly_cores_, cores_, ways_,
                                  opts_.partition_scale);
  }
  return std::vector<WayMask>(cores_, full_mask(ways_));
}

ResourceConfig CmmPolicy::throttle_config(const std::vector<bool>& combo) const {
  ResourceConfig cfg;
  cfg.prefetch_on.assign(cores_, true);
  cfg.way_masks = partition_masks_;
  for (std::size_t i = 0; i < unfriendly_cores_.size(); ++i) {
    cfg.prefetch_on[unfriendly_cores_[i]] = combo.at(groups_[i]);
  }
  return cfg;
}

std::optional<ResourceConfig> CmmPolicy::next_sample() {
  // Probes toggle only prefetchers; the partition currently in force
  // stays applied so the probe does not flush protected LLC state.
  switch (phase_) {
    case Phase::ProbeOn: {
      ResourceConfig cfg = current_;
      cfg.prefetch_on.assign(cores_, true);
      return cfg;
    }
    case Phase::ProbeOff: {
      ResourceConfig cfg = current_;
      cfg.prefetch_on.assign(cores_, true);
      for (const CoreId c : agg_set_) cfg.prefetch_on[c] = false;
      return cfg;
    }
    case Phase::ThrottleSearch:
      if (next_combo_ < combos_.size()) return throttle_config(combos_[next_combo_]);
      return std::nullopt;
    case Phase::Done:
      return std::nullopt;
  }
  return std::nullopt;
}

void CmmPolicy::report_sample(const SampleStats& stats) {
  switch (phase_) {
    case Phase::ProbeOn: {
      probe_metrics_ = compute_all_metrics(stats.per_core, opts_.detector.freq_ghz);
      agg_set_ = detect_aggressive(probe_metrics_, opts_.detector, trace_);
      for (CoreId c = 0; c < cores_; ++c) ipc_on_[c] = stats.per_core[c].ipc();

      if (agg_set_.empty()) {
        // Fig. 6(d): no aggressive cores — throttling is meaningless;
        // fall back to the Dunn clustering partitioner, fed with the
        // full execution epoch's stall counts (as the original does).
        partition_masks_ = cat_available_
                               ? dunn_allocate(epoch_stalls_, cores_, ways_, opts_.dunn_k_min,
                                               opts_.dunn_k_max)
                               : std::vector<WayMask>(cores_, full_mask(ways_));
        phase_ = Phase::Done;
      } else {
        phase_ = Phase::ProbeOff;
      }
      return;
    }
    case Phase::ProbeOff: {
      for (CoreId c = 0; c < cores_; ++c) ipc_off_[c] = stats.per_core[c].ipc();
      const std::vector<bool> friendly =
          classify_friendly(agg_set_, ipc_on_, ipc_off_, opts_.detector);
      for (std::size_t i = 0; i < agg_set_.size(); ++i) {
        (friendly[i] ? friendly_cores_ : unfriendly_cores_).push_back(agg_set_[i]);
      }
      partition_masks_ = build_partition_masks();

      if (unfriendly_cores_.empty()) {
        phase_ = Phase::Done;  // nothing to throttle: CP only
        return;
      }
      if (unfriendly_cores_.size() <= opts_.max_exhaustive) {
        groups_.resize(unfriendly_cores_.size());
        for (unsigned i = 0; i < groups_.size(); ++i) groups_[i] = i;
        num_groups_ = static_cast<unsigned>(unfriendly_cores_.size());
      } else {
        groups_ = group_by_ptr(unfriendly_cores_, probe_metrics_, opts_.max_groups);
        num_groups_ = *std::max_element(groups_.begin(), groups_.end()) + 1;
      }
      combos_ = throttle_combinations(num_groups_);
      next_combo_ = 0;
      phase_ = Phase::ThrottleSearch;
      return;
    }
    case Phase::ThrottleSearch: {
      combo_hm_.push_back(sample_objective_value(opts_.objective, stats.per_core));
      ++next_combo_;
      if (next_combo_ >= combos_.size()) phase_ = Phase::Done;
      return;
    }
    case Phase::Done:
      return;
  }
}

ResourceConfig CmmPolicy::final_config() {
  phase_ = Phase::Done;
  ResourceConfig cfg;
  cfg.prefetch_on.assign(cores_, true);
  cfg.way_masks = partition_masks_;

  if (!combo_hm_.empty() && !combos_.empty()) {
    const std::size_t measured = std::min(combo_hm_.size(), combos_.size());
    std::size_t best = 0;
    for (std::size_t k = 1; k < measured; ++k) {
      if (combo_hm_[k] > combo_hm_[best]) best = k;
    }
    cfg = throttle_config(combos_[best]);
  }
  current_ = cfg;
  return current_;
}

}  // namespace cmm::core
