// 1-D K-means (Lloyd's algorithm) and the Dunn validity index. Used by
// the PT back-end to group Agg cores by L2 PTR (paper Sec. III-B1) and
// by the reimplementation of Selfa et al.'s "Dunn" partitioner, which
// picks the cluster count maximising the Dunn index over the cores'
// STALLS_L2_PENDING values.
#pragma once

#include <vector>

namespace cmm::core {

struct KMeansResult {
  std::vector<unsigned> assignment;  // values.size() entries in [0, k)
  std::vector<double> centroids;     // k entries, ascending
  unsigned k = 0;
};

/// Cluster `values` into `k` groups. k is clamped to [1, values.size()].
/// Deterministic: centroids initialised on the value range quantiles.
KMeansResult kmeans_1d(const std::vector<double>& values, unsigned k, unsigned max_iters = 64);

/// Dunn index: min inter-cluster distance / max intra-cluster diameter.
/// Higher is better-separated. Returns 0 for degenerate clusterings
/// (k < 2 or an all-singleton diameter of zero with zero separation).
double dunn_index(const std::vector<double>& values, const KMeansResult& clustering);

/// Convenience: try k in [k_min, k_max], return the clustering with the
/// best Dunn index (falls back to k_min if all are degenerate).
KMeansResult best_kmeans_by_dunn(const std::vector<double>& values, unsigned k_min,
                                 unsigned k_max);

}  // namespace cmm::core
