#include "core/policy_dunn.hpp"

#include <algorithm>
#include <cmath>

#include "core/kmeans.hpp"

namespace cmm::core {

std::vector<WayMask> dunn_nested_masks(const std::vector<unsigned>& assignment,
                                       const std::vector<double>& stalls, unsigned num_clusters,
                                       unsigned cores, unsigned ways) {
  std::vector<WayMask> masks(cores, full_mask(ways));
  if (num_clusters < 2 || assignment.size() != cores) return masks;

  // Mean stalls per cluster.
  std::vector<double> sum(num_clusters, 0.0);
  std::vector<unsigned> count(num_clusters, 0);
  for (unsigned c = 0; c < cores; ++c) {
    sum[assignment[c]] += stalls[c];
    ++count[assignment[c]];
  }
  double total_mean = 0.0;
  std::vector<double> mean(num_clusters, 0.0);
  for (unsigned g = 0; g < num_clusters; ++g) {
    mean[g] = count[g] ? sum[g] / count[g] : 0.0;
    total_mean += mean[g];
  }
  if (total_mean <= 0.0) return masks;

  // Clusters ordered by mean stalls ascending; nested allocation:
  // cluster at rank r gets the low w_r ways, with w monotone in its
  // cumulative stall share and the top cluster getting everything.
  std::vector<unsigned> order(num_clusters);
  for (unsigned g = 0; g < num_clusters; ++g) order[g] = g;
  std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) { return mean[a] < mean[b]; });

  std::vector<unsigned> ways_for(num_clusters, ways);
  double cum = 0.0;
  for (unsigned r = 0; r + 1 < num_clusters; ++r) {
    cum += mean[order[r]];
    auto w = static_cast<unsigned>(std::lround(static_cast<double>(ways) * cum / total_mean));
    w = std::clamp(w, r + 1, ways - (num_clusters - 1 - r));  // strictly nested, >=1
    ways_for[order[r]] = w;
  }
  // Enforce monotonicity after rounding.
  for (unsigned r = 1; r + 1 < num_clusters; ++r) {
    ways_for[order[r]] = std::max(ways_for[order[r]], ways_for[order[r - 1]]);
  }

  for (unsigned c = 0; c < cores; ++c) masks[c] = contiguous_mask(0, ways_for[assignment[c]]);
  return masks;
}

std::vector<WayMask> dunn_allocate(const std::vector<double>& stalls, unsigned cores,
                                   unsigned ways, unsigned k_min, unsigned k_max) {
  const KMeansResult clustering =
      best_kmeans_by_dunn(stalls, std::max(2U, k_min), std::max(k_min, k_max));
  return dunn_nested_masks(clustering.assignment, stalls, clustering.k, cores, ways);
}

ResourceConfig DunnPolicy::initial_config(unsigned cores, unsigned ways) {
  cores_ = cores;
  ways_ = ways;
  current_ = ResourceConfig::baseline(cores, ways);
  return current_;
}

void DunnPolicy::begin_profiling(const std::vector<sim::PmuCounters>& epoch_delta) {
  std::vector<double> stalls;
  stalls.reserve(epoch_delta.size());
  for (const auto& d : epoch_delta) stalls.push_back(static_cast<double>(d.stalls_l2_pending));

  ResourceConfig cfg = ResourceConfig::baseline(cores_, ways_);  // prefetchers untouched
  cfg.way_masks = dunn_allocate(stalls, cores_, ways_, opts_.k_min, opts_.k_max);
  current_ = cfg;
}

}  // namespace cmm::core
