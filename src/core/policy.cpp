#include "core/policy.hpp"

#include <algorithm>
#include <cmath>

#include "core/kmeans.hpp"
#include "core/metrics.hpp"

namespace cmm::core {

ResourceConfig ResourceConfig::baseline(unsigned cores, unsigned ways) {
  ResourceConfig cfg;
  cfg.prefetch_on.assign(cores, true);
  cfg.way_masks.assign(cores, full_mask(ways));
  return cfg;
}

unsigned partition_ways_for(unsigned n_cores, unsigned total_ways, double scale) {
  if (total_ways <= 1) return 1;
  const auto ways = static_cast<unsigned>(std::lround(scale * static_cast<double>(n_cores)));
  return std::clamp(ways, 1U, total_ways - 1);
}

double sample_objective_value(SampleObjective objective,
                              const std::vector<sim::PmuCounters>& deltas) {
  switch (objective) {
    case SampleObjective::HmIpc:
      return hm_ipc(deltas);
    case SampleObjective::SumIpc: {
      double sum = 0.0;
      for (const auto& d : deltas) sum += d.ipc();
      return sum;
    }
  }
  return 0.0;
}

std::vector<std::vector<bool>> throttle_combinations(unsigned n) {
  std::vector<std::vector<bool>> combos;
  if (n == 0) return combos;
  const std::uint64_t total = 1ULL << n;
  combos.reserve(total);
  combos.emplace_back(n, true);   // all on (probe interval 1)
  combos.emplace_back(n, false);  // all off (probe interval 2)
  for (std::uint64_t bits = 1; bits + 1 < total; ++bits) {
    std::vector<bool> combo(n);
    for (unsigned i = 0; i < n; ++i) combo[i] = ((bits >> i) & 1ULL) != 0;
    combos.push_back(std::move(combo));
  }
  return combos;
}

std::vector<unsigned> group_by_ptr(const std::vector<CoreId>& agg_set,
                                   const std::vector<CoreMetrics>& metrics, unsigned max_groups) {
  std::vector<double> ptr_values;
  ptr_values.reserve(agg_set.size());
  for (const CoreId c : agg_set) ptr_values.push_back(metrics.at(c).l2_ptr);
  const KMeansResult r = kmeans_1d(ptr_values, max_groups);
  return r.assignment;
}

}  // namespace cmm::core
