// CMM front-end (paper Sec. III-A, Fig. 5): identify the set of
// prefetch-aggressive cores from one interval's Table-I metrics, and
// classify Agg cores into prefetch friendly / unfriendly from the
// two-interval speedup probe (Sec. III-B1).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/metrics.hpp"
#include "obs/trace.hpp"

namespace cmm::core {

struct DetectorConfig {
  // Core frequency used to turn cycle counts into per-second rates for
  // the M-3/M-7 thresholds. Must match the machine being monitored.
  double freq_ghz = 2.1;

  // Step 1: a core is potentially aggressive if its PGA (M-4) exceeds
  // `pga_rel_mean` times the all-core mean PGA (the paper compares
  // against the mean; a factor below 1 keeps moderately aggressive
  // cores visible when one core saturates the metric).
  double pga_rel_mean = 0.4;
  // ...and exceeds an absolute floor — at least as many L2 prefetches
  // as demand requests — so quiet or adjacent-only cores (pointer
  // chasers whose sole prefetch is the buddy line) are not flagged.
  double pga_floor = 1.0;

  // Step 2: filter out cores whose prefetches mostly hit L2 (high
  // locality): keep only cores with L2 PMR (M-5) >= this threshold
  // (paper suggests ~70%).
  double pmr_threshold = 0.7;

  // Step 3: keep only cores whose prefetch pressure on the LLC, L2 PTR
  // (M-3, prefetch misses per second), exceeds this rate.
  double ptr_threshold_per_sec = 20e6;

  // Friendliness: IPC(prefetch on) / IPC(prefetch off) >= this =>
  // prefetch friendly (paper suggests ~1.5).
  double friendly_speedup = 1.5;
};

/// Fig. 5 pipeline. Returns core ids in ascending order.
std::vector<CoreId> detect_aggressive(const std::vector<CoreMetrics>& metrics,
                                      const DetectorConfig& cfg);

/// Traced variant: same result, but emits one obs::DetectorVerdict per
/// core — every core, not just survivors, so a trace shows why a core
/// was *not* flagged — when the trace is on.
std::vector<CoreId> detect_aggressive(const std::vector<CoreMetrics>& metrics,
                                      const DetectorConfig& cfg, obs::Trace trace);

/// Split `agg_set` into friendly cores using the on/off IPC probe:
/// `ipc_on[i]`, `ipc_off[i]` indexed by core id. Returns a parallel
/// vector of flags for agg_set members (true = prefetch friendly).
std::vector<bool> classify_friendly(const std::vector<CoreId>& agg_set,
                                    const std::vector<double>& ipc_on,
                                    const std::vector<double>& ipc_off,
                                    const DetectorConfig& cfg);

}  // namespace cmm::core
