// Prefetch Throttling back-end (paper Sec. III-B1).
//
// Profiling protocol per epoch:
//   interval 0: all prefetchers ON (collect detection stats — some may
//               have been off during the last execution epoch)
//   interval 1: Agg-set prefetchers OFF (friendliness probe)
//   intervals 2..: remaining on/off combinations over the Agg cores —
//               exhaustive when |Agg| <= max_exhaustive, otherwise
//               group-level via k-means clustering on L2 PTR into at
//               most `max_groups` groups.
// The combination with the highest hm_ipc (the paper's 1/ANTT proxy)
// wins and is applied for the next execution epoch.
#pragma once

#include "core/policy.hpp"

namespace cmm::core {

class PtPolicy final : public Policy {
 public:
  struct Options {
    DetectorConfig detector{};
    unsigned max_exhaustive = 3;  // |Agg| above this switches to groups
    unsigned max_groups = 3;
    SampleObjective objective = SampleObjective::HmIpc;
  };

  PtPolicy() = default;
  explicit PtPolicy(const Options& opts) : opts_(opts) {}

  std::string_view name() const noexcept override { return "pt"; }

  ResourceConfig initial_config(unsigned cores, unsigned ways) override;
  void begin_profiling(const std::vector<sim::PmuCounters>& epoch_delta) override;
  std::optional<ResourceConfig> next_sample() override;
  void report_sample(const SampleStats& stats) override;
  ResourceConfig final_config() override;

  /// Introspection for tests and the detection-trace bench.
  const std::vector<CoreId>& agg_set() const noexcept { return agg_set_; }
  const std::vector<unsigned>& groups() const noexcept { return groups_; }

 private:
  ResourceConfig combo_config(const std::vector<bool>& combo) const;

  Options opts_;
  unsigned cores_ = 0;
  unsigned ways_ = 0;

  std::vector<CoreId> agg_set_;
  std::vector<unsigned> groups_;    // group id per agg member
  unsigned num_groups_ = 0;
  std::vector<std::vector<bool>> combos_;  // over groups
  std::size_t next_combo_ = 0;
  bool profiling_ = false;

  std::vector<double> sample_hm_;   // hm_ipc per sampled combo
  std::vector<double> ipc_on_;      // per core, interval 0
  std::vector<double> ipc_off_;     // per core, interval 1

  ResourceConfig current_;
};

}  // namespace cmm::core
