#include "core/epoch_driver.hpp"

#include <algorithm>

#include "common/bitmask.hpp"
#include "core/metrics.hpp"

namespace cmm::core {

namespace {
obs::ConfigView view_of(const ResourceConfig& cfg) {
  return {&cfg.prefetch_on, &cfg.way_masks, &cfg.throttle_levels};
}

bool all_zero(const std::vector<std::uint8_t>& levels) {
  return std::all_of(levels.begin(), levels.end(),
                     [](std::uint8_t l) { return l == 0; });
}
}  // namespace

EpochDriver::EpochDriver(sim::MulticoreSystem& system, Policy& policy, const EpochConfig& cfg)
    : system_(system),
      policy_(policy),
      cfg_(cfg),
      owned_msr_(std::make_unique<hw::SimMsrDevice>(system)),
      owned_cat_(std::make_unique<hw::SimCatController>(system)),
      owned_pmu_(std::make_unique<hw::SimPmuReader>(system)),
      owned_mba_(std::make_unique<hw::SimMbaController>(system)),
      msr_(owned_msr_.get()),
      cat_(owned_cat_.get()),
      pmu_(owned_pmu_.get()),
      mba_(owned_mba_.get()),
      retry_(logging_retry(cfg.retry)),
      prefetch_(*msr_, retry_),
      probe_prefetch_(*msr_, RetryPolicy{.max_attempts = 1}) {
  init();
}

EpochDriver::EpochDriver(sim::MulticoreSystem& system, Policy& policy, hw::MsrDevice& msr,
                         hw::PmuReader& pmu, hw::CatController& cat, const EpochConfig& cfg)
    : system_(system),
      policy_(policy),
      cfg_(cfg),
      owned_mba_(std::make_unique<hw::SimMbaController>(system)),
      msr_(&msr),
      cat_(&cat),
      pmu_(&pmu),
      mba_(owned_mba_.get()),
      retry_(logging_retry(cfg.retry)),
      prefetch_(*msr_, retry_),
      probe_prefetch_(*msr_, RetryPolicy{.max_attempts = 1}) {
  init();
}

EpochDriver::EpochDriver(sim::MulticoreSystem& system, Policy& policy, hw::MsrDevice& msr,
                         hw::PmuReader& pmu, hw::CatController& cat, hw::MbaController& mba,
                         const EpochConfig& cfg)
    : system_(system),
      policy_(policy),
      cfg_(cfg),
      msr_(&msr),
      cat_(&cat),
      pmu_(&pmu),
      mba_(&mba),
      retry_(logging_retry(cfg.retry)),
      prefetch_(*msr_, retry_),
      probe_prefetch_(*msr_, RetryPolicy{.max_attempts = 1}) {
  init();
}

void EpochDriver::init() {
  const unsigned cores = system_.num_cores();
  exec_accum_.assign(cores, sim::PmuCounters{});
  core_prefetch_ok_.assign(cores, true);
  applied_prefetch_.assign(cores, true);  // hardware reset state: all enabled
  applied_throttle_.assign(cores, 0);     // hardware reset state: unregulated
  last_snapshot_.assign(cores, sim::PmuCounters{});
  prefetch_probe_.assign(cores, ProbeState{});

  tctx_.now = system_.now();
  trace_ = obs::Trace(cfg_.sink, &tctx_);
  metrics_ = cfg_.metrics;
  policy_.set_trace(trace_);
}

void EpochDriver::record_health(HealthEventKind kind, CoreId core, std::uint64_t detail,
                                std::string note) {
  if (trace_.on()) {
    switch (kind) {
      case HealthEventKind::RecoveryProbe:
        // Typed event: the note is the probed axis, the detail the outcome.
        trace_.emit(obs::RecoveryProbe{system_.now(), tctx_.epoch, note, core, detail != 0});
        break;
      case HealthEventKind::TenantAttach:
      case HealthEventKind::TenantDetach:
      case HealthEventKind::SloBreach:
        // The ServiceDriver emits the richer typed events for these
        // itself; a DegradationStep mirror here would double-log them.
        break;
      default:
        trace_.emit(obs::DegradationStep{system_.now(), tctx_.epoch, to_string(kind), core,
                                         detail, note});
        break;
    }
  }
  if (metrics_ != nullptr) metrics_->count("health." + std::string(to_string(kind)));
  health_.record(kind, system_.now(), core, detail, std::move(note));
}

RetryPolicy EpochDriver::logging_retry(RetryPolicy base) {
  base.on_retry = [this](const RetryEvent& ev) {
    if (trace_.on()) {
      trace_.emit(obs::FaultRetry{system_.now(), tctx_.epoch, ev.attempt, ev.backoff_units,
                                  ev.what});
    }
    if (metrics_ != nullptr) metrics_->count("health.hw_retry");
    health_.record(HealthEventKind::HwRetry, system_.now(), kInvalidCore, ev.attempt,
                   std::string(ev.what) + " (backoff " + std::to_string(ev.backoff_units) +
                       "u)");
  };
  return base;
}

void EpochDriver::notify_policy_degraded() noexcept {
  try {
    policy_.notify_degraded(prefetch_ok_, cat_ok_, mba_ok_);
  } catch (...) {
    // A notification must never take the control loop down.
  }
}

void EpochDriver::check_management_lost() {
  if (!prefetch_ok_ && !cat_ok_ && !management_lost_logged_) {
    management_lost_logged_ = true;
    record_health(HealthEventKind::ManagementLost);
  }
}

void EpochDriver::arm_probe(ProbeState& ps) {
  if (cfg_.probe_period_epochs == 0) return;
  ps.streak = 0;
  ps.interval = cfg_.probe_period_epochs;
  ps.next_epoch = tctx_.epoch + ps.interval;
}

void EpochDriver::run_recovery_probes() {
  if (cfg_.probe_period_epochs == 0) return;
  const std::uint64_t epoch = tctx_.epoch;
  const std::uint64_t max_interval =
      static_cast<std::uint64_t>(cfg_.probe_period_epochs) * 32;
  const unsigned needed = std::max(1u, cfg_.probe_successes_required);
  const unsigned backoff = std::max(1u, cfg_.probe_backoff_multiplier);

  const auto reschedule = [&](ProbeState& ps, bool ok) {
    if (ok) {
      ++ps.streak;
      ps.interval = cfg_.probe_period_epochs;
    } else {
      ps.streak = 0;
      ps.interval = std::min(ps.interval * backoff, max_interval);
    }
    ps.next_epoch = epoch + ps.interval;
  };

  // Per-core prefetch axis: re-write the state the hardware is believed
  // to hold. A success is a no-op write; `needed` consecutive successes
  // end the core's probation.
  for (CoreId c = 0; c < core_prefetch_ok_.size(); ++c) {
    if (core_prefetch_ok_[c]) continue;
    auto& ps = prefetch_probe_[c];
    if (epoch < ps.next_epoch) continue;
    bool ok = false;
    try {
      probe_prefetch_.set_core_prefetchers(c, applied_prefetch_[c]);
      ok = true;
    } catch (...) {
    }
    record_health(HealthEventKind::RecoveryProbe, c, ok ? 1 : 0, "prefetch");
    reschedule(ps, ok);
    if (ps.streak < needed) continue;
    core_prefetch_ok_[c] = true;
    ps = ProbeState{};
    record_health(HealthEventKind::CorePrefetchRestored, c);
    if (!prefetch_ok_) {
      // At least one core's prefetch knob is back: leave CP-only.
      prefetch_ok_ = true;
      management_lost_logged_ = false;
      record_health(HealthEventKind::CpOnlyRecovered);
      notify_policy_degraded();
    }
  }

  // MBA axis: re-apply the levels the hardware is believed to hold
  // (usually all-zero after the fallback's best-effort reset).
  if (!mba_ok_ && epoch >= mba_probe_.next_epoch) {
    bool ok = false;
    try {
      mba_->apply(applied_throttle_);
      ok = true;
    } catch (...) {
    }
    record_health(HealthEventKind::RecoveryProbe, kInvalidCore, ok ? 1 : 0, "mba");
    reschedule(mba_probe_, ok);
    if (mba_probe_.streak >= needed) {
      mba_ok_ = true;
      mba_probe_ = ProbeState{};
      applied_throttle_ = mba_->current();
      record_health(HealthEventKind::MbaRestored);
      notify_policy_degraded();
    }
  }

  // CAT axis: re-apply the masks the hardware currently holds.
  if (!cat_ok_ && epoch >= cat_probe_.next_epoch) {
    bool ok = false;
    try {
      cat_->apply(cat_->current());
      ok = true;
    } catch (...) {
    }
    record_health(HealthEventKind::RecoveryProbe, kInvalidCore, ok ? 1 : 0, "cat");
    reschedule(cat_probe_, ok);
    if (cat_probe_.streak >= needed) {
      cat_ok_ = true;
      cat_probe_ = ProbeState{};
      management_lost_logged_ = false;
      current_.way_masks = cat_->current();
      record_health(HealthEventKind::PtOnlyRecovered);
      notify_policy_degraded();
    }
  }
}

void EpochDriver::mark_core_prefetch_dead(CoreId core, const char* what) {
  core_prefetch_ok_[core] = false;
  arm_probe(prefetch_probe_[core]);
  record_health(HealthEventKind::CorePrefetchOffline, core, 0, what);
  if (std::none_of(core_prefetch_ok_.begin(), core_prefetch_ok_.end(),
                   [](bool ok) { return ok; })) {
    prefetch_ok_ = false;
    record_health(HealthEventKind::CpOnlyFallback);
    notify_policy_degraded();
  }
  check_management_lost();
}

void EpochDriver::mark_cat_dead(const char* what) {
  cat_ok_ = false;
  arm_probe(cat_probe_);
  // Best-effort: drop any stale partition so no core stays stuck with a
  // tiny mask the controller can no longer manage (success recorded in
  // the event's detail field).
  bool reset_ok = false;
  try {
    with_retry(retry_, [&] { cat_->reset(); });
    reset_ok = true;
  } catch (...) {
  }
  record_health(HealthEventKind::PtOnlyFallback, kInvalidCore, reset_ok ? 1 : 0, what);
  notify_policy_degraded();
  check_management_lost();
}

void EpochDriver::mark_mba_dead(const char* what) {
  mba_ok_ = false;
  arm_probe(mba_probe_);
  // Best-effort: lift any residual regulation so no core stays paced by
  // a ladder the controller can no longer manage (success recorded in
  // the event's detail field). PT+CP management continues unaffected.
  bool reset_ok = false;
  try {
    with_retry(retry_, [&] { mba_->reset(); });
    applied_throttle_.assign(applied_throttle_.size(), 0);
    reset_ok = true;
  } catch (...) {
  }
  record_health(HealthEventKind::MbaOffline, kInvalidCore, reset_ok ? 1 : 0, what);
  notify_policy_degraded();
}

void EpochDriver::apply(const ResourceConfig& cfg, std::string_view source) {
  // `effective` tracks what actually lands on hardware; with every knob
  // healthy it equals `cfg` bit for bit.
  ResourceConfig effective = cfg;

  for (CoreId c = 0; c < cfg.prefetch_on.size(); ++c) {
    if (!prefetch_ok_ || !core_prefetch_ok_[c]) {
      effective.prefetch_on[c] = applied_prefetch_[c];
      continue;
    }
    try {
      prefetch_.set_core_prefetchers(c, cfg.prefetch_on[c]);  // retries inside
      applied_prefetch_[c] = cfg.prefetch_on[c];
    } catch (const HwFault& f) {
      effective.prefetch_on[c] = applied_prefetch_[c];
      mark_core_prefetch_dead(c, f.what());
    }
  }

  if (cat_ok_) {
    try {
      with_retry(retry_, [&] { cat_->apply(cfg.way_masks); });
    } catch (const HwFault& f) {
      mark_cat_dead(f.what());
      effective.way_masks = cat_->current();  // whatever the hardware kept
    }
  } else {
    effective.way_masks = current_.way_masks;  // unchanged on hardware
  }

  // BP axis: touch the MBA HAL only when the desired ladder state
  // differs from what hardware already holds. An all-zero (or absent)
  // request on an unregulated machine therefore issues no HAL call at
  // all — the fault-injector call stream, and with it every rate-0 and
  // fault-campaign bit-identity invariant, is unchanged from pre-BP.
  std::vector<std::uint8_t> desired = cfg.throttle_levels;
  desired.resize(applied_throttle_.size(), 0);
  if (mba_ok_ && desired != applied_throttle_) {
    try {
      with_retry(retry_, [&] { mba_->apply(desired); });
      applied_throttle_ = desired;
    } catch (const HwFault& f) {
      mark_mba_dead(f.what());
    }
  }
  if (!cfg.throttle_levels.empty() || !all_zero(applied_throttle_)) {
    effective.throttle_levels = applied_throttle_;
  }

  current_ = effective;
  if (trace_.on()) {
    trace_.emit(obs::ConfigApplied{system_.now(), tctx_.epoch, source, view_of(current_)});
  }
}

bool EpochDriver::plausible_snapshot(const std::vector<sim::PmuCounters>& snapshot) const {
  // Two invariants a healthy snapshot cannot break: counters are
  // monotone (catches wrap) and the cycle counter tracks the global
  // clock (catches garbage, whose random values dwarf any real count).
  const double now = static_cast<double>(system_.now());
  for (CoreId c = 0; c < snapshot.size(); ++c) {
    if (static_cast<double>(snapshot[c].cycles) > now + 100'000.0) return false;
    if (snapshot[c].cycles < last_snapshot_[c].cycles) return false;
    if (snapshot[c].instructions < last_snapshot_[c].instructions) return false;
  }
  return true;
}

std::vector<sim::PmuCounters> EpochDriver::read_counters() {
  try {
    auto snapshot = with_retry(retry_, [&] { return pmu_->read_all(); });
    // Simulated time is paused between spans and counters are monotone,
    // so a fresh read supersedes a wrapped/garbage one: re-read a
    // bounded number of times rather than blind the whole span.
    for (unsigned attempt = 1;
         attempt < retry_.max_attempts && !plausible_snapshot(snapshot); ++attempt) {
      record_health(HealthEventKind::PmuSnapshotReread, kInvalidCore, attempt);
      snapshot = with_retry(retry_, [&] { return pmu_->read_all(); });
    }
    // A still-implausible snapshot is returned as-is (the span-level
    // plausibility check quarantines it) but never becomes the
    // monotonicity reference.
    if (plausible_snapshot(snapshot)) last_snapshot_ = snapshot;
    return snapshot;
  } catch (const HwFault& f) {
    // Persistent PMU failure: substitute the last good snapshot, which
    // turns this span's delta into zeros (downstream metrics define
    // 0/0 as 0, so a blind interval is harmless).
    record_health(HealthEventKind::PmuReadFailed, kInvalidCore, 0, f.what());
    return last_snapshot_;
  }
}

EpochDriver::SpanDelta EpochDriver::run_span(Cycle span) {
  const auto before = read_counters();
  system_.run(span);
  const auto after = read_counters();

  SpanDelta result;
  std::vector<bool> wrapped;
  result.per_core = hw::pmu_delta(after, before, &wrapped);
  for (CoreId c = 0; c < result.per_core.size(); ++c) {
    auto& d = result.per_core[c];
    // Plausibility: a span of `span` cycles cannot yield a per-core
    // cycle delta far beyond it, nor an instruction count beyond any
    // real issue width. Garbage snapshots are random 64-bit values, so
    // the slack can be generous without masking real measurements.
    const double cycles = static_cast<double>(d.cycles);
    const double instructions = static_cast<double>(d.instructions);
    const bool garbage = cycles > 2.0 * static_cast<double>(span) + 100'000.0 ||
                         instructions > 16.0 * cycles + 100'000.0;
    if (wrapped[c]) record_health(HealthEventKind::PmuWrapSaturated, c);
    if (garbage) record_health(HealthEventKind::PmuGarbageDetected, c, d.cycles);
    if (wrapped[c] || garbage) {
      d = sim::PmuCounters{};  // never let a corrupt core poison downstream math
      result.any_implausible = true;
    }
  }
  return result;
}

void EpochDriver::watchdog_restore(const std::string& cause) {
  // Put every knob we still control back to baseline: all prefetchers
  // on, full-mask COS everywhere.
  for (CoreId c = 0; c < core_prefetch_ok_.size(); ++c) {
    if (applied_prefetch_[c]) continue;
    if (!prefetch_ok_ || !core_prefetch_ok_[c]) continue;
    try {
      prefetch_.set_core_prefetchers(c, true);
      applied_prefetch_[c] = true;
    } catch (const HwFault& f) {
      mark_core_prefetch_dead(c, f.what());
    }
  }
  if (cat_ok_) {
    try {
      with_retry(retry_, [&] { cat_->reset(); });
    } catch (const HwFault& f) {
      mark_cat_dead(f.what());
    }
  }
  // BP axis: lift regulation, but only when some is actually applied —
  // an unregulated machine (every pre-BP run) must not grow a HAL call.
  if (mba_ok_ && !all_zero(applied_throttle_)) {
    try {
      with_retry(retry_, [&] { mba_->reset(); });
      applied_throttle_.assign(applied_throttle_.size(), 0);
    } catch (const HwFault& f) {
      mark_mba_dead(f.what());
    }
  }

  const auto masks = cat_->current();
  const WayMask full = full_mask(cat_->llc_ways());
  const bool baseline =
      std::all_of(masks.begin(), masks.end(), [full](WayMask m) { return m == full; }) &&
      std::all_of(applied_prefetch_.begin(), applied_prefetch_.end(),
                  [](bool on) { return on; }) &&
      all_zero(applied_throttle_);
  record_health(HealthEventKind::WatchdogRestore, kInvalidCore, baseline ? 1 : 0, cause);

  current_.prefetch_on = applied_prefetch_;
  current_.way_masks = masks;
  if (!current_.throttle_levels.empty() || !all_zero(applied_throttle_)) {
    current_.throttle_levels = applied_throttle_;
  }
  if (trace_.on()) {
    trace_.emit(obs::ConfigApplied{system_.now(), tctx_.epoch, "watchdog", view_of(current_)});
  }
}

void EpochDriver::run(Cycle total_cycles) {
  if (!started_) {
    ResourceConfig initial = ResourceConfig::baseline(system_.num_cores(), cat_->llc_ways());
    guarded(
        [&] { initial = policy_.initial_config(system_.num_cores(), cat_->llc_ways()); },
        "initial_config");
    apply(initial, "initial");
    started_ = true;
  }

  const Cycle end = system_.now() + total_cycles;
  while (system_.now() < end) {
    // ---- Execution epoch ----
    tctx_.now = system_.now();
    run_recovery_probes();
    const Cycle exec_len = std::min<Cycle>(cfg_.execution_epoch, end - system_.now());
    if (trace_.on()) {
      trace_.emit(obs::EpochStart{system_.now(), tctx_.epoch, exec_len, policy_.name(),
                                  view_of(current_)});
    }
    if (metrics_ != nullptr) {
      metrics_->count("driver.epochs");
      metrics_->observe("driver.epoch_cycles", static_cast<double>(exec_len),
                        {1e5, 5e5, 1e6, 2e6, 5e6, 1e7});
    }
    log_.push_back({EpochLogEntry::Kind::Execution, system_.now(), exec_len, current_});
    const SpanDelta epoch = run_span(exec_len);
    tctx_.now = system_.now();
    for (CoreId c = 0; c < epoch.per_core.size(); ++c) {
      auto& acc = exec_accum_[c];
      const auto& d = epoch.per_core[c];
      acc.cycles += d.cycles;
      acc.instructions += d.instructions;
      acc.l2_pref_req += d.l2_pref_req;
      acc.l2_pref_miss += d.l2_pref_miss;
      acc.l2_dm_req += d.l2_dm_req;
      acc.l2_dm_miss += d.l2_dm_miss;
      acc.l3_load_miss += d.l3_load_miss;
      acc.stalls_l2_pending += d.stalls_l2_pending;
      acc.dram_demand_bytes += d.dram_demand_bytes;
      acc.dram_prefetch_bytes += d.dram_prefetch_bytes;
    }
    if (system_.now() >= end) break;

    // ---- Profiling epoch ----
    if (!guarded([&] { policy_.begin_profiling(epoch.per_core); }, "begin_profiling")) {
      continue;  // watchdog restored baseline; try again next epoch
    }
    unsigned samples = 0;
    bool watchdog_fired = false;
    while (system_.now() < end) {
      std::optional<ResourceConfig> request;
      if (!guarded([&] { request = policy_.next_sample(); }, "next_sample")) {
        watchdog_fired = true;
        break;
      }
      if (!request.has_value()) break;
      if (samples >= cfg_.max_samples_per_epoch) {
        record_health(HealthEventKind::SampleCapTruncated, kInvalidCore, samples);
        break;
      }
      apply(*request, "sample");
      Cycle len = std::min<Cycle>(cfg_.sampling_interval, end - system_.now());
      log_.push_back({EpochLogEntry::Kind::Sample, system_.now(), len, current_});
      SpanDelta sample = run_span(len);
      if (sample.any_implausible && system_.now() < end) {
        // Quarantine: discard the interval and re-run it once; the
        // configuration under test is still applied to hardware.
        record_health(HealthEventKind::SampleQuarantined, kInvalidCore, samples);
        len = std::min<Cycle>(cfg_.sampling_interval, end - system_.now());
        log_.push_back({EpochLogEntry::Kind::Sample, system_.now(), len, current_});
        sample = run_span(len);
        if (sample.any_implausible) {
          // Still implausible: give up on the measurement (its corrupt
          // cores are already zeroed) rather than loop forever.
          record_health(HealthEventKind::SampleDiscarded, kInvalidCore, samples);
        }
      }
      tctx_.now = system_.now();
      if (len < cfg_.sampling_interval) {
        // End-of-run truncation: the partial interval's PMU delta is
        // not comparable to the full-interval samples the policy is
        // ranking by hm_ipc, so it must not reach report_sample().
        // Trace/metrics only — a HealthLog entry here would break the
        // fault campaign's bit-identity invariants. The run is over
        // (now == end), so nothing downstream sees the gap.
        if (metrics_ != nullptr) metrics_->count("driver.sample_partial_discarded");
        if (trace_.on()) {
          trace_.emit(obs::DegradationStep{system_.now(), tctx_.epoch,
                                           "sample_partial_discarded", kInvalidCore, len, {}});
        }
        break;
      }
      if (trace_.on()) {
        trace_.emit(obs::SampleResult{system_.now(), tctx_.epoch, samples,
                                      hm_ipc(sample.per_core), view_of(*request)});
      }
      if (metrics_ != nullptr) metrics_->count("driver.samples");
      SampleStats stats;
      stats.config = *request;
      stats.per_core = std::move(sample.per_core);
      if (!guarded([&] { policy_.report_sample(stats); }, "report_sample")) {
        watchdog_fired = true;
        break;
      }
      ++samples;
    }
    if (metrics_ != nullptr) {
      metrics_->observe("driver.samples_per_epoch", static_cast<double>(samples),
                        {0, 1, 2, 4, 8, 16, 32});
    }
    if (!watchdog_fired) {
      ResourceConfig final_cfg;
      if (guarded([&] { final_cfg = policy_.final_config(); }, "final_config")) {
        apply(final_cfg, "final");
      }
    }
    ++tctx_.epoch;
  }
}

DomainSummary EpochDriver::domain_summary() const {
  DomainSummary s;
  s.epoch = tctx_.epoch;
  s.now = system_.now();
  s.exec_counters = exec_accum_;
  s.throttle_levels = applied_throttle_;
  s.prefetch_available = prefetch_ok_;
  s.cat_available = cat_ok_;
  s.mba_available = mba_ok_;
  return s;
}

void EpochDriver::notify_membership_change(const std::vector<CoreId>& cores) {
  guarded([&] { policy_.notify_membership_change(cores); }, "notify_membership_change");
}

}  // namespace cmm::core
