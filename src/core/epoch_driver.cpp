#include "core/epoch_driver.hpp"

namespace cmm::core {

EpochDriver::EpochDriver(sim::MulticoreSystem& system, Policy& policy, const EpochConfig& cfg)
    : system_(system),
      policy_(policy),
      cfg_(cfg),
      msr_(system),
      prefetch_(msr_),
      cat_(system),
      pmu_(system) {
  exec_accum_.assign(system.num_cores(), sim::PmuCounters{});
}

void EpochDriver::apply(const ResourceConfig& cfg) {
  for (CoreId c = 0; c < cfg.prefetch_on.size(); ++c) {
    prefetch_.set_core_prefetchers(c, cfg.prefetch_on[c]);
  }
  cat_.apply(cfg.way_masks);
  current_ = cfg;
}

std::vector<sim::PmuCounters> EpochDriver::run_span(Cycle span) {
  const auto before = pmu_.read_all();
  system_.run(span);
  return hw::pmu_delta(pmu_.read_all(), before);
}

void EpochDriver::run(Cycle total_cycles) {
  if (!started_) {
    apply(policy_.initial_config(system_.num_cores(), system_.cat().llc_ways()));
    started_ = true;
  }

  const Cycle end = system_.now() + total_cycles;
  while (system_.now() < end) {
    // ---- Execution epoch ----
    const Cycle exec_len = std::min<Cycle>(cfg_.execution_epoch, end - system_.now());
    log_.push_back({EpochLogEntry::Kind::Execution, system_.now(), exec_len, current_});
    const auto epoch_delta = run_span(exec_len);
    for (CoreId c = 0; c < epoch_delta.size(); ++c) {
      auto& acc = exec_accum_[c];
      const auto& d = epoch_delta[c];
      acc.cycles += d.cycles;
      acc.instructions += d.instructions;
      acc.l2_pref_req += d.l2_pref_req;
      acc.l2_pref_miss += d.l2_pref_miss;
      acc.l2_dm_req += d.l2_dm_req;
      acc.l2_dm_miss += d.l2_dm_miss;
      acc.l3_load_miss += d.l3_load_miss;
      acc.stalls_l2_pending += d.stalls_l2_pending;
      acc.dram_demand_bytes += d.dram_demand_bytes;
      acc.dram_prefetch_bytes += d.dram_prefetch_bytes;
    }
    if (system_.now() >= end) break;

    // ---- Profiling epoch ----
    policy_.begin_profiling(epoch_delta);
    unsigned samples = 0;
    while (samples < cfg_.max_samples_per_epoch && system_.now() < end) {
      const auto request = policy_.next_sample();
      if (!request.has_value()) break;
      apply(*request);
      const Cycle len = std::min<Cycle>(cfg_.sampling_interval, end - system_.now());
      log_.push_back({EpochLogEntry::Kind::Sample, system_.now(), len, *request});
      SampleStats stats;
      stats.config = *request;
      stats.per_core = run_span(len);
      policy_.report_sample(stats);
      ++samples;
    }
    apply(policy_.final_config());
  }
}

}  // namespace cmm::core
