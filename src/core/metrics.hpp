// Table I of the paper: the seven PMU-derived metrics the CMM front-end
// uses, computed from one interval's per-core counter deltas.
//
// Zero-denominator contract: every ratio metric defines 0/0 (and x/0)
// as 0.0 rather than relying on IEEE NaN/Inf propagation. A quarantined
// sampling interval — one the EpochDriver zeroed after detecting PMU
// counter wrap or a garbage snapshot — therefore yields all-zero,
// finite metrics, which downstream consumers (detector thresholds,
// k-means, hm_ipc ranking) treat as "no evidence" instead of poisoning
// comparisons with NaN.
#pragma once

#include <vector>

#include "sim/pmu.hpp"

namespace cmm::core {

struct CoreMetrics {
  // M-1: L2->LLC traffic = L2 pref miss + L2 dm miss (requests).
  double l2_llc_traffic = 0.0;
  // M-2: fraction of that traffic that is prefetch.
  double l2_pref_miss_frac = 0.0;
  // M-3 (L2 PTR): L2 prefetch misses per second — prefetch bandwidth
  // pressure on the LLC.
  double l2_ptr = 0.0;
  // M-4 (PGA): L2 pref req / L2 dm req — prefetch generation ability.
  double pga = 0.0;
  // M-5 (L2 PMR): L2 pref miss / L2 pref req — prefetch L2 locality.
  double l2_pmr = 0.0;
  // M-6 (L2 PPM): L2 pref req / L2 dm miss — prefetches per demand miss
  // (the SPAC classification metric; kept for comparison).
  double l2_ppm = 0.0;
  // M-7 (LLC PT): approximate LLC->memory prefetch bandwidth,
  // total DRAM bytes minus L3 load misses * line size, per second.
  double llc_pt = 0.0;

  double ipc = 0.0;
  double stalls_l2_pending = 0.0;  // raw cycle count for Dunn clustering
};

/// Metrics for one core over one interval. `freq_ghz` converts cycle
/// counts into per-second rates (M-3, M-7).
CoreMetrics compute_metrics(const sim::PmuCounters& delta, double freq_ghz);

std::vector<CoreMetrics> compute_all_metrics(const std::vector<sim::PmuCounters>& deltas,
                                             double freq_ghz);

/// Harmonic mean of per-core IPCs: the paper's hm_ipc proxy for
/// 1/ANTT used to rank sampled configurations (Sec. III-B1). Any core
/// with zero IPC — including a whole-interval quarantine where every
/// delta is zero — makes the result 0.0 (never NaN), so a blinded
/// interval can never win the configuration search.
double hm_ipc(const std::vector<sim::PmuCounters>& deltas);

}  // namespace cmm::core
