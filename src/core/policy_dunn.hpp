// Reimplementation of the comparison baseline "Dunn" (Selfa et al.,
// "Application clustering policies to address system fairness with
// Intel's Cache Allocation Technology", PACT 2017), as described in the
// paper's Sec. V-B: cores are clustered by their STALLS_L2_PENDING
// counts (k chosen by the Dunn validity index), and clusters receive
// *nested, partially overlapping* way partitions — a cluster with
// higher average stalls gets more ways.
//
// Dunn needs no sampling intervals: it works from execution-epoch PMU
// statistics alone.
#pragma once

#include "core/policy.hpp"

namespace cmm::core {

class DunnPolicy final : public Policy {
 public:
  struct Options {
    unsigned k_min = 2;
    unsigned k_max = 4;
    double freq_ghz = 2.1;
  };

  DunnPolicy() = default;
  explicit DunnPolicy(const Options& opts) : opts_(opts) {}

  std::string_view name() const noexcept override { return "dunn"; }

  ResourceConfig initial_config(unsigned cores, unsigned ways) override;
  void begin_profiling(const std::vector<sim::PmuCounters>& epoch_delta) override;
  std::optional<ResourceConfig> next_sample() override { return std::nullopt; }
  void report_sample(const SampleStats&) override {}
  ResourceConfig final_config() override { return current_; }

 private:
  Options opts_;
  unsigned cores_ = 0;
  unsigned ways_ = 0;
  ResourceConfig current_;
};

/// The nested-mask construction, exposed for CMM's empty-Agg fallback
/// and for tests: cluster assignment (ascending by stalls) -> per-core
/// masks where cluster i gets the low w_i ways, w monotone in the
/// cluster's mean stalls, and the hottest cluster the full cache.
std::vector<WayMask> dunn_nested_masks(const std::vector<unsigned>& assignment,
                                       const std::vector<double>& stalls, unsigned num_clusters,
                                       unsigned cores, unsigned ways);

/// Full Dunn allocation from epoch stalls: cluster + nested masks.
std::vector<WayMask> dunn_allocate(const std::vector<double>& stalls, unsigned cores,
                                   unsigned ways, unsigned k_min, unsigned k_max);

}  // namespace cmm::core
