// Back-end policy interface (paper Sec. III-B). The EpochDriver runs
// the Fig. 4 schedule: after every execution epoch it hands the policy
// the epoch's PMU deltas, then runs the sampling intervals the policy
// requests one at a time (each with its own resource configuration),
// and finally applies the policy's chosen configuration to the next
// execution epoch.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitmask.hpp"
#include "common/types.hpp"
#include "core/detector.hpp"
#include "obs/trace.hpp"
#include "sim/pmu.hpp"

namespace cmm::core {

/// One resource allocation across the machine: per-core prefetcher
/// enable (the paper's PT treats the four prefetchers per core as one
/// unit), per-core LLC way masks (CAT), and per-core memory-bandwidth
/// throttle levels (MBA, the BP axis).
///
/// `throttle_levels` empty — the default, and what `baseline()`
/// returns — means level 0 (unregulated) on every core. PT/CP-only
/// policies never touch the field, so their configs stay bit-identical
/// to the pre-BP struct, including under the defaulted operator==.
struct ResourceConfig {
  std::vector<bool> prefetch_on;
  std::vector<WayMask> way_masks;
  std::vector<std::uint8_t> throttle_levels;

  static ResourceConfig baseline(unsigned cores, unsigned ways);
  bool operator==(const ResourceConfig&) const = default;
};

/// Result of one sampling interval.
struct SampleStats {
  ResourceConfig config;
  std::vector<sim::PmuCounters> per_core;  // deltas over the interval
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Configuration for the very first execution epoch.
  virtual ResourceConfig initial_config(unsigned cores, unsigned ways) = 0;

  /// Called at the end of an execution epoch with its PMU deltas.
  virtual void begin_profiling(const std::vector<sim::PmuCounters>& epoch_delta) = 0;

  /// Next sampling interval's configuration; nullopt ends profiling.
  virtual std::optional<ResourceConfig> next_sample() = 0;

  /// Stats of the interval just issued by next_sample().
  virtual void report_sample(const SampleStats& stats) = 0;

  /// Configuration for the next execution epoch.
  virtual ResourceConfig final_config() = 0;

  /// Degradation notification from the driver: a knob flipped to
  /// unavailable after a persistent hardware fault (and stays so for
  /// the rest of the run). Policies may shrink their search to the
  /// remaining resources — the default ignores it, which is safe
  /// because the driver stops forwarding configurations for the dead
  /// knob to hardware anyway.
  virtual void notify_degraded(bool prefetch_available, bool cat_available) {
    (void)prefetch_available;
    (void)cat_available;
  }

  /// Three-axis variant the driver actually calls; the default forwards
  /// to the two-axis overload so pre-BP policies keep working unchanged
  /// (they never produce throttle levels, so a dead MBA knob cannot
  /// affect them anyway).
  virtual void notify_degraded(bool prefetch_available, bool cat_available,
                               bool mba_available) {
    (void)mba_available;
    notify_degraded(prefetch_available, cat_available);
  }

  /// Membership notification from the driver: the tenants on `cores`
  /// changed underneath the policy (live migration or hotplug churn by
  /// the fleet coordinator). Measurements already taken this profiling
  /// epoch straddle two different programs on those cores, so policies
  /// with in-flight search state should discard it. The default
  /// ignores the event — safe for stateless-per-epoch policies, whose
  /// next begin_profiling() starts from fresh deltas anyway.
  virtual void notify_membership_change(const std::vector<CoreId>& cores) { (void)cores; }

  /// Observability wiring from the EpochDriver: the handle shares the
  /// driver's sink and time stamps so policy-side decisions (detector
  /// verdicts) land in the same event stream. Default handle is off.
  void set_trace(obs::Trace trace) noexcept { trace_ = trace; }

 protected:
  obs::Trace trace_{};
};

// ---------------------------------------------------------------------
// Shared helpers for back-end implementations.

/// The paper's partition-size rule: a partition holding `n` cores gets
/// round(scale * n) ways (paper: scale = 1.5, determined
/// experimentally), clamped to [1, total_ways - 1] so the neutral cores
/// always keep at least one way of head room.
unsigned partition_ways_for(unsigned n_cores, unsigned total_ways, double scale = 1.5);

/// Objective used to rank sampled configurations. The paper uses the
/// harmonic mean of core IPCs (an ANTT proxy); the arithmetic-sum
/// alternative optimises raw throughput and ignores fairness — exposed
/// for the ablation bench.
enum class SampleObjective : std::uint8_t { HmIpc, SumIpc };

/// Evaluate one sampling interval under the chosen objective.
double sample_objective_value(SampleObjective objective,
                              const std::vector<sim::PmuCounters>& deltas);

/// All 2^n on/off combinations over `n` entities, all-on first,
/// all-off second, then the mixed ones — so the two probe intervals
/// the detection needs double as search candidates.
std::vector<std::vector<bool>> throttle_combinations(unsigned n);

/// Group Agg cores by L2 PTR via 1-D k-means into at most `max_groups`
/// groups (paper: group-level throttling for large Agg sets). Returns
/// group index per agg_set member.
std::vector<unsigned> group_by_ptr(const std::vector<CoreId>& agg_set,
                                   const std::vector<CoreMetrics>& metrics, unsigned max_groups);

}  // namespace cmm::core
