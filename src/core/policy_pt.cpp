#include "core/policy_pt.hpp"

#include <algorithm>

#include "core/metrics.hpp"

namespace cmm::core {

ResourceConfig PtPolicy::initial_config(unsigned cores, unsigned ways) {
  cores_ = cores;
  ways_ = ways;
  current_ = ResourceConfig::baseline(cores, ways);
  return current_;
}

void PtPolicy::begin_profiling(const std::vector<sim::PmuCounters>&) {
  // Detection runs on interval-0 stats (prefetchers all on), not on the
  // execution epoch, whose configuration may have had prefetchers off.
  agg_set_.clear();
  groups_.clear();
  combos_.clear();
  sample_hm_.clear();
  ipc_on_.assign(cores_, 0.0);
  ipc_off_.assign(cores_, 0.0);
  next_combo_ = 0;
  num_groups_ = 0;
  profiling_ = true;
}

ResourceConfig PtPolicy::combo_config(const std::vector<bool>& combo) const {
  ResourceConfig cfg = ResourceConfig::baseline(cores_, ways_);
  for (std::size_t i = 0; i < agg_set_.size(); ++i) {
    cfg.prefetch_on[agg_set_[i]] = combo.at(groups_[i]);
  }
  return cfg;
}

std::optional<ResourceConfig> PtPolicy::next_sample() {
  if (!profiling_) return std::nullopt;

  if (sample_hm_.empty()) {
    // Interval 0: everything on.
    return ResourceConfig::baseline(cores_, ways_);
  }
  if (combos_.empty()) return std::nullopt;  // empty Agg set: done after probe
  if (next_combo_ >= combos_.size()) return std::nullopt;
  return combo_config(combos_[next_combo_]);
}

void PtPolicy::report_sample(const SampleStats& stats) {
  const double hm = sample_objective_value(opts_.objective, stats.per_core);

  if (sample_hm_.empty()) {
    // Interval 0 results: run detection, build the search space.
    const auto metrics = compute_all_metrics(stats.per_core, opts_.detector.freq_ghz);
    agg_set_ = detect_aggressive(metrics, opts_.detector, trace_);
    for (CoreId c = 0; c < cores_; ++c) ipc_on_[c] = stats.per_core[c].ipc();

    if (!agg_set_.empty()) {
      if (agg_set_.size() <= opts_.max_exhaustive) {
        groups_.resize(agg_set_.size());
        for (unsigned i = 0; i < groups_.size(); ++i) groups_[i] = i;
        num_groups_ = static_cast<unsigned>(agg_set_.size());
      } else {
        groups_ = group_by_ptr(agg_set_, metrics, opts_.max_groups);
        num_groups_ = *std::max_element(groups_.begin(), groups_.end()) + 1;
      }
      combos_ = throttle_combinations(num_groups_);
      // Interval 0 already measured combo 0 (all on).
      next_combo_ = 1;
    }
    sample_hm_.push_back(hm);
    return;
  }

  if (sample_hm_.size() == 1) {
    // Interval 1 (all Agg prefetchers off): friendliness probe.
    for (CoreId c = 0; c < cores_; ++c) ipc_off_[c] = stats.per_core[c].ipc();
  }
  sample_hm_.push_back(hm);
  ++next_combo_;
}

ResourceConfig PtPolicy::final_config() {
  profiling_ = false;
  if (agg_set_.empty() || combos_.empty() || sample_hm_.empty()) {
    current_ = ResourceConfig::baseline(cores_, ways_);
    return current_;
  }
  // sample_hm_[k] corresponds to combos_[k] (interval 0 == combo 0).
  const std::size_t measured = std::min(sample_hm_.size(), combos_.size());
  std::size_t best = 0;
  for (std::size_t k = 1; k < measured; ++k) {
    if (sample_hm_[k] > sample_hm_[best]) best = k;
  }
  current_ = combo_config(combos_[best]);
  return current_;
}

}  // namespace cmm::core
