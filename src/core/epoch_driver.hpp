// EpochDriver: the paper's Fig. 4 execution/sampling schedule, bound to
// the hardware-abstraction layer. Execution is divided into execution
// epochs, each followed by a profiling epoch made of short sampling
// intervals (paper defaults: 5 G-cycle epochs, 100 M-cycle samples, a
// 50:1 ratio — the simulator default keeps the ratio at a smaller
// scale, which the paper reports is equally effective).
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "hw/cat_controller.hpp"
#include "hw/msr_device.hpp"
#include "hw/pmu_reader.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::core {

struct EpochConfig {
  Cycle execution_epoch = 2'000'000;
  Cycle sampling_interval = 40'000;
  unsigned max_samples_per_epoch = 24;  // safety bound on policy requests
};

/// One line of the Fig. 4 timeline, for tests and the fig04 bench.
struct EpochLogEntry {
  enum class Kind : std::uint8_t { Execution, Sample } kind = Kind::Execution;
  Cycle start = 0;
  Cycle length = 0;
  ResourceConfig config;
};

class EpochDriver {
 public:
  EpochDriver(sim::MulticoreSystem& system, Policy& policy, const EpochConfig& cfg = {});

  /// Run `total_cycles` of simulated time under the schedule. Can be
  /// called repeatedly; state carries over.
  void run(Cycle total_cycles);

  const std::vector<EpochLogEntry>& log() const noexcept { return log_; }

  /// Counters accumulated over execution epochs only (the paper
  /// excludes profiling intervals from reported results; with a 50:1
  /// ratio the distinction is small but we keep it exact).
  const std::vector<sim::PmuCounters>& execution_counters() const noexcept { return exec_accum_; }

 private:
  void apply(const ResourceConfig& cfg);
  std::vector<sim::PmuCounters> run_span(Cycle span);

  sim::MulticoreSystem& system_;
  Policy& policy_;
  EpochConfig cfg_;

  hw::SimMsrDevice msr_;
  hw::PrefetchControl prefetch_;
  hw::SimCatController cat_;
  hw::SimPmuReader pmu_;

  bool started_ = false;
  ResourceConfig current_;  // config most recently applied to hardware
  std::vector<EpochLogEntry> log_;
  std::vector<sim::PmuCounters> exec_accum_;
};

}  // namespace cmm::core
