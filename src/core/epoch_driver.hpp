// EpochDriver: the paper's Fig. 4 execution/sampling schedule, bound to
// the hardware-abstraction layer. Execution is divided into execution
// epochs, each followed by a profiling epoch made of short sampling
// intervals (paper defaults: 5 G-cycle epochs, 100 M-cycle samples, a
// 50:1 ratio — the simulator default keeps the ratio at a smaller
// scale, which the paper reports is equally effective).
//
// The driver is also the fault boundary of the controller: every HAL
// call is wrapped in a bounded RetryPolicy, and unrecoverable failures
// walk a graceful-degradation ladder instead of killing the loop:
//
//   implausible PMU delta (wrap/garbage)  -> quarantine + re-run the
//                                            sampling interval
//   prefetch MSR persistently dead (core) -> that core unmanaged; all
//                                            cores dead -> CP-only
//   CAT programming persistently dead     -> PT-only (masks pinned full)
//   any policy step throws                -> watchdog restores baseline
//                                            hardware state
//
// Every action is recorded in a deterministic HealthLog so tests and
// the fault-campaign bench can assert exactly which rung fired.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "core/health.hpp"
#include "core/policy.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "hw/cat_controller.hpp"
#include "hw/mba_controller.hpp"
#include "hw/msr_device.hpp"
#include "hw/pmu_reader.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::core {

struct EpochConfig {
  Cycle execution_epoch = 2'000'000;
  Cycle sampling_interval = 40'000;
  unsigned max_samples_per_epoch = 24;  // enforced; overruns land in the HealthLog
  RetryPolicy retry{};                  // per-HAL-call retry budget

  // ---- Recovery ladder (probation / recovery transitions) ----

  /// Every this-many execution epochs, each axis parked on a
  /// degradation rung (CorePrefetchOffline / PtOnlyFallback) is
  /// re-probed with a single-attempt write of its current state. 0
  /// (the default) disables probing entirely — the PR-2 one-way-ladder
  /// behaviour, byte-identical logs and traces.
  unsigned probe_period_epochs = 0;

  /// Hysteresis: this many *consecutive* successful probes are needed
  /// before a rung is left (prevents a flapping knob from oscillating
  /// the policy between full-CMM and fallback modes).
  unsigned probe_successes_required = 2;

  /// After a failed probe the axis's probe interval is multiplied by
  /// this (capped at 32x the base period), backing off from a knob
  /// that stays dead; any successful probe resets it to the base.
  unsigned probe_backoff_multiplier = 2;

  /// Observability hooks, both borrowed and optional. Null (the
  /// default) keeps the hot path untouched: no event is ever built,
  /// every emission site is guarded by a single pointer test.
  obs::TraceSink* sink = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Point-in-time telemetry snapshot of one domain's control loop — the
/// signal the hierarchical fleet coordinator consumes between shard
/// slices. Everything here is a pure function of the (deterministic)
/// simulation, so coordinator decisions derived from it are
/// bit-identical at any thread count. Counters are cumulative; the
/// consumer diffs consecutive snapshots for per-slice rates.
struct DomainSummary {
  std::uint64_t epoch = 0;  // execution epochs completed
  Cycle now = 0;            // simulated time of the snapshot
  std::vector<sim::PmuCounters> exec_counters;  // per-core, execution epochs only
  std::vector<std::uint8_t> throttle_levels;    // BP levels on hardware (may be empty)
  bool prefetch_available = true;
  bool cat_available = true;
  bool mba_available = true;
};

/// One line of the Fig. 4 timeline, for tests and the fig04 bench.
struct EpochLogEntry {
  enum class Kind : std::uint8_t { Execution, Sample } kind = Kind::Execution;
  Cycle start = 0;
  Cycle length = 0;
  ResourceConfig config;
};

class EpochDriver {
 public:
  EpochDriver(sim::MulticoreSystem& system, Policy& policy, const EpochConfig& cfg = {});

  /// HAL-injection constructor: drive the given devices (which must
  /// outlive the driver) instead of sim-bound ones — the seam the
  /// fault-injecting decorators and a real-hardware port plug into.
  /// Without an MbaController the driver owns a sim-bound one.
  EpochDriver(sim::MulticoreSystem& system, Policy& policy, hw::MsrDevice& msr,
              hw::PmuReader& pmu, hw::CatController& cat, const EpochConfig& cfg = {});

  /// Full three-axis injection constructor (PT + CP + BP devices).
  EpochDriver(sim::MulticoreSystem& system, Policy& policy, hw::MsrDevice& msr,
              hw::PmuReader& pmu, hw::CatController& cat, hw::MbaController& mba,
              const EpochConfig& cfg = {});

  /// Run `total_cycles` of simulated time under the schedule. Can be
  /// called repeatedly; state carries over.
  void run(Cycle total_cycles);

  const std::vector<EpochLogEntry>& log() const noexcept { return log_; }

  /// Counters accumulated over execution epochs only (the paper
  /// excludes profiling intervals from reported results; with a 50:1
  /// ratio the distinction is small but we keep it exact).
  const std::vector<sim::PmuCounters>& execution_counters() const noexcept { return exec_accum_; }

  /// Fault-handling record: retries, quarantines, ladder transitions,
  /// watchdog recoveries. Empty for a fault-free run.
  const HealthLog& health() const noexcept { return health_; }

  /// Degradation-ladder state: knobs still believed usable.
  bool prefetch_available() const noexcept { return prefetch_ok_; }
  bool cat_available() const noexcept { return cat_ok_; }
  bool mba_available() const noexcept { return mba_ok_; }
  bool core_prefetch_available(CoreId core) const { return core_prefetch_ok_.at(core); }

  /// Execution epochs completed so far (the trace epoch stamp).
  std::uint64_t epoch_index() const noexcept { return tctx_.epoch; }

  /// Configuration most recently applied to hardware.
  const ResourceConfig& current_config() const noexcept { return current_; }

  // ---- Service-mode hooks (used by service::ServiceDriver) ----

  /// Re-apply a configuration outside the normal schedule (tenant
  /// churn invalidates the partition the policy converged on). Emitted
  /// with apply-source "reseed".
  void reseed(const ResourceConfig& cfg) { apply(cfg, "reseed"); }

  /// Record a tenant-lifecycle / SLO event into this driver's
  /// HealthLog with the standard trace + metrics mirror.
  void record_service_event(HealthEventKind kind, CoreId core = kInvalidCore,
                            std::uint64_t detail = 0, std::string note = {}) {
    record_health(kind, core, detail, std::move(note));
  }

  /// Cap the HealthLog ring (see HealthLog::set_capacity).
  void set_health_capacity(std::size_t n) { health_.set_capacity(n); }

  // ---- Hierarchical-coordinator hooks ----

  /// Telemetry snapshot for the fleet coordinator (cumulative exec
  /// counters + BP levels + axis availability, stamped with sim time).
  DomainSummary domain_summary() const;

  /// The tenants on `cores` changed underneath the driver (live
  /// migration). Forwarded to the policy under the watchdog so a
  /// throwing policy degrades instead of killing the coordinator loop.
  void notify_membership_change(const std::vector<CoreId>& cores);

  /// Trace handle stamped with this driver's simulated time / epoch,
  /// for the service layer's typed tenant events.
  const obs::Trace& trace() const noexcept { return trace_; }

 private:
  /// One measured span: sanitized per-core deltas plus plausibility
  /// flags (implausible cores have their delta zeroed).
  struct SpanDelta {
    std::vector<sim::PmuCounters> per_core;
    bool any_implausible = false;
  };

  void init();
  RetryPolicy logging_retry(RetryPolicy base);

  /// HealthLog entry plus its observability mirror: a DegradationStep
  /// trace event and a `health.<kind>` counter. The HealthLog content
  /// stays byte-identical to the untraced build.
  void record_health(HealthEventKind kind, CoreId core = kInvalidCore,
                     std::uint64_t detail = 0, std::string note = {});

  void apply(const ResourceConfig& cfg, std::string_view source);
  SpanDelta run_span(Cycle span);
  std::vector<sim::PmuCounters> read_counters();
  bool plausible_snapshot(const std::vector<sim::PmuCounters>& snapshot) const;

  /// Run one policy step under the watchdog: on any exception, restore
  /// baseline hardware state, log, and return false.
  template <typename Step>
  bool guarded(Step&& step, std::string_view what) {
    try {
      step();
      return true;
    } catch (const std::exception& e) {
      watchdog_restore(std::string(what) + ": " + e.what());
      return false;
    } catch (...) {
      watchdog_restore(std::string(what) + ": unknown exception");
      return false;
    }
  }

  void watchdog_restore(const std::string& cause);
  void mark_core_prefetch_dead(CoreId core, const char* what);
  void mark_cat_dead(const char* what);
  void mark_mba_dead(const char* what);
  void check_management_lost();
  void notify_policy_degraded() noexcept;

  // ---- Recovery ladder ----

  /// Per-axis probation bookkeeping. Armed when the axis's rung is
  /// entered; `next_epoch`/`interval` implement the failure backoff,
  /// `streak` the consecutive-success hysteresis.
  struct ProbeState {
    unsigned streak = 0;
    std::uint64_t interval = 0;
    std::uint64_t next_epoch = 0;
  };

  void arm_probe(ProbeState& ps);
  void run_recovery_probes();

  sim::MulticoreSystem& system_;
  Policy& policy_;
  EpochConfig cfg_;

  // Owned sim-bound HAL (null when the injection constructor is used;
  // the MBA device is owned unless the three-axis overload supplies it).
  std::unique_ptr<hw::SimMsrDevice> owned_msr_;
  std::unique_ptr<hw::SimCatController> owned_cat_;
  std::unique_ptr<hw::SimPmuReader> owned_pmu_;
  std::unique_ptr<hw::SimMbaController> owned_mba_;
  hw::MsrDevice* msr_;
  hw::CatController* cat_;
  hw::PmuReader* pmu_;
  hw::MbaController* mba_;
  RetryPolicy retry_;  // cfg_.retry with the HealthLog-recording hook
  hw::PrefetchControl prefetch_;
  hw::PrefetchControl probe_prefetch_;  // single-attempt: probes never burn retries

  // Observability: the context is the driver-owned stamp (sim time +
  // epoch index) every event carries; trace_ strips a disabled sink at
  // construction so emission guards cost one pointer compare.
  obs::TraceContext tctx_;
  obs::Trace trace_;
  obs::MetricsRegistry* metrics_ = nullptr;

  bool started_ = false;
  ResourceConfig current_;  // config most recently applied to hardware
  std::vector<EpochLogEntry> log_;
  std::vector<sim::PmuCounters> exec_accum_;

  HealthLog health_;
  bool prefetch_ok_ = true;
  bool cat_ok_ = true;
  bool mba_ok_ = true;
  bool management_lost_logged_ = false;
  std::vector<bool> core_prefetch_ok_;  // per-core prefetch MSR usable
  std::vector<bool> applied_prefetch_;  // prefetch state actually on hardware
  std::vector<std::uint8_t> applied_throttle_;  // MBA levels on hardware
  std::vector<sim::PmuCounters> last_snapshot_;  // last successful PMU read
  std::vector<ProbeState> prefetch_probe_;  // per-core probation clocks
  ProbeState cat_probe_;
  ProbeState mba_probe_;
};

}  // namespace cmm::core
