#include "core/fdp.hpp"

#include <algorithm>

namespace cmm::core {

const std::vector<unsigned>& FdpController::ladder() {
  static const std::vector<unsigned> kLadder{1, 2, 4, 8, 16};
  return kLadder;
}

FdpController::FdpController(sim::MulticoreSystem& system)
    : FdpController(system, Options{}) {}

FdpController::FdpController(sim::MulticoreSystem& system, const Options& opts)
    : system_(system),
      opts_(opts),
      ladder_pos_(system.num_cores(), 2),  // start mid-ladder (degree 4)
      snapshots_(system.num_cores()),
      last_accuracy_(system.num_cores(), 0.0),
      until_next_(opts.interval) {
  for (CoreId c = 0; c < system_.num_cores(); ++c) {
    if (auto* streamer = system_.core(c).find_streamer())
      streamer->set_degree(ladder()[ladder_pos_[c]]);
    const auto& stats = system_.core(c).l2().stats();
    snapshots_[c] = {stats.prefetched_lines_used, stats.prefetched_lines_evicted_unused};
  }
}

unsigned FdpController::degree(CoreId core) const {
  return ladder()[ladder_pos_.at(core)];
}

void FdpController::adjust() {
  for (CoreId c = 0; c < system_.num_cores(); ++c) {
    const auto& stats = system_.core(c).l2().stats();
    const std::uint64_t used = stats.prefetched_lines_used - snapshots_[c].used;
    const std::uint64_t wasted =
        stats.prefetched_lines_evicted_unused - snapshots_[c].evicted_unused;
    snapshots_[c] = {stats.prefetched_lines_used, stats.prefetched_lines_evicted_unused};

    const std::uint64_t total = used + wasted;
    if (total < 16) continue;  // not enough evidence this interval
    const double accuracy = static_cast<double>(used) / static_cast<double>(total);
    last_accuracy_[c] = accuracy;

    if (accuracy >= opts_.high_accuracy) {
      ladder_pos_[c] = std::min<unsigned>(ladder_pos_[c] + 1,
                                          static_cast<unsigned>(ladder().size()) - 1);
    } else if (accuracy < opts_.low_accuracy) {
      ladder_pos_[c] = ladder_pos_[c] > 0 ? ladder_pos_[c] - 1 : 0;
    }
    if (auto* streamer = system_.core(c).find_streamer())
      streamer->set_degree(ladder()[ladder_pos_[c]]);
  }
}

void FdpController::run(Cycle cycles) {
  Cycle remaining = cycles;
  while (remaining > 0) {
    const Cycle step = std::min(remaining, until_next_);
    system_.run(step);
    remaining -= step;
    until_next_ -= step;
    if (until_next_ == 0) {
      adjust();
      until_next_ = opts_.interval;
    }
  }
}

}  // namespace cmm::core
