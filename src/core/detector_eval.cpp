#include "core/detector_eval.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "core/metrics.hpp"
#include "hw/pmu_reader.hpp"
#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::core {

StressOutcome evaluate_stress_scenario(const workloads::StressScenario& scenario,
                                       const sim::MachineConfig& machine,
                                       const DetectorConfig& det, std::uint64_t seed,
                                       Cycle warmup_cycles, Cycle measure_cycles) {
  sim::MachineConfig cfg = machine;
  cfg.core_prefetchers = scenario.core_prefetchers;

  const auto mixes = workloads::make_mixes(scenario.category, 1, cfg.num_cores, seed);
  const auto& mix = mixes.front();

  sim::MulticoreSystem system(cfg);
  workloads::attach_mix(system, mix, seed);
  system.run(warmup_cycles);
  const auto before = system.pmu().snapshot();
  system.run(measure_cycles);
  const auto metrics =
      compute_all_metrics(hw::pmu_delta(system.pmu().snapshot(), before), cfg.freq_ghz);

  StressOutcome out;
  out.scenario = scenario.name;
  out.category = std::string(to_string(scenario.category));
  out.profile = scenario.profile;
  out.benchmarks = mix.benchmarks;
  out.flagged = detect_aggressive(metrics, det);
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    if (workloads::spec_by_name(mix.benchmarks[c]).expect_prefetch_aggressive)
      out.expected.push_back(c);
  }
  for (CoreId c = 0; c < cfg.num_cores; ++c) {
    const bool flagged = std::find(out.flagged.begin(), out.flagged.end(), c) != out.flagged.end();
    const bool expected =
        std::find(out.expected.begin(), out.expected.end(), c) != out.expected.end();
    if (expected && flagged) ++out.tp;
    if (expected && !flagged) ++out.fn;
    if (!expected && flagged) ++out.fp;
    if (!expected && !flagged) ++out.tn;
  }
  return out;
}

std::vector<StressOutcome> run_stress_suite(const sim::MachineConfig& machine,
                                            const DetectorConfig& det, std::uint64_t seed,
                                            Cycle warmup_cycles, Cycle measure_cycles) {
  std::vector<StressOutcome> outcomes;
  for (const auto& scenario : workloads::make_stress_scenarios(machine.num_cores)) {
    outcomes.push_back(
        evaluate_stress_scenario(scenario, machine, det, seed, warmup_cycles, measure_cycles));
  }
  return outcomes;
}

namespace {
void append_core_list(std::ostringstream& os, const std::vector<CoreId>& cores) {
  os << '[';
  for (std::size_t i = 0; i < cores.size(); ++i) os << (i ? "," : "") << cores[i];
  os << ']';
}
}  // namespace

std::string misclassification_json(const std::vector<StressOutcome>& outcomes) {
  std::ostringstream os;
  unsigned tp = 0, fn = 0, fp = 0, tn = 0;
  std::map<std::string, std::array<unsigned, 4>> by_profile;  // ordered => stable output

  os << "{\n  \"detector_stress\": {\n    \"scenarios\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    os << "      {\"name\": \"" << o.scenario << "\", \"category\": \"" << o.category
       << "\", \"profile\": \"" << o.profile << "\", \"benchmarks\": [";
    for (std::size_t b = 0; b < o.benchmarks.size(); ++b)
      os << (b ? "," : "") << '"' << o.benchmarks[b] << '"';
    os << "], \"flagged\": ";
    append_core_list(os, o.flagged);
    os << ", \"expected\": ";
    append_core_list(os, o.expected);
    os << ", \"tp\": " << o.tp << ", \"fn\": " << o.fn << ", \"fp\": " << o.fp
       << ", \"tn\": " << o.tn << '}' << (i + 1 < outcomes.size() ? "," : "") << '\n';
    tp += o.tp;
    fn += o.fn;
    fp += o.fp;
    tn += o.tn;
    auto& prof = by_profile[o.profile];
    prof[0] += o.tp;
    prof[1] += o.fn;
    prof[2] += o.fp;
    prof[3] += o.tn;
  }
  os << "    ],\n    \"by_profile\": {";
  bool first = true;
  for (const auto& [name, m] : by_profile) {
    os << (first ? "" : ", ") << '"' << name << "\": {\"tp\": " << m[0] << ", \"fn\": " << m[1]
       << ", \"fp\": " << m[2] << ", \"tn\": " << m[3] << '}';
    first = false;
  }
  os << "},\n    \"totals\": {\"tp\": " << tp << ", \"fn\": " << fn << ", \"fp\": " << fp
     << ", \"tn\": " << tn << "}\n  }\n}\n";
  return std::move(os).str();
}

}  // namespace cmm::core
