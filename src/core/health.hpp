// Structured record of every fault-handling action the EpochDriver
// takes: retries, PMU quarantines, degradation-ladder transitions and
// watchdog recoveries. The log is the currency of the robustness
// tests and the fault-campaign bench — they assert exactly which rung
// of the ladder fired — and it is fully deterministic: the same
// FaultPlan seed yields an identical event sequence on every run.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace cmm::core {

enum class HealthEventKind : std::uint8_t {
  HwRetry,              // transient HAL fault; the call was re-attempted
  PmuWrapSaturated,     // a counter read lower than its previous snapshot
  PmuGarbageDetected,   // implausible delta (snapshot corruption)
  PmuSnapshotReread,    // implausible snapshot replaced by a fresh read
  SampleQuarantined,    // sampling interval discarded and re-run
  SampleDiscarded,      // re-run also implausible; zeroed stats reported
  PmuReadFailed,        // persistent PMU failure; zero delta substituted
  SampleCapTruncated,   // policy requested more samples than the bound
  CorePrefetchOffline,  // this core's prefetch MSR persistently failed
  CpOnlyFallback,       // prefetch control lost machine-wide -> CP-only
  PtOnlyFallback,       // CAT programming lost -> PT-only
  ManagementLost,       // both knobs lost; baseline from here on
  WatchdogRestore,      // a policy step threw; baseline state restored
  // ---- Recovery ladder (bidirectional transitions) ----
  RecoveryProbe,        // probation re-probe of a faulted axis (detail=ok)
  CorePrefetchRestored, // a per-core prefetch MSR works again
  CpOnlyRecovered,      // prefetch axis healed -> CP-only rung left
  PtOnlyRecovered,      // CAT axis healed -> PT-only rung left
  // ---- Service-mode tenant lifecycle ----
  TenantAttach,         // tenant admitted and installed on a core
  TenantDetach,         // tenant departed; core hotplugged out
  TenantRejected,       // admission denied (projected pressure breach)
  TenantQueued,         // admission deferred; tenant waits for headroom
  SloBreach,            // a tenant's epoch IPC fell under its SLO floor
  // ---- BP axis (memory-bandwidth regulation) ----
  MbaOffline,           // MBA programming lost -> PT+CP-only
  MbaRestored,          // MBA axis healed; BP regulation resumes
};

inline constexpr std::size_t kNumHealthEventKinds =
    static_cast<std::size_t>(HealthEventKind::MbaRestored) + 1;

std::string_view to_string(HealthEventKind kind) noexcept;

struct HealthEvent {
  HealthEventKind kind{};
  Cycle time = 0;             // simulated time of the event
  CoreId core = kInvalidCore; // affected core, if per-core
  std::uint64_t detail = 0;   // kind-specific: attempt count, success flag...
  std::string note;           // human-readable cause (deterministic text)

  bool operator==(const HealthEvent&) const = default;
};

/// Bounded by an optional ring capacity: hour-scale service soaks emit
/// events forever, so `set_capacity(n)` keeps only the newest n events
/// while per-kind totals (count/has/summary_json) and the dropped-event
/// counter stay exact over the whole run. Capacity 0 (the default) is
/// unbounded — the PR-2 batch behaviour.
class HealthLog {
 public:
  void record(HealthEventKind kind, Cycle time, CoreId core = kInvalidCore,
              std::uint64_t detail = 0, std::string note = {}) {
    ++totals_[static_cast<std::size_t>(kind)];
    events_.push_back({kind, time, core, detail, std::move(note)});
    if (capacity_ > 0) {
      while (events_.size() > capacity_) {
        events_.pop_front();
        ++dropped_;
      }
    }
  }

  /// Retained events, oldest first (the newest `capacity` when bounded).
  const std::deque<HealthEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  /// Cap the retained ring at `n` events (0 = unbounded). Shrinking
  /// below the current size drops the oldest events immediately.
  void set_capacity(std::size_t n);
  std::size_t capacity() const noexcept { return capacity_; }
  /// Events trimmed from the ring so far (totals still include them).
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Total recorded events of `kind`, including any trimmed from the
  /// ring.
  std::size_t count(HealthEventKind kind) const noexcept {
    return static_cast<std::size_t>(totals_[static_cast<std::size_t>(kind)]);
  }
  bool has(HealthEventKind kind) const noexcept { return count(kind) > 0; }

  /// One-line {"hw_retry":N,...} summary over non-zero kinds, for the
  /// fault-campaign JSON report.
  std::string summary_json() const;

  bool operator==(const HealthLog&) const = default;

 private:
  std::deque<HealthEvent> events_;
  std::array<std::uint64_t, kNumHealthEventKinds> totals_{};
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace cmm::core
