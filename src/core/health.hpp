// Structured record of every fault-handling action the EpochDriver
// takes: retries, PMU quarantines, degradation-ladder transitions and
// watchdog recoveries. The log is the currency of the robustness
// tests and the fault-campaign bench — they assert exactly which rung
// of the ladder fired — and it is fully deterministic: the same
// FaultPlan seed yields an identical event sequence on every run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cmm::core {

enum class HealthEventKind : std::uint8_t {
  HwRetry,              // transient HAL fault; the call was re-attempted
  PmuWrapSaturated,     // a counter read lower than its previous snapshot
  PmuGarbageDetected,   // implausible delta (snapshot corruption)
  PmuSnapshotReread,    // implausible snapshot replaced by a fresh read
  SampleQuarantined,    // sampling interval discarded and re-run
  SampleDiscarded,      // re-run also implausible; zeroed stats reported
  PmuReadFailed,        // persistent PMU failure; zero delta substituted
  SampleCapTruncated,   // policy requested more samples than the bound
  CorePrefetchOffline,  // this core's prefetch MSR persistently failed
  CpOnlyFallback,       // prefetch control lost machine-wide -> CP-only
  PtOnlyFallback,       // CAT programming lost -> PT-only
  ManagementLost,       // both knobs lost; baseline from here on
  WatchdogRestore,      // a policy step threw; baseline state restored
};

std::string_view to_string(HealthEventKind kind) noexcept;

struct HealthEvent {
  HealthEventKind kind{};
  Cycle time = 0;             // simulated time of the event
  CoreId core = kInvalidCore; // affected core, if per-core
  std::uint64_t detail = 0;   // kind-specific: attempt count, success flag...
  std::string note;           // human-readable cause (deterministic text)

  bool operator==(const HealthEvent&) const = default;
};

class HealthLog {
 public:
  void record(HealthEventKind kind, Cycle time, CoreId core = kInvalidCore,
              std::uint64_t detail = 0, std::string note = {}) {
    events_.push_back({kind, time, core, detail, std::move(note)});
  }

  const std::vector<HealthEvent>& events() const noexcept { return events_; }
  bool empty() const noexcept { return events_.empty(); }

  std::size_t count(HealthEventKind kind) const noexcept;
  bool has(HealthEventKind kind) const noexcept { return count(kind) > 0; }

  /// One-line {"hw_retry":N,...} summary over non-zero kinds, for the
  /// fault-campaign JSON report.
  std::string summary_json() const;

  bool operator==(const HealthLog&) const = default;

 private:
  std::vector<HealthEvent> events_;
};

}  // namespace cmm::core
