// Fundamental value types shared by every subsystem.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace cmm {

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;

/// Simulated core clock cycles.
using Cycle = std::uint64_t;

/// Logical core index within the simulated socket.
using CoreId = std::uint32_t;

/// Synthetic instruction-pointer identifier used by the IP-stride
/// prefetcher (address streams tag each reference with the id of the
/// static "load instruction" that produced it).
using IpId = std::uint32_t;

/// Bitmask over LLC ways (bit i set => way i usable). Matches the CAT
/// capacity-bitmask register width comfortably: real CAT masks are at
/// most 20 bits on Broadwell-EP.
using WayMask = std::uint32_t;

inline constexpr CoreId kInvalidCore = std::numeric_limits<CoreId>::max();
inline constexpr Addr kLineShiftDefault = 6;  // 64-byte lines

/// Classification of a request as it moves through the hierarchy.
enum class AccessType : std::uint8_t {
  DemandLoad,
  DemandStore,
  Prefetch,
};

constexpr bool is_demand(AccessType t) noexcept {
  return t != AccessType::Prefetch;
}

}  // namespace cmm
