#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace cmm {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("CMM_THREADS"); env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { worker(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  auto future = wrapped.get_future();
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task stores exceptions in the future
  }
}

void parallel_for(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& job) {
  const std::size_t workers = std::min<std::size_t>(threads == 0 ? 1 : threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) job(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;

  const auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        job(i);
      } catch (...) {
        {
          std::lock_guard lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
        next.store(n, std::memory_order_relaxed);  // abort remaining indices
        return;
      }
    }
  };

  {
    ThreadPool pool(static_cast<unsigned>(workers));
    std::vector<std::future<void>> done;
    done.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) done.push_back(pool.submit(drain));
    for (auto& f : done) f.get();
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace cmm
