// Small, fast, deterministic PRNG (xoshiro256**). The simulator is
// single-threaded per run; every stochastic component owns its own Rng
// seeded from the run seed so results are reproducible and components
// are statistically independent.
#pragma once

#include <cstdint>
#include <array>

namespace cmm {

class Rng {
 public:
  /// Seeds the four 64-bit lanes from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Derive an independent child generator (for per-component seeding).
  Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// splitmix64 step, exposed for seeding utilities and tests.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace cmm
