// Bounded retry with deterministic backoff for HAL operations.
//
// On the paper's real deployment (E5-2620 v4, kernel module) every
// hardware knob can fail at runtime: MSR writes #GP or return EBUSY
// through /dev/cpu/<n>/msr, perf reads get interrupted, pqos rejects a
// mask while another agent reprograms CAT. Those conditions split into
// two classes:
//
//   Transient   - a bounded number of re-attempts is expected to
//                 succeed (EBUSY, EINTR, racing resctrl writers).
//   Persistent  - re-attempting is pointless (#GP on an unsupported
//                 MSR, offlined core, CAT not present); the caller must
//                 degrade instead.
//
// HwFault carries that classification; with_retry() re-attempts
// transient faults up to RetryPolicy::max_attempts with a
// deterministic exponential backoff schedule. The simulator never
// sleeps — backoff is reported to the caller in abstract units via the
// on_retry hook (a real port multiplies by a time quantum and
// clock_nanosleep()s), which keeps every run bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cmm {

enum class FaultClass : std::uint8_t { Transient, Persistent };

constexpr std::string_view to_string(FaultClass c) noexcept {
  return c == FaultClass::Transient ? "transient" : "persistent";
}

/// Hardware-operation failure with a retry classification. The
/// fault-injecting HAL decorators throw exactly this; a real-hardware
/// HAL maps errno to it (EBUSY/EINTR/EAGAIN -> Transient, everything
/// else -> Persistent).
class HwFault : public std::runtime_error {
 public:
  HwFault(FaultClass fault_class, const std::string& what)
      : std::runtime_error(what), class_(fault_class) {}

  FaultClass fault_class() const noexcept { return class_; }
  bool transient() const noexcept { return class_ == FaultClass::Transient; }

 private:
  FaultClass class_;
};

/// One re-attempt notification (observability hook: the EpochDriver
/// records these into its HealthLog).
struct RetryEvent {
  unsigned attempt = 0;        // 1-based index of the attempt that failed
  unsigned backoff_units = 0;  // deterministic backoff before the next attempt
  FaultClass fault = FaultClass::Transient;
  std::string_view what;       // message of the caught HwFault
};

struct RetryPolicy {
  unsigned max_attempts = 4;      // total attempts, including the first
  unsigned backoff_base = 1;      // units after the first failure
  unsigned backoff_multiplier = 2;
  std::function<void(const RetryEvent&)> on_retry;  // called before each re-attempt

  /// Backoff after `failed_attempts` consecutive failures:
  /// base * multiplier^(failed_attempts - 1). Pure and overflow-capped,
  /// so the schedule is identical on every run.
  unsigned backoff_units(unsigned failed_attempts) const noexcept;
};

/// Run `op`, re-attempting on transient HwFault up to
/// policy.max_attempts total attempts. Persistent faults and transient
/// faults that exhaust the budget propagate to the caller; any other
/// exception type (a programming error such as std::invalid_argument)
/// is never retried.
template <typename Op>
auto with_retry(const RetryPolicy& policy, Op&& op) -> decltype(op()) {
  for (unsigned attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (const HwFault& fault) {
      if (!fault.transient() || attempt >= policy.max_attempts) throw;
      if (policy.on_retry) {
        policy.on_retry({attempt, policy.backoff_units(attempt), fault.fault_class(),
                         std::string_view(fault.what())});
      }
    }
  }
}

}  // namespace cmm
