// Minimal threaded executor for embarrassingly-parallel experiment
// batches. Each job must own all of its mutable state (system, policy,
// RNG stream); the pool only distributes indices, so results are
// bit-identical to the serial path at any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cmm {

/// Worker count to use: `requested` if nonzero, else the CMM_THREADS
/// environment variable, else std::thread::hardware_concurrency()
/// (minimum 1).
unsigned resolve_threads(unsigned requested = 0);

/// Fixed-size pool of workers draining a shared FIFO task queue.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task; the future reports completion and rethrows the
  /// task's exception, if any.
  std::future<void> submit(std::function<void()> task);

 private:
  void worker();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Run job(0..n-1), each index exactly once, on up to `threads` workers
/// pulling indices from a shared counter. threads <= 1 (or n <= 1)
/// executes inline in index order — the serial reference path. The
/// first job exception aborts the remaining indices and is rethrown
/// after all workers have drained.
void parallel_for(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& job);

}  // namespace cmm
