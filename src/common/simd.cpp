#include "common/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace cmm::simd {
namespace {

bool cpu_supports(Backend b) noexcept {
  switch (b) {
    case Backend::Scalar:
      return true;
    case Backend::Sse2:
#if CMM_SIMD_X86
      return true;  // x86-64 baseline ISA
#else
      return false;
#endif
    case Backend::Avx2:
#if CMM_SIMD_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::Neon:
#if CMM_SIMD_NEON
      return true;  // aarch64 baseline ISA
#else
      return false;
#endif
  }
  return false;
}

Backend best_backend() noexcept {
#if CMM_SIMD_X86
  if (cpu_supports(Backend::Avx2)) return Backend::Avx2;
  return Backend::Sse2;
#elif CMM_SIMD_NEON
  return Backend::Neon;
#else
  return Backend::Scalar;
#endif
}

Backend resolve_startup_backend() noexcept {
  if (const char* force = std::getenv("CMM_SIMD_FORCE"); force != nullptr && *force != '\0') {
    Backend want = Backend::Scalar;
    bool known = true;
    if (std::strcmp(force, "scalar") == 0) {
      want = Backend::Scalar;
    } else if (std::strcmp(force, "sse2") == 0) {
      want = Backend::Sse2;
    } else if (std::strcmp(force, "avx2") == 0) {
      want = Backend::Avx2;
    } else if (std::strcmp(force, "neon") == 0) {
      want = Backend::Neon;
    } else {
      known = false;  // unknown value (incl. "auto"): fall through to detection
    }
    if (known && cpu_supports(want)) return want;
  }
  return best_backend();
}

}  // namespace

namespace detail {
Backend g_backend = resolve_startup_backend();
}  // namespace detail

bool backend_supported(Backend b) noexcept { return cpu_supports(b); }

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::Scalar: return "scalar";
    case Backend::Sse2: return "sse2";
    case Backend::Avx2: return "avx2";
    case Backend::Neon: return "neon";
  }
  return "unknown";
}

bool force_backend(Backend b) noexcept {
  if (!cpu_supports(b)) return false;
  detail::g_backend = b;
  return true;
}

void reset_backend() noexcept { detail::g_backend = resolve_startup_backend(); }

}  // namespace cmm::simd
