#include "common/rng.hpp"

namespace cmm {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift mapping: fast and bias-free enough for
  // workload synthesis. Falls back to modulo where the compiler has no
  // 128-bit integers.
#ifdef __SIZEOF_INT128__
  __extension__ using u128 = unsigned __int128;
  const u128 m = static_cast<u128>(next()) * static_cast<u128>(bound);
  return static_cast<std::uint64_t>(m >> 64);
#else
  return next() % bound;
#endif
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() noexcept { return Rng(next()); }

}  // namespace cmm
