// Vectorized hot-path kernels for the SoA cache: tag compare (probe)
// and CAT-masked LRU victim selection (fill). The SoA layout from the
// kernel rewrite (contiguous per-set tag slices, invalid ways holding
// the ~0 sentinel) was laid out for exactly this.
//
// Dispatch contract (see DESIGN.md "SIMD probe kernel"):
//  - Every backend computes the *same function*, bit for bit:
//      find_tag     -> lowest way whose tag equals the needle, or -1.
//                      Tags are unique within a set (at most one way
//                      holds a given line) and invalid ways hold the
//                      kNoTag sentinel (~0), which fill() asserts can
//                      never arrive as a real line address — so a
//                      match-any scan is a find-lowest scan, and the
//                      block-ordered early exit preserves
//                      lowest-way-wins exactly.
//      argmin_tick  -> lowest way among the mask's set bits holding the
//                      minimal LRU tick (strict-< scan in ascending way
//                      order, the scalar victim loop's semantics).
//    Backend choice can therefore never change simulation results,
//    only wall-clock — the differential suite (test_simd.cpp) pins it.
//  - The backend is selected once at startup: compile-time gate
//    (CMM_SIMD CMake option -> CMM_SIMD_ENABLED), then a runtime
//    capability check (cpuid on x86), then the CMM_SIMD_FORCE
//    environment variable ("scalar"|"sse2"|"avx2"|"neon"|"auto") and
//    force_backend() for tests. Hot-path dispatch is one load + one
//    well-predicted branch; AVX2 code is compiled via per-function
//    target attributes so the rest of the binary keeps the default ISA.
//  - Not thread-safe against force_backend(): the cache hot path reads
//    the backend without synchronization, so tests toggle it only
//    around single-threaded sections (the harness never toggles).
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hpp"

#ifndef CMM_SIMD_ENABLED
#define CMM_SIMD_ENABLED 1
#endif

#if CMM_SIMD_ENABLED && (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define CMM_SIMD_X86 1
#include <immintrin.h>
#elif CMM_SIMD_ENABLED && defined(__aarch64__) && defined(__GNUC__)
#define CMM_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace cmm::simd {

enum class Backend : std::uint8_t { Scalar, Sse2, Avx2, Neon };

/// True when this build + this CPU can execute `b`.
bool backend_supported(Backend b) noexcept;

/// Human-readable backend name ("scalar", "sse2", "avx2", "neon").
const char* backend_name(Backend b) noexcept;

/// Force the dispatch to `b` (tests: forced-fallback coverage on AVX2
/// runners, scalar-vs-SIMD differentials). Returns false — leaving the
/// active backend unchanged — when `b` is not supported here.
bool force_backend(Backend b) noexcept;

/// Re-resolve the startup default (capability check + CMM_SIMD_FORCE).
void reset_backend() noexcept;

namespace detail {

extern Backend g_backend;  // resolved once at startup; see simd.cpp

inline int find_tag_scalar(const Addr* tags, std::uint32_t ways, Addr needle) noexcept {
  for (std::uint32_t w = 0; w < ways; ++w) {
    if (tags[w] == needle) return static_cast<int>(w);
  }
  return -1;
}

inline std::uint32_t argmin_tick_scalar(const std::uint64_t* ticks, WayMask mask) noexcept {
  std::uint32_t best_way = 0;
  std::uint64_t best = ~std::uint64_t{0};
  for (WayMask m = mask; m != 0; m &= m - 1) {
    const auto w = static_cast<std::uint32_t>(std::countr_zero(m));
    if (ticks[w] < best) {
      best = ticks[w];
      best_way = w;
    }
  }
  return best_way;
}

#if CMM_SIMD_X86

// SSE2 is the x86-64 baseline ISA: no target attribute, no runtime
// check needed. SSE2 has no 64-bit lane compare, so equality is two
// 32-bit half-compares ANDed pairwise.
inline int find_tag_sse2(const Addr* tags, std::uint32_t ways, Addr needle) noexcept {
  const __m128i n = _mm_set1_epi64x(static_cast<long long>(needle));
  std::uint32_t w = 0;
  for (; w + 2 <= ways; w += 2) {
    const __m128i t = _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags + w));
    const __m128i eq32 = _mm_cmpeq_epi32(t, n);
    const __m128i swapped = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1));
    const int m = _mm_movemask_pd(_mm_castsi128_pd(_mm_and_si128(eq32, swapped)));
    if (m != 0) return static_cast<int>(w + std::countr_zero(static_cast<unsigned>(m)));
  }
  if (w < ways && tags[w] == needle) return static_cast<int>(w);
  return -1;
}

__attribute__((target("avx2"))) inline int find_tag_avx2(const Addr* tags, std::uint32_t ways,
                                                         Addr needle) noexcept {
  const __m256i n = _mm256_set1_epi64x(static_cast<long long>(needle));
  std::uint32_t w = 0;
  // 8 ways per iteration: the two compares are independent (good ILP)
  // and share one branch. Blocks ascend and countr_zero picks the
  // lowest set bit of the combined mask, so lowest-way-wins holds.
  for (; w + 8 <= ways; w += 8) {
    const __m256i t0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags + w));
    const __m256i t1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags + w + 4));
    const unsigned m =
        static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(t0, n)))) |
        (static_cast<unsigned>(
             _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(t1, n))))
         << 4);
    if (m != 0) return static_cast<int>(w + std::countr_zero(m));
  }
  if (w + 4 <= ways) {
    const __m256i t = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags + w));
    const int m = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(t, n)));
    if (m != 0) return static_cast<int>(w + std::countr_zero(static_cast<unsigned>(m)));
    w += 4;
  }
  for (; w < ways; ++w) {
    if (tags[w] == needle) return static_cast<int>(w);
  }
  return -1;
}

// Per-4-bit-nibble lane masks: all-ones in lane i when mask bit i set.
// Indexed by the mask nibble covering the current 4-way block.
struct alignas(32) LaneMaskTable {
  std::uint64_t rows[16][4];
  constexpr LaneMaskTable() : rows{} {
    for (unsigned nib = 0; nib < 16; ++nib) {
      for (unsigned lane = 0; lane < 4; ++lane) {
        rows[nib][lane] = ((nib >> lane) & 1u) ? ~std::uint64_t{0} : 0;
      }
    }
  }
};
inline constexpr LaneMaskTable kLaneMasks{};

// AVX2 has no unsigned 64-bit min, so the scan runs in the "biased"
// domain (x ^ 0x8000...0 maps unsigned order onto signed order, and the
// masked-out-lane sentinel ~0 maps onto signed max). Block order +
// strict < keeps the scalar loop's lowest-way-wins tie-break.
__attribute__((target("avx2"))) inline std::uint32_t argmin_tick_avx2(
    const std::uint64_t* ticks, WayMask mask, std::uint32_t ways) noexcept {
  constexpr std::uint64_t kSign = 0x8000000000000000ULL;
  const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(kSign));
  const __m256i all_max = _mm256_set1_epi64x(-1);
  std::uint64_t best = ~std::uint64_t{0};
  std::uint32_t best_way = 0;
  std::uint32_t w = 0;
  for (; w + 4 <= ways; w += 4) {
    const unsigned nib = (mask >> w) & 0xFu;
    if (nib == 0) continue;
    const __m256i lanes =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kLaneMasks.rows[nib]));
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ticks + w));
    const __m256i biased = _mm256_xor_si256(_mm256_blendv_epi8(all_max, v, lanes), sign);
    // Horizontal min: swap 128-bit halves, then 64-bit lanes, taking
    // the pairwise (signed) min each time — all lanes end up equal.
    const __m256i h1 = _mm256_permute2x128_si256(biased, biased, 1);
    const __m256i m1 =
        _mm256_blendv_epi8(biased, h1, _mm256_cmpgt_epi64(biased, h1));
    const __m256i h2 = _mm256_shuffle_epi32(m1, _MM_SHUFFLE(1, 0, 3, 2));
    const __m256i m2 = _mm256_blendv_epi8(m1, h2, _mm256_cmpgt_epi64(m1, h2));
    const std::uint64_t block_min =
        static_cast<std::uint64_t>(_mm256_extract_epi64(m2, 0)) ^ kSign;
    if (block_min < best) {
      best = block_min;
      const int eq = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpeq_epi64(biased, m2)));
      best_way = w + static_cast<std::uint32_t>(std::countr_zero(static_cast<unsigned>(eq)));
    }
  }
  // Tail ways (associativity not a multiple of 4).
  for (; w < ways; ++w) {
    if (((mask >> w) & 1u) == 0) continue;
    if (ticks[w] < best) {
      best = ticks[w];
      best_way = w;
    }
  }
  return best_way;
}

#endif  // CMM_SIMD_X86

#if CMM_SIMD_NEON

inline int find_tag_neon(const Addr* tags, std::uint32_t ways, Addr needle) noexcept {
  const uint64x2_t n = vdupq_n_u64(needle);
  std::uint32_t w = 0;
  for (; w + 2 <= ways; w += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(tags + w), n);
    if (vgetq_lane_u64(eq, 0) != 0) return static_cast<int>(w);
    if (vgetq_lane_u64(eq, 1) != 0) return static_cast<int>(w + 1);
  }
  if (w < ways && tags[w] == needle) return static_cast<int>(w);
  return -1;
}

#endif  // CMM_SIMD_NEON

}  // namespace detail

/// Active backend for this process (capability + CMM_SIMD_FORCE +
/// force_backend test overrides).
inline Backend active_backend() noexcept { return detail::g_backend; }

/// Lowest way in [0, ways) with tags[way] == needle, or -1. All
/// backends bit-identical (see dispatch contract above).
inline int find_tag(const Addr* tags, std::uint32_t ways, Addr needle) noexcept {
#if CMM_SIMD_X86
  const Backend b = detail::g_backend;
  if (b == Backend::Avx2) return detail::find_tag_avx2(tags, ways, needle);
  if (b == Backend::Sse2) return detail::find_tag_sse2(tags, ways, needle);
  return detail::find_tag_scalar(tags, ways, needle);
#elif CMM_SIMD_NEON
  if (detail::g_backend == Backend::Neon) return detail::find_tag_neon(tags, ways, needle);
  return detail::find_tag_scalar(tags, ways, needle);
#else
  return detail::find_tag_scalar(tags, ways, needle);
#endif
}

/// Way with the minimal ticks[] value among the set bits of `mask`
/// (lowest way wins ties). Preconditions: mask != 0, mask's set bits
/// all < ways. Dense masks (>= 8 allowed ways — the unpartitioned-LLC
/// fill path) take the vector path; sparse CAT partitions stay on the
/// O(popcount) bit-scan, which is already cheaper. Both paths compute
/// the identical argmin, so the crossover is invisible to results.
inline std::uint32_t argmin_tick(const std::uint64_t* ticks, WayMask mask,
                                 std::uint32_t ways) noexcept {
#if CMM_SIMD_X86
  if (detail::g_backend == Backend::Avx2 && std::popcount(mask) >= 8) {
    return detail::argmin_tick_avx2(ticks, mask, ways);
  }
#else
  (void)ways;
#endif
#if !CMM_SIMD_X86
  (void)ways;
#endif
  return detail::argmin_tick_scalar(ticks, mask);
}

}  // namespace cmm::simd
