#include "common/retry.hpp"

#include <limits>

namespace cmm {

unsigned RetryPolicy::backoff_units(unsigned failed_attempts) const noexcept {
  if (failed_attempts == 0) return 0;
  std::uint64_t units = backoff_base;
  for (unsigned i = 1; i < failed_attempts; ++i) {
    units *= backoff_multiplier;
    if (units > std::numeric_limits<unsigned>::max()) {
      return std::numeric_limits<unsigned>::max();
    }
  }
  return static_cast<unsigned>(units);
}

}  // namespace cmm
