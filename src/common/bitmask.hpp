// Helpers for way-allocation bitmasks (Intel CAT capacity bitmasks).
#pragma once

#include <bit>
#include <cstdint>

#include "common/types.hpp"

namespace cmm {

/// Mask with `count` contiguous set bits starting at bit `lo`.
constexpr WayMask contiguous_mask(unsigned lo, unsigned count) noexcept {
  if (count == 0) return 0;
  if (count >= 32) return ~WayMask{0} << lo;
  return ((WayMask{1} << count) - 1U) << lo;
}

/// Mask covering all `ways` ways.
constexpr WayMask full_mask(unsigned ways) noexcept {
  return contiguous_mask(0, ways);
}

constexpr unsigned popcount(WayMask m) noexcept { return static_cast<unsigned>(std::popcount(m)); }

/// Real CAT requires capacity bitmasks to be non-empty and contiguous.
constexpr bool is_valid_cat_mask(WayMask m, unsigned total_ways) noexcept {
  if (m == 0) return false;
  if (total_ways < 32 && (m >> total_ways) != 0) return false;
  const WayMask shifted = m >> std::countr_zero(m);
  return (shifted & (shifted + 1)) == 0;  // contiguous ones
}

}  // namespace cmm
