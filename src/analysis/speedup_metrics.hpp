// System-level performance/fairness metrics (paper Sec. IV-C, after
// Eyerman & Eeckhout): harmonic speedup (HS), normalized weighted
// speedup over baseline (WS), ANTT, and the worst-case per-application
// speedup used in Figs 8/10/12.
#pragma once

#include <span>
#include <vector>

namespace cmm::analysis {

/// HS = N / sum_i(IPC_alone_i / IPC_together_i). Considers both
/// throughput and fairness; 1/HS is the average normalized turnaround
/// time. Returns 0 on empty/invalid input.
double harmonic_speedup(std::span<const double> ipc_together, std::span<const double> ipc_alone);

/// ANTT = 1 / HS.
double antt(std::span<const double> ipc_together, std::span<const double> ipc_alone);

/// Normalized weighted speedup of mechanism x over the baseline run of
/// the same workload: (1/N) * sum_i(IPC_x_i / IPC_baseline_i).
double weighted_speedup(std::span<const double> ipc_x, std::span<const double> ipc_baseline);

/// min_i(IPC_x_i / IPC_baseline_i): the worst-case application speedup
/// within one workload (Figs 8, 10, 12).
double worst_case_speedup(std::span<const double> ipc_x, std::span<const double> ipc_baseline);

/// Harmonic mean of raw IPCs (the paper's online hm_ipc proxy).
/// Contract: an empty span or any zero value yields 0.0 (a stalled or
/// dead core has zero throughput, which pins the HM at zero); a
/// negative value is a caller bug, not a measurement, and throws
/// std::invalid_argument. Callers with cores that were never measured
/// must filter them out first (see run_mix_with_faults).
double harmonic_mean(std::span<const double> values);

/// Arithmetic mean helper for category aggregation.
double mean(std::span<const double> values);

}  // namespace cmm::analysis
