#include "analysis/solo_cache.hpp"

#include <sstream>

namespace cmm::analysis {

std::string SoloRunCache::key_of(const std::string& benchmark, const RunParams& params,
                                 bool prefetch_on, unsigned ways) {
  std::ostringstream os;
  os << std::hexfloat;  // exact double round-trip
  os << benchmark << '|' << (prefetch_on ? 1 : 0) << '|' << ways << '|' << params.seed << '|'
     << params.warmup_cycles << '|' << params.run_cycles << '|';
  const auto& m = params.machine;
  // Domain topology is part of the key: an 8-core/1-LLC solo and an
  // 8-core slice of a multi-domain fleet machine are different runs
  // (per-domain memory controller state) and must never collide.
  os << m.num_cores << '|' << m.num_llc_domains << '|';
  for (const auto& g : {m.l1d, m.l2, m.llc}) {
    os << g.size_bytes << '/' << g.ways << '/' << g.line_size << '|';
  }
  os << m.l1_latency << '|' << m.l2_latency << '|' << m.llc_latency << '|' << m.dram_base_latency
     << '|' << m.freq_ghz << '|' << m.dram_peak_bytes_per_cycle << '|' << m.bandwidth_window << '|'
     << m.quantum << '|' << m.instant_prefetch_fills << m.bandwidth_queueing << m.inclusive_llc
     << m.model_writebacks << '|' << m.idle_cpi;
  // Per-core prefetcher engine sets (empty = default Intel set). Runs
  // with heterogeneous engine mixes must not collide with default runs.
  for (const auto& set : m.core_prefetchers) {
    os << '|';
    for (const auto kind : set) os << static_cast<unsigned>(kind) << ',';
  }
  return std::move(os).str();
}

void SoloRunCache::enforce_capacity_locked() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const RunResult> SoloRunCache::get_or_run(const std::string& benchmark,
                                                          const RunParams& params,
                                                          bool prefetch_on, unsigned ways) {
  const std::string key = key_of(benchmark, params, prefetch_on, ways);
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard lock(mu_);
    const auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      lru_.push_front(key);
      it->second->lru_pos = lru_.begin();
      misses_.fetch_add(1, std::memory_order_relaxed);
      enforce_capacity_locked();
    } else {
      lru_.splice(lru_.begin(), lru_, it->second->lru_pos);  // touch
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    entry = it->second;
  }
  std::call_once(entry->once, [&] {
    entry->result = run_solo(benchmark, params, prefetch_on, ways);
    computed_.fetch_add(1, std::memory_order_relaxed);
  });
  // Alias: the result shares ownership with its Entry, so eviction
  // can never dangle a caller's pointer.
  return std::shared_ptr<const RunResult>(entry, &entry->result);
}

void SoloRunCache::set_capacity(std::size_t n) {
  std::lock_guard lock(mu_);
  capacity_ = n;
  enforce_capacity_locked();
}

std::size_t SoloRunCache::capacity() const {
  std::lock_guard lock(mu_);
  return capacity_;
}

std::size_t SoloRunCache::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

void SoloRunCache::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
  lru_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  computed_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

SoloRunCache& SoloRunCache::global() {
  static SoloRunCache cache;
  return cache;
}

std::shared_ptr<const RunResult> run_solo_cached(const std::string& benchmark,
                                                 const RunParams& params, bool prefetch_on,
                                                 unsigned ways) {
  return SoloRunCache::global().get_or_run(benchmark, params, prefetch_on, ways);
}

}  // namespace cmm::analysis
