#include "analysis/run_harness.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitmask.hpp"
#include "core/policy_baseline.hpp"
#include "core/policy_cmm.hpp"
#include "core/policy_cp.hpp"
#include "core/policy_dunn.hpp"
#include "core/policy_pt.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::analysis {

namespace {

double to_gbs(std::uint64_t bytes, Cycle cycles, double freq_ghz) {
  if (cycles == 0) return 0.0;
  const double seconds = static_cast<double>(cycles) / (freq_ghz * 1e9);
  return static_cast<double>(bytes) / seconds / 1e9;
}

CoreRunStats make_stats(const std::string& benchmark, const sim::PmuCounters& delta,
                        double freq_ghz) {
  CoreRunStats s;
  s.benchmark = benchmark;
  s.counters = delta;
  s.ipc = delta.ipc();
  s.demand_gbs = to_gbs(delta.dram_demand_bytes, delta.cycles, freq_ghz);
  s.prefetch_gbs = to_gbs(delta.dram_prefetch_bytes, delta.cycles, freq_ghz);
  s.stalls_l2_pending = delta.stalls_l2_pending;
  return s;
}

}  // namespace

std::vector<double> RunResult::ipcs() const {
  std::vector<double> v;
  v.reserve(cores.size());
  for (const auto& c : cores) v.push_back(c.ipc);
  return v;
}

double RunResult::total_gbs() const {
  double sum = 0.0;
  for (const auto& c : cores) sum += c.total_gbs();
  return sum;
}

std::uint64_t RunResult::total_stalls() const {
  std::uint64_t sum = 0;
  for (const auto& c : cores) sum += c.stalls_l2_pending;
  return sum;
}

RunResult run_solo(const std::string& benchmark, const RunParams& params, bool prefetch_on,
                   unsigned ways) {
  sim::MachineConfig machine = params.machine;
  machine.num_cores = 1;

  sim::MulticoreSystem system(machine);
  system.core(0).prefetch_msr().set_all(prefetch_on);
  if (ways > 0 && ways < machine.llc.ways) {
    system.cat().set_cbm(0, contiguous_mask(0, ways));
    system.cat().assign_core(0, 0);
  }
  system.set_op_source(0, workloads::make_op_source(benchmark, machine, 0, params.seed));

  system.run(params.warmup_cycles);
  const auto before = system.pmu().snapshot();
  system.run(params.run_cycles);
  const auto after = system.pmu().snapshot();

  RunResult result;
  result.measured_cycles = params.run_cycles;
  result.cores.push_back(
      make_stats(benchmark, after[0].delta_since(before[0]), machine.freq_ghz));
  return result;
}

RunResult run_mix(const workloads::WorkloadMix& mix, core::Policy& policy,
                  const RunParams& params) {
  sim::MulticoreSystem system(params.machine);
  workloads::attach_mix(system, mix, params.seed);

  core::EpochDriver driver(system, policy, params.epochs);
  driver.run(params.run_cycles);

  RunResult result;
  const auto& exec = driver.execution_counters();
  for (CoreId c = 0; c < exec.size(); ++c) {
    result.cores.push_back(make_stats(mix.benchmarks[c], exec[c], params.machine.freq_ghz));
    result.measured_cycles = std::max<Cycle>(result.measured_cycles, exec[c].cycles);
  }
  return result;
}

std::vector<std::string> mechanism_names() {
  return {"pt", "dunn", "pref_cp", "pref_cp2", "cmm_a", "cmm_b", "cmm_c"};
}

std::unique_ptr<core::Policy> make_policy(const std::string& name,
                                          const core::DetectorConfig& detector) {
  using namespace cmm::core;
  if (name == "baseline") return std::make_unique<BaselinePolicy>();
  if (name == "pt") {
    PtPolicy::Options o;
    o.detector = detector;
    return std::make_unique<PtPolicy>(o);
  }
  if (name == "dunn") {
    DunnPolicy::Options o;
    o.freq_ghz = detector.freq_ghz;
    return std::make_unique<DunnPolicy>(o);
  }
  if (name == "pref_cp" || name == "pref_cp2") {
    CpPolicy::Options o;
    o.detector = detector;
    o.variant = (name == "pref_cp") ? CpVariant::PrefCp : CpVariant::PrefCp2;
    return std::make_unique<CpPolicy>(o);
  }
  if (name == "cmm_a" || name == "cmm_b" || name == "cmm_c") {
    CmmPolicy::Options o;
    o.detector = detector;
    o.variant = (name == "cmm_a")   ? CmmVariant::A
                : (name == "cmm_b") ? CmmVariant::B
                                    : CmmVariant::C;
    return std::make_unique<CmmPolicy>(o);
  }
  throw std::invalid_argument("unknown policy: " + name);
}

std::map<std::string, double> compute_alone_ipcs(const std::vector<std::string>& benchmarks,
                                                 const RunParams& params) {
  std::map<std::string, double> table;
  for (const auto& name : benchmarks) {
    if (table.contains(name)) continue;
    table[name] = run_solo(name, params, /*prefetch_on=*/true).cores.front().ipc;
  }
  return table;
}

BenchmarkClassification classify_benchmark(const std::string& name, const RunParams& params,
                                           const ClassifierThresholds& thresholds) {
  BenchmarkClassification c;
  c.name = name;

  const RunResult off = run_solo(name, params, /*prefetch_on=*/false);
  const RunResult on = run_solo(name, params, /*prefetch_on=*/true);

  const double bw_off = off.cores.front().total_gbs();
  const double bw_on = on.cores.front().total_gbs();
  c.demand_gbs = off.cores.front().demand_gbs;
  c.bw_gain = bw_off > 0.0 ? (bw_on - bw_off) / bw_off : 0.0;
  const double ipc_off = off.cores.front().ipc;
  c.prefetch_speedup = ipc_off > 0.0 ? on.cores.front().ipc / ipc_off : 0.0;

  // Way sweep (prefetch on), paper Fig. 3 — on a coarse grid; the
  // dedicated fig03 bench sweeps every way count.
  const unsigned total_ways = params.machine.llc.ways;
  std::vector<unsigned> grid;
  for (const unsigned w : {1U, 2U, 3U, 4U, 6U, 8U, 10U, 12U, 16U, 20U}) {
    if (w <= total_ways) grid.push_back(w);
  }
  if (grid.empty() || grid.back() != total_ways) grid.push_back(total_ways);
  std::vector<double> ipc_at(grid.size(), 0.0);
  double best = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ipc_at[i] = run_solo(name, params, true, grid[i]).cores.front().ipc;
    best = std::max(best, ipc_at[i]);
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (c.ways_for_80pct == 0 && ipc_at[i] >= 0.8 * best) c.ways_for_80pct = grid[i];
    if (c.ways_for_90pct == 0 && ipc_at[i] >= 0.9 * best) c.ways_for_90pct = grid[i];
  }

  c.prefetch_aggressive =
      c.demand_gbs > thresholds.demand_gbs_min && c.bw_gain > thresholds.bw_gain_min;
  c.prefetch_friendly = c.prefetch_speedup > thresholds.friendly_speedup_min;
  c.llc_sensitive = c.ways_for_80pct >= thresholds.sensitive_ways_min;
  return c;
}

}  // namespace cmm::analysis
