#include "analysis/run_harness.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "analysis/solo_cache.hpp"
#include "analysis/speedup_metrics.hpp"
#include "common/bitmask.hpp"
#include "common/parallel.hpp"
#include "core/metrics.hpp"
#include "core/policy_baseline.hpp"
#include "core/policy_cmm.hpp"
#include "core/policy_cp.hpp"
#include "core/policy_dunn.hpp"
#include "core/policy_pt.hpp"
#include "sim/multicore_system.hpp"

namespace cmm::analysis {

namespace {

double to_gbs(std::uint64_t bytes, Cycle cycles, double freq_ghz) {
  if (cycles == 0) return 0.0;
  const double seconds = static_cast<double>(cycles) / (freq_ghz * 1e9);
  return static_cast<double>(bytes) / seconds / 1e9;
}

}  // namespace

CoreRunStats make_core_stats(const std::string& benchmark, const sim::PmuCounters& delta,
                             double freq_ghz) {
  CoreRunStats s;
  s.benchmark = benchmark;
  s.counters = delta;
  s.ipc = delta.ipc();
  s.demand_gbs = to_gbs(delta.dram_demand_bytes, delta.cycles, freq_ghz);
  s.prefetch_gbs = to_gbs(delta.dram_prefetch_bytes, delta.cycles, freq_ghz);
  s.stalls_l2_pending = delta.stalls_l2_pending;
  return s;
}

std::vector<double> RunResult::ipcs() const {
  std::vector<double> v;
  v.reserve(cores.size());
  for (const auto& c : cores) v.push_back(c.ipc);
  return v;
}

double RunResult::total_gbs() const {
  double sum = 0.0;
  for (const auto& c : cores) sum += c.total_gbs();
  return sum;
}

std::uint64_t RunResult::total_stalls() const {
  std::uint64_t sum = 0;
  for (const auto& c : cores) sum += c.stalls_l2_pending;
  return sum;
}

RunResult run_solo(const std::string& benchmark, const RunParams& params, bool prefetch_on,
                   unsigned ways) {
  sim::MachineConfig machine = params.machine;
  // A solo characterisation run exercises exactly one core on one
  // LLC/bandwidth domain; collapsing a fleet machine's idle domains
  // keeps the config valid (num_cores % num_llc_domains) without
  // changing what the run measures.
  machine.num_cores = 1;
  machine.num_llc_domains = 1;

  sim::MulticoreSystem system(machine);
  system.core(0).prefetch_msr().set_all(prefetch_on);
  if (ways > 0 && ways < machine.llc.ways) {
    system.cat().set_cbm(0, contiguous_mask(0, ways));
    system.cat().assign_core(0, 0);
  }
  system.set_op_source(0, workloads::make_op_source(benchmark, machine, 0, params.seed));

  system.run(params.warmup_cycles);
  const auto before = system.pmu().snapshot();
  system.run(params.run_cycles);
  const auto after = system.pmu().snapshot();

  RunResult result;
  result.measured_cycles = params.run_cycles;
  result.cores.push_back(
      make_core_stats(benchmark, after[0].delta_since(before[0]), machine.freq_ghz));
  return result;
}

RunResult run_mix(const workloads::WorkloadMix& mix, core::Policy& policy,
                  const RunParams& params) {
  sim::MulticoreSystem system(params.machine);
  workloads::attach_mix(system, mix, params.seed);

  core::EpochDriver driver(system, policy, params.epochs);
  driver.run(params.run_cycles);

  RunResult result;
  const auto& exec = driver.execution_counters();
  for (CoreId c = 0; c < exec.size(); ++c) {
    result.cores.push_back(make_core_stats(mix.benchmarks[c], exec[c], params.machine.freq_ghz));
    result.measured_cycles = std::max<Cycle>(result.measured_cycles, exec[c].cycles);
  }
  return result;
}

FaultRunOutcome run_mix_with_faults(const workloads::WorkloadMix& mix, core::Policy& policy,
                                    const RunParams& params, const hw::FaultPlan& plan) {
  sim::MulticoreSystem system(params.machine);
  workloads::attach_mix(system, mix, params.seed);

  // Real HAL at the bottom, fault-injecting decorators on top. One
  // injector feeds all three so the fault stream is a single
  // deterministic sequence driven by plan.seed and HAL call order.
  hw::SimMsrDevice sim_msr(system);
  hw::SimPmuReader sim_pmu(system);
  hw::SimCatController sim_cat(system);
  hw::SimMbaController sim_mba(system);
  hw::FaultInjector injector(plan);
  hw::FaultInjectingMsrDevice msr(sim_msr, injector);
  hw::FaultInjectingPmuReader pmu(sim_pmu, injector);
  hw::FaultInjectingCatController cat(sim_cat, injector);
  hw::FaultInjectingMbaController mba(sim_mba, injector);

  core::EpochDriver driver(system, policy, msr, pmu, cat, mba, params.epochs);

  FaultRunOutcome out;
  try {
    driver.run(params.run_cycles);
    out.completed = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }

  out.health = driver.health();
  out.prefetch_available = driver.prefetch_available();
  out.cat_available = driver.cat_available();
  out.mba_available = driver.mba_available();

  const auto& exec = driver.execution_counters();
  for (CoreId c = 0; c < exec.size(); ++c) {
    out.result.cores.push_back(make_core_stats(mix.benchmarks[c], exec[c], params.machine.freq_ghz));
    out.result.measured_cycles = std::max<Cycle>(out.result.measured_cycles, exec[c].cycles);
  }
  // hm_ipc contract (see core::hm_ipc): a core with zero measured IPC
  // pins the harmonic mean at 0. That is right for a stalled core, but
  // a core that never executed a measured cycle (offline before the
  // first epoch completed) carries no evidence at all — exclude it
  // instead of reporting a meaningless 0 for the whole mix.
  std::vector<sim::PmuCounters> measured;
  measured.reserve(exec.size());
  for (const auto& d : exec) {
    if (d.cycles > 0) measured.push_back(d);
  }
  out.hm_ipc = core::hm_ipc(measured);

  // The watchdog invariant: whatever happened during the run, the
  // hardware must not be left in a non-baseline state the controller no
  // longer manages. Checked against the *sim* models, below the fault
  // layer, so an injector lying about a write cannot fake compliance.
  const WayMask full = full_mask(system.cat().llc_ways());
  out.hardware_baseline_at_end = true;
  for (CoreId c = 0; c < system.num_cores(); ++c) {
    if (system.cat(system.domain_of(c)).core_mask(c) != full) out.hardware_baseline_at_end = false;
    if (!system.core(c).prefetch_msr().all_enabled()) out.hardware_baseline_at_end = false;
    if (system.memory(system.domain_of(c)).throttle_level(c) != 0) {
      out.hardware_baseline_at_end = false;
    }
  }
  return out;
}

double BatchStats::speedup() const noexcept {
  return wall_seconds > 0.0 ? job_seconds / wall_seconds : 0.0;
}

std::string BatchStats::json() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "{\"jobs\":" << jobs << ",\"threads\":" << threads << ",\"cache_hits\":" << cache_hits
     << ",\"cache_misses\":" << cache_misses << ",\"wall_s\":" << wall_seconds
     << ",\"job_s\":" << job_seconds << ",\"speedup\":" << speedup() << "}";
  return std::move(os).str();
}

BatchStats run_batch(std::size_t n, const std::function<void(std::size_t)>& job,
                     const BatchOptions& opts) {
  BatchStats stats;
  stats.jobs = n;
  stats.threads = resolve_threads(opts.threads);

  auto& cache = SoloRunCache::global();
  const std::size_t hits_before = cache.hits();
  const std::size_t misses_before = cache.misses();

  std::atomic<std::uint64_t> job_nanos{0};
  const auto t0 = std::chrono::steady_clock::now();
  parallel_for(n, stats.threads, [&](std::size_t i) {
    const auto s = std::chrono::steady_clock::now();
    job(i);
    const auto e = std::chrono::steady_clock::now();
    job_nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(e - s).count()),
        std::memory_order_relaxed);
  });
  const auto t1 = std::chrono::steady_clock::now();

  stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.job_seconds = static_cast<double>(job_nanos.load(std::memory_order_relaxed)) * 1e-9;
  stats.cache_hits = cache.hits() - hits_before;
  stats.cache_misses = cache.misses() - misses_before;
  return stats;
}

std::vector<RunResult> run_solo_batch(const std::vector<SoloQuery>& queries,
                                      const RunParams& params, const BatchOptions& opts,
                                      BatchStats* stats) {
  std::vector<RunResult> results(queries.size());
  const auto s = run_batch(
      queries.size(),
      [&](std::size_t i) {
        const auto& q = queries[i];
        results[i] = *run_solo_cached(q.benchmark, params, q.prefetch_on, q.ways);
      },
      opts);
  if (stats != nullptr) *stats = s;
  return results;
}

std::vector<RunResult> for_each_mix(const std::vector<workloads::WorkloadMix>& mixes,
                                    const std::vector<std::string>& policies,
                                    const RunParams& params, const BatchOptions& opts,
                                    BatchStats* stats, obs::MetricsRegistry* registry) {
  const std::size_t n = mixes.size() * policies.size();
  std::vector<RunResult> results(n);
  std::vector<obs::MetricsRegistry> job_metrics(registry != nullptr ? n : 0);
  const auto s = run_batch(
      n,
      [&](std::size_t i) {
        const auto& mix = mixes[i / policies.size()];
        const auto& name = policies[i % policies.size()];
        const auto policy = make_policy(name, params.detector());
        RunParams job_params = params;
        if (registry != nullptr) job_params.epochs.metrics = &job_metrics[i];
        results[i] = run_mix(mix, *policy, job_params);
      },
      opts);
  if (registry != nullptr) {
    for (const auto& m : job_metrics) registry->merge(m);
    for (std::size_t mi = 0; mi < mixes.size() && !policies.empty(); ++mi) {
      std::size_t best = 0;
      double best_hm = -1.0;
      for (std::size_t pi = 0; pi < policies.size(); ++pi) {
        const auto ipcs = results[mi * policies.size() + pi].ipcs();
        const double hm = harmonic_mean(ipcs);
        if (hm > best_hm) {
          best_hm = hm;
          best = pi;
        }
      }
      registry->count("win." + policies[best]);
    }
  }
  if (stats != nullptr) *stats = s;
  return results;
}

std::vector<std::string> mechanism_names() {
  return {"pt", "dunn", "pref_cp", "pref_cp2", "cmm_a", "cmm_b", "cmm_c"};
}

std::unique_ptr<core::Policy> make_policy(const std::string& name,
                                          const core::DetectorConfig& detector) {
  using namespace cmm::core;
  if (name == "baseline") return std::make_unique<BaselinePolicy>();
  if (name == "pt") {
    PtPolicy::Options o;
    o.detector = detector;
    return std::make_unique<PtPolicy>(o);
  }
  if (name == "dunn") {
    DunnPolicy::Options o;
    o.freq_ghz = detector.freq_ghz;
    return std::make_unique<DunnPolicy>(o);
  }
  if (name == "pref_cp" || name == "pref_cp2") {
    CpPolicy::Options o;
    o.detector = detector;
    o.variant = (name == "pref_cp") ? CpVariant::PrefCp : CpVariant::PrefCp2;
    return std::make_unique<CpPolicy>(o);
  }
  if (name == "cmm_a" || name == "cmm_b" || name == "cmm_c") {
    CmmPolicy::Options o;
    o.detector = detector;
    o.variant = (name == "cmm_a")   ? CmmVariant::A
                : (name == "cmm_b") ? CmmVariant::B
                                    : CmmVariant::C;
    return std::make_unique<CmmPolicy>(o);
  }
  if (name == "cmm_bp") {
    // CMM-a's PT x CP decision plus the BP (memory-bandwidth
    // regulation) coordinate-descent pass.
    CmmPolicy::Options o;
    o.detector = detector;
    o.variant = CmmVariant::A;
    o.bp_enabled = true;
    return std::make_unique<CmmPolicy>(o);
  }
  throw std::invalid_argument("unknown policy: " + name);
}

std::map<std::string, double> compute_alone_ipcs(const std::vector<std::string>& benchmarks,
                                                 const RunParams& params,
                                                 const BatchOptions& opts) {
  std::vector<std::string> unique;
  for (const auto& name : benchmarks) {
    if (std::find(unique.begin(), unique.end(), name) == unique.end()) unique.push_back(name);
  }
  std::vector<SoloQuery> queries;
  queries.reserve(unique.size());
  for (const auto& name : unique) queries.push_back({name, /*prefetch_on=*/true, 0});
  const auto results = run_solo_batch(queries, params, opts);

  std::map<std::string, double> table;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    table[unique[i]] = results[i].cores.front().ipc;
  }
  return table;
}

BenchmarkClassification classify_benchmark(const std::string& name, const RunParams& params,
                                           const ClassifierThresholds& thresholds,
                                           const BatchOptions& opts) {
  BenchmarkClassification c;
  c.name = name;

  // Way sweep grid (prefetch on), paper Fig. 3 — coarse; the dedicated
  // fig03 bench sweeps every way count.
  const unsigned total_ways = params.machine.llc.ways;
  std::vector<unsigned> grid;
  for (const unsigned w : {1U, 2U, 3U, 4U, 6U, 8U, 10U, 12U, 16U, 20U}) {
    if (w <= total_ways) grid.push_back(w);
  }
  if (grid.empty() || grid.back() != total_ways) grid.push_back(total_ways);

  // One memoized batch: prefetch off/on plus the whole way sweep.
  std::vector<SoloQuery> queries{{name, /*prefetch_on=*/false, 0}, {name, /*prefetch_on=*/true, 0}};
  for (const unsigned w : grid) queries.push_back({name, /*prefetch_on=*/true, w});
  const auto results = run_solo_batch(queries, params, opts);
  const RunResult& off = results[0];
  const RunResult& on = results[1];

  const double bw_off = off.cores.front().total_gbs();
  const double bw_on = on.cores.front().total_gbs();
  c.demand_gbs = off.cores.front().demand_gbs;
  c.bw_gain = bw_off > 0.0 ? (bw_on - bw_off) / bw_off : 0.0;
  const double ipc_off = off.cores.front().ipc;
  c.prefetch_speedup = ipc_off > 0.0 ? on.cores.front().ipc / ipc_off : 0.0;

  std::vector<double> ipc_at(grid.size(), 0.0);
  double best = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ipc_at[i] = results[2 + i].cores.front().ipc;
    best = std::max(best, ipc_at[i]);
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (c.ways_for_80pct == 0 && ipc_at[i] >= 0.8 * best) c.ways_for_80pct = grid[i];
    if (c.ways_for_90pct == 0 && ipc_at[i] >= 0.9 * best) c.ways_for_90pct = grid[i];
  }

  c.prefetch_aggressive =
      c.demand_gbs > thresholds.demand_gbs_min && c.bw_gain > thresholds.bw_gain_min;
  c.prefetch_friendly = c.prefetch_speedup > thresholds.friendly_speedup_min;
  c.llc_sensitive = c.ways_for_80pct >= thresholds.sensitive_ways_min;
  return c;
}

}  // namespace cmm::analysis
