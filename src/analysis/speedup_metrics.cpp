#include "analysis/speedup_metrics.hpp"

#include <stdexcept>

namespace cmm::analysis {

double harmonic_speedup(std::span<const double> ipc_together, std::span<const double> ipc_alone) {
  if (ipc_together.empty() || ipc_together.size() != ipc_alone.size()) return 0.0;
  double denom = 0.0;
  for (std::size_t i = 0; i < ipc_together.size(); ++i) {
    if (ipc_together[i] <= 0.0 || ipc_alone[i] <= 0.0) return 0.0;
    denom += ipc_alone[i] / ipc_together[i];
  }
  return static_cast<double>(ipc_together.size()) / denom;
}

double antt(std::span<const double> ipc_together, std::span<const double> ipc_alone) {
  const double hs = harmonic_speedup(ipc_together, ipc_alone);
  return hs > 0.0 ? 1.0 / hs : 0.0;
}

double weighted_speedup(std::span<const double> ipc_x, std::span<const double> ipc_baseline) {
  if (ipc_x.empty() || ipc_x.size() != ipc_baseline.size()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < ipc_x.size(); ++i) {
    if (ipc_baseline[i] <= 0.0) return 0.0;
    sum += ipc_x[i] / ipc_baseline[i];
  }
  return sum / static_cast<double>(ipc_x.size());
}

double worst_case_speedup(std::span<const double> ipc_x, std::span<const double> ipc_baseline) {
  if (ipc_x.empty() || ipc_x.size() != ipc_baseline.size()) return 0.0;
  double worst = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < ipc_x.size(); ++i) {
    if (ipc_baseline[i] <= 0.0) return 0.0;
    const double ratio = ipc_x[i] / ipc_baseline[i];
    if (first || ratio < worst) {
      worst = ratio;
      first = false;
    }
  }
  return worst;
}

double harmonic_mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double denom = 0.0;
  for (const double v : values) {
    if (v < 0.0) throw std::invalid_argument("harmonic_mean: negative value");
    if (v == 0.0) return 0.0;  // a zero-throughput member pins the HM at 0
    denom += 1.0 / v;
  }
  return static_cast<double>(values.size()) / denom;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace cmm::analysis
