// Minimal fixed-width table / CSV emitter for the bench harness output
// (the "same rows/series the paper reports").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cmm::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formatting helpers.
  static std::string fmt(double value, int precision = 3);

  /// Fixed-width human-readable rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our cell contents).
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cmm::analysis
