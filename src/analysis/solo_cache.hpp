// Process-wide memo cache for run_solo. Solo characterisation runs are
// pure functions of (benchmark, machine config, seed, cycles,
// prefetch_on, ways); the figure benches, the alone-IPC table, and the
// Sec. IV-B classifier keep asking for the same ones. The cache is
// thread-safe: concurrent lookups of one key run the simulation exactly
// once (losers block on the winner's std::call_once).
//
// Long-running service soaks churn through the workload catalog at many
// machine configs, so the cache supports an optional LRU capacity:
// `set_capacity(n)` bounds the resident entry count, evicting the
// least-recently-used result. Entries are handed out as shared_ptr, so
// an evicted result stays valid for every caller still holding it; a
// later lookup of an evicted key recomputes (bit-identically — run_solo
// is deterministic).
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "analysis/run_harness.hpp"

namespace cmm::analysis {

class SoloRunCache {
 public:
  SoloRunCache() = default;
  SoloRunCache(const SoloRunCache&) = delete;
  SoloRunCache& operator=(const SoloRunCache&) = delete;

  /// Lookup, simulating on first use. The returned pointer is never
  /// null and stays valid for as long as the caller holds it, even if
  /// the entry is evicted concurrently.
  std::shared_ptr<const RunResult> get_or_run(const std::string& benchmark,
                                              const RunParams& params, bool prefetch_on,
                                              unsigned ways = 0);

  /// Canonical cache key. Covers every input run_solo reads — the full
  /// machine config (geometry, latencies, bandwidth, model knobs),
  /// warmup/run cycles, seed, prefetch gate, and way limit — so
  /// distinct configurations can never collide.
  static std::string key_of(const std::string& benchmark, const RunParams& params,
                            bool prefetch_on, unsigned ways);

  /// Bound the resident entry count (0 = unbounded, the default).
  /// Shrinking below the current size evicts LRU entries immediately.
  void set_capacity(std::size_t n);
  std::size_t capacity() const;

  /// Lookups that found an existing entry (they may still have waited
  /// for the entry's first computation to finish).
  std::size_t hits() const noexcept { return hits_.load(std::memory_order_relaxed); }
  /// Lookups that inserted a new entry.
  std::size_t misses() const noexcept { return misses_.load(std::memory_order_relaxed); }
  /// Simulations actually executed; equals misses() in steady state —
  /// the "exactly once per key" guarantee made observable.
  std::size_t computed() const noexcept { return computed_.load(std::memory_order_relaxed); }
  /// Entries dropped by the LRU capacity bound.
  std::size_t evictions() const noexcept { return evictions_.load(std::memory_order_relaxed); }

  std::size_t size() const;
  void clear();

  /// Process-wide instance used by run_solo_cached and the batch layer.
  static SoloRunCache& global();

 private:
  struct Entry {
    std::once_flag once;
    RunResult result;
    std::list<std::string>::iterator lru_pos;
  };

  /// Drop LRU entries until the size respects capacity_. mu_ held.
  void enforce_capacity_locked();

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::size_t capacity_ = 0;
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> computed_{0};
  std::atomic<std::size_t> evictions_{0};
};

/// run_solo through the global memo cache; bit-identical to run_solo.
std::shared_ptr<const RunResult> run_solo_cached(const std::string& benchmark,
                                                 const RunParams& params, bool prefetch_on,
                                                 unsigned ways = 0);

}  // namespace cmm::analysis
