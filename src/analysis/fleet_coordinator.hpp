// Hierarchical CMM, level two: the cross-domain control plane above
// the per-domain EpochDriver loops. The per-domain policies (level
// one) optimise prefetch/partition/throttle for whatever tenants they
// were dealt; the FleetCoordinator periodically re-deals the tenants
// themselves, migrating workloads between LLC domains when measured
// telemetry says the fleet-wide objective would improve — the
// LFOC-style insight that cross-tenant grouping dominates what any
// single-domain controller can recover.
//
// Decision model (one "round", run between shard slices):
//   1. Diff each domain's DomainSummary against the previous round for
//      per-core slice IPC and DRAM bandwidth; sum to per-domain load.
//   2. Consider swapping the tenants of the most- and least-loaded
//      domains (pairwise swap: fleet cores are all occupied, so a move
//      is always an exchange). Predict each candidate's fleet-wide
//      harmonic-mean IPC by scaling measured per-core IPCs with the
//      same convex queueing curve the simulated MemoryController
//      applies: slowdown(u) = 1 + min(u^2/(1-u) * 0.6, 6).
//   3. Accept the best candidate only under strict improvement
//      (predicted relative gain >= min_gain), per-domain bandwidth
//      feasibility (shared BandwidthLedger), and hysteresis (recently
//      migrated slots are pinned for cooldown_rounds); at most
//      migration_budget swaps per round.
//
// Everything the coordinator reads is a pure function of the seeded
// simulation and it runs serially between slices, so its decisions —
// and the TenantMigrated/MigrationRejected events it emits — are
// bit-identical at any CMM_THREADS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bandwidth_ledger.hpp"
#include "core/epoch_driver.hpp"
#include "obs/trace.hpp"

namespace cmm::analysis {

/// Per-domain input to one coordinator round: the driver's telemetry
/// snapshot plus the tenant names resident on the domain's cores
/// (local core order).
struct DomainTelemetry {
  core::DomainSummary summary;
  std::vector<std::string> running;
};

struct CoordinatorConfig {
  std::uint32_t domains = 1;
  std::uint32_t cores_per_domain = 1;
  /// One LLC domain's DRAM peak in GB/s (each domain owns a private
  /// MemoryController with the full machine peak).
  double domain_peak_gbs = 0.0;
  double freq_ghz = 1.0;
  /// Accepted migrations per round; further candidates wait for the
  /// next round's fresh telemetry.
  unsigned migration_budget = 1;
  /// Strict-improvement acceptance: predicted relative fleet-hm_ipc
  /// gain must reach this, or the candidate is rejected ("no_gain").
  double min_gain = 0.005;
  /// Hysteresis: both slots of an accepted swap are pinned for this
  /// many rounds so tenants cannot ping-pong between domains.
  unsigned cooldown_rounds = 2;
  /// Per-domain feasibility: measured demand routed into a domain must
  /// stay under this fraction of the domain's peak.
  double bandwidth_headroom = 0.95;
  /// Serial, coordinator-owned sink for TenantMigrated /
  /// MigrationRejected events (borrowed; null = no events). Shard
  /// sinks would interleave nondeterministically — this one never can,
  /// because the coordinator runs between slices on one thread.
  obs::TraceSink* sink = nullptr;
};

/// One candidate the coordinator ruled on. Core ids are global fleet
/// ids; a swap moves tenant_a from_core -> to_core and tenant_b the
/// other way.
struct MigrationRecord {
  std::uint64_t round = 0;
  CoreId from_core = kInvalidCore;
  CoreId to_core = kInvalidCore;
  std::string tenant_a;
  std::string tenant_b;
  double predicted_gain = 0.0;
  bool accepted = false;
  std::string reason;  // "accepted" | "no_gain" | "bandwidth" | "cooldown"
};

class FleetCoordinator {
 public:
  explicit FleetCoordinator(const CoordinatorConfig& cfg);

  /// Run one coordinator round over the fleet's telemetry (one entry
  /// per domain, domain order). Returns every candidate ruled on this
  /// round; the caller executes the accepted ones (the coordinator
  /// plans, the fleet runner moves streams). Pure in the telemetry: no
  /// RNG, no wall clock, no thread-dependent state.
  std::vector<MigrationRecord> plan_round(const std::vector<DomainTelemetry>& fleet);

  std::uint64_t rounds() const noexcept { return round_; }
  std::uint64_t accepted() const noexcept { return accepted_; }
  std::uint64_t rejected() const noexcept { return rejected_; }

  /// The shared bandwidth ledger (measured per-slot demand, refreshed
  /// every round). ServiceDriver admission can be pointed at this
  /// instance so admission and migration draw on one budget.
  BandwidthLedger& ledger() noexcept { return ledger_; }
  const BandwidthLedger& ledger() const noexcept { return ledger_; }

 private:
  /// The MemoryController's queueing curve as a relative slowdown
  /// factor at offered load `gbs` (see memory_controller.cpp).
  double slowdown(double gbs) const noexcept;

  CoordinatorConfig cfg_;
  obs::Trace trace_;
  BandwidthLedger ledger_;
  std::uint64_t round_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  /// Cumulative exec counters at the previous round, per domain.
  std::vector<std::vector<sim::PmuCounters>> prev_;
  /// Hysteresis clocks: global slot is immovable while round_ <
  /// cooldown_until_[slot].
  std::vector<std::uint64_t> cooldown_until_;
};

}  // namespace cmm::analysis
