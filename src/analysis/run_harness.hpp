// Evaluation harness: solo characterisation runs (Figs 1-3), policy
// runs over workload mixes (Figs 7-15), the alone-IPC table HS needs,
// and the paper's offline benchmark classifier (Sec. IV-B criteria).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/epoch_driver.hpp"
#include "core/policy.hpp"
#include "sim/machine_config.hpp"
#include "workloads/benchmark_specs.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::analysis {

struct RunParams {
  sim::MachineConfig machine = sim::MachineConfig::scaled(16);
  Cycle warmup_cycles = 3'000'000;
  Cycle run_cycles = 4'000'000;
  core::EpochConfig epochs{};
  std::uint64_t seed = 42;

  /// Detector tuned to this machine (freq for per-second thresholds).
  core::DetectorConfig detector() const {
    core::DetectorConfig d;
    d.freq_ghz = machine.freq_ghz;
    return d;
  }
};

struct CoreRunStats {
  std::string benchmark;
  double ipc = 0.0;
  double demand_gbs = 0.0;    // DRAM demand bandwidth
  double prefetch_gbs = 0.0;  // DRAM prefetch bandwidth
  double total_gbs() const noexcept { return demand_gbs + prefetch_gbs; }
  std::uint64_t stalls_l2_pending = 0;
  sim::PmuCounters counters;  // deltas over the measured span
};

struct RunResult {
  std::vector<CoreRunStats> cores;
  Cycle measured_cycles = 0;

  std::vector<double> ipcs() const;
  double total_gbs() const;
  std::uint64_t total_stalls() const;
};

/// Run one benchmark alone on a single-core machine derived from
/// `params.machine` (same caches/latencies/bandwidth). `ways` limits
/// the LLC allocation mask (0 = all ways). `prefetch_on` gates all four
/// prefetchers.
RunResult run_solo(const std::string& benchmark, const RunParams& params, bool prefetch_on,
                   unsigned ways = 0);

/// Run a full mix under a policy via the EpochDriver. Reported stats
/// cover execution epochs only.
RunResult run_mix(const workloads::WorkloadMix& mix, core::Policy& policy,
                  const RunParams& params);

// ----------------------------------------------------------- policies

/// The evaluated mechanisms, paper order: pt, dunn, pref_cp, pref_cp2,
/// cmm_a, cmm_b, cmm_c ("baseline" also resolvable).
std::vector<std::string> mechanism_names();

/// Factory by name; throws std::invalid_argument for unknown names.
std::unique_ptr<core::Policy> make_policy(const std::string& name,
                                          const core::DetectorConfig& detector);

// --------------------------------------------------------- alone IPCs

/// IPC of each benchmark running alone (baseline config), keyed by
/// name. Computed once per (machine, seed); used by HS.
std::map<std::string, double> compute_alone_ipcs(const std::vector<std::string>& benchmarks,
                                                 const RunParams& params);

// ------------------------------------------------------ classification

/// Measured classification of one benchmark per the paper's Sec. IV-B
/// criteria, derived from solo runs.
struct BenchmarkClassification {
  std::string name;
  double demand_gbs = 0.0;        // solo, prefetch off
  double bw_gain = 0.0;           // (BW_pf_on - BW_pf_off) / BW_pf_off
  double prefetch_speedup = 0.0;  // IPC_on / IPC_off
  unsigned ways_for_80pct = 0;    // min ways reaching 80 % of best IPC
  unsigned ways_for_90pct = 0;
  bool prefetch_aggressive = false;
  bool prefetch_friendly = false;
  bool llc_sensitive = false;
};

struct ClassifierThresholds {
  double demand_gbs_min = 1.5;      // paper: demand BW > 1500 MB/s
  double bw_gain_min = 0.5;         // paper: prefetch BW increase > 50 %
  double friendly_speedup_min = 1.3;  // paper Sec. IV-B: IPC gain > 30 %
  unsigned sensitive_ways_min = 8;  // needs >= 8 ways for 80 % of peak
};

BenchmarkClassification classify_benchmark(const std::string& name, const RunParams& params,
                                           const ClassifierThresholds& thresholds = {});

}  // namespace cmm::analysis
