// Evaluation harness: solo characterisation runs (Figs 1-3), policy
// runs over workload mixes (Figs 7-15), the alone-IPC table HS needs,
// and the paper's offline benchmark classifier (Sec. IV-B criteria).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/epoch_driver.hpp"
#include "core/health.hpp"
#include "core/policy.hpp"
#include "hw/fault_injection.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/machine_config.hpp"
#include "workloads/benchmark_specs.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::analysis {

struct RunParams {
  sim::MachineConfig machine = sim::MachineConfig::scaled(16);
  Cycle warmup_cycles = 3'000'000;
  Cycle run_cycles = 4'000'000;
  core::EpochConfig epochs{};
  std::uint64_t seed = 42;

  /// Detector tuned to this machine (freq for per-second thresholds).
  core::DetectorConfig detector() const {
    core::DetectorConfig d;
    d.freq_ghz = machine.freq_ghz;
    return d;
  }
};

struct CoreRunStats {
  std::string benchmark;
  double ipc = 0.0;
  double demand_gbs = 0.0;    // DRAM demand bandwidth
  double prefetch_gbs = 0.0;  // DRAM prefetch bandwidth
  double total_gbs() const noexcept { return demand_gbs + prefetch_gbs; }
  std::uint64_t stalls_l2_pending = 0;
  sim::PmuCounters counters;  // deltas over the measured span

  bool operator==(const CoreRunStats&) const = default;
};

/// Per-core stats from a measured PMU delta (shared by the mix, fault
/// and fleet harnesses so every runner derives rates identically).
CoreRunStats make_core_stats(const std::string& benchmark, const sim::PmuCounters& delta,
                             double freq_ghz);

struct RunResult {
  std::vector<CoreRunStats> cores;
  Cycle measured_cycles = 0;

  std::vector<double> ipcs() const;
  double total_gbs() const;
  std::uint64_t total_stalls() const;

  /// Bit-exact: parallel batches must reproduce the serial path.
  bool operator==(const RunResult&) const = default;
};

/// Run one benchmark alone on a single-core machine derived from
/// `params.machine` (same caches/latencies/bandwidth). `ways` limits
/// the LLC allocation mask (0 = all ways). `prefetch_on` gates all four
/// prefetchers.
RunResult run_solo(const std::string& benchmark, const RunParams& params, bool prefetch_on,
                   unsigned ways = 0);

/// Run a full mix under a policy via the EpochDriver. Reported stats
/// cover execution epochs only.
RunResult run_mix(const workloads::WorkloadMix& mix, core::Policy& policy,
                  const RunParams& params);

// ------------------------------------------------------- fault campaigns

/// One policy run through the fault-injecting HAL decorators.
struct FaultRunOutcome {
  RunResult result;                // execution-epoch stats, like run_mix()
  core::HealthLog health;          // deterministic fault-handling record
  bool completed = false;          // epoch loop finished; no exception escaped
  std::string error;               // exception text when !completed
  bool prefetch_available = true;  // degradation-ladder state at end of run
  bool cat_available = true;
  bool mba_available = true;
  bool hardware_baseline_at_end = false;  // prefetchers on, full masks, no throttle
  double hm_ipc = 0.0;             // harmonic-mean IPC over execution counters
};

/// Run a full mix under `policy` with the HAL wrapped in the
/// fault-injecting decorators driven by `plan`. With all plan rates at
/// zero the RunResult is bit-identical to run_mix(); under faults the
/// EpochDriver's retry/degradation machinery keeps the run alive and
/// records what happened in the HealthLog.
FaultRunOutcome run_mix_with_faults(const workloads::WorkloadMix& mix, core::Policy& policy,
                                    const RunParams& params, const hw::FaultPlan& plan);

// ----------------------------------------------------- parallel batches

/// Knobs for the parallel batch layer. threads == 0 defers to the
/// CMM_THREADS environment variable, then hardware_concurrency.
struct BatchOptions {
  unsigned threads = 0;
};

/// Accounting for one batch; json() is the one-line summary the bench
/// binaries print so the perf trajectory lands in their captured
/// output.
struct BatchStats {
  std::size_t jobs = 0;
  unsigned threads = 1;
  std::size_t cache_hits = 0;  // global solo-cache traffic during the batch
  std::size_t cache_misses = 0;
  double wall_seconds = 0.0;
  double job_seconds = 0.0;  // sum of per-job wall times

  /// Parallel efficiency proxy: job_seconds / wall_seconds.
  double speedup() const noexcept;
  std::string json() const;
};

/// Run job(0..n-1) across resolve_threads(opts.threads) workers with
/// per-job timing and solo-cache accounting. Jobs must own all mutable
/// state (system, policy, RNG stream) so batch results are bit-identical
/// to the serial path at any thread count.
BatchStats run_batch(std::size_t n, const std::function<void(std::size_t)>& job,
                     const BatchOptions& opts = {});

/// One solo-characterisation request within a batch.
struct SoloQuery {
  std::string benchmark;
  bool prefetch_on = true;
  unsigned ways = 0;  // 0 = all ways
};

/// Memoized parallel solo runs; results in query order.
std::vector<RunResult> run_solo_batch(const std::vector<SoloQuery>& queries,
                                      const RunParams& params, const BatchOptions& opts = {},
                                      BatchStats* stats = nullptr);

/// Run every (mix, policy) pair concurrently; each job owns its own
/// MulticoreSystem and policy instance. Results indexed
/// [mix_index * policies.size() + policy_index].
///
/// When `registry` is non-null every job records driver metrics into
/// its own private registry; after the batch they are merged in job
/// order (deterministic at any thread count) together with one
/// `win.<policy>` counter per mix (the policy with the best
/// harmonic-mean IPC on that mix). Jobs never share a registry, so the
/// driver hot path stays single-threaded and lock-free.
std::vector<RunResult> for_each_mix(const std::vector<workloads::WorkloadMix>& mixes,
                                    const std::vector<std::string>& policies,
                                    const RunParams& params, const BatchOptions& opts = {},
                                    BatchStats* stats = nullptr,
                                    obs::MetricsRegistry* registry = nullptr);

// ----------------------------------------------------------- policies

/// The evaluated mechanisms, paper order: pt, dunn, pref_cp, pref_cp2,
/// cmm_a, cmm_b, cmm_c ("baseline" also resolvable).
std::vector<std::string> mechanism_names();

/// Factory by name; throws std::invalid_argument for unknown names.
std::unique_ptr<core::Policy> make_policy(const std::string& name,
                                          const core::DetectorConfig& detector);

// --------------------------------------------------------- alone IPCs

/// IPC of each benchmark running alone (baseline config), keyed by
/// name. Deduplicates, then runs the distinct solos as one memoized
/// parallel batch; used by HS.
std::map<std::string, double> compute_alone_ipcs(const std::vector<std::string>& benchmarks,
                                                 const RunParams& params,
                                                 const BatchOptions& opts = {});

// ------------------------------------------------------ classification

/// Measured classification of one benchmark per the paper's Sec. IV-B
/// criteria, derived from solo runs.
struct BenchmarkClassification {
  std::string name;
  double demand_gbs = 0.0;        // solo, prefetch off
  double bw_gain = 0.0;           // (BW_pf_on - BW_pf_off) / BW_pf_off
  double prefetch_speedup = 0.0;  // IPC_on / IPC_off
  unsigned ways_for_80pct = 0;    // min ways reaching 80 % of best IPC
  unsigned ways_for_90pct = 0;
  bool prefetch_aggressive = false;
  bool prefetch_friendly = false;
  bool llc_sensitive = false;
};

struct ClassifierThresholds {
  double demand_gbs_min = 1.5;      // paper: demand BW > 1500 MB/s
  double bw_gain_min = 0.5;         // paper: prefetch BW increase > 50 %
  double friendly_speedup_min = 1.3;  // paper Sec. IV-B: IPC gain > 30 %
  unsigned sensitive_ways_min = 8;  // needs >= 8 ways for 80 % of peak
};

/// All ~12 solo runs behind one classification go through the memo
/// cache and run as one batch (`opts.threads` workers).
BenchmarkClassification classify_benchmark(const std::string& name, const RunParams& params,
                                           const ClassifierThresholds& thresholds = {},
                                           const BatchOptions& opts = {});

}  // namespace cmm::analysis
