// Sharded fleet runner: many-core experiments over multi-LLC-domain
// machines (MachineConfig::num_llc_domains > 1), one EpochDriver shard
// per domain on the PR-1 thread pool, under a two-level control
// hierarchy: the per-domain drivers are level one, and a
// FleetCoordinator (fleet_coordinator.hpp) running every
// coordinator_period slices is level two, planning cross-domain tenant
// migrations from per-domain telemetry. With the coordinator disabled
// (coordinator_period == 0, the default) the runner is the flat PR-8
// slice driver: plan once, shard, merge — byte-identical output.
//
// Determinism argument (see DESIGN.md, "Sharded multi-LLC fleet" and
// "Hierarchical CMM"): domains share nothing — each owns a private
// LLC, CAT, and memory controller; churn draws from a per-domain RNG
// seeded by churn_seed ^ domain, never by thread id or schedule; and
// the coordinator acts only between slices, serially, on telemetry
// that is itself a pure function of the seeded simulation. Every shard
// job owns all of its mutable state, so a fleet run is bit-identical
// at any CMM_THREADS, and a coordinator-free shard is bit-identical to
// a standalone run_mix() on the domain's machine — the properties
// test_fleet.cpp and test_migration.cpp pin.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/fleet_coordinator.hpp"
#include "analysis/run_harness.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace cmm::analysis {

/// Cross-domain placement policy of the coordinator.
enum class PlacementMode : std::uint8_t {
  /// Tenant i lands on domain i % num_domains (slot-fill order).
  RoundRobin,
  /// Greedy balance on solo demand bandwidth: heaviest tenants first,
  /// each onto the currently least-loaded domain (memoized solo runs;
  /// deterministic ties by tenant index / domain id). This is the
  /// coordinator exercising cross-domain knowledge the per-domain
  /// policies don't have — the LFOC/CBP-style placement layer.
  BandwidthBalanced,
};

struct FleetConfig {
  /// params.machine describes the whole fleet (num_llc_domains >= 1).
  RunParams params{};
  std::string policy = "cmm_c";

  // ---- Tenant churn (0 = steady-state run, bit-identical to run_mix
  // per domain) ----

  /// Slice length in cycles between churn decision points. The run is
  /// driver.run(slice) repeated, with swaps between slices — the
  /// service-mode pattern (detach + attach + reseed to baseline).
  Cycle churn_slice = 0;
  /// Probability (in 1/1000 units) that a domain swaps one tenant at a
  /// slice boundary.
  unsigned churn_per_mille = 250;
  std::uint64_t churn_seed = 99;
  /// Replacement tenants drawn on churn (index via the domain RNG).
  /// Empty disables swaps even when churn_slice > 0.
  std::vector<std::string> churn_catalog;

  // ---- Hierarchical coordinator (0 = disabled: run_fleet is the
  // flat PR-8 slice driver, byte-identical output) ----

  /// Run the FleetCoordinator every K slices. A slice is churn_slice
  /// cycles when churn is on, otherwise one execution epoch plus eight
  /// sampling intervals (the service-tick default). With K > 0 the run
  /// is driven slice-by-slice under a barrier so the coordinator can
  /// migrate tenants across domains between slices.
  unsigned coordinator_period = 0;
  /// Accepted migrations per coordinator round.
  unsigned migration_budget = 1;
  /// Strict-improvement threshold on predicted fleet hm_ipc.
  double migration_min_gain = 0.005;
  /// Hysteresis: rounds both slots of a swap stay pinned.
  unsigned migration_cooldown = 2;
  /// Per-domain bandwidth-feasibility cap for inbound migrations.
  double migration_headroom = 0.95;
  /// Serial sink for the coordinator's TenantMigrated /
  /// MigrationRejected events (borrowed; null = no events). Kept
  /// separate from params.epochs.sink, which the parallel shards would
  /// interleave nondeterministically.
  obs::TraceSink* coordinator_sink = nullptr;
};

/// One domain's shard outcome, in local (per-domain) core order.
struct DomainShardResult {
  RunResult result;
  double hm_ipc = 0.0;
  std::uint64_t churn_swaps = 0;       // detach+attach pairs performed
  std::uint64_t epochs_completed = 0;  // driver execution epochs
};

struct FleetResult {
  std::vector<DomainShardResult> domains;
  /// Domain-order concatenation: cores[global id] corresponds to
  /// domains[domain_of(id)].result.cores[local id].
  RunResult merged;
  /// Job-order merge of the per-shard registries plus fleet.* counters.
  obs::MetricsRegistry metrics;
  BatchStats batch;
  double hm_ipc = 0.0;  // harmonic mean over all fleet cores

  /// Every migration candidate the coordinator ruled on, in decision
  /// order (empty when coordinator_period == 0). The tenant resident
  /// on each core at the end of the run is merged.cores[i].benchmark.
  std::vector<MigrationRecord> migrations;

  std::uint64_t total_churn_swaps() const noexcept;
  std::uint64_t accepted_migrations() const noexcept;
};

/// Deterministic heavy-first placement order over tenants: sort by
/// solo demand bandwidth descending, ties by benchmark name, then by
/// original index. Exposed separately so the tie-break is testable
/// with synthetic bandwidths — equal-bandwidth placements must be a
/// pure function of the tenant list, never of sort internals.
std::vector<std::size_t> placement_order(const std::vector<std::string>& benchmarks,
                                         const std::vector<double>& bandwidth);

/// Place `benchmarks` (one per fleet core, global core order) onto
/// domains. Returns one WorkloadMix per domain, local core order,
/// named "fleet_d<d>". BandwidthBalanced runs the distinct solos as
/// one memoized parallel batch first; with a coordinator enabled this
/// placement is only the initial state — migrations refine it at
/// runtime.
std::vector<workloads::WorkloadMix> plan_placement(const std::vector<std::string>& benchmarks,
                                                   PlacementMode mode, const RunParams& params,
                                                   const BatchOptions& opts = {});

/// Run one shard per domain (shard d simulates
/// params.machine.domain_config(d) under `shard_mixes[d]`). Size of
/// `shard_mixes` must equal num_llc_domains; each mix must have
/// cores_per_domain() benchmarks.
FleetResult run_fleet(const FleetConfig& cfg,
                      const std::vector<workloads::WorkloadMix>& shard_mixes,
                      const BatchOptions& opts = {});

/// Placement + run in one call (benchmarks in global core order).
FleetResult run_fleet(const FleetConfig& cfg, const std::vector<std::string>& benchmarks,
                      PlacementMode mode = PlacementMode::RoundRobin,
                      const BatchOptions& opts = {});

}  // namespace cmm::analysis
