// Sharded fleet runner: many-core experiments over multi-LLC-domain
// machines (MachineConfig::num_llc_domains > 1), one EpochDriver shard
// per domain on the PR-1 thread pool, with a thin global coordinator
// for cross-domain tenant placement and the PR-4 job-order metrics
// merge.
//
// Determinism argument (see DESIGN.md, "Sharded multi-LLC fleet"):
// domains share nothing — each owns a private LLC, CAT, and memory
// controller, and the coordinator only acts at placement time (before
// any cycle is simulated) and between churn slices (from a per-domain
// RNG seeded by churn_seed ^ domain, never by thread id or schedule).
// Every shard job owns all of its mutable state, so a fleet run is
// bit-identical at any CMM_THREADS, and each shard is bit-identical to
// a standalone run_mix() on the domain's machine — the property
// test_fleet.cpp pins.
#pragma once

#include <string>
#include <vector>

#include "analysis/run_harness.hpp"
#include "obs/metrics_registry.hpp"

namespace cmm::analysis {

/// Cross-domain placement policy of the coordinator.
enum class PlacementMode : std::uint8_t {
  /// Tenant i lands on domain i % num_domains (slot-fill order).
  RoundRobin,
  /// Greedy balance on solo demand bandwidth: heaviest tenants first,
  /// each onto the currently least-loaded domain (memoized solo runs;
  /// deterministic ties by tenant index / domain id). This is the
  /// coordinator exercising cross-domain knowledge the per-domain
  /// policies don't have — the LFOC/CBP-style placement layer.
  BandwidthBalanced,
};

struct FleetConfig {
  /// params.machine describes the whole fleet (num_llc_domains >= 1).
  RunParams params{};
  std::string policy = "cmm_c";

  // ---- Tenant churn (0 = steady-state run, bit-identical to run_mix
  // per domain) ----

  /// Slice length in cycles between churn decision points. The run is
  /// driver.run(slice) repeated, with swaps between slices — the
  /// service-mode pattern (detach + attach + reseed to baseline).
  Cycle churn_slice = 0;
  /// Probability (in 1/1000 units) that a domain swaps one tenant at a
  /// slice boundary.
  unsigned churn_per_mille = 250;
  std::uint64_t churn_seed = 99;
  /// Replacement tenants drawn on churn (index via the domain RNG).
  /// Empty disables swaps even when churn_slice > 0.
  std::vector<std::string> churn_catalog;
};

/// One domain's shard outcome, in local (per-domain) core order.
struct DomainShardResult {
  RunResult result;
  double hm_ipc = 0.0;
  std::uint64_t churn_swaps = 0;       // detach+attach pairs performed
  std::uint64_t epochs_completed = 0;  // driver execution epochs
};

struct FleetResult {
  std::vector<DomainShardResult> domains;
  /// Domain-order concatenation: cores[global id] corresponds to
  /// domains[domain_of(id)].result.cores[local id].
  RunResult merged;
  /// Job-order merge of the per-shard registries plus fleet.* counters.
  obs::MetricsRegistry metrics;
  BatchStats batch;
  double hm_ipc = 0.0;  // harmonic mean over all fleet cores

  std::uint64_t total_churn_swaps() const noexcept;
};

/// Place `benchmarks` (one per fleet core, global core order) onto
/// domains. Returns one WorkloadMix per domain, local core order,
/// named "fleet_d<d>". BandwidthBalanced runs the distinct solos as
/// one memoized parallel batch first.
std::vector<workloads::WorkloadMix> plan_placement(const std::vector<std::string>& benchmarks,
                                                   PlacementMode mode, const RunParams& params,
                                                   const BatchOptions& opts = {});

/// Run one shard per domain (shard d simulates
/// params.machine.domain_config(d) under `shard_mixes[d]`). Size of
/// `shard_mixes` must equal num_llc_domains; each mix must have
/// cores_per_domain() benchmarks.
FleetResult run_fleet(const FleetConfig& cfg,
                      const std::vector<workloads::WorkloadMix>& shard_mixes,
                      const BatchOptions& opts = {});

/// Placement + run in one call (benchmarks in global core order).
FleetResult run_fleet(const FleetConfig& cfg, const std::vector<std::string>& benchmarks,
                      PlacementMode mode = PlacementMode::RoundRobin,
                      const BatchOptions& opts = {});

}  // namespace cmm::analysis
