#include "analysis/fleet_coordinator.hpp"

#include <algorithm>
#include <stdexcept>

namespace cmm::analysis {

namespace {

/// Harmonic mean over strictly positive values (the fleet objective).
double hm(const std::vector<double>& values) {
  double inv = 0.0;
  for (const double v : values) inv += 1.0 / v;
  return static_cast<double>(values.size()) / inv;
}

}  // namespace

FleetCoordinator::FleetCoordinator(const CoordinatorConfig& cfg)
    : cfg_(cfg),
      trace_(cfg.sink),
      ledger_(cfg.domain_peak_gbs, cfg.domains,
              static_cast<std::size_t>(cfg.domains) * cfg.cores_per_domain) {
  if (cfg_.domains == 0 || cfg_.cores_per_domain == 0)
    throw std::invalid_argument("FleetCoordinator: empty fleet");
  prev_.assign(cfg_.domains, std::vector<sim::PmuCounters>(cfg_.cores_per_domain));
  cooldown_until_.assign(static_cast<std::size_t>(cfg_.domains) * cfg_.cores_per_domain, 0);
}

double FleetCoordinator::slowdown(double gbs) const noexcept {
  // Mirror of MemoryController::roll_window: queueing delay grows as
  // min(u^2/(1-u) * 0.6, 6) times the base latency. Used as a relative
  // slowdown factor — only the ranking of candidate placements
  // matters, not absolute latency.
  const double u = std::min(cfg_.domain_peak_gbs > 0.0 ? gbs / cfg_.domain_peak_gbs : 0.0, 0.98);
  const double factor = std::min(u * u / (1.0 - u) * 0.6, 6.0);
  return 1.0 + factor;
}

std::vector<MigrationRecord> FleetCoordinator::plan_round(
    const std::vector<DomainTelemetry>& fleet) {
  const std::uint32_t domains = cfg_.domains;
  const std::uint32_t cpd = cfg_.cores_per_domain;
  if (fleet.size() != domains)
    throw std::invalid_argument("FleetCoordinator: one telemetry entry per domain required");

  // 1. Per-slot slice rates from the snapshot deltas, plus per-domain
  // offered load. The ledger is refreshed with measured demand so a
  // ServiceDriver sharing it admits against live fleet pressure.
  std::vector<double> ipc(static_cast<std::size_t>(domains) * cpd, 0.0);
  std::vector<double> gbs(ipc.size(), 0.0);
  std::vector<double> dom_gbs(domains, 0.0);
  bool measurable = true;
  for (std::uint32_t d = 0; d < domains; ++d) {
    const auto& counters = fleet[d].summary.exec_counters;
    if (counters.size() != cpd || fleet[d].running.size() != cpd)
      throw std::invalid_argument("FleetCoordinator: telemetry shape mismatch");
    for (std::uint32_t c = 0; c < cpd; ++c) {
      const std::size_t g = static_cast<std::size_t>(d) * cpd + c;
      const sim::PmuCounters delta = counters[c].delta_since(prev_[d][c]);
      if (delta.cycles == 0 || delta.instructions == 0) {
        measurable = false;
        continue;
      }
      ipc[g] = delta.ipc();
      const auto bytes = delta.dram_demand_bytes + delta.dram_prefetch_bytes +
                         delta.dram_writeback_bytes;
      gbs[g] = static_cast<double>(bytes) / static_cast<double>(delta.cycles) * cfg_.freq_ghz;
      dom_gbs[d] += gbs[g];
      ledger_.commit(g, d, gbs[g]);
    }
    prev_[d] = counters;
  }

  std::vector<MigrationRecord> records;
  ++round_;
  // A slot without execution-epoch progress this slice (slice shorter
  // than the epoch schedule) gives no signal to decide on — skip the
  // round rather than migrate on garbage.
  if (!measurable) return records;

  const Cycle now = fleet.front().summary.now;
  const std::uint64_t epoch = fleet.front().summary.epoch;
  std::vector<std::string> tenant(ipc.size());
  for (std::uint32_t d = 0; d < domains; ++d)
    for (std::uint32_t c = 0; c < cpd; ++c)
      tenant[static_cast<std::size_t>(d) * cpd + c] = fleet[d].running[c];

  double hm_cur = hm(ipc);
  for (unsigned accepted_this_round = 0; accepted_this_round < cfg_.migration_budget;
       ++accepted_this_round) {
    // Most- and least-loaded domains (ties: lowest id).
    std::uint32_t dmax = 0, dmin = 0;
    for (std::uint32_t d = 1; d < domains; ++d) {
      if (dom_gbs[d] > dom_gbs[dmax]) dmax = d;
      if (dom_gbs[d] < dom_gbs[dmin]) dmin = d;
    }
    if (dmax == dmin) break;  // single domain or perfectly flat

    // Best candidate swap: heaviest-vs-lightest tenant pairs between
    // the extreme domains, scored by predicted fleet hm_ipc under the
    // queueing model. Deterministic order; ties break by tenant name,
    // then global core index (the placement tie-break contract).
    const double s_max_old = slowdown(dom_gbs[dmax]);
    const double s_min_old = slowdown(dom_gbs[dmin]);
    bool found = false;
    bool all_cooling = true;
    std::size_t best_a = 0, best_b = 0;
    double best_hm = 0.0;
    for (std::uint32_t ca = 0; ca < cpd; ++ca) {
      const std::size_t a = static_cast<std::size_t>(dmax) * cpd + ca;
      for (std::uint32_t cb = 0; cb < cpd; ++cb) {
        const std::size_t b = static_cast<std::size_t>(dmin) * cpd + cb;
        if (gbs[a] <= gbs[b]) continue;  // must move demand downhill
        if (round_ < cooldown_until_[a] || round_ < cooldown_until_[b]) continue;
        all_cooling = false;
        const double load_max = dom_gbs[dmax] - gbs[a] + gbs[b];
        const double load_min = dom_gbs[dmin] + gbs[a] - gbs[b];
        const double s_max_new = slowdown(load_max);
        const double s_min_new = slowdown(load_min);
        std::vector<double> pred = ipc;
        for (std::uint32_t c = 0; c < cpd; ++c) {
          pred[static_cast<std::size_t>(dmax) * cpd + c] *= s_max_old / s_max_new;
          pred[static_cast<std::size_t>(dmin) * cpd + c] *= s_min_old / s_min_new;
        }
        // The swapped pair lands under the *other* domain's new load.
        pred[a] = ipc[a] * s_max_old / s_min_new;
        pred[b] = ipc[b] * s_min_old / s_max_new;
        const double hm_new = hm(pred);
        const bool better =
            !found || hm_new > best_hm ||
            (hm_new == best_hm && (tenant[a] < tenant[best_a] ||
                                   (tenant[a] == tenant[best_a] &&
                                    (a < best_a || (a == best_a && b < best_b)))));
        if (better) {
          found = true;
          best_hm = hm_new;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (!found) {
      if (!all_cooling) break;  // no downhill pair at all: nothing to report
      // Every candidate is pinned by hysteresis — record the
      // heaviest/lightest pair so the trace explains the stall.
      std::size_t a = static_cast<std::size_t>(dmax) * cpd;
      std::size_t b = static_cast<std::size_t>(dmin) * cpd;
      for (std::uint32_t c = 1; c < cpd; ++c) {
        if (gbs[dmax * cpd + c] > gbs[a]) a = static_cast<std::size_t>(dmax) * cpd + c;
        if (gbs[dmin * cpd + c] < gbs[b]) b = static_cast<std::size_t>(dmin) * cpd + c;
      }
      MigrationRecord rec{round_, static_cast<CoreId>(a), static_cast<CoreId>(b),
                          tenant[a], tenant[b], 0.0, false, "cooldown"};
      ++rejected_;
      if (trace_.on()) {
        trace_.emit(obs::MigrationRejected{now, epoch, rec.from_core, rec.to_core,
                                           rec.tenant_a, "cooldown", 0.0});
      }
      records.push_back(std::move(rec));
      break;
    }

    const double gain = hm_cur > 0.0 ? (best_hm - hm_cur) / hm_cur : 0.0;
    MigrationRecord rec{round_,   static_cast<CoreId>(best_a), static_cast<CoreId>(best_b),
                        tenant[best_a], tenant[best_b],        gain,
                        false,    {}};
    if (gain < cfg_.min_gain) {
      rec.reason = "no_gain";
      ++rejected_;
      if (trace_.on()) {
        trace_.emit(obs::MigrationRejected{now, epoch, rec.from_core, rec.to_core,
                                           rec.tenant_a, "no_gain", gain});
      }
      records.push_back(std::move(rec));
      break;
    }
    // Per-domain feasibility from the shared ledger: the demand moving
    // into the lighter domain must fit under its own peak headroom.
    if (!ledger_.domain_admissible(dmin, gbs[best_a] - gbs[best_b],
                                   cfg_.bandwidth_headroom)) {
      rec.reason = "bandwidth";
      ++rejected_;
      if (trace_.on()) {
        trace_.emit(obs::MigrationRejected{now, epoch, rec.from_core, rec.to_core,
                                           rec.tenant_a, "bandwidth", gain});
      }
      records.push_back(std::move(rec));
      break;
    }

    // Accept: update the working model so a second swap this round is
    // planned against the post-swap fleet, pin both slots, re-home the
    // ledger commitments.
    rec.accepted = true;
    rec.reason = "accepted";
    ++accepted_;
    dom_gbs[dmax] += gbs[best_b] - gbs[best_a];
    dom_gbs[dmin] += gbs[best_a] - gbs[best_b];
    std::swap(gbs[best_a], gbs[best_b]);
    std::swap(ipc[best_a], ipc[best_b]);
    std::swap(tenant[best_a], tenant[best_b]);
    ledger_.commit(best_a, dmax, gbs[best_a]);
    ledger_.commit(best_b, dmin, gbs[best_b]);
    cooldown_until_[best_a] = round_ + cfg_.cooldown_rounds;
    cooldown_until_[best_b] = round_ + cfg_.cooldown_rounds;
    hm_cur = best_hm;
    if (trace_.on()) {
      trace_.emit(obs::TenantMigrated{now, epoch, rec.from_core, rec.to_core, dmax, dmin,
                                      rec.tenant_a, gain});
      trace_.emit(obs::TenantMigrated{now, epoch, rec.to_core, rec.from_core, dmin, dmax,
                                      rec.tenant_b, gain});
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace cmm::analysis
