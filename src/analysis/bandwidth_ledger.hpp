// One fleet-wide DRAM-bandwidth ledger, shared by service-mode
// admission control and the hierarchical fleet coordinator so both
// draw on a single budget: the coordinator's migration feasibility
// check and the ServiceDriver's admission check cannot disagree about
// how much of the machine's bandwidth is already spoken for.
//
// The ledger is a slot table (one slot per core) rather than a running
// sum: every query re-sums the committed entries in ascending slot
// order with the candidate's demand first. That is the exact
// floating-point summation order the pre-ledger ServiceDriver used, so
// single-driver admission decisions stay bit-identical — a running sum
// would drift (a + b - a != b in floats) after enough churn and could
// flip a borderline admission.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace cmm::analysis {

class BandwidthLedger {
 public:
  BandwidthLedger() = default;

  /// `domain_peak_gbs` is one LLC domain's DRAM peak (each domain owns
  /// its own MemoryController); `slots` is the fleet core count.
  BandwidthLedger(double domain_peak_gbs, std::uint32_t domains, std::size_t slots)
      : domain_peak_gbs_(domain_peak_gbs), domains_(domains), slots_(slots) {}

  double domain_peak_gbs() const noexcept { return domain_peak_gbs_; }
  double total_peak_gbs() const noexcept {
    return domain_peak_gbs_ * static_cast<double>(domains_);
  }
  std::size_t num_slots() const noexcept { return slots_.size(); }

  /// Record `gbs` of committed demand for the tenant on `slot`
  /// (overwrites any previous entry for that slot).
  void commit(std::size_t slot, std::uint32_t domain, double gbs) {
    slots_.at(slot) = Entry{domain, gbs};
  }

  void release(std::size_t slot) { slots_.at(slot).reset(); }

  /// Re-home an existing commitment (live migration moves the demand,
  /// not its size).
  void move(std::size_t from_slot, std::size_t to_slot, std::uint32_t to_domain) {
    auto& src = slots_.at(from_slot);
    if (!src.has_value()) return;
    slots_.at(to_slot) = Entry{to_domain, src->gbs};
    src.reset();
  }

  /// Fleet-wide committed demand plus `extra`, summed `extra` first
  /// then ascending slot order (the bit-compatibility contract above).
  double projected(double extra = 0.0) const noexcept {
    double sum = extra;
    for (const auto& e : slots_) {
      if (e.has_value()) sum += e->gbs;
    }
    return sum;
  }

  /// Committed demand homed on domain `d`.
  double domain_load(std::uint32_t d) const noexcept {
    double sum = 0.0;
    for (const auto& e : slots_) {
      if (e.has_value() && e->domain == d) sum += e->gbs;
    }
    return sum;
  }

  /// Fleet-wide admission gate at `headroom` fraction of total peak.
  bool admissible(double extra_gbs, double headroom) const noexcept {
    return projected(extra_gbs) <= headroom * total_peak_gbs();
  }

  /// Per-domain feasibility gate: would `extra_gbs` more demand on
  /// domain `d` stay under `headroom` of that domain's own peak? The
  /// coordinator's check before routing a migration into `d`.
  bool domain_admissible(std::uint32_t d, double extra_gbs, double headroom) const noexcept {
    return domain_load(d) + extra_gbs <= headroom * domain_peak_gbs_;
  }

 private:
  struct Entry {
    std::uint32_t domain = 0;
    double gbs = 0.0;
  };

  double domain_peak_gbs_ = 0.0;
  std::uint32_t domains_ = 1;
  std::vector<std::optional<Entry>> slots_;
};

}  // namespace cmm::analysis
