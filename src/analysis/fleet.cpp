#include "analysis/fleet.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "analysis/speedup_metrics.hpp"
#include "common/rng.hpp"
#include "core/epoch_driver.hpp"
#include "sim/multicore_system.hpp"
#include "workloads/benchmark_specs.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::analysis {

namespace {

std::string shard_name(std::uint32_t d) { return "fleet_d" + std::to_string(d); }

/// The machine + params one shard simulates: the domain's single-LLC
/// slice of the fleet machine, same cycles/seed/epoch schedule.
RunParams shard_params(const RunParams& fleet, std::uint32_t d) {
  RunParams p = fleet;
  p.machine = fleet.machine.domain_config(d);
  return p;
}

}  // namespace

std::uint64_t FleetResult::total_churn_swaps() const noexcept {
  std::uint64_t n = 0;
  for (const auto& d : domains) n += d.churn_swaps;
  return n;
}

std::uint64_t FleetResult::accepted_migrations() const noexcept {
  std::uint64_t n = 0;
  for (const auto& m : migrations) n += m.accepted ? 1 : 0;
  return n;
}

std::vector<std::size_t> placement_order(const std::vector<std::string>& benchmarks,
                                         const std::vector<double>& bandwidth) {
  if (benchmarks.size() != bandwidth.size())
    throw std::invalid_argument("placement_order: one bandwidth per benchmark required");
  std::vector<std::size_t> order(benchmarks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    // Heaviest first; equal-bandwidth tenants order by benchmark name,
    // then original index — a total order, so the result is a pure
    // function of the inputs (not of sort stability or internals).
    if (bandwidth[a] != bandwidth[b]) return bandwidth[a] > bandwidth[b];
    if (benchmarks[a] != benchmarks[b]) return benchmarks[a] < benchmarks[b];
    return a < b;
  });
  return order;
}

std::vector<workloads::WorkloadMix> plan_placement(const std::vector<std::string>& benchmarks,
                                                   PlacementMode mode, const RunParams& params,
                                                   const BatchOptions& opts) {
  const sim::MachineConfig& m = params.machine;
  if (benchmarks.size() != m.num_cores)
    throw std::invalid_argument("plan_placement: one benchmark per fleet core required");
  const std::uint32_t domains = m.num_llc_domains;
  const std::uint32_t cpd = m.cores_per_domain();

  std::vector<workloads::WorkloadMix> mixes(domains);
  for (std::uint32_t d = 0; d < domains; ++d) {
    mixes[d].name = shard_name(d);
    mixes[d].benchmarks.reserve(cpd);
  }

  if (mode == PlacementMode::RoundRobin) {
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
      mixes[i % domains].benchmarks.push_back(benchmarks[i]);
    }
    return mixes;
  }

  // BandwidthBalanced: memoized solo demand bandwidth per distinct
  // benchmark (one parallel batch), then greedy heaviest-first onto the
  // least-loaded domain. Ties break by benchmark name then index (see
  // placement_order), so the placement is a pure function of
  // (benchmarks, params).
  std::vector<std::string> distinct;
  for (const auto& b : benchmarks) {
    if (std::find(distinct.begin(), distinct.end(), b) == distinct.end()) distinct.push_back(b);
  }
  std::vector<SoloQuery> queries;
  queries.reserve(distinct.size());
  for (const auto& b : distinct) queries.push_back({b, /*prefetch_on=*/true, 0});
  // Solo characterisation on the *domain* machine: that is the box the
  // tenant will actually run on (and the key the solo memo cache keys).
  const RunParams solo_params = shard_params(params, 0);
  const auto solos = run_solo_batch(queries, solo_params, opts);

  std::vector<double> bw(benchmarks.size(), 0.0);
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const auto it = std::find(distinct.begin(), distinct.end(), benchmarks[i]);
    bw[i] = solos[static_cast<std::size_t>(it - distinct.begin())].cores.front().total_gbs();
  }

  std::vector<double> load(domains, 0.0);
  for (const std::size_t i : placement_order(benchmarks, bw)) {
    std::uint32_t best = 0;
    for (std::uint32_t d = 1; d < domains; ++d) {
      // Full domains can take no more tenants; otherwise least load
      // wins, lowest domain id on ties.
      if (mixes[d].benchmarks.size() < cpd &&
          (mixes[best].benchmarks.size() >= cpd || load[d] < load[best])) {
        best = d;
      }
    }
    mixes[best].benchmarks.push_back(benchmarks[i]);
    load[best] += bw[i];
  }
  return mixes;
}

namespace {

/// The flat PR-8 runner: plan once, shard, merge. This is the
/// coordinator_period == 0 path and its bytes are a compatibility
/// contract — the fleet_migrate bench memcmps a hierarchical-build
/// K=0 run against the frozen pre-hierarchy snapshot.
FleetResult run_fleet_flat(const FleetConfig& cfg,
                           const std::vector<workloads::WorkloadMix>& shard_mixes,
                           const BatchOptions& opts) {
  const std::uint32_t cpd = cfg.params.machine.cores_per_domain();
  FleetResult fleet;
  fleet.domains.resize(shard_mixes.size());
  std::vector<obs::MetricsRegistry> job_metrics(shard_mixes.size());

  fleet.batch = run_batch(
      shard_mixes.size(),
      [&](std::size_t d) {
        // The shard job owns every mutable object it touches: system,
        // policy, driver, churn RNG, metrics registry. Nothing is
        // shared across jobs, which is the whole determinism story.
        RunParams params = shard_params(cfg.params, static_cast<std::uint32_t>(d));
        params.epochs.metrics = &job_metrics[d];

        sim::MulticoreSystem system(params.machine);
        workloads::attach_mix(system, shard_mixes[d], params.seed);
        const auto policy = make_policy(cfg.policy, params.detector());
        core::EpochDriver driver(system, *policy, params.epochs);

        DomainShardResult& shard = fleet.domains[d];
        std::vector<std::string> running = shard_mixes[d].benchmarks;

        if (cfg.churn_slice == 0 || cfg.churn_catalog.empty()) {
          driver.run(params.run_cycles);
        } else {
          // Tenant churn between slices, the service-mode pattern:
          // detach + attach a replacement + reseed the partition to
          // baseline (churn invalidates what the policy converged on).
          // The RNG is a pure function of (churn_seed, domain), so the
          // swap schedule is thread-count independent.
          Rng churn(cfg.churn_seed ^ (0x9E3779B97F4A7C15ULL * (d + 1)));
          Cycle remaining = params.run_cycles;
          std::uint64_t attach_serial = 0;
          while (remaining > 0) {
            const Cycle slice = std::min(cfg.churn_slice, remaining);
            driver.run(slice);
            remaining -= slice;
            if (remaining == 0 || churn.next_below(1000) >= cfg.churn_per_mille) continue;
            const auto core = static_cast<CoreId>(churn.next_below(cpd));
            const auto& next =
                cfg.churn_catalog[churn.next_below(cfg.churn_catalog.size())];
            system.detach_core(core);
            system.attach_core(
                core, workloads::make_op_source(
                          next, params.machine, core,
                          params.seed + 0x1000ULL * core + 0x517D00ULL * (++attach_serial)));
            running[core] = next;
            driver.reseed(core::ResourceConfig::baseline(cpd, system.cat().llc_ways()));
            ++shard.churn_swaps;
          }
        }

        const auto& exec = driver.execution_counters();
        for (CoreId c = 0; c < exec.size(); ++c) {
          shard.result.cores.push_back(
              make_core_stats(running[c], exec[c], params.machine.freq_ghz));
          shard.result.measured_cycles =
              std::max<Cycle>(shard.result.measured_cycles, exec[c].cycles);
        }
        shard.hm_ipc = harmonic_mean(shard.result.ipcs());
        shard.epochs_completed = driver.epoch_index();
      },
      opts);

  // Coordinator-side merge, all in domain (job) order — deterministic
  // at any thread count.
  for (std::size_t d = 0; d < fleet.domains.size(); ++d) {
    fleet.metrics.merge(job_metrics[d]);
    const auto& shard = fleet.domains[d];
    for (const auto& core : shard.result.cores) fleet.merged.cores.push_back(core);
    fleet.merged.measured_cycles =
        std::max(fleet.merged.measured_cycles, shard.result.measured_cycles);
    fleet.metrics.count("fleet.domains");
    if (shard.churn_swaps > 0) fleet.metrics.count("fleet.churn_swaps", shard.churn_swaps);
  }
  fleet.hm_ipc = harmonic_mean(fleet.merged.ipcs());
  return fleet;
}

/// The two-level runner: persistent per-domain shards advanced
/// slice-by-slice under a barrier, with the FleetCoordinator planning
/// cross-domain migrations between slices every coordinator_period
/// slices. Shard jobs still own all of their mutable state; the
/// coordinator acts serially on the calling thread, so the whole run
/// stays bit-identical at any CMM_THREADS.
FleetResult run_fleet_hierarchical(const FleetConfig& cfg,
                                   const std::vector<workloads::WorkloadMix>& shard_mixes,
                                   const BatchOptions& opts) {
  const sim::MachineConfig& m = cfg.params.machine;
  const std::uint32_t cpd = m.cores_per_domain();
  const std::size_t nd = shard_mixes.size();

  FleetResult fleet;
  fleet.domains.resize(nd);
  std::vector<obs::MetricsRegistry> job_metrics(nd);

  // Persistent shard state (the flat runner's job-local state, hoisted
  // so it survives across slices and migrations).
  struct Shard {
    RunParams params;
    std::unique_ptr<sim::MulticoreSystem> system;
    std::unique_ptr<core::Policy> policy;
    std::unique_ptr<core::EpochDriver> driver;
    Rng churn;
    std::vector<std::string> running;
    std::uint64_t attach_serial = 0;
  };
  std::vector<Shard> shards(nd);
  for (std::size_t d = 0; d < nd; ++d) {
    Shard& s = shards[d];
    s.params = shard_params(cfg.params, static_cast<std::uint32_t>(d));
    s.params.epochs.metrics = &job_metrics[d];
    s.system = std::make_unique<sim::MulticoreSystem>(s.params.machine);
    workloads::attach_mix(*s.system, shard_mixes[d], s.params.seed);
    s.policy = make_policy(cfg.policy, s.params.detector());
    s.driver = std::make_unique<core::EpochDriver>(*s.system, *s.policy, s.params.epochs);
    s.churn = Rng(cfg.churn_seed ^ (0x9E3779B97F4A7C15ULL * (d + 1)));
    s.running = shard_mixes[d].benchmarks;
  }

  CoordinatorConfig ccfg;
  ccfg.domains = static_cast<std::uint32_t>(nd);
  ccfg.cores_per_domain = cpd;
  ccfg.domain_peak_gbs = m.dram_peak_bytes_per_cycle * m.freq_ghz;
  ccfg.freq_ghz = m.freq_ghz;
  ccfg.migration_budget = cfg.migration_budget;
  ccfg.min_gain = cfg.migration_min_gain;
  ccfg.cooldown_rounds = cfg.migration_cooldown;
  ccfg.bandwidth_headroom = cfg.migration_headroom;
  ccfg.sink = cfg.coordinator_sink;
  FleetCoordinator coordinator(ccfg);

  const bool churning = cfg.churn_slice != 0 && !cfg.churn_catalog.empty();
  const Cycle slice_len =
      cfg.churn_slice != 0
          ? cfg.churn_slice
          : cfg.params.epochs.execution_epoch + 8 * cfg.params.epochs.sampling_interval;

  Cycle remaining = cfg.params.run_cycles;
  std::uint64_t slice_idx = 0;
  while (remaining > 0) {
    const Cycle step = std::min(slice_len, remaining);
    const bool final_slice = step == remaining;
    const BatchStats bs = run_batch(
        nd,
        [&](std::size_t d) {
          Shard& s = shards[d];
          s.driver->run(step);
          // Same churn schedule as the flat runner: the RNG stream per
          // domain is untouched by slicing or migration (the final
          // slice skips the draw, exactly like `remaining == 0` in the
          // flat loop's short-circuit).
          if (!churning || final_slice) return;
          if (s.churn.next_below(1000) >= cfg.churn_per_mille) return;
          const auto core = static_cast<CoreId>(s.churn.next_below(cpd));
          const auto& next = cfg.churn_catalog[s.churn.next_below(cfg.churn_catalog.size())];
          s.system->detach_core(core);
          s.system->attach_core(
              core, workloads::make_op_source(
                        next, s.params.machine, core,
                        s.params.seed + 0x1000ULL * core + 0x517D00ULL * (++s.attach_serial)));
          s.running[core] = next;
          s.driver->reseed(core::ResourceConfig::baseline(cpd, s.system->cat().llc_ways()));
          ++fleet.domains[d].churn_swaps;
        },
        opts);
    fleet.batch.jobs = bs.jobs;
    fleet.batch.threads = bs.threads;
    fleet.batch.wall_seconds += bs.wall_seconds;
    fleet.batch.job_seconds += bs.job_seconds;
    fleet.batch.cache_hits += bs.cache_hits;
    fleet.batch.cache_misses += bs.cache_misses;
    remaining -= step;
    ++slice_idx;
    if (remaining == 0 || slice_idx % cfg.coordinator_period != 0) continue;

    // ---- Coordinator round (serial, between slices) ----
    std::vector<DomainTelemetry> telemetry(nd);
    for (std::size_t d = 0; d < nd; ++d) {
      telemetry[d].summary = shards[d].driver->domain_summary();
      telemetry[d].running = shards[d].running;
    }
    for (MigrationRecord& rec : coordinator.plan_round(telemetry)) {
      if (rec.accepted) {
        const std::uint32_t d1 = rec.from_core / cpd;
        const std::uint32_t d2 = rec.to_core / cpd;
        const auto l1 = static_cast<CoreId>(rec.from_core % cpd);
        const auto l2 = static_cast<CoreId>(rec.to_core % cpd);
        // Cross-system swap, stream-preserving: both tenants continue
        // their programs on cold cores in their new domains.
        sim::OpStreamState sa = shards[d1].system->export_tenant(l1);
        sim::OpStreamState sb = shards[d2].system->export_tenant(l2);
        shards[d1].system->attach_core_stream(l1, std::move(sb));
        shards[d2].system->attach_core_stream(l2, std::move(sa));
        std::swap(shards[d1].running[l1], shards[d2].running[l2]);
        for (const auto& [dd, ll] : {std::pair{d1, l1}, std::pair{d2, l2}}) {
          shards[dd].driver->reseed(
              core::ResourceConfig::baseline(cpd, shards[dd].system->cat().llc_ways()));
          shards[dd].driver->notify_membership_change({ll});
        }
      }
      fleet.migrations.push_back(std::move(rec));
    }
  }

  // Result assembly + merge, serial in domain order (flat-runner
  // semantics, with the migration tally on top).
  for (std::size_t d = 0; d < nd; ++d) {
    DomainShardResult& shard = fleet.domains[d];
    const auto& exec = shards[d].driver->execution_counters();
    for (CoreId c = 0; c < exec.size(); ++c) {
      shard.result.cores.push_back(
          make_core_stats(shards[d].running[c], exec[c], shards[d].params.machine.freq_ghz));
      shard.result.measured_cycles = std::max<Cycle>(shard.result.measured_cycles, exec[c].cycles);
    }
    shard.hm_ipc = harmonic_mean(shard.result.ipcs());
    shard.epochs_completed = shards[d].driver->epoch_index();

    fleet.metrics.merge(job_metrics[d]);
    for (const auto& core : shard.result.cores) fleet.merged.cores.push_back(core);
    fleet.merged.measured_cycles =
        std::max(fleet.merged.measured_cycles, shard.result.measured_cycles);
    fleet.metrics.count("fleet.domains");
    if (shard.churn_swaps > 0) fleet.metrics.count("fleet.churn_swaps", shard.churn_swaps);
  }
  if (coordinator.rounds() > 0) fleet.metrics.count("fleet.coordinator_rounds", coordinator.rounds());
  if (coordinator.accepted() > 0) fleet.metrics.count("fleet.migrations", coordinator.accepted());
  if (coordinator.rejected() > 0)
    fleet.metrics.count("fleet.migrations_rejected", coordinator.rejected());
  fleet.hm_ipc = harmonic_mean(fleet.merged.ipcs());
  return fleet;
}

}  // namespace

FleetResult run_fleet(const FleetConfig& cfg,
                      const std::vector<workloads::WorkloadMix>& shard_mixes,
                      const BatchOptions& opts) {
  const sim::MachineConfig& m = cfg.params.machine;
  if (!m.valid()) throw std::invalid_argument("run_fleet: invalid fleet MachineConfig");
  if (shard_mixes.size() != m.num_llc_domains)
    throw std::invalid_argument("run_fleet: one shard mix per LLC domain required");
  const std::uint32_t cpd = m.cores_per_domain();
  for (const auto& mix : shard_mixes) {
    if (mix.benchmarks.size() != cpd)
      throw std::invalid_argument("run_fleet: shard mix size != cores_per_domain");
  }
  if (cfg.coordinator_period == 0) return run_fleet_flat(cfg, shard_mixes, opts);
  return run_fleet_hierarchical(cfg, shard_mixes, opts);
}

FleetResult run_fleet(const FleetConfig& cfg, const std::vector<std::string>& benchmarks,
                      PlacementMode mode, const BatchOptions& opts) {
  return run_fleet(cfg, plan_placement(benchmarks, mode, cfg.params, opts), opts);
}

}  // namespace cmm::analysis
