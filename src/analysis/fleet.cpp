#include "analysis/fleet.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "analysis/speedup_metrics.hpp"
#include "common/rng.hpp"
#include "core/epoch_driver.hpp"
#include "sim/multicore_system.hpp"
#include "workloads/workload_mix.hpp"

namespace cmm::analysis {

namespace {

std::string shard_name(std::uint32_t d) { return "fleet_d" + std::to_string(d); }

/// The machine + params one shard simulates: the domain's single-LLC
/// slice of the fleet machine, same cycles/seed/epoch schedule.
RunParams shard_params(const RunParams& fleet, std::uint32_t d) {
  RunParams p = fleet;
  p.machine = fleet.machine.domain_config(d);
  return p;
}

}  // namespace

std::uint64_t FleetResult::total_churn_swaps() const noexcept {
  std::uint64_t n = 0;
  for (const auto& d : domains) n += d.churn_swaps;
  return n;
}

std::vector<workloads::WorkloadMix> plan_placement(const std::vector<std::string>& benchmarks,
                                                   PlacementMode mode, const RunParams& params,
                                                   const BatchOptions& opts) {
  const sim::MachineConfig& m = params.machine;
  if (benchmarks.size() != m.num_cores)
    throw std::invalid_argument("plan_placement: one benchmark per fleet core required");
  const std::uint32_t domains = m.num_llc_domains;
  const std::uint32_t cpd = m.cores_per_domain();

  std::vector<workloads::WorkloadMix> mixes(domains);
  for (std::uint32_t d = 0; d < domains; ++d) {
    mixes[d].name = shard_name(d);
    mixes[d].benchmarks.reserve(cpd);
  }

  if (mode == PlacementMode::RoundRobin) {
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
      mixes[i % domains].benchmarks.push_back(benchmarks[i]);
    }
    return mixes;
  }

  // BandwidthBalanced: memoized solo demand bandwidth per distinct
  // benchmark (one parallel batch), then greedy heaviest-first onto the
  // least-loaded domain. All ties break by index, so the placement is a
  // pure function of (benchmarks, params).
  std::vector<std::string> distinct;
  for (const auto& b : benchmarks) {
    if (std::find(distinct.begin(), distinct.end(), b) == distinct.end()) distinct.push_back(b);
  }
  std::vector<SoloQuery> queries;
  queries.reserve(distinct.size());
  for (const auto& b : distinct) queries.push_back({b, /*prefetch_on=*/true, 0});
  // Solo characterisation on the *domain* machine: that is the box the
  // tenant will actually run on (and the key the solo memo cache keys).
  const RunParams solo_params = shard_params(params, 0);
  const auto solos = run_solo_batch(queries, solo_params, opts);

  std::vector<double> bw(benchmarks.size(), 0.0);
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const auto it = std::find(distinct.begin(), distinct.end(), benchmarks[i]);
    bw[i] = solos[static_cast<std::size_t>(it - distinct.begin())].cores.front().total_gbs();
  }

  std::vector<std::size_t> order(benchmarks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return bw[a] > bw[b]; });

  std::vector<double> load(domains, 0.0);
  for (const std::size_t i : order) {
    std::uint32_t best = 0;
    for (std::uint32_t d = 1; d < domains; ++d) {
      // Full domains can take no more tenants; otherwise least load
      // wins, lowest domain id on ties.
      if (mixes[d].benchmarks.size() < cpd &&
          (mixes[best].benchmarks.size() >= cpd || load[d] < load[best])) {
        best = d;
      }
    }
    mixes[best].benchmarks.push_back(benchmarks[i]);
    load[best] += bw[i];
  }
  return mixes;
}

FleetResult run_fleet(const FleetConfig& cfg,
                      const std::vector<workloads::WorkloadMix>& shard_mixes,
                      const BatchOptions& opts) {
  const sim::MachineConfig& m = cfg.params.machine;
  if (!m.valid()) throw std::invalid_argument("run_fleet: invalid fleet MachineConfig");
  if (shard_mixes.size() != m.num_llc_domains)
    throw std::invalid_argument("run_fleet: one shard mix per LLC domain required");
  const std::uint32_t cpd = m.cores_per_domain();
  for (const auto& mix : shard_mixes) {
    if (mix.benchmarks.size() != cpd)
      throw std::invalid_argument("run_fleet: shard mix size != cores_per_domain");
  }

  FleetResult fleet;
  fleet.domains.resize(shard_mixes.size());
  std::vector<obs::MetricsRegistry> job_metrics(shard_mixes.size());

  fleet.batch = run_batch(
      shard_mixes.size(),
      [&](std::size_t d) {
        // The shard job owns every mutable object it touches: system,
        // policy, driver, churn RNG, metrics registry. Nothing is
        // shared across jobs, which is the whole determinism story.
        RunParams params = shard_params(cfg.params, static_cast<std::uint32_t>(d));
        params.epochs.metrics = &job_metrics[d];

        sim::MulticoreSystem system(params.machine);
        workloads::attach_mix(system, shard_mixes[d], params.seed);
        const auto policy = make_policy(cfg.policy, params.detector());
        core::EpochDriver driver(system, *policy, params.epochs);

        DomainShardResult& shard = fleet.domains[d];
        std::vector<std::string> running = shard_mixes[d].benchmarks;

        if (cfg.churn_slice == 0 || cfg.churn_catalog.empty()) {
          driver.run(params.run_cycles);
        } else {
          // Tenant churn between slices, the service-mode pattern:
          // detach + attach a replacement + reseed the partition to
          // baseline (churn invalidates what the policy converged on).
          // The RNG is a pure function of (churn_seed, domain), so the
          // swap schedule is thread-count independent.
          Rng churn(cfg.churn_seed ^ (0x9E3779B97F4A7C15ULL * (d + 1)));
          Cycle remaining = params.run_cycles;
          std::uint64_t attach_serial = 0;
          while (remaining > 0) {
            const Cycle slice = std::min(cfg.churn_slice, remaining);
            driver.run(slice);
            remaining -= slice;
            if (remaining == 0 || churn.next_below(1000) >= cfg.churn_per_mille) continue;
            const auto core = static_cast<CoreId>(churn.next_below(cpd));
            const auto& next =
                cfg.churn_catalog[churn.next_below(cfg.churn_catalog.size())];
            system.detach_core(core);
            system.attach_core(
                core, workloads::make_op_source(
                          next, params.machine, core,
                          params.seed + 0x1000ULL * core + 0x517D00ULL * (++attach_serial)));
            running[core] = next;
            driver.reseed(core::ResourceConfig::baseline(cpd, system.cat().llc_ways()));
            ++shard.churn_swaps;
          }
        }

        const auto& exec = driver.execution_counters();
        for (CoreId c = 0; c < exec.size(); ++c) {
          shard.result.cores.push_back(
              make_core_stats(running[c], exec[c], params.machine.freq_ghz));
          shard.result.measured_cycles =
              std::max<Cycle>(shard.result.measured_cycles, exec[c].cycles);
        }
        shard.hm_ipc = harmonic_mean(shard.result.ipcs());
        shard.epochs_completed = driver.epoch_index();
      },
      opts);

  // Coordinator-side merge, all in domain (job) order — deterministic
  // at any thread count.
  for (std::size_t d = 0; d < fleet.domains.size(); ++d) {
    fleet.metrics.merge(job_metrics[d]);
    const auto& shard = fleet.domains[d];
    for (const auto& core : shard.result.cores) fleet.merged.cores.push_back(core);
    fleet.merged.measured_cycles =
        std::max(fleet.merged.measured_cycles, shard.result.measured_cycles);
    fleet.metrics.count("fleet.domains");
    if (shard.churn_swaps > 0) fleet.metrics.count("fleet.churn_swaps", shard.churn_swaps);
  }
  fleet.hm_ipc = harmonic_mean(fleet.merged.ipcs());
  return fleet;
}

FleetResult run_fleet(const FleetConfig& cfg, const std::vector<std::string>& benchmarks,
                      PlacementMode mode, const BatchOptions& opts) {
  return run_fleet(cfg, plan_placement(benchmarks, mode, cfg.params, opts), opts);
}

}  // namespace cmm::analysis
