// Sandbox prefetcher (Pugsley, Chishti, Wilkerson, Chuang, Scott,
// Cheng, Li, Balasubramonian, "Sandbox Prefetching: Safe Run-Time
// Evaluation of Aggressive Prefetchers", HPCA 2014), ported to the
// sim:: plug-in contract as an L2 engine.
//
// Port simplifications vs. the original:
//  - the sandbox is a direct-mapped address table instead of a Bloom
//    filter (no false positives; deterministic);
//  - one candidate offset auditions at a time instead of the original's
//    sixteen parallel sandboxes;
//  - accepted offsets issue with degree 1 each rather than the
//    cumulative-score degree ramp.
// All state is integral, so behaviour is bit-deterministic.
#include <algorithm>

#include "sim/pf_common.hpp"
#include "sim/prefetcher.hpp"

namespace cmm::sim {

namespace {
constexpr Addr kNoEntry = ~Addr{0};
}  // namespace

const std::vector<int>& SandboxPrefetcher::candidate_list() {
  // The audition rota: forward then backward offsets, nearest first
  // (the original evaluates +/-1..8).
  static const std::vector<int> list = {1, -1, 2, -2, 3, -3, 4, -4, 5, -5, 6, -6, 7, -7, 8, -8};
  return list;
}

SandboxPrefetcher::SandboxPrefetcher() : SandboxPrefetcher(Config{}) {}

SandboxPrefetcher::SandboxPrefetcher(const Config& cfg)
    : cfg_(cfg), sandbox_(cfg.sandbox_entries, kNoEntry) {}

void SandboxPrefetcher::observe(const PrefetchObservation& obs, std::vector<Addr>& out) {
  const Addr line = obs.line_addr;
  const Addr page = page_of(line, cfg_.lines_per_page);
  const std::uint32_t offset = page_offset(line, cfg_.lines_per_page);
  const int d = candidate_list()[candidate_index_];

  // Score: did an earlier sandboxed pseudo-prefetch cover this access?
  if (sandbox_[line % cfg_.sandbox_entries] == line) ++score_;

  // Record what a prefetch at the offset under test would have fetched.
  const std::int64_t t = page_local_offset(offset, d, cfg_.lines_per_page);
  if (t >= 0) {
    const Addr target = line_in_page(page, static_cast<std::uint32_t>(t), cfg_.lines_per_page);
    sandbox_[target % cfg_.sandbox_entries] = target;
  }

  if (++audition_pos_ >= cfg_.audition_accesses) end_audition();

  // Real prefetches: one candidate per accepted offset, page-clamped.
  std::size_t emitted = 0;
  for (const int a : accepted_) {
    const std::int64_t ao = page_local_offset(offset, a, cfg_.lines_per_page);
    if (ao < 0) continue;
    out.push_back(line_in_page(page, static_cast<std::uint32_t>(ao), cfg_.lines_per_page));
    ++emitted;
  }
  note_issued(emitted);
}

void SandboxPrefetcher::end_audition() {
  const int d = candidate_list()[candidate_index_];
  const auto pos = std::find(accepted_.begin(), accepted_.end(), d);
  if (score_ >= cfg_.accept_score) {
    if (pos != accepted_.end()) {
      accepted_scores_[static_cast<std::size_t>(pos - accepted_.begin())] = score_;
    } else {
      accepted_.push_back(d);
      accepted_scores_.push_back(score_);
      if (accepted_.size() > cfg_.max_accepted) {
        // Drop the weakest (earliest on ties) to keep the live set small.
        const auto weakest =
            std::min_element(accepted_scores_.begin(), accepted_scores_.end());
        const auto i = static_cast<std::size_t>(weakest - accepted_scores_.begin());
        accepted_.erase(accepted_.begin() + static_cast<std::ptrdiff_t>(i));
        accepted_scores_.erase(weakest);
      }
    }
  } else if (pos != accepted_.end()) {
    // Re-audition failed: the offset stopped paying for itself.
    accepted_scores_.erase(accepted_scores_.begin() + (pos - accepted_.begin()));
    accepted_.erase(pos);
  }
  std::fill(sandbox_.begin(), sandbox_.end(), kNoEntry);
  score_ = 0;
  audition_pos_ = 0;
  candidate_index_ = (candidate_index_ + 1) % static_cast<unsigned>(candidate_list().size());
}

void SandboxPrefetcher::reset() {
  std::fill(sandbox_.begin(), sandbox_.end(), kNoEntry);
  accepted_.clear();
  accepted_scores_.clear();
  candidate_index_ = 0;
  audition_pos_ = 0;
  score_ = 0;
}

}  // namespace cmm::sim
