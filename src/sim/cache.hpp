// Set-associative cache with true-LRU replacement, way-restricted
// allocation (Intel CAT semantics at the LLC), prefetched-line
// bookkeeping for accuracy statistics, and a `ready_at` timestamp per
// line so that demand hits on still-in-flight prefetches pay the
// residual latency (prefetch timeliness).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitmask.hpp"
#include "common/types.hpp"
#include "sim/machine_config.hpp"

namespace cmm::sim {

/// Per-cache event counters. Separate demand/prefetch channels because
/// every Table-I metric distinguishes them.
struct CacheStats {
  std::uint64_t demand_accesses = 0;
  std::uint64_t demand_hits = 0;
  std::uint64_t prefetch_accesses = 0;
  std::uint64_t prefetch_hits = 0;

  // Prefetch usefulness: lines brought in by a prefetch that were
  // demand-touched at least once vs. evicted untouched.
  std::uint64_t prefetched_lines_used = 0;
  std::uint64_t prefetched_lines_evicted_unused = 0;

  std::uint64_t evictions = 0;

  std::uint64_t demand_misses() const noexcept { return demand_accesses - demand_hits; }
  std::uint64_t prefetch_misses() const noexcept { return prefetch_accesses - prefetch_hits; }

  /// Fraction of completed prefetched lines that were useful; NaN-free.
  double prefetch_accuracy() const noexcept {
    const std::uint64_t total = prefetched_lines_used + prefetched_lines_evicted_unused;
    return total == 0 ? 0.0 : static_cast<double>(prefetched_lines_used) / static_cast<double>(total);
  }

  void reset() { *this = CacheStats{}; }
};

struct LookupResult {
  bool hit = false;
  /// For hits: cycle at which the line's data is available (fill time of
  /// an in-flight prefetch). The caller pays max(0, ready_at - now)
  /// residual cycles on top of the cache's access latency.
  Cycle ready_at = 0;
  /// For hits on a prefetched, never-demand-touched line: this access
  /// just converted the prefetch to "useful".
  bool first_use_of_prefetch = false;
};

struct FillResult {
  bool evicted_valid = false;
  Addr evicted_line = 0;            // line address of the victim, if any
  bool evicted_was_prefetched_unused = false;
  bool evicted_dirty = false;       // victim held modified data
  CoreId evicted_owner = kInvalidCore;
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geom);

  /// Probe + LRU update. `line_addr` is a *line* address (byte addr >>
  /// line_shift). Demand hits mark prefetched lines as used.
  LookupResult access(Addr line_addr, AccessType type, Cycle now);

  /// Probe without LRU update or usefulness side effects.
  bool contains(Addr line_addr) const;

  /// Allocate `line_addr`, choosing the victim only among ways allowed
  /// by `alloc_mask` (CAT). Invalid ways inside the mask are preferred;
  /// otherwise the LRU way inside the mask is evicted. A full mask is
  /// ordinary allocation. `ready_at` is the cycle the fill completes
  /// (== now for demand fills that already waited on memory).
  FillResult fill(Addr line_addr, AccessType type, Cycle now, Cycle ready_at,
                  WayMask alloc_mask, CoreId owner = kInvalidCore);

  /// Drop a line if present (used by tests and back-invalidation studies).
  bool invalidate(Addr line_addr);

  /// Invalidate everything; stats preserved.
  void flush();

  const CacheStats& stats() const noexcept { return stats_; }
  CacheStats& mutable_stats() noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

  const CacheGeometry& geometry() const noexcept { return geom_; }
  std::uint32_t num_sets() const noexcept { return num_sets_; }

  /// Valid-line count per owning core (kInvalidCore-owned lines are
  /// dropped). Diagnostic: shows who holds the cache.
  std::vector<std::uint64_t> occupancy_by_owner(unsigned num_cores) const;

  /// Number of valid lines currently in `set` (test/diagnostic use).
  unsigned set_occupancy(std::uint32_t set) const;
  /// Number of valid lines in `set` residing in ways covered by `mask`.
  unsigned set_occupancy_in_mask(std::uint32_t set, WayMask mask) const;

  std::uint32_t set_index(Addr line_addr) const noexcept {
    return static_cast<std::uint32_t>(line_addr & (num_sets_ - 1));
  }

 private:
  struct Line {
    Addr tag = 0;
    Cycle ready_at = 0;
    std::uint64_t last_used = 0;  // global-tick timestamp (higher = newer)
    CoreId owner = kInvalidCore;
    bool valid = false;
    bool prefetched = false;   // brought in by a prefetch...
    bool pf_used = false;      // ...and demand-touched since
    bool dirty = false;        // modified since fill (writeback needed)
  };

  Line* find(Addr line_addr);
  const Line* find(Addr line_addr) const;
  void touch(Line& line) noexcept { line.last_used = ++tick_; }

  CacheGeometry geom_;
  std::uint32_t num_sets_;
  std::uint32_t ways_;
  std::vector<Line> lines_;  // set-major: lines_[set * ways_ + way]
  std::uint64_t tick_ = 0;   // LRU clock
  CacheStats stats_;
};

}  // namespace cmm::sim
