// Set-associative cache with true-LRU replacement, way-restricted
// allocation (Intel CAT semantics at the LLC), prefetched-line
// bookkeeping for accuracy statistics, and a `ready_at` timestamp per
// line so that demand hits on still-in-flight prefetches pay the
// residual latency (prefetch timeliness).
//
// Storage is structure-of-arrays (set-major): the tag probe in the hot
// lookup path is an early-exit scan over a contiguous `Addr` slice
// (invalid ways hold an impossible sentinel tag, so there is no per-way
// valid check), and a per-set valid bitmask lets empty-set misses
// short-circuit without touching the tag array at all.
// CAT-masked victim selection iterates only the set bits of the
// allocation mask, so a fill costs O(allowed ways), not O(associativity).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/bitmask.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"
#include "sim/machine_config.hpp"

namespace cmm::sim {

/// Per-cache event counters. Separate demand/prefetch channels because
/// every Table-I metric distinguishes them.
///
/// Stats contract for line removal:
///  - `evictions` counts only *capacity* evictions: a valid line pushed
///    out by `fill()` to make room inside the allocation mask.
///  - `invalidate()` (back-invalidation, test teardown) and `flush()`
///    drop lines without bumping `evictions` — they are not replacement
///    decisions and must not skew replacement-pressure metrics.
///  - `prefetched_lines_evicted_unused` counts every removal of a
///    never-demand-touched prefetched line regardless of the removal
///    path (fill eviction *or* invalidate): prefetch accuracy is a
///    property of the prefetch, not of how the line left the cache.
///    `flush()` is the one exception — it wipes lines *and* keeps the
///    accuracy stats as-of the flush point (used between runs).
struct CacheStats {
  std::uint64_t demand_accesses = 0;
  std::uint64_t demand_hits = 0;
  std::uint64_t prefetch_accesses = 0;
  std::uint64_t prefetch_hits = 0;

  // Prefetch usefulness: lines brought in by a prefetch that were
  // demand-touched at least once vs. evicted untouched.
  std::uint64_t prefetched_lines_used = 0;
  std::uint64_t prefetched_lines_evicted_unused = 0;

  std::uint64_t evictions = 0;

  std::uint64_t demand_misses() const noexcept { return demand_accesses - demand_hits; }
  std::uint64_t prefetch_misses() const noexcept { return prefetch_accesses - prefetch_hits; }

  /// Fraction of completed prefetched lines that were useful; NaN-free.
  double prefetch_accuracy() const noexcept {
    const std::uint64_t total = prefetched_lines_used + prefetched_lines_evicted_unused;
    return total == 0 ? 0.0 : static_cast<double>(prefetched_lines_used) / static_cast<double>(total);
  }

  void reset() { *this = CacheStats{}; }
};

struct LookupResult {
  bool hit = false;
  /// For hits: cycle at which the line's data is available (fill time of
  /// an in-flight prefetch). The caller pays max(0, ready_at - now)
  /// residual cycles on top of the cache's access latency.
  Cycle ready_at = 0;
  /// For hits on a prefetched, never-demand-touched line: this access
  /// just converted the prefetch to "useful".
  bool first_use_of_prefetch = false;
};

struct FillResult {
  bool evicted_valid = false;
  Addr evicted_line = 0;            // line address of the victim, if any
  bool evicted_was_prefetched_unused = false;
  bool evicted_dirty = false;       // victim held modified data
  CoreId evicted_owner = kInvalidCore;
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geom);

  /// Probe + LRU update. `line_addr` is a *line* address (byte addr >>
  /// line_shift). Demand hits mark prefetched lines as used.
  LookupResult access(Addr line_addr, AccessType type, Cycle now);

  /// Probe without LRU update or usefulness side effects. Header-inline:
  /// this is the pure-probe hot path (prefetcher sandboxes, occupancy
  /// scans, the probe micro-benches) and must not pay a call on top of
  /// the vector kernel.
  bool contains(Addr line_addr) const noexcept {
    return probe(set_index(line_addr), line_addr) >= 0;
  }

  /// Allocate `line_addr`, choosing the victim only among ways allowed
  /// by `alloc_mask` (CAT). Invalid ways inside the mask are preferred;
  /// otherwise the LRU way inside the mask is evicted. A full mask is
  /// ordinary allocation. `ready_at` is the cycle the fill completes
  /// (== now for demand fills that already waited on memory).
  FillResult fill(Addr line_addr, AccessType type, Cycle now, Cycle ready_at,
                  WayMask alloc_mask, CoreId owner = kInvalidCore);

  /// Drop a line if present (used by inclusive back-invalidation, tests
  /// and back-invalidation studies). Counts an unused prefetched line
  /// toward `prefetched_lines_evicted_unused`, but does *not* count an
  /// eviction — see the CacheStats contract above.
  bool invalidate(Addr line_addr);

  /// Invalidate everything; stats preserved.
  void flush();

  /// Drop every valid line owned by `owner` (service-mode hotplug: a
  /// detaching tenant's LLC footprint must not leak into the next
  /// tenant's run). Cold path: full sets x ways scan. Counts unused
  /// prefetched lines like invalidate(); returns lines dropped.
  std::size_t invalidate_owner(CoreId owner);

  const CacheStats& stats() const noexcept { return stats_; }
  CacheStats& mutable_stats() noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

  const CacheGeometry& geometry() const noexcept { return geom_; }
  std::uint32_t num_sets() const noexcept { return num_sets_; }

  /// Valid-line count per owning core (kInvalidCore-owned lines are
  /// dropped). Diagnostic: shows who holds the cache. O(num_cores):
  /// served from incrementally maintained per-owner counters, not a
  /// sets x ways scan.
  std::vector<std::uint64_t> occupancy_by_owner(unsigned num_cores) const;

  /// Number of valid lines currently in `set` (test/diagnostic use).
  unsigned set_occupancy(std::uint32_t set) const;
  /// Number of valid lines in `set` residing in ways covered by `mask`.
  unsigned set_occupancy_in_mask(std::uint32_t set, WayMask mask) const;

  std::uint32_t set_index(Addr line_addr) const noexcept {
    return static_cast<std::uint32_t>(line_addr & (num_sets_ - 1));
  }

 private:
  // Packed per-line flag bits (flags_ array).
  static constexpr std::uint8_t kFlagPrefetched = 1u << 0;  // brought in by a prefetch...
  static constexpr std::uint8_t kFlagPfUsed = 1u << 1;      // ...and demand-touched since
  static constexpr std::uint8_t kFlagDirty = 1u << 2;       // modified since fill

  std::size_t line_index(std::uint32_t set, std::uint32_t way) const noexcept {
    return static_cast<std::size_t>(set) * ways_ + way;
  }

  // Tag stored in invalid ways. Probes compare tags only (no per-way
  // valid check, no bit-scan dependency chain), which makes this value
  // unusable as a real line address; fill() asserts it never arrives.
  static constexpr Addr kNoTag = ~Addr{0};

  /// Way of `set` holding `line_addr`, or -1. Empty sets short-circuit
  /// on the valid bitmask; otherwise a vectorized equality scan over the
  /// set's contiguous tag slice (invalid ways hold kNoTag and can never
  /// match — see simd.hpp for the dispatch contract). All backends
  /// preserve lowest-way-wins probe order bit-for-bit.
  int probe(std::uint32_t set, Addr line_addr) const noexcept {
    if (valid_[set] == 0) return -1;
    return simd::find_tag(&tags_[line_index(set, 0)], ways_, line_addr);
  }

  void touch(std::size_t idx) noexcept { last_used_[idx] = ++tick_; }

  void owner_add(CoreId o) {
    if (o == kInvalidCore) return;
    if (o >= owner_occupancy_.size()) owner_occupancy_.resize(o + 1, 0);
    ++owner_occupancy_[o];
  }
  void owner_remove(CoreId o) noexcept {
    if (o == kInvalidCore || o >= owner_occupancy_.size()) return;
    --owner_occupancy_[o];
  }

  CacheGeometry geom_;
  std::uint32_t num_sets_;
  std::uint32_t ways_;

  // SoA line metadata, set-major: index = set * ways_ + way.
  std::vector<Addr> tags_;
  std::vector<Cycle> ready_at_;
  std::vector<std::uint64_t> last_used_;  // global-tick timestamp (higher = newer)
  std::vector<CoreId> owner_;
  std::vector<std::uint8_t> flags_;
  std::vector<WayMask> valid_;  // per-set valid bitmask (bit w = way w holds a line)

  // Valid-line count per owner, maintained on fill/evict/invalidate/
  // flush so occupancy_by_owner() never scans the line arrays.
  std::vector<std::uint64_t> owner_occupancy_;

  std::uint64_t tick_ = 0;  // LRU clock
  CacheStats stats_;
};

}  // namespace cmm::sim
