// Topology, latency, and bandwidth parameters of the simulated machine.
//
// The default configurations model the paper's testbed, an Intel Xeon
// E5-2620 v4 (Broadwell-EP): 8 cores, 32 KB 8-way L1D, 256 KB 8-way
// private L2, 20 MB 20-way shared LLC, DDR4-2400 with 68.3 GB/s peak,
// 2.1 GHz.  `scaled()` shrinks capacities (but not associativities or
// way counts) so test/bench runs finish quickly on one host core while
// preserving all capacity *ratios* that the paper's effects depend on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/prefetcher.hpp"

namespace cmm::sim {

struct CacheGeometry {
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t line_size = 64;

  constexpr std::uint64_t num_lines() const noexcept { return size_bytes / line_size; }
  constexpr std::uint64_t num_sets() const noexcept { return num_lines() / ways; }
};

struct MachineConfig {
  std::uint32_t num_cores = 8;

  /// Number of LLC/bandwidth domains (multi-socket or multi-CCX fleet
  /// topologies). Cores are split evenly across domains in contiguous
  /// id blocks: domain d owns cores [d*cores_per_domain(),
  /// (d+1)*cores_per_domain()). Each domain gets a private instance of
  /// the `llc` geometry, its own 16-COS CAT, and its own memory
  /// controller with the full `dram_peak_bytes_per_cycle` — domains
  /// share nothing, which is what makes fleet runs shardable with
  /// bit-exact determinism (see DESIGN.md). 1 (the default) is the
  /// paper's single-socket box and is bit-identical to the pre-domain
  /// code.
  std::uint32_t num_llc_domains = 1;

  CacheGeometry l1d{32 * 1024, 8, 64};
  CacheGeometry l2{256 * 1024, 8, 64};
  CacheGeometry llc{20 * 1024 * 1024, 20, 64};

  // Load-to-use latencies (cycles).
  Cycle l1_latency = 4;
  Cycle l2_latency = 14;
  Cycle llc_latency = 44;
  Cycle dram_base_latency = 180;

  // Core clock; used only to convert bytes/cycle into GB/s for reports.
  double freq_ghz = 2.1;

  // Peak DRAM bandwidth in bytes per core-cycle (68.3 GB/s at 2.1 GHz
  // ~= 32.5 B/cycle) and the accounting window for the queueing model.
  double dram_peak_bytes_per_cycle = 32.5;
  Cycle bandwidth_window = 2048;

  // Scheduling quantum of the interleaved multi-core driver: cores are
  // advanced round-robin in slices of this many cycles.
  Cycle quantum = 1000;

  // ---- Model-ablation and fidelity knobs (defaults = paper model) ----

  /// Ablation: prefetch fills complete instantly (perfect timeliness)
  /// instead of carrying their full path latency in `ready_at`.
  bool instant_prefetch_fills = false;

  /// Ablation: disable the utilisation-dependent DRAM queueing delay
  /// (fixed latency — removes bandwidth contention entirely).
  bool bandwidth_queueing = true;

  /// Fidelity: inclusive LLC with back-invalidation (Broadwell's LLC is
  /// inclusive; an LLC eviction also removes the line from the owner's
  /// private caches). Off by default: the non-inclusive simplification
  /// is cheaper and the paper's effects do not depend on it.
  bool inclusive_llc = false;

  /// Fidelity: dirty LLC evictions issue DRAM writebacks that consume
  /// bandwidth (store-heavy workloads press the bus harder).
  bool model_writebacks = false;

  /// CPI of the synthetic idle loop a detached (hotplugged-out) core
  /// runs in service mode. The idle loop issues no memory references,
  /// so its IPC (1 / idle_cpi) is configuration-independent: an idle
  /// core contributes a constant term to hm_ipc and can never change
  /// which sampled configuration the policy ranks best.
  double idle_cpi = 1.0;

  // ---- Per-core prefetcher engine sets ----

  /// Which prefetcher engines each core instantiates, outer-indexed by
  /// core. Empty (the default) means every core runs the Intel-modelled
  /// set (sim::default_prefetcher_set()); an empty inner list likewise
  /// falls back to the default set for that core. Cores beyond the
  /// outer size also get the default set, so a config for cores 0..k
  /// need not enumerate the rest. Heterogeneous mixes are how the
  /// detector-stress suites probe the CMM detector with non-Intel
  /// prefetch behaviour.
  std::vector<std::vector<PrefetcherKind>> core_prefetchers;

  /// The engine set core `core` should instantiate (applies the
  /// fallback rules above).
  const std::vector<PrefetcherKind>& prefetchers_for(CoreId core) const noexcept;

  /// Paper-faithful Broadwell-EP configuration.
  static MachineConfig broadwell_ep();

  /// Capacity-scaled configuration (divisor applied to every cache size;
  /// associativity, way count, latencies, and BW kept) for fast runs.
  /// Workload working sets must be scaled by the same divisor — see
  /// workloads::BenchmarkSpec::scaled().
  static MachineConfig scaled(unsigned divisor = 8);

  /// Multi-domain fleet machine: `domains` capacity-scaled sockets of
  /// `cores_per_domain` cores each (so 8 x 8 = the 64-core CI fleet).
  static MachineConfig fleet(unsigned domains, unsigned cores_per_domain = 8,
                             unsigned scale_divisor = 16);

  // ---- Domain topology helpers ----
  std::uint32_t cores_per_domain() const noexcept { return num_cores / num_llc_domains; }
  std::uint32_t domain_of(CoreId core) const noexcept { return core / cores_per_domain(); }
  /// First global core id of domain `d`.
  CoreId domain_base(std::uint32_t d) const noexcept { return d * cores_per_domain(); }

  /// The single-domain machine a fleet shard simulates: same caches,
  /// latencies, knobs and per-core prefetcher sets (sliced to the
  /// domain's cores), but num_cores = cores_per_domain() and
  /// num_llc_domains = 1. A domain of a 1-domain machine is the machine
  /// itself — this is the identity there, which is the keystone of the
  /// shard-equals-monolith equivalence argument.
  MachineConfig domain_config(std::uint32_t d) const;

  bool valid() const noexcept;
};

}  // namespace cmm::sim
