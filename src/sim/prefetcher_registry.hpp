// Registry of every prefetcher engine the simulator can instantiate.
//
// The registry is the single source of truth the rest of the system
// keys off: CoreModel builds its per-level engine lists from it,
// MachineConfig validates per-core kind lists against it, and the
// conformance/differential test suites iterate it so a newly
// registered engine is automatically covered without touching the
// tests. Adding an engine = add the PrefetcherKind, implement the
// Prefetcher contract, and append one entry to the table in
// prefetcher_registry.cpp.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/prefetcher.hpp"

namespace cmm::sim {

/// One registered engine: identity plus a factory for a
/// default-configured instance.
struct PrefetcherInfo {
  PrefetcherKind kind;
  PrefetchLevel level;
  std::string_view name;  // matches to_string(kind)
  std::unique_ptr<Prefetcher> (*make)();
};

/// All registered engines, ordered by PrefetcherKind value (== MSR
/// disable-bit position). Exactly kNumPrefetcherKinds entries.
const std::vector<PrefetcherInfo>& prefetcher_registry();

/// Registry entry for one kind.
const PrefetcherInfo& prefetcher_info(PrefetcherKind kind);

/// Construct a default-configured instance of `kind`.
std::unique_ptr<Prefetcher> make_prefetcher(PrefetcherKind kind);

/// Reverse lookup by registry name; nullopt for unknown names.
std::optional<PrefetcherKind> prefetcher_from_string(std::string_view name) noexcept;

/// The default per-core engine set: the four Intel-modelled
/// prefetchers, in the order CoreModel has always consulted them
/// (L2 streamer, L2 adjacent, then the two L1 DCU engines).
const std::vector<PrefetcherKind>& default_prefetcher_set();

}  // namespace cmm::sim
