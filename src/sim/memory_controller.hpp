// Bandwidth-contended DRAM model. Latency = base + queueing delay that
// grows with the utilisation observed in the previous accounting
// window. This is the coupling through which one core's (prefetch)
// traffic slows every other core — the phenomenon CMM exists to manage.
//
// The model is deliberately coarse (M/D/1-flavoured): the paper's
// effects depend on *relative* bandwidth pressure, not on DRAM page
// policy details.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/machine_config.hpp"

namespace cmm::sim {

struct MemoryTraffic {
  std::uint64_t demand_bytes = 0;
  std::uint64_t prefetch_bytes = 0;
  std::uint64_t writeback_bytes = 0;
  std::uint64_t demand_requests = 0;
  std::uint64_t prefetch_requests = 0;
  std::uint64_t writeback_requests = 0;

  std::uint64_t total_bytes() const noexcept {
    return demand_bytes + prefetch_bytes + writeback_bytes;
  }
  void reset() { *this = MemoryTraffic{}; }
};

class MemoryController {
 public:
  MemoryController(const MachineConfig& cfg, unsigned num_cores);

  /// Issue one line-sized request at `now` from `core`. Returns the
  /// total DRAM latency (base + queueing) for this request.
  Cycle request(CoreId core, AccessType type, Cycle now);

  /// Fire-and-forget writeback of one dirty line: consumes bandwidth
  /// (adds to window utilisation) but nobody waits on it.
  void writeback(CoreId core, Cycle now);

  /// Utilisation of the *previous* window in [0, ~1+] (can exceed 1 when
  /// offered load exceeds peak; queueing then saturates).
  double last_window_utilization() const noexcept { return last_util_; }

  /// Queueing delay currently being applied on top of the base latency.
  Cycle current_queue_delay() const noexcept { return queue_delay_; }

  const MemoryTraffic& core_traffic(CoreId core) const { return per_core_.at(core); }
  const MemoryTraffic& total_traffic() const noexcept { return total_; }

  /// Average bytes/cycle for `core` over [since, now] given its traffic
  /// snapshot delta — helper for bandwidth reporting lives in analysis;
  /// the controller only accumulates.
  void reset_stats();

  /// Peak bytes per cycle (for utilisation math in reports).
  double peak_bytes_per_cycle() const noexcept { return peak_bpc_; }
  double freq_ghz() const noexcept { return freq_ghz_; }

 private:
  void roll_window(Cycle now);

  Cycle window_;
  bool queueing_enabled_;
  double peak_bpc_;
  double freq_ghz_;
  Cycle base_latency_;

  Cycle window_start_ = 0;
  std::uint64_t window_bytes_ = 0;
  double last_util_ = 0.0;
  Cycle queue_delay_ = 0;

  std::uint32_t line_size_;
  std::vector<MemoryTraffic> per_core_;
  MemoryTraffic total_;
};

}  // namespace cmm::sim
