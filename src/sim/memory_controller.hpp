// Bandwidth-contended DRAM model. Latency = base + queueing delay that
// grows with the utilisation observed in the previous accounting
// window. This is the coupling through which one core's (prefetch)
// traffic slows every other core — the phenomenon CMM exists to manage.
//
// The model is deliberately coarse (M/D/1-flavoured): the paper's
// effects depend on *relative* bandwidth pressure, not on DRAM page
// policy details.
//
// BP axis (MBA-style regulation): each core carries a throttle level
// drawn from a small delay-injection ladder. Level 0 — the reset state
// — is bit-identical to the unregulated controller; higher levels
// multiply that core's request latency, which slows its issue rate and
// thereby lowers the shared window utilisation everyone else queues
// behind. This mirrors Intel MBA, which also regulates per-core request
// pacing rather than enforcing a hard bandwidth cap.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/machine_config.hpp"

namespace cmm::sim {

struct MemoryTraffic {
  std::uint64_t demand_bytes = 0;
  std::uint64_t prefetch_bytes = 0;
  std::uint64_t writeback_bytes = 0;
  std::uint64_t demand_requests = 0;
  std::uint64_t prefetch_requests = 0;
  std::uint64_t writeback_requests = 0;

  std::uint64_t total_bytes() const noexcept {
    return demand_bytes + prefetch_bytes + writeback_bytes;
  }
  void reset() { *this = MemoryTraffic{}; }
};

class MemoryController {
 public:
  /// Delay-injection ladder (MBA throttle levels). Level 0 is
  /// unthrottled; the factors are multiplicative on the throttled
  /// core's total request latency.
  static constexpr unsigned kNumThrottleLevels = 4;

  /// Latency multiplier of `level` (clamped to the ladder).
  static double throttle_factor(std::uint8_t level) noexcept;

  MemoryController(const MachineConfig& cfg, unsigned num_cores);

  /// Issue one line-sized request at `now` from `core`. Returns the
  /// total DRAM latency (base + queueing, scaled by the core's
  /// throttle level) for this request.
  Cycle request(CoreId core, AccessType type, Cycle now);

  /// Fire-and-forget writeback of one dirty line: consumes bandwidth
  /// (adds to window utilisation) but nobody waits on it.
  void writeback(CoreId core, Cycle now);

  /// Utilisation of the *previous* window in [0, ~1+] (can exceed 1 when
  /// offered load exceeds peak; queueing then saturates).
  double last_window_utilization() const noexcept { return last_util_; }

  /// Queueing delay currently being applied on top of the base latency.
  Cycle current_queue_delay() const noexcept { return queue_delay_; }

  // ---- BP axis: per-core throttle levels ----

  /// Set `core`'s delay-injection level (clamped to the ladder). Level
  /// 0 restores the unthrottled fast path, which is bit-identical to
  /// the pre-BP controller.
  void set_throttle_level(CoreId core, std::uint8_t level);
  std::uint8_t throttle_level(CoreId core) const { return throttle_.at(core); }

  /// All-zero throttle state (the hardware reset state).
  bool unthrottled() const noexcept;

  // ---- Per-core bandwidth telemetry ----

  /// Bytes/cycle `core` moved during the most recent *complete*
  /// accounting window (0 after an idle stretch). This is the live
  /// bandwidth signal the BP control layer ranks cores by; the
  /// cumulative `core_traffic()` counters only give run-total rates.
  double core_last_window_bpc(CoreId core) const { return last_core_bpc_.at(core); }

  const MemoryTraffic& core_traffic(CoreId core) const { return per_core_.at(core); }
  const MemoryTraffic& total_traffic() const noexcept { return total_; }

  /// Clear the cumulative per-core/total traffic counters.
  ///
  /// Contract: a stats reset never perturbs timing state. The queueing
  /// window (`window_start_`, accumulated window bytes), the last
  /// window's utilisation, the current queue delay, and the throttle
  /// levels are all left untouched, so the latency of every subsequent
  /// request is bit-identical to a run that never reset. Counters are
  /// observation, not state.
  void reset_stats();

  /// Peak bytes per cycle (for utilisation math in reports).
  double peak_bytes_per_cycle() const noexcept { return peak_bpc_; }
  double freq_ghz() const noexcept { return freq_ghz_; }

 private:
  void roll_window(Cycle now);
  void account_window_bytes(CoreId core);

  Cycle window_;
  bool queueing_enabled_;
  double peak_bpc_;
  double freq_ghz_;
  Cycle base_latency_;

  Cycle window_start_ = 0;
  std::uint64_t window_bytes_ = 0;
  double last_util_ = 0.0;
  Cycle queue_delay_ = 0;

  std::uint32_t line_size_;
  std::vector<MemoryTraffic> per_core_;
  MemoryTraffic total_;

  std::vector<std::uint8_t> throttle_;          // per-core ladder level
  std::vector<std::uint64_t> core_window_bytes_;  // bytes this window
  std::vector<double> last_core_bpc_;             // previous complete window
};

}  // namespace cmm::sim
