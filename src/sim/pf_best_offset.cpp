// Best-offset prefetcher (Michaud, "Best-Offset Hardware Prefetching",
// HPCA 2016; winner of DPC-2), ported to the sim:: plug-in contract as
// an L2 engine.
//
// Port simplifications vs. the original:
//  - trains on every L2 demand access, not only misses + prefetched
//    hits (the observation stream does not flag prefetched hits);
//  - the recent-requests table is direct-mapped on the base line
//    address instead of Michaud's banked/hashed layout;
//  - no delay queue: a completed fill inserts its base immediately.
// All state is integral, so behaviour is bit-deterministic.
#include "sim/pf_common.hpp"
#include "sim/prefetcher.hpp"

namespace cmm::sim {

namespace {
// Empty slot sentinel for the recent-requests table; line addresses
// this large never occur (they would sit above the simulated DRAM).
constexpr Addr kNoEntry = ~Addr{0};
}  // namespace

const std::vector<int>& BestOffsetPrefetcher::offset_list() {
  // Michaud's list keeps offsets whose prime factors are <= 5; trimmed
  // here to magnitudes below one 64-line page so every candidate can
  // pass the page clamp, plus a few negative offsets for backward
  // streams.
  static const std::vector<int> list = {1,  2,  3,  4,  5,  6,  8,  9,  10, 12, 15, 16, 18, 20,
                                        24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54, 60,
                                        -1, -2, -3, -4, -6, -8};
  return list;
}

BestOffsetPrefetcher::BestOffsetPrefetcher() : BestOffsetPrefetcher(Config{}) {}

BestOffsetPrefetcher::BestOffsetPrefetcher(const Config& cfg)
    : cfg_(cfg), rr_table_(cfg.rr_entries, kNoEntry), scores_(offset_list().size(), 0) {}

void BestOffsetPrefetcher::cache_fill(Addr line, bool prefetch_fill) {
  // A completed prefetch fill for line Y = X + D proves base X was
  // requested recently enough for an offset-D prefetch to be timely:
  // record X. Demand fills record themselves (keeps the table warm
  // while prefetching is switched off after a bad round).
  Addr base = line;
  if (prefetch_fill) {
    if (best_offset_ == 0) return;
    const std::int64_t b = signed_line_target(line, -best_offset_);
    if (b < 0 || !same_page(line, static_cast<Addr>(b), cfg_.lines_per_page)) return;
    base = static_cast<Addr>(b);
  }
  rr_table_[base % cfg_.rr_entries] = base;
}

void BestOffsetPrefetcher::observe(const PrefetchObservation& obs, std::vector<Addr>& out) {
  const auto& offsets = offset_list();
  const Addr line = obs.line_addr;
  const std::uint32_t offset = page_offset(line, cfg_.lines_per_page);

  // Learning: test the next candidate offset d in round-robin order —
  // would a prefetch at d have covered this access? (i.e. is X - d in
  // the recent-requests table, within the same page?)
  const int d = offsets[test_index_];
  const std::int64_t base_off = page_local_offset(offset, -d, cfg_.lines_per_page);
  bool round_ended = false;
  if (base_off >= 0) {
    const Addr base =
        line_in_page(page_of(line, cfg_.lines_per_page), static_cast<std::uint32_t>(base_off),
                     cfg_.lines_per_page);
    if (rr_table_[base % cfg_.rr_entries] == base && ++scores_[test_index_] >= cfg_.score_max) {
      end_round();  // a saturated score wins the round immediately
      round_ended = true;
    }
  }
  if (!round_ended) {
    test_index_ = (test_index_ + 1) % static_cast<unsigned>(offsets.size());
    if (++round_updates_ >= cfg_.round_max * offsets.size()) end_round();
  }

  // Emission: one candidate at the current best offset, page-clamped.
  if (best_offset_ != 0) {
    const std::int64_t target = page_local_offset(offset, best_offset_, cfg_.lines_per_page);
    if (target >= 0) {
      out.push_back(line_in_page(page_of(line, cfg_.lines_per_page),
                                 static_cast<std::uint32_t>(target), cfg_.lines_per_page));
      note_issued(1);
    }
  }
}

void BestOffsetPrefetcher::end_round() {
  const auto& offsets = offset_list();
  unsigned best_score = 0;
  unsigned best_index = 0;
  for (unsigned i = 0; i < scores_.size(); ++i) {
    if (scores_[i] > best_score) {  // strict: ties keep the earlier offset
      best_score = scores_[i];
      best_index = i;
    }
  }
  best_offset_ = best_score >= cfg_.bad_score ? offsets[best_index] : 0;
  std::fill(scores_.begin(), scores_.end(), 0u);
  test_index_ = 0;
  round_updates_ = 0;
}

void BestOffsetPrefetcher::reset() {
  std::fill(rr_table_.begin(), rr_table_.end(), kNoEntry);
  std::fill(scores_.begin(), scores_.end(), 0u);
  test_index_ = 0;
  round_updates_ = 0;
  best_offset_ = 1;
}

}  // namespace cmm::sim
