#include "sim/pf_common.hpp"
#include "sim/prefetcher.hpp"

namespace cmm::sim {

void AdjacentLinePrefetcher::observe(const PrefetchObservation& obs, std::vector<Addr>& out) {
  if (!obs.miss) return;
  out.push_back(buddy_line(obs.line_addr));  // buddy within the 128 B pair
  note_issued(1);
}

}  // namespace cmm::sim
