#include "sim/core_model.hpp"

#include <cassert>

#include "sim/prefetcher_registry.hpp"

namespace cmm::sim {

CoreModel::CoreModel(CoreId id, const MachineConfig& cfg, SetAssocCache& llc, const CatModel& cat,
                     MemoryController& mem, Pmu& pmu)
    : id_(id),
      cfg_(cfg),
      line_shift_(std::countr_zero(static_cast<std::uint64_t>(cfg.l1d.line_size))),
      l1_(cfg.l1d),
      l2_(cfg.l2),
      llc_(llc),
      cat_(cat),
      mem_(mem),
      pmu_(pmu) {
  for (const PrefetcherKind kind : cfg.prefetchers_for(id)) {
    engines_.push_back(make_prefetcher(kind));
    Prefetcher* p = engines_.back().get();
    const bool at_l1 = level_of(kind) == PrefetchLevel::L1;
    (at_l1 ? l1_engines_ : l2_engines_).push_back(p);
    if (!at_l1 && p->observes_prefetch_traffic()) l2_pf_traffic_engines_.push_back(p);
    if (p->wants_cache_fill()) (at_l1 ? l1_fill_observers_ : l2_fill_observers_).push_back(p);
    if (kind == PrefetcherKind::L2Streamer) streamer_ = static_cast<StreamerPrefetcher*>(p);
  }
}

void CoreModel::set_op_source(std::shared_ptr<OpSource> source) {
  source_ = std::move(source);
  batch_pos_ = batch_len_ = 0;  // drop ops buffered from the old source
}

OpStreamState CoreModel::export_stream() const {
  return OpStreamState{source_, op_batch_, batch_pos_, batch_len_, batch_traits_, now_frac_};
}

void CoreModel::import_stream(OpStreamState state) {
  source_ = std::move(state.source);
  op_batch_ = state.batch;
  batch_pos_ = state.pos;
  batch_len_ = state.len;
  batch_traits_ = state.traits;
  now_frac_ = state.frac;
}

void CoreModel::reset_microarch() {
  l1_.flush();
  l2_.flush();
  for (auto& p : engines_) p->reset();
}

void CoreModel::advance_to(Cycle target) {
  assert(source_ != nullptr && "core has no op source");
  PmuCounters& ctr = pmu_.core(id_);

  while (now_ < target) {
    if (batch_pos_ == batch_len_) {
      batch_len_ = source_->next_batch(std::span<Op>(op_batch_));
      batch_pos_ = 0;
      if (batch_len_ == 0) {  // defensive: contract requires >= 1
        op_batch_[0] = source_->next();
        batch_len_ = 1;
      }
      batch_traits_ = source_->traits();
    }
    // Traits are constant across the batch (next_batch contract), so
    // the per-op virtual traits() call of the old loop is hoisted here.
    const double base_cpi = batch_traits_.base_cpi;
    const double mlp = batch_traits_.mlp;

    while (now_ < target && batch_pos_ < batch_len_) {
      const Op& op = op_batch_[batch_pos_++];

      double cost = static_cast<double>(op.instructions) * base_cpi;
      if (op.has_mem) cost += demand_access(op.mem, mlp);

      ctr.instructions += op.instructions;

      now_frac_ += cost;
      const auto whole = static_cast<Cycle>(now_frac_);
      now_frac_ -= static_cast<double>(whole);
      now_ += (whole > 0 ? whole : 1);  // every op advances time
    }
  }
  ctr.cycles = now_;
}

double CoreModel::demand_access(const MemRef& ref, double mlp) {
  const Addr line = ref.addr >> line_shift_;
  const AccessType type = ref.is_store ? AccessType::DemandStore : AccessType::DemandLoad;
  PmuCounters& ctr = pmu_.core(id_);

  l1_cands_.clear();
  l2_cands_.clear();

  // ---- L1 ----
  const LookupResult l1r = l1_.access(line, type, now_);
  const PrefetchObservation l1_obs{line, ref.ip, !l1r.hit};
  for (Prefetcher* p : l1_engines_) {
    if (msr_.enabled(p->kind())) p->observe(l1_obs, l1_cands_);
  }

  // `extra` accumulates latency beyond the (pipelined) L1 hit latency:
  // the level-to-level path cost plus any in-flight prefetch residual.
  // A demand waiter absorbs a line's in-flight latency exactly once
  // (SetAssocCache::access resets ready_at on demand hits), and demand
  // fills are installed resident, because the penalty charged here
  // advances this core's clock past the wait.
  double extra = 0.0;
  // Portion of `extra` spent waiting on an outstanding sub-L2 fill —
  // what CYCLE_ACTIVITY.STALLS_L2_PENDING counts: it includes demand
  // hits that wait on in-flight (prefetch) misses, not only demand
  // misses themselves.
  double l2_pending = 0.0;

  if (l1r.hit) {
    extra = residual(l1r.ready_at, static_cast<double>(now_ + cfg_.l1_latency));
    l2_pending = extra;
  } else {
    // ---- L2 (demand) ----
    ++ctr.l2_dm_req;
    const LookupResult l2r = l2_.access(line, type, now_);
    const PrefetchObservation l2_obs{line, ref.ip, !l2r.hit};
    for (Prefetcher* p : l2_engines_) {
      if (msr_.enabled(p->kind())) p->observe(l2_obs, l2_cands_);
    }

    if (l2r.hit) {
      const double wait = residual(l2r.ready_at, static_cast<double>(now_ + cfg_.l2_latency));
      extra = static_cast<double>(cfg_.l2_latency - cfg_.l1_latency) + wait;
      l2_pending = wait;
      l1_.fill(line, type, now_, now_, ~WayMask{0});
      notify_fill(l1_fill_observers_, line, false);
    } else {
      ++ctr.l2_dm_miss;

      // ---- LLC (demand) ----
      const LookupResult l3r = llc_.access(line, type, now_);
      if (l3r.hit) {
        extra = static_cast<double>(cfg_.llc_latency - cfg_.l1_latency) +
                residual(l3r.ready_at, static_cast<double>(now_ + cfg_.llc_latency));
        l2_pending = extra;
      } else {
        if (!ref.is_store) ++ctr.l3_load_miss;
        const Cycle dram = mem_.request(id_, type, now_);
        ctr.dram_demand_bytes += cfg_.llc.line_size;
        extra = static_cast<double>(cfg_.llc_latency + dram - cfg_.l1_latency);
        l2_pending = extra;
        fill_llc(line, type, now_);
      }
      l2_.fill(line, type, now_, now_, ~WayMask{0});
      l1_.fill(line, type, now_, now_, ~WayMask{0});
      notify_fill(l2_fill_observers_, line, false);
      notify_fill(l1_fill_observers_, line, false);
    }
  }

  // Prefetch issue is asynchronous: no cost added to the demand path.
  for (const Addr cand : l1_cands_) issue_l1_prefetch(cand);
  for (const Addr cand : l2_cands_) issue_l2_prefetch(cand);

  // De-rate by the workload's memory-level parallelism. (Kept as a
  // division — not a cached reciprocal — so results stay bit-identical
  // with the pre-batching model.)
  const double penalty = extra / mlp;
  ctr.stalls_l2_pending += static_cast<std::uint64_t>(l2_pending / mlp);
  return penalty;
}

void CoreModel::fill_llc(Addr line, AccessType type, Cycle ready_at) {
  const FillResult r = llc_.fill(line, type, now_, ready_at, cat_.core_mask(id_), id_);
  if (!r.evicted_valid) return;
  if (cfg_.model_writebacks && r.evicted_dirty) {
    const CoreId payer = r.evicted_owner != kInvalidCore ? r.evicted_owner : id_;
    mem_.writeback(payer, now_);
    if (payer < pmu_.num_cores()) pmu_.core(payer).dram_writeback_bytes += cfg_.llc.line_size;
  }
  if (cfg_.inclusive_llc && eviction_listener_ && r.evicted_owner != kInvalidCore) {
    eviction_listener_(r.evicted_line, r.evicted_owner);
  }
}

void CoreModel::issue_l1_prefetch(Addr line) {
  if (l1_.contains(line)) return;

  // L1 prefetch requests travel to L2. They are *not* counted in the
  // L2-prefetcher PMU events (those count only streamer/adjacent, per
  // the paper's event definitions), but — as the paper's background
  // section describes — "requests arriving at L2 will trigger L2's
  // prefetchers", so they train the streamer/adjacent prefetchers.
  const LookupResult l2r = l2_.access(line, AccessType::Prefetch, now_);
  // Only engines reporting observes_prefetch_traffic() (the streamer)
  // train on prefetch-triggered requests; letting e.g. the adjacent
  // prefetcher chain off them would cascade prefetch-on-prefetch
  // indefinitely.
  const PrefetchObservation l2_obs{line, 0, !l2r.hit};
  l2_cands_from_l1_.clear();
  for (Prefetcher* p : l2_pf_traffic_engines_) {
    if (msr_.enabled(p->kind())) p->observe(l2_obs, l2_cands_from_l1_);
  }
  for (const Addr cand : l2_cands_from_l1_) issue_l2_prefetch(cand);
  Cycle ready;
  if (l2r.hit) {
    ready = std::max(now_ + cfg_.l2_latency, l2r.ready_at);
  } else {
    const LookupResult l3r = llc_.access(line, AccessType::Prefetch, now_);
    if (l3r.hit) {
      ready = std::max(now_ + cfg_.llc_latency, l3r.ready_at);
    } else {
      const Cycle dram = mem_.request(id_, AccessType::Prefetch, now_);
      pmu_.core(id_).dram_prefetch_bytes += cfg_.llc.line_size;
      ready = cfg_.instant_prefetch_fills ? now_ : now_ + cfg_.llc_latency + dram;
      fill_llc(line, AccessType::Prefetch, ready);
    }
    l2_.fill(line, AccessType::Prefetch, now_, ready, ~WayMask{0});
    notify_fill(l2_fill_observers_, line, true);
  }
  l1_.fill(line, AccessType::Prefetch, now_, ready, ~WayMask{0});
  notify_fill(l1_fill_observers_, line, true);
}

void CoreModel::issue_l2_prefetch(Addr line) {
  PmuCounters& ctr = pmu_.core(id_);
  ++ctr.l2_pref_req;

  const LookupResult l2r = l2_.access(line, AccessType::Prefetch, now_);
  if (l2r.hit) return;  // prefetch filtered at L2

  ++ctr.l2_pref_miss;
  const LookupResult l3r = llc_.access(line, AccessType::Prefetch, now_);
  Cycle ready;
  if (l3r.hit) {
    ready = std::max(now_ + cfg_.llc_latency, l3r.ready_at);
  } else {
    const Cycle dram = mem_.request(id_, AccessType::Prefetch, now_);
    ctr.dram_prefetch_bytes += cfg_.llc.line_size;
    ready = cfg_.instant_prefetch_fills ? now_ : now_ + cfg_.llc_latency + dram;
    fill_llc(line, AccessType::Prefetch, ready);
  }
  l2_.fill(line, AccessType::Prefetch, now_, ready, ~WayMask{0});
  notify_fill(l2_fill_observers_, line, true);
}

}  // namespace cmm::sim
