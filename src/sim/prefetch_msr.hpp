// Model of IA32 MSR 0x1A4 (MISC_FEATURE_CONTROL), the per-core
// prefetcher enable register on Intel parts. Bit semantics follow the
// SDM: a SET bit DISABLES the corresponding prefetcher.
//
//   bit 0: L2 hardware (streamer) prefetcher disable
//   bit 1: L2 adjacent cache line prefetcher disable
//   bit 2: DCU (L1 next-line) prefetcher disable
//   bit 3: DCU IP (L1 stride) prefetcher disable
//
// The simulated register extends the layout with model-fictional
// disable bits for the research-zoo engines (bit position == the
// PrefetcherKind value):
//
//   bit 4: best-offset (BOP) L2 prefetcher disable
//   bit 5: signature-path (SPP-style) L2 prefetcher disable
//   bit 6: sandbox L2 prefetcher disable
//
// Writes saturate to the defined bits: unknown high bits are dropped,
// exactly like hardware reserved-bit masking.
#pragma once

#include <array>
#include <cstdint>

#include "sim/prefetcher.hpp"

namespace cmm::sim {

inline constexpr std::uint32_t kMsrMiscFeatureControl = 0x1A4;

/// Mask of defined (writable) bits: one disable bit per registered
/// PrefetcherKind.
inline constexpr std::uint64_t kPrefetchDisableAllMask = (1ULL << kNumPrefetcherKinds) - 1;

/// Per-core prefetcher enable state. Defaults to all enabled (value 0),
/// matching hardware reset state and the paper's baseline.
class PrefetchMsr {
 public:
  /// Raw MSR value (only the low kNumPrefetcherKinds bits are defined).
  std::uint64_t read() const noexcept { return value_; }

  void write(std::uint64_t value) noexcept { value_ = value & kPrefetchDisableAllMask; }

  bool enabled(PrefetcherKind kind) const noexcept {
    return ((value_ >> static_cast<unsigned>(kind)) & 1ULL) == 0;
  }

  void set_enabled(PrefetcherKind kind, bool on) noexcept {
    const std::uint64_t bit = 1ULL << static_cast<unsigned>(kind);
    if (on) {
      value_ &= ~bit;
    } else {
      value_ |= bit;
    }
  }

  /// Enable or disable every registered prefetcher at once (the paper's
  /// PT policy treats a core's prefetchers as a single entity).
  void set_all(bool on) noexcept { value_ = on ? 0ULL : kPrefetchDisableAllMask; }

  bool all_enabled() const noexcept { return value_ == 0; }
  bool all_disabled() const noexcept { return value_ == kPrefetchDisableAllMask; }

  /// Encode per-kind enable flags into an MSR value (set bit =
  /// disabled). Inverse of decode() over the defined bits.
  static constexpr std::uint64_t encode(
      const std::array<bool, kNumPrefetcherKinds>& enabled_kinds) noexcept {
    std::uint64_t value = 0;
    for (unsigned i = 0; i < kNumPrefetcherKinds; ++i) {
      if (!enabled_kinds[i]) value |= 1ULL << i;
    }
    return value;
  }

  /// Decode an MSR value into per-kind enable flags. Undefined high
  /// bits are ignored (they read back as "enabled" after the write
  /// mask drops them).
  static constexpr std::array<bool, kNumPrefetcherKinds> decode(std::uint64_t value) noexcept {
    std::array<bool, kNumPrefetcherKinds> enabled_kinds{};
    for (unsigned i = 0; i < kNumPrefetcherKinds; ++i) {
      enabled_kinds[i] = ((value >> i) & 1ULL) == 0;
    }
    return enabled_kinds;
  }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace cmm::sim
