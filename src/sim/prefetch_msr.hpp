// Model of IA32 MSR 0x1A4 (MISC_FEATURE_CONTROL), the per-core
// prefetcher enable register on Intel parts. Bit semantics follow the
// SDM: a SET bit DISABLES the corresponding prefetcher.
//
//   bit 0: L2 hardware (streamer) prefetcher disable
//   bit 1: L2 adjacent cache line prefetcher disable
//   bit 2: DCU (L1 next-line) prefetcher disable
//   bit 3: DCU IP (L1 stride) prefetcher disable
#pragma once

#include <cstdint>

#include "sim/prefetcher.hpp"

namespace cmm::sim {

inline constexpr std::uint32_t kMsrMiscFeatureControl = 0x1A4;

/// Per-core prefetcher enable state. Defaults to all enabled (value 0),
/// matching hardware reset state and the paper's baseline.
class PrefetchMsr {
 public:
  /// Raw MSR value (only the low 4 bits are defined).
  std::uint64_t read() const noexcept { return value_; }

  void write(std::uint64_t value) noexcept { value_ = value & 0xFULL; }

  bool enabled(PrefetcherKind kind) const noexcept {
    return ((value_ >> static_cast<unsigned>(kind)) & 1ULL) == 0;
  }

  void set_enabled(PrefetcherKind kind, bool on) noexcept {
    const std::uint64_t bit = 1ULL << static_cast<unsigned>(kind);
    if (on) {
      value_ &= ~bit;
    } else {
      value_ |= bit;
    }
  }

  /// Enable or disable all four prefetchers at once (the paper's PT
  /// policy treats the four per-core prefetchers as a single entity).
  void set_all(bool on) noexcept { value_ = on ? 0ULL : 0xFULL; }

  bool all_enabled() const noexcept { return value_ == 0; }
  bool all_disabled() const noexcept { return value_ == 0xF; }

 private:
  std::uint64_t value_ = 0;
};

}  // namespace cmm::sim
