#include "sim/pf_common.hpp"
#include "sim/prefetcher.hpp"

namespace cmm::sim {

StreamerPrefetcher::StreamerPrefetcher() : StreamerPrefetcher(Config{}) {}

StreamerPrefetcher::StreamerPrefetcher(const Config& cfg) : cfg_(cfg), trackers_(cfg.trackers) {}

StreamerPrefetcher::Tracker* StreamerPrefetcher::find_or_alloc(Addr page) {
  for (auto& t : trackers_) {
    if (t.valid && t.page == page) return &t;
  }
  Tracker* victim = nullptr;
  for (auto& t : trackers_) {
    if (!t.valid) {
      victim = &t;
      break;
    }
  }
  if (victim == nullptr) {
    victim = &trackers_[0];
    for (auto& t : trackers_) {
      if (t.lru < victim->lru) victim = &t;
    }
  }
  *victim = Tracker{};
  victim->page = page;
  victim->valid = true;
  return victim;
}

void StreamerPrefetcher::observe(const PrefetchObservation& obs, std::vector<Addr>& out) {
  const Addr page = page_of(obs.line_addr, cfg_.lines_per_page);
  const std::uint32_t offset = page_offset(obs.line_addr, cfg_.lines_per_page);

  Tracker* t = find_or_alloc(page);
  t->lru = ++tick_;

  if (!t->has_last) {
    t->last_offset = offset;
    t->has_last = true;
    return;
  }

  const int dir = (offset > t->last_offset) ? 1 : (offset < t->last_offset ? -1 : 0);
  if (dir != 0) {
    if (dir == t->direction) {
      if (t->confidence < 8) ++t->confidence;
    } else {
      t->direction = dir;
      t->confidence = 1;
    }
  }
  t->last_offset = offset;

  if (t->confidence >= cfg_.confidence_threshold && t->direction != 0) {
    std::size_t emitted = 0;
    for (unsigned k = 1; k <= cfg_.degree; ++k) {
      const std::int64_t target_offset = page_local_offset(
          offset, t->direction * static_cast<std::int64_t>(k), cfg_.lines_per_page);
      if (target_offset < 0) break;  // streamers do not cross the 4 KB page
      // Advance through the page: never re-request covered offsets.
      if (t->issued_until >= 0) {
        if (t->direction > 0 && target_offset <= t->issued_until) continue;
        if (t->direction < 0 && target_offset >= t->issued_until) continue;
      }
      t->issued_until = static_cast<std::int32_t>(target_offset);
      out.push_back(
          line_in_page(page, static_cast<std::uint32_t>(target_offset), cfg_.lines_per_page));
      ++emitted;
    }
    note_issued(emitted);
  }
}

void StreamerPrefetcher::reset() {
  for (auto& t : trackers_) t = Tracker{};
  tick_ = 0;
}

}  // namespace cmm::sim
