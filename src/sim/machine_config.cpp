#include "sim/machine_config.hpp"

#include <algorithm>

#include "sim/prefetcher_registry.hpp"

namespace cmm::sim {

MachineConfig MachineConfig::broadwell_ep() { return MachineConfig{}; }

const std::vector<PrefetcherKind>& MachineConfig::prefetchers_for(CoreId core) const noexcept {
  if (core < core_prefetchers.size() && !core_prefetchers[core].empty()) {
    return core_prefetchers[core];
  }
  return default_prefetcher_set();
}

MachineConfig MachineConfig::scaled(unsigned divisor) {
  MachineConfig cfg;
  if (divisor == 0) divisor = 1;
  // The private caches shrink less aggressively (floors of 8 KB L1 /
  // 32 KB L2) so they keep enough sets for realistic locality; the
  // capacity ratio that matters for the paper's effects is WS : LLC.
  cfg.l1d.size_bytes = std::max<std::uint64_t>(cfg.l1d.size_bytes / divisor, 8 * 1024);
  cfg.l2.size_bytes = std::max<std::uint64_t>(cfg.l2.size_bytes / divisor, 32 * 1024);
  cfg.llc.size_bytes /= divisor;
  if (cfg.llc.size_bytes < cfg.llc.ways * cfg.llc.line_size)
    cfg.llc.size_bytes = cfg.llc.ways * cfg.llc.line_size;
  return cfg;
}

namespace {
bool geometry_valid(const CacheGeometry& g) noexcept {
  if (g.size_bytes == 0 || g.ways == 0 || g.line_size == 0) return false;
  if ((g.line_size & (g.line_size - 1)) != 0) return false;
  if (g.size_bytes % (static_cast<std::uint64_t>(g.ways) * g.line_size) != 0) return false;
  const std::uint64_t sets = g.num_sets();
  return sets > 0 && (sets & (sets - 1)) == 0;  // power-of-two sets for cheap indexing
}
}  // namespace

namespace {
bool prefetcher_sets_valid(const std::vector<std::vector<PrefetcherKind>>& sets,
                           std::uint32_t num_cores) noexcept {
  if (sets.size() > num_cores) return false;
  for (const auto& set : sets) {
    std::uint32_t seen = 0;  // bitmask over kind values
    for (const PrefetcherKind kind : set) {
      const auto bit = static_cast<unsigned>(kind);
      if (bit >= kNumPrefetcherKinds) return false;     // unregistered kind
      if ((seen >> bit) & 1u) return false;             // duplicate engine
      seen |= 1u << bit;
    }
  }
  return true;
}
}  // namespace

MachineConfig MachineConfig::fleet(unsigned domains, unsigned cores_per_domain,
                                   unsigned scale_divisor) {
  MachineConfig cfg = scaled(scale_divisor);
  cfg.num_llc_domains = std::max(domains, 1u);
  cfg.num_cores = cfg.num_llc_domains * std::max(cores_per_domain, 1u);
  return cfg;
}

MachineConfig MachineConfig::domain_config(std::uint32_t d) const {
  MachineConfig cfg = *this;
  cfg.num_cores = cores_per_domain();
  cfg.num_llc_domains = 1;
  cfg.core_prefetchers.clear();
  // Slice the per-core engine sets to this domain's core block; absent
  // outer entries fall back to the default set anyway.
  const std::size_t lo = domain_base(d);
  const std::size_t hi = lo + cores_per_domain();
  for (std::size_t c = lo; c < hi && c < core_prefetchers.size(); ++c) {
    cfg.core_prefetchers.push_back(core_prefetchers[c]);
  }
  // Drop trailing empties so "no per-core overrides" round-trips to the
  // canonical empty outer vector (keeps solo_cache keys canonical).
  while (!cfg.core_prefetchers.empty() && cfg.core_prefetchers.back().empty()) {
    cfg.core_prefetchers.pop_back();
  }
  return cfg;
}

bool MachineConfig::valid() const noexcept {
  // Per-domain core count is capped where the old global cap was: every
  // domain is exactly the machine the rest of the stack already
  // handles. The global cap bounds fleet experiments at 256 cores.
  return num_cores > 0 && num_cores <= 256 && num_llc_domains > 0 &&
         num_cores % num_llc_domains == 0 && num_cores / num_llc_domains <= 64 &&
         geometry_valid(l1d) && geometry_valid(l2) &&
         geometry_valid(llc) && llc.ways <= 32 && l1_latency < l2_latency &&
         l2_latency < llc_latency && llc_latency < dram_base_latency &&
         dram_peak_bytes_per_cycle > 0.0 && bandwidth_window > 0 && quantum > 0 &&
         idle_cpi > 0.0 && prefetcher_sets_valid(core_prefetchers, num_cores);
}

}  // namespace cmm::sim
