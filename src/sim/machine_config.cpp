#include "sim/machine_config.hpp"

#include <algorithm>

#include "sim/prefetcher_registry.hpp"

namespace cmm::sim {

MachineConfig MachineConfig::broadwell_ep() { return MachineConfig{}; }

const std::vector<PrefetcherKind>& MachineConfig::prefetchers_for(CoreId core) const noexcept {
  if (core < core_prefetchers.size() && !core_prefetchers[core].empty()) {
    return core_prefetchers[core];
  }
  return default_prefetcher_set();
}

MachineConfig MachineConfig::scaled(unsigned divisor) {
  MachineConfig cfg;
  if (divisor == 0) divisor = 1;
  // The private caches shrink less aggressively (floors of 8 KB L1 /
  // 32 KB L2) so they keep enough sets for realistic locality; the
  // capacity ratio that matters for the paper's effects is WS : LLC.
  cfg.l1d.size_bytes = std::max<std::uint64_t>(cfg.l1d.size_bytes / divisor, 8 * 1024);
  cfg.l2.size_bytes = std::max<std::uint64_t>(cfg.l2.size_bytes / divisor, 32 * 1024);
  cfg.llc.size_bytes /= divisor;
  if (cfg.llc.size_bytes < cfg.llc.ways * cfg.llc.line_size)
    cfg.llc.size_bytes = cfg.llc.ways * cfg.llc.line_size;
  return cfg;
}

namespace {
bool geometry_valid(const CacheGeometry& g) noexcept {
  if (g.size_bytes == 0 || g.ways == 0 || g.line_size == 0) return false;
  if ((g.line_size & (g.line_size - 1)) != 0) return false;
  if (g.size_bytes % (static_cast<std::uint64_t>(g.ways) * g.line_size) != 0) return false;
  const std::uint64_t sets = g.num_sets();
  return sets > 0 && (sets & (sets - 1)) == 0;  // power-of-two sets for cheap indexing
}
}  // namespace

namespace {
bool prefetcher_sets_valid(const std::vector<std::vector<PrefetcherKind>>& sets,
                           std::uint32_t num_cores) noexcept {
  if (sets.size() > num_cores) return false;
  for (const auto& set : sets) {
    std::uint32_t seen = 0;  // bitmask over kind values
    for (const PrefetcherKind kind : set) {
      const auto bit = static_cast<unsigned>(kind);
      if (bit >= kNumPrefetcherKinds) return false;     // unregistered kind
      if ((seen >> bit) & 1u) return false;             // duplicate engine
      seen |= 1u << bit;
    }
  }
  return true;
}
}  // namespace

bool MachineConfig::valid() const noexcept {
  return num_cores > 0 && num_cores <= 64 && geometry_valid(l1d) && geometry_valid(l2) &&
         geometry_valid(llc) && llc.ways <= 32 && l1_latency < l2_latency &&
         l2_latency < llc_latency && llc_latency < dram_base_latency &&
         dram_peak_bytes_per_cycle > 0.0 && bandwidth_window > 0 && quantum > 0 &&
         idle_cpi > 0.0 && prefetcher_sets_valid(core_prefetchers, num_cores);
}

}  // namespace cmm::sim
