#include "sim/prefetcher.hpp"

namespace cmm::sim {

std::string_view to_string(PrefetcherKind kind) noexcept {
  switch (kind) {
    case PrefetcherKind::L2Streamer: return "l2_streamer";
    case PrefetcherKind::L2Adjacent: return "l2_adjacent";
    case PrefetcherKind::DcuNextLine: return "dcu_next_line";
    case PrefetcherKind::DcuIpStride: return "dcu_ip_stride";
    case PrefetcherKind::L2BestOffset: return "l2_best_offset";
    case PrefetcherKind::L2Spp: return "l2_spp";
    case PrefetcherKind::L2Sandbox: return "l2_sandbox";
  }
  return "unknown";
}

PrefetchLevel level_of(PrefetcherKind kind) noexcept {
  switch (kind) {
    case PrefetcherKind::DcuNextLine:
    case PrefetcherKind::DcuIpStride:
      return PrefetchLevel::L1;
    case PrefetcherKind::L2Streamer:
    case PrefetcherKind::L2Adjacent:
    case PrefetcherKind::L2BestOffset:
    case PrefetcherKind::L2Spp:
    case PrefetcherKind::L2Sandbox:
      return PrefetchLevel::L2;
  }
  return PrefetchLevel::L2;
}

}  // namespace cmm::sim
