#include "sim/prefetcher.hpp"

namespace cmm::sim {

std::string_view to_string(PrefetcherKind kind) noexcept {
  switch (kind) {
    case PrefetcherKind::L2Streamer: return "l2_streamer";
    case PrefetcherKind::L2Adjacent: return "l2_adjacent";
    case PrefetcherKind::DcuNextLine: return "dcu_next_line";
    case PrefetcherKind::DcuIpStride: return "dcu_ip_stride";
  }
  return "unknown";
}

}  // namespace cmm::sim
