// Shared page-boundary and line-alignment arithmetic for the
// prefetcher models. Hardware prefetch engines reason in line
// addresses within 4 KB page frames; every design needs the same three
// operations — split a line address into (page, offset), clamp a
// signed delta to the page, and find the 128 B buddy line — and the
// off-by-one edge cases (offset 0 going down, offset lines_per_page-1
// going up) are exactly where hand-rolled copies diverge. One header,
// unit-tested in tests/test_pf_common.cpp.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace cmm::sim {

/// Page frame number of a line address.
constexpr Addr page_of(Addr line, unsigned lines_per_page) noexcept {
  return line / lines_per_page;
}

/// Line offset within its page, in [0, lines_per_page).
constexpr std::uint32_t page_offset(Addr line, unsigned lines_per_page) noexcept {
  return static_cast<std::uint32_t>(line % lines_per_page);
}

/// Line address of (page, offset).
constexpr Addr line_in_page(Addr page, std::uint32_t offset, unsigned lines_per_page) noexcept {
  return page * lines_per_page + offset;
}

/// The other half of the 128-byte-aligned line pair. Never leaves the
/// page: the pair is 128 B-aligned and pages are 4 KB-aligned.
constexpr Addr buddy_line(Addr line) noexcept { return line ^ 1ULL; }

/// `offset + delta` if it stays inside the page, else -1. This is the
/// clamp every page-local engine applies before emitting a candidate;
/// both edges are exclusive of escape (offset 0 with delta -1 and
/// offset lines_per_page-1 with delta +1 are out).
constexpr std::int64_t page_local_offset(std::uint32_t offset, std::int64_t delta,
                                         unsigned lines_per_page) noexcept {
  const std::int64_t target = static_cast<std::int64_t>(offset) + delta;
  if (target < 0 || target >= static_cast<std::int64_t>(lines_per_page)) return -1;
  return target;
}

/// `line + delta` as a signed value; negative means the target runs off
/// the bottom of the address space (the stride engines' clamp — they
/// may cross pages, but not address zero).
constexpr std::int64_t signed_line_target(Addr line, std::int64_t delta) noexcept {
  return static_cast<std::int64_t>(line) + delta;
}

/// True if `a` and `b` share a 4 KB page.
constexpr bool same_page(Addr a, Addr b, unsigned lines_per_page) noexcept {
  return page_of(a, lines_per_page) == page_of(b, lines_per_page);
}

}  // namespace cmm::sim
