#include "sim/cat.hpp"

namespace cmm::sim {

CatModel::CatModel(unsigned num_cores, unsigned llc_ways, unsigned num_cos)
    : llc_ways_(llc_ways), cbm_(num_cos, full_mask(llc_ways)), core_cos_(num_cores, 0) {
  if (llc_ways == 0 || llc_ways > 32) throw std::invalid_argument("CatModel: bad way count");
  if (num_cos == 0) throw std::invalid_argument("CatModel: need at least one COS");
}

void CatModel::set_cbm(unsigned cos, WayMask mask) {
  if (cos >= cbm_.size()) throw std::invalid_argument("CatModel: COS out of range");
  if (!is_valid_cat_mask(mask, llc_ways_))
    throw std::invalid_argument("CatModel: CBM must be non-empty, contiguous, within way count");
  cbm_[cos] = mask;
}

WayMask CatModel::cbm(unsigned cos) const {
  if (cos >= cbm_.size()) throw std::invalid_argument("CatModel: COS out of range");
  return cbm_[cos];
}

void CatModel::assign_core(CoreId core, unsigned cos) {
  if (core >= core_cos_.size()) throw std::invalid_argument("CatModel: core out of range");
  if (cos >= cbm_.size()) throw std::invalid_argument("CatModel: COS out of range");
  core_cos_[core] = cos;
}

unsigned CatModel::core_cos(CoreId core) const {
  if (core >= core_cos_.size()) throw std::invalid_argument("CatModel: core out of range");
  return core_cos_[core];
}

WayMask CatModel::core_mask(CoreId core) const { return cbm_[core_cos(core)]; }

void CatModel::reset() {
  for (auto& m : cbm_) m = full_mask(llc_ways_);
  for (auto& c : core_cos_) c = 0;
}

}  // namespace cmm::sim
