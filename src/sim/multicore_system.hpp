// The simulated machine: N CoreModels grouped into LLC domains, each
// domain owning a private LLC, CAT instance, and memory controller
// (num_llc_domains == 1 — the default — is the paper's single socket
// and behaves exactly as before). Cores are advanced round-robin in
// fixed cycle quanta so that contention on the shared structures
// interleaves at fine grain without event-queue overhead. Domains
// share nothing, so a multi-domain machine is observationally
// equivalent to its per-domain shards (see DESIGN.md, fleet runner).
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/cache.hpp"
#include "sim/cat.hpp"
#include "sim/core_model.hpp"
#include "sim/machine_config.hpp"
#include "sim/memory_controller.hpp"
#include "sim/pmu.hpp"

namespace cmm::sim {

/// Op stream of a hotplugged-out core: single-instruction ops with no
/// memory reference at a fixed CPI. Because the idle loop never touches
/// the memory hierarchy, its IPC is configuration-independent — it adds
/// a constant term to hm_ipc that preserves the relative ranking of
/// sampled configurations — and it leaves no cache or bandwidth
/// footprint a later tenant could inherit.
class IdleOpSource final : public OpSource {
 public:
  explicit IdleOpSource(double cpi) : traits_{cpi, 1.0} {}

  Op next() override { return Op{1, false, {}}; }
  CoreTraits traits() const override { return traits_; }
  void reset() override {}
  std::size_t next_batch(std::span<Op> out) override {
    for (auto& op : out) op = Op{1, false, {}};
    return out.size();
  }

 private:
  CoreTraits traits_;
};

class MulticoreSystem {
 public:
  explicit MulticoreSystem(const MachineConfig& cfg);

  MulticoreSystem(const MulticoreSystem&) = delete;
  MulticoreSystem& operator=(const MulticoreSystem&) = delete;

  const MachineConfig& config() const noexcept { return cfg_; }
  unsigned num_cores() const noexcept { return cfg_.num_cores; }

  CoreModel& core(CoreId id) { return *cores_.at(id); }
  const CoreModel& core(CoreId id) const { return *cores_.at(id); }

  // Per-domain shared structures. The argument defaults to domain 0 so
  // every pre-domain call site (and every single-domain machine, where
  // domain 0 is the only one) keeps working unchanged. CatModel and
  // MemoryController are constructed with the GLOBAL core count, so
  // global core ids index any domain's instance directly — no id
  // remapping anywhere in the stack.
  unsigned num_domains() const noexcept { return cfg_.num_llc_domains; }
  std::uint32_t domain_of(CoreId id) const noexcept { return cfg_.domain_of(id); }

  SetAssocCache& llc(unsigned d = 0) { return domains_.at(d)->llc; }
  const SetAssocCache& llc(unsigned d = 0) const { return domains_.at(d)->llc; }

  CatModel& cat(unsigned d = 0) { return domains_.at(d)->cat; }
  const CatModel& cat(unsigned d = 0) const { return domains_.at(d)->cat; }

  MemoryController& memory(unsigned d = 0) { return domains_.at(d)->mem; }
  const MemoryController& memory(unsigned d = 0) const { return domains_.at(d)->mem; }

  Pmu& pmu() noexcept { return pmu_; }
  const Pmu& pmu() const noexcept { return pmu_; }

  Cycle now() const noexcept { return global_cycle_; }

  /// Attach the program each core runs.
  void set_op_source(CoreId id, std::shared_ptr<OpSource> source);

  // ---- Service-mode core hotplug ----
  //
  // attach_core/detach_core reconfigure one core between runs of the
  // interleaved driver (never mid-run). Both flush the core's private
  // caches + prefetcher state and drop its LLC footprint, so a tenant
  // always starts cold and deterministically — nothing of the previous
  // occupant's microarchitectural state leaks across the hotplug
  // boundary. PMU counters are deliberately NOT reset: the EpochDriver
  // requires monotone counters, and per-tenant accounting is done with
  // attach-time snapshots one level up.

  /// Install a tenant on `id`. Returns the number of LLC lines the
  /// previous occupant left behind (now invalidated).
  std::size_t attach_core(CoreId id, std::shared_ptr<OpSource> source);

  /// Remove the tenant from `id`; the core runs the idle loop
  /// (MachineConfig::idle_cpi) until the next attach_core.
  std::size_t detach_core(CoreId id);

  // ---- Live tenant migration (hierarchical fleet coordinator) ----
  //
  // A migration moves a *stream*, not a core: the tenant's op source
  // and its in-flight consumption state (OpStreamState: buffered ops,
  // batch traits, sub-cycle phase) are transplanted onto the
  // destination core, which starts microarchitecturally cold in its
  // own domain — exactly like a hotplug attach, except the program
  // continues where it left off instead of restarting. As with
  // attach/detach, PMU counters are NOT reset (EpochDriver requires
  // monotone counters); per-tenant accounting uses snapshots one level
  // up. Only ever called between runs of the interleaved driver.

  /// Snapshot the stream running on `id` (tenant or idle loop) without
  /// disturbing it.
  OpStreamState export_tenant(CoreId id) const;

  /// Install a previously exported stream on `id`: cold-start the
  /// core's microarchitectural state (reset + LLC footprint reclaim,
  /// like attach_core), then continue the stream at its exported
  /// position. Returns the number of LLC lines invalidated.
  std::size_t attach_core_stream(CoreId id, OpStreamState state);

  /// Exchange the tenants of two cores (same or different domains) in
  /// one step — the coordinator's migration primitive on a fully
  /// occupied machine. Both cores restart cold; both streams continue.
  void swap_tenants(CoreId a, CoreId b);

  /// True when `id` currently runs the hotplug idle loop.
  bool core_idle(CoreId id) const { return idle_.at(id); }
  unsigned num_idle_cores() const noexcept;

  /// Advance all cores by `cycles` in interleaved quanta.
  void run(Cycle cycles);

  /// Flush all caches and prefetcher state; keeps PMU/CAT/MSR settings.
  void reset_microarch();

 private:
  /// One LLC/bandwidth domain: a private LLC + CAT + memory controller
  /// shared only by the domain's core block.
  struct LlcDomain {
    LlcDomain(const MachineConfig& cfg)
        : llc(cfg.llc), cat(cfg.num_cores, cfg.llc.ways), mem(cfg, cfg.num_cores) {}
    SetAssocCache llc;
    CatModel cat;
    MemoryController mem;
  };

  MachineConfig cfg_;
  std::vector<std::unique_ptr<LlcDomain>> domains_;
  Pmu pmu_;  // global: per-core slots indexed by global core id
  std::vector<std::unique_ptr<CoreModel>> cores_;
  std::vector<bool> idle_;  // core runs the hotplug idle loop
  Cycle global_cycle_ = 0;
};

}  // namespace cmm::sim
