// The simulated socket: N CoreModels sharing one LLC, one CAT instance,
// and one memory controller. Cores are advanced round-robin in fixed
// cycle quanta so that contention on the shared structures interleaves
// at fine grain without event-queue overhead.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "sim/cache.hpp"
#include "sim/cat.hpp"
#include "sim/core_model.hpp"
#include "sim/machine_config.hpp"
#include "sim/memory_controller.hpp"
#include "sim/pmu.hpp"

namespace cmm::sim {

class MulticoreSystem {
 public:
  explicit MulticoreSystem(const MachineConfig& cfg);

  MulticoreSystem(const MulticoreSystem&) = delete;
  MulticoreSystem& operator=(const MulticoreSystem&) = delete;

  const MachineConfig& config() const noexcept { return cfg_; }
  unsigned num_cores() const noexcept { return cfg_.num_cores; }

  CoreModel& core(CoreId id) { return *cores_.at(id); }
  const CoreModel& core(CoreId id) const { return *cores_.at(id); }

  SetAssocCache& llc() noexcept { return llc_; }
  const SetAssocCache& llc() const noexcept { return llc_; }

  CatModel& cat() noexcept { return cat_; }
  const CatModel& cat() const noexcept { return cat_; }

  MemoryController& memory() noexcept { return mem_; }
  const MemoryController& memory() const noexcept { return mem_; }

  Pmu& pmu() noexcept { return pmu_; }
  const Pmu& pmu() const noexcept { return pmu_; }

  Cycle now() const noexcept { return global_cycle_; }

  /// Attach the program each core runs.
  void set_op_source(CoreId id, std::shared_ptr<OpSource> source);

  /// Advance all cores by `cycles` in interleaved quanta.
  void run(Cycle cycles);

  /// Flush all caches and prefetcher state; keeps PMU/CAT/MSR settings.
  void reset_microarch();

 private:
  MachineConfig cfg_;
  SetAssocCache llc_;
  CatModel cat_;
  MemoryController mem_;
  Pmu pmu_;
  std::vector<std::unique_ptr<CoreModel>> cores_;
  Cycle global_cycle_ = 0;
};

}  // namespace cmm::sim
