// Hardware-prefetcher models behind a uniform plug-in contract
// (ChampSim-style: construct / observe / cache-fill-notify / reset).
//
// The first four kinds model a modern Intel core's data prefetchers
// (SDM vol.3 / MSR 0x1A4): two at L1D (DCU next-line and DCU IP-stride)
// and two at L2 (streamer and adjacent-cache-line). The remaining kinds
// are ports of published designs from the research zoo — best-offset
// (Michaud, DPC-2/HPCA'16), an SPP-style signature-path prefetcher
// (Kim et al., MICRO'16), and a sandbox prefetcher (Pugsley et al.,
// HPCA'14) — modelled as alternative L2 engines so heterogeneous
// per-core prefetcher mixes can probe where the CMM detector's
// Intel-tuned metrics misclassify.
//
// Contract (enforced by tests/test_prefetcher_conformance.cpp on every
// registered kind):
//   - observe() appends candidate prefetch line addresses to `out`
//     (never cleared) and is deterministic: identical observation
//     sequences produce identical candidate sequences.
//   - observe() appends at most max_candidates() addresses per call.
//   - reset() restores the *predictive* state to construction
//     equivalence; the issued() odometer deliberately persists (it is
//     an observability counter, not predictor state).
//   - kinds reporting page_local() never emit a candidate outside the
//     triggering access's 4 KB page.
//   - cache_fill() is a notification that a line completed its fill at
//     the prefetcher's cache level; engines opt in via
//     wants_cache_fill() so the core skips the fan-out otherwise.
//   - the core gates observe() on the per-core prefetch MSR; a disabled
//     kind sees no traffic and must therefore emit nothing.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cmm::sim {

/// Per-core prefetcher kinds. The first four are numbered by their
/// disable bit in IA32 MSR 0x1A4 (MISC_FEATURE_CONTROL); the zoo kinds
/// extend the register with model-fictional disable bits 4..6 (real
/// hardware has no such bits — the simulated MSR simply keeps the
/// "set bit disables" convention for every registered engine).
enum class PrefetcherKind : std::uint8_t {
  L2Streamer = 0,    // MSR bit 0
  L2Adjacent = 1,    // MSR bit 1
  DcuNextLine = 2,   // MSR bit 2
  DcuIpStride = 3,   // MSR bit 3
  L2BestOffset = 4,  // zoo: best-offset (BOP)
  L2Spp = 5,         // zoo: signature-path (SPP-style)
  L2Sandbox = 6,     // zoo: sandbox/score
};

inline constexpr unsigned kNumPrefetcherKinds = 7;

/// Cache level a prefetcher engine observes and fills into.
enum class PrefetchLevel : std::uint8_t { L1, L2 };

std::string_view to_string(PrefetcherKind kind) noexcept;
PrefetchLevel level_of(PrefetcherKind kind) noexcept;

/// What a prefetcher sees: one demand access at its cache level.
struct PrefetchObservation {
  Addr line_addr = 0;  // line address (byte >> line_shift)
  IpId ip = 0;         // synthetic instruction pointer id
  bool miss = false;   // did the demand access miss this level?
};

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// Observe one demand access; append prefetch candidate line
  /// addresses to `out` (not cleared). Candidates may duplicate lines
  /// already cached; the hierarchy filters those.
  virtual void observe(const PrefetchObservation& obs, std::vector<Addr>& out) = 0;

  /// Restore predictive state to construction equivalence (the
  /// issued() odometer persists — see the contract above).
  virtual void reset() = 0;
  virtual PrefetcherKind kind() const noexcept = 0;

  /// Notification that `line` completed a fill at this prefetcher's
  /// cache level (`prefetch_fill` distinguishes prefetch from demand
  /// fills). Only delivered to engines with wants_cache_fill().
  virtual void cache_fill(Addr line, bool prefetch_fill) {
    (void)line;
    (void)prefetch_fill;
  }

  /// Engine wants cache_fill() notifications (lets the core model skip
  /// the fan-out entirely for engines that don't).
  virtual bool wants_cache_fill() const noexcept { return false; }

  /// Engine also trains on prefetch-triggered requests arriving at its
  /// level (Intel's streamer does; see CoreModel::issue_l1_prefetch).
  virtual bool observes_prefetch_traffic() const noexcept { return false; }

  /// Candidates never leave the triggering access's 4 KB page
  /// (conformance-checked for kinds that report true).
  virtual bool page_local() const noexcept = 0;

  /// Upper bound on candidates appended by a single observe() call
  /// (conformance-checked).
  virtual unsigned max_candidates() const noexcept = 0;

  /// Total candidates this prefetcher has emitted (pre-filter).
  std::uint64_t issued() const noexcept { return issued_; }

 protected:
  void note_issued(std::size_t n) noexcept { issued_ += n; }

 private:
  std::uint64_t issued_ = 0;
};

/// L1 DCU next-line prefetcher: a demand access to line X triggers a
/// prefetch of X+1 when the access continues an ascending run.
class NextLinePrefetcher final : public Prefetcher {
 public:
  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override;
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::DcuNextLine; }
  bool page_local() const noexcept override { return false; }  // X+1 may cross the page
  unsigned max_candidates() const noexcept override { return 1; }

 private:
  Addr last_line_ = 0;
  bool have_last_ = false;
};

/// L1 DCU IP-stride prefetcher: per-IP stride table with confidence.
class IpStridePrefetcher final : public Prefetcher {
 public:
  struct Config {
    unsigned table_entries = 64;   // direct-mapped by IP
    unsigned degree = 2;           // lines ahead once confident
    unsigned confidence_threshold = 2;
  };

  IpStridePrefetcher();
  explicit IpStridePrefetcher(const Config& cfg);

  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override;
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::DcuIpStride; }
  bool page_local() const noexcept override { return false; }  // strides cross pages
  unsigned max_candidates() const noexcept override { return cfg_.degree; }

 private:
  struct Entry {
    IpId ip = 0;
    Addr last_line = 0;
    std::int64_t stride = 0;
    unsigned confidence = 0;
    bool valid = false;
  };

  Config cfg_;
  std::vector<Entry> table_;
};

/// L2 streamer: per-4KB-page direction tracker; once a forward or
/// backward run is confirmed it prefetches `degree` lines ahead,
/// stopping at the page boundary (hardware streamers do not cross 4 KB
/// pages).
class StreamerPrefetcher final : public Prefetcher {
 public:
  struct Config {
    unsigned trackers = 16;        // LRU-managed page trackers
    unsigned degree = 10;          // lines fetched ahead when confident
                                   // (Intel streamers run up to 20 ahead)
    unsigned confidence_threshold = 3;
    unsigned lines_per_page = 64;  // 4 KB / 64 B
  };

  StreamerPrefetcher();
  explicit StreamerPrefetcher(const Config& cfg);

  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override;
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::L2Streamer; }
  bool observes_prefetch_traffic() const noexcept override { return true; }
  bool page_local() const noexcept override { return true; }
  unsigned max_candidates() const noexcept override { return cfg_.degree; }

  /// Aggressiveness control for feedback-directed schemes (FDP): the
  /// number of lines fetched ahead once a stream is confirmed.
  unsigned degree() const noexcept { return cfg_.degree; }
  void set_degree(unsigned degree) noexcept { cfg_.degree = degree == 0 ? 1 : degree; }

 private:
  struct Tracker {
    Addr page = 0;
    std::uint32_t last_offset = 0;
    int direction = 0;  // +1 forward, -1 backward, 0 unknown
    unsigned confidence = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool has_last = false;  // first touch recorded?
    // High-water mark of issued prefetches (forward: last offset
    // requested; backward: first). Real streamers advance through the
    // page instead of re-requesting covered lines.
    std::int32_t issued_until = -1;
  };

  Tracker* find_or_alloc(Addr page);

  Config cfg_;
  std::vector<Tracker> trackers_;
  std::uint64_t tick_ = 0;
};

/// L2 adjacent-cache-line prefetcher: on an L2 demand miss to line X,
/// fetch the other half of X's 128-byte-aligned pair (X ^ 1). Fires
/// regardless of access pattern — this is what makes random-access
/// programs prefetch-aggressive-but-useless on real Intel parts.
class AdjacentLinePrefetcher final : public Prefetcher {
 public:
  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override {}
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::L2Adjacent; }
  // The 128 B buddy pair never straddles a 4 KB page.
  bool page_local() const noexcept override { return true; }
  unsigned max_candidates() const noexcept override { return 1; }
};

/// Best-offset prefetcher (Michaud, HPCA'16 / DPC-2 winner), L2 port.
/// Learns the single best prefetch offset D by scoring a fixed
/// candidate list in rounds: an access to line X votes for offset d if
/// X - d was recently requested (recent-requests table, filled at
/// cache-fill time), i.e. a prefetch at offset d would have been
/// timely. The winning offset prefetches X + D; a round whose best
/// score is below bad_score turns prefetching off until the next round.
class BestOffsetPrefetcher final : public Prefetcher {
 public:
  struct Config {
    unsigned rr_entries = 64;      // recent-requests table (direct-mapped)
    unsigned score_max = 31;       // round ends when a score saturates
    unsigned round_max = 100;      // ...or after this many test updates
    unsigned bad_score = 1;        // best < bad_score => prefetch off
    unsigned lines_per_page = 64;  // 4 KB / 64 B
  };

  BestOffsetPrefetcher();
  explicit BestOffsetPrefetcher(const Config& cfg);

  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override;
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::L2BestOffset; }
  void cache_fill(Addr line, bool prefetch_fill) override;
  bool wants_cache_fill() const noexcept override { return true; }
  bool page_local() const noexcept override { return true; }
  unsigned max_candidates() const noexcept override { return 1; }

  /// Currently selected offset (0 = prefetching off). Test/diagnostic.
  int current_offset() const noexcept { return best_offset_; }

  /// The candidate offset list (Michaud's list trimmed to in-page
  /// magnitudes; shared with the conformance suite).
  static const std::vector<int>& offset_list();

 private:
  void end_round();

  Config cfg_;
  std::vector<Addr> rr_table_;      // recent base addresses (0 = empty)
  std::vector<unsigned> scores_;    // parallel to offset_list()
  unsigned test_index_ = 0;         // next offset to test (round-robin)
  unsigned round_updates_ = 0;
  int best_offset_ = 1;             // start like a next-line prefetcher
};

/// Signature-path prefetcher (SPP-style, Kim et al. MICRO'16), L2 port.
/// Each page's recent delta history is compressed into a signature; a
/// pattern table maps signatures to observed next-deltas with
/// confidence counters. On an access the signature's best delta is
/// speculatively chained `degree` steps down the path, with per-step
/// compounding confidence, clamped to the page.
class SppPrefetcher final : public Prefetcher {
 public:
  struct Config {
    unsigned signature_table_entries = 64;  // page trackers (direct-mapped)
    unsigned pattern_table_entries = 512;   // signature -> delta predictions
    unsigned deltas_per_entry = 4;
    unsigned degree = 4;            // max lookahead depth per trigger
    double confidence_threshold = 0.25;  // stop the path below this
    unsigned counter_max = 15;      // 4-bit saturating counters
    unsigned lines_per_page = 64;
  };

  SppPrefetcher();
  explicit SppPrefetcher(const Config& cfg);

  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override;
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::L2Spp; }
  bool page_local() const noexcept override { return true; }
  unsigned max_candidates() const noexcept override { return cfg_.degree; }

 private:
  struct PageEntry {
    Addr page = 0;
    std::uint16_t signature = 0;
    std::uint32_t last_offset = 0;
    bool valid = false;
    bool has_last = false;
  };
  struct DeltaSlot {
    std::int16_t delta = 0;
    std::uint8_t counter = 0;  // saturating
  };
  struct PatternEntry {
    std::uint16_t signature = 0;
    bool valid = false;
    std::vector<DeltaSlot> slots;
  };

  static std::uint16_t advance_signature(std::uint16_t sig, int delta) noexcept;
  PatternEntry& pattern_slot(std::uint16_t sig);
  void train(std::uint16_t sig, int delta);

  Config cfg_;
  std::vector<PageEntry> pages_;
  std::vector<PatternEntry> patterns_;
};

/// Sandbox prefetcher (Pugsley et al., HPCA'14), L2 port. Candidate
/// offsets are auditioned one at a time in a "sandbox": while offset d
/// is under test, every access to line X records X + d in the sandbox
/// filter; an access that *hits* the filter proves a prefetch at d
/// would have been used, scoring the candidate. After a fixed audition
/// length the candidate is accepted if its score clears the threshold.
/// Accepted offsets (up to max_accepted, best scores win) issue real
/// prefetches, page-clamped.
class SandboxPrefetcher final : public Prefetcher {
 public:
  struct Config {
    unsigned sandbox_entries = 256;   // direct-mapped filter
    unsigned audition_accesses = 256; // sandbox period length
    unsigned accept_score = 32;       // score needed to accept an offset
    unsigned max_accepted = 4;        // live offsets issuing prefetches
    unsigned lines_per_page = 64;
  };

  SandboxPrefetcher();
  explicit SandboxPrefetcher(const Config& cfg);

  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override;
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::L2Sandbox; }
  bool page_local() const noexcept override { return true; }
  unsigned max_candidates() const noexcept override { return cfg_.max_accepted; }

  /// Offsets currently issuing real prefetches (test/diagnostic).
  const std::vector<int>& accepted_offsets() const noexcept { return accepted_; }

  /// The audition rota (shared with the conformance suite).
  static const std::vector<int>& candidate_list();

 private:
  void end_audition();

  Config cfg_;
  std::vector<Addr> sandbox_;   // lines a test-offset prefetch would have fetched
  std::vector<int> accepted_;   // offsets that cleared the audition
  std::vector<unsigned> accepted_scores_;  // parallel to accepted_
  unsigned candidate_index_ = 0;  // rota position of the offset under test
  unsigned audition_pos_ = 0;
  unsigned score_ = 0;
};

}  // namespace cmm::sim
