// Hardware-prefetcher models. A modern Intel core has four data
// prefetchers (SDM vol.3 / MSR 0x1A4): two at L1D (DCU next-line and
// DCU IP-stride) and two at L2 (streamer and adjacent-cache-line).
// Each model observes the demand-access stream arriving at its cache
// level and emits candidate prefetch line addresses.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace cmm::sim {

/// The four per-core prefetchers, numbered by their disable bit in
/// IA32 MSR 0x1A4 (MISC_FEATURE_CONTROL).
enum class PrefetcherKind : std::uint8_t {
  L2Streamer = 0,    // MSR bit 0
  L2Adjacent = 1,    // MSR bit 1
  DcuNextLine = 2,   // MSR bit 2
  DcuIpStride = 3,   // MSR bit 3
};

inline constexpr unsigned kNumPrefetcherKinds = 4;

std::string_view to_string(PrefetcherKind kind) noexcept;

/// What a prefetcher sees: one demand access at its cache level.
struct PrefetchObservation {
  Addr line_addr = 0;  // line address (byte >> line_shift)
  IpId ip = 0;         // synthetic instruction pointer id
  bool miss = false;   // did the demand access miss this level?
};

class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// Observe one demand access; append prefetch candidate line
  /// addresses to `out` (not cleared). Candidates may duplicate lines
  /// already cached; the hierarchy filters those.
  virtual void observe(const PrefetchObservation& obs, std::vector<Addr>& out) = 0;

  virtual void reset() = 0;
  virtual PrefetcherKind kind() const noexcept = 0;

  /// Total candidates this prefetcher has emitted (pre-filter).
  std::uint64_t issued() const noexcept { return issued_; }

 protected:
  void note_issued(std::size_t n) noexcept { issued_ += n; }

 private:
  std::uint64_t issued_ = 0;
};

/// L1 DCU next-line prefetcher: a demand access to line X triggers a
/// prefetch of X+1 when the access continues an ascending run.
class NextLinePrefetcher final : public Prefetcher {
 public:
  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override;
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::DcuNextLine; }

 private:
  Addr last_line_ = 0;
  bool have_last_ = false;
};

/// L1 DCU IP-stride prefetcher: per-IP stride table with confidence.
class IpStridePrefetcher final : public Prefetcher {
 public:
  struct Config {
    unsigned table_entries = 64;   // direct-mapped by IP
    unsigned degree = 2;           // lines ahead once confident
    unsigned confidence_threshold = 2;
  };

  IpStridePrefetcher();
  explicit IpStridePrefetcher(const Config& cfg);

  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override;
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::DcuIpStride; }

 private:
  struct Entry {
    IpId ip = 0;
    Addr last_line = 0;
    std::int64_t stride = 0;
    unsigned confidence = 0;
    bool valid = false;
  };

  Config cfg_;
  std::vector<Entry> table_;
};

/// L2 streamer: per-4KB-page direction tracker; once a forward or
/// backward run is confirmed it prefetches `degree` lines ahead,
/// stopping at the page boundary (hardware streamers do not cross 4 KB
/// pages).
class StreamerPrefetcher final : public Prefetcher {
 public:
  struct Config {
    unsigned trackers = 16;        // LRU-managed page trackers
    unsigned degree = 10;          // lines fetched ahead when confident
                                   // (Intel streamers run up to 20 ahead)
    unsigned confidence_threshold = 3;
    unsigned lines_per_page = 64;  // 4 KB / 64 B
  };

  StreamerPrefetcher();
  explicit StreamerPrefetcher(const Config& cfg);

  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override;
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::L2Streamer; }

  /// Aggressiveness control for feedback-directed schemes (FDP): the
  /// number of lines fetched ahead once a stream is confirmed.
  unsigned degree() const noexcept { return cfg_.degree; }
  void set_degree(unsigned degree) noexcept { cfg_.degree = degree == 0 ? 1 : degree; }

 private:
  struct Tracker {
    Addr page = 0;
    std::uint32_t last_offset = 0;
    int direction = 0;  // +1 forward, -1 backward, 0 unknown
    unsigned confidence = 0;
    std::uint64_t lru = 0;
    bool valid = false;
    bool has_last = false;  // first touch recorded?
    // High-water mark of issued prefetches (forward: last offset
    // requested; backward: first). Real streamers advance through the
    // page instead of re-requesting covered lines.
    std::int32_t issued_until = -1;
  };

  Tracker* find_or_alloc(Addr page);

  Config cfg_;
  std::vector<Tracker> trackers_;
  std::uint64_t tick_ = 0;
};

/// L2 adjacent-cache-line prefetcher: on an L2 demand miss to line X,
/// fetch the other half of X's 128-byte-aligned pair (X ^ 1). Fires
/// regardless of access pattern — this is what makes random-access
/// programs prefetch-aggressive-but-useless on real Intel parts.
class AdjacentLinePrefetcher final : public Prefetcher {
 public:
  void observe(const PrefetchObservation& obs, std::vector<Addr>& out) override;
  void reset() override {}
  PrefetcherKind kind() const noexcept override { return PrefetcherKind::L2Adjacent; }
};

}  // namespace cmm::sim
