#include "sim/multicore_system.hpp"

#include <stdexcept>

namespace cmm::sim {

MulticoreSystem::MulticoreSystem(const MachineConfig& cfg) : cfg_(cfg), pmu_(cfg.num_cores) {
  if (!cfg.valid()) throw std::invalid_argument("MulticoreSystem: invalid MachineConfig");
  domains_.reserve(cfg.num_llc_domains);
  for (std::uint32_t d = 0; d < cfg.num_llc_domains; ++d) {
    domains_.push_back(std::make_unique<LlcDomain>(cfg_));
  }
  cores_.reserve(cfg.num_cores);
  for (CoreId id = 0; id < cfg.num_cores; ++id) {
    LlcDomain& dom = *domains_[cfg_.domain_of(id)];
    cores_.push_back(std::make_unique<CoreModel>(id, cfg_, dom.llc, dom.cat, dom.mem, pmu_));
  }
  idle_.assign(cfg.num_cores, false);
  if (cfg_.inclusive_llc) {
    // Back-invalidation only ever targets a core of the evicting
    // domain: owners are recorded at fill time, and only the domain's
    // own cores fill its LLC.
    for (auto& core : cores_) {
      core->set_eviction_listener([this](Addr line, CoreId owner) {
        if (owner >= cores_.size()) return;
        cores_[owner]->l1().invalidate(line);
        cores_[owner]->l2().invalidate(line);
      });
    }
  }
}

void MulticoreSystem::set_op_source(CoreId id, std::shared_ptr<OpSource> source) {
  cores_.at(id)->set_op_source(std::move(source));
}

std::size_t MulticoreSystem::attach_core(CoreId id, std::shared_ptr<OpSource> source) {
  auto& core = *cores_.at(id);
  // Cold deterministic start: drop whatever the previous occupant (or
  // the idle loop) left in the private caches and prefetcher engines,
  // then reclaim its LLC footprint.
  core.reset_microarch();
  const std::size_t dropped = llc(cfg_.domain_of(id)).invalidate_owner(id);
  core.set_op_source(std::move(source));
  idle_.at(id) = false;
  return dropped;
}

std::size_t MulticoreSystem::detach_core(CoreId id) {
  auto& core = *cores_.at(id);
  core.reset_microarch();
  const std::size_t dropped = llc(cfg_.domain_of(id)).invalidate_owner(id);
  core.set_op_source(std::make_shared<IdleOpSource>(cfg_.idle_cpi));
  idle_.at(id) = true;
  return dropped;
}

OpStreamState MulticoreSystem::export_tenant(CoreId id) const {
  return cores_.at(id)->export_stream();
}

std::size_t MulticoreSystem::attach_core_stream(CoreId id, OpStreamState state) {
  auto& core = *cores_.at(id);
  core.reset_microarch();
  const std::size_t dropped = llc(cfg_.domain_of(id)).invalidate_owner(id);
  core.import_stream(std::move(state));
  idle_.at(id) = false;
  return dropped;
}

void MulticoreSystem::swap_tenants(CoreId a, CoreId b) {
  OpStreamState stream_a = cores_.at(a)->export_stream();
  OpStreamState stream_b = cores_.at(b)->export_stream();
  const bool idle_a = idle_.at(a);
  const bool idle_b = idle_.at(b);
  attach_core_stream(a, std::move(stream_b));
  attach_core_stream(b, std::move(stream_a));
  idle_.at(a) = idle_b;
  idle_.at(b) = idle_a;
}

unsigned MulticoreSystem::num_idle_cores() const noexcept {
  unsigned n = 0;
  for (const bool b : idle_) n += b ? 1u : 0u;
  return n;
}

void MulticoreSystem::run(Cycle cycles) {
  const Cycle target = global_cycle_ + cycles;
  while (global_cycle_ < target) {
    const Cycle step = std::min(cfg_.quantum, target - global_cycle_);
    const Cycle quantum_end = global_cycle_ + step;
    for (auto& core : cores_) core->advance_to(quantum_end);
    global_cycle_ = quantum_end;
  }
}

void MulticoreSystem::reset_microarch() {
  for (auto& dom : domains_) dom->llc.flush();
  for (auto& core : cores_) core->reset_microarch();
}

}  // namespace cmm::sim
