#include "sim/prefetcher.hpp"

namespace cmm::sim {

void NextLinePrefetcher::observe(const PrefetchObservation& obs, std::vector<Addr>& out) {
  // Trigger only on a strictly ascending pair of accesses (the DCU
  // prefetcher keys on ascending loads to very recently used lines).
  if (have_last_ && obs.line_addr == last_line_ + 1) {
    out.push_back(obs.line_addr + 1);
    note_issued(1);
  }
  last_line_ = obs.line_addr;
  have_last_ = true;
}

void NextLinePrefetcher::reset() {
  last_line_ = 0;
  have_last_ = false;
}

}  // namespace cmm::sim
