#include "sim/prefetcher_registry.hpp"

#include <cassert>

namespace cmm::sim {

namespace {

template <typename T>
std::unique_ptr<Prefetcher> make_default() {
  return std::make_unique<T>();
}

}  // namespace

const std::vector<PrefetcherInfo>& prefetcher_registry() {
  static const std::vector<PrefetcherInfo> registry = {
      {PrefetcherKind::L2Streamer, PrefetchLevel::L2, "l2_streamer",
       &make_default<StreamerPrefetcher>},
      {PrefetcherKind::L2Adjacent, PrefetchLevel::L2, "l2_adjacent",
       &make_default<AdjacentLinePrefetcher>},
      {PrefetcherKind::DcuNextLine, PrefetchLevel::L1, "dcu_next_line",
       &make_default<NextLinePrefetcher>},
      {PrefetcherKind::DcuIpStride, PrefetchLevel::L1, "dcu_ip_stride",
       &make_default<IpStridePrefetcher>},
      {PrefetcherKind::L2BestOffset, PrefetchLevel::L2, "l2_best_offset",
       &make_default<BestOffsetPrefetcher>},
      {PrefetcherKind::L2Spp, PrefetchLevel::L2, "l2_spp", &make_default<SppPrefetcher>},
      {PrefetcherKind::L2Sandbox, PrefetchLevel::L2, "l2_sandbox",
       &make_default<SandboxPrefetcher>},
  };
  static_assert(kNumPrefetcherKinds == 7, "update the registry table with the new kind");
  assert(registry.size() == kNumPrefetcherKinds);
  return registry;
}

const PrefetcherInfo& prefetcher_info(PrefetcherKind kind) {
  const auto& registry = prefetcher_registry();
  const auto index = static_cast<std::size_t>(kind);
  assert(index < registry.size() && registry[index].kind == kind);
  return registry[index];
}

std::unique_ptr<Prefetcher> make_prefetcher(PrefetcherKind kind) {
  auto p = prefetcher_info(kind).make();
  assert(p->kind() == kind);
  return p;
}

std::optional<PrefetcherKind> prefetcher_from_string(std::string_view name) noexcept {
  for (const auto& info : prefetcher_registry()) {
    if (info.name == name) return info.kind;
  }
  return std::nullopt;
}

const std::vector<PrefetcherKind>& default_prefetcher_set() {
  static const std::vector<PrefetcherKind> set = {
      PrefetcherKind::L2Streamer,
      PrefetcherKind::L2Adjacent,
      PrefetcherKind::DcuNextLine,
      PrefetcherKind::DcuIpStride,
  };
  return set;
}

}  // namespace cmm::sim
