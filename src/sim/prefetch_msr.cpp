#include "sim/prefetch_msr.hpp"

// Header-only model; this TU exists so the target has a definition home
// if out-of-line members are added later.
