#include "sim/cache.hpp"

#include <cassert>
#include <limits>

namespace cmm::sim {

SetAssocCache::SetAssocCache(const CacheGeometry& geom)
    : geom_(geom),
      num_sets_(static_cast<std::uint32_t>(geom.num_sets())),
      ways_(geom.ways),
      lines_(static_cast<std::size_t>(num_sets_) * ways_) {
  assert(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0);
}

SetAssocCache::Line* SetAssocCache::find(Addr line_addr) {
  const std::uint32_t set = set_index(line_addr);
  const Addr tag = line_addr >> 0;  // full line address stored as tag
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

const SetAssocCache::Line* SetAssocCache::find(Addr line_addr) const {
  return const_cast<SetAssocCache*>(this)->find(line_addr);
}

LookupResult SetAssocCache::access(Addr line_addr, AccessType type, Cycle now) {
  const bool demand = is_demand(type);
  if (demand) {
    ++stats_.demand_accesses;
  } else {
    ++stats_.prefetch_accesses;
  }

  Line* line = find(line_addr);
  if (line == nullptr) return LookupResult{};

  LookupResult r;
  r.hit = true;
  r.ready_at = line->ready_at;
  if (demand) {
    ++stats_.demand_hits;
    if (line->prefetched && !line->pf_used) {
      line->pf_used = true;
      ++stats_.prefetched_lines_used;
      r.first_use_of_prefetch = true;
    }
    // The first demand waiter absorbs any in-flight fill latency: it is
    // charged once (via r.ready_at) and the line is resident afterwards.
    line->ready_at = now;
    if (type == AccessType::DemandStore) line->dirty = true;
  } else {
    ++stats_.prefetch_hits;
    // A prefetch request consuming a prefetched line still counts as a
    // use for accuracy accounting (an L1 prefetch picking up a streamer
    // fill from L2 does deliver the data to the core)...
    if (line->prefetched && !line->pf_used) {
      line->pf_used = true;
      ++stats_.prefetched_lines_used;
      r.first_use_of_prefetch = true;
    }
    // ...but prefetch hits do not promote replacement state: a
    // prefetcher re-walking resident data must not keep lines young
    // forever (non-promoting prefetch hits, as in real LLC designs —
    // without this, a wrapping stream pins its pre-partition footprint
    // and CAT repartitioning never reclaims the ways).
    return r;
  }

  touch(*line);
  return r;
}

bool SetAssocCache::contains(Addr line_addr) const { return find(line_addr) != nullptr; }

FillResult SetAssocCache::fill(Addr line_addr, AccessType type, [[maybe_unused]] Cycle now,
                               Cycle ready_at, WayMask alloc_mask, CoreId owner) {
  FillResult result;
  if (alloc_mask == 0) return result;  // no allocatable ways: fill dropped

  // Refill of a resident line (e.g. racing prefetch): refresh metadata.
  if (Line* existing = find(line_addr); existing != nullptr) {
    if (existing->ready_at > ready_at) existing->ready_at = ready_at;
    if (type == AccessType::DemandStore) existing->dirty = true;
    return result;
  }

  const std::uint32_t set = set_index(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * ways_];

  // Prefer an invalid way inside the mask.
  std::uint32_t victim = ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (((alloc_mask >> w) & 1U) == 0) continue;
    if (w >= ways_) break;
    if (!base[w].valid) {
      victim = w;
      break;
    }
  }
  // Otherwise evict the LRU (oldest-timestamp) line inside the mask.
  if (victim == ways_) {
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (((alloc_mask >> w) & 1U) == 0) continue;
      if (base[w].last_used < oldest) {
        oldest = base[w].last_used;
        victim = w;
      }
    }
    if (victim == ways_) return result;  // mask beyond associativity
    Line& v = base[victim];
    result.evicted_valid = true;
    result.evicted_line = v.tag;
    result.evicted_owner = v.owner;
    result.evicted_dirty = v.dirty;
    ++stats_.evictions;
    if (v.prefetched && !v.pf_used) {
      result.evicted_was_prefetched_unused = true;
      ++stats_.prefetched_lines_evicted_unused;
    }
  }

  Line& line = base[victim];
  line.valid = true;
  line.tag = line_addr;
  line.ready_at = ready_at;
  line.owner = owner;
  line.prefetched = (type == AccessType::Prefetch);
  line.pf_used = false;
  line.dirty = (type == AccessType::DemandStore);
  touch(line);
  return result;
}

bool SetAssocCache::invalidate(Addr line_addr) {
  Line* line = find(line_addr);
  if (line == nullptr) return false;
  if (line->prefetched && !line->pf_used) ++stats_.prefetched_lines_evicted_unused;
  line->valid = false;
  return true;
}

void SetAssocCache::flush() {
  for (auto& line : lines_) line.valid = false;
}

std::vector<std::uint64_t> SetAssocCache::occupancy_by_owner(unsigned num_cores) const {
  std::vector<std::uint64_t> counts(num_cores, 0);
  for (const auto& line : lines_) {
    if (line.valid && line.owner < num_cores) ++counts[line.owner];
  }
  return counts;
}

unsigned SetAssocCache::set_occupancy(std::uint32_t set) const {
  return set_occupancy_in_mask(set, ~WayMask{0});
}

unsigned SetAssocCache::set_occupancy_in_mask(std::uint32_t set, WayMask mask) const {
  unsigned n = 0;
  const Line* base = &lines_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (((mask >> w) & 1U) != 0 && base[w].valid) ++n;
  }
  return n;
}

}  // namespace cmm::sim
