#include "sim/cache.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace cmm::sim {

SetAssocCache::SetAssocCache(const CacheGeometry& geom)
    : geom_(geom),
      num_sets_(static_cast<std::uint32_t>(geom.num_sets())),
      ways_(geom.ways),
      tags_(static_cast<std::size_t>(num_sets_) * ways_, kNoTag),
      ready_at_(static_cast<std::size_t>(num_sets_) * ways_, 0),
      last_used_(static_cast<std::size_t>(num_sets_) * ways_, 0),
      owner_(static_cast<std::size_t>(num_sets_) * ways_, kInvalidCore),
      flags_(static_cast<std::size_t>(num_sets_) * ways_, 0),
      valid_(num_sets_, 0) {
  assert(num_sets_ > 0 && (num_sets_ & (num_sets_ - 1)) == 0);
  assert(ways_ > 0 && ways_ <= 32 && "valid bitmask is a 32-bit WayMask");
}

LookupResult SetAssocCache::access(Addr line_addr, AccessType type, Cycle now) {
  const bool demand = is_demand(type);
  if (demand) {
    ++stats_.demand_accesses;
  } else {
    ++stats_.prefetch_accesses;
  }

  const std::uint32_t set = set_index(line_addr);
  const int way = probe(set, line_addr);
  if (way < 0) return LookupResult{};
  const std::size_t idx = line_index(set, static_cast<std::uint32_t>(way));

  LookupResult r;
  r.hit = true;
  r.ready_at = ready_at_[idx];
  if (demand) {
    ++stats_.demand_hits;
    if ((flags_[idx] & (kFlagPrefetched | kFlagPfUsed)) == kFlagPrefetched) {
      flags_[idx] |= kFlagPfUsed;
      ++stats_.prefetched_lines_used;
      r.first_use_of_prefetch = true;
    }
    // The first demand waiter absorbs any in-flight fill latency: it is
    // charged once (via r.ready_at) and the line is resident afterwards.
    ready_at_[idx] = now;
    if (type == AccessType::DemandStore) flags_[idx] |= kFlagDirty;
  } else {
    ++stats_.prefetch_hits;
    // A prefetch request consuming a prefetched line still counts as a
    // use for accuracy accounting (an L1 prefetch picking up a streamer
    // fill from L2 does deliver the data to the core)...
    if ((flags_[idx] & (kFlagPrefetched | kFlagPfUsed)) == kFlagPrefetched) {
      flags_[idx] |= kFlagPfUsed;
      ++stats_.prefetched_lines_used;
      r.first_use_of_prefetch = true;
    }
    // ...but prefetch hits do not promote replacement state: a
    // prefetcher re-walking resident data must not keep lines young
    // forever (non-promoting prefetch hits, as in real LLC designs —
    // without this, a wrapping stream pins its pre-partition footprint
    // and CAT repartitioning never reclaims the ways).
    return r;
  }

  touch(idx);
  return r;
}

FillResult SetAssocCache::fill(Addr line_addr, AccessType type, [[maybe_unused]] Cycle now,
                               Cycle ready_at, WayMask alloc_mask, CoreId owner) {
  FillResult result;
  if (alloc_mask == 0) return result;  // no allocatable ways: fill dropped
  assert(line_addr != kNoTag && "~0 is reserved as the invalid-way sentinel tag");

  const std::uint32_t set = set_index(line_addr);

  // Refill of a resident line (e.g. racing prefetch): refresh metadata.
  if (const int way = probe(set, line_addr); way >= 0) {
    const std::size_t idx = line_index(set, static_cast<std::uint32_t>(way));
    if (ready_at_[idx] > ready_at) ready_at_[idx] = ready_at;
    if (type == AccessType::DemandStore) flags_[idx] |= kFlagDirty;
    return result;
  }

  const WayMask usable = alloc_mask & full_mask(ways_);
  std::uint32_t victim;
  // Prefer the lowest invalid way inside the mask: one AND + countr_zero
  // instead of an all-ways scan.
  if (const WayMask invalid_ways = usable & ~valid_[set]; invalid_ways != 0) {
    victim = static_cast<std::uint32_t>(std::countr_zero(invalid_ways));
  } else {
    if (usable == 0) return result;  // mask beyond associativity
    // Evict the LRU (oldest-timestamp) line among the mask's set bits
    // (every in-mask way is valid here). Dense masks take the SIMD
    // masked-argmin; sparse CAT partitions keep the O(popcount)
    // bit-scan — both are the identical argmin (simd.hpp contract).
    victim = simd::argmin_tick(&last_used_[line_index(set, 0)], usable, ways_);
    const std::size_t vidx = line_index(set, victim);
    result.evicted_valid = true;
    result.evicted_line = tags_[vidx];
    result.evicted_owner = owner_[vidx];
    result.evicted_dirty = (flags_[vidx] & kFlagDirty) != 0;
    ++stats_.evictions;
    if ((flags_[vidx] & (kFlagPrefetched | kFlagPfUsed)) == kFlagPrefetched) {
      result.evicted_was_prefetched_unused = true;
      ++stats_.prefetched_lines_evicted_unused;
    }
    owner_remove(owner_[vidx]);
  }

  const std::size_t idx = line_index(set, victim);
  valid_[set] |= WayMask{1} << victim;
  tags_[idx] = line_addr;
  ready_at_[idx] = ready_at;
  owner_[idx] = owner;
  flags_[idx] = static_cast<std::uint8_t>((type == AccessType::Prefetch ? kFlagPrefetched : 0) |
                                          (type == AccessType::DemandStore ? kFlagDirty : 0));
  owner_add(owner);
  touch(idx);
  return result;
}

bool SetAssocCache::invalidate(Addr line_addr) {
  const std::uint32_t set = set_index(line_addr);
  const int way = probe(set, line_addr);
  if (way < 0) return false;
  const std::size_t idx = line_index(set, static_cast<std::uint32_t>(way));
  if ((flags_[idx] & (kFlagPrefetched | kFlagPfUsed)) == kFlagPrefetched) {
    ++stats_.prefetched_lines_evicted_unused;
  }
  valid_[set] &= ~(WayMask{1} << static_cast<std::uint32_t>(way));
  tags_[idx] = kNoTag;
  owner_remove(owner_[idx]);
  return true;
}

std::size_t SetAssocCache::invalidate_owner(CoreId owner) {
  if (owner == kInvalidCore) return 0;
  std::size_t dropped = 0;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    WayMask valid = valid_[set];
    while (valid != 0) {
      const auto way = static_cast<std::uint32_t>(std::countr_zero(valid));
      valid &= valid - 1;
      const std::size_t idx = line_index(set, way);
      if (owner_[idx] != owner) continue;
      if ((flags_[idx] & (kFlagPrefetched | kFlagPfUsed)) == kFlagPrefetched) {
        ++stats_.prefetched_lines_evicted_unused;
      }
      valid_[set] &= ~(WayMask{1} << way);
      tags_[idx] = kNoTag;
      owner_remove(owner);
      ++dropped;
    }
  }
  return dropped;
}

void SetAssocCache::flush() {
  for (auto& t : tags_) t = kNoTag;
  for (auto& vm : valid_) vm = 0;
  for (auto& n : owner_occupancy_) n = 0;
}

std::vector<std::uint64_t> SetAssocCache::occupancy_by_owner(unsigned num_cores) const {
  std::vector<std::uint64_t> counts(num_cores, 0);
  const std::size_t n = std::min<std::size_t>(num_cores, owner_occupancy_.size());
  for (std::size_t i = 0; i < n; ++i) counts[i] = owner_occupancy_[i];
  return counts;
}

unsigned SetAssocCache::set_occupancy(std::uint32_t set) const {
  return set_occupancy_in_mask(set, ~WayMask{0});
}

unsigned SetAssocCache::set_occupancy_in_mask(std::uint32_t set, WayMask mask) const {
  return popcount(valid_[set] & mask);
}

}  // namespace cmm::sim
