#include "sim/pmu.hpp"

namespace cmm::sim {

namespace {
std::uint64_t sub_sat(std::uint64_t a, std::uint64_t b) noexcept { return a >= b ? a - b : 0; }
}  // namespace

PmuCounters PmuCounters::delta_since(const PmuCounters& earlier) const noexcept {
  PmuCounters d;
  d.cycles = sub_sat(cycles, earlier.cycles);
  d.instructions = sub_sat(instructions, earlier.instructions);
  d.l2_pref_req = sub_sat(l2_pref_req, earlier.l2_pref_req);
  d.l2_pref_miss = sub_sat(l2_pref_miss, earlier.l2_pref_miss);
  d.l2_dm_req = sub_sat(l2_dm_req, earlier.l2_dm_req);
  d.l2_dm_miss = sub_sat(l2_dm_miss, earlier.l2_dm_miss);
  d.l3_load_miss = sub_sat(l3_load_miss, earlier.l3_load_miss);
  d.stalls_l2_pending = sub_sat(stalls_l2_pending, earlier.stalls_l2_pending);
  d.dram_demand_bytes = sub_sat(dram_demand_bytes, earlier.dram_demand_bytes);
  d.dram_prefetch_bytes = sub_sat(dram_prefetch_bytes, earlier.dram_prefetch_bytes);
  d.dram_writeback_bytes = sub_sat(dram_writeback_bytes, earlier.dram_writeback_bytes);
  return d;
}

void Pmu::reset() {
  for (auto& c : counters_) c.reset();
}

}  // namespace cmm::sim
