#include "sim/memory_controller.hpp"

#include <algorithm>
#include <cmath>

namespace cmm::sim {

MemoryController::MemoryController(const MachineConfig& cfg, unsigned num_cores)
    : window_(cfg.bandwidth_window),
      queueing_enabled_(cfg.bandwidth_queueing),
      peak_bpc_(cfg.dram_peak_bytes_per_cycle),
      freq_ghz_(cfg.freq_ghz),
      base_latency_(cfg.dram_base_latency),
      line_size_(cfg.llc.line_size),
      per_core_(num_cores) {}

void MemoryController::roll_window(Cycle now) {
  if (now < window_start_ + window_) return;
  // Close out every window between window_start_ and now. Only the most
  // recent full window's utilisation matters for the queue model; empty
  // intermediate windows decay the delay to zero.
  const Cycle elapsed = now - window_start_;
  const Cycle full_windows = elapsed / window_;
  const double capacity = peak_bpc_ * static_cast<double>(window_);
  if (full_windows == 1) {
    last_util_ = static_cast<double>(window_bytes_) / capacity;
  } else {
    // Traffic was spread over several windows with no rollover call in
    // between (idle stretch): attribute it to the whole span.
    last_util_ = static_cast<double>(window_bytes_) /
                 (capacity * static_cast<double>(full_windows));
  }
  window_bytes_ = 0;
  window_start_ += full_windows * window_;

  // Queueing delay: convex in utilisation, saturating. At u = 0.5 the
  // delay is ~0.17x base; at u = 0.9 it is ~2.4x base; capped at 6x so
  // over-offered load degrades but never deadlocks the model.
  if (!queueing_enabled_) {
    queue_delay_ = 0;
    return;
  }
  const double u = std::min(last_util_, 0.98);
  const double factor = (u * u) / (1.0 - u) * 0.6;
  queue_delay_ = static_cast<Cycle>(
      std::min(factor, 6.0) * static_cast<double>(base_latency_));
}

Cycle MemoryController::request(CoreId core, AccessType type, Cycle now) {
  roll_window(now);
  window_bytes_ += line_size_;

  MemoryTraffic& t = per_core_.at(core);
  if (type == AccessType::Prefetch) {
    t.prefetch_bytes += line_size_;
    ++t.prefetch_requests;
    total_.prefetch_bytes += line_size_;
    ++total_.prefetch_requests;
  } else {
    t.demand_bytes += line_size_;
    ++t.demand_requests;
    total_.demand_bytes += line_size_;
    ++total_.demand_requests;
  }
  return base_latency_ + queue_delay_;
}

void MemoryController::writeback(CoreId core, Cycle now) {
  roll_window(now);
  window_bytes_ += line_size_;
  MemoryTraffic& t = per_core_.at(core);
  t.writeback_bytes += line_size_;
  ++t.writeback_requests;
  total_.writeback_bytes += line_size_;
  ++total_.writeback_requests;
}

void MemoryController::reset_stats() {
  for (auto& t : per_core_) t.reset();
  total_.reset();
}

}  // namespace cmm::sim
