#include "sim/memory_controller.hpp"

#include <algorithm>
#include <cmath>

namespace cmm::sim {

namespace {
// Multiplicative delay-injection ladder, roughly geometric like Intel
// MBA's throttle percentiles: each step slows the throttled core's
// DRAM requests enough to visibly pace its issue rate without ever
// starving it outright.
constexpr double kThrottleFactors[MemoryController::kNumThrottleLevels] = {1.0, 1.5, 2.5, 4.0};
}  // namespace

double MemoryController::throttle_factor(std::uint8_t level) noexcept {
  return kThrottleFactors[std::min<unsigned>(level, kNumThrottleLevels - 1)];
}

MemoryController::MemoryController(const MachineConfig& cfg, unsigned num_cores)
    : window_(cfg.bandwidth_window),
      queueing_enabled_(cfg.bandwidth_queueing),
      peak_bpc_(cfg.dram_peak_bytes_per_cycle),
      freq_ghz_(cfg.freq_ghz),
      base_latency_(cfg.dram_base_latency),
      line_size_(cfg.llc.line_size),
      per_core_(num_cores),
      throttle_(num_cores, 0),
      core_window_bytes_(num_cores, 0),
      last_core_bpc_(num_cores, 0.0) {}

void MemoryController::set_throttle_level(CoreId core, std::uint8_t level) {
  throttle_.at(core) =
      static_cast<std::uint8_t>(std::min<unsigned>(level, kNumThrottleLevels - 1));
}

bool MemoryController::unthrottled() const noexcept {
  return std::all_of(throttle_.begin(), throttle_.end(),
                     [](std::uint8_t l) { return l == 0; });
}

void MemoryController::roll_window(Cycle now) {
  if (now < window_start_ + window_) return;
  // Close out every window between window_start_ and now. Only the most
  // recent full window's utilisation matters for the queue model; empty
  // intermediate windows decay the delay to zero.
  const Cycle elapsed = now - window_start_;
  const Cycle full_windows = elapsed / window_;
  const double capacity = peak_bpc_ * static_cast<double>(window_);
  if (full_windows == 1) {
    last_util_ = static_cast<double>(window_bytes_) / capacity;
    const double inv_window = 1.0 / static_cast<double>(window_);
    for (CoreId c = 0; c < last_core_bpc_.size(); ++c) {
      last_core_bpc_[c] = static_cast<double>(core_window_bytes_[c]) * inv_window;
    }
  } else {
    // An idle stretch spanned several windows with no rollover call in
    // between. All accumulated traffic belongs to the *first* of those
    // windows; the most recent complete window — the one the queue
    // model keys on — was empty, so the delay decays to zero.
    last_util_ = 0.0;
    std::fill(last_core_bpc_.begin(), last_core_bpc_.end(), 0.0);
  }
  window_bytes_ = 0;
  std::fill(core_window_bytes_.begin(), core_window_bytes_.end(), 0);
  window_start_ += full_windows * window_;

  // Queueing delay: convex in utilisation, saturating. At u = 0.5 the
  // delay is ~0.17x base; at u = 0.9 it is ~2.4x base; capped at 6x so
  // over-offered load degrades but never deadlocks the model.
  if (!queueing_enabled_) {
    queue_delay_ = 0;
    return;
  }
  const double u = std::min(last_util_, 0.98);
  const double factor = (u * u) / (1.0 - u) * 0.6;
  queue_delay_ = static_cast<Cycle>(
      std::min(factor, 6.0) * static_cast<double>(base_latency_));
}

void MemoryController::account_window_bytes(CoreId core) {
  window_bytes_ += line_size_;
  core_window_bytes_.at(core) += line_size_;
}

Cycle MemoryController::request(CoreId core, AccessType type, Cycle now) {
  roll_window(now);
  account_window_bytes(core);

  MemoryTraffic& t = per_core_.at(core);
  if (type == AccessType::Prefetch) {
    t.prefetch_bytes += line_size_;
    ++t.prefetch_requests;
    total_.prefetch_bytes += line_size_;
    ++total_.prefetch_requests;
  } else {
    t.demand_bytes += line_size_;
    ++t.demand_requests;
    total_.demand_bytes += line_size_;
    ++total_.demand_requests;
  }
  // Level 0 is the exact pre-BP expression: no multiply, no rounding —
  // the bit-identity invariant the regulation layer is built on.
  const std::uint8_t level = throttle_[core];
  if (level == 0) return base_latency_ + queue_delay_;
  return static_cast<Cycle>(throttle_factor(level) *
                            static_cast<double>(base_latency_ + queue_delay_));
}

void MemoryController::writeback(CoreId core, Cycle now) {
  roll_window(now);
  account_window_bytes(core);
  MemoryTraffic& t = per_core_.at(core);
  t.writeback_bytes += line_size_;
  ++t.writeback_requests;
  total_.writeback_bytes += line_size_;
  ++total_.writeback_requests;
}

void MemoryController::reset_stats() {
  // Counters only — see the header contract: timing state (window
  // accumulation, utilisation, queue delay, throttle levels) must
  // survive so a mid-run reset never changes subsequent latencies.
  for (auto& t : per_core_) t.reset();
  total_.reset();
}

}  // namespace cmm::sim
