// Model of Intel Cache Allocation Technology (CAT): way-based LLC
// partitioning via classes of service (COS). Each COS holds a capacity
// bitmask (CBM); each core is associated with one COS. A core's LLC
// *fills* may only allocate into ways covered by its CBM; *hits* are
// unrestricted — exactly the semantics of real CAT, which is why CAT
// partitions are "overlapping-capable".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/bitmask.hpp"
#include "common/types.hpp"

namespace cmm::sim {

class CatModel {
 public:
  /// `num_cos` classes of service over an LLC with `llc_ways` ways.
  /// Broadwell-EP exposes 16 COS over 20 ways.
  CatModel(unsigned num_cores, unsigned llc_ways, unsigned num_cos = 16);

  unsigned num_cos() const noexcept { return static_cast<unsigned>(cbm_.size()); }
  unsigned llc_ways() const noexcept { return llc_ways_; }

  /// Program a COS capacity bitmask. Enforces real-CAT constraints:
  /// non-empty, contiguous, within the way count. Throws
  /// std::invalid_argument otherwise (mirrors pqos returning an error).
  void set_cbm(unsigned cos, WayMask mask);
  WayMask cbm(unsigned cos) const;

  /// Associate a core with a COS.
  void assign_core(CoreId core, unsigned cos);
  unsigned core_cos(CoreId core) const;

  /// The allocation mask the LLC must apply to fills from `core`.
  WayMask core_mask(CoreId core) const;

  /// Reset: every COS gets the full mask, every core COS 0 — hardware
  /// reset state and the paper's baseline (no partitioning).
  void reset();

 private:
  unsigned llc_ways_;
  std::vector<WayMask> cbm_;
  std::vector<unsigned> core_cos_;
};

}  // namespace cmm::sim
