// Signature-path prefetcher (SPP-style; Kim, Pugsley, Gratz, Reddy,
// Wilkerson, Chishti, "Path Confidence based Lookahead Prefetching",
// MICRO 2016), ported to the sim:: plug-in contract as an L2 engine.
//
// Port simplifications vs. the original:
//  - no global history register (cross-page path continuation) and no
//    PPF-style filter: a new page starts a fresh signature;
//  - path confidence is the product of per-step counter ratios without
//    the global accuracy scaling term;
//  - tables are direct-mapped with tag checks instead of set-assoc.
// All predictor state is integral; the confidence product over small
// integer ratios is IEEE-exact, so behaviour is bit-deterministic.
#include "sim/pf_common.hpp"
#include "sim/prefetcher.hpp"

namespace cmm::sim {

SppPrefetcher::SppPrefetcher() : SppPrefetcher(Config{}) {}

SppPrefetcher::SppPrefetcher(const Config& cfg)
    : cfg_(cfg), pages_(cfg.signature_table_entries), patterns_(cfg.pattern_table_entries) {
  for (auto& p : patterns_) p.slots.resize(cfg_.deltas_per_entry);
}

std::uint16_t SppPrefetcher::advance_signature(std::uint16_t sig, int delta) noexcept {
  // 12-bit signature; the delta folds in as 7-bit sign-magnitude, the
  // shift ages out deltas more than four steps back.
  const std::uint32_t mag = static_cast<std::uint32_t>(delta < 0 ? -delta : delta) & 0x3F;
  const std::uint32_t folded = mag | (delta < 0 ? 0x40u : 0u);
  return static_cast<std::uint16_t>(((static_cast<std::uint32_t>(sig) << 3) ^ folded) & 0xFFF);
}

SppPrefetcher::PatternEntry& SppPrefetcher::pattern_slot(std::uint16_t sig) {
  return patterns_[sig % cfg_.pattern_table_entries];
}

void SppPrefetcher::train(std::uint16_t sig, int delta) {
  PatternEntry& p = pattern_slot(sig);
  if (!p.valid || p.signature != sig) {
    p.signature = sig;
    p.valid = true;
    for (auto& s : p.slots) s = DeltaSlot{};
  }
  const auto d16 = static_cast<std::int16_t>(delta);
  DeltaSlot* victim = &p.slots[0];
  for (auto& s : p.slots) {
    if (s.counter != 0 && s.delta == d16) {
      if (s.counter < cfg_.counter_max) ++s.counter;
      return;
    }
    if (s.counter < victim->counter) victim = &s;  // min counter, earliest slot on ties
  }
  victim->delta = d16;
  victim->counter = 1;
}

void SppPrefetcher::observe(const PrefetchObservation& obs, std::vector<Addr>& out) {
  const Addr page = page_of(obs.line_addr, cfg_.lines_per_page);
  const std::uint32_t offset = page_offset(obs.line_addr, cfg_.lines_per_page);

  PageEntry& e = pages_[page % cfg_.signature_table_entries];
  if (!e.valid || e.page != page) {
    e = PageEntry{};
    e.page = page;
    e.valid = true;
    e.last_offset = offset;
    e.has_last = true;
    return;
  }
  const int delta = static_cast<int>(offset) - static_cast<int>(e.last_offset);
  if (delta == 0) return;  // same line, no information

  train(e.signature, delta);
  e.signature = advance_signature(e.signature, delta);
  e.last_offset = offset;

  // Lookahead: walk the signature path while the compounded confidence
  // holds, emitting one candidate per step, clamped to the page.
  std::uint16_t sig = e.signature;
  std::uint32_t cur = offset;
  double confidence = 1.0;
  std::size_t emitted = 0;
  for (unsigned step = 0; step < cfg_.degree; ++step) {
    const PatternEntry& p = pattern_slot(sig);
    if (!p.valid || p.signature != sig) break;
    unsigned total = 0;
    const DeltaSlot* best = nullptr;
    for (const auto& s : p.slots) {
      total += s.counter;
      if (s.counter != 0 && (best == nullptr || s.counter > best->counter)) best = &s;
    }
    if (best == nullptr) break;
    confidence *= static_cast<double>(best->counter) / static_cast<double>(total);
    if (confidence < cfg_.confidence_threshold) break;
    const std::int64_t next = page_local_offset(cur, best->delta, cfg_.lines_per_page);
    if (next < 0) break;
    cur = static_cast<std::uint32_t>(next);
    out.push_back(line_in_page(page, cur, cfg_.lines_per_page));
    ++emitted;
    sig = advance_signature(sig, best->delta);
  }
  note_issued(emitted);
}

void SppPrefetcher::reset() {
  for (auto& e : pages_) e = PageEntry{};
  for (auto& p : patterns_) {
    p.signature = 0;
    p.valid = false;
    for (auto& s : p.slots) s = DeltaSlot{};
  }
}

}  // namespace cmm::sim
