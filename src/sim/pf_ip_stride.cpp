#include "sim/pf_common.hpp"
#include "sim/prefetcher.hpp"

namespace cmm::sim {

IpStridePrefetcher::IpStridePrefetcher() : IpStridePrefetcher(Config{}) {}

IpStridePrefetcher::IpStridePrefetcher(const Config& cfg) : cfg_(cfg), table_(cfg.table_entries) {}

void IpStridePrefetcher::observe(const PrefetchObservation& obs, std::vector<Addr>& out) {
  Entry& e = table_[obs.ip % cfg_.table_entries];
  if (!e.valid || e.ip != obs.ip) {
    e = Entry{};
    e.ip = obs.ip;
    e.last_line = obs.line_addr;
    e.valid = true;
    return;
  }

  const std::int64_t stride =
      static_cast<std::int64_t>(obs.line_addr) - static_cast<std::int64_t>(e.last_line);
  if (stride == 0) return;  // same line, no information

  if (stride == e.stride) {
    if (e.confidence < 8) ++e.confidence;
  } else {
    // New stride: this observation is its first occurrence.
    e.stride = stride;
    e.confidence = 1;
  }
  e.last_line = obs.line_addr;

  if (e.confidence >= cfg_.confidence_threshold) {
    for (unsigned k = 1; k <= cfg_.degree; ++k) {
      const std::int64_t target =
          signed_line_target(obs.line_addr, e.stride * static_cast<std::int64_t>(k));
      if (target < 0) break;  // strides may cross pages, but not address zero
      out.push_back(static_cast<Addr>(target));
    }
    note_issued(cfg_.degree);
  }
}

void IpStridePrefetcher::reset() {
  for (auto& e : table_) e = Entry{};
}

}  // namespace cmm::sim
