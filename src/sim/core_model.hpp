// Per-core timing model: a simple interval model. Instructions retire
// at a workload-specific base CPI; a memory reference adds the portion
// of the hierarchy latency not hidden by the L1 (scaled down by the
// workload's memory-level parallelism). This is intentionally not
// cycle-accurate — the paper's phenomena (prefetch hiding DRAM latency,
// LLC pollution, bandwidth contention) live entirely in the relative
// miss costs, which this model carries.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sim/cache.hpp"
#include "sim/cat.hpp"
#include "sim/machine_config.hpp"
#include "sim/memory_controller.hpp"
#include "sim/pmu.hpp"
#include "sim/prefetch_msr.hpp"
#include "sim/prefetcher.hpp"

namespace cmm::sim {

/// One memory reference produced by a workload.
struct MemRef {
  Addr addr = 0;  // byte address
  IpId ip = 0;
  bool is_store = false;
};

/// One unit of work: `instructions` retired instructions, the last of
/// which is `mem` when `has_mem` is set.
struct Op {
  std::uint32_t instructions = 1;
  bool has_mem = false;
  MemRef mem{};
};

/// Static execution characteristics of the program on this core.
struct CoreTraits {
  double base_cpi = 0.5;  // CPI of non-memory work
  double mlp = 4.0;       // average overlap factor for miss latency
};

/// Source of the core's dynamic instruction stream (implemented by
/// workloads::AddressStream adapters).
class OpSource {
 public:
  virtual ~OpSource() = default;
  virtual Op next() = 0;
  virtual CoreTraits traits() const = 0;
  virtual void reset() = 0;

  /// Fill `out` with the next ops of the stream; returns how many were
  /// produced (>= 1 for a non-empty span). Batching contract: every op
  /// placed in the batch must be produced under one `traits()` value,
  /// and `traits()` must report that value immediately after the call —
  /// sources whose traits change over time (phased workloads) cut the
  /// batch at the change boundary and return a short count. The default
  /// forwards to `next()` across the whole span, which is correct for
  /// any constant-traits source; hot sources override it to refill the
  /// buffer without per-op virtual dispatch.
  virtual std::size_t next_batch(std::span<Op> out) {
    for (auto& op : out) op = next();
    return out.size();
  }
};

/// Capacity of the per-core op-stream batch buffer (advance_to refills
/// it via OpSource::next_batch so the inner loop runs without per-op
/// virtual dispatch; OpStreamState transports it whole on migration).
inline constexpr std::size_t kOpBatch = 64;

/// Portable execution state of one tenant's op stream: the source plus
/// the core-side consumption state — buffered-but-unconsumed ops, the
/// traits they were produced under, and the sub-cycle accumulator.
/// Live migration transplants this state whole: re-pointing only the
/// source (set_op_source) drops up to kOpBatch-1 already-fetched ops,
/// silently skipping that much of the tenant's program.
struct OpStreamState {
  std::shared_ptr<OpSource> source;
  std::array<Op, kOpBatch> batch{};
  std::size_t pos = 0;
  std::size_t len = 0;
  CoreTraits traits{};
  double frac = 0.0;  // sub-cycle accumulator at export time
};

class CoreModel {
 public:
  CoreModel(CoreId id, const MachineConfig& cfg, SetAssocCache& llc, const CatModel& cat,
            MemoryController& mem, Pmu& pmu);

  // Not copyable/movable: holds references and is stored via unique_ptr.
  CoreModel(const CoreModel&) = delete;
  CoreModel& operator=(const CoreModel&) = delete;

  void set_op_source(std::shared_ptr<OpSource> source);

  /// Snapshot the op stream (source + buffered ops + sub-cycle phase)
  /// without disturbing it — the exportable half of a live migration.
  OpStreamState export_stream() const;

  /// Install a previously exported stream, continuing it exactly where
  /// export_stream left off (unlike set_op_source, which restarts
  /// consumption at the source's next op and drops the buffer).
  void import_stream(OpStreamState state);

  /// Invoked after each LLC eviction of a valid line (line address,
  /// owning core). MulticoreSystem installs a back-invalidation hook
  /// here when the machine models an inclusive LLC.
  using EvictionListener = std::function<void(Addr, CoreId)>;
  void set_eviction_listener(EvictionListener listener) {
    eviction_listener_ = std::move(listener);
  }

  /// The core's L2 streamer, if its engine set includes one
  /// (hardware-level controllers such as the FDP baseline tune its
  /// aggressiveness). Null for cores configured without a streamer.
  StreamerPrefetcher* find_streamer() noexcept { return streamer_; }

  /// Every prefetcher engine this core instantiated, in config order
  /// (diagnostics and the differential test harness read issued()
  /// odometers and per-engine state through this).
  const std::vector<std::unique_ptr<Prefetcher>>& prefetchers() const noexcept {
    return engines_;
  }

  /// Run ops until the local clock reaches `target` cycles.
  void advance_to(Cycle target);

  Cycle now() const noexcept { return now_; }
  CoreId id() const noexcept { return id_; }

  PrefetchMsr& prefetch_msr() noexcept { return msr_; }
  const PrefetchMsr& prefetch_msr() const noexcept { return msr_; }

  const SetAssocCache& l1() const noexcept { return l1_; }
  const SetAssocCache& l2() const noexcept { return l2_; }
  SetAssocCache& l1() noexcept { return l1_; }
  SetAssocCache& l2() noexcept { return l2_; }

  /// Flush private caches + prefetcher state (used between runs).
  void reset_microarch();

 private:
  /// Execute one demand reference; returns its added latency (cycles).
  /// `mlp` is the batch's memory-level-parallelism trait, hoisted out
  /// of the per-op path by advance_to.
  double demand_access(const MemRef& ref, double mlp);

  /// Issue an L1-prefetcher candidate down the hierarchy.
  void issue_l1_prefetch(Addr line);

  /// Issue an L2-prefetcher candidate (counts the Table-I PMU events).
  void issue_l2_prefetch(Addr line);

  /// Residual wait if the line's fill completes after `arrival`.
  static double residual(Cycle ready_at, double arrival) noexcept {
    const auto a = static_cast<double>(ready_at);
    return a > arrival ? a - arrival : 0.0;
  }

  /// Fill the shared LLC under this core's CAT mask, handling
  /// writebacks of dirty victims and inclusive back-invalidation.
  void fill_llc(Addr line, AccessType type, Cycle ready_at);

  CoreId id_;
  const MachineConfig& cfg_;
  Addr line_shift_;

  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache& llc_;
  const CatModel& cat_;
  MemoryController& mem_;
  Pmu& pmu_;

  /// Deliver a fill notification to every engine in `observers`.
  static void notify_fill(const std::vector<Prefetcher*>& observers, Addr line,
                          bool prefetch_fill) {
    for (Prefetcher* p : observers) p->cache_fill(line, prefetch_fill);
  }

  PrefetchMsr msr_;

  // Prefetcher engines, built from cfg.prefetchers_for(id) via the
  // registry. The per-level lists preserve config order (the default
  // set reproduces the historical call order: streamer, adjacent at
  // L2; next-line, IP-stride at L1). The observer lists are the
  // opted-in subsets so the hot path skips empty fan-outs — all empty
  // for the default Intel set.
  std::vector<std::unique_ptr<Prefetcher>> engines_;
  std::vector<Prefetcher*> l1_engines_;
  std::vector<Prefetcher*> l2_engines_;
  std::vector<Prefetcher*> l2_pf_traffic_engines_;  // observes_prefetch_traffic()
  std::vector<Prefetcher*> l1_fill_observers_;      // wants_cache_fill()
  std::vector<Prefetcher*> l2_fill_observers_;
  StreamerPrefetcher* streamer_ = nullptr;

  std::shared_ptr<OpSource> source_;
  EvictionListener eviction_listener_;
  Cycle now_ = 0;
  double now_frac_ = 0.0;  // sub-cycle accumulator

  // Op-stream batch buffer: unconsumed ops carry over across
  // advance_to calls (ops are time-independent, so prefetching them is
  // behaviour-preserving) and across migrations (via OpStreamState).
  std::array<Op, kOpBatch> op_batch_{};
  std::size_t batch_pos_ = 0;
  std::size_t batch_len_ = 0;
  CoreTraits batch_traits_{};  // traits of every op in the current batch

  std::vector<Addr> l1_cands_;
  std::vector<Addr> l2_cands_;
  std::vector<Addr> l2_cands_from_l1_;  // L2-prefetcher reactions to L1 prefetches
};

}  // namespace cmm::sim
